type item = { index : int; size : int; profit : float }

let make_item ~index ~size ~profit =
  if size <= 0 then invalid_arg "Knapsack.make_item: size must be positive";
  if profit < 0.0 then invalid_arg "Knapsack.make_item: negative profit";
  { index; size; profit }

let total_profit items = List.fold_left (fun acc i -> acc +. i.profit) 0.0 items

let total_size items = List.fold_left (fun acc i -> acc + i.size) 0 items

let solve_exact_by_size ~capacity items =
  if capacity < 0 then invalid_arg "Knapsack: negative capacity";
  let items = Array.of_list items in
  let n = Array.length items in
  (* best.(c) = max profit using a prefix of items within size c;
     keep.(i).(c) = was item i taken at state c? (bytes, row per item) *)
  let best = Array.make (capacity + 1) 0.0 in
  let keep = Array.init n (fun _ -> Bytes.make (capacity + 1) '\000') in
  for i = 0 to n - 1 do
    let { size; profit; _ } = items.(i) in
    for c = capacity downto size do
      let candidate = best.(c - size) +. profit in
      if candidate > best.(c) then begin
        best.(c) <- candidate;
        Bytes.set keep.(i) c '\001'
      end
    done
  done;
  let rec backtrack i c acc =
    if i < 0 then acc
    else if c >= items.(i).size && Bytes.get keep.(i) c = '\001' then
      backtrack (i - 1) (c - items.(i).size) (items.(i) :: acc)
    else backtrack (i - 1) c acc
  in
  backtrack (n - 1) capacity []

let solve_exact_by_profit ~capacity ~scaled_profits items =
  let items = Array.of_list items in
  let n = Array.length items in
  if Array.length scaled_profits <> n then
    invalid_arg "Knapsack.solve_exact_by_profit: arity";
  let pmax_total = Array.fold_left ( + ) 0 scaled_profits in
  (* min_size.(p) = minimum total size achieving scaled profit exactly p. *)
  let inf = max_int / 2 in
  let min_size = Array.make (pmax_total + 1) inf in
  min_size.(0) <- 0;
  let keep = Array.init n (fun _ -> Bytes.make (pmax_total + 1) '\000') in
  for i = 0 to n - 1 do
    let p_i = scaled_profits.(i) in
    let s_i = items.(i).size in
    for p = pmax_total downto p_i do
      if min_size.(p - p_i) + s_i < min_size.(p) then begin
        min_size.(p) <- min_size.(p - p_i) + s_i;
        Bytes.set keep.(i) p '\001'
      end
    done
  done;
  let best_p = ref 0 in
  for p = 0 to pmax_total do
    if min_size.(p) <= capacity then best_p := p
  done;
  let rec backtrack i p acc =
    if i < 0 then acc
    else if p >= scaled_profits.(i) && Bytes.get keep.(i) p = '\001' then
      backtrack (i - 1) (p - scaled_profits.(i)) (items.(i) :: acc)
    else backtrack (i - 1) p acc
  in
  backtrack (n - 1) !best_p []

let solve_fptas ~eps ~capacity items =
  if eps <= 0.0 then invalid_arg "Knapsack.solve_fptas: eps must be positive";
  let items = List.filter (fun i -> i.size <= capacity) items in
  match items with
  | [] -> []
  | _ ->
      let n = List.length items in
      let pmax = List.fold_left (fun acc i -> Float.max acc i.profit) 0.0 items in
      if pmax <= 0.0 then []
      else begin
        let k = eps *. pmax /. float_of_int n in
        let scaled_profits =
          items
          |> List.map (fun i -> int_of_float (Float.floor (i.profit /. k)))
          |> Array.of_list
        in
        solve_exact_by_profit ~capacity ~scaled_profits items
      end
