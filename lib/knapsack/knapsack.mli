(** 0/1 knapsack: exact dynamic programs and the classical FPTAS.

    The ring algorithm (Lemma 18) needs a [(1+eps)]-approximation for the
    knapsack instance formed by all tasks routed through the cut edge; this
    module supplies it, plus the exact solvers the tests compare against. *)

type item = { index : int; size : int; profit : float }
(** [index] is caller-defined (here: the task id). *)

val make_item : index:int -> size:int -> profit:float -> item
(** Validates [size > 0], [profit >= 0]. *)

val solve_exact_by_size : capacity:int -> item list -> item list
(** O(n * capacity) DP over sizes.  Exact.  Suitable when [capacity] is
    moderate (it is, for our integer capacities). *)

val solve_exact_by_profit : capacity:int -> scaled_profits:int array -> item list -> item list
(** O(n * sum of scaled profits) DP over integer profits; the building
    block of the FPTAS.  [scaled_profits.(i)] is the integer profit of the
    i-th item of the list. *)

val solve_fptas : eps:float -> capacity:int -> item list -> item list
(** The classical FPTAS: scale profits by [n / (eps * pmax)], run the
    profit DP, unscale.  Guarantee: profit >= (1 - eps) * OPT.
    Requires [eps > 0]. *)

val total_profit : item list -> float

val total_size : item list -> int
