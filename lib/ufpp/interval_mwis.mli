(** Exact maximum-weight independent set on an interval graph.

    Classic O(n log n) DP over tasks sorted by right endpoint.  Two tasks
    are independent iff their edge ranges are disjoint.  Used for the
    "wide" half of the Bar-Noy et al. 3-approximation (two wide tasks can
    never share an edge of a uniform-capacity path, so the wide subproblem
    *is* interval scheduling) and as a baseline elsewhere. *)

val solve : Core.Task.t list -> Core.Task.t list
(** A maximum-weight pairwise-disjoint subset. *)

val value : Core.Task.t list -> float
