(** The Bar-Noy et al. [5] local-ratio 3-approximation for UFPP with
    uniform capacities (a.k.a. the bandwidth allocation problem).

    Tasks are split at demand [c/2]:
    - *wide* tasks ([d > c/2]) pairwise exclude each other on shared edges,
      so the wide subproblem is weighted interval scheduling, solved exactly
      by {!Interval_mwis};
    - *narrow* tasks ([d <= c/2]) are handled by a local-ratio round with
      model weights [w1(jstar) = w(jstar)] and
      [w1(i) = w(jstar) * d_i / (c - d_jstar)] for tasks overlapping [jstar]'s
      rightmost edge, giving a 2-approximation.
    The heavier of the two is a 3-approximation (Lemma 3 of the paper). *)

val local_ratio_sweep :
  peel:(Core.Task.t -> Core.Task.t -> float) ->
  fits:(load:int -> Core.Task.t -> bool) ->
  Core.Path.t ->
  Core.Task.t list ->
  Core.Task.t list
(** The shared local-ratio engine.  Tasks are scanned by increasing right
    endpoint; when [jstar] is reached with residual weight [wj > 0], every
    later overlapping task [i] loses [wj * peel jstar i] and [jstar] is pushed.
    The stack is then unwound (innermost first) adding each task when
    [fits ~load j] holds for the current selection's load on [j]'s
    rightmost edge — sufficient because in this sweep any selected task
    using an edge of [I_j] also uses that edge.  Exposed for
    {!Strip_local_ratio}, which instantiates different model weights. *)

val solve_narrow : Core.Path.t -> Core.Task.t list -> Core.Task.t list
(** The local-ratio 2-approximation.  Requires uniform capacities and all
    demands at most [c/2] ([Invalid_argument] otherwise). *)

val solve : Core.Path.t -> Core.Task.t list -> Core.Task.t list
(** The combined 3-approximation.  Requires uniform capacities; tasks with
    [d > c] are discarded up front. *)
