(** Exact UFPP on almost-uniform bands of delta-large tasks.

    The UFPP analogue of the paper's Lemma 13 (and the shape of the band
    solver in Bonsma et al.'s framework): sweep edges left to right with
    DP states = the set of *selected alive* tasks.  Because the tasks are
    delta-large and capacities lie within a [2^ell] factor, at most
    [L = 2^ell / delta] selected tasks cross any edge (Lemma 12(i)), so the
    state space is polynomial for constant [L].  No heights are tracked —
    this is why the UFPP version is so much lighter than the Elevator.

    Exact whenever the state cap is not hit (reported), which the tests
    validate against the branch-and-bound solver. *)

type result = {
  solution : Core.Task.t list;
  exact : bool;
}

val solve :
  ?cap:int ->
  ?max_states:int ->
  Core.Path.t ->
  Core.Task.t list ->
  result
(** [solve p ts] — maximum-weight UFPP-feasible subset.  [cap] clips
    capacities (band ceiling); [max_states] defaults to 50000. *)
