(** Greedy density baseline for UFPP.

    The no-theory comparator every experiment table includes: scan tasks by
    decreasing [w / (d * span)] density and keep whatever fits.  O(n log n +
    n * span). *)

val solve : Core.Path.t -> Core.Task.t list -> Core.Task.t list

val solve_by : key:(Core.Task.t -> float) -> Core.Path.t -> Core.Task.t list -> Core.Task.t list
(** Same sweep with a custom (descending) priority key. *)
