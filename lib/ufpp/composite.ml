module Task = Core.Task
module Path = Core.Path

type report = {
  solution : Core.Task.t list;
  small_solution : Core.Task.t list;
  medium_solution : Core.Task.t list;
  large_solution : Core.Task.t list;
}

let small_part ~trials ~prng path tasks =
  match tasks with
  | [] -> []
  | _ ->
      let lp = Lp.Ufpp_lp.solve path tasks in
      let fx =
        Array.to_list lp.Lp.Ufpp_lp.tasks
        |> List.mapi (fun i j -> (j, lp.Lp.Ufpp_lp.solution.(i)))
      in
      Lp_rounding.round_capacities ~trials ~prng path fx

(* Band framework for the medium tasks.  Each band k is solved exactly by
   the UFPP band DP against the *halved* band capacities
   floor(min(c_e, 2^(k+ell)) / 2); unions over k ≡ r (mod ell+1) are then
   feasible: on an edge e used by bands k1 > k2 > ..., the load is at most

     c_e/2  +  sum_{i>=2} 2^(k_i+ell-1)
         <=  c_e/2 + 2^(k1+ell-1) * sum_{j>=1} 2^(-j(ell+1))
         <=  c_e/2 + 2^(k1-1)  <=  c_e,

   using c_e >= 2^(k1) (a band-k1 task uses e).  Checked at runtime too. *)
let medium_part ~ell path tasks =
  match tasks with
  | [] -> []
  | _ ->
      let bands = Core.Classify.power_bands path ~ell tasks in
      let band_solution (k, band_tasks) =
        let ceiling = 1 lsl (k + ell) in
        let caps =
          Array.map (fun c -> max 1 (min c ceiling / 2)) (Path.capacities path)
        in
        let half = Path.create caps in
        (k, (Band_dp.solve half band_tasks).Band_dp.solution)
      in
      let solved = List.map band_solution bands in
      let period = ell + 1 in
      let positive_mod a p = (a mod p + p) mod p in
      let best = ref [] in
      let best_w = ref 0.0 in
      for r = 0 to period - 1 do
        let union =
          solved
          |> List.filter (fun (k, _) -> positive_mod k period = r)
          |> List.concat_map snd
        in
        if Result.is_ok (Core.Checker.ufpp_feasible path union) then begin
          let w = Task.weight_of union in
          if w > !best_w then begin
            best := union;
            best_w := w
          end
        end
      done;
      !best

let large_part path tasks =
  let rects = Rects.Rect.of_tasks path tasks in
  Rects.Rect_mwis.solve rects |> List.map (fun (r : Rects.Rect.t) -> r.Rects.Rect.task)

let solve_report ?(delta = 0.25) ?(ell = 2) ?(trials = 16) ?(seed = 42) path tasks =
  let tasks =
    List.filter (fun (j : Task.t) -> j.Task.demand <= Path.bottleneck_of path j) tasks
  in
  let split = Core.Classify.split3 path ~delta ~large_frac:0.5 tasks in
  let prng = Util.Prng.create seed in
  let small_solution = small_part ~trials ~prng path split.Core.Classify.small in
  let medium_solution = medium_part ~ell path split.Core.Classify.medium in
  let large_solution = large_part path split.Core.Classify.large in
  let heaviest =
    List.fold_left
      (fun acc s -> if Task.weight_of s > Task.weight_of acc then s else acc)
      small_solution
      [ medium_solution; large_solution ]
  in
  { solution = heaviest; small_solution; medium_solution; large_solution }

let solve ?delta ?ell ?trials ?seed path tasks =
  (solve_report ?delta ?ell ?trials ?seed path tasks).solution
