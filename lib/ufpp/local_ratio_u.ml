module Task = Core.Task
module Path = Core.Path

let uniform_capacity path =
  let c = Path.capacity path 0 in
  for e = 1 to Path.num_edges path - 1 do
    if Path.capacity path e <> c then
      invalid_arg "Local_ratio_u: capacities not uniform"
  done;
  c

(* Local-ratio skeleton shared with Strip_local_ratio: process tasks by
   increasing right endpoint, peeling model weights; then unwind the stack
   adding each task whose insertion keeps its own rightmost edge within
   [budget].  [peel j* i] is the model weight charged to a later task [i]
   overlapping [j*], as a fraction of the current weight of [j*]. *)
let local_ratio_sweep ~peel ~fits path ts =
  let order =
    List.sort
      (fun (a : Task.t) (b : Task.t) ->
        match Int.compare a.Task.last_edge b.Task.last_edge with
        | 0 -> Int.compare a.Task.id b.Task.id
        | c -> c)
      ts
    |> Array.of_list
  in
  let n = Array.length order in
  let w = Array.map (fun (j : Task.t) -> j.Task.weight) order in
  let stack = ref [] in
  for idx = 0 to n - 1 do
    if w.(idx) > 1e-12 then begin
      let jstar = order.(idx) in
      let wj = w.(idx) in
      stack := idx :: !stack;
      for later = idx + 1 to n - 1 do
        if Task.overlaps order.(later) jstar then
          w.(later) <- w.(later) -. (wj *. peel jstar order.(later))
      done;
      w.(idx) <- 0.0
    end
  done;
  (* Unwind: !stack already has the last-pushed task first.  A task is added
     if the load of the current selection on its rightmost edge leaves room
     for it; by the min-right-endpoint structure this bounds the load on its
     whole path (every selected task using an edge of I_j also uses e*_j). *)
  let selected = ref [] in
  let load = Array.make (Path.num_edges path) 0 in
  List.iter
    (fun idx ->
      let j = order.(idx) in
      let e_star = j.Task.last_edge in
      if fits ~load:load.(e_star) j then begin
        selected := j :: !selected;
        for e = j.Task.first_edge to j.Task.last_edge do
          load.(e) <- load.(e) + j.Task.demand
        done
      end)
    !stack;
  !selected

let solve_narrow path ts =
  let c = uniform_capacity path in
  List.iter
    (fun (j : Task.t) ->
      if 2 * j.Task.demand > c then
        invalid_arg "Local_ratio_u.solve_narrow: wide task")
    ts;
  let peel (jstar : Task.t) (i : Task.t) =
    float_of_int i.Task.demand /. float_of_int (c - jstar.Task.demand)
  in
  let fits ~load (j : Task.t) = load + j.Task.demand <= c in
  local_ratio_sweep ~peel ~fits path ts

let solve path ts =
  let c = uniform_capacity path in
  let ts = List.filter (fun (j : Task.t) -> j.Task.demand <= c) ts in
  let narrow, wide =
    List.partition (fun (j : Task.t) -> 2 * j.Task.demand <= c) ts
  in
  let s_narrow = solve_narrow path narrow in
  let s_wide = Interval_mwis.solve wide in
  if Task.weight_of s_narrow >= Task.weight_of s_wide then s_narrow else s_wide
