module Task = Core.Task
module Path = Core.Path

let solve path ts =
  (* Drop tasks that cannot fit alone; sort the rest heaviest-first so the
     greedy dive finds a strong incumbent early. *)
  let ts =
    List.filter (fun (j : Task.t) -> j.Task.demand <= Path.bottleneck_of path j) ts
  in
  let a = Array.of_list ts in
  Array.sort (fun (x : Task.t) (y : Task.t) -> Float.compare y.Task.weight x.Task.weight) a;
  let n = Array.length a in
  (* suffix.(i) = total weight of tasks i..n-1: the optimistic bound. *)
  let suffix = Array.make (n + 1) 0.0 in
  for i = n - 1 downto 0 do
    suffix.(i) <- suffix.(i + 1) +. a.(i).Task.weight
  done;
  let m = Path.num_edges path in
  let load = Array.make m 0 in
  let best = ref [] in
  let best_w = ref neg_infinity in
  let chosen = ref [] in
  let rec branch i acc_w =
    if acc_w +. suffix.(i) <= !best_w +. 1e-12 then ()
    else if i = n then begin
      if acc_w > !best_w then begin
        best_w := acc_w;
        best := !chosen
      end
    end
    else begin
      let j = a.(i) in
      let fits =
        let rec ok e =
          e > j.Task.last_edge
          || (load.(e) + j.Task.demand <= Path.capacity path e && ok (e + 1))
        in
        ok j.Task.first_edge
      in
      if fits then begin
        for e = j.Task.first_edge to j.Task.last_edge do
          load.(e) <- load.(e) + j.Task.demand
        done;
        chosen := j :: !chosen;
        branch (i + 1) (acc_w +. j.Task.weight);
        chosen := List.tl !chosen;
        for e = j.Task.first_edge to j.Task.last_edge do
          load.(e) <- load.(e) - j.Task.demand
        done
      end;
      branch (i + 1) acc_w
    end
  in
  branch 0 0.0;
  !best

let value path ts = Task.weight_of (solve path ts)
