module Task = Core.Task
module Path = Core.Path

type fractional = (Task.t * float) list

let m_trials = Obs.Metrics.counter "lp_rounding.trials"

let m_improvements = Obs.Metrics.counter "lp_rounding.improvements"

let fractional_weight fx =
  List.fold_left (fun acc ((j : Task.t), x) -> acc +. (j.Task.weight *. x)) 0.0 fx

(* Alteration: scan candidates in the given order, keeping a task whenever
   its whole path stays within the per-edge budget. *)
let alteration_per_edge ~budget_of path candidates =
  let load = Array.make (Path.num_edges path) 0 in
  let keep =
    List.filter
      (fun (j : Task.t) ->
        let rec ok e =
          e > j.Task.last_edge
          || (load.(e) + j.Task.demand <= budget_of e && ok (e + 1))
        in
        if ok j.Task.first_edge then begin
          for e = j.Task.first_edge to j.Task.last_edge do
            load.(e) <- load.(e) + j.Task.demand
          done;
          true
        end
        else false)
      candidates
  in
  keep

let alteration ~budget path candidates =
  alteration_per_edge ~budget_of:(fun _ -> budget) path candidates

let density (j : Task.t) x =
  j.Task.weight *. x /. float_of_int (j.Task.demand * Task.span j)

let greedy_round ~budget path fx =
  let candidates =
    fx
    |> List.filter (fun (_, x) -> x > 1e-9)
    |> List.sort (fun (j1, x1) (j2, x2) -> Float.compare (density j2 x2) (density j1 x1))
    |> List.map fst
  in
  alteration ~budget path candidates

let random_round ~budget ~prng path fx =
  let sampled =
    List.filter (fun (_, x) -> Util.Prng.bernoulli prng x) fx |> List.map fst
  in
  (* Heaviest-first alteration biases the dropped mass toward light tasks. *)
  let sampled =
    List.sort
      (fun (a : Task.t) (b : Task.t) -> Float.compare b.Task.weight a.Task.weight)
      sampled
  in
  alteration ~budget path sampled

let round ~budget ~trials ~prng path fx =
  let best = ref (greedy_round ~budget path fx) in
  let best_w = ref (Task.weight_of !best) in
  for _ = 1 to trials do
    Obs.Metrics.incr m_trials;
    let s = random_round ~budget ~prng path fx in
    let w = Task.weight_of s in
    if w > !best_w then begin
      Obs.Metrics.incr m_improvements;
      best := s;
      best_w := w
    end
  done;
  !best

let round_capacities ~trials ~prng path fx =
  let budget_of e = Path.capacity path e in
  let greedy =
    fx
    |> List.filter (fun (_, x) -> x > 1e-9)
    |> List.sort (fun (j1, x1) (j2, x2) -> Float.compare (density j2 x2) (density j1 x1))
    |> List.map fst
    |> alteration_per_edge ~budget_of path
  in
  let best = ref greedy in
  let best_w = ref (Task.weight_of greedy) in
  for _ = 1 to trials do
    Obs.Metrics.incr m_trials;
    let sampled =
      List.filter (fun (_, x) -> Util.Prng.bernoulli prng x) fx
      |> List.map fst
      |> List.sort (fun (a : Task.t) b -> Float.compare b.Task.weight a.Task.weight)
    in
    let s = alteration_per_edge ~budget_of path sampled in
    let w = Task.weight_of s in
    if w > !best_w then begin
      Obs.Metrics.incr m_improvements;
      best := s;
      best_w := w
    end
  done;
  !best
