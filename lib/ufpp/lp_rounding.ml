module Task = Core.Task
module Path = Core.Path

type fractional = (Task.t * float) list

let m_trials = Obs.Metrics.counter "lp_rounding.trials"

let m_improvements = Obs.Metrics.counter "lp_rounding.improvements"

let fractional_weight fx =
  List.fold_left (fun acc ((j : Task.t), x) -> acc +. (j.Task.weight *. x)) 0.0 fx

(* Alteration: scan candidates in the given order, keeping a task whenever
   its whole path stays within the per-edge budget. *)
let alteration_per_edge ~budget_of path candidates =
  let load = Array.make (Path.num_edges path) 0 in
  let keep =
    List.filter
      (fun (j : Task.t) ->
        let rec ok e =
          e > j.Task.last_edge
          || (load.(e) + j.Task.demand <= budget_of e && ok (e + 1))
        in
        if ok j.Task.first_edge then begin
          for e = j.Task.first_edge to j.Task.last_edge do
            load.(e) <- load.(e) + j.Task.demand
          done;
          true
        end
        else false)
      candidates
  in
  keep

let alteration ~budget path candidates =
  alteration_per_edge ~budget_of:(fun _ -> budget) path candidates

let density (j : Task.t) x =
  j.Task.weight *. x /. float_of_int (j.Task.demand * Task.span j)

let greedy_round ~budget path fx =
  let candidates =
    fx
    |> List.filter (fun (_, x) -> x > 1e-9)
    |> List.sort (fun (j1, x1) (j2, x2) -> Float.compare (density j2 x2) (density j1 x1))
    |> List.map fst
  in
  alteration ~budget path candidates

(* The heaviest-first order of the full task list, computed once per call
   instead of re-sorting every trial's sample.  Stable sorts commute with
   filtering (the relative order of any two elements depends only on
   their keys and original positions), so walking this permutation and
   keeping the sampled tasks yields exactly the list the per-trial
   [List.sort] used to.  [Array.stable_sort], not [Array.sort]: ties must
   break by original position to reproduce the historical placements. *)
let weight_order fx_arr =
  let order = Array.init (Array.length fx_arr) (fun i -> i) in
  Array.stable_sort
    (fun i1 i2 ->
      let (j1 : Task.t), _ = fx_arr.(i1) and (j2 : Task.t), _ = fx_arr.(i2) in
      Float.compare j2.Task.weight j1.Task.weight)
    order;
  order

(* One trial's sample, heaviest first.  The Bernoulli draws happen in the
   original [fx] order — one per task, sampled or not — so the stream
   consumption is identical to the historical per-trial filter-then-sort. *)
let sample_sorted ~prng fx_arr order scratch =
  Array.iteri (fun i (_, x) -> scratch.(i) <- Util.Prng.bernoulli prng x) fx_arr;
  let sampled = ref [] in
  for k = Array.length order - 1 downto 0 do
    let i = order.(k) in
    if scratch.(i) then sampled := fst fx_arr.(i) :: !sampled
  done;
  !sampled

let best_of_trials ~trials ~prng ~budget_of path fx greedy =
  let fx_arr = Array.of_list fx in
  let order = weight_order fx_arr in
  let scratch = Array.make (Array.length fx_arr) false in
  let best = ref greedy in
  let best_w = ref (Task.weight_of greedy) in
  for _ = 1 to trials do
    Obs.Metrics.incr m_trials;
    let sampled = sample_sorted ~prng fx_arr order scratch in
    let s = alteration_per_edge ~budget_of path sampled in
    let w = Task.weight_of s in
    if w > !best_w then begin
      Obs.Metrics.incr m_improvements;
      best := s;
      best_w := w
    end
  done;
  !best

let round ~budget ~trials ~prng path fx =
  let greedy = greedy_round ~budget path fx in
  best_of_trials ~trials ~prng ~budget_of:(fun _ -> budget) path fx greedy

let round_capacities ~trials ~prng path fx =
  let budget_of e = Path.capacity path e in
  let greedy =
    fx
    |> List.filter (fun (_, x) -> x > 1e-9)
    |> List.sort (fun (j1, x1) (j2, x2) -> Float.compare (density j2 x2) (density j1 x1))
    |> List.map fst
    |> alteration_per_edge ~budget_of path
  in
  best_of_trials ~trials ~prng ~budget_of path fx greedy
