module Task = Core.Task
module Path = Core.Path

let solve_by ~key path ts =
  let order =
    List.sort (fun a b -> Float.compare (key b) (key a)) ts
  in
  let load = Array.make (Path.num_edges path) 0 in
  List.filter
    (fun (j : Task.t) ->
      let rec ok e =
        e > j.Task.last_edge
        || (load.(e) + j.Task.demand <= Path.capacity path e && ok (e + 1))
      in
      if ok j.Task.first_edge then begin
        for e = j.Task.first_edge to j.Task.last_edge do
          load.(e) <- load.(e) + j.Task.demand
        done;
        true
      end
      else false)
    order

let solve path ts =
  let key (j : Task.t) =
    j.Task.weight /. float_of_int (j.Task.demand * Task.span j)
  in
  solve_by ~key path ts
