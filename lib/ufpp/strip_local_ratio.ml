module Task = Core.Task
module Path = Core.Path

let solve ~b path ts =
  List.iter
    (fun (j : Task.t) ->
      let bj = Path.bottleneck_of path j in
      if bj < b || bj >= 2 * b then
        invalid_arg "Strip_local_ratio.solve: bottleneck outside [B, 2B)")
    ts;
  let peel (_jstar : Task.t) (i : Task.t) =
    2.0 *. float_of_int i.Task.demand /. float_of_int b
  in
  let fits ~load (j : Task.t) = 2 * (load + j.Task.demand) <= b in
  Local_ratio_u.local_ratio_sweep ~peel ~fits path ts
