(** Rounding a fractional UFPP solution into a budget-packable task set
    (role of Chekuri et al., Theorem 6 — substitution documented in
    DESIGN.md §3.1).

    The small-task algorithm (Sect. 4.1) solves the LP on a bottleneck
    band, scales the optimum by 1/4 so that every per-edge fractional load
    is at most [B/2], and needs an integral solution of nearly the same
    weight whose load stays within [B/2].  We round with (a) randomized
    rounding + alteration over several trials and (b) a deterministic
    greedy by [w_j * x_j / d_j] density, and keep the heaviest outcome.
    Every outcome is load-checked against the budget before being
    returned. *)

type fractional = (Core.Task.t * float) list
(** Task with its (already scaled) fractional value in [\[0,1\]]. *)

val fractional_weight : fractional -> float
(** [sum w_j x_j] — the rounding target. *)

val round :
  budget:int ->
  trials:int ->
  prng:Util.Prng.t ->
  Core.Path.t ->
  fractional ->
  Core.Task.t list
(** [round ~budget ~trials ~prng path fx] returns a task set with per-edge
    load at most [budget].  [path] supplies only the edge count; capacities
    are not consulted (the budget is the binding constraint in a strip). *)

val round_capacities :
  trials:int ->
  prng:Util.Prng.t ->
  Core.Path.t ->
  fractional ->
  Core.Task.t list
(** Like {!round} but against the path's own per-edge capacities — the
    whole-instance rounding used by the UFPP composite solver (Calinescu
    et al. style: sample, then alter). *)
