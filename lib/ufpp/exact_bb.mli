(** Exact UFPP by branch and bound.

    Include/exclude search over tasks sorted by decreasing weight density,
    pruning with the residual-weight upper bound and an incremental load
    array.  Exponential worst case; intended for test oracles and the
    ratio experiments ([n] up to ~25 arbitrary tasks, more when capacities
    bind early).  Every result is checker-verified by the callers. *)

val solve : Core.Path.t -> Core.Task.t list -> Core.Task.t list
(** A maximum-weight feasible task set. *)

val value : Core.Path.t -> Core.Task.t list -> float
