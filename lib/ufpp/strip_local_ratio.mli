(** Algorithm Strip — the paper's Appendix.

    Input: a [delta]-small instance with every bottleneck in [\[B, 2B)].
    Output: a [B/2]-packable UFPP solution whose weight is at least
    [(1 - 4*delta) / 5] of the optimal SAP weight on the same tasks
    (so after the strip transform the end-to-end ratio is [5 + eps]).

    Model weights per round, with [jstar] the task of minimum right endpoint:
    [w1(jstar) = w(jstar)]; [w1(i) = 2 d_i / B * w(jstar)] for overlapping [i];
    a task is added on unwinding when its rightmost edge keeps load at most
    [B/2 - d_j] (checked in exact integer arithmetic as
    [2 * (load + d_j) <= B]). *)

val solve : b:int -> Core.Path.t -> Core.Task.t list -> Core.Task.t list
(** [solve ~b path ts] with [b = B].  Checks that every task's bottleneck
    lies in [\[B, 2B)] ([Invalid_argument] otherwise). *)
