module Task = Core.Task
module Path = Core.Path

type result = {
  solution : Core.Task.t list;
  exact : bool;
}

type state = {
  alive : int list;  (* sorted ids of selected tasks crossing the edge *)
  load : int;        (* their total demand (= load on the current edge) *)
  weight : float;
  chosen : Task.t list;
}

let solve ?cap ?(max_states = 50000) path ts =
  let clipped = match cap with Some c -> Path.clip path c | None -> path in
  let ts =
    List.filter (fun (j : Task.t) -> j.Task.demand <= Path.bottleneck_of clipped j) ts
  in
  match ts with
  | [] -> { solution = []; exact = true }
  | _ ->
      let m = Path.num_edges clipped in
      let exact = ref true in
      let starters = Array.make m [] in
      let by_id = Hashtbl.create (List.length ts) in
      List.iter
        (fun (j : Task.t) ->
          Hashtbl.replace by_id j.Task.id j;
          starters.(j.Task.first_edge) <- j :: starters.(j.Task.first_edge))
        ts;
      Array.iteri (fun e js -> starters.(e) <- List.sort Task.compare js) starters;
      let merge states =
        let tbl = Hashtbl.create (List.length states) in
        List.iter
          (fun st ->
            match Hashtbl.find_opt tbl st.alive with
            | Some st' when st'.weight >= st.weight -> ()
            | _ -> Hashtbl.replace tbl st.alive st)
          states;
        Hashtbl.fold (fun _ st acc -> st :: acc) tbl []
      in
      let truncate states =
        if List.length states <= max_states then states
        else begin
          exact := false;
          List.sort (fun a b -> Float.compare b.weight a.weight) states
          |> List.filteri (fun i _ -> i < max_states)
        end
      in
      let drop_expired e states =
        List.map
          (fun st ->
            let alive, load =
              List.fold_left
                (fun (alive, load) id ->
                  let j = Hashtbl.find by_id id in
                  if j.Task.last_edge >= e then (id :: alive, load + j.Task.demand)
                  else (alive, load))
                ([], 0) st.alive
            in
            { st with alive = List.sort Int.compare alive; load })
          states
        |> merge
      in
      let expand_task e states (j : Task.t) =
        let take st =
          let load = st.load + j.Task.demand in
          if load <= Path.capacity clipped e then
            Some
              {
                alive = List.sort Int.compare (j.Task.id :: st.alive);
                load;
                weight = st.weight +. j.Task.weight;
                chosen = j :: st.chosen;
              }
          else None
        in
        List.concat_map (fun st -> st :: Option.to_list (take st)) states
        |> merge |> truncate
      in
      (* Note: the load check above only guards the *current* edge; later
         edges are guarded when reached because alive tasks keep
         contributing to [load] after [drop_expired] recomputes it and each
         new insertion re-checks the running edge's capacity. *)
      let rec sweep e states =
        if e = m then states
        else
          let states = drop_expired e states in
          let states =
            (* Re-check the current edge's capacity against the surviving
               alive load (capacities can drop from one edge to the next). *)
            List.filter (fun st -> st.load <= Path.capacity clipped e) states
          in
          let states = List.fold_left (expand_task e) states starters.(e) in
          sweep (e + 1) states
      in
      let final = sweep 0 [ { alive = []; load = 0; weight = 0.0; chosen = [] } ] in
      let best =
        List.fold_left
          (fun acc st ->
            match acc with
            | Some b when b.weight >= st.weight -> acc
            | _ -> Some st)
          None final
      in
      let solution = match best with Some st -> st.chosen | None -> [] in
      { solution; exact = !exact }
