(** A practical constant-factor-style UFPP solver assembled from the same
    parts the paper assembles for SAP — the library's answer to "I have a
    UFPP instance, what do I run?".

    Bonsma et al. [10] (the paper's foundation) split UFPP exactly as
    Theorem 4 splits SAP.  We mirror that split with our substrates:

    - *small* tasks ([d <= delta b]): solve the LP and round against the
      true per-edge capacities (Calinescu-style sample + alteration);
    - *medium* tasks: the band framework over [J^(k,ell)] with the exact
      UFPP band DP ({!Band_dp}) run at *halved* band capacities; unioning
      residue classes [k ≡ r mod (ell+1)] is then feasible because the
      lower bands' geometric loads fit in the spared half (the same
      argument shape as the paper's Lemma 8, adapted to loads — see the
      implementation comment for the inequality);
    - *large* tasks ([d > b/2]): the rectangle MWIS — any UFPP solution's
      rectangle family is (2k)-colorable [10], so the exact MWIS is a
      [2k]-approximation for UFPP too.

    The headline ratios of [10] required their exact framework constants;
    ours is the engineering rendition with the feasibility argument kept
    and the constants *measured* (bench UFPP) rather than proved.  Outputs
    are always checker-feasible. *)

type report = {
  solution : Core.Task.t list;
  small_solution : Core.Task.t list;
  medium_solution : Core.Task.t list;
  large_solution : Core.Task.t list;
}

val solve_report :
  ?delta:float ->
  ?ell:int ->
  ?trials:int ->
  ?seed:int ->
  Core.Path.t ->
  Core.Task.t list ->
  report
(** Defaults: [delta = 0.25], [ell = 2], [trials = 16], [seed = 42]. *)

val solve :
  ?delta:float ->
  ?ell:int ->
  ?trials:int ->
  ?seed:int ->
  Core.Path.t ->
  Core.Task.t list ->
  Core.Task.t list
(** The heaviest of the three part solutions. *)
