module Task = Core.Task

let solve ts =
  let a = Array.of_list ts in
  Array.sort
    (fun (x : Task.t) (y : Task.t) ->
      match Int.compare x.Task.last_edge y.Task.last_edge with
      | 0 -> Int.compare x.Task.id y.Task.id
      | c -> c)
    a;
  let n = Array.length a in
  if n = 0 then []
  else begin
    (* pred.(i): largest index j < i with a.(j).last_edge < a.(i).first_edge,
       or -1.  Binary search over the sorted right endpoints. *)
    let pred i =
      let target = a.(i).Task.first_edge in
      let rec bs lo hi ans =
        if lo > hi then ans
        else
          let mid = (lo + hi) / 2 in
          if a.(mid).Task.last_edge < target then bs (mid + 1) hi mid
          else bs lo (mid - 1) ans
      in
      bs 0 (i - 1) (-1)
    in
    let best = Array.make (n + 1) 0.0 in
    let take = Array.make n false in
    for i = 0 to n - 1 do
      let without = best.(i) in
      let with_ = a.(i).Task.weight +. best.(pred i + 1) in
      if with_ > without then begin
        best.(i + 1) <- with_;
        take.(i) <- true
      end
      else best.(i + 1) <- without
    done;
    let rec backtrack i acc =
      if i < 0 then acc
      else if take.(i) then backtrack (pred i) (a.(i) :: acc)
      else backtrack (i - 1) acc
    in
    backtrack (n - 1) []
  end

let value ts = Task.weight_of (solve ts)
