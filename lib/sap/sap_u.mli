(** Baseline for uniform capacities: the Bar-Noy et al. [5] scheme.

    Their 7-approximation for SAP-U runs a UFPP-U approximation at reduced
    capacity and converts the result to a storage allocation with a DSA
    algorithm (Gergov's 3*LOAD).  We reproduce the scheme with our
    substrates: tasks with [d <= c/3] are solved by the local-ratio
    UFPP-U algorithm against capacity [floor(c/3)] and packed into the full
    strip by {!Dsa.Strip_transform} (whose input load is a third of the
    strip height, the same slack Gergov's bound provides); tasks with
    [d > c/3] are 1/3-large and go to the rectangle solver (Theorem 3,
    ratio 5).  The heavier solution wins.

    This is the related-work baseline the T4 experiment compares the
    Theorem 4 algorithm against on uniform instances. *)

val solve : Core.Path.t -> Core.Task.t list -> Core.Solution.sap
(** Requires uniform capacities ([Invalid_argument] otherwise).  Output is
    always checker-feasible. *)
