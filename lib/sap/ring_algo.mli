(** SAP on rings: Theorem 5's [(10+eps)]-approximation (Lemma 18).

    + Pick a minimum-capacity edge [e].
    + Cut the ring at [e]: every task is routed away from [e] and the
      instance becomes a path instance, solved with the Theorem 4
      algorithm (ratio [alpha = 9+eps]).
    + Separately, consider routing tasks *through* [e]: any such solution
      stacks inside capacity [c_e], which (as the global minimum) fits
      under every other edge too — so the through-[e] subproblem is a
      knapsack over all tasks, solved with the FPTAS.
    + Return the heavier; ratio [1 + alpha + eps = 10 + eps]. *)

type report = {
  solution : Core.Ring.solution;
  cut_edge : int;
  path_weight : float;   (** weight of the cut-path candidate *)
  through_weight : float;  (** weight of the knapsack candidate *)
}

val solve_report :
  ?config:Combine.config -> ?knapsack_eps:float -> Core.Ring.t -> report

val solve : ?config:Combine.config -> ?knapsack_eps:float -> Core.Ring.t -> Core.Ring.solution
(** Always {!Core.Ring.feasible}. [knapsack_eps] defaults to 0.1. *)
