module Task = Core.Task
module Path = Core.Path

type band_outcome = {
  k : int;
  band_tasks : Core.Task.t list;
  band_solution : Core.Solution.sap;
  band_exact : bool;
}

type result = {
  solution : Core.Solution.sap;
  chosen_residue : int;
  exact : bool;
  bands : band_outcome list;
}

let m_bands = Obs.Metrics.counter "almost_uniform.bands"

let m_inexact_bands = Obs.Metrics.counter "almost_uniform.inexact_bands"

let m_infeasible_candidates = Obs.Metrics.counter "almost_uniform.infeasible_candidates"

let g_chosen_residue = Obs.Metrics.gauge "almost_uniform.chosen_residue"

let ell_for_eps ~eps ~q =
  if eps <= 0.0 then invalid_arg "Almost_uniform.ell_for_eps";
  max 1 (int_of_float (ceil (float_of_int q /. eps)))

let positive_mod a p = (a mod p + p) mod p

let run ~ell ~q ?strategy ?max_states path ts =
  if ell < 1 || q < 1 then invalid_arg "Almost_uniform.run: ell, q >= 1";
  Obs.Trace.with_span "almost_uniform.run"
    ~attrs:
      [
        ("ell", string_of_int ell);
        ("q", string_of_int q);
        ("tasks", string_of_int (List.length ts));
      ]
  @@ fun () ->
  let groups = Core.Classify.power_bands path ~ell ts in
  let bands =
    List.map
      (fun (k, band_tasks) ->
        Obs.Trace.with_span "almost_uniform.band"
          ~attrs:
            [
              ("k", string_of_int k);
              ("tasks", string_of_int (List.length band_tasks));
            ]
        @@ fun () ->
        let r = Elevator.solve ~k ~ell ~q ?strategy ?max_states path band_tasks in
        Obs.Metrics.incr m_bands;
        if not r.Elevator.exact then Obs.Metrics.incr m_inexact_bands;
        Obs.Trace.add_attr "exact" (string_of_bool r.Elevator.exact);
        Obs.Trace.add_attr "placed"
          (string_of_int (List.length r.Elevator.solution));
        {
          k;
          band_tasks;
          band_solution = r.Elevator.solution;
          band_exact = r.Elevator.exact;
        })
      groups
  in
  let period = ell + q in
  let candidate r =
    bands
    |> List.filter (fun b -> positive_mod b.k period = r)
    |> List.fold_left (fun acc b -> Core.Solution.union acc b.band_solution) []
  in
  let best = ref [] in
  let best_w = ref neg_infinity in
  let best_r = ref 0 in
  for r = 0 to period - 1 do
    let sol = candidate r in
    if Result.is_ok (Core.Checker.sap_feasible path sol) then begin
      let w = Core.Solution.sap_weight sol in
      if w > !best_w then begin
        best_w := w;
        best := sol;
        best_r := r
      end
    end
    else Obs.Metrics.incr m_infeasible_candidates
  done;
  Obs.Metrics.set g_chosen_residue (float_of_int !best_r);
  Obs.Trace.add_attr "chosen_residue" (string_of_int !best_r);
  {
    solution = !best;
    chosen_residue = !best_r;
    exact = List.for_all (fun b -> b.band_exact) bands;
    bands;
  }
