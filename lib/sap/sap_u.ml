module Task = Core.Task
module Path = Core.Path

let uniform_capacity path =
  let c = Path.capacity path 0 in
  for e = 1 to Path.num_edges path - 1 do
    if Path.capacity path e <> c then
      invalid_arg "Sap_u.solve: capacities not uniform"
  done;
  c

let solve path ts =
  let c = uniform_capacity path in
  let ts = List.filter (fun (j : Task.t) -> j.Task.demand <= c) ts in
  let third = c / 3 in
  let narrow, wide = List.partition (fun (j : Task.t) -> j.Task.demand <= third) ts in
  let narrow_solution =
    if third = 0 then []
    else begin
      let reduced = Path.uniform ~edges:(Path.num_edges path) ~capacity:third in
      let ufpp = Ufpp.Local_ratio_u.solve reduced narrow in
      let r =
        Dsa.Strip_transform.transform ~height:c ~edges:(Path.num_edges path) ufpp
      in
      r.Dsa.Strip_transform.packed
    end
  in
  let wide_solution = Large.solve path wide in
  if
    Core.Solution.sap_weight narrow_solution
    >= Core.Solution.sap_weight wide_solution
  then narrow_solution
  else wide_solution
