(** Exact SAP via the Lemma 13 dynamic program, packaged for direct use.

    Much faster than the brute-force oracle when few tasks cross any single
    edge (the regime Lemma 12 describes); subsumes the Chen et al. [18]
    uniform-capacity DP.  Returns [None] when the state cap truncated the
    search — the result would then be a heuristic, and callers asking for
    "exact" deserve to know. *)

val solve :
  ?max_states:int ->
  Core.Path.t ->
  Core.Task.t list ->
  Core.Solution.sap option
(** [Some solution] iff the DP ran to completion (provably optimal). *)

val value : ?max_states:int -> Core.Path.t -> Core.Task.t list -> float option
