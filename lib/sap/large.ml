module Task = Core.Task
module Path = Core.Path

let fits path (j : Task.t) = j.Task.demand <= Path.bottleneck_of path j

let m_rectangles = Obs.Metrics.counter "large.rectangles"

let solve path ts =
  let ts = List.filter (fits path) ts in
  Obs.Trace.with_span "large.solve"
    ~attrs:[ ("tasks", string_of_int (List.length ts)) ]
  @@ fun () ->
  let rectangles = Rects.Rect.of_tasks path ts in
  Obs.Metrics.add m_rectangles (List.length rectangles);
  Obs.Trace.add_attr "rectangles" (string_of_int (List.length rectangles));
  let chosen = Rects.Rect_mwis.solve rectangles in
  Obs.Trace.add_attr "chosen" (string_of_int (List.length chosen));
  List.map Rects.Rect.to_sap_placement chosen

let solution_degeneracy path sol =
  let rectangles = Rects.Rect.of_tasks path (Core.Solution.sap_tasks sol) in
  let g = Rects.Rect_graph.build rectangles in
  snd (Rects.Rect_graph.degeneracy_order g)

let coloring_lower_bound path ts =
  let ts = List.filter (fits path) ts in
  let g = Rects.Rect_graph.build (Rects.Rect.of_tasks path ts) in
  match Rects.Rect_graph.color_classes g with
  | [] -> 0.0
  | heaviest :: _ ->
      List.fold_left
        (fun acc (r : Rects.Rect.t) -> acc +. r.Rects.Rect.task.Task.weight)
        0.0 heaviest
