(** Small tasks: Theorem 1 — the [(4+eps)]-approximation of Section 4.

    Pipeline per bottleneck band [J_t = { j : 2^t <= b(j) < 2^(t+1) }]
    (so [B = 2^t]):
    + solve the UFPP LP over the band with capacities clipped to [2B]
      (Observation 2 makes the clipping free);
    + scale the fractional optimum by 1/4, making every per-edge
      fractional load at most [B/2];
    + round to an integral [B/2]-packable UFPP solution
      ({!Ufpp.Lp_rounding}, role of Chekuri et al. Thm 6) — or, with
      [`Local_ratio], run the Appendix's Algorithm Strip instead;
    + transform the strip UFPP solution into a strip SAP solution
      ({!Dsa.Strip_transform}, role of Lemma 4);
    + Algorithm Strip-Pack: lift band [t]'s strip by [2^(t-1)] and stack
      (bands occupy disjoint vertical ranges [ [2^(t-1), 2^t) ]). *)

type rounding = [ `Lp of int (** trials *) | `Local_ratio ]

val solve_band :
  b:int ->
  rounding:rounding ->
  prng:Util.Prng.t ->
  Core.Path.t ->
  Core.Task.t list ->
  Core.Solution.sap
(** [solve_band ~b ...] handles one band: all bottlenecks must lie in
    [\[b, 2b)].  Returns a [b/2]-packable SAP solution (heights in
    [0, b/2)). *)

val strip_pack :
  ?parallel:bool ->
  rounding:rounding ->
  prng:Util.Prng.t ->
  Core.Path.t ->
  Core.Task.t list ->
  Core.Solution.sap
(** Algorithm Strip-Pack over all bands.  The returned solution is feasible
    for the original path (checked by the callers' test harness).

    With [~parallel:true] (default false) the bands fan out over
    {!Util.Parallel.map}.  Each band draws from a child generator jumped
    ({!Util.Prng.jump}) to the exact position the sequential band order
    would reach it at, so the placements — and therefore every weight
    gauge — are identical whether bands run on one domain or many.
    [prng] is advanced past all bands' draws either way. *)
