module Task = Core.Task
module Path = Core.Path

type config = {
  eps : float;
  delta : float;
  beta : float;
  rounding : Small.rounding;
  seed : int;
  max_states : int option;
  parallel : bool;
}

let default_config =
  {
    eps = 0.5;
    delta = 0.25;
    beta = 0.25;
    rounding = `Lp 16;
    seed = 42;
    max_states = None;
    parallel = false;
  }

type part = Small_part | Medium_part | Large_part

type report = {
  solution : Core.Solution.sap;
  chosen : part;
  small_solution : Core.Solution.sap;
  medium_solution : Core.Solution.sap;
  large_solution : Core.Solution.sap;
  medium_exact : bool;
}

let q_of_beta beta =
  if not (0.0 < beta && beta < 0.5) then invalid_arg "Combine: beta in (0, 1/2)";
  max 1 (int_of_float (ceil (Float.log2 (1.0 /. beta))))

let solve_report ?(config = default_config) path ts =
  let ts =
    List.filter (fun (j : Task.t) -> j.Task.demand <= Path.bottleneck_of path j) ts
  in
  let large_frac = 1.0 -. (2.0 *. config.beta) in
  let split = Core.Classify.split3 path ~delta:config.delta ~large_frac ts in
  let q = q_of_beta config.beta in
  let ell = Almost_uniform.ell_for_eps ~eps:config.eps ~q in
  (* The three specialists are independent; with [parallel] they run in
     their own domains.  Each gets identical inputs either way (the PRNG is
     created per part), so parallel and sequential runs agree exactly. *)
  let small_thunk () =
    let prng = Util.Prng.create config.seed in
    `Small (Small.strip_pack ~rounding:config.rounding ~prng path split.Core.Classify.small)
  in
  let medium_thunk () =
    `Medium
      (Almost_uniform.run ~ell ~q ?max_states:config.max_states path
         split.Core.Classify.medium)
  in
  let large_thunk () = `Large (Large.solve path split.Core.Classify.large) in
  let jobs = if config.parallel then 3 else 1 in
  let results =
    Util.Parallel.map ~jobs (fun f -> f ()) [ small_thunk; medium_thunk; large_thunk ]
  in
  let small_solution, medium, large_solution =
    match results with
    | [ `Small s; `Medium m; `Large l ] -> (s, m, l)
    | _ -> assert false
  in
  let w_small = Core.Solution.sap_weight small_solution in
  let w_medium = Core.Solution.sap_weight medium.Almost_uniform.solution in
  let w_large = Core.Solution.sap_weight large_solution in
  let chosen, solution =
    if w_small >= w_medium && w_small >= w_large then (Small_part, small_solution)
    else if w_medium >= w_large then (Medium_part, medium.Almost_uniform.solution)
    else (Large_part, large_solution)
  in
  {
    solution;
    chosen;
    small_solution;
    medium_solution = medium.Almost_uniform.solution;
    large_solution;
    medium_exact = medium.Almost_uniform.exact;
  }

let solve ?config path ts = (solve_report ?config path ts).solution

let pp_part ppf = function
  | Small_part -> Format.pp_print_string ppf "small"
  | Medium_part -> Format.pp_print_string ppf "medium"
  | Large_part -> Format.pp_print_string ppf "large"
