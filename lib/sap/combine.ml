module Task = Core.Task
module Path = Core.Path

type config = {
  eps : float;
  delta : float;
  beta : float;
  rounding : Small.rounding;
  seed : int;
  max_states : int option;
  parallel : bool;
}

let default_config =
  {
    eps = 0.5;
    delta = 0.25;
    beta = 0.25;
    rounding = `Lp 16;
    seed = 42;
    max_states = None;
    parallel = false;
  }

type part = Small_part | Medium_part | Large_part

type report = {
  solution : Core.Solution.sap;
  chosen : part;
  small_solution : Core.Solution.sap;
  medium_solution : Core.Solution.sap;
  large_solution : Core.Solution.sap;
  medium_exact : bool;
}

let q_of_beta beta =
  if not (0.0 < beta && beta < 0.5) then invalid_arg "Combine: beta in (0, 1/2)";
  max 1 (int_of_float (ceil (Float.log2 (1.0 /. beta))))

let g_weight_small = Obs.Metrics.gauge "combine.weight.small"

let g_weight_medium = Obs.Metrics.gauge "combine.weight.medium"

let g_weight_large = Obs.Metrics.gauge "combine.weight.large"

let h_small_seconds = Obs.Metrics.histogram "combine.part_seconds.small"

let h_medium_seconds = Obs.Metrics.histogram "combine.part_seconds.medium"

let h_large_seconds = Obs.Metrics.histogram "combine.part_seconds.large"

let c_chosen_small = Obs.Metrics.counter "combine.chosen.small"

let c_chosen_medium = Obs.Metrics.counter "combine.chosen.medium"

let c_chosen_large = Obs.Metrics.counter "combine.chosen.large"

let c_chosen = function
  | Small_part -> c_chosen_small
  | Medium_part -> c_chosen_medium
  | Large_part -> c_chosen_large

let part_name = function
  | Small_part -> "small"
  | Medium_part -> "medium"
  | Large_part -> "large"

let solve_report ?(config = default_config) path ts =
  let ts =
    List.filter (fun (j : Task.t) -> j.Task.demand <= Path.bottleneck_of path j) ts
  in
  let large_frac = 1.0 -. (2.0 *. config.beta) in
  let split = Core.Classify.split3 path ~delta:config.delta ~large_frac ts in
  let q = q_of_beta config.beta in
  let ell = Almost_uniform.ell_for_eps ~eps:config.eps ~q in
  Obs.Trace.with_span "combine.solve"
    ~attrs:
      [
        ("tasks", string_of_int (List.length ts));
        ("ell", string_of_int ell);
        ("q", string_of_int q);
        ("small_tasks", string_of_int (List.length split.Core.Classify.small));
        ("medium_tasks", string_of_int (List.length split.Core.Classify.medium));
        ("large_tasks", string_of_int (List.length split.Core.Classify.large));
        ("parallel", string_of_bool config.parallel);
      ]
  @@ fun () ->
  (* The three specialists are independent; with [parallel] they run in
     their own domains.  Each gets identical inputs either way (the PRNG is
     created per part), so parallel and sequential runs agree exactly.
     Spans opened inside a worker domain surface as separate root spans. *)
  let small_thunk () =
    Obs.Trace.with_span "combine.part.small" @@ fun () ->
    Obs.Metrics.time h_small_seconds @@ fun () ->
    let prng = Util.Prng.create config.seed in
    `Small
      (Small.strip_pack ~parallel:config.parallel ~rounding:config.rounding
         ~prng path split.Core.Classify.small)
  in
  let medium_thunk () =
    Obs.Trace.with_span "combine.part.medium" @@ fun () ->
    Obs.Metrics.time h_medium_seconds @@ fun () ->
    `Medium
      (Almost_uniform.run ~ell ~q ?max_states:config.max_states path
         split.Core.Classify.medium)
  in
  let large_thunk () =
    Obs.Trace.with_span "combine.part.large" @@ fun () ->
    Obs.Metrics.time h_large_seconds @@ fun () ->
    `Large (Large.solve path split.Core.Classify.large)
  in
  let jobs = if config.parallel then 3 else 1 in
  let results =
    Util.Parallel.map ~jobs (fun f -> f ()) [ small_thunk; medium_thunk; large_thunk ]
  in
  let small_solution, medium, large_solution =
    match results with
    | [ `Small s; `Medium m; `Large l ] -> (s, m, l)
    | _ -> assert false
  in
  let w_small = Core.Solution.sap_weight small_solution in
  let w_medium = Core.Solution.sap_weight medium.Almost_uniform.solution in
  let w_large = Core.Solution.sap_weight large_solution in
  let chosen, solution =
    if w_small >= w_medium && w_small >= w_large then (Small_part, small_solution)
    else if w_medium >= w_large then (Medium_part, medium.Almost_uniform.solution)
    else (Large_part, large_solution)
  in
  Obs.Metrics.set g_weight_small w_small;
  Obs.Metrics.set g_weight_medium w_medium;
  Obs.Metrics.set g_weight_large w_large;
  Obs.Metrics.incr (c_chosen chosen);
  Obs.Trace.add_attr "chosen" (part_name chosen);
  Obs.Trace.add_attr "weight_small" (Printf.sprintf "%.6g" w_small);
  Obs.Trace.add_attr "weight_medium" (Printf.sprintf "%.6g" w_medium);
  Obs.Trace.add_attr "weight_large" (Printf.sprintf "%.6g" w_large);
  {
    solution;
    chosen;
    small_solution;
    medium_solution = medium.Almost_uniform.solution;
    large_solution;
    medium_exact = medium.Almost_uniform.exact;
  }

let solve ?config path ts = (solve_report ?config path ts).solution

let pp_part ppf = function
  | Small_part -> Format.pp_print_string ppf "small"
  | Medium_part -> Format.pp_print_string ppf "medium"
  | Large_part -> Format.pp_print_string ppf "large"

(* ---------- audit ---------- *)

type bound_kind = Lp_bound | Exact_bound

let bound_kind_name = function Lp_bound -> "lp" | Exact_bound -> "exact"

type audit = {
  upper_bound : float;
  bound_kind : bound_kind;
  achieved_weight : float;
  total_weight : float;
  empirical_ratio : float option;
  checker_ok : bool;
  checker_error : string option;
  scheduled : int;
  tasks : int;
  chosen_part : part;
  weight_small : float;
  weight_medium : float;
  weight_large : float;
  medium_exact : bool;
}

let h_ratio = Obs.Metrics.histogram "combine.empirical_ratio"

let g_lp_upper_bound = Obs.Metrics.gauge "combine.lp_upper_bound"

let c_checker_failures = Obs.Metrics.counter "combine.audit.checker_failures"

let audit ?lp_upper_bound ?exact_optimum path ts r =
  (* An exact optimum (from the lab's branch and bound) beats the LP
     relaxation: it makes the empirical ratio a true OPT/ALG, not an
     over-estimate.  The record says which one it got. *)
  let ub, kind =
    match (exact_optimum, lp_upper_bound) with
    | Some v, _ -> (v, Exact_bound)
    | None, Some v -> (v, Lp_bound)
    | None, None -> (Lp.Ufpp_lp.upper_bound path ts, Lp_bound)
  in
  let achieved = Core.Solution.sap_weight r.solution in
  let ratio = if achieved > 0.0 then Some (ub /. achieved) else None in
  let checker = Core.Checker.sap_feasible path r.solution in
  (match kind with
  | Lp_bound -> Obs.Metrics.set g_lp_upper_bound ub
  | Exact_bound -> ());
  (match ratio with Some x -> Obs.Metrics.observe h_ratio x | None -> ());
  if Result.is_error checker then Obs.Metrics.incr c_checker_failures;
  {
    upper_bound = ub;
    bound_kind = kind;
    achieved_weight = achieved;
    total_weight = Task.weight_of ts;
    empirical_ratio = ratio;
    checker_ok = Result.is_ok checker;
    checker_error = (match checker with Ok () -> None | Error m -> Some m);
    scheduled = List.length r.solution;
    tasks = List.length ts;
    chosen_part = r.chosen;
    weight_small = Core.Solution.sap_weight r.small_solution;
    weight_medium = Core.Solution.sap_weight r.medium_solution;
    weight_large = Core.Solution.sap_weight r.large_solution;
    medium_exact = r.medium_exact;
  }

let audit_json a =
  Obs.Json.Obj
    [
      ("upper_bound", Obs.Json.Float a.upper_bound);
      ("bound_kind", Obs.Json.String (bound_kind_name a.bound_kind));
      ("achieved_weight", Obs.Json.Float a.achieved_weight);
      ("total_weight", Obs.Json.Float a.total_weight);
      ( "empirical_ratio",
        match a.empirical_ratio with
        | Some x -> Obs.Json.Float x
        | None -> Obs.Json.Null );
      ( "checker",
        Obs.Json.Obj
          [
            ("ok", Obs.Json.Bool a.checker_ok);
            ( "error",
              match a.checker_error with
              | Some m -> Obs.Json.String m
              | None -> Obs.Json.Null );
          ] );
      ("scheduled", Obs.Json.Int a.scheduled);
      ("tasks", Obs.Json.Int a.tasks);
      ( "parts",
        Obs.Json.Obj
          [
            ("small", Obs.Json.Float a.weight_small);
            ("medium", Obs.Json.Float a.weight_medium);
            ("large", Obs.Json.Float a.weight_large);
            ("chosen", Obs.Json.String (part_name a.chosen_part));
            ("medium_exact", Obs.Json.Bool a.medium_exact);
          ] );
    ]

let pp_audit ppf a =
  (match a.bound_kind with
  | Lp_bound -> Format.fprintf ppf "@[<v>lp upper bound    %.3f@," a.upper_bound
  | Exact_bound -> Format.fprintf ppf "@[<v>exact optimum     %.3f@," a.upper_bound);
  Format.fprintf ppf "achieved weight   %.3f  (of %.3f total)@," a.achieved_weight
    a.total_weight;
  (match a.empirical_ratio with
  | Some x -> Format.fprintf ppf "empirical ratio   %.3f  (guarantee: 9+eps)@," x
  | None -> Format.fprintf ppf "empirical ratio   n/a (zero weight scheduled)@,");
  Format.fprintf ppf "checker           %s@,"
    (match a.checker_error with
    | None -> "feasible"
    | Some m -> "INFEASIBLE: " ^ m);
  Format.fprintf ppf "scheduled         %d of %d tasks@," a.scheduled a.tasks;
  Format.fprintf ppf "parts             small %.3f | medium %.3f%s | large %.3f -> %a@]"
    a.weight_small a.weight_medium
    (if a.medium_exact then " (exact)" else "")
    a.weight_large pp_part a.chosen_part
