module Ring = Core.Ring

type report = {
  solution : Core.Ring.solution;
  cut_edge : int;
  path_weight : float;
  through_weight : float;
}

let min_capacity_edge (r : Ring.t) =
  let caps = r.Ring.capacities in
  let best = ref 0 in
  Array.iteri (fun e c -> if c < caps.(!best) then best := e) caps;
  !best

let through_candidate (r : Ring.t) ~cut_edge ~knapsack_eps =
  let m = Ring.num_edges r in
  let capacity = r.Ring.capacities.(cut_edge) in
  let items =
    Array.to_list r.Ring.tasks
    |> List.map (fun (tk : Ring.task) ->
           Knapsack.make_item ~index:tk.Ring.id ~size:tk.Ring.demand
             ~profit:tk.Ring.weight)
  in
  let chosen = Knapsack.solve_fptas ~eps:knapsack_eps ~capacity items in
  (* Stack the chosen tasks bottom-up (h2(j) = sum of earlier demands) and
     route each through the cut edge. *)
  let rec stack h acc = function
    | [] -> List.rev acc
    | (it : Knapsack.item) :: rest ->
        let tk = r.Ring.tasks.(it.Knapsack.index) in
        let cw = Ring.edges_of_route ~m ~src:tk.Ring.src ~dst:tk.Ring.dst Ring.Cw in
        let dir = if List.mem cut_edge cw then Ring.Cw else Ring.Ccw in
        stack (h + tk.Ring.demand) ((tk, h, dir) :: acc) rest
  in
  stack 0 [] chosen

let g_path_weight = Obs.Metrics.gauge "ring.path_weight"

let g_through_weight = Obs.Metrics.gauge "ring.through_weight"

let solve_report ?config ?(knapsack_eps = 0.1) (r : Ring.t) =
  let cut_edge = min_capacity_edge r in
  Obs.Trace.with_span "ring.solve"
    ~attrs:
      [
        ("tasks", string_of_int (Array.length r.Ring.tasks));
        ("cut_edge", string_of_int cut_edge);
      ]
  @@ fun () ->
  let path, path_tasks, back = Ring.cut r ~cut_edge in
  let cand_path =
    Obs.Trace.with_span "ring.path_candidate" @@ fun () ->
    let path_sol = Combine.solve ?config path path_tasks in
    Ring.to_ring_solution r ~cut_edge path_sol back
  in
  let cand_through =
    Obs.Trace.with_span "ring.through_candidate" @@ fun () ->
    through_candidate r ~cut_edge ~knapsack_eps
  in
  let path_weight = Ring.solution_weight cand_path in
  let through_weight = Ring.solution_weight cand_through in
  Obs.Metrics.set g_path_weight path_weight;
  Obs.Metrics.set g_through_weight through_weight;
  let solution = if path_weight >= through_weight then cand_path else cand_through in
  Obs.Trace.add_attr "chosen"
    (if path_weight >= through_weight then "path" else "through");
  { solution; cut_edge; path_weight; through_weight }

let solve ?config ?knapsack_eps r =
  (solve_report ?config ?knapsack_eps r).solution
