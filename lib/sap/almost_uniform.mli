(** Algorithm AlmostUniform — the framework of Section 5.1 (Theorem 2).

    Given a band solver producing beta-elevated alpha-approximate solutions
    for every band [J^(k,ell)], the framework:
    + solves every non-empty band;
    + for each residue [r] of [k mod (ell+q)], with [q = ceil(log2 1/beta)],
      unions the band solutions with [k ≡ r] — feasible because a band's
      elevation [2^(k-q)] clears the [2^(k'+ell)] makespan ceiling
      (Observation 7) of every lower band [k' <= k - ell - q] in the union
      (Lemma 8);
    + returns the heaviest of the [ell+q] candidates (Lemma 9 gives the
      [ell/(ell+q) * 1/alpha] fraction, so [ell = q/eps] yields
      [(1+eps) * alpha]).

    With the Elevator as band solver, [alpha = 2]: the [(2+eps)]
    medium-task algorithm. *)

type band_outcome = {
  k : int;
  band_tasks : Core.Task.t list;
  band_solution : Core.Solution.sap;
  band_exact : bool;
}

type result = {
  solution : Core.Solution.sap;
  chosen_residue : int;
  exact : bool;  (** every band DP ran to completion *)
  bands : band_outcome list;
}

val ell_for_eps : eps:float -> q:int -> int
(** [ceil(q / eps)] — Lemma 10's choice. *)

val run :
  ell:int ->
  q:int ->
  ?strategy:[ `Partition | `Direct ] ->
  ?max_states:int ->
  Core.Path.t ->
  Core.Task.t list ->
  result
(** Runs the framework with {!Elevator.solve} on every band.  Each
    candidate union is feasibility-checked; infeasible candidates (never
    observed; guarded for integer edge cases of bands with [k < q]) are
    skipped. *)
