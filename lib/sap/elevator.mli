(** Algorithm Elevator: optimal SAP on an almost-uniform band, partitioned
    into a beta-elevated 2-approximation (Lemmas 13-15).

    {2 The dynamic program (Lemma 13)}

    Edges are swept left to right; a DP state is the set of *alive* tasks
    (those whose path covers the current edge) together with their heights.
    When a task starts, it is either skipped or placed at a candidate
    height; conflicts are checked against the alive set, which is complete
    because two overlapping tasks are simultaneously alive on every shared
    edge.  Candidate heights are the bounded distinct subset sums of all
    demands — complete by the gravity argument (Observation 11 /
    Lemma 12(ii)).  States with equal (alive-set, heights) keys are merged
    keeping the max weight, which is exactly the paper's table
    [Pi(e_i, S_i, h_i)] evaluated lazily on reachable states only.

    The paper's bound on the table size uses [L = 2^ell / delta] tasks per
    edge (Lemma 12(i)); we do not materialise the full [O(n^(L+L^2))] table
    but cap the live state count, reporting whether the cap was hit (in
    which case the result is a heuristic, not an optimum — the tests run
    well under the cap). *)

type result = {
  solution : Core.Solution.sap;
  exact : bool;  (** false iff the state cap truncated the search *)
}

val optimal_band :
  cap:int ->
  ?min_height:int ->
  ?max_states:int ->
  Core.Path.t ->
  Core.Task.t list ->
  result
(** [optimal_band ~cap p ts] — optimal SAP for [ts] with every capacity
    clipped at [cap] (the band's [2^(k+ell)] ceiling).  [max_states]
    defaults to 20000 live states per edge.  [min_height] (default 0)
    restricts candidate heights to [>= min_height]: with
    [min_height = beta * 2^k] this computes the optimal *beta-elevated*
    solution directly — the alternative the paper notes after Lemma 15. *)

val partition_elevated :
  elevation:int ->
  Core.Path.t ->
  cap:int ->
  Core.Solution.sap ->
  Core.Solution.sap * Core.Solution.sap
(** Lemma 14: split [(S,h)] into [S1 = { h < elevation }] lifted by
    [elevation], and [S2 = { h >= elevation }].  Both halves are
    [elevation]-elevated; [S2] is trivially feasible and [S1]'s
    feasibility, guaranteed for [(1-2beta)]-small tasks when
    [elevation <= beta * 2^k], is machine-checked by the caller. *)

val solve :
  k:int ->
  ell:int ->
  q:int ->
  ?strategy:[ `Partition | `Direct ] ->
  ?max_states:int ->
  Core.Path.t ->
  Core.Task.t list ->
  result
(** The full Elevator.  With [`Partition] (default, the paper's Lemma 15):
    optimal band solution, partitioned at elevation [2^(k-q)] (clamped to
    at least 1), better feasible half returned — 2-approximate and
    beta-elevated for [beta >= 2^-q].  With [`Direct] (the alternative the
    paper notes after Lemma 15): one DP restricted to elevated heights,
    returning the optimal elevated solution directly — also 2-approximate
    by Lemma 14, and never worse than either partition half.  The ABL
    bench compares the two. *)
