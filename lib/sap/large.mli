(** Large tasks: Theorem 3 — the [(2k-1)]-approximation of Section 6.

    The algorithm itself is the rectangle reduction followed by an exact
    maximum-weight independent set of the rectangles [R(j)] drawn at their
    top positions; the chosen family, placed at heights [l(j)], *is* a SAP
    solution.  The [(2k-1)] guarantee is the coloring argument
    (Lemmas 16/17): the rectangle graph of any [1/k]-large SAP solution is
    [(2k-2)]-degenerate, so its heaviest color class — an independent set —
    carries a [1/(2k-1)] fraction of the optimum, and the exact MWIS can
    only do better. *)

val solve : Core.Path.t -> Core.Task.t list -> Core.Solution.sap
(** Exact rectangle MWIS as a SAP solution.  Tasks that do not fit alone
    are dropped.  No largeness check: the approximation guarantee needs
    [1/k]-largeness, the feasibility of the output does not. *)

val solution_degeneracy : Core.Path.t -> Core.Solution.sap -> int
(** Degeneracy of the rectangle graph [R(S)] of a solution's task set —
    the quantity Lemma 17 bounds by [2k-2]; measured by experiment T3. *)

val coloring_lower_bound : Core.Path.t -> Core.Task.t list -> float
(** Weight of the heaviest color class of [R(J)] under the smallest-last
    coloring — the constructive bound the analysis uses; the bench compares
    it with the exact MWIS weight. *)
