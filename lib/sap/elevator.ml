module Task = Core.Task
module Path = Core.Path

type result = {
  solution : Core.Solution.sap;
  exact : bool;
}

let m_dp_states = Obs.Metrics.counter "elevator.dp_states"

let m_truncations = Obs.Metrics.counter "elevator.truncations"

let m_candidate_heights = Obs.Metrics.counter "elevator.candidate_heights"

let m_band_solves = Obs.Metrics.counter "elevator.band_solves"

type state = {
  alive : (Task.t * int) list;  (* sorted by task id *)
  weight : float;
  placed : Core.Solution.sap;
}

let state_key st =
  List.map (fun ((j : Task.t), h) -> (j.Task.id, h)) st.alive

let insert_alive alive (j, h) =
  let rec go = function
    | [] -> [ (j, h) ]
    | ((i : Task.t), _) as hd :: tl when i.Task.id < (j : Task.t).Task.id ->
        hd :: go tl
    | rest -> (j, h) :: rest
  in
  go alive

let vertical_conflict (j : Task.t) p ((i : Task.t), hi) =
  p < hi + i.Task.demand && hi < p + j.Task.demand

(* Candidate heights: bounded distinct subset sums of all demands; the
   gravity argument makes this complete.  Capped to keep adversarial
   palettes polynomial — the flag records whether the cap was reached. *)
let candidate_cap = 4096

let height_candidates ~cap ~min_height ts =
  let demands = List.map (fun (j : Task.t) -> j.Task.demand) ts in
  let sums = Util.Subset_sum.distinct_sums_capped ~cap:candidate_cap ~bound:cap demands in
  let exact = List.length sums < candidate_cap in
  if min_height = 0 then (sums, exact)
  else begin
    (* An optimal elevated solution exists whose heights are either subset
       sums >= min_height or subset sums lifted by min_height (the shape
       Lemma 14's partition produces), so both families are candidates. *)
    let lifted = List.map (fun h -> h + min_height) sums in
    let merged =
      List.sort_uniq Int.compare
        (List.filter (fun h -> h >= min_height && h < cap) (sums @ lifted))
    in
    (merged, exact)
  end

let optimal_band ~cap ?(min_height = 0) ?(max_states = 20000) path ts =
  let clipped = Path.clip path cap in
  let ts =
    List.filter (fun (j : Task.t) -> j.Task.demand <= Path.bottleneck_of clipped j) ts
  in
  match ts with
  | [] -> { solution = []; exact = true }
  | _ ->
      let m = Path.num_edges clipped in
      let candidates, cands_exact = height_candidates ~cap ~min_height ts in
      Obs.Metrics.incr m_band_solves;
      Obs.Metrics.add m_candidate_heights (List.length candidates);
      let exact = ref cands_exact in
      let starters = Array.make m [] in
      List.iter
        (fun (j : Task.t) ->
          starters.(j.Task.first_edge) <- j :: starters.(j.Task.first_edge))
        ts;
      (* Stable processing order inside an edge keeps runs reproducible. *)
      Array.iteri
        (fun e js -> starters.(e) <- List.sort Task.compare js)
        starters;
      let merge states =
        let tbl = Hashtbl.create (List.length states) in
        List.iter
          (fun st ->
            let key = state_key st in
            match Hashtbl.find_opt tbl key with
            | Some st' when st'.weight >= st.weight -> ()
            | _ -> Hashtbl.replace tbl key st)
          states;
        Hashtbl.fold (fun _ st acc -> st :: acc) tbl []
      in
      let truncate states =
        if List.length states <= max_states then states
        else begin
          exact := false;
          Obs.Metrics.incr m_truncations;
          let sorted =
            List.sort (fun a b -> Float.compare b.weight a.weight) states
          in
          List.filteri (fun i _ -> i < max_states) sorted
        end
      in
      let expand_task states (j : Task.t) =
        let ceiling = Path.bottleneck_of clipped j in
        let with_placements st =
          let feasible_heights =
            List.filter
              (fun p ->
                p + j.Task.demand <= ceiling
                && not (List.exists (vertical_conflict j p) st.alive))
              candidates
          in
          st
          :: List.map
               (fun p ->
                 {
                   alive = insert_alive st.alive (j, p);
                   weight = st.weight +. j.Task.weight;
                   placed = (j, p) :: st.placed;
                 })
               feasible_heights
        in
        List.concat_map with_placements states |> merge |> truncate
      in
      let drop_expired e states =
        List.map
          (fun st ->
            {
              st with
              alive =
                List.filter (fun ((i : Task.t), _) -> i.Task.last_edge >= e) st.alive;
            })
          states
        |> merge
      in
      let initial = [ { alive = []; weight = 0.0; placed = [] } ] in
      let final =
        let rec sweep e states =
          if e = m then states
          else
            let states = drop_expired e states in
            let states = List.fold_left expand_task states starters.(e) in
            (* Counting live states is O(|states|); only pay when observed. *)
            if Obs.Metrics.enabled () then
              Obs.Metrics.add m_dp_states (List.length states);
            sweep (e + 1) states
        in
        sweep 0 initial
      in
      let best =
        List.fold_left
          (fun acc st ->
            match acc with
            | Some b when b.weight >= st.weight -> acc
            | _ -> Some st)
          None final
      in
      let solution = match best with Some st -> st.placed | None -> [] in
      { solution; exact = !exact }

let partition_elevated ~elevation _path ~cap:_ sol =
  let low, high = List.partition (fun (_, h) -> h < elevation) sol in
  (Core.Solution.lift low elevation, high)

let solve ~k ~ell ~q ?(strategy = `Partition) ?max_states path ts =
  let cap = 1 lsl (k + ell) in
  let elevation = if k >= q then 1 lsl (k - q) else 1 in
  match strategy with
  | `Direct ->
      (* One DP over elevated heights only: optimal among beta-elevated
         solutions, which Lemma 14 proves is a 2-approximation. *)
      optimal_band ~cap ~min_height:elevation ?max_states path ts
  | `Partition ->
      let r = optimal_band ~cap ?max_states path ts in
      let s1, s2 = partition_elevated ~elevation path ~cap r.solution in
      (* S2 is a sub-solution of a feasible solution, hence feasible; S1 is
         feasible for (1-2beta)-small tasks by Lemma 14 — machine-checked,
         and discarded if the integer edge cases of a tiny band break it. *)
      let s1_ok = Result.is_ok (Core.Checker.sap_feasible path s1) in
      let w1 = if s1_ok then Core.Solution.sap_weight s1 else neg_infinity in
      let w2 = Core.Solution.sap_weight s2 in
      { solution = (if w1 >= w2 then s1 else s2); exact = r.exact }
