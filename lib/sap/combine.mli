(** The headline algorithm: Theorem 4's [(9+eps)]-approximation for SAP.

    With [k = 2] and [beta = 1/4] the task set splits into
    - small:  [d_j <= delta * b(j)]        → Strip-Pack, [(4+eps)]-approx;
    - medium: [delta < d_j/b(j) <= 1/2]    → AlmostUniform, [(2+eps)]-approx;
    - large:  [d_j > b(j)/2]               → rectangle MWIS, [3]-approx;
    and the heaviest of the three solutions is a [(9+eps)]-approximation by
    Lemma 3 (ratios add:  [(4+eps) + (2+eps) + 3 = 9 + eps']).

    The theory's [delta] is microscopic ([~eps/100]); like any
    implementation must, we expose it as a parameter (default 1/4) — the
    guarantee degrades gracefully and the measured ratios stay far below
    the bound either way. *)

type config = {
  eps : float;            (** drives [ell = ceil(q/eps)] for AlmostUniform *)
  delta : float;          (** small / medium threshold *)
  beta : float;           (** elevation fraction; [q = ceil(log2 1/beta)] *)
  rounding : Small.rounding;  (** engine for the small-task strips *)
  seed : int;             (** PRNG seed for the LP rounding trials *)
  max_states : int option;    (** Elevator DP state cap *)
  parallel : bool;        (** run the three specialists in parallel domains *)
}

val default_config : config
(** [eps = 0.5], [delta = 0.25], [beta = 0.25], LP rounding with 16 trials,
    seed 42, default state cap, sequential.  [parallel = true] gives
    identical results (the specialists share nothing) on up to 3 domains. *)

val q_of_beta : float -> int
(** [ceil(log2 1/beta)], at least 1 — the elevation exponent the
    combination uses.  Exposed so front-ends (the CLI's standalone
    [medium] algorithm) derive [ell]/[q] from the same defaults instead of
    hardcoding them.  Requires [beta] in (0, 1/2). *)

type part = Small_part | Medium_part | Large_part

type report = {
  solution : Core.Solution.sap;
  chosen : part;
  small_solution : Core.Solution.sap;
  medium_solution : Core.Solution.sap;
  large_solution : Core.Solution.sap;
  medium_exact : bool;
}

val solve_report : ?config:config -> Core.Path.t -> Core.Task.t list -> report

val solve : ?config:config -> Core.Path.t -> Core.Task.t list -> Core.Solution.sap
(** The best of the three part solutions; always checker-feasible. *)

val pp_part : Format.formatter -> part -> unit

type bound_kind = Lp_bound | Exact_bound

val bound_kind_name : bound_kind -> string
(** ["lp"] / ["exact"] — the report vocabulary (docs/FORMAT.md). *)

type audit = {
  upper_bound : float;
      (** the UFPP LP relaxation bound, or a true optimum when the caller
          has one (the ratio lab's branch and bound) *)
  bound_kind : bound_kind;
      (** what [upper_bound] is: [Lp_bound] over-estimates OPT, so the
          ratio is conservative; [Exact_bound] makes it a true OPT/ALG *)
  achieved_weight : float;
  total_weight : float;  (** weight of the whole task set *)
  empirical_ratio : float option;
      (** [upper_bound / achieved_weight] ([>= 1]; the Thm 4 guarantee
          caps it at [9+eps]); [None] when nothing was scheduled *)
  checker_ok : bool;
  checker_error : string option;
  scheduled : int;
  tasks : int;
  chosen_part : part;
  weight_small : float;
  weight_medium : float;
  weight_large : float;
  medium_exact : bool;
}
(** The per-solve ratio certificate: how far the combination actually
    landed from the LP upper bound, with the per-part contributions and
    an independent feasibility verdict.  Continuously recording these is
    what makes the [(9+eps)] guarantee observable across PRs. *)

val audit :
  ?lp_upper_bound:float ->
  ?exact_optimum:float ->
  Core.Path.t ->
  Core.Task.t list ->
  report ->
  audit
(** Audit a {!solve_report} result.  Computes the UFPP LP upper bound
    unless the caller already has it ([sap_cli] prints it anyway), runs
    the checker, and records [combine.lp_upper_bound],
    [combine.empirical_ratio] and [combine.audit.checker_failures]
    metrics.  [exact_optimum] (when the caller certified OPT, e.g. via
    the lab's branch and bound) takes precedence over [lp_upper_bound]
    and tags the record [Exact_bound].  Call it {e after} snapshotting
    solve metrics if the LP recomputation must not perturb [simplex.*]
    counters. *)

val audit_json : audit -> Obs.Json.t
(** The [audit] record of the stats report (docs/FORMAT.md). *)

val pp_audit : Format.formatter -> audit -> unit
