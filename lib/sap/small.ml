module Task = Core.Task
module Path = Core.Path

type rounding = [ `Lp of int | `Local_ratio ]

let solve_band ~b ~rounding ~prng path ts =
  List.iter
    (fun (j : Task.t) ->
      let bj = Path.bottleneck_of path j in
      if bj < b || bj >= 2 * b then
        invalid_arg "Small.solve_band: bottleneck outside [B, 2B)")
    ts;
  let budget = b / 2 in
  if budget = 0 then []
  else begin
    (* Step 1-3: a budget-packable UFPP solution inside the band. *)
    let strip_ufpp =
      match rounding with
      | `Local_ratio -> Ufpp.Strip_local_ratio.solve ~b path ts
      | `Lp trials ->
          let clipped = Path.clip path (2 * b) in
          let lp = Lp.Ufpp_lp.solve clipped ts in
          let fractional =
            Array.to_list lp.Lp.Ufpp_lp.tasks
            |> List.mapi (fun i j -> (j, 0.25 *. lp.Lp.Ufpp_lp.solution.(i)))
          in
          Ufpp.Lp_rounding.round ~budget ~trials ~prng path fractional
    in
    (* Step 4: strip transform (role of Lemma 4). *)
    let r =
      Dsa.Strip_transform.transform ~height:budget ~edges:(Path.num_edges path)
        strip_ufpp
    in
    r.Dsa.Strip_transform.packed
  end

let strip_pack ~rounding ~prng path ts =
  let ts = List.filter (fun (j : Task.t) -> j.Task.demand <= Path.bottleneck_of path j) ts in
  let bands = Core.Classify.strip_bands path ts in
  List.fold_left
    (fun acc (t, band_tasks) ->
      let b = 1 lsl t in
      let sol = solve_band ~b ~rounding ~prng path band_tasks in
      (* Strip-Pack line 3: lift band t's strip into [2^(t-1), 2^t). *)
      let lifted = Core.Solution.lift sol (b / 2) in
      Core.Solution.union acc lifted)
    [] bands
