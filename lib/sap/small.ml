module Task = Core.Task
module Path = Core.Path

type rounding = [ `Lp of int | `Local_ratio ]

let m_bands = Obs.Metrics.counter "small.bands"

let m_dropped = Obs.Metrics.counter "small.dropped_tasks"

let h_loss = Obs.Metrics.histogram "small.loss_fraction"

let h_lp_objective = Obs.Metrics.histogram "small.lp_objective"

let h_band_seconds = Obs.Metrics.histogram "small.band_seconds"

let solve_band ~b ~rounding ~prng path ts =
  List.iter
    (fun (j : Task.t) ->
      let bj = Path.bottleneck_of path j in
      if bj < b || bj >= 2 * b then
        invalid_arg "Small.solve_band: bottleneck outside [B, 2B)")
    ts;
  let budget = b / 2 in
  if budget = 0 then []
  else Obs.Metrics.time h_band_seconds @@ fun () -> begin
    Obs.Metrics.incr m_bands;
    (* Step 1-3: a budget-packable UFPP solution inside the band. *)
    let strip_ufpp =
      match rounding with
      | `Local_ratio -> Ufpp.Strip_local_ratio.solve ~b path ts
      | `Lp trials ->
          (* Observation 2 makes clipping free; when every capacity is
             already at most 2B it is also the identity, so skip the
             profile copy. *)
          let clipped =
            if 2 * b >= Path.max_capacity path then path
            else Path.clip path (2 * b)
          in
          let lp = Lp.Ufpp_lp.solve clipped ts in
          Obs.Metrics.observe h_lp_objective lp.Lp.Ufpp_lp.value;
          Obs.Trace.add_attr "lp_objective"
            (Printf.sprintf "%.6g" lp.Lp.Ufpp_lp.value);
          Obs.Trace.add_attr "rounding_trials" (string_of_int trials);
          let fractional =
            Array.to_list lp.Lp.Ufpp_lp.tasks
            |> List.mapi (fun i j -> (j, 0.25 *. lp.Lp.Ufpp_lp.solution.(i)))
          in
          Ufpp.Lp_rounding.round ~budget ~trials ~prng path fractional
    in
    (* Step 4: strip transform (role of Lemma 4). *)
    let r =
      Dsa.Strip_transform.transform ~height:budget ~edges:(Path.num_edges path)
        strip_ufpp
    in
    let loss = Dsa.Strip_transform.loss_fraction r in
    Obs.Metrics.observe h_loss loss;
    Obs.Metrics.add m_dropped (List.length r.Dsa.Strip_transform.dropped);
    Obs.Trace.add_attr "loss_fraction" (Printf.sprintf "%.6g" loss);
    Obs.Trace.add_attr "dropped" (string_of_int (List.length r.Dsa.Strip_transform.dropped));
    r.Dsa.Strip_transform.packed
  end

(* Exactly how many PRNG draws [solve_band] consumes: the LP-rounding
   path draws one Bernoulli per task per trial (the per-trial filter
   evaluates every task), and nothing else in the band touches the
   generator.  Bands with budget [b/2 = 0] return before rounding. *)
let band_draws ~rounding ~b n_tasks =
  match rounding with
  | `Local_ratio -> 0
  | `Lp trials -> if b / 2 = 0 then 0 else trials * n_tasks

let strip_pack ?(parallel = false) ~rounding ~prng path ts =
  let ts = List.filter (fun (j : Task.t) -> j.Task.demand <= Path.bottleneck_of path j) ts in
  let bands = Core.Classify.strip_bands path ts in
  Obs.Trace.with_span "small.strip_pack"
    ~attrs:
      [
        ("tasks", string_of_int (List.length ts));
        ("bands", string_of_int (List.length bands));
        ("parallel", string_of_bool parallel);
      ]
    (fun () ->
      (* Bands are independent, so they fan out over domains.  Each band
         gets a child generator jumped to the exact stream position the
         sequential fold would reach it at, so parallel and sequential
         runs place identical tasks — and both match the historical
         single-generator fold bit for bit. *)
      let offsets, total =
        List.fold_left
          (fun (offs, off) (t, band_tasks) ->
            let b = 1 lsl t in
            (off :: offs, off + band_draws ~rounding ~b (List.length band_tasks)))
          ([], 0) bands
      in
      let jobs = if parallel then Util.Parallel.default_jobs () else 1 in
      let solutions =
        Util.Parallel.map ~jobs
          (fun ((t, band_tasks), offset) ->
            let b = 1 lsl t in
            let child = Util.Prng.jump prng offset in
            Obs.Trace.with_span "small.band"
              ~attrs:
                [
                  ("t", string_of_int t);
                  ("b", string_of_int b);
                  ("tasks", string_of_int (List.length band_tasks));
                ]
              (fun () -> solve_band ~b ~rounding ~prng:child path band_tasks))
          (List.combine bands (List.rev offsets))
      in
      Util.Prng.skip prng total;
      List.fold_left2
        (fun acc (t, _) sol ->
          let b = 1 lsl t in
          (* Strip-Pack line 3: lift band t's strip into [2^(t-1), 2^t). *)
          let lifted = Core.Solution.lift sol (b / 2) in
          Core.Solution.union acc lifted)
        [] bands solutions)
