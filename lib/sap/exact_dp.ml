let solve ?max_states path ts =
  match ts with
  | [] -> Some []
  | _ ->
      let cap = Core.Path.max_capacity path in
      let r = Elevator.optimal_band ~cap ?max_states path ts in
      if r.Elevator.exact then Some r.Elevator.solution else None

let value ?max_states path ts =
  Option.map Core.Solution.sap_weight (solve ?max_states path ts)
