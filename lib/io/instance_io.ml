module Task = Core.Task
module Path = Core.Path

let instance_to_string_as ~header path tasks =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (header ^ "\n");
  Buffer.add_string buf "capacities";
  Array.iter (fun c -> Buffer.add_string buf (" " ^ string_of_int c)) (Path.capacities path);
  Buffer.add_char buf '\n';
  List.iter
    (fun (j : Task.t) ->
      Buffer.add_string buf
        (Printf.sprintf "task %d %d %d %d %.17g\n" j.Task.id j.Task.first_edge
           j.Task.last_edge j.Task.demand j.Task.weight))
    tasks;
  Buffer.contents buf

let instance_to_string path tasks =
  instance_to_string_as ~header:"sap-instance v1" path tasks

let solution_to_string sol =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "sap-solution v1\n";
  List.iter
    (fun ((j : Task.t), h) ->
      Buffer.add_string buf (Printf.sprintf "place %d %d\n" j.Task.id h))
    (Core.Solution.sort_by_id sol);
  Buffer.contents buf

let meaningful_lines s =
  String.split_on_char '\n' s
  |> List.map String.trim
  |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))

let ( let* ) = Result.bind

let parse_int what s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "expected integer for %s, got %S" what s)

let parse_float what s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "expected number for %s, got %S" what s)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let instance_of_string_as ~header:expected s =
  match meaningful_lines s with
  | [] -> Error "empty input"
  | header :: rest ->
      let* () =
        if String.trim header = expected then Ok ()
        else Error (Printf.sprintf "bad header %S" header)
      in
      let* caps_line, task_lines =
        match rest with
        | caps :: tasks -> Ok (caps, tasks)
        | [] -> Error "missing capacities line"
      in
      let* caps =
        match String.split_on_char ' ' caps_line |> List.filter (( <> ) "") with
        | "capacities" :: values when values <> [] ->
            map_result (parse_int "capacity") values
        | _ -> Error "malformed capacities line"
      in
      let* path =
        try Ok (Path.create (Array.of_list caps))
        with Invalid_argument m -> Error m
      in
      let parse_task line =
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "task"; id; first; last; demand; weight ] ->
            let* id = parse_int "id" id in
            let* first_edge = parse_int "first_edge" first in
            let* last_edge = parse_int "last_edge" last in
            let* demand = parse_int "demand" demand in
            let* weight = parse_float "weight" weight in
            (try Ok (Task.make ~id ~first_edge ~last_edge ~demand ~weight)
             with Invalid_argument m -> Error m)
        | _ -> Error (Printf.sprintf "malformed task line %S" line)
      in
      let* tasks = map_result parse_task task_lines in
      let* () =
        if List.for_all (fun (j : Task.t) -> j.Task.last_edge < Path.num_edges path) tasks
        then Ok ()
        else Error "task leaves the path"
      in
      Ok (path, tasks)

let instance_of_string s = instance_of_string_as ~header:"sap-instance v1" s

(* ---------- round instances / solutions ---------- *)

(* The round-instance carrier is deliberately isomorphic to
   sap-instance: only the header differs, so every generator, pretty
   printer and fuzzer transfers.  Validation beyond shape (unique ids,
   fits-alone) lives in Round.Instance.create, exactly as Path/Task
   validation lives in Core here. *)

let round_instance_to_string path tasks =
  instance_to_string_as ~header:"round-instance v1" path tasks

let round_instance_of_string s =
  instance_of_string_as ~header:"round-instance v1" s

let round_solution_to_string rounds =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "round-solution v1\n";
  Buffer.add_string buf (Printf.sprintf "rounds %d\n" (List.length rounds));
  List.iteri
    (fun r sol ->
      List.iter
        (fun ((j : Task.t), h) ->
          Buffer.add_string buf (Printf.sprintf "place %d %d %d\n" j.Task.id r h))
        (Core.Solution.sort_by_id sol))
    rounds;
  Buffer.contents buf

let round_solution_of_string ~tasks s =
  let by_id = Hashtbl.create 32 in
  List.iter (fun (j : Task.t) -> Hashtbl.replace by_id j.Task.id j) tasks;
  match meaningful_lines s with
  | [] -> Error "empty input"
  | header :: rest ->
      let* () =
        if String.trim header = "round-solution v1" then Ok ()
        else Error (Printf.sprintf "bad header %S" header)
      in
      let* count_line, place_lines =
        match rest with
        | c :: p -> Ok (c, p)
        | [] -> Error "missing rounds line"
      in
      let* n =
        match String.split_on_char ' ' count_line |> List.filter (( <> ) "") with
        | [ "rounds"; n ] -> parse_int "round count" n
        | _ -> Error (Printf.sprintf "malformed rounds line %S" count_line)
      in
      let* () =
        if n >= 0 then Ok () else Error "negative round count"
      in
      let parse_place line =
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "place"; id; r; h ] ->
            let* id = parse_int "task id" id in
            let* r = parse_int "round" r in
            let* h = parse_int "height" h in
            let* j =
              match Hashtbl.find_opt by_id id with
              | Some j -> Ok j
              | None -> Error (Printf.sprintf "unknown task id %d" id)
            in
            let* () =
              if r >= 0 && r < n then Ok ()
              else Error (Printf.sprintf "round %d out of range [0, %d)" r n)
            in
            Ok (j, r, h)
        | _ -> Error (Printf.sprintf "malformed place line %S" line)
      in
      let* places = map_result parse_place place_lines in
      let buckets = Array.make n [] in
      List.iter (fun (j, r, h) -> buckets.(r) <- (j, h) :: buckets.(r)) places;
      Ok (Array.to_list (Array.map List.rev buckets))

let solution_of_string ~tasks s =
  let by_id = Hashtbl.create 32 in
  List.iter (fun (j : Task.t) -> Hashtbl.replace by_id j.Task.id j) tasks;
  match meaningful_lines s with
  | [] -> Error "empty input"
  | header :: rest ->
      let* () =
        if String.trim header = "sap-solution v1" then Ok ()
        else Error (Printf.sprintf "bad header %S" header)
      in
      let parse_place line =
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "place"; id; h ] ->
            let* id = parse_int "task id" id in
            let* h = parse_int "height" h in
            let* j =
              match Hashtbl.find_opt by_id id with
              | Some j -> Ok j
              | None -> Error (Printf.sprintf "unknown task id %d" id)
            in
            Ok (j, h)
        | _ -> Error (Printf.sprintf "malformed place line %S" line)
      in
      map_result parse_place rest

(* ---------- ring instances ---------- *)

module Ring = Core.Ring

let ring_to_string (r : Ring.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "ring-instance v1\n";
  Buffer.add_string buf "capacities";
  Array.iter (fun c -> Buffer.add_string buf (" " ^ string_of_int c)) r.Ring.capacities;
  Buffer.add_char buf '\n';
  Array.iter
    (fun (t : Ring.task) ->
      Buffer.add_string buf
        (Printf.sprintf "rtask %d %d %d %d %.17g\n" t.Ring.id t.Ring.src
           t.Ring.dst t.Ring.demand t.Ring.weight))
    r.Ring.tasks;
  Buffer.contents buf

let ring_of_string s =
  match meaningful_lines s with
  | [] -> Error "empty input"
  | header :: rest ->
      let* () =
        if String.trim header = "ring-instance v1" then Ok ()
        else Error (Printf.sprintf "bad header %S" header)
      in
      let* caps_line, task_lines =
        match rest with
        | caps :: tasks -> Ok (caps, tasks)
        | [] -> Error "missing capacities line"
      in
      let* caps =
        match String.split_on_char ' ' caps_line |> List.filter (( <> ) "") with
        | "capacities" :: values when values <> [] ->
            map_result (parse_int "capacity") values
        | _ -> Error "malformed capacities line"
      in
      let m = List.length caps in
      let parse_task line =
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "rtask"; id; src; dst; demand; weight ] ->
            let* id = parse_int "id" id in
            let* src = parse_int "src" src in
            let* dst = parse_int "dst" dst in
            let* demand = parse_int "demand" demand in
            let* weight = parse_float "weight" weight in
            (try Ok (Ring.make_task ~id ~src ~dst ~demand ~weight ~t_edges:m)
             with Invalid_argument m -> Error m)
        | _ -> Error (Printf.sprintf "malformed rtask line %S" line)
      in
      let* tasks = map_result parse_task task_lines in
      (try Ok (Ring.create (Array.of_list caps) tasks)
       with Invalid_argument m -> Error m)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))
