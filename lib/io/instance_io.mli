(** Plain-text serialization of instances and solutions.

    Format (line oriented, [#] comments, blank lines ignored):

    {v
    sap-instance v1
    capacities 5 10 10 5
    task <id> <first_edge> <last_edge> <demand> <weight>
    ...
    v}

    Solutions append height lines to the same carrier:

    {v
    sap-solution v1
    place <task_id> <height>
    ...
    v}

    The CLI uses these for [gen | solve | check] pipelines; round-tripping
    is property-tested. *)

val instance_to_string : Core.Path.t -> Core.Task.t list -> string

val instance_of_string : string -> (Core.Path.t * Core.Task.t list, string) result

val solution_to_string : Core.Solution.sap -> string

val solution_of_string :
  tasks:Core.Task.t list -> string -> (Core.Solution.sap, string) result
(** Resolves task ids against [tasks]; unknown ids are an error. *)

val ring_to_string : Core.Ring.t -> string
(** Ring instances ride the same carrier with their own header:

    {v
    ring-instance v1
    capacities 5 10 10 5
    rtask <id> <src> <dst> <demand> <weight>
    ...
    v}

    Terminals are vertices in [0 .. m-1]; routing is not part of the
    instance.  Used by the ratio lab's corpus. *)

val ring_of_string : string -> (Core.Ring.t, string) result

val write_file : string -> string -> unit

val read_file : string -> string
