(** Plain-text serialization of instances and solutions.

    Format (line oriented, [#] comments, blank lines ignored):

    {v
    sap-instance v1
    capacities 5 10 10 5
    task <id> <first_edge> <last_edge> <demand> <weight>
    ...
    v}

    Solutions append height lines to the same carrier:

    {v
    sap-solution v1
    place <task_id> <height>
    ...
    v}

    The CLI uses these for [gen | solve | check] pipelines; round-tripping
    is property-tested. *)

val instance_to_string : Core.Path.t -> Core.Task.t list -> string

val instance_of_string : string -> (Core.Path.t * Core.Task.t list, string) result

val solution_to_string : Core.Solution.sap -> string

val solution_of_string :
  tasks:Core.Task.t list -> string -> (Core.Solution.sap, string) result
(** Resolves task ids against [tasks]; unknown ids are an error. *)

val ring_to_string : Core.Ring.t -> string
(** Ring instances ride the same carrier with their own header:

    {v
    ring-instance v1
    capacities 5 10 10 5
    rtask <id> <src> <dst> <demand> <weight>
    ...
    v}

    Terminals are vertices in [0 .. m-1]; routing is not part of the
    instance.  Used by the ratio lab's corpus. *)

val ring_of_string : string -> (Core.Ring.t, string) result

val round_instance_to_string : Core.Path.t -> Core.Task.t list -> string
(** ROUND-SAP instances are carrier-isomorphic to [sap-instance v1] —
    only the header differs, declaring the all-tasks-mandatory
    minimum-rounds objective:

    {v
    round-instance v1
    capacities 5 10 10 5
    task <id> <first_edge> <last_edge> <demand> <weight>
    ...
    v}

    Semantic validation (unique ids, every task fits alone) lives in
    [Round.Instance.create]; this layer only checks shape, like
    everything else here. *)

val round_instance_of_string :
  string -> (Core.Path.t * Core.Task.t list, string) result

val round_solution_to_string : Core.Solution.sap list -> string
(** {v
    round-solution v1
    rounds <n>
    place <task_id> <round> <height>
    ...
    v} *)

val round_solution_of_string :
  tasks:Core.Task.t list ->
  string ->
  (Core.Solution.sap list, string) result
(** Reconstructs exactly [rounds n] rounds (possibly empty lists if a
    round index is unused — the round checker rejects those).  Unknown
    task ids and out-of-range round indices are errors. *)

val write_file : string -> string -> unit

val read_file : string -> string
