type t = { caps : int array; rmq : Util.Range_min.t }

let create caps =
  if Array.length caps = 0 then invalid_arg "Path.create: no edges";
  Array.iter
    (fun c -> if c <= 0 then invalid_arg "Path.create: non-positive capacity")
    caps;
  let caps = Array.copy caps in
  { caps; rmq = Util.Range_min.build caps }

let uniform ~edges ~capacity = create (Array.make edges capacity)

let num_edges p = Array.length p.caps

let capacity p e = p.caps.(e)

let capacities p = Array.copy p.caps

let bottleneck p ~first ~last = Util.Range_min.query p.rmq first last

let bottleneck_edge p ~first ~last = Util.Range_min.query_arg p.rmq first last

let bottleneck_of p (j : Task.t) =
  bottleneck p ~first:j.Task.first_edge ~last:j.Task.last_edge

let min_capacity p = bottleneck p ~first:0 ~last:(num_edges p - 1)

let max_capacity p = Array.fold_left max p.caps.(0) p.caps

let clip p c = create (Array.map (fun x -> min x c) p.caps)

let pp ppf p =
  Format.fprintf ppf "path[%d edges: %a]" (num_edges p)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       Format.pp_print_int)
    (Array.to_list p.caps)
