type sap = (Task.t * int) list

let sap_weight sol =
  List.fold_left (fun acc ((j : Task.t), _) -> acc +. j.Task.weight) 0.0 sol

let sap_tasks sol = List.map fst sol

let sap_height sol j =
  let _, h = List.find (fun ((i : Task.t), _) -> i.Task.id = j.Task.id) sol in
  h

let lift sol dh = List.map (fun (j, h) -> (j, h + dh)) sol

let union a b =
  let module S = Set.Make (Int) in
  let ids =
    List.fold_left (fun s ((j : Task.t), _) -> S.add j.Task.id s) S.empty a
  in
  List.iter
    (fun ((j : Task.t), _) ->
      if S.mem j.Task.id ids then
        invalid_arg "Solution.union: task sets not disjoint")
    b;
  a @ b

let makespan path sol =
  let m = Path.num_edges path in
  let top = Array.make m 0 in
  List.iter
    (fun ((j : Task.t), h) ->
      for e = j.Task.first_edge to j.Task.last_edge do
        top.(e) <- max top.(e) (h + j.Task.demand)
      done)
    sol;
  top

let max_makespan path sol = Array.fold_left max 0 (makespan path sol)

let is_packable path ~bound sol = max_makespan path sol <= bound

let ufpp_is_packable path ~bound ts =
  Instance.max_load path ts <= bound

let sort_by_id sol =
  List.sort (fun ((a : Task.t), _) (b, _) -> Int.compare a.Task.id b.Task.id) sol

let pp ppf sol =
  let pp_one ppf (j, h) = Format.fprintf ppf "%a@@h=%d" Task.pp j h in
  Format.fprintf ppf "@[<v>%a@]" (Format.pp_print_list pp_one) (sort_by_id sol)
