let ( let* ) r f = match r with Ok () -> f () | Error _ as e -> e

let no_duplicates ids =
  let tbl = Hashtbl.create 64 in
  let rec go = function
    | [] -> Ok ()
    | id :: rest ->
        if Hashtbl.mem tbl id then
          Error (Printf.sprintf "duplicate task id %d" id)
        else begin
          Hashtbl.add tbl id ();
          go rest
        end
  in
  go ids

(* Full edge-range validation.  The checker trusts nothing: a task record
   with [first_edge < 0] or an inverted range would otherwise sail through
   and crash [Instance.load_profile] with an array-bounds exception instead
   of surfacing an [Error] to the caller. *)
let within_path path (j : Task.t) =
  if j.Task.first_edge < 0 then
    Error (Printf.sprintf "task %d starts before the path" j.Task.id)
  else if j.Task.first_edge > j.Task.last_edge then
    Error (Printf.sprintf "task %d has an inverted edge range" j.Task.id)
  else if j.Task.last_edge >= Path.num_edges path then
    Error (Printf.sprintf "task %d leaves the path" j.Task.id)
  else Ok ()

let ufpp_feasible path ts =
  let* () = no_duplicates (List.map (fun (j : Task.t) -> j.Task.id) ts) in
  let rec check_tasks = function
    | [] -> Ok ()
    | j :: rest ->
        let* () = within_path path j in
        check_tasks rest
  in
  let* () = check_tasks ts in
  let load = Instance.load_profile path ts in
  let m = Path.num_edges path in
  let rec scan e =
    if e = m then Ok ()
    else if load.(e) > Path.capacity path e then
      Error
        (Printf.sprintf "edge %d overloaded: load %d > capacity %d" e load.(e)
           (Path.capacity path e))
    else scan (e + 1)
  in
  scan 0

let sap_geometry path sol ~bound =
  (* Per edge, the vertical segments [h, h+d) of tasks using the edge must be
     pairwise disjoint and end at or below min(capacity, bound). *)
  let m = Path.num_edges path in
  let per_edge = Array.make m [] in
  List.iter
    (fun ((j : Task.t), h) ->
      for e = j.Task.first_edge to j.Task.last_edge do
        per_edge.(e) <- (h, h + j.Task.demand, j.Task.id) :: per_edge.(e)
      done)
    sol;
  let rec scan e =
    if e = m then Ok ()
    else
      let limit = min (Path.capacity path e) bound in
      let segs = List.sort compare per_edge.(e) in
      let rec walk prev_top prev_id = function
        | [] -> scan (e + 1)
        | (lo, hi, id) :: rest ->
            if lo < prev_top then
              Error
                (Printf.sprintf "edge %d: tasks %d and %d overlap vertically"
                   e prev_id id)
            else if hi > limit then
              Error
                (Printf.sprintf
                   "edge %d: task %d tops out at %d above limit %d" e id hi
                   limit)
            else walk hi id rest
      in
      walk 0 (-1) segs
  in
  scan 0

let sap_feasible_gen path ~bound sol =
  let* () = no_duplicates (List.map (fun ((j : Task.t), _) -> j.Task.id) sol) in
  let rec basics = function
    | [] -> Ok ()
    | ((j : Task.t), h) :: rest ->
        let* () = within_path path j in
        if h < 0 then Error (Printf.sprintf "task %d below ground" j.Task.id)
        else basics rest
  in
  let* () = basics sol in
  sap_geometry path sol ~bound

let sap_feasible path sol = sap_feasible_gen path ~bound:max_int sol

let sap_feasible_within path ~bound sol = sap_feasible_gen path ~bound sol

let expect_ok = function
  | Ok () -> ()
  | Error msg -> failwith ("Checker: " ^ msg)

let subset_of sol all =
  let tbl = Hashtbl.create 64 in
  List.iter (fun (j : Task.t) -> Hashtbl.replace tbl j.Task.id j) all;
  List.for_all
    (fun (j : Task.t) ->
      match Hashtbl.find_opt tbl j.Task.id with
      | Some j' -> j = j'
      | None -> false)
    sol
