(** Solution representations.

    A UFPP solution is a task list; a SAP solution pairs each chosen task
    with its integer height [h(j)].  Feasibility is checked by {!Checker},
    never assumed. *)

type sap = (Task.t * int) list
(** The pair [(S, h)] of the paper, fused. *)

val sap_weight : sap -> float

val sap_tasks : sap -> Task.t list

val sap_height : sap -> Task.t -> int
(** @raise Not_found if the task is not in the solution. *)

val lift : sap -> int -> sap
(** [lift sol dh] adds [dh] to every height (Algorithm Strip-Pack, line 3). *)

val union : sap -> sap -> sap
(** [h1 ∪ h2] of the paper — concatenation; callers guarantee disjoint task
    sets (checked: raises [Invalid_argument] on a duplicate task id). *)

val makespan : Path.t -> sap -> int array
(** Per-edge makespan [mu_h(S(e)) = max h(j) + d_j] over tasks using the
    edge (0 on unused edges). *)

val max_makespan : Path.t -> sap -> int

val is_packable : Path.t -> bound:int -> sap -> bool
(** [B]-packability: every edge's makespan is at most [bound]. *)

val ufpp_is_packable : Path.t -> bound:int -> Task.t list -> bool
(** The UFPP analogue: every edge's load is at most [bound]. *)

val sort_by_id : sap -> sap

val pp : Format.formatter -> sap -> unit
