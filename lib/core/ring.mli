(** SAP on ring networks (Sect. 7).

    The resource is a cycle [C = (V, E)] with [m] edges; edge [e] connects
    vertices [e] and [(e+1) mod m].  Each task names two distinct terminal
    vertices and may be routed clockwise ([src -> dst] through increasing
    edges) or counter-clockwise.  A solution fixes a routing, a task subset
    and heights. *)

type task = private {
  id : int;
  src : int;
  dst : int;  (** vertices in [0..m-1], [src <> dst] *)
  demand : int;
  weight : float;
}

type t = { capacities : int array; tasks : task array }

type direction = Cw | Ccw

type solution = (task * int * direction) list
(** (task, height, routing). *)

val make_task : id:int -> src:int -> dst:int -> demand:int -> weight:float -> t_edges:int -> task

val create : int array -> task list -> t
(** Validates terminals against the number of edges and re-numbers ids. *)

val num_edges : t -> int

val edges_of_route : m:int -> src:int -> dst:int -> direction -> int list
(** The edge set used by a routed task: clockwise is
    [src, src+1, ..., dst-1 (mod m)]; counter-clockwise the complement. *)

val solution_weight : solution -> float

val feasible : t -> solution -> (unit, string) result
(** Ring analogue of {!Checker.sap_feasible}: routed tasks sharing an edge
    occupy disjoint vertical ranges below the edge capacity. *)

val cut : t -> cut_edge:int -> Path.t * Task.t list * (int -> task)
(** [cut r ~cut_edge] removes [cut_edge] and relabels the remaining edges
    [0..m-2] as a path (walking clockwise from the vertex after the cut).
    Returns the path, the clockwise-routed path tasks for *every* ring task
    (each routed so as to avoid the cut edge — always possible), and a
    mapping from path-task id back to the ring task.  Tasks for which both
    terminals coincide after routing are preserved verbatim. *)

val to_ring_solution : t -> cut_edge:int -> Solution.sap -> (int -> task) -> solution
(** Interprets a SAP solution on the cut path as a ring solution (all tasks
    routed away from the cut edge). *)
