(** Task classification by demand-to-bottleneck ratio and bottleneck bands.

    The paper's pipeline hinges on three partitions of the task set:
    - small / medium / large by [d_j] relative to [b(j)] (Theorem 4);
    - the Strip-Pack bands [J_t = { j : 2^t <= b(j) < 2^{t+1} }] (Sect. 4.2);
    - the AlmostUniform bands [J^{k,l} = { j : 2^k <= b(j) < 2^{k+l} }]
      (Sect. 5.1), where every task falls in exactly [l] bands. *)

type split = {
  small : Task.t list;  (** [d_j <= delta * b(j)] *)
  medium : Task.t list; (** [delta * b(j) < d_j <= large_frac * b(j)] *)
  large : Task.t list;  (** [d_j > large_frac * b(j)] *)
}

val is_small : Path.t -> delta:float -> Task.t -> bool
(** [d_j <= delta * b(j)]. *)

val is_large : Path.t -> frac:float -> Task.t -> bool
(** [d_j > frac * b(j)]. *)

val split3 : Path.t -> delta:float -> large_frac:float -> Task.t list -> split
(** Requires [0 < delta <= large_frac].  The theorem-4 configuration is
    [delta] small-vs-medium and [large_frac = 1/2] (i.e. [k = 2],
    [beta = 1/4]). *)

val floor_log2 : int -> int
(** [floor(log2 n)] for [n >= 1]. *)

val strip_bands : Path.t -> Task.t list -> (int * Task.t list) list
(** [strip_bands p ts] groups tasks by [t = floor(log2 b(j))]; the band
    list is sorted by [t] ascending and contains only non-empty bands. *)

val power_bands : Path.t -> ell:int -> Task.t list -> (int * Task.t list) list
(** [power_bands p ~ell ts] returns [(k, J^{k,ell})] for every [k] with a
    non-empty band; a task with [floor(log2 b(j)) = t] belongs to bands
    [k = t - ell + 1 .. t].  Sorted by [k]. *)

val residual : Path.t -> Task.t -> int
(** The residual capacity [l(j) = b(j) - d_j] (Sect. 6). *)
