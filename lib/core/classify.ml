type split = {
  small : Task.t list;
  medium : Task.t list;
  large : Task.t list;
}

let is_small path ~delta (j : Task.t) =
  float_of_int j.Task.demand <= delta *. float_of_int (Path.bottleneck_of path j)

let is_large path ~frac (j : Task.t) =
  float_of_int j.Task.demand > frac *. float_of_int (Path.bottleneck_of path j)

let split3 path ~delta ~large_frac ts =
  if not (0.0 < delta && delta <= large_frac) then
    invalid_arg "Classify.split3: need 0 < delta <= large_frac";
  let small, rest = List.partition (is_small path ~delta) ts in
  let large, medium = List.partition (is_large path ~frac:large_frac) rest in
  { small; medium; large }

let floor_log2 n =
  if n < 1 then invalid_arg "Classify.floor_log2";
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let group_sorted pairs =
  (* pairs : (band, task) list -> (band, tasks) list grouped, band ascending *)
  let sorted =
    List.sort (fun (a, _) (b, _) -> Int.compare a b) pairs
  in
  let rec go acc current = function
    | [] -> ( match current with None -> List.rev acc | Some g -> List.rev (g :: acc))
    | (k, j) :: rest -> (
        match current with
        | Some (k', js) when k' = k -> go acc (Some (k', j :: js)) rest
        | Some g -> go (g :: acc) (Some (k, [ j ])) rest
        | None -> go acc (Some (k, [ j ])) rest)
  in
  go [] None sorted
  |> List.map (fun (k, js) -> (k, List.rev js))

let strip_bands path ts =
  let pairs =
    List.map (fun j -> (floor_log2 (Path.bottleneck_of path j), j)) ts
  in
  group_sorted pairs

let power_bands path ~ell ts =
  if ell < 1 then invalid_arg "Classify.power_bands: ell >= 1";
  let pairs =
    List.concat_map
      (fun j ->
        let t = floor_log2 (Path.bottleneck_of path j) in
        List.init ell (fun i -> (t - i, j)))
      ts
  in
  group_sorted pairs

let residual path (j : Task.t) = Path.bottleneck_of path j - j.Task.demand
