(** The "gravity" normalisation of Observation 11.

    Any feasible SAP solution can be transformed, without losing tasks or
    feasibility, into one where every task either rests on the ground
    ([h(j) = 0]) or exactly on top of another task it overlaps
    ([h(j) = h(i) + d_i]).  The transformation repeatedly drops each task to
    the lowest currently free position at or below its current height; the
    sum of heights strictly decreases, so it terminates. *)

val settle : Path.t -> Solution.sap -> Solution.sap
(** [settle p sol] applies gravity until fixpoint.  Requires a feasible
    input (checked lazily: positions considered are conflict-free, so the
    output is feasible whenever the input is).  Heights never increase. *)

val is_settled : Path.t -> Solution.sap -> bool
(** Every task is at height 0 or exactly on top of an overlapping task. *)

val lowest_free_position : Path.t -> Solution.sap -> Task.t -> int option
(** [lowest_free_position p placed j] is the smallest height at which [j]
    can be added to [placed] without violating capacities or overlapping a
    placed task — [None] if no such height exists.  Candidate positions are
    0 and the tops of placed tasks overlapping [j] (sufficient by the
    gravity argument).  Shared helper of the DSA packers. *)
