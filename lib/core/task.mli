(** A SAP/UFPP task: a sub-path of the line, a demand and a weight.

    Edges of the path are indexed [0 .. m-1]; a task occupies the inclusive
    edge range [\[first_edge, last_edge\]] (the paper's interval [I_j]).
    Demands and capacities are integers so that heights — which the gravity
    argument shows can be taken to be sums of demands — are exact; weights
    are floats. *)

type t = private {
  id : int;  (** Unique within an instance; assigned by {!Instance.create}. *)
  first_edge : int;
  last_edge : int;
  demand : int;
  weight : float;
}

val make : id:int -> first_edge:int -> last_edge:int -> demand:int -> weight:float -> t
(** Validates [first_edge <= last_edge], [demand > 0] and [weight >= 0]. *)

val with_id : t -> int -> t
(** Copy with a new id (used by instance construction). *)

val with_weight : t -> float -> t
(** Copy with a new weight (used by the local-ratio decompositions). *)

val uses : t -> int -> bool
(** [uses j e] — does edge [e] lie on [I_j]? *)

val overlaps : t -> t -> bool
(** [I_i] and [I_j] share an edge. *)

val span : t -> int
(** Number of edges on the task's path. *)

val weight_of : t list -> float
(** Total weight of a task list. *)

val demand_of : t list -> int
(** Total demand [d(S)] of a task list. *)

val compare : t -> t -> int
(** Total order by id. *)

val pp : Format.formatter -> t -> unit
