type t = {
  num_edges : int;
  num_tasks : int;
  min_capacity : int;
  max_capacity : int;
  total_weight : float;
  total_demand : int;
  max_load : int;
  max_load_over_min_cap : float;
  mean_span : float;
  mean_demand_ratio : float;
  small_fraction : float;
  medium_fraction : float;
  large_fraction : float;
  bottleneck_bands : (int * int) list;
  unfit_tasks : int;
}

let compute ?(delta = 0.25) ?(large_frac = 0.5) path tasks =
  let n = List.length tasks in
  let nf = Float.max 1.0 (float_of_int n) in
  let fit, unfit =
    List.partition
      (fun (j : Task.t) -> j.Task.demand <= Path.bottleneck_of path j)
      tasks
  in
  let split = Classify.split3 path ~delta ~large_frac fit in
  let bands =
    Classify.strip_bands path fit |> List.map (fun (t, js) -> (t, List.length js))
  in
  let mean f = List.fold_left (fun acc j -> acc +. f j) 0.0 tasks /. nf in
  {
    num_edges = Path.num_edges path;
    num_tasks = n;
    min_capacity = Path.min_capacity path;
    max_capacity = Path.max_capacity path;
    total_weight = Task.weight_of tasks;
    total_demand = Task.demand_of tasks;
    max_load = Instance.max_load path tasks;
    max_load_over_min_cap =
      float_of_int (Instance.max_load path tasks)
      /. float_of_int (Path.min_capacity path);
    mean_span = mean (fun j -> float_of_int (Task.span j));
    mean_demand_ratio =
      mean (fun (j : Task.t) ->
          float_of_int j.Task.demand /. float_of_int (Path.bottleneck_of path j));
    small_fraction = float_of_int (List.length split.Classify.small) /. nf;
    medium_fraction = float_of_int (List.length split.Classify.medium) /. nf;
    large_fraction = float_of_int (List.length split.Classify.large) /. nf;
    bottleneck_bands = bands;
    unfit_tasks = List.length unfit;
  }

let pp ppf s =
  Format.fprintf ppf
    "@[<v>edges: %d  capacities: [%d, %d]@,\
     tasks: %d (unfit: %d)  total weight: %.1f  total demand: %d@,\
     LOAD(J): %d  (%.2fx the min capacity)@,\
     mean span: %.1f  mean d/b: %.3f@,\
     split (delta=1/4, large=1/2): %.0f%% small / %.0f%% medium / %.0f%% large@,\
     bottleneck bands (t -> #tasks): %a@]"
    s.num_edges s.min_capacity s.max_capacity s.num_tasks s.unfit_tasks
    s.total_weight s.total_demand s.max_load s.max_load_over_min_cap s.mean_span
    s.mean_demand_ratio
    (100.0 *. s.small_fraction)
    (100.0 *. s.medium_fraction)
    (100.0 *. s.large_fraction)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (t, c) -> Format.fprintf ppf "%d->%d" t c))
    s.bottleneck_bands
