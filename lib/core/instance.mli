(** A SAP (equivalently UFPP) instance: a capacitated path and a task set.

    Tasks are re-numbered [0 .. n-1] at construction; all algorithms pass
    {!Task.t} values around directly, so sub-instances are just task lists
    over the same path and no re-indexing ever happens. *)

type t = { path : Path.t; tasks : Task.t array }

val create : Path.t -> Task.t list -> t
(** Validates that every task's edge range lies on the path and re-assigns
    ids [0 .. n-1] in list order. *)

val num_tasks : t -> int

val num_edges : t -> int

val task : t -> int -> Task.t

val task_list : t -> Task.t list

val bottleneck : t -> Task.t -> int
(** [b(j)]. *)

val tasks_using_edge : t -> int -> Task.t list

val load_profile : Path.t -> Task.t list -> int array
(** [load_profile p ts].(e) is the load [d(S(e))] of the task list on edge
    [e] — computed in O(n + m) with a difference array. *)

val max_load : Path.t -> Task.t list -> int
(** The paper's [LOAD(J)]: maximum per-edge load. *)

val is_feasible_task : t -> Task.t -> bool
(** [d_j <= b(j)] — the task fits alone.  Tasks violating this can never be
    scheduled and are typically filtered by generators. *)

val total_weight : t -> float

val pp : Format.formatter -> t -> unit
