(** Descriptive statistics of an instance — what a user inspects before
    choosing parameters (delta, engines) for the solvers.  Backs the CLI's
    [stats] subcommand and the examples' preambles. *)

type t = {
  num_edges : int;
  num_tasks : int;
  min_capacity : int;
  max_capacity : int;
  total_weight : float;
  total_demand : int;
  max_load : int;            (** the paper's LOAD(J) *)
  max_load_over_min_cap : float;  (** congestion indicator *)
  mean_span : float;
  mean_demand_ratio : float; (** mean of d_j / b(j) *)
  small_fraction : float;    (** at delta *)
  medium_fraction : float;
  large_fraction : float;
  bottleneck_bands : (int * int) list;  (** (t, #tasks with 2^t <= b < 2^t+1) *)
  unfit_tasks : int;         (** d_j > b(j): can never be scheduled *)
}

val compute : ?delta:float -> ?large_frac:float -> Path.t -> Task.t list -> t
(** [delta] defaults to 1/4, [large_frac] to 1/2 (the Theorem 4 split). *)

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable report. *)
