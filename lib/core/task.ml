type t = {
  id : int;
  first_edge : int;
  last_edge : int;
  demand : int;
  weight : float;
}

let make ~id ~first_edge ~last_edge ~demand ~weight =
  if first_edge < 0 || first_edge > last_edge then
    invalid_arg "Task.make: bad edge range";
  if demand <= 0 then invalid_arg "Task.make: demand must be positive";
  if weight < 0.0 || Float.is_nan weight then
    invalid_arg "Task.make: weight must be non-negative";
  { id; first_edge; last_edge; demand; weight }

let with_id t id = { t with id }

let with_weight t weight =
  if weight < 0.0 then invalid_arg "Task.with_weight: negative";
  { t with weight }

let uses t e = t.first_edge <= e && e <= t.last_edge

let overlaps a b = a.first_edge <= b.last_edge && b.first_edge <= a.last_edge

let span t = t.last_edge - t.first_edge + 1

let weight_of ts = List.fold_left (fun acc t -> acc +. t.weight) 0.0 ts

let demand_of ts = List.fold_left (fun acc t -> acc + t.demand) 0 ts

let compare a b = Int.compare a.id b.id

let pp ppf t =
  Format.fprintf ppf "#%d[%d..%d] d=%d w=%g" t.id t.first_edge t.last_edge
    t.demand t.weight
