(** Machine checking of solution feasibility.

    Every algorithm in this repository has its output run through these
    checkers in the tests and the bench harness; no feasibility claim is
    ever taken on faith.  Errors carry a human-readable reason. *)

val ufpp_feasible : Path.t -> Task.t list -> (unit, string) result
(** Checks (a) no duplicate task ids, (b) every task fits on its path,
    (c) [d(S(e)) <= c_e] for every edge. *)

val sap_feasible : Path.t -> Solution.sap -> (unit, string) result
(** Checks (a) no duplicate task ids, (b) heights are non-negative,
    (c) [h(j) + d_j <= c_e] on every edge of [I_j] (condition (i)),
    (d) tasks sharing an edge occupy disjoint vertical ranges
    (condition (ii)). *)

val sap_feasible_within : Path.t -> bound:int -> Solution.sap -> (unit, string) result
(** [sap_feasible] strengthened with [B]-packability: every task top must
    stay at or below [bound] as well as below the capacities. *)

val expect_ok : (unit, string) result -> unit
(** Raises [Failure] with the carried reason; assertion helper. *)

val subset_of : Task.t list -> Task.t list -> bool
(** [subset_of sol all] — every solution task is (by id) one of the
    instance's tasks and identical to it.  Guards against algorithms
    inventing or mutating tasks. *)
