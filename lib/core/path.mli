(** The resource: a path whose edges carry integer capacities.

    Bottleneck queries [b(j) = min_{e in I_j} c_e] are O(1) via a sparse
    table built once at construction. *)

type t

val create : int array -> t
(** [create caps] — [caps.(e)] is the capacity of edge [e].  Capacities must
    be positive and the array non-empty.  The array is copied. *)

val uniform : edges:int -> capacity:int -> t

val num_edges : t -> int

val capacity : t -> int -> int

val capacities : t -> int array
(** Fresh copy of the capacity vector. *)

val bottleneck : t -> first:int -> last:int -> int
(** Minimum capacity over the inclusive edge range. *)

val bottleneck_edge : t -> first:int -> last:int -> int
(** An edge achieving the bottleneck. *)

val bottleneck_of : t -> Task.t -> int
(** [b(j)] for a task. *)

val min_capacity : t -> int

val max_capacity : t -> int

val clip : t -> int -> t
(** [clip p c] replaces every capacity by [min c_e c].  Observation 2/7 of
    the paper: from the viewpoint of tasks with bottleneck [< c] this loses
    nothing. *)

val pp : Format.formatter -> t -> unit
