(* A height [p] is free for task [j] against a placed set iff for every
   placed task [i] overlapping [j], the vertical ranges [p, p+d_j) and
   [h_i, h_i+d_i) are disjoint, and p + d_j <= b(j). *)

let conflicts (j : Task.t) p ((i : Task.t), hi) =
  Task.overlaps j i && p < hi + i.Task.demand && hi < p + j.Task.demand

let fits path placed (j : Task.t) p =
  p >= 0
  && p + j.Task.demand <= Path.bottleneck_of path j
  && not (List.exists (conflicts j p) placed)

let lowest_free_position path placed (j : Task.t) =
  let candidates =
    0
    :: List.filter_map
         (fun ((i : Task.t), hi) ->
           if Task.overlaps j i then Some (hi + i.Task.demand) else None)
         placed
  in
  let candidates = List.sort_uniq Int.compare candidates in
  List.find_opt (fits path placed j) candidates

let settle path sol =
  (* One pass: visit tasks in increasing current height and re-place each at
     its lowest free position w.r.t. all *other* tasks (at their current
     heights).  Iterate passes until no height changes.  Heights only
     decrease, and strictly on any changing pass, so this terminates. *)
  let pass sol =
    let order =
      List.sort (fun (_, h1) (_, h2) -> Int.compare h1 h2) sol
    in
    let changed = ref false in
    let rec go done_ = function
      | [] -> List.rev done_
      | (j, h) :: rest ->
          let others = List.rev_append done_ rest in
          let h' =
            match lowest_free_position path others j with
            | Some p when p < h -> p
            | _ -> h
          in
          if h' <> h then changed := true;
          go ((j, h') :: done_) rest
    in
    let sol' = go [] order in
    (sol', !changed)
  in
  let rec fix sol =
    let sol', changed = pass sol in
    if changed then fix sol' else sol'
  in
  fix sol

let is_settled _path sol =
  let rests_on (j, h) =
    h = 0
    || List.exists
         (fun ((i : Task.t), hi) ->
           i.Task.id <> j.Task.id && Task.overlaps j i && hi + i.Task.demand = h)
         sol
  in
  List.for_all rests_on sol
