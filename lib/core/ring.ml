type task = {
  id : int;
  src : int;
  dst : int;
  demand : int;
  weight : float;
}

type t = { capacities : int array; tasks : task array }

type direction = Cw | Ccw

type solution = (task * int * direction) list

let make_task ~id ~src ~dst ~demand ~weight ~t_edges =
  if t_edges < 3 then invalid_arg "Ring.make_task: ring needs >= 3 edges";
  if src = dst || src < 0 || dst < 0 || src >= t_edges || dst >= t_edges then
    invalid_arg "Ring.make_task: bad terminals";
  if demand <= 0 then invalid_arg "Ring.make_task: demand must be positive";
  if weight < 0.0 then invalid_arg "Ring.make_task: negative weight";
  { id; src; dst; demand; weight }

let create capacities tasks =
  let m = Array.length capacities in
  if m < 3 then invalid_arg "Ring.create: ring needs >= 3 edges";
  Array.iter
    (fun c -> if c <= 0 then invalid_arg "Ring.create: non-positive capacity")
    capacities;
  List.iter
    (fun tk ->
      if tk.src >= m || tk.dst >= m then invalid_arg "Ring.create: bad terminal")
    tasks;
  let tasks = Array.of_list tasks in
  let tasks = Array.mapi (fun i tk -> { tk with id = i }) tasks in
  { capacities = Array.copy capacities; tasks }

let num_edges r = Array.length r.capacities

let edges_of_route ~m ~src ~dst dir =
  (* Clockwise from [a] to [b]: edges a, a+1, ..., b-1 (mod m). *)
  let walk a b =
    let rec go e acc = if e = b then List.rev acc else go ((e + 1) mod m) (e :: acc) in
    go a []
  in
  match dir with
  | Cw -> walk src dst
  | Ccw ->
      (* The counter-clockwise route from src to dst uses exactly the
         complementary arc: the clockwise walk from dst back to src. *)
      walk dst src

let solution_weight sol =
  List.fold_left (fun acc (tk, _, _) -> acc +. tk.weight) 0.0 sol

let feasible r sol =
  let m = num_edges r in
  let per_edge = Array.make m [] in
  let ids = Hashtbl.create 16 in
  let rec place = function
    | [] -> Ok ()
    | (tk, h, dir) :: rest ->
        if Hashtbl.mem ids tk.id then
          Error (Printf.sprintf "duplicate ring task id %d" tk.id)
        else if h < 0 then Error (Printf.sprintf "ring task %d below ground" tk.id)
        else begin
          Hashtbl.add ids tk.id ();
          List.iter
            (fun e -> per_edge.(e) <- (h, h + tk.demand, tk.id) :: per_edge.(e))
            (edges_of_route ~m ~src:tk.src ~dst:tk.dst dir);
          place rest
        end
  in
  match place sol with
  | Error _ as e -> e
  | Ok () ->
      let rec scan e =
        if e = m then Ok ()
        else
          let segs = List.sort compare per_edge.(e) in
          let rec walk prev_top prev_id = function
            | [] -> scan (e + 1)
            | (lo, hi, id) :: rest ->
                if lo < prev_top then
                  Error
                    (Printf.sprintf
                       "ring edge %d: tasks %d and %d overlap vertically" e
                       prev_id id)
                else if hi > r.capacities.(e) then
                  Error
                    (Printf.sprintf "ring edge %d: task %d exceeds capacity" e id)
                else walk hi id rest
          in
          walk 0 (-1) segs
      in
      scan 0

let path_position ~m ~cut_edge e =
  (* Ring edge [e <> cut_edge] sits at path index (e - cut_edge - 1) mod m. *)
  ((e - cut_edge - 1) mod m + m) mod m

let cut r ~cut_edge =
  let m = num_edges r in
  if cut_edge < 0 || cut_edge >= m then invalid_arg "Ring.cut: bad edge";
  let caps =
    Array.init (m - 1) (fun p -> r.capacities.((cut_edge + 1 + p) mod m))
  in
  let path = Path.create caps in
  let route_avoiding tk =
    let cw = edges_of_route ~m ~src:tk.src ~dst:tk.dst Cw in
    if List.mem cut_edge cw then edges_of_route ~m ~src:tk.src ~dst:tk.dst Ccw
    else cw
  in
  let to_path_task tk =
    let arc = route_avoiding tk in
    let positions = List.map (path_position ~m ~cut_edge) arc in
    let first = List.fold_left min (List.hd positions) positions in
    let last = List.fold_left max (List.hd positions) positions in
    Task.make ~id:tk.id ~first_edge:first ~last_edge:last ~demand:tk.demand
      ~weight:tk.weight
  in
  let path_tasks = Array.to_list r.tasks |> List.map to_path_task in
  (path, path_tasks, fun id -> r.tasks.(id))

let to_ring_solution r ~cut_edge sol back =
  let m = num_edges r in
  List.map
    (fun ((j : Task.t), h) ->
      let tk = back j.Task.id in
      let cw = edges_of_route ~m ~src:tk.src ~dst:tk.dst Cw in
      let dir = if List.mem cut_edge cw then Ccw else Cw in
      (tk, h, dir))
    sol
