type t = { path : Path.t; tasks : Task.t array }

let create path tasks =
  let m = Path.num_edges path in
  let check (j : Task.t) =
    if j.Task.last_edge >= m then
      invalid_arg
        (Printf.sprintf "Instance.create: task uses edge %d but path has %d edges"
           j.Task.last_edge m)
  in
  List.iter check tasks;
  let tasks = Array.of_list tasks in
  let tasks = Array.mapi (fun i j -> Task.with_id j i) tasks in
  { path; tasks }

let num_tasks t = Array.length t.tasks

let num_edges t = Path.num_edges t.path

let task t i = t.tasks.(i)

let task_list t = Array.to_list t.tasks

let bottleneck t j = Path.bottleneck_of t.path j

let tasks_using_edge t e =
  Array.to_list t.tasks |> List.filter (fun j -> Task.uses j e)

let load_profile path ts =
  let m = Path.num_edges path in
  let diff = Array.make (m + 1) 0 in
  List.iter
    (fun (j : Task.t) ->
      diff.(j.Task.first_edge) <- diff.(j.Task.first_edge) + j.Task.demand;
      diff.(j.Task.last_edge + 1) <- diff.(j.Task.last_edge + 1) - j.Task.demand)
    ts;
  let load = Array.make m 0 in
  let acc = ref 0 in
  for e = 0 to m - 1 do
    acc := !acc + diff.(e);
    load.(e) <- !acc
  done;
  load

let max_load path ts =
  Array.fold_left max 0 (load_profile path ts)

let is_feasible_task t j = j.Task.demand <= bottleneck t j

let total_weight t = Array.fold_left (fun acc j -> acc +. j.Task.weight) 0.0 t.tasks

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@,%a@]" Path.pp t.path
    (Format.pp_print_list Task.pp)
    (task_list t)
