type t = {
  length : int;
  (* table.(k).(i) = index of the min element of a.(i .. i + 2^k - 1). *)
  table : int array array;
  values : int array;
}

let floor_log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let build a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Range_min.build: empty array";
  let levels = 1 + floor_log2 n in
  let table = Array.make levels [||] in
  table.(0) <- Array.init n (fun i -> i);
  for k = 1 to levels - 1 do
    let width = 1 lsl k in
    let rows = n - width + 1 in
    let prev = table.(k - 1) in
    table.(k) <-
      Array.init (max rows 0) (fun i ->
          let left = prev.(i) and right = prev.(i + (width / 2)) in
          if a.(left) <= a.(right) then left else right)
  done;
  { length = n; table; values = a }

let query_arg t lo hi =
  if lo < 0 || hi >= t.length || lo > hi then invalid_arg "Range_min.query";
  let k = floor_log2 (hi - lo + 1) in
  let left = t.table.(k).(lo) in
  let right = t.table.(k).(hi - (1 lsl k) + 1) in
  if t.values.(left) <= t.values.(right) then left else right

let query t lo hi = t.values.(query_arg t lo hi)

let length t = t.length
