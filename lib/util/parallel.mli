(** Multicore fan-out over independent work items (OCaml 5 domains).

    The experiment harness measures dozens of independent instances per
    table row; each measurement is pure (own PRNG, own data), so they
    parallelise trivially.  [map] spawns up to [jobs] domains working on
    strided slices and preserves input order.

    Not a scheduler: items should be coarse (milliseconds+), and [f] must
    not share mutable state across items. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count], at least 1. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map.  [jobs] defaults to
    {!default_jobs}; [jobs = 1] degenerates to [List.map].  Exceptions in
    workers are re-raised in the caller (first one wins).

    When tracing is on (and more than one domain actually spawns), each
    worker domain runs inside a [parallel.worker] root span tagged with
    its worker index, so per-domain activity renders as separate lanes in
    the Chrome-trace export. *)
