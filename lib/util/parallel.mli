(** Multicore fan-out over independent work items (OCaml 5 domains).

    The experiment harness measures dozens of independent instances per
    table row; each measurement is pure (own PRNG, own data), so they
    parallelise trivially.  [map] spawns up to [jobs] domains working on
    strided slices and preserves input order.

    Not a scheduler: items should be coarse (milliseconds+), and [f] must
    not share mutable state across items. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count], at least 1. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map.  [jobs] defaults to
    {!default_jobs}; [jobs = 1] degenerates to [List.map].  Exceptions in
    workers are re-raised in the caller (first one wins).

    When tracing is on (and more than one domain actually spawns), each
    worker domain runs inside a [parallel.worker] root span tagged with
    its worker index, so per-domain activity renders as separate lanes in
    the Chrome-trace export.

    When a runner is installed ({!set_runner}), the fan-out executes on
    the runner's persistent workers instead of freshly spawned domains;
    results, ordering and exception semantics are unchanged ([jobs] then
    only gates the [jobs = 1] sequential degeneration). *)

val set_runner : ((unit -> unit) list -> unit) option -> unit
(** Install (or clear) a batch executor for {!map}'s fan-out.  The runner
    must run every thunk to completion before returning; thunks never
    raise (map traps per-item exceptions itself).  [Server.Pool] installs
    its persistent domain pool here so repeated maps stop paying
    [Domain.spawn] per call. *)
