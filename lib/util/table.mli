(** Plain-text table rendering for the benchmark harness.

    Every experiment in [bench/main.ml] prints one of these tables; the
    format is stable so that [EXPERIMENTS.md] can quote the output
    verbatim. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays the rows out under the header with a
    separator rule, padding every column to its widest cell.  [align]
    defaults to left for the first column and right for the rest. *)

val print : ?align:align list -> header:string list -> string list list -> unit
(** [render] followed by [print_string] and a trailing newline. *)

val float_cell : ?digits:int -> float -> string
(** Fixed-point formatting used across all experiment tables (default 3
    digits). *)
