type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let default_align columns =
  List.init columns (fun i -> if i = 0 then Left else Right)

let render ?align ~header rows =
  let columns = List.length header in
  let align = match align with Some a -> a | None -> default_align columns in
  if List.length align <> columns then invalid_arg "Table.render: align arity";
  List.iter
    (fun row ->
      if List.length row <> columns then invalid_arg "Table.render: row arity")
    rows;
  let widths = Array.make columns 0 in
  let note row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  note header;
  List.iter note rows;
  let fmt_row row =
    let cells =
      List.mapi
        (fun i cell -> pad (List.nth align i) widths.(i) cell)
        row
    in
    "| " ^ String.concat " | " cells ^ " |"
  in
  let rule =
    let dashes = Array.to_list (Array.map (fun w -> String.make w '-') widths) in
    "|-" ^ String.concat "-|-" dashes ^ "-|"
  in
  String.concat "\n" (fmt_row header :: rule :: List.map fmt_row rows)

let print ?align ~header rows =
  print_string (render ?align ~header rows);
  print_newline ()

let float_cell ?(digits = 3) x = Printf.sprintf "%.*f" digits x
