(** Summary statistics for experiment reporting.

    The bench harness aggregates per-instance approximation ratios and
    runtimes into these summaries before printing a table row. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
}

val summarize : float list -> summary
(** [summarize xs] computes all fields in one pass (plus a sort for the order
    statistics).  Raises [Invalid_argument] on the empty list. *)

val mean : float list -> float

val geometric_mean : float list -> float
(** Geometric mean; all inputs must be strictly positive.  Approximation
    ratios are conventionally aggregated geometrically. *)

val percentile : float array -> float -> float
(** [percentile sorted p] with [p] in [\[0,1\]]; nearest-rank on a sorted
    array. *)
