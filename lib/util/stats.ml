type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geometric_mean xs =
  match xs with
  | [] -> invalid_arg "Stats.geometric_mean: empty"
  | _ ->
      let log_sum =
        List.fold_left
          (fun acc x ->
            if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive";
            acc +. log x)
          0.0 xs
      in
      exp (log_sum /. float_of_int (List.length xs))

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  let rank = int_of_float (ceil (p *. float_of_int n)) - 1 in
  sorted.(max 0 (min (n - 1) rank))

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty"
  | _ ->
      let n = List.length xs in
      let nf = float_of_int n in
      let mu = mean xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. mu) *. (x -. mu))) 0.0 xs /. nf
      in
      let sorted = Array.of_list xs in
      Array.sort compare sorted;
      {
        count = n;
        mean = mu;
        stddev = sqrt var;
        min = sorted.(0);
        max = sorted.(n - 1);
        median = percentile sorted 0.5;
        p90 = percentile sorted 0.9;
      }
