type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

(* SplitMix64 core: one additive step followed by a 64-bit finalizer. *)
let next_raw g =
  g.state <- Int64.add g.state golden_gamma;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int64 = next_raw

let split g =
  let seed = next_raw g in
  { state = seed }

(* SplitMix64's state advances by a constant increment per draw, so
   fast-forwarding k draws is one multiply-add — the finalizer only runs
   on output, never on the state.  Every primitive above consumes exactly
   one [next_raw] per call except [int]/[int_in] (rejection sampling) and
   their derivatives, whose consumption is data-dependent. *)
let jump g k =
  { state = Int64.add g.state (Int64.mul golden_gamma (Int64.of_int k)) }

let skip g k =
  g.state <- Int64.add g.state (Int64.mul golden_gamma (Int64.of_int k))

(* Mask to 62 bits: [Int64.to_int] keeps the low 63 bits, whose top bit
   would become OCaml's sign bit. *)
let bits62 g =
  Int64.to_int (Int64.shift_right_logical (next_raw g) 2) land max_int

let int g bound =
  assert (bound > 0);
  (* Rejection sampling: [r mod bound] alone is biased toward small values
     whenever [bound] does not divide 2^62, so redraw while [r] falls in
     the final partial block of size [2^62 mod bound]. *)
  let rec draw () =
    let r = bits62 g in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then draw () else v
  in
  draw ()

let int_in g lo hi =
  assert (lo <= hi);
  lo + int g (hi - lo + 1)

let float g bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_raw g) 11) in
  (* 2^53 mantissa-width scaling gives a uniform double in [0, 1). *)
  r /. 9007199254740992.0 *. bound

let bool g = Int64.logand (next_raw g) 1L = 1L

let bernoulli g p = float g 1.0 < p

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose g a =
  assert (Array.length a > 0);
  a.(int g (Array.length a))

let sample_weighted g w =
  let total = Array.fold_left ( +. ) 0.0 w in
  assert (total > 0.0);
  let target = float g total in
  let n = Array.length w in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if target < acc then i else scan (i + 1) acc
  in
  scan 0 0.0
