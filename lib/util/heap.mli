(** Binary min-heap over an arbitrary ordering.

    Used by the DSA allocators (gap selection) and by the branch-and-bound
    rectangle solver (best-first exploration).  Purely array-based; amortised
    O(log n) push/pop. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** [create ~cmp] is an empty heap whose minimum is taken w.r.t. [cmp]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element, without removing it. *)

val pop : 'a t -> 'a option
(** Removes and returns the smallest element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

val to_sorted_list : 'a t -> 'a list
(** Drains a copy of the heap in ascending order; the heap is unchanged. *)
