module Int_set = Set.Make (Int)

(* Pair (value, terms-used); we keep for each reachable value the minimum
   number of terms realising it, which dominates any larger count. *)
module Int_map = Map.Make (Int)

let group_multiplicities ds =
  let tally =
    List.fold_left
      (fun m d ->
        if d <= 0 then invalid_arg "Subset_sum: non-positive demand";
        Int_map.update d (function None -> Some 1 | Some k -> Some (k + 1)) m)
      Int_map.empty ds
  in
  Int_map.bindings tally

let distinct_sums ?max_terms ~bound ds =
  let max_terms = match max_terms with Some k -> k | None -> List.length ds in
  let groups = group_multiplicities ds in
  (* reachable : value -> min #terms *)
  let reachable = ref (Int_map.singleton 0 0) in
  let add_group (d, mult) =
    let updated = ref !reachable in
    Int_map.iter
      (fun v terms ->
        let rec extend copies v' terms' =
          if copies <= mult && v' < bound && terms' <= max_terms then begin
            (match Int_map.find_opt v' !updated with
            | Some best when best <= terms' -> ()
            | _ -> updated := Int_map.add v' terms' !updated);
            extend (copies + 1) (v' + d) (terms' + 1)
          end
        in
        extend 1 (v + d) (terms + 1))
      !reachable;
    reachable := !updated
  in
  List.iter add_group groups;
  Int_map.fold (fun v _ acc -> v :: acc) !reachable [] |> List.rev

let distinct_sums_capped ~cap ~bound ds =
  (* Dijkstra-style expansion in increasing value order so truncation keeps
     the smallest sums, which are the ones low (gravity-settled) heights
     use. *)
  let groups = Array.of_list (group_multiplicities ds) in
  let seen = ref (Int_set.singleton 0) in
  let frontier = Heap.create ~cmp:compare in
  Heap.push frontier 0;
  let out = ref [] in
  let count = ref 0 in
  let exception Done in
  (try
     let rec loop () =
       match Heap.pop frontier with
       | None -> ()
       | Some v ->
           out := v :: !out;
           incr count;
           if !count >= cap then raise Done;
           Array.iter
             (fun (d, _) ->
               let v' = v + d in
               if v' < bound && not (Int_set.mem v' !seen) then begin
                 seen := Int_set.add v' !seen;
                 Heap.push frontier v'
               end)
             groups;
           loop ()
     in
     loop ()
   with Done -> ());
  List.rev !out
