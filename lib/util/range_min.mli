(** Static range-minimum queries via a sparse table.

    Bottleneck computation [b(j) = min of capacities over a task's path] is
    the hottest primitive in the library — every classification, checker and
    algorithm calls it — so it is answered in O(1) after O(m log m)
    preprocessing of the capacity vector. *)

type t

val build : int array -> t
(** [build a] preprocesses [a].  [a] must be non-empty. *)

val query : t -> int -> int -> int
(** [query t lo hi] is [min a.(lo..hi)] (inclusive bounds).
    Requires [0 <= lo <= hi < length]. *)

val query_arg : t -> int -> int -> int
(** [query_arg t lo hi] is an index of a minimum element in [a.(lo..hi)]
    (the leftmost one among the two table halves consulted). *)

val length : t -> int
