(** Deterministic pseudo-random number generation.

    All stochastic components of the library (instance generators, randomized
    rounding) draw from this splittable SplitMix64 generator so that every
    experiment is reproducible from a single integer seed.  The standard
    library [Random] module is deliberately not used anywhere. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy g] duplicates the current state; the copy evolves independently. *)

val split : t -> t
(** [split g] advances [g] and returns a statistically independent child
    generator.  Used to give sub-components their own streams without
    coupling their consumption rates. *)

val jump : t -> int -> t
(** [jump g k] is a fresh generator whose stream equals [g]'s after [k]
    single-draw primitives ([int64], [float], [bool], [bernoulli] — not
    the rejection-sampling [int] family), in O(1) and without touching
    [g].  [jump g 0] is [copy g]. *)

val skip : t -> int -> unit
(** [skip g k] advances [g] in place by [k] single-draw primitives, in
    O(1).  [skip g k] then leaves [g] exactly where [k] calls to
    [bernoulli] would. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in the inclusive range [\[lo, hi\]].
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_weighted : t -> float array -> int
(** [sample_weighted g w] returns index [i] with probability proportional to
    [w.(i)].  Requires at least one strictly positive weight. *)
