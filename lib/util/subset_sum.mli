(** Bounded subset-sum value enumeration.

    The gravity argument (Observation 11 of the paper) shows that in a
    canonical SAP solution every height is a sum of at most [L] task demands.
    Both the exact solvers and the Elevator DP therefore enumerate candidate
    heights as distinct subset sums below the relevant capacity. *)

val distinct_sums : ?max_terms:int -> bound:int -> int list -> int list
(** [distinct_sums ~max_terms ~bound ds] is the sorted list of distinct
    values [< bound] expressible as the sum of at most [max_terms] elements
    of [ds] (each list occurrence usable once).  [0] is always included.
    [max_terms] defaults to [List.length ds].  Duplicate values in [ds]
    are collapsed into multiplicities, so palettes with few distinct demands
    stay cheap. *)

val distinct_sums_capped : cap:int -> bound:int -> int list -> int list
(** [distinct_sums_capped ~cap ~bound ds] enumerates, in increasing order,
    distinct non-negative integer combinations of the distinct values of
    [ds] below [bound], truncated to the [cap] smallest.  Multiplicities are
    ignored (each value may repeat), so the result is a *superset* of
    [distinct_sums] restricted to its smallest values — safe wherever the
    list is used as a candidate-height pool, since feasibility is checked
    separately. *)
