let default_jobs () = max 1 (Domain.recommended_domain_count ())

(* An installed runner executes a batch of exception-free thunks to
   completion (Server.Pool routes them through its persistent workers);
   [None] keeps the spawn-per-call strategy below. *)
let runner : ((unit -> unit) list -> unit) option Atomic.t = Atomic.make None

let set_runner r = Atomic.set runner r

let collect_results output errors =
  (match !errors with Some e -> raise e | None -> ());
  (* Single right-to-left pass; no intermediate option list. *)
  Array.fold_right
    (fun o acc -> match o with Some y -> y :: acc | None -> assert false)
    output []

let map ?jobs f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  match xs with
  | [] -> []
  | _ when jobs = 1 -> List.map f xs
  | _ -> (
      let input = Array.of_list xs in
      let n = Array.length input in
      let jobs = min jobs n in
      let output = Array.make n None in
      match Atomic.get runner with
      | Some run ->
          (* Pool path: one thunk per item; the runner provides the
             worker lanes, we keep the first-error-wins semantics by
             trapping per-item and re-raising the lowest index. *)
          let errors = Array.make n None in
          run
            (List.init n (fun i () ->
                 match f input.(i) with
                 | y -> output.(i) <- Some y
                 | exception e -> errors.(i) <- Some e));
          let first_error =
            ref (Array.fold_left
                   (fun acc e -> match acc with Some _ -> acc | None -> e)
                   None errors)
          in
          collect_results output first_error
      | None ->
          let worker w () =
            (* Strided slice: worker w handles indices w, w+jobs, ...  The
               span makes the worker's lifetime a root span of its own domain,
               so Obs.Chrome_trace renders each worker as its own lane. *)
            Obs.Trace.with_span "parallel.worker"
              ~attrs:[ ("worker", string_of_int w); ("jobs", string_of_int jobs) ]
            @@ fun () ->
            let rec go i =
              if i < n then begin
                output.(i) <- Some (f input.(i));
                go (i + jobs)
              end
            in
            go w
          in
          let domains = List.init jobs (fun w -> Domain.spawn (worker w)) in
          let first_error = ref None in
          List.iter
            (fun d ->
              match Domain.join d with
              | () -> ()
              | exception e -> if !first_error = None then first_error := Some e)
            domains;
          collect_results output first_error)
