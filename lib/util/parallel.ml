let default_jobs () = max 1 (Domain.recommended_domain_count ())

let map ?jobs f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  match xs with
  | [] -> []
  | _ when jobs = 1 -> List.map f xs
  | _ ->
      let input = Array.of_list xs in
      let n = Array.length input in
      let jobs = min jobs n in
      let output = Array.make n None in
      let worker w () =
        (* Strided slice: worker w handles indices w, w+jobs, ...  The
           span makes the worker's lifetime a root span of its own domain,
           so Obs.Chrome_trace renders each worker as its own lane. *)
        Obs.Trace.with_span "parallel.worker"
          ~attrs:[ ("worker", string_of_int w); ("jobs", string_of_int jobs) ]
        @@ fun () ->
        let rec go i =
          if i < n then begin
            output.(i) <- Some (f input.(i));
            go (i + jobs)
          end
        in
        go w
      in
      let domains = List.init jobs (fun w -> Domain.spawn (worker w)) in
      let first_error = ref None in
      List.iter
        (fun d ->
          match Domain.join d with
          | () -> ()
          | exception e -> if !first_error = None then first_error := Some e)
        domains;
      (match !first_error with Some e -> raise e | None -> ());
      Array.to_list output
      |> List.map (function Some y -> y | None -> assert false)
