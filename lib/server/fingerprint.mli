(** Content-addressed solve keys.

    Two solve requests are interchangeable exactly when they agree on the
    problem kind, the path capacities, the task multiset, the algorithm
    and the seed — task {e order} is presentation, not content.
    [solve_key] therefore hashes a canonical serialization: the problem
    kind (["sap"] for [solve], ["round"] for [round-solve] — the kind is
    part of the key precisely so the two verbs can never collide in the
    shared LRU cache, even on an identical instance and algorithm name),
    then the algorithm name and seed, capacities in edge order, then
    tasks sorted by (first_edge, last_edge, demand, weight, id).  The
    hash is FNV-1a/64, rendered as 16 lowercase hex digits;
    {!Server.Cache} uses it directly as the cache key.

    Keys are equal-content ⇒ equal-key by construction; the converse
    holds up to 64-bit hash collisions, which the cache accepts (a
    collision serves a wrong-but-feasible solution for a different
    instance; at 2^-64 per pair this is beyond the horizon of any
    realistic request stream). *)

val fnv1a64 : string -> int64
(** The raw FNV-1a 64-bit hash of a byte string. *)

val solve_key :
  problem:string ->
  algorithm:string ->
  seed:int ->
  Core.Path.t ->
  Core.Task.t list ->
  string
(** 16-hex-digit content key; invariant under task reordering, sensitive
    to the problem kind, every capacity, every task field, the algorithm
    and the seed. *)
