(** Per-connection response writer.

    A pipelined session must answer in FIFO order, but responses finish
    out of band (worker pool, remote shard).  Flushing only when the next
    request arrives strands the tail: on a persistent connection that
    goes quiet — a router's shard link after a load burst — the last
    response would wait forever for inbound traffic to trigger a flush.

    A pump is a dedicated writer domain per connection: the reader pushes
    one thunk per request {e in arrival order}, each thunk blocks until
    its response is ready and writes it.  The writer drains the queue as
    completions land, so a response is sent the moment it is ready and
    every earlier one is out — no inbound traffic required. *)

type t

val create : unit -> t
(** Spawn the writer domain (idle until the first {!push}). *)

val push : t -> (unit -> unit) -> unit
(** Enqueue the next response's force-and-write thunk.  Thunks run on
    the writer domain, strictly in push order; a raised [Sys_error]
    (peer gone mid-write) is swallowed and draining continues.  No-op
    after {!finish}. *)

val finish : t -> unit
(** No more pushes; run every queued thunk to completion, then join the
    writer domain.  Every admitted request is answered before this
    returns.  Idempotent. *)
