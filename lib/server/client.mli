(** Pipelined batch client for the solve service.

    [run_batch] ships one [solve] frame per instance (ids are the list
    indices), optionally followed by a [stats] frame and a [shutdown]
    frame, then collects the responses.  Requests are written from the
    calling domain while a dedicated reader domain consumes responses, so
    a large batch cannot deadlock against a backpressuring server: the
    server may stop reading (queue full) while responses are still
    streaming out, and both directions keep moving. *)

type batch_result = {
  responses : Protocol.response option array;
      (** index [i] answers instance [i]; [None] if the connection died
          before its response arrived *)
  stats : Obs.Json.t option;  (** the [stats] payload, when requested *)
  shutdown_acked : bool;
  transport_errors : string list;
      (** unparseable or unattributable response frames *)
}

val run_batch :
  ic:in_channel ->
  oc:out_channel ->
  params:Protocol.solve_params ->
  ?request_stats:bool ->
  ?request_shutdown:bool ->
  (Core.Path.t * Core.Task.t list) list ->
  batch_result
(** Drive one connection.  After the last frame the send direction is
    half-closed ([SHUTDOWN_SEND]; a no-op on non-socket streams), which
    tells the server no more work is coming and triggers its end-of-input
    drain.  Returns once every expected response arrived or the stream
    ended.  Does not close the channels — the caller owns the fd. *)

val request :
  ic:in_channel ->
  oc:out_channel ->
  tasks_for:(int -> Core.Task.t list option) ->
  Protocol.request ->
  (Protocol.response, string) result
(** Synchronous single round-trip: write one frame, block for one
    response frame.  This is what the session verbs use ([sap_cli
    session] drives open → deltas → resolve → close strictly in order),
    where pipelining buys nothing and an in-order conversation keeps the
    client trivial.  [tasks_for] resolves solution bodies exactly as in
    {!run_batch} — for session replies, pass the client's view of the
    session's current task set.  The error is printable (write failure,
    closed stream, or an unparseable frame). *)

val connect_unix : string -> (Unix.file_descr, string) result
(** Connect to a Unix-domain socket; the error is printable. *)
