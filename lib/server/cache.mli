(** A thread-safe LRU solution cache.

    Keys are content fingerprints ({!Fingerprint.solve_key}); values are
    whatever the caller wants to amortize (the server stores completed
    solve results).  Capacity is a hard entry bound: inserting into a full
    cache evicts the least-recently-used entry.  [find] counts as a use.

    All operations take an internal mutex, so pool workers can insert
    while the acceptor thread looks up.  Hit/miss/eviction totals are kept
    in cache-local atomics (always on, reported by the server's [stats]
    response) and mirrored into the [server.cache.{hits,misses,evictions}]
    {!Obs.Metrics} counters (live only while metric collection is
    enabled).  Each {!stats_json} scrape additionally derives
    [hits / (hits + misses)] and publishes it as the
    [server.cache.hit_ratio] gauge. *)

type 'v t

type stats = { hits : int; misses : int; evictions : int; entries : int; capacity : int }

val create : capacity:int -> 'v t
(** [capacity <= 0] disables caching: every [find] misses, [add] is a
    no-op. *)

val find : 'v t -> string -> 'v option
(** Lookup; a hit refreshes the entry's recency. *)

val add : 'v t -> string -> 'v -> unit
(** Insert or refresh; evicts the LRU entry when full. *)

val stats : 'v t -> stats

val stats_json : 'v t -> Obs.Json.t
(** [{"hits", "misses", "evictions", "hit_ratio", "entries",
    "capacity"}].  [hit_ratio] is [null] until the first lookup; when a
    ratio exists the scrape also refreshes the [server.cache.hit_ratio]
    gauge. *)
