(** Per-session state for online (churning) SAP instances.

    A session holds one instance and re-solves it incrementally as tasks
    arrive and depart.  The instance is kept partitioned into the
    bottleneck bands of Algorithm Strip-Pack ({!Core.Classify.strip_bands}
    semantics): bands are solved independently and stacked into disjoint
    vertical ranges, so a delta only invalidates the bands whose task set
    changed.  {!resolve} repacks exactly those dirty bands — each via the
    band LP restarted from the band's previous simplex basis
    ({!Lp.Ufpp_lp.solve_scaled_warm}) — and reuses every untouched band's
    placements verbatim, bit for bit.  Each band's rounding generator is
    derived from the session seed and the band exponent only, so a band's
    placements are a pure function of (seed, band task set): repacking an
    unchanged band cold reproduces the same placements.

    The merged solution is re-verified by {!Core.Checker.sap_feasible}
    before it is returned; an infeasible merge (a bug, not an input
    property) comes back as [Error].

    A session value is not thread-safe; callers (the server's session
    registry) serialize access.  Emits [session.opened], [session.closed],
    [session.deltas], [session.resolves], [session.bands_repacked],
    [session.bands_reused] and the [session.resolve_seconds] histogram. *)

type t

type summary = {
  n_tasks : int;  (** tasks currently in the instance *)
  scheduled : int;  (** tasks placed by this resolve *)
  weight : float;
  bands : int;  (** bands currently tracked *)
  repacked : int;  (** bands repacked by this resolve *)
  reused : int;  (** bands reused verbatim *)
  warm_seeded : int;  (** repacked bands whose LP started from a basis *)
  time_ms : float;
}

val create :
  ?seed:int -> ?trials:int -> Core.Path.t -> Core.Task.t list -> (t, string) result
(** [create path tasks] opens a session on the base instance.  [seed]
    drives the per-band rounding generators (default:
    [Combine.default_config.seed]); [trials] the LP-rounding trials
    (default: the combine config's).  Fails on duplicate task ids or
    tasks outside the path.  The session starts with every band dirty —
    call {!resolve} for the initial solution. *)

val add_task : t -> Core.Task.t -> (unit, string) result
(** Fails on a duplicate id or a task outside the path.  A task whose
    demand exceeds its bottleneck is admitted but belongs to no band (it
    can never be scheduled — same filter as [Small.strip_pack]). *)

val remove_task : t -> int -> (unit, string) result
(** Remove by task id; fails if the id is not in the instance. *)

val resolve : ?cold:bool -> t -> (Core.Solution.sap * summary, string) result
(** Re-solve after deltas.  Warm (default): repack dirty bands only,
    seeding each band LP from its previous basis.  [~cold:true] repacks
    every band from scratch ignoring stored bases — the baseline the CR
    bench and the CI smoke compare against.  Either way the merged
    solution is checker-verified before being returned. *)

val path : t -> Core.Path.t

val tasks : t -> Core.Task.t list
(** Current instance tasks, unordered. *)

val n_tasks : t -> int

val last_solution : t -> Core.Solution.sap
(** The most recent {!resolve} result ([[]] before the first). *)

val close : t -> unit
(** Count the session closed; the value itself is garbage-collected. *)
