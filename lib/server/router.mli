(** Consistent-hash front router: one socket in, N shard processes out.

    The router speaks the same line-framed sap-request/v1 protocol as a
    single [serve] process, so clients (and [sap_cli loadgen]) need not
    know they are talking to a fleet.  Each [solve] request is hashed on
    its {!Fingerprint.solve_key} and forwarded to the owning shard over a
    per-shard pipelined Unix-socket connection with a dedicated reader
    domain — so repeat instances always land on the shard whose LRU cache
    already holds them (cache affinity is the scaling win, not just core
    count).  Responses are relayed back preserving per-client FIFO order,
    with only the header id rewritten; bodies pass through verbatim.

    Session verbs pin by sid: a [session-open] routes by instance
    fingerprint like a solve, and the sid the shard mints (globally
    unique — pid in the high bits) is pinned to that shard, so every
    follow-up [add-task]/[remove-task]/[resolve]/[session-close]
    carrying [session=SID] is forwarded to the owning shard.  Sessions
    are not re-homed: when the owning shard dies its pins are dropped
    and follow-up verbs answer [unknown-session] — the state died with
    the shard; the client re-opens.

    Shard lifecycle lives here.  Shards are either {e spawned} (the
    router forks a child per endpoint via [ep_spawn], shuts it down
    gracefully and reaps it) or {e external} (pre-started sockets the
    router connects to but never terminates).  A shard whose connection
    dies is removed from the hash ring; its in-flight requests are
    re-homed to surviving shards (solves are pure, so a retry is safe)
    and a recovery domain reconnects — respawning a spawned child whose
    process exited — under doubling backoff bounded by
    [config.backoff_max].  An accepted request is therefore answered
    exactly once: re-homed, or failed with an [error] response when no
    shard remains; never silently dropped.  {!drain_shard} is the
    planned-maintenance variant: the shard leaves the ring, finishes its
    in-flight work, acknowledges a [shutdown] frame, and stays out.

    The [stats] verb answers with [sap-router-stats v1] (see
    docs/FORMAT.md): ring membership, totals, and per-shard state /
    respawn counts / latency summaries ({!Obs.Metrics.summary_json}),
    each Up shard's own [sap-server-stats] scrape embedded. *)

module Ring : sig
  (** Pure consistent-hash ring: [vnodes] virtual points per member,
      hashed with FNV-1a/64 ([hash (name ^ "#" ^ i)]); a key is owned by
      the first point clockwise from [fnv1a64 key].  Adding a member
      steals keys only {e for} the new member; removing one re-homes only
      the keys it owned — both in expectation [1/n] of the keyspace. *)

  type t

  val create : ?vnodes:int -> string list -> t
  (** Build a ring over distinct member names ([vnodes] defaults to 64;
      duplicates are collapsed). *)

  val vnodes : t -> int

  val members : t -> string list
  (** Sorted member names. *)

  val owner : t -> string -> string option
  (** Owning member for a key; [None] iff the ring is empty. *)

  val add : t -> string -> t
  val remove : t -> string -> t
end

type endpoint = {
  ep_name : string;  (** unique shard name (ring member) *)
  ep_socket : string;  (** Unix-socket path the shard serves on *)
  ep_spawn : (string -> int) option;
      (** [Some spawn]: the router owns the shard process — [spawn
          socket_path] starts it and returns its pid; the router respawns
          it on exit and shuts it down at the end.  [None]: external,
          reconnect-only. *)
}

type config = {
  vnodes : int;  (** virtual points per shard on the ring *)
  connect_attempts : int;
      (** startup connection attempts per shard (50 ms apart) before
          {!create} gives up *)
  backoff_min : float;  (** initial reconnect/respawn backoff, seconds *)
  backoff_max : float;  (** backoff doubling cap, seconds *)
  retry_limit : int;
      (** per-request re-homing attempts before answering [error] *)
  log : (string -> unit) option;  (** lifecycle event sink *)
}

val default_config : config
(** [vnodes = 64; connect_attempts = 100; backoff_min = 0.05;
    backoff_max = 2.0; retry_limit = 5; log = None] *)

type t

val create : ?config:config -> endpoint list -> (t, string) result
(** Spawn (where applicable) and connect every shard.  [Error] — with
    every spawned child cleaned up — if the endpoint list is empty, a
    name repeats, or some shard never accepts within
    [connect_attempts]. *)

val handle_session : t -> in_channel -> out_channel -> unit
(** Serve one client connection to completion (same contract as
    {!Transport.serve_channels}: FIFO responses, bad frames answered
    under id [-1], [shutdown] drains the whole router). *)

val serve :
  ?on_bound:(string -> unit) ->
  ?stop:Transport.stopper ->
  t ->
  socket_path:string ->
  unit
(** Accept clients on a front socket ({!Transport.serve_unix_sessions}
    with {!handle_session}) until [request_stop] or a client [shutdown]
    frame.  Does {e not} call {!shutdown}; the caller decides when to
    tear the fleet down. *)

val drain_shard : t -> string -> (unit, string) result
(** Gracefully retire a shard by name: remove it from the ring (new keys
    re-home immediately), send it [shutdown] — it finishes every
    admitted request first — await the ack, and reap the child if
    spawned.  The shard stays out ([`Drained]); it is not respawned. *)

val owner_for : t -> key:string -> string option
(** Current ring owner for a raw key (what a [solve] with this
    fingerprint would hash to).  Exposed for benches and tests. *)

val shard_pids : t -> (string * int option) list
(** [(name, pid)] per shard; [None] for external shards. *)

val draining : t -> bool

val stats_json : t -> Obs.Json.t
(** The [sap-router-stats v1] report. *)

val shutdown : t -> unit
(** Stop routing: mark the router draining, gracefully [shutdown] every
    spawned shard (await ack, reap), close external connections, and
    join all reader/recovery domains.  Idempotent. *)
