module P = Protocol

type batch_result = {
  responses : Protocol.response option array;
  stats : Obs.Json.t option;
  shutdown_acked : bool;
  transport_errors : string list;
}

let run_batch ~ic ~oc ~params ?(request_stats = false) ?(request_shutdown = false)
    instances =
  let n = List.length instances in
  let tasks_by_id = Array.of_list (List.map snd instances) in
  let stats_id = n in
  let shutdown_id = n + 1 in
  let expected =
    n + (if request_stats then 1 else 0) + if request_shutdown then 1 else 0
  in
  let tasks_for id =
    if id >= 0 && id < n then Some tasks_by_id.(id) else None
  in
  let responses = Array.make n None in
  let stats = ref None in
  let shutdown_acked = ref false in
  let errors = ref [] in
  (* Reader domain: collect until every expected response arrived or the
     server closed the stream.  All state it touches is joined before
     use. *)
  let reader =
    Domain.spawn (fun () ->
        let read_line () = try Some (input_line ic) with End_of_file -> None in
        let rec loop remaining =
          if remaining > 0 then
            match P.read_frame ~read_line with
            | None -> ()
            | Some lines -> (
                match P.response_of_lines ~tasks_for lines with
                | Error m ->
                    errors := ("bad response frame: " ^ m) :: !errors;
                    loop (remaining - 1)
                | Ok resp ->
                    let id = P.response_id resp in
                    if id >= 0 && id < n then responses.(id) <- Some resp
                    else if id = stats_id && request_stats then
                      stats :=
                        (match resp with
                        | P.Stats_reply { stats; _ } -> Some stats
                        | _ -> None)
                    else if id = shutdown_id && request_shutdown then
                      shutdown_acked :=
                        (match resp with P.Ack _ -> true | _ -> false)
                    else
                      errors :=
                        Printf.sprintf "response for unknown id %d" id :: !errors;
                    loop (remaining - 1))
        in
        loop expected)
  in
  (* Write-side failures (server died mid-batch) are collected locally —
     [errors] belongs to the reader domain until the join. *)
  let write_errors = ref [] in
  let send frame =
    if !write_errors = [] then
      try
        output_string oc frame;
        flush oc
      with Sys_error m -> write_errors := ("write failed: " ^ m) :: !write_errors
  in
  List.iteri
    (fun i (path, tasks) ->
      send (P.request_to_string (P.Solve { id = i; params; path; tasks })))
    instances;
  if request_stats then send (P.request_to_string (P.Stats { id = stats_id }));
  if request_shutdown then
    send (P.request_to_string (P.Shutdown { id = shutdown_id }));
  (* Half-close the send direction: the server keeps reading until end of
     input before its final in-order drain, so without this a batch whose
     responses are still in flight would leave both sides waiting (the
     server for a next frame, us for responses).  On non-socket streams
     (pipes in tests) there is nothing to shut down — the caller closes
     its write end instead. *)
  (try Unix.shutdown (Unix.descr_of_out_channel oc) Unix.SHUTDOWN_SEND
   with Unix.Unix_error _ | Sys_error _ | Invalid_argument _ -> ());
  Domain.join reader;
  {
    responses;
    stats = !stats;
    shutdown_acked = !shutdown_acked;
    transport_errors = List.rev !errors @ List.rev !write_errors;
  }

let request ~ic ~oc ~tasks_for req =
  match
    output_string oc (P.request_to_string req);
    flush oc
  with
  | exception Sys_error m -> Error ("write failed: " ^ m)
  | () -> (
      let read_line () = try Some (input_line ic) with End_of_file -> None in
      match P.read_frame ~read_line with
      | None -> Error "connection closed before a response arrived"
      | Some lines -> P.response_of_lines ~tasks_for lines)

let connect_unix socket_path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect sock (Unix.ADDR_UNIX socket_path) with
  | () -> Ok sock
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "%s: %s" socket_path (Unix.error_message err))
