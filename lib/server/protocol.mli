(** The solve service's wire protocol (version 1).

    Newline-delimited frames over any byte stream (Unix-domain socket or
    stdio).  A frame is a header line, an optional body reusing the
    {!Sap_io.Instance_io} text formats, and a terminator line that is
    exactly [end]:

    {v
    sap-request v1 <id> solve algorithm=combine seed=42 timeout-ms=500
    sap-instance v1
    capacities 4 5 4
    task 0 0 1 2 1.5
    end
    v}

    Request verbs: [solve] (body: an instance), [stats], [ping],
    [shutdown] (no body).  Response statuses: [solved] (body: a
    solution), [stats] (body: one line of compact JSON), [ok] (bare
    acknowledgement), [error], [timeout] (no body).  Ids are
    client-chosen non-negative integers echoed verbatim, so pipelined
    clients can match responses to requests; the server answers a frame
    whose header cannot be parsed with id [-1].

    Header attributes are [key=value] tokens; [msg=] (error responses
    only) must come last and swallows the rest of the line,
    [String.escaped]-encoded so messages stay newline-free.  Bodies never
    contain a bare [end] line (the Instance_io formats cannot produce
    one), which is what makes single-line framing sound.  The spec lives
    in docs/SERVER.md. *)

type error_code =
  | Bad_request  (** unparseable frame or malformed instance *)
  | Unknown_algorithm
  | Infeasible  (** the solver returned a checker-rejected solution *)
  | Shutting_down  (** admission closed by graceful drain *)
  | Internal  (** solver raised *)

type solve_params = {
  algorithm : string;  (** default ["combine"] *)
  seed : int;  (** default [42] *)
  timeout_ms : int option;  (** [None]: no deadline *)
  cache : bool;  (** default [true]; [cache=0] bypasses lookup and insert *)
}

val default_solve_params : solve_params

type request =
  | Solve of {
      id : int;
      params : solve_params;
      path : Core.Path.t;
      tasks : Core.Task.t list;
    }
  | Stats of { id : int }
  | Ping of { id : int }
  | Shutdown of { id : int }

type solve_summary = {
  scheduled : int;
  weight : float;
  cached : bool;
  time_ms : float;  (** solver wall time; [0] when served from cache *)
}

type response =
  | Solved of { id : int; summary : solve_summary; solution : Core.Solution.sap }
  | Stats_reply of { id : int; stats : Obs.Json.t }
  | Ack of { id : int }  (** [ping] and [shutdown] acknowledgement *)
  | Failed of { id : int; code : error_code; message : string }
  | Timed_out of { id : int }

val request_id : request -> int

val response_id : response -> int

val error_code_to_string : error_code -> string
(** Wire names: [bad-request], [unknown-algorithm], [infeasible],
    [shutting-down], [internal]. *)

val error_code_of_string : string -> error_code option

val request_to_string : request -> string
(** Full frame, terminator and trailing newline included. *)

val request_of_lines : string list -> (request, string) result
(** Parse a frame given as its lines {e without} the [end] terminator. *)

val request_of_string : string -> (request, string) result
(** Parse a full frame (terminator required). *)

val response_to_string : response -> string

val response_of_lines :
  tasks_for:(int -> Core.Task.t list option) ->
  string list ->
  (response, string) result
(** [tasks_for id] resolves a [solved] body's task ids against the
    instance the client sent under that request id. *)

val response_of_string :
  tasks_for:(int -> Core.Task.t list option) ->
  string ->
  (response, string) result

val read_frame : read_line:(unit -> string option) -> string list option
(** Pull lines from [read_line] until the [end] terminator; the returned
    lines exclude it.  [None] on end-of-stream (clean or mid-frame). *)
