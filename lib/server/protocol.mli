(** The solve service's wire protocol (version 1).

    Newline-delimited frames over any byte stream (Unix-domain socket or
    stdio).  A frame is a header line, an optional body reusing the
    {!Sap_io.Instance_io} text formats, and a terminator line that is
    exactly [end]:

    {v
    sap-request v1 <id> solve algorithm=combine seed=42 timeout-ms=500
    sap-instance v1
    capacities 4 5 4
    task 0 0 1 2 1.5
    end
    v}

    Request verbs: [solve] (body: an instance), [round-solve] (body: a
    [round-instance v1] — the ROUND-SAP verb: pack {e all} tasks into
    minimum capacity rounds), [stats], [ping], [shutdown] (no body),
    plus the session family — [session-open] (body: the base instance),
    [add-task], [remove-task], [resolve], [session-close]
    (attribute-only).  Response statuses: [solved] (body: a solution),
    [round-solved] (body: a [round-solution v1]), [stats] (body: one
    line of compact JSON), [ok]
    (bare acknowledgement), [error], [timeout] (no body), and [session]
    — the sap-session v1 schema: [session=<sid> event=<opened|ack|
    resolved|closed>], with resolve accounting attributes and a solution
    body on [opened]/[resolved].  Ids are client-chosen non-negative
    integers echoed verbatim, so pipelined clients can match responses
    to requests; the server answers a frame whose header cannot be
    parsed with id [-1].  Session ids are server-assigned and globally
    unique across shards, so a router can pin follow-up session verbs to
    the shard that owns the session.

    Header attributes are [key=value] tokens; [msg=] (error responses
    only) must come last and swallows the rest of the line,
    [String.escaped]-encoded so messages stay newline-free.  Bodies never
    contain a bare [end] line (the Instance_io formats cannot produce
    one), which is what makes single-line framing sound.  The spec lives
    in docs/SERVER.md. *)

type error_code =
  | Bad_request  (** unparseable frame or malformed instance *)
  | Unknown_algorithm
  | Unknown_session
      (** session id not (or no longer) live on this server/shard *)
  | Infeasible  (** the solver returned a checker-rejected solution *)
  | Shutting_down  (** admission closed by graceful drain *)
  | Internal  (** solver raised *)

type solve_params = {
  algorithm : string;  (** default ["combine"] *)
  seed : int;  (** default [42] *)
  timeout_ms : int option;  (** [None]: no deadline *)
  cache : bool;  (** default [true]; [cache=0] bypasses lookup and insert *)
}

val default_solve_params : solve_params

type request =
  | Solve of {
      id : int;
      params : solve_params;
      path : Core.Path.t;
      tasks : Core.Task.t list;
    }
  | Round_solve of {
      id : int;
      algorithm : string;
          (** a {!Round.Solvers} registry name; default ["bands"] *)
      cache : bool;  (** default [true] *)
      path : Core.Path.t;
      tasks : Core.Task.t list;
    }
  | Stats of { id : int }
  | Ping of { id : int }
  | Shutdown of { id : int }
  | Session_open of {
      id : int;
      seed : int;  (** per-band rounding seed; default [42] *)
      path : Core.Path.t;
      tasks : Core.Task.t list;
    }
  | Session_add of { id : int; session : int; task : Core.Task.t }
  | Session_remove of { id : int; session : int; task_id : int }
  | Session_resolve of { id : int; session : int; cold : bool }
      (** [cold=1] repacks every band from scratch (the baseline a warm
          resolve is benchmarked against) *)
  | Session_close of { id : int; session : int }

type solve_summary = {
  scheduled : int;
  weight : float;
  cached : bool;
  time_ms : float;  (** solver wall time; [0] when served from cache *)
}

type round_summary = {
  r_rounds : int;
  r_cached : bool;
  r_time_ms : float;  (** solver wall time; [0] when served from cache *)
}

type session_summary = {
  s_tasks : int;  (** tasks currently in the session instance *)
  s_scheduled : int;
  s_weight : float;
  s_bands : int;
  s_repacked : int;  (** bands repacked by this resolve *)
  s_reused : int;  (** bands reused bit-identically *)
  s_warm : int;  (** repacked bands whose LP was seeded with a basis *)
  s_time_ms : float;
}

type session_event = Sess_opened | Sess_ack | Sess_resolved | Sess_closed

type response =
  | Solved of { id : int; summary : solve_summary; solution : Core.Solution.sap }
  | Round_solved of {
      id : int;
      summary : round_summary;
      rounds : Core.Solution.sap list;  (** body: [round-solution v1] *)
    }
  | Stats_reply of { id : int; stats : Obs.Json.t }
  | Ack of { id : int }  (** [ping] and [shutdown] acknowledgement *)
  | Failed of { id : int; code : error_code; message : string }
  | Timed_out of { id : int }
  | Session_reply of {
      id : int;
      session : int;
      event : session_event;
      summary : session_summary option;
          (** present exactly on [Sess_opened] / [Sess_resolved] *)
      solution : Core.Solution.sap;
          (** body; empty on [Sess_ack] / [Sess_closed] *)
    }

val request_id : request -> int

val request_session : request -> int option
(** The session a follow-up verb addresses ([None] for [session-open]
    and the stateless verbs) — what a router keys shard pinning on. *)

val response_id : response -> int

val session_event_to_string : session_event -> string
(** Wire names: [opened], [ack], [resolved], [closed]. *)

val session_event_of_string : string -> session_event option

val error_code_to_string : error_code -> string
(** Wire names: [bad-request], [unknown-algorithm], [infeasible],
    [shutting-down], [internal]. *)

val error_code_of_string : string -> error_code option

val request_to_string : request -> string
(** Full frame, terminator and trailing newline included. *)

val request_of_lines : string list -> (request, string) result
(** Parse a frame given as its lines {e without} the [end] terminator. *)

val request_of_string : string -> (request, string) result
(** Parse a full frame (terminator required). *)

val response_to_string : response -> string

val response_of_lines :
  tasks_for:(int -> Core.Task.t list option) ->
  string list ->
  (response, string) result
(** [tasks_for id] resolves a [solved] body's task ids against the
    instance the client sent under that request id. *)

val response_of_string :
  tasks_for:(int -> Core.Task.t list option) ->
  string ->
  (response, string) result

val read_frame : read_line:(unit -> string option) -> string list option
(** Pull lines from [read_line] until the [end] terminator; the returned
    lines exclude it.  [None] on end-of-stream (clean or mid-frame). *)
