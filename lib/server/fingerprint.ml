module Task = Core.Task
module Path = Core.Path

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

(* Tasks sorted by every content field (id last: ids are assigned in input
   order, so two presentations of the same multiset may label tasks
   differently — but the checker resolves solutions by id, so ids are
   content for the cache's purposes too; a client reusing an instance file
   keeps its ids stable). *)
let canonical_task_order (a : Task.t) (b : Task.t) =
  let c = compare a.Task.first_edge b.Task.first_edge in
  if c <> 0 then c
  else
    let c = compare a.Task.last_edge b.Task.last_edge in
    if c <> 0 then c
    else
      let c = compare a.Task.demand b.Task.demand in
      if c <> 0 then c
      else
        let c = compare a.Task.weight b.Task.weight in
        if c <> 0 then c else compare a.Task.id b.Task.id

let solve_key ~problem ~algorithm ~seed path tasks =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "sap-key v2\x00";
  Buffer.add_string buf problem;
  Buffer.add_char buf '\x00';
  Buffer.add_string buf algorithm;
  Buffer.add_char buf '\x00';
  Buffer.add_string buf (string_of_int seed);
  Buffer.add_char buf '\x00';
  Array.iter
    (fun c ->
      Buffer.add_string buf (string_of_int c);
      Buffer.add_char buf ',')
    (Path.capacities path);
  Buffer.add_char buf '\x00';
  List.iter
    (fun (j : Task.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %d %d %.17g\x00" j.Task.id j.Task.first_edge
           j.Task.last_edge j.Task.demand j.Task.weight))
    (List.sort canonical_task_order tasks);
  Printf.sprintf "%016Lx" (fnv1a64 (Buffer.contents buf))
