(** A persistent domain worker pool with a bounded job queue.

    [Util.Parallel.map] spawns fresh domains per call, which is the right
    trade for one-shot experiment fan-out but wrong for a server: domain
    spawn costs dominate small solves and unbounded spawning has no
    admission control.  A pool spawns its workers once; jobs are closures
    pushed through a bounded FIFO:

    - {b backpressure} — [submit] blocks while the queue holds
      [queue_capacity] jobs, so a fast producer (the socket acceptor) is
      throttled to the solve rate instead of buffering without bound; the
      block propagates to the client through the kernel socket buffer.
    - {b graceful drain} — [shutdown] stops admission ([submit] raises
      {!Closed}), lets workers finish every job already accepted, and
      joins the domains.  No accepted job is dropped.
    - {b observability} — queue depth is observed into the
      [server.queue_depth] histogram at every submit; job counts land in
      [server.pool.{submitted,completed}].

    Futures are completed by the worker that ran the job; [await]-ing a
    failed job re-raises the job's exception in the awaiter. *)

type t

type 'a future

exception Closed
(** Raised by {!submit} after {!shutdown} has begun. *)

val create : ?workers:int -> ?queue_capacity:int -> unit -> t
(** Spawn the worker domains.  [workers] defaults to
    [Util.Parallel.default_jobs ()]; [queue_capacity] (default
    [4 * workers]) is the high-water mark past which [submit] blocks. *)

val workers : t -> int

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a job; blocks while the queue is at capacity.
    @raise Closed once {!shutdown} has begun. *)

val completed : 'a future -> bool
(** Non-blocking: has the job finished (successfully or not)? *)

val await : 'a future -> 'a
(** Block until the job finishes; re-raises its exception on failure. *)

val await_result : 'a future -> ('a, exn) result
(** [await] without the re-raise. *)

val await_until : 'a future -> deadline:float -> 'a option
(** Block until the job finishes or {!Obs.Clock.monotonic_seconds}
    reaches [deadline]; [None] on deadline (the job keeps running — the
    pool has no preemption, callers discard the future).  Re-raises the
    job's exception if it failed before the deadline. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map over the pool: submit one job per item,
    await them all, re-raise the first (by item index) failure.  Called
    from inside a pool worker it degrades to [List.map] — pool workers
    must not block on pool capacity they themselves provide. *)

val in_worker : unit -> bool
(** True when the calling domain is one of this module's pool workers. *)

val install_parallel_runner : t -> unit
(** Route [Util.Parallel.map]'s fan-out through this pool instead of
    spawning fresh domains (see {!Util.Parallel.set_runner}).  The runner
    degrades to inline execution inside pool workers and after
    {!shutdown}, so installing it can never deadlock the pool against
    itself. *)

val shutdown : t -> unit
(** Graceful drain: reject new submissions, finish every accepted job,
    join the workers.  Idempotent; uninstalls the parallel runner if this
    pool was installed. *)

type stats = {
  workers : int;
  queue_capacity : int;
  queue_depth : int;  (** jobs waiting (not yet picked up) right now *)
  submitted : int;
  completed : int;
  max_queue_depth : int;
}

val stats : t -> stats

val stats_json : t -> Obs.Json.t
