module P = Protocol

(* Latency histograms (seconds).  [total] spans receive -> respond for
   every request; the [queue]/[solve] phases and the hit/miss split only
   apply to solve requests.  Request totals (requests/solved/errors/
   timeouts) live on the server value itself — the per-server [Atomic.t]
   fields are the single source of truth, surfaced via [stats_json]. *)
let h_total = Obs.Metrics.histogram "server.latency.total"
let h_total_hit = Obs.Metrics.histogram "server.latency.total.hit"
let h_total_miss = Obs.Metrics.histogram "server.latency.total.miss"
let h_queue = Obs.Metrics.histogram "server.latency.queue"
let h_solve = Obs.Metrics.histogram "server.latency.solve"

type config = {
  workers : int option;
  queue_capacity : int option;
  cache_capacity : int;
  default_timeout_ms : int option;
  log : (string -> unit) option;
}

let default_config =
  {
    workers = None;
    queue_capacity = None;
    cache_capacity = 1024;
    default_timeout_ms = None;
    log = None;
  }

type cached_solve = {
  c_scheduled : int;
  c_weight : float;
  c_solution : Core.Solution.sap;
}

(* One LRU serves both problems.  {!Fingerprint.solve_key} embeds the
   problem kind, so a [solve] and a [round-solve] entry can never share a
   key; the variant additionally keeps even a 64-bit hash collision
   across problems from serving a round packing as a SAP solution. *)
type cache_entry =
  | Sap_result of cached_solve
  | Round_result of Core.Solution.sap list

(* A registered session: the state machine plus its own lock — resolves
   run on pool workers and deltas on the transport domain, so per-session
   mutual exclusion is what serializes them (the registry lock only
   guards the table itself). *)
type session_entry = { se : Session.t; se_lock : Mutex.t }

type t = {
  config : config;
  pool : Pool.t;
  cache : cache_entry Cache.t;
  draining_flag : bool Atomic.t;
  started : float;
  seq : int Atomic.t;
  n_requests : int Atomic.t;
  n_solved : int Atomic.t;
  n_errors : int Atomic.t;
  n_timeouts : int Atomic.t;
  sessions : (int, session_entry) Hashtbl.t;
  sessions_lock : Mutex.t;
  sid_seq : int Atomic.t;
  latency : (string * Obs.Metrics.histogram) list;
}

(* Same parameter derivation as sap_cli's standalone algorithms: every
   engine reads its knobs off [Combine.default_config], so a [solve]
   request for [small] agrees with what [combine] would feed the small
   part.  Per-request parallelism stays off — the pool provides
   cross-request parallelism, and nesting domain fan-outs inside worker
   domains would oversubscribe the machine. *)
let algorithms ~seed =
  let dc = Sap.Combine.default_config in
  let q = Sap.Combine.q_of_beta dc.Sap.Combine.beta in
  let ell = Sap.Almost_uniform.ell_for_eps ~eps:dc.Sap.Combine.eps ~q in
  [
    ( "combine",
      fun path ts -> Sap.Combine.solve ~config:{ dc with Sap.Combine.seed } path ts );
    ( "small",
      fun path ts ->
        Sap.Small.strip_pack ~rounding:dc.Sap.Combine.rounding
          ~prng:(Util.Prng.create seed) path ts );
    ( "medium",
      fun path ts ->
        (Sap.Almost_uniform.run ~ell ~q ?max_states:dc.Sap.Combine.max_states path ts)
          .Sap.Almost_uniform.solution );
    ("large", fun path ts -> Sap.Large.solve path ts);
    ("sapu", fun path ts -> Sap.Sap_u.solve path ts);
    ("firstfit", fun path ts -> fst (Dsa.First_fit.pack path ts));
    ("exact", fun path ts -> Exact.Sap_brute.solve path ts);
  ]

let algorithm_names = List.map fst (algorithms ~seed:0)

let create ?(config = default_config) () =
  {
    config;
    pool = Pool.create ?workers:config.workers ?queue_capacity:config.queue_capacity ();
    cache = Cache.create ~capacity:config.cache_capacity;
    draining_flag = Atomic.make false;
    started = Obs.Clock.monotonic_seconds ();
    seq = Atomic.make 0;
    n_requests = Atomic.make 0;
    n_solved = Atomic.make 0;
    n_errors = Atomic.make 0;
    n_timeouts = Atomic.make 0;
    sessions = Hashtbl.create 16;
    sessions_lock = Mutex.create ();
    sid_seq = Atomic.make 0;
    latency =
      List.map
        (fun a -> (a, Obs.Metrics.histogram ("server.latency_seconds." ^ a)))
        algorithm_names;
  }

type pending = {
  ready : unit -> bool;
  force : unit -> Protocol.response;
}

let immediate resp = { ready = (fun () -> true); force = (fun () -> resp) }

let draining t = Atomic.get t.draining_flag

let stats_json t =
  let uptime = Obs.Clock.monotonic_seconds () -. t.started in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "sap-server-stats v2");
      ("uptime_seconds", Obs.Json.Float uptime);
      ("draining", Obs.Json.Bool (draining t));
      ( "requests",
        Obs.Json.Obj
          [
            ("total", Obs.Json.Int (Atomic.get t.n_requests));
            ("solved", Obs.Json.Int (Atomic.get t.n_solved));
            ("errors", Obs.Json.Int (Atomic.get t.n_errors));
            ("timeouts", Obs.Json.Int (Atomic.get t.n_timeouts));
          ] );
      ("cache", Cache.stats_json t.cache);
      ("pool", Pool.stats_json t.pool);
      ( "sessions",
        Obs.Json.Obj
          [
            ( "open",
              Obs.Json.Int
                (Mutex.protect t.sessions_lock (fun () ->
                     Hashtbl.length t.sessions)) );
          ] );
      ("metrics", Obs.Metrics.snapshot_json ());
    ]

let fail t ~id code message =
  Atomic.incr t.n_errors;
  P.Failed { id; code; message }

let timeout t ~id =
  Atomic.incr t.n_timeouts;
  P.Timed_out { id }

let solved t ~id ~cached ~time_ms (c : cached_solve) =
  Atomic.incr t.n_solved;
  P.Solved
    {
      id;
      summary =
        { scheduled = c.c_scheduled; weight = c.c_weight; cached; time_ms };
      solution = c.c_solution;
    }

let round_solved t ~id ~cached ~time_ms rounds =
  Atomic.incr t.n_solved;
  P.Round_solved
    {
      id;
      summary =
        {
          P.r_rounds = List.length rounds;
          r_cached = cached;
          r_time_ms = time_ms;
        };
      rounds;
    }

(* ---------- sessions ---------- *)

(* Session ids are globally unique across shard processes (pid in the
   high bits, a per-process counter below), so a router can pin a sid to
   its owning shard without rewriting session attributes. *)
let fresh_sid t =
  ((Unix.getpid () land 0xFFFFFF) lsl 24) lor (Atomic.fetch_and_add t.sid_seq 1)

let find_session t sid =
  Mutex.protect t.sessions_lock (fun () -> Hashtbl.find_opt t.sessions sid)

let session_summary (s : Session.summary) : P.session_summary =
  {
    P.s_tasks = s.Session.n_tasks;
    s_scheduled = s.Session.scheduled;
    s_weight = s.Session.weight;
    s_bands = s.Session.bands;
    s_repacked = s.Session.repacked;
    s_reused = s.Session.reused;
    s_warm = s.Session.warm_seeded;
    s_time_ms = s.Session.time_ms;
  }

let session_solved t ~id ~session ~event (sol, summary) =
  Atomic.incr t.n_solved;
  P.Session_reply
    {
      id;
      session;
      event;
      summary = Some (session_summary summary);
      solution = sol;
    }

let no_session t ~id sid =
  fail t ~id P.Unknown_session (Printf.sprintf "unknown session %d" sid)

(* [session-open] and [resolve] do solver work, so they run as pool jobs
   like [solve] does; the attribute-only deltas mutate session state
   inline at admission time, which keeps a pipelined open/add/resolve
   sequence ordered without a pool round-trip per delta. *)
let submit_session_open t ~id ~seed path tasks =
  let job () =
    match Session.create ~seed path tasks with
    | Error m -> fail t ~id P.Bad_request m
    | Ok ses -> (
        match Session.resolve ~cold:true ses with
        | Error m -> fail t ~id P.Internal m
        | Ok result ->
            let sid = fresh_sid t in
            Mutex.protect t.sessions_lock (fun () ->
                Hashtbl.replace t.sessions sid
                  { se = ses; se_lock = Mutex.create () });
            session_solved t ~id ~session:sid ~event:P.Sess_opened result)
  in
  match Pool.submit t.pool job with
  | exception Pool.Closed ->
      immediate (fail t ~id P.Shutting_down "server is draining")
  | fut -> { ready = (fun () -> Pool.completed fut); force = (fun () -> Pool.await fut) }

let submit_session_resolve t ~id ~session ~cold =
  match find_session t session with
  | None -> immediate (no_session t ~id session)
  | Some entry -> (
      let job () =
        Mutex.protect entry.se_lock (fun () ->
            match Session.resolve ~cold entry.se with
            | Error m -> fail t ~id P.Internal m
            | Ok result ->
                session_solved t ~id ~session ~event:P.Sess_resolved result)
      in
      match Pool.submit t.pool job with
      | exception Pool.Closed ->
          immediate (fail t ~id P.Shutting_down "server is draining")
      | fut ->
          { ready = (fun () -> Pool.completed fut); force = (fun () -> Pool.await fut) })

let session_delta t ~id ~session apply =
  match find_session t session with
  | None -> no_session t ~id session
  | Some entry -> (
      match Mutex.protect entry.se_lock (fun () -> apply entry.se) with
      | Error m -> fail t ~id P.Bad_request m
      | Ok () ->
          P.Session_reply
            { id; session; event = P.Sess_ack; summary = None; solution = [] })

let session_close t ~id ~session =
  let entry =
    Mutex.protect t.sessions_lock (fun () ->
        let e = Hashtbl.find_opt t.sessions session in
        Hashtbl.remove t.sessions session;
        e)
  in
  match entry with
  | None -> no_session t ~id session
  | Some entry ->
      Mutex.protect entry.se_lock (fun () -> Session.close entry.se);
      P.Session_reply
        { id; session; event = P.Sess_closed; summary = None; solution = [] }

(* ---------- per-request telemetry ---------- *)

(* One record per admitted request, created at receive time.  The worker
   domain stamps dequeue/solve phases; the forcing domain reads them when
   the response is produced.  [Atomic.t] floats keep the cross-domain
   handoff well-defined even on the timeout path (where the job may still
   be running when the response is forced). *)
type telemetry = {
  rid : int;  (* server-assigned, monotonically increasing *)
  t_recv : float;
  verb : string;
  alg : string option;
  solve_seed : int option;
  cache_state : string option;  (* "hit" | "miss" | "off"; solves only *)
  queue_s : float Atomic.t;  (* receive -> dequeue; nan until stamped *)
  solve_s : float Atomic.t;  (* solver wall time; nan until stamped *)
  finalized : bool Atomic.t;
}

let telemetry t ~verb ?alg ?solve_seed ?cache_state () =
  {
    rid = Atomic.fetch_and_add t.seq 1;
    t_recv = Obs.Clock.monotonic_seconds ();
    verb;
    alg;
    solve_seed;
    cache_state;
    queue_s = Atomic.make Float.nan;
    solve_s = Atomic.make Float.nan;
    finalized = Atomic.make false;
  }

let response_status = function
  | P.Solved _ -> "solved"
  | P.Round_solved _ -> "round-solved"
  | P.Timed_out _ -> "timeout"
  | P.Ack _ -> "ack"
  | P.Stats_reply _ -> "stats"
  | P.Failed { code; _ } -> "error:" ^ P.error_code_to_string code
  | P.Session_reply { event; _ } ->
      "session:" ^ P.session_event_to_string event

let log_line tel resp ~total =
  let b = Buffer.create 160 in
  let kv k v =
    if Buffer.length b > 0 then Buffer.add_char b ' ';
    Buffer.add_string b k;
    Buffer.add_char b '=';
    Buffer.add_string b v
  in
  let ms s = Printf.sprintf "%.3f" (s *. 1000.0) in
  kv "ts" (Printf.sprintf "%.6f" (Unix.gettimeofday ()));
  kv "req" (string_of_int tel.rid);
  kv "id" (string_of_int (P.response_id resp));
  kv "verb" tel.verb;
  Option.iter (fun a -> kv "alg" a) tel.alg;
  Option.iter (fun s -> kv "seed" (string_of_int s)) tel.solve_seed;
  Option.iter (fun c -> kv "cache" c) tel.cache_state;
  kv "status" (response_status resp);
  (match resp with
  | P.Solved { summary; _ } ->
      kv "scheduled" (string_of_int summary.P.scheduled);
      kv "weight" (Printf.sprintf "%.6g" summary.P.weight)
  | P.Round_solved { summary; _ } ->
      kv "rounds" (string_of_int summary.P.r_rounds)
  | P.Session_reply { session; summary = Some s; _ } ->
      kv "session" (string_of_int session);
      kv "scheduled" (string_of_int s.P.s_scheduled);
      kv "weight" (Printf.sprintf "%.6g" s.P.s_weight);
      kv "repacked" (string_of_int s.P.s_repacked);
      kv "reused" (string_of_int s.P.s_reused)
  | P.Session_reply { session; summary = None; _ } ->
      kv "session" (string_of_int session)
  | _ -> ());
  let q = Atomic.get tel.queue_s and s = Atomic.get tel.solve_s in
  if not (Float.is_nan q) then kv "queue_ms" (ms q);
  if not (Float.is_nan s) then kv "solve_ms" (ms s);
  kv "total_ms" (ms total);
  Buffer.contents b

(* Wrap a pending so the respond timestamp, total-latency observations and
   the structured log line happen exactly once, when the transport forces
   the response (FIFO flush order = respond order). *)
let finalize t tel pending =
  let record resp =
    if not (Atomic.exchange tel.finalized true) then begin
      let total = Obs.Clock.monotonic_seconds () -. tel.t_recv in
      Obs.Metrics.observe h_total total;
      (match tel.cache_state with
      | Some "hit" -> Obs.Metrics.observe h_total_hit total
      | Some _ -> Obs.Metrics.observe h_total_miss total
      | None -> ());
      match t.config.log with
      | Some log -> log (log_line tel resp ~total)
      | None -> ()
    end;
    resp
  in
  { ready = pending.ready; force = (fun () -> record (pending.force ())) }

let submit_solve t tel ~id (params : P.solve_params) path tasks =
  match List.assoc_opt params.algorithm (algorithms ~seed:params.seed) with
  | None ->
      ( tel,
        immediate
          (fail t ~id P.Unknown_algorithm
             (Printf.sprintf "unknown algorithm %S (have: %s)" params.algorithm
                (String.concat ", " algorithm_names))) )
  | Some solve -> (
      let key =
        if params.cache then
          Some
            (Fingerprint.solve_key ~problem:"sap" ~algorithm:params.algorithm
               ~seed:params.seed path tasks)
        else None
      in
      match Option.map (Cache.find t.cache) key |> Option.join with
      | Some (Sap_result hit) ->
          ( { tel with cache_state = Some "hit" },
            immediate (solved t ~id ~cached:true ~time_ms:0.0 hit) )
      | Some (Round_result _) | None -> (
          let tel =
            { tel with cache_state = Some (if key = None then "off" else "miss") }
          in
          let timeout_ms =
            match params.timeout_ms with
            | Some _ as s -> s
            | None -> t.config.default_timeout_ms
          in
          let deadline =
            Option.map
              (fun ms ->
                Obs.Clock.monotonic_seconds () +. (float_of_int ms /. 1000.0))
              timeout_ms
          in
          let job () =
            let t_deq = Obs.Clock.monotonic_seconds () in
            Atomic.set tel.queue_s (t_deq -. tel.t_recv);
            Obs.Metrics.observe h_queue (t_deq -. tel.t_recv);
            let expired =
              match deadline with Some dl -> t_deq >= dl | None -> false
            in
            if expired then timeout t ~id
            else
              Obs.Trace.with_span "server.request"
                ~attrs:[ ("algorithm", params.algorithm); ("id", string_of_int id) ]
              @@ fun () ->
              let t0 = Obs.Clock.monotonic_seconds () in
              match solve path tasks with
              | exception e ->
                  fail t ~id P.Internal
                    (Printf.sprintf "solver raised: %s" (Printexc.to_string e))
              | sol -> (
                  let dt = Obs.Clock.monotonic_seconds () -. t0 in
                  Atomic.set tel.solve_s dt;
                  Obs.Metrics.observe h_solve dt;
                  (match List.assoc_opt params.algorithm t.latency with
                  | Some h -> Obs.Metrics.observe h dt
                  | None -> ());
                  match Core.Checker.sap_feasible path sol with
                  | Error m ->
                      fail t ~id P.Infeasible ("solver produced infeasible solution: " ^ m)
                  | Ok () ->
                      let entry =
                        {
                          c_scheduled = List.length sol;
                          c_weight = Core.Solution.sap_weight sol;
                          c_solution = sol;
                        }
                      in
                      (match key with
                      | Some k -> Cache.add t.cache k (Sap_result entry)
                      | None -> ());
                      solved t ~id ~cached:false ~time_ms:(dt *. 1000.0) entry)
          in
          match Pool.submit t.pool job with
          | exception Pool.Closed ->
              (tel, immediate (fail t ~id P.Shutting_down "server is draining"))
          | fut ->
              let ready () =
                Pool.completed fut
                ||
                match deadline with
                | Some dl -> Obs.Clock.monotonic_seconds () >= dl
                | None -> false
              in
              let force () =
                match deadline with
                | None -> Pool.await fut
                | Some dl -> (
                    match Pool.await_until fut ~deadline:dl with
                    | Some resp -> resp
                    | None ->
                        (* The job keeps running to completion (it may
                           still warm the cache); this request's answer
                           is a clean timeout. *)
                        timeout t ~id)
              in
              (tel, { ready; force })))

(* [round-solve]: same lifecycle as [solve] — cache lookup, pool job,
   checker verification, cache insert — for the ROUND-SAP objective.  The
   round algorithms are deterministic (no seed) and fast enough that the
   verb carries no deadline; a client that needs one can layer it on top
   of the pipelined transport. *)
let submit_round_solve t tel ~id ~algorithm ~cache path tasks =
  match Round.Solvers.find algorithm with
  | None ->
      ( tel,
        immediate
          (fail t ~id P.Unknown_algorithm
             (Printf.sprintf "unknown round algorithm %S (have: %s)" algorithm
                (String.concat ", " Round.Solvers.names))) )
  | Some solver -> (
      match Round.Instance.create path tasks with
      | Error m ->
          (tel, immediate (fail t ~id P.Bad_request ("invalid round instance: " ^ m)))
      | Ok inst -> (
          let key =
            if cache then
              Some
                (Fingerprint.solve_key ~problem:"round" ~algorithm ~seed:0 path
                   tasks)
            else None
          in
          match Option.map (Cache.find t.cache) key |> Option.join with
          | Some (Round_result rounds) ->
              ( { tel with cache_state = Some "hit" },
                immediate (round_solved t ~id ~cached:true ~time_ms:0.0 rounds) )
          | Some (Sap_result _) | None -> (
              let tel =
                {
                  tel with
                  cache_state = Some (if key = None then "off" else "miss");
                }
              in
              let job () =
                let t_deq = Obs.Clock.monotonic_seconds () in
                Atomic.set tel.queue_s (t_deq -. tel.t_recv);
                Obs.Metrics.observe h_queue (t_deq -. tel.t_recv);
                Obs.Trace.with_span "server.round_request"
                  ~attrs:[ ("algorithm", algorithm); ("id", string_of_int id) ]
                @@ fun () ->
                let t0 = Obs.Clock.monotonic_seconds () in
                match solver.Round.Solvers.solve inst with
                | exception e ->
                    fail t ~id P.Internal
                      (Printf.sprintf "round solver raised: %s"
                         (Printexc.to_string e))
                | rounds -> (
                    let dt = Obs.Clock.monotonic_seconds () -. t0 in
                    Atomic.set tel.solve_s dt;
                    Obs.Metrics.observe h_solve dt;
                    match Round.Checker.check inst rounds with
                    | Error m ->
                        fail t ~id P.Infeasible
                          ("round solver produced infeasible packing: " ^ m)
                    | Ok () ->
                        (match key with
                        | Some k -> Cache.add t.cache k (Round_result rounds)
                        | None -> ());
                        round_solved t ~id ~cached:false ~time_ms:(dt *. 1000.0)
                          rounds)
              in
              match Pool.submit t.pool job with
              | exception Pool.Closed ->
                  (tel, immediate (fail t ~id P.Shutting_down "server is draining"))
              | fut ->
                  ( tel,
                    {
                      ready = (fun () -> Pool.completed fut);
                      force = (fun () -> Pool.await fut);
                    } ))))

let drain_pool t =
  Atomic.set t.draining_flag true;
  Pool.shutdown t.pool

let submit t req =
  Atomic.incr t.n_requests;
  let id = P.request_id req in
  let tel, pending =
    match req with
    | P.Ping _ -> (telemetry t ~verb:"ping" (), immediate (P.Ack { id }))
    | P.Stats _ ->
        (* Evaluated at force time: a pipelined [stats] frame behind a
           batch reflects that batch once the transport's in-order flush
           reaches it. *)
        ( telemetry t ~verb:"stats" (),
          {
            ready = (fun () -> true);
            force = (fun () -> P.Stats_reply { id; stats = stats_json t });
          } )
    | P.Shutdown _ ->
        Atomic.set t.draining_flag true;
        ( telemetry t ~verb:"shutdown" (),
          { ready = (fun () -> true); force = (fun () -> drain_pool t; P.Ack { id }) } )
    | P.Solve { params; path; tasks; _ } ->
        let tel =
          telemetry t ~verb:"solve" ~alg:params.algorithm
            ~solve_seed:params.seed ()
        in
        if draining t then
          (tel, immediate (fail t ~id P.Shutting_down "server is draining"))
        else submit_solve t tel ~id params path tasks
    | P.Round_solve { algorithm; cache; path; tasks; _ } ->
        let tel = telemetry t ~verb:"round-solve" ~alg:algorithm () in
        if draining t then
          (tel, immediate (fail t ~id P.Shutting_down "server is draining"))
        else submit_round_solve t tel ~id ~algorithm ~cache path tasks
    | P.Session_open { seed; path; tasks; _ } ->
        let tel = telemetry t ~verb:"session-open" ~solve_seed:seed () in
        if draining t then
          (tel, immediate (fail t ~id P.Shutting_down "server is draining"))
        else (tel, submit_session_open t ~id ~seed path tasks)
    | P.Session_add { session; task; _ } ->
        ( telemetry t ~verb:"add-task" (),
          immediate
            (session_delta t ~id ~session (fun ses -> Session.add_task ses task))
        )
    | P.Session_remove { session; task_id; _ } ->
        ( telemetry t ~verb:"remove-task" (),
          immediate
            (session_delta t ~id ~session (fun ses ->
                 Session.remove_task ses task_id)) )
    | P.Session_resolve { session; cold; _ } ->
        let tel = telemetry t ~verb:"resolve" () in
        if draining t then
          (tel, immediate (fail t ~id P.Shutting_down "server is draining"))
        else (tel, submit_session_resolve t ~id ~session ~cold)
    | P.Session_close { session; _ } ->
        ( telemetry t ~verb:"session-close" (),
          immediate (session_close t ~id ~session) )
  in
  finalize t tel pending

let handle t req = (submit t req).force ()

let drain t = drain_pool t
