module P = Protocol

let c_bad_frames = Obs.Metrics.counter "server.bad_frames"
let c_connections = Obs.Metrics.counter "server.connections"

let write_response oc resp =
  output_string oc (P.response_to_string resp);
  flush oc

(* Flush the FIFO head while it can answer without blocking. *)
let flush_ready oc pending =
  let rec go () =
    match Queue.peek_opt pending with
    | Some p when p.Server.ready () ->
        ignore (Queue.pop pending);
        write_response oc (p.Server.force ());
        go ()
    | _ -> ()
  in
  go ()

let drain_all oc pending =
  while not (Queue.is_empty pending) do
    write_response oc ((Queue.pop pending).Server.force ())
  done

let serve_channels t ic oc =
  Obs.Metrics.incr c_connections;
  let pending = Queue.create () in
  let read_line () = try Some (input_line ic) with End_of_file -> None in
  let rec loop () =
    match P.read_frame ~read_line with
    | None -> drain_all oc pending
    | Some lines -> (
        match P.request_of_lines lines with
        | Error m ->
            Obs.Metrics.incr c_bad_frames;
            Queue.push
              (Server.
                 {
                   ready = (fun () -> true);
                   force = (fun () -> P.Failed { id = -1; code = P.Bad_request; message = m });
                 })
              pending;
            flush_ready oc pending;
            loop ()
        | Ok req ->
            let stop = match req with P.Shutdown _ -> true | _ -> false in
            Queue.push (Server.submit t req) pending;
            if stop then drain_all oc pending
            else begin
              flush_ready oc pending;
              loop ()
            end)
  in
  (* A peer that vanishes mid-write surfaces as Sys_error (EPIPE with
     SIGPIPE ignored); the connection is simply over. *)
  try loop () with Sys_error _ -> ()

(* One domain per accepted connection, so a pipelined load generator's N
   connections and a live [stats] scrape all make progress while earlier
   solves are in flight.  The accept loop polls with a short select
   timeout so it can notice a drain (shutdown verb, SIGINT-driven [stop]
   flag) promptly; connection fds are closed by the accept loop after
   joining their domain, never by the domain itself, so the graceful-stop
   path can safely [shutdown] a live connection's receive side to unblock
   its reader (which then drains every admitted request before exiting —
   no accepted request loses its response). *)
let serve_unix ?on_bound ?stop t ~socket_path =
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink socket_path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX socket_path);
      Unix.listen sock 64;
      Option.iter (fun f -> f socket_path) on_bound;
      let should_stop () =
        Server.draining t
        || match stop with Some s -> Atomic.get s | None -> false
      in
      let conns = ref [] in
      let conns_lock = Mutex.create () in
      let spawn_conn fd =
        let finished = Atomic.make false in
        let dom =
          Domain.spawn (fun () ->
              Fun.protect
                ~finally:(fun () -> Atomic.set finished true)
                (fun () ->
                  let ic = Unix.in_channel_of_descr fd in
                  let oc = Unix.out_channel_of_descr fd in
                  serve_channels t ic oc;
                  try flush oc with Sys_error _ -> ()))
        in
        Mutex.lock conns_lock;
        conns := (fd, dom, finished) :: !conns;
        Mutex.unlock conns_lock
      in
      let reap () =
        Mutex.lock conns_lock;
        let done_, live =
          List.partition (fun (_, _, fin) -> Atomic.get fin) !conns
        in
        conns := live;
        Mutex.unlock conns_lock;
        List.iter
          (fun (fd, dom, _) ->
            Domain.join dom;
            try Unix.close fd with Unix.Unix_error _ -> ())
          done_
      in
      let rec accept_loop () =
        if not (should_stop ()) then begin
          (match Unix.select [ sock ] [] [] 0.2 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | [], _, _ -> ()
          | _ -> (
              match Unix.accept sock with
              | exception
                  Unix.Unix_error
                    ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _)
                ->
                  ()
              | fd, _peer -> spawn_conn fd));
          reap ();
          accept_loop ()
        end
      in
      accept_loop ();
      (* Stop accepting; unblock every live reader, then wait for each
         connection to flush the responses it still owes. *)
      Mutex.lock conns_lock;
      let all = !conns in
      conns := [];
      Mutex.unlock conns_lock;
      List.iter
        (fun (fd, _, fin) ->
          if not (Atomic.get fin) then
            try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
        all;
      List.iter
        (fun (fd, dom, _) ->
          Domain.join dom;
          try Unix.close fd with Unix.Unix_error _ -> ())
        all)
