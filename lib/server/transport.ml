module P = Protocol

let c_bad_frames = Obs.Metrics.counter "server.bad_frames"
let c_connections = Obs.Metrics.counter "server.connections"

let write_response oc resp =
  output_string oc (P.response_to_string resp);
  flush oc

(* Responses drain on a per-connection {!Pump}: pushed in arrival order,
   each written the moment it (and everything before it) is ready.
   Flushing from the read loop instead would strand the tail of a
   pipelined connection that goes quiet without closing — the router's
   link to a shard after a load burst — because nothing inbound would
   ever trigger the flush. *)
let serve_channels t ic oc =
  Obs.Metrics.incr c_connections;
  let pump = Pump.create () in
  let read_line () = try Some (input_line ic) with End_of_file -> None in
  let rec loop () =
    match P.read_frame ~read_line with
    | None -> ()
    | Some lines -> (
        match P.request_of_lines lines with
        | Error m ->
            Obs.Metrics.incr c_bad_frames;
            Pump.push pump (fun () ->
                write_response oc
                  (P.Failed { id = -1; code = P.Bad_request; message = m }));
            loop ()
        | Ok req ->
            let stop = match req with P.Shutdown _ -> true | _ -> false in
            let p = Server.submit t req in
            Pump.push pump (fun () -> write_response oc (p.Server.force ()));
            if not stop then loop ())
  in
  (* A peer that vanishes mid-read surfaces as Sys_error; the connection
     is over, but every admitted request still gets its response written
     (or discarded on EPIPE) by the pump before we return. *)
  (try loop () with Sys_error _ -> ());
  Pump.finish pump

(* ---------- stop handles (self-pipe) ---------- *)

(* A stop request must wake an accept loop that is blocked in [select]
   with no timeout.  The classic self-pipe does that: [request_stop] sets
   the flag and writes one byte; the loop selects on the pipe's read end
   alongside the listening socket, so it wakes immediately instead of
   polling on a short timeout (which used to wake idle servers 5x/s).
   Session domains reuse the same pipe to request a reap when they
   finish.  OCaml signal handlers run as ordinary code at safe points, so
   calling [request_stop] from one is fine. *)
type stopper = {
  st_flag : bool Atomic.t;
  st_read : Unix.file_descr;
  st_write : Unix.file_descr;
}

let stopper () =
  let st_read, st_write = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock st_read;
  Unix.set_nonblock st_write;
  { st_flag = Atomic.make false; st_read; st_write }

let wake st =
  try ignore (Unix.write_substring st.st_write "!" 0 1)
  with Unix.Unix_error _ -> ()
(* EAGAIN: the pipe already holds pending wakeups — the loop will wake. *)

let request_stop st =
  Atomic.set st.st_flag true;
  wake st

let stop_requested st = Atomic.get st.st_flag

let drain_wakeups st =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read st.st_read buf 0 64 with
    | 0 -> ()
    | _ -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  in
  go ()

let close_stopper st =
  (try Unix.close st.st_read with Unix.Unix_error _ -> ());
  try Unix.close st.st_write with Unix.Unix_error _ -> ()

(* ---------- unix-domain accept loop ---------- *)

(* One domain per accepted connection, so a pipelined load generator's N
   connections and a live [stats] scrape all make progress while earlier
   solves are in flight.  The accept loop blocks in [select] on the
   listening socket plus the stopper's self-pipe: a stop request (signal
   handler, shutdown frame processed by a session, session finishing and
   wanting a reap) wakes it immediately, and an idle server makes no
   syscalls at all.  Connection fds are closed by the accept loop after
   joining their domain, never by the domain itself, so the graceful-stop
   path can safely [shutdown] a live connection's receive side to unblock
   its reader (which then drains every admitted request before exiting —
   no accepted request loses its response). *)
let serve_unix_sessions ?on_bound ?stop ?(draining = fun () -> false) session
    ~socket_path =
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let st, owns_stopper =
    match stop with Some s -> (s, false) | None -> (stopper (), true)
  in
  (* Every fd here is close-on-exec: a server that forks helper processes
     (the router respawning a shard) must not leak client connections into
     them — an inherited fd would keep the peer's stream open after we
     close ours, so the peer never sees EOF. *)
  let sock = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
      if owns_stopper then close_stopper st)
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX socket_path);
      Unix.listen sock 64;
      Option.iter (fun f -> f socket_path) on_bound;
      let should_stop () = draining () || stop_requested st in
      let conns = ref [] in
      let conns_lock = Mutex.create () in
      let spawn_conn fd =
        let finished = Atomic.make false in
        let dom =
          Domain.spawn (fun () ->
              Fun.protect
                ~finally:(fun () ->
                  Atomic.set finished true;
                  wake st)
                (fun () ->
                  let ic = Unix.in_channel_of_descr fd in
                  let oc = Unix.out_channel_of_descr fd in
                  session ic oc;
                  try flush oc with Sys_error _ -> ()))
        in
        Mutex.lock conns_lock;
        conns := (fd, dom, finished) :: !conns;
        Mutex.unlock conns_lock
      in
      let reap () =
        Mutex.lock conns_lock;
        let done_, live =
          List.partition (fun (_, _, fin) -> Atomic.get fin) !conns
        in
        conns := live;
        Mutex.unlock conns_lock;
        List.iter
          (fun (fd, dom, _) ->
            Domain.join dom;
            try Unix.close fd with Unix.Unix_error _ -> ())
          done_
      in
      let rec accept_loop () =
        if not (should_stop ()) then begin
          (match Unix.select [ sock; st.st_read ] [] [] (-1.0) with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          | ready, _, _ ->
              if List.mem st.st_read ready then drain_wakeups st;
              if List.mem sock ready then (
                match Unix.accept sock with
                | exception
                    Unix.Unix_error
                      ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNABORTED), _, _)
                  ->
                    ()
                | fd, _peer ->
                    Unix.set_close_on_exec fd;
                    spawn_conn fd));
          reap ();
          accept_loop ()
        end
      in
      accept_loop ();
      (* Stop accepting; unblock every live reader, then wait for each
         connection to flush the responses it still owes. *)
      Mutex.lock conns_lock;
      let all = !conns in
      conns := [];
      Mutex.unlock conns_lock;
      List.iter
        (fun (fd, _, fin) ->
          if not (Atomic.get fin) then
            try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
        all;
      List.iter
        (fun (fd, dom, _) ->
          Domain.join dom;
          try Unix.close fd with Unix.Unix_error _ -> ())
        all)

let serve_unix ?on_bound ?stop t ~socket_path =
  serve_unix_sessions ?on_bound ?stop
    ~draining:(fun () -> Server.draining t)
    (fun ic oc -> serve_channels t ic oc)
    ~socket_path
