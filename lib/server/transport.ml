module P = Protocol

let c_bad_frames = Obs.Metrics.counter "server.bad_frames"
let c_connections = Obs.Metrics.counter "server.connections"

let write_response oc resp =
  output_string oc (P.response_to_string resp);
  flush oc

(* Flush the FIFO head while it can answer without blocking. *)
let flush_ready oc pending =
  let rec go () =
    match Queue.peek_opt pending with
    | Some p when p.Server.ready () ->
        ignore (Queue.pop pending);
        write_response oc (p.Server.force ());
        go ()
    | _ -> ()
  in
  go ()

let drain_all oc pending =
  while not (Queue.is_empty pending) do
    write_response oc ((Queue.pop pending).Server.force ())
  done

let serve_channels t ic oc =
  Obs.Metrics.incr c_connections;
  let pending = Queue.create () in
  let read_line () = try Some (input_line ic) with End_of_file -> None in
  let rec loop () =
    match P.read_frame ~read_line with
    | None -> drain_all oc pending
    | Some lines -> (
        match P.request_of_lines lines with
        | Error m ->
            Obs.Metrics.incr c_bad_frames;
            Queue.push
              (Server.
                 {
                   ready = (fun () -> true);
                   force = (fun () -> P.Failed { id = -1; code = P.Bad_request; message = m });
                 })
              pending;
            flush_ready oc pending;
            loop ()
        | Ok req ->
            let stop = match req with P.Shutdown _ -> true | _ -> false in
            Queue.push (Server.submit t req) pending;
            if stop then drain_all oc pending
            else begin
              flush_ready oc pending;
              loop ()
            end)
  in
  (* A peer that vanishes mid-write surfaces as Sys_error (EPIPE with
     SIGPIPE ignored); the connection is simply over. *)
  try loop () with Sys_error _ -> ()

let serve_unix t ~socket_path =
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  (try Unix.unlink socket_path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink socket_path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX socket_path);
      Unix.listen sock 16;
      let rec accept_loop () =
        if not (Server.draining t) then begin
          let fd, _peer = Unix.accept sock in
          let ic = Unix.in_channel_of_descr fd in
          let oc = Unix.out_channel_of_descr fd in
          serve_channels t ic oc;
          (try flush oc with Sys_error _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ());
          accept_loop ()
        end
      in
      accept_loop ())
