let m_hits = Obs.Metrics.counter "server.cache.hits"
let m_misses = Obs.Metrics.counter "server.cache.misses"
let m_evictions = Obs.Metrics.counter "server.cache.evictions"
let m_hit_ratio = Obs.Metrics.gauge "server.cache.hit_ratio"

(* Classic Hashtbl + doubly-linked recency list; the list head is the
   most recently used entry, the tail the eviction candidate. *)
type 'v node = {
  key : string;
  mutable value : 'v;
  mutable prev : 'v node option;
  mutable next : 'v node option;
}

type 'v t = {
  capacity : int;
  table : (string, 'v node) Hashtbl.t;
  mutable head : 'v node option;
  mutable tail : 'v node option;
  lock : Mutex.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
  evictions : int Atomic.t;
}

type stats = { hits : int; misses : int; evictions : int; entries : int; capacity : int }

let create ~capacity =
  {
    capacity;
    table = Hashtbl.create (max 16 (min capacity 4096));
    head = None;
    tail = None;
    lock = Mutex.create ();
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    evictions = Atomic.make 0;
  }

let locked (t : _ t) f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Unlink [n] from the recency list (caller holds the lock). *)
let unlink (t : _ t) n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front (t : _ t) n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find (t : _ t) key =
  if t.capacity <= 0 then begin
    Atomic.incr t.misses;
    Obs.Metrics.incr m_misses;
    None
  end
  else
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some n ->
            unlink t n;
            push_front t n;
            Atomic.incr t.hits;
            Obs.Metrics.incr m_hits;
            Some n.value
        | None ->
            Atomic.incr t.misses;
            Obs.Metrics.incr m_misses;
            None)

let add (t : _ t) key value =
  if t.capacity > 0 then
    locked t (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some n ->
            n.value <- value;
            unlink t n;
            push_front t n
        | None ->
            if Hashtbl.length t.table >= t.capacity then (
              match t.tail with
              | Some lru ->
                  unlink t lru;
                  Hashtbl.remove t.table lru.key;
                  Atomic.incr t.evictions;
                  Obs.Metrics.incr m_evictions
              | None -> ());
            let n = { key; value; prev = None; next = None } in
            Hashtbl.replace t.table key n;
            push_front t n)

let stats (t : _ t) : stats =
  locked t (fun () ->
      {
        hits = Atomic.get t.hits;
        misses = Atomic.get t.misses;
        evictions = Atomic.get t.evictions;
        entries = Hashtbl.length t.table;
        capacity = t.capacity;
      })

let hit_ratio (s : stats) =
  let total = s.hits + s.misses in
  if total = 0 then None else Some (float_of_int s.hits /. float_of_int total)

let stats_json t =
  let s = stats t in
  let ratio =
    match hit_ratio s with
    | None -> Obs.Json.Null
    | Some r ->
        Obs.Metrics.set m_hit_ratio r;
        Obs.Json.Float r
  in
  Obs.Json.Obj
    [
      ("hits", Obs.Json.Int s.hits);
      ("misses", Obs.Json.Int s.misses);
      ("evictions", Obs.Json.Int s.evictions);
      ("hit_ratio", ratio);
      ("entries", Obs.Json.Int s.entries);
      ("capacity", Obs.Json.Int s.capacity);
    ]
