module P = Protocol

let now () = Obs.Clock.monotonic_seconds ()
let c_requests = Obs.Metrics.counter "router.requests"
let c_forwarded = Obs.Metrics.counter "router.forwarded"
let c_retries = Obs.Metrics.counter "router.retries"
let c_respawns = Obs.Metrics.counter "router.respawns"
let c_bad_upstream = Obs.Metrics.counter "router.bad_upstream_frames"
let c_connections = Obs.Metrics.counter "router.connections"

(* ---------- consistent-hash ring ---------- *)

module Ring = struct
  type t = {
    ring_vnodes : int;
    points : (int64 * string) array;  (* sorted by unsigned hash *)
    ring_members : string list;  (* sorted, distinct *)
  }

  (* FNV-1a barely diffuses the last few input bytes: vnode labels that
     differ only in the trailing index ("m0#17" vs "m0#18") hash to
     near-adjacent values, so without extra mixing every member's vnodes
     clump into one arc and shard shares become wildly uneven. A murmur3
     fmix64 finalizer restores uniform placement. *)
  let mix64 h =
    let h = Int64.logxor h (Int64.shift_right_logical h 33) in
    let h = Int64.mul h 0xff51afd7ed558ccdL in
    let h = Int64.logxor h (Int64.shift_right_logical h 33) in
    let h = Int64.mul h 0xc4ceb9fe1a85ec53L in
    Int64.logxor h (Int64.shift_right_logical h 33)

  let point name i = mix64 (Fingerprint.fnv1a64 (name ^ "#" ^ string_of_int i))

  let create ?(vnodes = 64) names =
    let ring_members = List.sort_uniq String.compare names in
    let points =
      List.concat_map
        (fun n -> List.init vnodes (fun i -> (point n i, n)))
        ring_members
      |> Array.of_list
    in
    Array.sort
      (fun (a, an) (b, bn) ->
        let c = Int64.unsigned_compare a b in
        if c <> 0 then c else String.compare an bn)
      points;
    { ring_vnodes = vnodes; points; ring_members }

  let vnodes t = t.ring_vnodes
  let members t = t.ring_members

  let owner t key =
    let n = Array.length t.points in
    if n = 0 then None
    else begin
      let h = mix64 (Fingerprint.fnv1a64 key) in
      (* First point at or clockwise-after [h]; the array is sorted by
         unsigned hash, so that is a binary search with wraparound. *)
      let lo = ref 0 and hi = ref n in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if Int64.unsigned_compare (fst t.points.(mid)) h < 0 then lo := mid + 1
        else hi := mid
      done;
      Some (snd t.points.(if !lo = n then 0 else !lo))
    end

  let add t name = create ~vnodes:t.ring_vnodes (name :: t.ring_members)

  let remove t name =
    create ~vnodes:t.ring_vnodes
      (List.filter (fun m -> not (String.equal m name)) t.ring_members)
end

(* ---------- configuration ---------- *)

type endpoint = {
  ep_name : string;
  ep_socket : string;
  ep_spawn : (string -> int) option;
}

type config = {
  vnodes : int;
  connect_attempts : int;
  backoff_min : float;
  backoff_max : float;
  retry_limit : int;
  log : (string -> unit) option;
}

let default_config =
  {
    vnodes = 64;
    connect_attempts = 100;
    backoff_min = 0.05;
    backoff_max = 2.0;
    retry_limit = 5;
    log = None;
  }

(* ---------- response slots ---------- *)

(* A slot is completed exactly once, with the full response frame text
   (client id already in place); the client session blocks on it when the
   response reaches the head of its FIFO. *)
type slot = {
  sl_lock : Mutex.t;
  sl_cond : Condition.t;
  mutable sl_text : string option;
}

let slot () =
  { sl_lock = Mutex.create (); sl_cond = Condition.create (); sl_text = None }

let complete sl text =
  Mutex.lock sl.sl_lock;
  if sl.sl_text = None then sl.sl_text <- Some text;
  Condition.broadcast sl.sl_cond;
  Mutex.unlock sl.sl_lock

let await sl =
  Mutex.lock sl.sl_lock;
  while sl.sl_text = None do
    Condition.wait sl.sl_cond sl.sl_lock
  done;
  let text = Option.get sl.sl_text in
  Mutex.unlock sl.sl_lock;
  text

(* ---------- shards ---------- *)

type entry = {
  e_key : string;  (** consistent-hash key; "" for direct sends *)
  e_req : P.request;  (** as the client sent it (client id) *)
  e_slot : slot;
  e_client_id : int;
  e_t0 : float;
  e_solve : bool;
      (** solves are pure: re-home on shard death.  Direct sends (stats,
          shutdown) and session verbs fail instead — retrying them
          elsewhere would answer a different question (session state is
          not re-homeable). *)
  e_open : bool;
      (** a [session-open]: the reader parses the reply's [session=]
          attribute and pins the new sid to the answering shard *)
  mutable e_attempts : int;
}

type state = Up | Down | Draining | Drained

let state_name = function
  | Up -> "up"
  | Down -> "down"
  | Draining -> "draining"
  | Drained -> "drained"

type conn = {
  cn_fd : Unix.file_descr;
  cn_oc : out_channel;
  cn_reader : unit Domain.t option Atomic.t;
  cn_joined : bool Atomic.t;
}

type shard = {
  sh_name : string;
  sh_socket : string;
  sh_spawn : (string -> int) option;
  sh_lock : Mutex.t;
  sh_inflight : (int, entry) Hashtbl.t;  (* guarded by sh_lock *)
  mutable sh_pid : int option;
  mutable sh_state : state;
  mutable sh_conn : conn option;
  mutable sh_requests : int;  (* solves forwarded *)
  mutable sh_errors : int;  (* error/timeout responses relayed *)
  mutable sh_connects : int;
  mutable sh_respawns : int;
  mutable sh_latency : Obs.Metrics.histogram_summary;
}

type t = {
  cfg : config;
  shards : shard array;
  ring_lock : Mutex.t;
  mutable ring : Ring.t;  (* guarded by ring_lock; only Up shards *)
  stopping : bool Atomic.t;
  shut_done : bool Atomic.t;
  seq : int Atomic.t;  (* shard-side request ids, unique router-wide *)
  n_requests : int Atomic.t;
  n_errors : int Atomic.t;
  n_retried : int Atomic.t;
  started : float;
  aux_lock : Mutex.t;
  mutable aux : unit Domain.t list;  (* recovery domains, joined at shutdown *)
  sess_lock : Mutex.t;
  sess_owners : (int, string) Hashtbl.t;
      (* session id -> owning shard name; guarded by sess_lock.  Entries
         die with their shard (sessions are not re-homeable) or on
         session-close. *)
}

let logf t msg =
  match t.cfg.log with
  | None -> ()
  | Some f -> f (Printf.sprintf "ts=%.6f %s" (Obs.Clock.wall_seconds ()) msg)

let shard_by_name t name =
  Array.fold_left
    (fun acc sh -> if String.equal sh.sh_name name then Some sh else acc)
    None t.shards

let remove_from_ring t name =
  Mutex.lock t.ring_lock;
  t.ring <- Ring.remove t.ring name;
  Mutex.unlock t.ring_lock

let add_to_ring t name =
  Mutex.lock t.ring_lock;
  t.ring <- Ring.add t.ring name;
  Mutex.unlock t.ring_lock

let with_id req id =
  match req with
  | P.Solve { id = _; params; path; tasks } -> P.Solve { id; params; path; tasks }
  | P.Round_solve { id = _; algorithm; cache; path; tasks } ->
      P.Round_solve { id; algorithm; cache; path; tasks }
  | P.Stats _ -> P.Stats { id }
  | P.Ping _ -> P.Ping { id }
  | P.Shutdown _ -> P.Shutdown { id }
  | P.Session_open { id = _; seed; path; tasks } ->
      P.Session_open { id; seed; path; tasks }
  | P.Session_add { id = _; session; task } -> P.Session_add { id; session; task }
  | P.Session_remove { id = _; session; task_id } ->
      P.Session_remove { id; session; task_id }
  | P.Session_resolve { id = _; session; cold } ->
      P.Session_resolve { id; session; cold }
  | P.Session_close { id = _; session } -> P.Session_close { id; session }

(* ---------- response-header surgery ----------

   The router relays shard responses without re-parsing bodies (a parse
   would need the instance's tasks, and re-serialisation is pure waste):
   only the third header token — the id — is rewritten.  [msg=]
   attributes swallow the rest of the line including consecutive spaces,
   so the rewrite splices byte spans instead of splitting and rejoining
   tokens. *)

let header_spans line =
  let n = String.length line in
  let rec tok i = if i < n && line.[i] <> ' ' then tok (i + 1) else i in
  let rec sp i = if i < n && line.[i] = ' ' then sp (i + 1) else i in
  let a = tok (sp 0) in
  let b = tok (sp a) in
  let c = sp b in
  let d = tok c in
  if c >= n || d = c then None else Some (c, d)

let header_sid line =
  match header_spans line with
  | None -> None
  | Some (c, d) -> int_of_string_opt (String.sub line c (d - c))

(* (status, rewritten header) of a response header line. *)
let rewrite_header line client_id =
  match header_spans line with
  | None -> None
  | Some (c, d) ->
      let rewritten =
        String.sub line 0 c ^ string_of_int client_id
        ^ String.sub line d (String.length line - d)
      in
      let rest = String.sub line d (String.length line - d) in
      let status =
        match
          String.split_on_char ' ' (String.trim rest)
          |> List.filter (fun s -> s <> "")
        with
        | s :: _ -> s
        | [] -> ""
      in
      Some (status, rewritten)

let frame_text lines = String.concat "\n" lines ^ "\nend\n"

(* Value of [key=] among a response header's attribute tokens ([msg=] is
   last on error headers, which carry no session attribute — so the naive
   token split is safe here). *)
let header_attr line key =
  let prefix = key ^ "=" in
  String.split_on_char ' ' line
  |> List.find_map (fun tok ->
         if String.starts_with ~prefix tok then
           Some
             (String.sub tok (String.length prefix)
                (String.length tok - String.length prefix))
         else None)

let fail_entry t entry code message =
  Atomic.incr t.n_errors;
  complete entry.e_slot
    (P.response_to_string (P.Failed { id = entry.e_client_id; code; message }))

(* Tear a connection down: wake its reader (EOF), which then runs the
   single shared death path.  The fd itself is closed by whoever joins
   the reader. *)
let kill_conn conn =
  try Unix.shutdown conn.cn_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let join_conn conn =
  if Atomic.compare_and_set conn.cn_joined false true then begin
    (match Atomic.get conn.cn_reader with
    | Some d -> ( try Domain.join d with _ -> ())
    | None -> ());
    try Unix.close conn.cn_fd with Unix.Unix_error _ -> ()
  end

let sleep_interruptible t d =
  let deadline = now () +. d in
  while (not (Atomic.get t.stopping)) && now () < deadline do
    Unix.sleepf (Float.min 0.05 (Float.max 0.001 (deadline -. now ())))
  done

(* ---------- dispatch, death, recovery ---------- *)

let rec dispatch t entry =
  entry.e_attempts <- entry.e_attempts + 1;
  if entry.e_attempts > t.cfg.retry_limit then
    fail_entry t entry P.Internal "router: retry limit exceeded"
  else begin
    Mutex.lock t.ring_lock;
    let owner = Ring.owner t.ring entry.e_key in
    Mutex.unlock t.ring_lock;
    match owner with
    | None ->
        if Atomic.get t.stopping then
          fail_entry t entry P.Shutting_down "router draining"
        else fail_entry t entry P.Internal "router: no shard available"
    | Some name -> (
        match shard_by_name t name with
        | None -> fail_entry t entry P.Internal ("router: unknown shard " ^ name)
        | Some sh -> forward t sh entry)
  end

and forward t sh entry =
  Mutex.lock sh.sh_lock;
  match (sh.sh_state, sh.sh_conn) with
  | Up, Some conn ->
      let sid = Atomic.fetch_and_add t.seq 1 in
      Hashtbl.replace sh.sh_inflight sid entry;
      sh.sh_requests <- sh.sh_requests + 1;
      let text = P.request_to_string (with_id entry.e_req sid) in
      let wrote =
        try
          output_string conn.cn_oc text;
          flush conn.cn_oc;
          true
        with Sys_error _ -> false
      in
      if wrote then Mutex.unlock sh.sh_lock
      else begin
        Hashtbl.remove sh.sh_inflight sid;
        sh.sh_requests <- sh.sh_requests - 1;
        Mutex.unlock sh.sh_lock;
        kill_conn conn;
        Obs.Metrics.incr c_retries;
        Atomic.incr t.n_retried;
        dispatch t entry
      end
  | _ ->
      Mutex.unlock sh.sh_lock;
      (* Raced with a death or drain; make sure the ring agrees, pick
         again.  [e_attempts] bounds the loop. *)
      remove_from_ring t sh.sh_name;
      dispatch t entry

(* Runs exactly once per connection, as the final act of its reader
   domain: clear the shard, re-home orphaned solves, start recovery. *)
and conn_dead t sh conn =
  Mutex.lock sh.sh_lock;
  let current = match sh.sh_conn with Some c -> c == conn | None -> false in
  if not current then Mutex.unlock sh.sh_lock
  else begin
    sh.sh_conn <- None;
    let was = sh.sh_state in
    sh.sh_state <-
      (match was with
      | Draining | Drained -> Drained
      | Up | Down -> if Atomic.get t.stopping then Drained else Down);
    let orphans = Hashtbl.fold (fun _ e acc -> e :: acc) sh.sh_inflight [] in
    Hashtbl.reset sh.sh_inflight;
    let next = sh.sh_state in
    Mutex.unlock sh.sh_lock;
    remove_from_ring t sh.sh_name;
    (* Sessions die with their shard: drop the pins so follow-up verbs
       answer [unknown-session] instead of hanging on a dead owner. *)
    Mutex.protect t.sess_lock (fun () ->
        Hashtbl.filter_map_inplace
          (fun _ owner ->
            if String.equal owner sh.sh_name then None else Some owner)
          t.sess_owners);
    logf t
      (Printf.sprintf "event=shard-%s shard=%s orphans=%d" (state_name next)
         sh.sh_name (List.length orphans));
    List.iter
      (fun e ->
        if e.e_solve then begin
          Obs.Metrics.incr c_retries;
          Atomic.incr t.n_retried;
          dispatch t e
        end
        else fail_entry t e P.Internal ("router: shard " ^ sh.sh_name ^ " lost"))
      orphans;
    if next = Down then start_recovery t sh conn
  end

and start_recovery t sh old_conn =
  let dom = Domain.spawn (fun () -> recover t sh old_conn) in
  Mutex.lock t.aux_lock;
  t.aux <- dom :: t.aux;
  Mutex.unlock t.aux_lock

and recover t sh old_conn =
  join_conn old_conn;
  let backoff = ref t.cfg.backoff_min in
  let rec attempt () =
    if not (Atomic.get t.stopping) then begin
      sleep_interruptible t !backoff;
      if not (Atomic.get t.stopping) then begin
        (match sh.sh_spawn with
        | Some spawn ->
            let alive =
              match sh.sh_pid with
              | Some pid -> (
                  match Unix.waitpid [ Unix.WNOHANG ] pid with
                  | 0, _ -> true
                  | _ -> false
                  | exception Unix.Unix_error _ -> false)
              | None -> false
            in
            if not alive then begin
              let pid = spawn sh.sh_socket in
              Mutex.lock sh.sh_lock;
              sh.sh_pid <- Some pid;
              sh.sh_respawns <- sh.sh_respawns + 1;
              Mutex.unlock sh.sh_lock;
              Obs.Metrics.incr c_respawns;
              logf t
                (Printf.sprintf "event=shard-respawn shard=%s pid=%d"
                   sh.sh_name pid)
            end
        | None -> ());
        if not (try_connect t sh) then begin
          backoff := Float.min (!backoff *. 2.0) t.cfg.backoff_max;
          attempt ()
        end
      end
    end
  in
  attempt ()

and try_connect t sh =
  match Client.connect_unix sh.sh_socket with
  | Error _ -> false
  | Ok fd ->
      (* Respawned shard children must not inherit this connection: a
         leaked copy would keep the shard's session open after we close
         ours, hiding our EOF (and theirs from us). *)
      Unix.set_close_on_exec fd;
      let conn =
        {
          cn_fd = fd;
          cn_oc = Unix.out_channel_of_descr fd;
          cn_reader = Atomic.make None;
          cn_joined = Atomic.make false;
        }
      in
      (* Install before spawning the reader, so an instant EOF still finds
         [sh_conn == conn] and runs the death path. *)
      Mutex.lock sh.sh_lock;
      sh.sh_conn <- Some conn;
      sh.sh_state <- Up;
      sh.sh_connects <- sh.sh_connects + 1;
      Mutex.unlock sh.sh_lock;
      let reader = Domain.spawn (fun () -> reader_loop t sh conn fd) in
      Atomic.set conn.cn_reader (Some reader);
      add_to_ring t sh.sh_name;
      logf t (Printf.sprintf "event=shard-up shard=%s" sh.sh_name);
      true

and reader_loop t sh conn fd =
  (* Wait until the spawner has recorded us, so [join_conn] can always
     find the reader to join. *)
  while Atomic.get conn.cn_reader = None do
    Domain.cpu_relax ()
  done;
  let ic = Unix.in_channel_of_descr fd in
  let read_line () =
    try Some (input_line ic) with End_of_file | Sys_error _ -> None
  in
  let rec loop () =
    match P.read_frame ~read_line with
    | None -> ()
    | Some [] -> loop ()
    | Some (header :: _ as lines) ->
        (match header_sid header with
        | None -> Obs.Metrics.incr c_bad_upstream
        | Some sid -> (
            Mutex.lock sh.sh_lock;
            let entry = Hashtbl.find_opt sh.sh_inflight sid in
            if entry <> None then Hashtbl.remove sh.sh_inflight sid;
            Mutex.unlock sh.sh_lock;
            match entry with
            | None -> Obs.Metrics.incr c_bad_upstream
            | Some e -> (
                match rewrite_header header e.e_client_id with
                | None ->
                    Obs.Metrics.incr c_bad_upstream;
                    fail_entry t e P.Internal "router: malformed shard response"
                | Some (status, header') ->
                    (* A successful session-open names the new session;
                       pin it to this shard for follow-up verbs. *)
                    if e.e_open && String.equal status "session" then begin
                      match
                        Option.bind (header_attr header' "session")
                          int_of_string_opt
                      with
                      | Some new_sid ->
                          Mutex.protect t.sess_lock (fun () ->
                              Hashtbl.replace t.sess_owners new_sid sh.sh_name)
                      | None -> ()
                    end;
                    if e.e_solve then begin
                      let dt = now () -. e.e_t0 in
                      Mutex.lock sh.sh_lock;
                      sh.sh_latency <-
                        Obs.Metrics.summary_observe sh.sh_latency dt;
                      if String.equal status "error"
                         || String.equal status "timeout"
                      then begin
                        sh.sh_errors <- sh.sh_errors + 1;
                        Atomic.incr t.n_errors
                      end;
                      Mutex.unlock sh.sh_lock
                    end;
                    complete e.e_slot (frame_text (header' :: List.tl lines)))));
        loop ()
  in
  (try loop () with _ -> ());
  conn_dead t sh conn

(* Send [req] straight to one shard (bypassing the ring) and complete
   [sl] with its answer.  Allowed while Up or Draining — [drain_shard]
   marks the shard Draining before sending it the shutdown frame. *)
let send_direct t sh req sl =
  Mutex.lock sh.sh_lock;
  match (sh.sh_state, sh.sh_conn) with
  | (Up | Draining), Some conn ->
      let sid = Atomic.fetch_and_add t.seq 1 in
      let entry =
        {
          e_key = "";
          e_req = req;
          e_slot = sl;
          e_client_id = P.request_id req;
          e_t0 = now ();
          e_solve = false;
          e_open = false;
          e_attempts = 0;
        }
      in
      Hashtbl.replace sh.sh_inflight sid entry;
      let wrote =
        try
          output_string conn.cn_oc (P.request_to_string (with_id req sid));
          flush conn.cn_oc;
          true
        with Sys_error _ -> false
      in
      if not wrote then Hashtbl.remove sh.sh_inflight sid;
      Mutex.unlock sh.sh_lock;
      if not wrote then kill_conn conn;
      wrote
  | _ ->
      Mutex.unlock sh.sh_lock;
      false

(* ---------- lifecycle ---------- *)

let mk_shard ep =
  {
    sh_name = ep.ep_name;
    sh_socket = ep.ep_socket;
    sh_spawn = ep.ep_spawn;
    sh_lock = Mutex.create ();
    sh_inflight = Hashtbl.create 64;
    sh_pid = None;
    sh_state = Down;
    sh_conn = None;
    sh_requests = 0;
    sh_errors = 0;
    sh_connects = 0;
    sh_respawns = 0;
    sh_latency = Obs.Metrics.empty_summary;
  }

let reap_child sh =
  match sh.sh_pid with
  | None -> ()
  | Some pid ->
      (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
      sh.sh_pid <- None

let retire t sh =
  remove_from_ring t sh.sh_name;
  Mutex.lock sh.sh_lock;
  let conn = sh.sh_conn and state = sh.sh_state in
  Mutex.unlock sh.sh_lock;
  (match (conn, state) with
  | Some c, (Up | Draining) ->
      if sh.sh_spawn <> None then begin
        (* Graceful: the shard answers everything it admitted, acks, and
           exits; the EOF runs the shared death path (stopping is set, so
           no recovery starts). *)
        let sl = slot () in
        if send_direct t sh (P.Shutdown { id = 0 }) sl then ignore (await sl)
      end
      else kill_conn c;
      join_conn c
  | Some c, _ ->
      kill_conn c;
      join_conn c
  | None, _ -> (
      (* A spawned child we never connected to (failed create) or that is
         mid-recovery: terminate it directly. *)
      match (sh.sh_spawn, sh.sh_pid) with
      | Some _, Some pid -> (
          try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ())
      | _ -> ()));
  Mutex.lock sh.sh_lock;
  reap_child sh;
  Mutex.unlock sh.sh_lock;
  logf t (Printf.sprintf "event=shard-retired shard=%s" sh.sh_name)

let shutdown t =
  Atomic.set t.stopping true;
  if Atomic.compare_and_set t.shut_done false true then begin
    logf t "event=router-shutdown";
    (* Recovery domains first: they check [stopping] and exit, and none
       may re-add a shard to the ring while we retire the fleet. *)
    Mutex.lock t.aux_lock;
    let doms = t.aux in
    t.aux <- [];
    Mutex.unlock t.aux_lock;
    List.iter (fun d -> try Domain.join d with _ -> ()) doms;
    Array.iter (fun sh -> retire t sh) t.shards
  end

let create ?(config = default_config) endpoints =
  let names = List.map (fun e -> e.ep_name) endpoints in
  if endpoints = [] then Error "router: no shard endpoints"
  else if List.length (List.sort_uniq String.compare names) <> List.length names
  then Error "router: duplicate shard names"
  else begin
    let t =
      {
        cfg = config;
        shards = Array.of_list (List.map mk_shard endpoints);
        ring_lock = Mutex.create ();
        ring = Ring.create ~vnodes:config.vnodes [];
        stopping = Atomic.make false;
        shut_done = Atomic.make false;
        seq = Atomic.make 0;
        n_requests = Atomic.make 0;
        n_errors = Atomic.make 0;
        n_retried = Atomic.make 0;
        started = now ();
        aux_lock = Mutex.create ();
        aux = [];
        sess_lock = Mutex.create ();
        sess_owners = Hashtbl.create 16;
      }
    in
    Array.iter
      (fun sh ->
        match sh.sh_spawn with
        | Some spawn ->
            let pid = spawn sh.sh_socket in
            sh.sh_pid <- Some pid;
            logf t
              (Printf.sprintf "event=shard-spawn shard=%s pid=%d" sh.sh_name pid)
        | None -> ())
      t.shards;
    let connected =
      Array.for_all
        (fun sh ->
          let rec go n =
            if try_connect t sh then true
            else if n <= 1 then false
            else begin
              Unix.sleepf 0.05;
              go (n - 1)
            end
          in
          go (max 1 config.connect_attempts))
        t.shards
    in
    if connected then Ok t
    else begin
      let missing =
        Array.to_list t.shards
        |> List.filter (fun sh -> sh.sh_state <> Up)
        |> List.map (fun sh -> sh.sh_name)
      in
      shutdown t;
      Error
        (Printf.sprintf "router: could not reach shard(s): %s"
           (String.concat ", " missing))
    end
  end

let drain_shard t name =
  match shard_by_name t name with
  | None -> Error ("router: unknown shard " ^ name)
  | Some sh -> (
      remove_from_ring t name;
      Mutex.lock sh.sh_lock;
      let was_up = sh.sh_state = Up in
      if was_up then sh.sh_state <- Draining;
      let conn = sh.sh_conn in
      Mutex.unlock sh.sh_lock;
      match (was_up, conn) with
      | true, Some c ->
          logf t (Printf.sprintf "event=shard-drain shard=%s" name);
          let sl = slot () in
          if send_direct t sh (P.Shutdown { id = 0 }) sl then ignore (await sl);
          join_conn c;
          Mutex.lock sh.sh_lock;
          reap_child sh;
          Mutex.unlock sh.sh_lock;
          Ok ()
      | _ -> Error ("router: shard " ^ name ^ " is not up"))

(* ---------- stats ---------- *)

(* One shard's own [sap-server-stats] report, fetched over the live
   connection (the shard answers after everything admitted before the
   scrape, FIFO — same semantics as scraping a single serve process). *)
let scrape_shard t sh =
  let sl = slot () in
  if not (send_direct t sh (P.Stats { id = 0 }) sl) then Obs.Json.Null
  else begin
    let text = await sl in
    match String.split_on_char '\n' text with
    | header :: body
      when (match rewrite_header header 0 with
           | Some ("stats", _) -> true
           | _ -> false) -> (
        match List.filter (fun l -> l <> "end" && l <> "") body with
        | [ json_line ] -> (
            match Obs.Json.of_string json_line with
            | Ok j -> j
            | Error _ -> Obs.Json.Null)
        | _ -> Obs.Json.Null)
    | _ -> Obs.Json.Null
  end

let stats_json t =
  let open Obs.Json in
  Mutex.lock t.ring_lock;
  let members = Ring.members t.ring and vn = Ring.vnodes t.ring in
  Mutex.unlock t.ring_lock;
  let shards =
    Array.to_list t.shards
    |> List.map (fun sh ->
           Mutex.lock sh.sh_lock;
           let state = sh.sh_state
           and pid = sh.sh_pid
           and requests = sh.sh_requests
           and errors = sh.sh_errors
           and connects = sh.sh_connects
           and respawns = sh.sh_respawns
           and inflight = Hashtbl.length sh.sh_inflight
           and latency = sh.sh_latency in
           Mutex.unlock sh.sh_lock;
           let server_stats =
             if state = Up then scrape_shard t sh else Null
           in
           Obj
             [
               ("name", String sh.sh_name);
               ("socket", String sh.sh_socket);
               ("pid", match pid with Some p -> Int p | None -> Null);
               ("state", String (state_name state));
               ("connects", Int connects);
               ("respawns", Int respawns);
               ("requests", Int requests);
               ("errors", Int errors);
               ("inflight", Int inflight);
               ("latency_seconds", Obs.Metrics.summary_json latency);
               ("server_stats", server_stats);
             ])
  in
  Obj
    [
      ("schema", String "sap-router-stats v1");
      ("uptime_seconds", Float (now () -. t.started));
      ("draining", Bool (Atomic.get t.stopping));
      ("requests", Int (Atomic.get t.n_requests));
      ("errors", Int (Atomic.get t.n_errors));
      ("retried", Int (Atomic.get t.n_retried));
      ( "sessions",
        Int (Mutex.protect t.sess_lock (fun () -> Hashtbl.length t.sess_owners))
      );
      ( "ring",
        Obj
          [
            ("vnodes", Int vn);
            ("members", List (Stdlib.List.map (fun m -> String m) members));
          ] );
      ("shards", List shards);
    ]

let owner_for t ~key =
  Mutex.lock t.ring_lock;
  let o = Ring.owner t.ring key in
  Mutex.unlock t.ring_lock;
  o

let shard_pids t =
  Array.to_list t.shards
  |> List.map (fun sh ->
         Mutex.lock sh.sh_lock;
         let pid = sh.sh_pid in
         Mutex.unlock sh.sh_lock;
         (sh.sh_name, pid))

let draining t = Atomic.get t.stopping

(* ---------- client sessions ---------- *)


(* Responses drain on a per-connection {!Pump.t}, written the moment
   they (and everything queued before them) are ready — see
   {!Transport.serve_channels} for why flushing from the read loop
   instead would strand the tail of a quiet connection. *)
let handle_session t ic oc =
  Obs.Metrics.incr c_connections;
  let pump = Pump.create () in
  let push_text force =
    Pump.push pump (fun () ->
        output_string oc (force ());
        flush oc)
  in
  let immediate resp = push_text (fun () -> P.response_to_string resp) in
  let read_line () = try Some (input_line ic) with End_of_file -> None in
  let rec loop () =
    match P.read_frame ~read_line with
    | None -> ()
    | Some lines -> (
        match P.request_of_lines lines with
        | Error m ->
            immediate (P.Failed { id = -1; code = P.Bad_request; message = m });
            loop ()
        | Ok req ->
            Obs.Metrics.incr c_requests;
            Atomic.incr t.n_requests;
            (match req with
            | P.Solve { id; params; path; tasks } ->
                if Atomic.get t.stopping then
                  immediate
                    (P.Failed
                       { id; code = P.Shutting_down; message = "router draining" })
                else begin
                  let key =
                    Fingerprint.solve_key ~problem:"sap"
                      ~algorithm:params.P.algorithm ~seed:params.P.seed path
                      tasks
                  in
                  let sl = slot () in
                  let entry =
                    {
                      e_key = key;
                      e_req = req;
                      e_slot = sl;
                      e_client_id = id;
                      e_t0 = now ();
                      e_solve = true;
                      e_open = false;
                      e_attempts = 0;
                    }
                  in
                  Obs.Metrics.incr c_forwarded;
                  dispatch t entry;
                  push_text (fun () -> await sl)
                end
            | P.Round_solve { id; algorithm; path; tasks; _ } ->
                if Atomic.get t.stopping then
                  immediate
                    (P.Failed
                       { id; code = P.Shutting_down; message = "router draining" })
                else begin
                  (* Same consistent-hash placement as [solve]; the
                     problem kind in the key keeps the two verbs' cache
                     populations disjoint on the shards too. *)
                  let key =
                    Fingerprint.solve_key ~problem:"round" ~algorithm ~seed:0
                      path tasks
                  in
                  let sl = slot () in
                  let entry =
                    {
                      e_key = key;
                      e_req = req;
                      e_slot = sl;
                      e_client_id = id;
                      e_t0 = now ();
                      e_solve = true;
                      e_open = false;
                      e_attempts = 0;
                    }
                  in
                  Obs.Metrics.incr c_forwarded;
                  dispatch t entry;
                  push_text (fun () -> await sl)
                end
            | P.Session_open { id; seed; path; tasks } ->
                if Atomic.get t.stopping then
                  immediate
                    (P.Failed
                       { id; code = P.Shutting_down; message = "router draining" })
                else begin
                  (* Hash the base instance like a solve would: the
                     session lives on (is pinned to) the owning shard. *)
                  let key =
                    Fingerprint.solve_key ~problem:"sap"
                      ~algorithm:"session-open" ~seed path tasks
                  in
                  let sl = slot () in
                  let entry =
                    {
                      e_key = key;
                      e_req = req;
                      e_slot = sl;
                      e_client_id = id;
                      e_t0 = now ();
                      e_solve = false;
                      e_open = true;
                      e_attempts = 0;
                    }
                  in
                  Obs.Metrics.incr c_forwarded;
                  dispatch t entry;
                  push_text (fun () -> await sl)
                end
            | P.Session_add _ | P.Session_remove _ | P.Session_resolve _
            | P.Session_close _ -> (
                let id = P.request_id req in
                let sid = Option.get (P.request_session req) in
                let owner =
                  Mutex.protect t.sess_lock (fun () ->
                      Hashtbl.find_opt t.sess_owners sid)
                in
                match Option.bind owner (shard_by_name t) with
                | None ->
                    immediate
                      (P.Failed
                         {
                           id;
                           code = P.Unknown_session;
                           message =
                             Printf.sprintf "router: unknown session %d" sid;
                         })
                | Some sh ->
                    let sl = slot () in
                    if send_direct t sh req sl then
                      let is_close =
                        match req with P.Session_close _ -> true | _ -> false
                      in
                      push_text (fun () ->
                          let text = await sl in
                          if is_close then
                            Mutex.protect t.sess_lock (fun () ->
                                Hashtbl.remove t.sess_owners sid);
                          text)
                    else
                      immediate
                        (P.Failed
                           {
                             id;
                             code = P.Unknown_session;
                             message =
                               Printf.sprintf
                                 "router: session %d owner %s unavailable" sid
                                 sh.sh_name;
                           }))
            | P.Ping { id } -> immediate (P.Ack { id })
            | P.Stats { id } ->
                push_text (fun () ->
                    P.response_to_string (P.Stats_reply { id; stats = stats_json t }))
            | P.Shutdown { id } ->
                push_text (fun () ->
                    shutdown t;
                    P.response_to_string (P.Ack { id })));
            (match req with P.Shutdown _ -> () | _ -> loop ()))
  in
  (try loop () with Sys_error _ -> ());
  Pump.finish pump

let serve ?on_bound ?stop t ~socket_path =
  Transport.serve_unix_sessions ?on_bound ?stop
    ~draining:(fun () -> Atomic.get t.stopping)
    (fun ic oc -> handle_session t ic oc)
    ~socket_path
