(** Byte-stream transports for the solve service.

    One connection = one framed request/response stream ({!Protocol}).
    The connection loop reads frames and admits them via {!Server.submit}
    — which blocks on the pool's bounded queue when the server is
    saturated, so backpressure reaches the client through the kernel
    socket buffer — and flushes completed responses opportunistically in
    FIFO admission order (ids let pipelined clients re-associate them
    anyway).  A frame whose header does not parse is answered with an
    [error] response under id [-1]; the stream stays usable.

    End of input drains every admitted request in order before closing;
    a [shutdown] frame additionally drains the server itself (finish
    in-flight, refuse new) and acknowledges {e after} the drain, so a
    client that waits for the ack observes a fully quiesced server. *)

val serve_channels : Server.t -> in_channel -> out_channel -> unit
(** Serve one connection (or a stdio session) to completion.  Returns on
    end of input, after a [shutdown] frame, or when the peer disappears
    mid-write; never raises for transport-level failures. *)

val serve_unix :
  ?on_bound:(string -> unit) ->
  ?stop:bool Atomic.t ->
  Server.t ->
  socket_path:string ->
  unit
(** Bind a Unix-domain socket (replacing any stale socket file), call
    [on_bound] with the bound path, then accept connections until a
    [shutdown] frame arrives or [stop] is set (e.g. from a SIGINT
    handler) — each connection is served by its own domain, so pipelined
    clients and live [stats] scrapes proceed concurrently.  Stopping is
    graceful: accepting ceases, every live connection's receive side is
    shut down so its reader unblocks, and each connection drains its
    admitted requests' responses before the call returns and removes the
    socket file.  SIGPIPE is ignored for the process (a dead peer must
    surface as [EPIPE], not a kill). *)
