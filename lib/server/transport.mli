(** Byte-stream transports for the solve service.

    One connection = one framed request/response stream ({!Protocol}).
    The connection loop reads frames and admits them via {!Server.submit}
    — which blocks on the pool's bounded queue when the server is
    saturated, so backpressure reaches the client through the kernel
    socket buffer — and flushes completed responses opportunistically in
    FIFO admission order (ids let pipelined clients re-associate them
    anyway).  A frame whose header does not parse is answered with an
    [error] response under id [-1]; the stream stays usable.

    End of input drains every admitted request in order before closing;
    a [shutdown] frame additionally drains the server itself (finish
    in-flight, refuse new) and acknowledges {e after} the drain, so a
    client that waits for the ack observes a fully quiesced server. *)

val serve_channels : Server.t -> in_channel -> out_channel -> unit
(** Serve one connection (or a stdio session) to completion.  Returns on
    end of input, after a [shutdown] frame, or when the peer disappears
    mid-write; never raises for transport-level failures. *)

(** {2 Stop handles}

    A [stopper] is a self-pipe-backed stop request: an atomic flag plus a
    wakeup pipe that the accept loop selects on alongside its listening
    socket.  [request_stop] therefore takes effect {e immediately} — the
    loop is not polling on a timeout — and an idle server parks in
    [select] making no syscalls at all.  [request_stop] is safe from an
    OCaml signal handler (handlers run as ordinary code at safe points)
    and from any domain. *)

type stopper

val stopper : unit -> stopper
(** A fresh stop handle.  Feed it to {e one} [serve_unix*] call;
    stoppers are single-use (the flag never resets). *)

val request_stop : stopper -> unit
(** Set the flag and wake the accept loop.  Idempotent. *)

val stop_requested : stopper -> bool

val close_stopper : stopper -> unit
(** Release the pipe fds.  Only call after the serving call using this
    stopper has returned.  [serve_unix*] closes stoppers it created
    itself (when [?stop] was omitted). *)

val serve_unix_sessions :
  ?on_bound:(string -> unit) ->
  ?stop:stopper ->
  ?draining:(unit -> bool) ->
  (in_channel -> out_channel -> unit) ->
  socket_path:string ->
  unit
(** Generic accept loop: bind a Unix-domain socket (replacing any stale
    socket file), call [on_bound] with the bound path, then serve each
    accepted connection with [session] in its own domain until
    [request_stop stop] is called or [draining ()] turns true.  Stopping
    is graceful: accepting ceases, every live connection's receive side
    is shut down so its reader unblocks, and each session runs to
    completion (draining the responses it owes) before the call returns
    and removes the socket file.  SIGPIPE is ignored for the process (a
    dead peer must surface as [EPIPE], not a kill).  Connection fds are
    owned by the accept loop and closed only after the session's domain
    is joined. *)

val serve_unix :
  ?on_bound:(string -> unit) ->
  ?stop:stopper ->
  Server.t ->
  socket_path:string ->
  unit
(** [serve_unix_sessions] specialised to {!serve_channels} on a
    {!Server.t}: accepts until a [shutdown] frame arrives (the server
    starts draining) or [request_stop] is called (e.g. from a SIGINT
    handler). *)
