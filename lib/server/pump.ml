type t = {
  q : (unit -> unit) Queue.t;
  lock : Mutex.t;
  cond : Condition.t;
  mutable closed : bool;
  mutable dom : unit Domain.t option;
}

let run p =
  let rec loop () =
    Mutex.lock p.lock;
    while Queue.is_empty p.q && not p.closed do
      Condition.wait p.cond p.lock
    done;
    match Queue.take_opt p.q with
    | None ->
        (* Empty and closed: drained. *)
        Mutex.unlock p.lock
    | Some thunk ->
        Mutex.unlock p.lock;
        (* The thunk blocks until its response is ready, then writes it.
           A vanished peer (EPIPE with SIGPIPE ignored) must not stop the
           drain: later thunks still complete their slots. *)
        (try thunk () with Sys_error _ -> ());
        loop ()
  in
  loop ()

let create () =
  let p =
    {
      q = Queue.create ();
      lock = Mutex.create ();
      cond = Condition.create ();
      closed = false;
      dom = None;
    }
  in
  p.dom <- Some (Domain.spawn (fun () -> run p));
  p

let push p thunk =
  Mutex.lock p.lock;
  if not p.closed then begin
    Queue.push thunk p.q;
    Condition.signal p.cond
  end;
  Mutex.unlock p.lock

let finish p =
  Mutex.lock p.lock;
  p.closed <- true;
  Condition.signal p.cond;
  let dom = p.dom in
  p.dom <- None;
  Mutex.unlock p.lock;
  match dom with None -> () | Some d -> Domain.join d
