(** The long-running solve service: request lifecycle over {!Pool} and
    {!Cache}.

    A request flows: admission check (draining servers refuse) → cache
    lookup ({!Fingerprint.solve_key}) → pool submission (blocking past
    the queue's high-water mark — that block {e is} the backpressure) →
    solve + {!Core.Checker} verification in a worker domain → cache
    insert.  Every request gets a monotonically-assigned server-side id
    and receive/dequeue/solve/respond timestamps, recorded into quantile
    latency histograms — [server.latency.total] (every request, plus
    [.hit]/[.miss] splits for solves), [server.latency.queue]
    (receive → worker dequeue) and [server.latency.solve] (solver wall
    time, also split per algorithm as
    [server.latency_seconds.<algorithm>]) — alongside
    [server.queue_depth], [server.cache.{hits,misses,evictions}] and
    per-request [server.request] spans when tracing is on.  Request
    totals (requests/solved/errors/timeouts) are tracked once, as
    per-server atomics surfaced by {!stats_json}.

    When [config.log] is set, every response additionally emits one
    single-line [key=value] record (fields: [ts] wall-clock epoch, [req]
    server request id, [id] client id, [verb], [alg], [seed], [cache]
    hit/miss/off, [status], [scheduled], [weight], [queue_ms],
    [solve_ms], [total_ms]; absent fields are omitted).  The sink is
    called from whichever domain forces the response — it must be
    thread-safe.

    Responses are never fabricated from unchecked solver output: a
    solution that fails the checker turns into an [infeasible] error, a
    raising solver into [internal], a missed deadline into [timeout].

    Transports drive the server through {!submit}, which returns a
    {!pending} handle instead of blocking, so a connection loop can keep
    reading pipelined requests while earlier solves are still in flight
    and flush completed responses opportunistically (FIFO order). *)

type config = {
  workers : int option;  (** [None]: {!Util.Parallel.default_jobs} *)
  queue_capacity : int option;  (** [None]: [4 * workers] *)
  cache_capacity : int;  (** LRU entries; [<= 0] disables caching *)
  default_timeout_ms : int option;
      (** applied to solve requests that carry no [timeout-ms] *)
  log : (string -> unit) option;
      (** structured request-log sink, one pre-formatted [key=value] line
          per response (no trailing newline); must be thread-safe *)
}

val default_config : config
(** Default workers and queue, 1024 cache entries, no default timeout,
    no request log. *)

type t

val create : ?config:config -> unit -> t

type pending = {
  ready : unit -> bool;
      (** non-blocking: would [force] return without waiting? *)
  force : unit -> Protocol.response;
      (** block (up to the request's deadline) and produce the response;
          idempotent per handle — call it once *)
}

val submit : t -> Protocol.request -> pending
(** Admit one request.  May block on the pool's bounded queue (the
    backpressure contract); never raises on bad input — malformed or
    refused work comes back as an error response.  A [Shutdown] request
    flips the server into draining mode immediately; forcing its pending
    completes the drain and acknowledges. *)

val handle : t -> Protocol.request -> Protocol.response
(** [submit] + [force]: the synchronous convenience used by tests and
    single-request callers. *)

val stats_json : t -> Obs.Json.t
(** The [stats] response payload (sap-server-stats v2): request/cache/pool
    totals plus the current {!Obs.Metrics} snapshot (sap-stats v3
    [metrics] shape with quantile histograms; empty unless metric
    collection is enabled). *)

val draining : t -> bool
(** True once a [Shutdown] request was admitted or {!drain} called. *)

val drain : t -> unit
(** Graceful shutdown: refuse new work, finish every accepted request,
    stop the pool.  Idempotent. *)
