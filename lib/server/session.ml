module Task = Core.Task
module Path = Core.Path

let m_opened = Obs.Metrics.counter "session.opened"

let m_closed = Obs.Metrics.counter "session.closed"

let m_deltas = Obs.Metrics.counter "session.deltas"

let m_resolves = Obs.Metrics.counter "session.resolves"

let m_repacked = Obs.Metrics.counter "session.bands_repacked"

let m_reused = Obs.Metrics.counter "session.bands_reused"

let h_resolve = Obs.Metrics.histogram "session.resolve_seconds"

(* One bottleneck band [J_t = { j : 2^t <= b(j) < 2^(t+1) }] of the
   session's instance.  The band owns everything a repack needs: its
   current tasks, the warm handle of its last LP solve, and the lifted
   placements of its last pack.  [b_dirty] is the repair frontier — a
   resolve repacks exactly the dirty bands and reuses the rest
   verbatim, which is what keeps untouched bands bit-identical. *)
type band = {
  bt : int;  (* band exponent t; B = 2^t *)
  mutable b_tasks : Task.t list;  (* kept sorted by id *)
  mutable b_dirty : bool;
  mutable b_warm : Lp.Ufpp_lp.warm option;
  mutable b_placed : Core.Solution.sap;  (* lifted into [B/2, B) *)
}

type t = {
  s_path : Path.t;
  s_seed : int;
  s_trials : int;
  s_tasks : (int, Task.t) Hashtbl.t;
  s_bands : (int, band) Hashtbl.t;
  mutable s_last : Core.Solution.sap;
  mutable s_resolves : int;
}

type summary = {
  n_tasks : int;
  scheduled : int;
  weight : float;
  bands : int;
  repacked : int;
  reused : int;
  warm_seeded : int;
  time_ms : float;
}

let path t = t.s_path

let tasks t = Hashtbl.fold (fun _ j acc -> j :: acc) t.s_tasks []

let n_tasks t = Hashtbl.length t.s_tasks

let last_solution t = t.s_last

(* Tasks that cannot fit alone ([d_j > b(j)]) belong to no band: they can
   never be scheduled, exactly like [Small.strip_pack]'s input filter. *)
let band_exponent t (j : Task.t) =
  let bj = Path.bottleneck_of t.s_path j in
  if j.Task.demand > bj then None else Some (Core.Classify.floor_log2 bj)

let band_for t bt =
  match Hashtbl.find_opt t.s_bands bt with
  | Some band -> band
  | None ->
      let band =
        { bt; b_tasks = []; b_dirty = true; b_warm = None; b_placed = [] }
      in
      Hashtbl.replace t.s_bands bt band;
      band

let validate_task t (j : Task.t) =
  if j.Task.first_edge < 0 || j.Task.last_edge >= Path.num_edges t.s_path then
    Error
      (Printf.sprintf "task %d spans edges [%d, %d] outside the path"
         j.Task.id j.Task.first_edge j.Task.last_edge)
  else Ok ()

let add_task t (j : Task.t) =
  match validate_task t j with
  | Error _ as e -> e
  | Ok () ->
      if Hashtbl.mem t.s_tasks j.Task.id then
        Error (Printf.sprintf "duplicate task id %d" j.Task.id)
      else begin
        Hashtbl.replace t.s_tasks j.Task.id j;
        (match band_exponent t j with
        | None -> ()
        | Some bt ->
            let band = band_for t bt in
            band.b_tasks <-
              List.merge
                (fun (a : Task.t) b -> compare a.Task.id b.Task.id)
                [ j ] band.b_tasks;
            band.b_dirty <- true);
        Obs.Metrics.incr m_deltas;
        Ok ()
      end

let remove_task t id =
  match Hashtbl.find_opt t.s_tasks id with
  | None -> Error (Printf.sprintf "unknown task id %d" id)
  | Some j ->
      Hashtbl.remove t.s_tasks id;
      (match band_exponent t j with
      | None -> ()
      | Some bt ->
          let band = band_for t bt in
          band.b_tasks <-
            List.filter (fun (x : Task.t) -> x.Task.id <> id) band.b_tasks;
          band.b_dirty <- true);
      Obs.Metrics.incr m_deltas;
      Ok ()

(* One band of [Small.solve_band]'s LP pipeline, with two session
   twists: the LP restarts from the band's previous basis (warm), and
   the rounding generator is derived from (session seed, band exponent)
   only — never from other bands' draw counts — so a band's placements
   are a pure function of its own task set and the session seed. *)
let pack_band t band ~cold =
  let b = 1 lsl band.bt in
  let budget = b / 2 in
  if budget = 0 || band.b_tasks = [] then ([], None, false)
  else begin
    let clipped =
      if 2 * b >= Path.max_capacity t.s_path then t.s_path
      else Path.clip t.s_path (2 * b)
    in
    let warm = if cold then None else band.b_warm in
    let seeded = warm <> None in
    let lp, warm' =
      Lp.Ufpp_lp.solve_scaled_warm clipped ~scale:1.0 ?warm band.b_tasks
    in
    let fractional =
      Array.to_list lp.Lp.Ufpp_lp.tasks
      |> List.mapi (fun i j -> (j, 0.25 *. lp.Lp.Ufpp_lp.solution.(i)))
    in
    let prng = Util.Prng.create ((t.s_seed * 1_000_003) + band.bt) in
    let strip =
      Ufpp.Lp_rounding.round ~budget ~trials:t.s_trials ~prng t.s_path
        fractional
    in
    let r =
      Dsa.Strip_transform.transform ~height:budget
        ~edges:(Path.num_edges t.s_path) strip
    in
    (Core.Solution.lift r.Dsa.Strip_transform.packed budget, warm', seeded)
  end

let sorted_bands t =
  Hashtbl.fold (fun _ band acc -> band :: acc) t.s_bands []
  |> List.sort (fun a b -> compare a.bt b.bt)

let resolve ?(cold = false) t =
  let t0 = Obs.Clock.monotonic_seconds () in
  Obs.Metrics.time h_resolve @@ fun () ->
  Obs.Metrics.incr m_resolves;
  let repacked = ref 0 and reused = ref 0 and warm_seeded = ref 0 in
  let bands = sorted_bands t in
  List.iter
    (fun band ->
      if cold || band.b_dirty then begin
        let placed, warm', seeded = pack_band t band ~cold in
        band.b_placed <- placed;
        band.b_warm <- warm';
        band.b_dirty <- false;
        incr repacked;
        if seeded then incr warm_seeded
      end
      else incr reused)
    bands;
  Obs.Metrics.add m_repacked !repacked;
  Obs.Metrics.add m_reused !reused;
  let merged =
    List.fold_left
      (fun acc band -> Core.Solution.union acc band.b_placed)
      [] bands
  in
  (* Band independence makes the merge sound, but no response leaves the
     session on faith: the full merged placement is machine-checked. *)
  match Core.Checker.sap_feasible t.s_path merged with
  | Error m -> Error ("session produced an infeasible solution: " ^ m)
  | Ok () ->
      t.s_last <- merged;
      t.s_resolves <- t.s_resolves + 1;
      let time_ms = (Obs.Clock.monotonic_seconds () -. t0) *. 1000.0 in
      Ok
        ( merged,
          {
            n_tasks = n_tasks t;
            scheduled = List.length merged;
            weight = Core.Solution.sap_weight merged;
            bands = List.length bands;
            repacked = !repacked;
            reused = !reused;
            warm_seeded = !warm_seeded;
            time_ms;
          } )

let create ?(seed = Sap.Combine.default_config.Sap.Combine.seed) ?trials path
    ts =
  let trials =
    match trials with
    | Some k -> k
    | None -> (
        match Sap.Combine.default_config.Sap.Combine.rounding with
        | `Lp k -> k
        | `Local_ratio -> 16)
  in
  let t =
    {
      s_path = path;
      s_seed = seed;
      s_trials = trials;
      s_tasks = Hashtbl.create 64;
      s_bands = Hashtbl.create 8;
      s_last = [];
      s_resolves = 0;
    }
  in
  let rec add = function
    | [] -> Ok t
    | j :: rest -> (
        match add_task t j with Error _ as e -> e | Ok () -> add rest)
  in
  Result.map
    (fun t ->
      Obs.Metrics.incr m_opened;
      t)
    (add ts)

let close _t = Obs.Metrics.incr m_closed
