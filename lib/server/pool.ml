let h_queue_depth = Obs.Metrics.histogram "server.queue_depth"
let c_submitted = Obs.Metrics.counter "server.pool.submitted"
let c_completed = Obs.Metrics.counter "server.pool.completed"

exception Closed

type 'a state = Pending | Done of 'a | Failed of exn

type 'a future = {
  mutable st : 'a state;
  fm : Mutex.t;
  fc : Condition.t;
}

type t = {
  n_workers : int;
  queue_capacity : int;
  jobs : (unit -> unit) Queue.t;
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable closing : bool;
  mutable joined : bool;
  domains : unit Domain.t list Atomic.t;
  submitted : int Atomic.t;
  done_count : int Atomic.t;
  max_depth : int Atomic.t;
}

(* Domain-local marker so re-entrant fan-out (a job that itself calls
   [map] or a Parallel runner) degrades to inline execution instead of
   waiting on queue slots only this very domain could free. *)
let worker_key = Domain.DLS.new_key (fun () -> false)

let in_worker () = Domain.DLS.get worker_key

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let worker_loop t () =
  Domain.DLS.set worker_key true;
  let rec loop () =
    let job =
      locked t (fun () ->
          let rec take () =
            if not (Queue.is_empty t.jobs) then Some (Queue.pop t.jobs)
            else if t.closing then None
            else begin
              Condition.wait t.not_empty t.lock;
              take ()
            end
          in
          take ())
    in
    match job with
    | None -> ()
    | Some job ->
        Condition.signal t.not_full;
        job ();
        Atomic.incr t.done_count;
        Obs.Metrics.incr c_completed;
        loop ()
  in
  loop ()

let create ?workers ?queue_capacity () =
  let n_workers =
    match workers with
    | Some w -> max 1 w
    | None -> Util.Parallel.default_jobs ()
  in
  let queue_capacity =
    match queue_capacity with Some c -> max 1 c | None -> 4 * n_workers
  in
  let t =
    {
      n_workers;
      queue_capacity;
      jobs = Queue.create ();
      lock = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      closing = false;
      joined = false;
      domains = Atomic.make [];
      submitted = Atomic.make 0;
      done_count = Atomic.make 0;
      max_depth = Atomic.make 0;
    }
  in
  Atomic.set t.domains (List.init n_workers (fun _ -> Domain.spawn (worker_loop t)));
  t

let workers t = t.n_workers

let complete fut st =
  Mutex.lock fut.fm;
  fut.st <- st;
  Condition.broadcast fut.fc;
  Mutex.unlock fut.fm

let submit t f =
  let fut = { st = Pending; fm = Mutex.create (); fc = Condition.create () } in
  let job () =
    match f () with v -> complete fut (Done v) | exception e -> complete fut (Failed e)
  in
  let depth =
    locked t (fun () ->
        let rec wait_slot () =
          if t.closing then raise Closed
          else if Queue.length t.jobs >= t.queue_capacity then begin
            Condition.wait t.not_full t.lock;
            wait_slot ()
          end
        in
        wait_slot ();
        Queue.push job t.jobs;
        Queue.length t.jobs)
  in
  Condition.signal t.not_empty;
  Atomic.incr t.submitted;
  Obs.Metrics.incr c_submitted;
  Obs.Metrics.observe h_queue_depth (float_of_int depth);
  let rec bump () =
    let m = Atomic.get t.max_depth in
    if depth > m && not (Atomic.compare_and_set t.max_depth m depth) then bump ()
  in
  bump ();
  fut

let completed fut =
  Mutex.lock fut.fm;
  let r = fut.st <> Pending in
  Mutex.unlock fut.fm;
  r

let await_result fut =
  Mutex.lock fut.fm;
  let rec wait () =
    match fut.st with
    | Pending ->
        Condition.wait fut.fc fut.fm;
        wait ()
    | Done v -> Ok v
    | Failed e -> Error e
  in
  let r = wait () in
  Mutex.unlock fut.fm;
  r

let await fut = match await_result fut with Ok v -> v | Error e -> raise e

(* [Condition] has no timed wait in the stdlib, so deadline waiting polls
   at millisecond granularity — coarse enough to cost nothing, fine
   enough for request timeouts measured in tens of milliseconds. *)
let await_until fut ~deadline =
  let rec loop () =
    Mutex.lock fut.fm;
    let st = fut.st in
    Mutex.unlock fut.fm;
    match st with
    | Done v -> Some v
    | Failed e -> raise e
    | Pending ->
        let now = Obs.Clock.monotonic_seconds () in
        if now >= deadline then None
        else begin
          Unix.sleepf (Float.min 0.001 (deadline -. now));
          loop ()
        end
  in
  loop ()

let map t f xs =
  if in_worker () then List.map f xs
  else
    let futs = List.map (fun x -> submit t (fun () -> f x)) xs in
    let results = List.map await_result futs in
    List.map (function Ok v -> v | Error e -> raise e) results

let installed_runner : t option Atomic.t = Atomic.make None

let install_parallel_runner t =
  Atomic.set installed_runner (Some t);
  Util.Parallel.set_runner
    (Some
       (fun thunks ->
         (* Thunks are exception-free by Parallel.map's contract; run
            them inline when submitting could self-deadlock or the pool
            is already draining. *)
         if in_worker () then List.iter (fun g -> g ()) thunks
         else
           match List.map (fun g -> submit t g) thunks with
           | futs -> List.iter (fun fu -> ignore (await_result fu)) futs
           | exception Closed -> List.iter (fun g -> g ()) thunks))

let shutdown t =
  let join =
    locked t (fun () ->
        if t.joined then false
        else begin
          t.closing <- true;
          t.joined <- true;
          true
        end)
  in
  if join then begin
    (match Atomic.get installed_runner with
    | Some p when p == t ->
        Atomic.set installed_runner None;
        Util.Parallel.set_runner None
    | _ -> ());
    Condition.broadcast t.not_empty;
    Condition.broadcast t.not_full;
    List.iter Domain.join (Atomic.get t.domains);
    Atomic.set t.domains []
  end

type stats = {
  workers : int;
  queue_capacity : int;
  queue_depth : int;
  submitted : int;
  completed : int;
  max_queue_depth : int;
}

let stats (t : t) : stats =
  {
    workers = t.n_workers;
    queue_capacity = t.queue_capacity;
    queue_depth = locked t (fun () -> Queue.length t.jobs);
    submitted = Atomic.get t.submitted;
    completed = Atomic.get t.done_count;
    max_queue_depth = Atomic.get t.max_depth;
  }

let stats_json t =
  let s = stats t in
  Obs.Json.Obj
    [
      ("workers", Obs.Json.Int s.workers);
      ("queue_capacity", Obs.Json.Int s.queue_capacity);
      ("queue_depth", Obs.Json.Int s.queue_depth);
      ("submitted", Obs.Json.Int s.submitted);
      ("completed", Obs.Json.Int s.completed);
      ("max_queue_depth", Obs.Json.Int s.max_queue_depth);
    ]
