type error_code =
  | Bad_request
  | Unknown_algorithm
  | Unknown_session
  | Infeasible
  | Shutting_down
  | Internal

type solve_params = {
  algorithm : string;
  seed : int;
  timeout_ms : int option;
  cache : bool;
}

let default_solve_params =
  { algorithm = "combine"; seed = 42; timeout_ms = None; cache = true }

type request =
  | Solve of {
      id : int;
      params : solve_params;
      path : Core.Path.t;
      tasks : Core.Task.t list;
    }
  | Round_solve of {
      id : int;
      algorithm : string;
      cache : bool;
      path : Core.Path.t;
      tasks : Core.Task.t list;
    }
  | Stats of { id : int }
  | Ping of { id : int }
  | Shutdown of { id : int }
  | Session_open of {
      id : int;
      seed : int;
      path : Core.Path.t;
      tasks : Core.Task.t list;
    }
  | Session_add of { id : int; session : int; task : Core.Task.t }
  | Session_remove of { id : int; session : int; task_id : int }
  | Session_resolve of { id : int; session : int; cold : bool }
  | Session_close of { id : int; session : int }

type solve_summary = {
  scheduled : int;
  weight : float;
  cached : bool;
  time_ms : float;
}

type round_summary = { r_rounds : int; r_cached : bool; r_time_ms : float }

(* The sap-session v1 response payload: resolve accounting a client can
   assert on (and the CI smoke does) without scraping server stats. *)
type session_summary = {
  s_tasks : int;
  s_scheduled : int;
  s_weight : float;
  s_bands : int;
  s_repacked : int;
  s_reused : int;
  s_warm : int;
  s_time_ms : float;
}

type session_event = Sess_opened | Sess_ack | Sess_resolved | Sess_closed

type response =
  | Solved of { id : int; summary : solve_summary; solution : Core.Solution.sap }
  | Round_solved of {
      id : int;
      summary : round_summary;
      rounds : Core.Solution.sap list;
    }
  | Stats_reply of { id : int; stats : Obs.Json.t }
  | Ack of { id : int }
  | Failed of { id : int; code : error_code; message : string }
  | Timed_out of { id : int }
  | Session_reply of {
      id : int;
      session : int;
      event : session_event;
      summary : session_summary option;
          (** present exactly on [Sess_opened] / [Sess_resolved] *)
      solution : Core.Solution.sap;
          (** body; empty on [Sess_ack] / [Sess_closed] *)
    }

let request_id = function
  | Solve { id; _ }
  | Round_solve { id; _ }
  | Stats { id }
  | Ping { id }
  | Shutdown { id }
  | Session_open { id; _ }
  | Session_add { id; _ }
  | Session_remove { id; _ }
  | Session_resolve { id; _ }
  | Session_close { id; _ } ->
      id

let request_session = function
  | Session_add { session; _ }
  | Session_remove { session; _ }
  | Session_resolve { session; _ }
  | Session_close { session; _ } ->
      Some session
  | Solve _ | Round_solve _ | Stats _ | Ping _ | Shutdown _ | Session_open _ ->
      None

let response_id = function
  | Solved { id; _ }
  | Round_solved { id; _ }
  | Stats_reply { id; _ }
  | Ack { id }
  | Failed { id; _ }
  | Timed_out { id }
  | Session_reply { id; _ } ->
      id

let session_event_to_string = function
  | Sess_opened -> "opened"
  | Sess_ack -> "ack"
  | Sess_resolved -> "resolved"
  | Sess_closed -> "closed"

let session_event_of_string = function
  | "opened" -> Some Sess_opened
  | "ack" -> Some Sess_ack
  | "resolved" -> Some Sess_resolved
  | "closed" -> Some Sess_closed
  | _ -> None

let error_code_to_string = function
  | Bad_request -> "bad-request"
  | Unknown_algorithm -> "unknown-algorithm"
  | Unknown_session -> "unknown-session"
  | Infeasible -> "infeasible"
  | Shutting_down -> "shutting-down"
  | Internal -> "internal"

let error_code_of_string = function
  | "bad-request" -> Some Bad_request
  | "unknown-algorithm" -> Some Unknown_algorithm
  | "unknown-session" -> Some Unknown_session
  | "infeasible" -> Some Infeasible
  | "shutting-down" -> Some Shutting_down
  | "internal" -> Some Internal
  | _ -> None

(* ---------- printing ---------- *)

let request_to_string req =
  let buf = Buffer.create 256 in
  (match req with
  | Solve { id; params; path; tasks } ->
      Buffer.add_string buf
        (Printf.sprintf "sap-request v1 %d solve algorithm=%s seed=%d" id
           params.algorithm params.seed);
      (match params.timeout_ms with
      | Some ms -> Buffer.add_string buf (Printf.sprintf " timeout-ms=%d" ms)
      | None -> ());
      if not params.cache then Buffer.add_string buf " cache=0";
      Buffer.add_char buf '\n';
      Buffer.add_string buf (Sap_io.Instance_io.instance_to_string path tasks)
  | Round_solve { id; algorithm; cache; path; tasks } ->
      Buffer.add_string buf
        (Printf.sprintf "sap-request v1 %d round-solve algorithm=%s" id algorithm);
      if not cache then Buffer.add_string buf " cache=0";
      Buffer.add_char buf '\n';
      Buffer.add_string buf
        (Sap_io.Instance_io.round_instance_to_string path tasks)
  | Stats { id } -> Buffer.add_string buf (Printf.sprintf "sap-request v1 %d stats\n" id)
  | Ping { id } -> Buffer.add_string buf (Printf.sprintf "sap-request v1 %d ping\n" id)
  | Shutdown { id } ->
      Buffer.add_string buf (Printf.sprintf "sap-request v1 %d shutdown\n" id)
  | Session_open { id; seed; path; tasks } ->
      Buffer.add_string buf
        (Printf.sprintf "sap-request v1 %d session-open seed=%d\n" id seed);
      Buffer.add_string buf (Sap_io.Instance_io.instance_to_string path tasks)
  | Session_add { id; session; task } ->
      Buffer.add_string buf
        (Printf.sprintf
           "sap-request v1 %d add-task session=%d task-id=%d first=%d last=%d \
            demand=%d weight=%.17g\n"
           id session task.Core.Task.id task.Core.Task.first_edge
           task.Core.Task.last_edge task.Core.Task.demand task.Core.Task.weight)
  | Session_remove { id; session; task_id } ->
      Buffer.add_string buf
        (Printf.sprintf "sap-request v1 %d remove-task session=%d task-id=%d\n"
           id session task_id)
  | Session_resolve { id; session; cold } ->
      Buffer.add_string buf
        (Printf.sprintf "sap-request v1 %d resolve session=%d%s\n" id session
           (if cold then " cold=1" else ""))
  | Session_close { id; session } ->
      Buffer.add_string buf
        (Printf.sprintf "sap-request v1 %d session-close session=%d\n" id
           session));
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let response_to_string resp =
  let buf = Buffer.create 256 in
  (match resp with
  | Solved { id; summary; solution } ->
      Buffer.add_string buf
        (Printf.sprintf "sap-response v1 %d solved scheduled=%d weight=%.17g cached=%d time-ms=%.17g\n"
           id summary.scheduled summary.weight
           (if summary.cached then 1 else 0)
           summary.time_ms);
      Buffer.add_string buf (Sap_io.Instance_io.solution_to_string solution)
  | Round_solved { id; summary; rounds } ->
      Buffer.add_string buf
        (Printf.sprintf
           "sap-response v1 %d round-solved rounds=%d cached=%d time-ms=%.17g\n"
           id summary.r_rounds
           (if summary.r_cached then 1 else 0)
           summary.r_time_ms);
      Buffer.add_string buf (Sap_io.Instance_io.round_solution_to_string rounds)
  | Stats_reply { id; stats } ->
      Buffer.add_string buf (Printf.sprintf "sap-response v1 %d stats\n" id);
      Buffer.add_string buf (Obs.Json.to_string stats);
      Buffer.add_char buf '\n'
  | Ack { id } -> Buffer.add_string buf (Printf.sprintf "sap-response v1 %d ok\n" id)
  | Failed { id; code; message } ->
      Buffer.add_string buf
        (Printf.sprintf "sap-response v1 %d error code=%s msg=%s\n" id
           (error_code_to_string code) (String.escaped message))
  | Timed_out { id } ->
      Buffer.add_string buf (Printf.sprintf "sap-response v1 %d timeout\n" id)
  | Session_reply { id; session; event; summary; solution } -> (
      Buffer.add_string buf
        (Printf.sprintf "sap-response v1 %d session session=%d event=%s" id
           session (session_event_to_string event));
      (match summary with
      | Some s ->
          Buffer.add_string buf
            (Printf.sprintf
               " tasks=%d scheduled=%d weight=%.17g bands=%d repacked=%d \
                reused=%d warm=%d time-ms=%.17g"
               s.s_tasks s.s_scheduled s.s_weight s.s_bands s.s_repacked
               s.s_reused s.s_warm s.s_time_ms)
      | None -> ());
      Buffer.add_char buf '\n';
      match event with
      | Sess_opened | Sess_resolved ->
          Buffer.add_string buf (Sap_io.Instance_io.solution_to_string solution)
      | Sess_ack | Sess_closed -> ()));
  Buffer.add_string buf "end\n";
  Buffer.contents buf

(* ---------- parsing ---------- *)

let ( let* ) = Result.bind

let tokens line = String.split_on_char ' ' line |> List.filter (( <> ) "")

let parse_int what s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "expected integer for %s, got %S" what s)

let parse_float what s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "expected number for %s, got %S" what s)

(* [key=value] attribute tokens.  Unknown keys are an error: v1 has no
   extension story yet, and silently dropping a mistyped [timout-ms]
   would be a debugging trap. *)
let parse_attrs ~allowed toks =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | tok :: rest -> (
        match String.index_opt tok '=' with
        | None -> Error (Printf.sprintf "malformed attribute %S" tok)
        | Some i ->
            let k = String.sub tok 0 i in
            let v = String.sub tok (i + 1) (String.length tok - i - 1) in
            if List.mem k allowed then go ((k, v) :: acc) rest
            else Error (Printf.sprintf "unknown attribute %S" k))
  in
  go [] toks

let attr attrs k = List.assoc_opt k attrs

let require what = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing attribute %s" what)

let parse_attr_int attrs k =
  let* v = require k (attr attrs k) in
  parse_int k v

let parse_bool what s =
  match s with
  | "0" -> Ok false
  | "1" -> Ok true
  | _ -> Error (Printf.sprintf "expected 0/1 for %s, got %S" what s)

let no_body what = function
  | [] -> Ok ()
  | _ -> Error (Printf.sprintf "%s takes no body" what)

let request_of_lines lines =
  match lines with
  | [] -> Error "empty frame"
  | header :: body -> (
      match tokens header with
      | "sap-request" :: "v1" :: id :: verb :: attr_toks -> (
          let* id = parse_int "request id" id in
          let* () =
            if id < 0 then Error "request id must be non-negative" else Ok ()
          in
          match verb with
          | "solve" ->
              let* attrs =
                parse_attrs ~allowed:[ "algorithm"; "seed"; "timeout-ms"; "cache" ]
                  attr_toks
              in
              let d = default_solve_params in
              let algorithm =
                match attr attrs "algorithm" with Some a -> a | None -> d.algorithm
              in
              let* seed =
                match attr attrs "seed" with
                | Some s -> parse_int "seed" s
                | None -> Ok d.seed
              in
              let* timeout_ms =
                match attr attrs "timeout-ms" with
                | Some s ->
                    let* v = parse_int "timeout-ms" s in
                    if v < 0 then Error "timeout-ms must be non-negative"
                    else Ok (Some v)
                | None -> Ok None
              in
              let* cache =
                match attr attrs "cache" with
                | Some s -> parse_bool "cache" s
                | None -> Ok d.cache
              in
              let* path, tasks =
                Sap_io.Instance_io.instance_of_string (String.concat "\n" body)
              in
              Ok
                (Solve
                   { id; params = { algorithm; seed; timeout_ms; cache }; path; tasks })
          | "round-solve" ->
              let* attrs =
                parse_attrs ~allowed:[ "algorithm"; "cache" ] attr_toks
              in
              let algorithm =
                match attr attrs "algorithm" with Some a -> a | None -> "bands"
              in
              let* cache =
                match attr attrs "cache" with
                | Some s -> parse_bool "cache" s
                | None -> Ok true
              in
              let* path, tasks =
                Sap_io.Instance_io.round_instance_of_string
                  (String.concat "\n" body)
              in
              Ok (Round_solve { id; algorithm; cache; path; tasks })
          | "stats" ->
              let* () = no_body "stats" body in
              Ok (Stats { id })
          | "ping" ->
              let* () = no_body "ping" body in
              Ok (Ping { id })
          | "shutdown" ->
              let* () = no_body "shutdown" body in
              Ok (Shutdown { id })
          | "session-open" ->
              let* attrs = parse_attrs ~allowed:[ "seed" ] attr_toks in
              let* seed =
                match attr attrs "seed" with
                | Some s -> parse_int "seed" s
                | None -> Ok default_solve_params.seed
              in
              let* path, tasks =
                Sap_io.Instance_io.instance_of_string (String.concat "\n" body)
              in
              Ok (Session_open { id; seed; path; tasks })
          | "add-task" ->
              let* attrs =
                parse_attrs
                  ~allowed:
                    [ "session"; "task-id"; "first"; "last"; "demand"; "weight" ]
                  attr_toks
              in
              let* () = no_body "add-task" body in
              let* session = parse_attr_int attrs "session" in
              let* task_id = parse_attr_int attrs "task-id" in
              let* first = parse_attr_int attrs "first" in
              let* last = parse_attr_int attrs "last" in
              let* demand = parse_attr_int attrs "demand" in
              let* weight = require "weight" (attr attrs "weight") in
              let* weight = parse_float "weight" weight in
              let* task =
                match
                  Core.Task.make ~id:task_id ~first_edge:first ~last_edge:last
                    ~demand ~weight
                with
                | t -> Ok t
                | exception Invalid_argument m -> Error ("invalid task: " ^ m)
              in
              Ok (Session_add { id; session; task })
          | "remove-task" ->
              let* attrs =
                parse_attrs ~allowed:[ "session"; "task-id" ] attr_toks
              in
              let* () = no_body "remove-task" body in
              let* session = parse_attr_int attrs "session" in
              let* task_id = parse_attr_int attrs "task-id" in
              Ok (Session_remove { id; session; task_id })
          | "resolve" ->
              let* attrs = parse_attrs ~allowed:[ "session"; "cold" ] attr_toks in
              let* () = no_body "resolve" body in
              let* session = parse_attr_int attrs "session" in
              let* cold =
                match attr attrs "cold" with
                | Some s -> parse_bool "cold" s
                | None -> Ok false
              in
              Ok (Session_resolve { id; session; cold })
          | "session-close" ->
              let* attrs = parse_attrs ~allowed:[ "session" ] attr_toks in
              let* () = no_body "session-close" body in
              let* session = parse_attr_int attrs "session" in
              Ok (Session_close { id; session })
          | other -> Error (Printf.sprintf "unknown verb %S" other))
      | _ -> Error (Printf.sprintf "malformed request header %S" header))

(* The [msg=] attribute must be last and swallows the rest of the header
   line (escaped, so it stays on one line). *)
let split_msg line =
  let marker = " msg=" in
  let n = String.length line and m = String.length marker in
  let rec find i =
    if i + m > n then None
    else if String.sub line i m = marker then
      Some (String.sub line 0 i, String.sub line (i + m) (n - i - m))
    else find (i + 1)
  in
  find 0

let response_of_lines ~tasks_for lines =
  match lines with
  | [] -> Error "empty frame"
  | header :: body -> (
      let plain, msg =
        match split_msg header with
        | Some (before, raw) -> (before, Some raw)
        | None -> (header, None)
      in
      match tokens plain with
      | "sap-response" :: "v1" :: id :: status :: attr_toks -> (
          let* id = parse_int "response id" id in
          match status with
          | "solved" ->
              let* attrs =
                parse_attrs
                  ~allowed:[ "scheduled"; "weight"; "cached"; "time-ms" ]
                  attr_toks
              in
              let req what = function
                | Some v -> Ok v
                | None -> Error (Printf.sprintf "missing attribute %s" what)
              in
              let* scheduled = req "scheduled" (attr attrs "scheduled") in
              let* scheduled = parse_int "scheduled" scheduled in
              let* weight = req "weight" (attr attrs "weight") in
              let* weight = parse_float "weight" weight in
              let* cached = req "cached" (attr attrs "cached") in
              let* cached = parse_bool "cached" cached in
              let* time_ms = req "time-ms" (attr attrs "time-ms") in
              let* time_ms = parse_float "time-ms" time_ms in
              let* tasks =
                match tasks_for id with
                | Some ts -> Ok ts
                | None -> Error (Printf.sprintf "no instance known for response id %d" id)
              in
              let* solution =
                Sap_io.Instance_io.solution_of_string ~tasks (String.concat "\n" body)
              in
              Ok
                (Solved
                   { id; summary = { scheduled; weight; cached; time_ms }; solution })
          | "round-solved" ->
              let* attrs =
                parse_attrs ~allowed:[ "rounds"; "cached"; "time-ms" ] attr_toks
              in
              let* r_rounds = parse_attr_int attrs "rounds" in
              let* cached = require "cached" (attr attrs "cached") in
              let* r_cached = parse_bool "cached" cached in
              let* time_ms = require "time-ms" (attr attrs "time-ms") in
              let* r_time_ms = parse_float "time-ms" time_ms in
              let* tasks =
                match tasks_for id with
                | Some ts -> Ok ts
                | None ->
                    Error (Printf.sprintf "no instance known for response id %d" id)
              in
              let* rounds =
                Sap_io.Instance_io.round_solution_of_string ~tasks
                  (String.concat "\n" body)
              in
              let* () =
                if List.length rounds = r_rounds then Ok ()
                else
                  Error
                    (Printf.sprintf "round count mismatch: header %d, body %d"
                       r_rounds (List.length rounds))
              in
              Ok
                (Round_solved
                   { id; summary = { r_rounds; r_cached; r_time_ms }; rounds })
          | "stats" -> (
              match body with
              | [ json_line ] -> (
                  match Obs.Json.of_string json_line with
                  | Ok stats -> Ok (Stats_reply { id; stats })
                  | Error m -> Error ("stats body: " ^ m))
              | _ -> Error "stats response body must be one JSON line")
          | "session" -> (
              let* attrs =
                parse_attrs
                  ~allowed:
                    [
                      "session";
                      "event";
                      "tasks";
                      "scheduled";
                      "weight";
                      "bands";
                      "repacked";
                      "reused";
                      "warm";
                      "time-ms";
                    ]
                  attr_toks
              in
              let* session = parse_attr_int attrs "session" in
              let* event = require "event" (attr attrs "event") in
              let* event =
                match session_event_of_string event with
                | Some e -> Ok e
                | None -> Error (Printf.sprintf "unknown session event %S" event)
              in
              match event with
              | Sess_ack | Sess_closed ->
                  let* () = no_body "session ack" body in
                  Ok
                    (Session_reply
                       { id; session; event; summary = None; solution = [] })
              | Sess_opened | Sess_resolved ->
                  let* s_tasks = parse_attr_int attrs "tasks" in
                  let* s_scheduled = parse_attr_int attrs "scheduled" in
                  let* weight = require "weight" (attr attrs "weight") in
                  let* s_weight = parse_float "weight" weight in
                  let* s_bands = parse_attr_int attrs "bands" in
                  let* s_repacked = parse_attr_int attrs "repacked" in
                  let* s_reused = parse_attr_int attrs "reused" in
                  let* s_warm = parse_attr_int attrs "warm" in
                  let* time_ms = require "time-ms" (attr attrs "time-ms") in
                  let* s_time_ms = parse_float "time-ms" time_ms in
                  let* tasks =
                    match tasks_for id with
                    | Some ts -> Ok ts
                    | None ->
                        Error
                          (Printf.sprintf "no instance known for response id %d" id)
                  in
                  let* solution =
                    Sap_io.Instance_io.solution_of_string ~tasks
                      (String.concat "\n" body)
                  in
                  Ok
                    (Session_reply
                       {
                         id;
                         session;
                         event;
                         summary =
                           Some
                             {
                               s_tasks;
                               s_scheduled;
                               s_weight;
                               s_bands;
                               s_repacked;
                               s_reused;
                               s_warm;
                               s_time_ms;
                             };
                         solution;
                       }))
          | "ok" ->
              let* () = no_body "ok" body in
              Ok (Ack { id })
          | "timeout" ->
              let* () = no_body "timeout" body in
              Ok (Timed_out { id })
          | "error" -> (
              let* attrs = parse_attrs ~allowed:[ "code" ] attr_toks in
              let* () = no_body "error" body in
              let* code =
                match attr attrs "code" with
                | Some c -> (
                    match error_code_of_string c with
                    | Some c -> Ok c
                    | None -> Error (Printf.sprintf "unknown error code %S" c))
                | None -> Error "missing attribute code"
              in
              let* message =
                match msg with
                | None -> Error "missing attribute msg"
                | Some raw -> (
                    match Scanf.unescaped raw with
                    | s -> Ok s
                    | exception Scanf.Scan_failure _ ->
                        Error "undecodable msg escape")
              in
              Ok (Failed { id; code; message }))
          | other -> Error (Printf.sprintf "unknown status %S" other))
      | _ -> Error (Printf.sprintf "malformed response header %S" header))

let strip_terminator lines =
  match List.rev lines with
  | last :: rev_rest when String.trim last = "end" -> Ok (List.rev rev_rest)
  | _ -> Error "missing end terminator"

let request_of_string s =
  let lines = String.split_on_char '\n' s |> List.filter (( <> ) "") in
  let* lines = strip_terminator lines in
  request_of_lines lines

let response_of_string ~tasks_for s =
  let lines = String.split_on_char '\n' s |> List.filter (( <> ) "") in
  let* lines = strip_terminator lines in
  response_of_lines ~tasks_for lines

let read_frame ~read_line =
  let rec go acc =
    match read_line () with
    | None -> None
    | Some line ->
        if String.trim line = "end" then Some (List.rev acc)
        else go (line :: acc)
  in
  go []
