module Task = Core.Task
module Path = Core.Path
module Ring = Core.Ring
module Prng = Util.Prng
module Json = Obs.Json
module Perturb = Gen.Perturb

let schema = "sap-hunt v1"

type config = {
  alg : string;
  seed : int;
  generations : int;
  population : int;
  max_nodes : int;
  hof_size : int;
  max_tasks : int;
}

let default_config =
  {
    alg = "combine";
    seed = 42;
    generations = 8;
    population = 16;
    max_nodes = 200_000;
    hof_size = 5;
    max_tasks = 12;
  }

let algs = List.map fst Ratio.bounds

type scored = {
  instance : Corpus.instance;
  ratio : float;
  exact : bool;
  opt : float;
  alg_weight : float;
  bb_nodes : int;
  born : int;
  op : string;
}

type generation_log = {
  g_index : int;
  g_best : float;
  g_evaluated : int;
  g_hof_size : int;
}

type op_stat = { os_name : string; applied : int; improved : int }

type report = {
  r_config : config;
  r_bound : float;
  hall_of_fame : scored list;
  log : generation_log list;
  op_stats : op_stat list;
  evaluated : int;
  exact_scores : int;
  lp_fallbacks : int;
}

(* ---------- metrics ---------- *)

let c_evaluated = Obs.Metrics.counter "lab.hunt.evaluated"

let c_exact = Obs.Metrics.counter "lab.hunt.exact"

let c_lp = Obs.Metrics.counter "lab.hunt.lp_fallbacks"

let seed_op = "seed"

let op_names = List.map Perturb.op_name Perturb.all_ops @ [ seed_op ]

let op_counters =
  List.map
    (fun name ->
      ( name,
        ( Obs.Metrics.counter ("lab.hunt.mutations." ^ name),
          Obs.Metrics.counter ("lab.hunt.improved." ^ name) ) ))
    op_names

(* ---------- seeding ---------- *)

let cc = Sap.Combine.default_config

let thresholds = [ cc.Sap.Combine.delta; 1.0 -. (2.0 *. cc.Sap.Combine.beta) ]

let random_path prng =
  let edges = Prng.int_in prng 4 7 in
  match Prng.int prng 4 with
  | 0 -> Gen.Profiles.uniform ~edges ~capacity:(Prng.int_in prng 4 12)
  | 1 ->
      Gen.Profiles.valley ~edges
        ~high:(Prng.int_in prng 8 14)
        ~low:(Prng.int_in prng 4 7)
  | 2 ->
      Gen.Profiles.staircase ~edges
        ~steps:(Prng.int_in prng 2 3)
        ~base:(Prng.int_in prng 3 5)
  | _ ->
      Gen.Profiles.random_walk ~prng ~edges
        ~start:(Prng.int_in prng 6 12)
        ~max_step:2 ~min_cap:4

(* Generation-0 candidates start in the target algorithm's demand regime
   so the classified subset is non-trivial from the first evaluation. *)
let seed_instance alg prng =
  if alg = "ring" then
    Corpus.Ring_instance
      (Gen.Ring_gen.random ~prng
         ~edges:(Prng.int_in prng 5 6)
         ~n:(Prng.int_in prng 4 6)
         ~cap_lo:4 ~cap_hi:12 ~ratio_lo:0.0 ~ratio_hi:0.9)
  else
    let path = random_path prng in
    let n = Prng.int_in prng 6 10 in
    let tasks =
      match alg with
      | "small" ->
          Gen.Workloads.small_tasks ~prng ~path ~n ~delta:cc.Sap.Combine.delta ()
      | "medium" ->
          Gen.Workloads.ratio_tasks ~prng ~path ~n ~lo:cc.Sap.Combine.delta
            ~hi:0.5 ()
      | "large" -> Gen.Workloads.ratio_tasks ~prng ~path ~n ~lo:0.5 ~hi:1.0 ()
      | _ -> Gen.Workloads.mixed_tasks ~prng ~path ~n ()
    in
    Corpus.Path_instance (path, tasks)

(* ---------- evaluation ---------- *)

(* The score is always certified: [incumbent / ALG] never exceeds
   [OPT / ALG], and equals it when the branch and bound closed.  A
   non-exact candidate may steer the search but never enters the hall of
   fame — a ratio against the {!Lp.Ufpp_lp} upper bound proves nothing. *)
let evaluate ~alg ~max_nodes instance =
  Obs.Metrics.incr c_evaluated;
  let zero exact = (0.0, exact, 0.0, 0.0, 0) in
  let ratio_of value w = if w > 1e-9 then value /. w else 0.0 in
  let r =
    match instance with
    | Corpus.Path_instance (path, tasks) ->
        let pa =
          List.find (fun pa -> pa.Ratio.pa_name = alg) Ratio.path_algs
        in
        let subset = pa.Ratio.pa_subset path tasks in
        if subset = [] then zero true
        else
          let w = Core.Solution.sap_weight (pa.Ratio.pa_run path subset) in
          let out = Exact_bb.solve ~max_nodes path subset in
          let opt =
            if out.Exact_bb.optimal then out.Exact_bb.value
            else out.Exact_bb.upper_bound
          in
          ( ratio_of out.Exact_bb.value w,
            out.Exact_bb.optimal,
            opt,
            w,
            out.Exact_bb.nodes )
    | Corpus.Ring_instance r ->
        let w = Ring.solution_weight (Ratio.ring_solve r) in
        let out = Exact_bb.solve_ring ~max_nodes r in
        let opt =
          if out.Exact_bb.ring_optimal then out.Exact_bb.ring_value
          else
            Array.fold_left
              (fun acc (t : Ring.task) -> acc +. t.Ring.weight)
              0.0 r.Ring.tasks
        in
        ( ratio_of out.Exact_bb.ring_value w,
          out.Exact_bb.ring_optimal,
          opt,
          w,
          out.Exact_bb.ring_nodes )
    | Corpus.Round_instance _ ->
        (* The hunt maximizes weight ratios against a max-weight oracle;
           ROUND-SAP's min-rounds objective needs its own mutation set
           and scoring before it can be hunted. *)
        invalid_arg (Printf.sprintf "Lab.Hunt: cannot hunt round instances (alg %s)" alg)
  in
  let _, exact, _, _, _ = r in
  if exact then Obs.Metrics.incr c_exact else Obs.Metrics.incr c_lp;
  r

(* ---------- the evolutionary loop ---------- *)

let instance_key = function
  | Corpus.Path_instance (p, ts) -> Sap_io.Instance_io.instance_to_string p ts
  | Corpus.Ring_instance r -> Sap_io.Instance_io.ring_to_string r
  | Corpus.Round_instance i ->
      Sap_io.Instance_io.round_instance_to_string i.Round.Instance.path
        i.Round.Instance.tasks

let compare_scored a b =
  (* Ratio-descending with a deterministic tiebreak, so elitism and the
     hall of fame are independent of list construction order. *)
  match Float.compare b.ratio a.ratio with
  | 0 -> (
      match compare a.born b.born with
      | 0 -> compare (instance_key a.instance) (instance_key b.instance)
      | c -> c)
  | c -> c

let update_hof ~hof_size hof candidates =
  let keys = List.map (fun s -> instance_key s.instance) hof in
  let fresh =
    List.filter
      (fun s ->
        s.exact && s.ratio > 1e-9
        && not (List.mem (instance_key s.instance) keys))
      candidates
  in
  let merged = List.sort compare_scored (hof @ fresh) in
  List.filteri (fun i _ -> i < hof_size) merged

let best_ratio hof = match hof with [] -> 0.0 | s :: _ -> s.ratio

let run ?pool config =
  if not (List.mem config.alg algs) then
    invalid_arg
      (Printf.sprintf "Lab.Hunt: unknown algorithm %S (have: %s)" config.alg
         (String.concat ", " algs));
  if config.generations < 1 || config.population < 2 || config.hof_size < 1 then
    invalid_arg "Lab.Hunt: need generations >= 1, population >= 2, hof >= 1";
  Obs.Trace.with_span "lab.hunt.run" ~attrs:[ ("alg", config.alg) ]
  @@ fun () ->
  let bound = List.assoc config.alg Ratio.bounds in
  let master = Prng.create config.seed in
  (* Per-candidate streams: O(1) jump to the slot, then split so each
     candidate draws an independent stream of arbitrary length.  Derived
     before any fan-out, so pooled evaluation order cannot matter. *)
  let slot_prng gen_master i = Prng.split (Prng.jump gen_master (i * 4096)) in
  let n_exact = ref 0 and n_lp = ref 0 in
  let applied = Hashtbl.create 16 and improved = Hashtbl.create 16 in
  List.iter
    (fun name ->
      Hashtbl.replace applied name 0;
      Hashtbl.replace improved name 0)
    op_names;
  let count tbl name = Hashtbl.replace tbl name (Hashtbl.find tbl name + 1) in
  let eval_many born cands =
    let score (op, instance, parent_ratio) =
      let ratio, exact, opt, alg_weight, bb_nodes =
        evaluate ~alg:config.alg ~max_nodes:config.max_nodes instance
      in
      ignore parent_ratio;
      { instance; ratio; exact; opt; alg_weight; bb_nodes; born; op }
    in
    let scored =
      match pool with
      | Some p -> Sap_server.Pool.map p score cands
      | None -> List.map score cands
    in
    List.iter2
      (fun (op, _, parent_ratio) s ->
        if s.exact then incr n_exact else incr n_lp;
        count applied op;
        if s.ratio > parent_ratio +. 1e-9 then begin
          count improved op;
          Obs.Metrics.incr (snd (List.assoc op op_counters))
        end;
        Obs.Metrics.incr (fst (List.assoc op op_counters)))
      cands scored;
    scored
  in
  let mutate prng instance =
    let ops = Array.of_list Perturb.all_ops in
    let rec go tries =
      if tries = 0 then None
      else
        let op = Prng.choose prng ops in
        let mutant =
          match instance with
          | Corpus.Path_instance (p, ts) ->
              Option.map
                (fun (p', ts') -> Corpus.Path_instance (p', ts'))
                (Perturb.mutate_path ~prng ~max_tasks:config.max_tasks
                   ~thresholds op p ts)
          | Corpus.Ring_instance r ->
              Option.map
                (fun r' -> Corpus.Ring_instance r')
                (Perturb.mutate_ring ~prng ~max_tasks:config.max_tasks op r)
          | Corpus.Round_instance _ -> None
        in
        match mutant with
        | Some inst -> Some (Perturb.op_name op, inst)
        | None -> go (tries - 1)
    in
    go 8
  in
  (* Generation 0: fresh instances in the target demand regime. *)
  let gen_master = Prng.split master in
  let seeds =
    List.init config.population (fun i ->
        (seed_op, seed_instance config.alg (slot_prng gen_master i), 0.0))
  in
  let population = ref (eval_many 0 seeds) in
  let hof = ref (update_hof ~hof_size:config.hof_size [] !population) in
  let log =
    ref
      [
        {
          g_index = 0;
          g_best = best_ratio !hof;
          g_evaluated = config.population;
          g_hof_size = List.length !hof;
        };
      ]
  in
  for g = 1 to config.generations - 1 do
    let gen_master = Prng.split master in
    let ranked = List.sort compare_scored !population in
    let n_elite = max 1 (config.population / 4) in
    let elites = List.filteri (fun i _ -> i < n_elite) ranked in
    let parents = Array.of_list (!hof @ elites) in
    let offspring =
      List.init
        (config.population - n_elite)
        (fun i ->
          let prng = slot_prng gen_master i in
          let a = Prng.choose prng parents and b = Prng.choose prng parents in
          let parent = if compare_scored a b <= 0 then a else b in
          match mutate prng parent.instance with
          | Some (op, inst) -> (op, inst, parent.ratio)
          | None -> (seed_op, seed_instance config.alg prng, 0.0))
    in
    let scored = eval_many g offspring in
    population := elites @ scored;
    hof := update_hof ~hof_size:config.hof_size !hof scored;
    log :=
      {
        g_index = g;
        g_best = best_ratio !hof;
        g_evaluated = List.length offspring;
        g_hof_size = List.length !hof;
      }
      :: !log
  done;
  let log = List.rev !log in
  let evaluated =
    List.fold_left (fun acc l -> acc + l.g_evaluated) 0 log
  in
  let op_stats =
    List.filter_map
      (fun name ->
        let a = Hashtbl.find applied name and i = Hashtbl.find improved name in
        if a = 0 && i = 0 then None
        else Some { os_name = name; applied = a; improved = i })
      op_names
  in
  {
    r_config = config;
    r_bound = bound;
    hall_of_fame = !hof;
    log;
    op_stats;
    evaluated;
    exact_scores = !n_exact;
    lp_fallbacks = !n_lp;
  }

(* ---------- output ---------- *)

let instance_dims = function
  | Corpus.Path_instance (p, ts) -> (Path.num_edges p, List.length ts, "path")
  | Corpus.Ring_instance r ->
      (Ring.num_edges r, Array.length r.Ring.tasks, "ring")
  | Corpus.Round_instance i ->
      (Path.num_edges i.Round.Instance.path, Round.Instance.task_count i, "round")

let scored_json rank s =
  let edges, tasks, kind = instance_dims s.instance in
  Json.Obj
    [
      ("rank", Json.Int rank);
      ("ratio", Json.Float s.ratio);
      ("exact", Json.Bool s.exact);
      ("opt", Json.Float s.opt);
      ("alg_weight", Json.Float s.alg_weight);
      ("bb_nodes", Json.Int s.bb_nodes);
      ("born", Json.Int s.born);
      ("op", Json.String s.op);
      ("kind", Json.String kind);
      ("edges", Json.Int edges);
      ("tasks", Json.Int tasks);
    ]

let report_json r =
  Json.Obj
    [
      ("schema", Json.String schema);
      ("alg", Json.String r.r_config.alg);
      ("seed", Json.Int r.r_config.seed);
      ("generations", Json.Int r.r_config.generations);
      ("population", Json.Int r.r_config.population);
      ("max_nodes", Json.Int r.r_config.max_nodes);
      ("max_tasks", Json.Int r.r_config.max_tasks);
      ("bound", Json.Float r.r_bound);
      ("evaluated", Json.Int r.evaluated);
      ("best_ratio", Json.Float (best_ratio r.hall_of_fame));
      ( "generations_log",
        Json.List
          (List.map
             (fun l ->
               Json.Obj
                 [
                   ("generation", Json.Int l.g_index);
                   ("best_ratio", Json.Float l.g_best);
                   ("evaluated", Json.Int l.g_evaluated);
                   ("hof_size", Json.Int l.g_hof_size);
                 ])
             r.log) );
      ( "operators",
        Json.List
          (List.map
             (fun s ->
               Json.Obj
                 [
                   ("op", Json.String s.os_name);
                   ("applied", Json.Int s.applied);
                   ("improved", Json.Int s.improved);
                 ])
             r.op_stats) );
      ( "hall_of_fame",
        Json.List (List.mapi scored_json r.hall_of_fame) );
    ]

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let write_hof ~dir r =
  mkdir_p dir;
  List.mapi
    (fun rank s ->
      let file = Printf.sprintf "hunt-hof-%s-%d.inst" r.r_config.alg rank in
      Sap_io.Instance_io.write_file
        (Filename.concat dir file)
        (instance_key s.instance);
      file)
    r.hall_of_fame

let pp_summary ppf r =
  Format.fprintf ppf "hunt %s: seed %d, %d generations x %d, bound %.2f@."
    r.r_config.alg r.r_config.seed r.r_config.generations r.r_config.population
    r.r_bound;
  Format.fprintf ppf "%-4s %10s %6s %4s@." "gen" "best" "evals" "hof";
  List.iter
    (fun l ->
      Format.fprintf ppf "%-4d %10.4f %6d %4d@." l.g_index l.g_best l.g_evaluated
        l.g_hof_size)
    r.log;
  Format.fprintf ppf "%-20s %8s %9s@." "operator" "applied" "improved";
  List.iter
    (fun s ->
      Format.fprintf ppf "%-20s %8d %9d@." s.os_name s.applied s.improved)
    r.op_stats;
  Format.fprintf ppf "hall of fame (%d):@." (List.length r.hall_of_fame);
  List.iteri
    (fun rank s ->
      let edges, tasks, kind = instance_dims s.instance in
      Format.fprintf ppf
        "  #%d ratio %.4f (opt %.3f / alg %.3f) %s %de/%dt born g%d via %s@."
        rank s.ratio s.opt s.alg_weight kind edges tasks s.born s.op)
    r.hall_of_fame
