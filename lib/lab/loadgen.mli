(** Open-loop load generator for the solve service.

    Drives a server with solve requests drawn from a {!Corpus} path
    family at a fixed target rate.  The open-loop discipline is the one
    that measures tail latency honestly: a dedicated pacing domain sends
    request [k] at [t0 + k/rps] {e regardless} of how long earlier
    requests take, requests are pipelined round-robin over [connections]
    persistent connections (one reader domain each), and latency is
    measured from the {e scheduled} send time — so server-side queueing
    shows up in the percentiles instead of being hidden by a slow client
    (the coordinated-omission trap of closed-loop drivers).

    The instance mix is deterministic in [seed]: [distinct] instances are
    drawn from [profile] up front and cycled, so with caching on, the
    steady state exercises the server's cache hit path at a predictable
    rate.  Mid-run the generator opens one extra connection and scrapes
    the [stats] verb ([scrape_stats]), proving live snapshots work while
    solves are in flight; the parsed snapshot rides along in the report.

    {!run_closed} is the deterministic closed-loop variant used by the
    [LG] bench scenario: same mix, but each request is sent only after
    the previous response arrives (via a direct [handle] function), so
    solved/cached/error counts are reproducible for a fixed seed. *)

type config = {
  rps : float;  (** target offered rate, requests/second *)
  duration : float;  (** run length in seconds; [rps * duration] requests *)
  connections : int;  (** persistent pipelined connections *)
  profile : string;  (** a {!Corpus.path_families} member *)
  distinct : int;  (** distinct instances cycled through the run *)
  algorithm : string;
  seed : int;
  timeout_ms : int option;  (** per-request deadline forwarded on the wire *)
  cache : bool;  (** [cache=0] on the wire when false *)
  scrape_stats : bool;  (** scrape the [stats] verb mid-run *)
}

val default_config : config
(** 50 rps for 2 s on 4 connections, [uniform-mixed], 32 distinct
    instances, [combine], seed 42, no timeout, cache and scrape on. *)

type report = {
  r_config : config;
  offered_rps : float;  (** = [config.rps] *)
  achieved_rps : float;  (** completions / elapsed *)
  elapsed : float;  (** first scheduled send -> last completion, seconds *)
  sent : int;
  completed : int;  (** responses of any status *)
  solved : int;  (** fresh solves *)
  cached : int;  (** cache-served solves *)
  timeouts : int;
  errors : int;  (** error responses *)
  lost : int;  (** sent but never answered *)
  latency : Obs.Metrics.histogram_summary;
      (** scheduled send -> completion, seconds *)
  send_lag : Obs.Metrics.histogram_summary;
      (** scheduled -> actual send: pacer health; large values mean the
          offered rate was not actually offered *)
  protocol_errors : string list;
  server_stats : Obs.Json.t option;  (** mid-run [stats] snapshot *)
}

val run :
  connect:(unit -> (Unix.file_descr, string) result) ->
  config ->
  (report, string) result
(** Run the open-loop generator against a server reachable through
    [connect] (e.g. [fun () -> Client.connect_unix path]).  [Error] only
    for a config/connection-setup problem; per-request failures are
    reported in the counters and [protocol_errors]. *)

val run_closed :
  handle:(Sap_server.Protocol.request -> Sap_server.Protocol.response) ->
  config ->
  (report, string) result
(** Deterministic closed-loop variant: requests go one at a time through
    [handle] (e.g. [Server.handle srv]); [rps] only sizes the request
    count.  No pacing or scraping; counters are reproducible. *)

val cache_hit_rate : report -> float option
(** [cached / (solved + cached)]; [None] when nothing was served. *)

val report_json : report -> Obs.Json.t
(** The sap-loadgen v1 report (schema in docs/FORMAT.md): config echo,
    offered/achieved rps, request outcome counts, cache hit rate,
    latency and send-lag quantile histograms, protocol errors, and the
    scraped server stats (or null). *)

(** {2 Saturation sweep}

    Step the offered rate from [lo] to [hi] by [step], running the
    open-loop generator at each point, and stop early once achieved
    throughput falls below [threshold * offered] — the server is past its
    knee; offering more only inflates queues.  The knee is the highest
    offered rate that still kept up. *)

type sweep = {
  sw_config : config;  (** base config; [rps] is overridden per step *)
  sw_lo : float;
  sw_hi : float;
  sw_step : float;
  sw_threshold : float;
  sw_points : (float * report) list;  (** (offered rps, report), ascending *)
  sw_knee : float option;  (** highest keeping-up offered rate *)
}

val knee : threshold:float -> (float * float) list -> float option
(** Pure knee rule over [(offered, achieved)] pairs in sweep order: the
    last offered rate with [achieved >= threshold * offered]; [None] if
    no point kept up. *)

val sweep :
  connect:(unit -> (Unix.file_descr, string) result) ->
  ?threshold:float ->
  lo:float ->
  hi:float ->
  step:float ->
  config ->
  (sweep, string) result
(** Run the sweep ([threshold] defaults to [0.9]; [cfg.rps] is ignored;
    mid-run stats scraping is disabled for every point).  [Error] on an
    invalid range or a setup failure at any point. *)

val sweep_json : sweep -> Obs.Json.t
(** The [sap-loadgen-sweep v1] report (schema in docs/FORMAT.md):
    range, threshold, per-point offered/achieved/counts/latency, and
    [knee_rps] (null when even [lo] was past the knee). *)
