module Task = Core.Task
module Path = Core.Path
module Ring = Core.Ring
module Json = Obs.Json

let schema = "sap-ratio v1"

let c_violations = Obs.Metrics.counter "lab.ratio.violations"

let c_disagreements = Obs.Metrics.counter "lab.ratio.disagreements"

type bound_kind = Exact_opt | Lp_opt

let bound_kind_to_string = function Exact_opt -> "exact" | Lp_opt -> "lp"

type measurement = {
  file : string;
  family : string;
  alg : string;
  subset_size : int;
  alg_weight : float;
  opt : float;
  bound_kind : bound_kind;
  ratio : float option;
  bound : float;
  within_bound : bool;
  brute_agrees : bool option;
  bb_nodes : int;
}

type summary_row = {
  s_alg : string;
  count : int;
  max_ratio : float option;
  mean_ratio : float option;
  exact_opts : int;
  lp_fallbacks : int;
  s_violations : int;
  worst_file : string option;
}

type family_row = {
  f_family : string;
  f_alg : string;
  f_count : int;
  f_max_ratio : float option;
  f_mean_ratio : float option;
  f_exact_opts : int;
  f_violations : int;
}

type report = {
  corpus_dir : string;
  corpus_seed : int;
  measurements : measurement list;
  summaries : summary_row list;
  families : family_row list;
  violations : int;
  disagreements : int;
}

(* ---------- the proven bounds, instantiated at the default config ---------- *)

let cfg = Sap.Combine.default_config

let eps = cfg.Sap.Combine.eps

let small_bound = 4.0 +. eps (* Theorem 1 *)

let medium_bound = 2.0 +. eps (* Theorem 2 with the Elevator, alpha = 2 *)

let large_bound = 3.0 (* Theorem 3, k = 2 *)

let combine_bound = small_bound +. medium_bound +. large_bound (* Lemma 3 *)

let ring_knapsack_eps = 0.1

let ring_bound = 1.0 +. combine_bound +. ring_knapsack_eps (* Lemma 18 *)

let bounds =
  [
    ("small", small_bound);
    ("medium", medium_bound);
    ("large", large_bound);
    ("combine", combine_bound);
    ("ring", ring_bound);
  ]

(* ---------- the per-algorithm runners ---------- *)

type path_alg = {
  pa_name : string;
  pa_bound : float;
  pa_subset : Core.Path.t -> Core.Task.t list -> Core.Task.t list;
  pa_run : Core.Path.t -> Core.Task.t list -> Core.Solution.sap;
}

let split_part part path tasks =
  part (Core.Classify.split3 path ~delta:cfg.Sap.Combine.delta ~large_frac:0.5 tasks)

let path_algs =
  let q = Sap.Combine.q_of_beta cfg.Sap.Combine.beta in
  let ell = Sap.Almost_uniform.ell_for_eps ~eps ~q in
  [
    {
      pa_name = "small";
      pa_bound = small_bound;
      pa_subset = split_part (fun s -> s.Core.Classify.small);
      pa_run =
        (fun path ts ->
          Sap.Small.strip_pack ~rounding:cfg.Sap.Combine.rounding
            ~prng:(Util.Prng.create cfg.Sap.Combine.seed)
            path ts);
    };
    {
      pa_name = "medium";
      pa_bound = medium_bound;
      pa_subset = split_part (fun s -> s.Core.Classify.medium);
      pa_run =
        (fun path ts ->
          (Sap.Almost_uniform.run ~ell ~q ?max_states:cfg.Sap.Combine.max_states
             path ts)
            .Sap.Almost_uniform.solution);
    };
    {
      pa_name = "large";
      pa_bound = large_bound;
      pa_subset = split_part (fun s -> s.Core.Classify.large);
      pa_run = (fun path ts -> Sap.Large.solve path ts);
    };
    {
      pa_name = "combine";
      pa_bound = combine_bound;
      pa_subset = (fun _ ts -> ts);
      pa_run = (fun path ts -> Sap.Combine.solve ~config:cfg path ts);
    };
  ]

let ring_solve r = Sap.Ring_algo.solve ~config:cfg ~knapsack_eps:ring_knapsack_eps r

(* ---------- one measurement ---------- *)

let ratio_of ~opt ~alg_weight =
  if alg_weight > 1e-9 then Some (opt /. alg_weight) else None

let within ~opt ~alg_weight ~bound =
  match ratio_of ~opt ~alg_weight with
  | Some r -> r <= bound +. 1e-9
  | None -> opt <= 1e-9 (* the algorithm scheduled nothing: fine iff OPT = 0 *)

let measure_path ?max_nodes ?pool ~entry ~alg ~bound path subset alg_weight =
  let out = Exact_bb.solve ?max_nodes ?pool path subset in
  let opt, bound_kind =
    if out.Exact_bb.optimal then (out.Exact_bb.value, Exact_opt)
    else (out.Exact_bb.upper_bound, Lp_opt)
  in
  let brute_agrees =
    if out.Exact_bb.optimal && List.length subset <= Exact.Sap_brute.task_cap then
      Some (Float.abs (Exact.Sap_brute.value path subset -. out.Exact_bb.value) <= 1e-6)
    else None
  in
  {
    file = entry.Corpus.file;
    family = entry.Corpus.family;
    alg;
    subset_size = List.length subset;
    alg_weight;
    opt;
    bound_kind;
    ratio = ratio_of ~opt ~alg_weight;
    bound;
    within_bound =
      (match bound_kind with
      | Exact_opt -> within ~opt ~alg_weight ~bound
      | Lp_opt ->
          (* The LP optimum over-estimates OPT, so exceeding the bound
             against it proves nothing; the gate only reads exact rows. *)
          true);
    brute_agrees;
    bb_nodes = out.Exact_bb.nodes;
  }

let run_path_entry ?max_nodes ?pool _t entry path tasks =
  List.map
    (fun pa ->
      let subset = pa.pa_subset path tasks in
      let sol = pa.pa_run path subset in
      measure_path ?max_nodes ?pool ~entry ~alg:pa.pa_name ~bound:pa.pa_bound
        path subset
        (Core.Solution.sap_weight sol))
    path_algs

let run_ring_entry ?max_nodes entry (r : Ring.t) =
  let sol = ring_solve r in
  let alg_weight = Ring.solution_weight sol in
  let out = Exact_bb.solve_ring ?max_nodes r in
  let total =
    Array.fold_left (fun acc (t : Ring.task) -> acc +. t.Ring.weight) 0.0 r.Ring.tasks
  in
  let opt, bound_kind =
    if out.Exact_bb.ring_optimal then (out.Exact_bb.ring_value, Exact_opt)
    else (total, Lp_opt)
  in
  let brute_agrees =
    if
      out.Exact_bb.ring_optimal
      && Array.length r.Ring.tasks <= Exact.Ring_brute.task_cap
    then
      Some (Float.abs (Exact.Ring_brute.value r -. out.Exact_bb.ring_value) <= 1e-6)
    else None
  in
  [
    {
      file = entry.Corpus.file;
      family = entry.Corpus.family;
      alg = "ring";
      subset_size = Array.length r.Ring.tasks;
      alg_weight;
      opt;
      bound_kind;
      ratio = ratio_of ~opt ~alg_weight;
      bound = ring_bound;
      within_bound =
        (match bound_kind with
        | Exact_opt -> within ~opt ~alg_weight ~bound:ring_bound
        | Lp_opt -> true);
      brute_agrees;
      bb_nodes = out.Exact_bb.ring_nodes;
    };
  ]

(* ---------- the runner ---------- *)

let summarise measurements =
  let algs =
    List.fold_left
      (fun acc m -> if List.mem m.alg acc then acc else acc @ [ m.alg ])
      [] measurements
  in
  List.map
    (fun alg ->
      let ms = List.filter (fun m -> m.alg = alg) measurements in
      (* Aggregate ratios over exact-oracle rows only.  An [Lp_opt] row's
         ratio is measured against an over-estimate of OPT, so letting it
         into max/mean — or ranking it "worst" — would misreport the
         empirical picture the lab exists to give. *)
      let ratios =
        List.filter_map
          (fun m ->
            match (m.bound_kind, m.ratio) with
            | Exact_opt, Some r -> Some (m, r)
            | _ -> None)
          ms
      in
      let worst =
        List.fold_left
          (fun acc (m, r) ->
            match acc with
            | Some (_, r') when r' >= r -> acc
            | _ -> Some (m, r))
          None ratios
      in
      {
        s_alg = alg;
        count = List.length ms;
        max_ratio = Option.map snd worst;
        mean_ratio =
          (match ratios with
          | [] -> None
          | _ ->
              Some
                (List.fold_left (fun a (_, r) -> a +. r) 0.0 ratios
                /. float_of_int (List.length ratios)));
        exact_opts =
          List.length (List.filter (fun m -> m.bound_kind = Exact_opt) ms);
        lp_fallbacks =
          List.length (List.filter (fun m -> m.bound_kind = Lp_opt) ms);
        s_violations =
          List.length (List.filter (fun m -> not m.within_bound) ms);
        worst_file = Option.map (fun (m, _) -> m.file) worst;
      })
    algs

let family_rows measurements =
  let distinct key ms =
    List.fold_left
      (fun acc m -> if List.mem (key m) acc then acc else acc @ [ key m ])
      [] ms
  in
  List.concat_map
    (fun family ->
      let fam = List.filter (fun m -> m.family = family) measurements in
      List.map
        (fun alg ->
          let ms = List.filter (fun m -> m.alg = alg) fam in
          (* Same discipline as [summarise]: only exact-oracle rows feed
             the ratio statistics. *)
          let ratios =
            List.filter_map
              (fun m ->
                match (m.bound_kind, m.ratio) with
                | Exact_opt, Some r -> Some r
                | _ -> None)
              ms
          in
          {
            f_family = family;
            f_alg = alg;
            f_count = List.length ms;
            f_max_ratio =
              List.fold_left
                (fun acc r ->
                  match acc with
                  | Some a -> Some (Float.max a r)
                  | None -> Some r)
                None ratios;
            f_mean_ratio =
              (match ratios with
              | [] -> None
              | _ ->
                  Some
                    (List.fold_left ( +. ) 0.0 ratios
                    /. float_of_int (List.length ratios)));
            f_exact_opts =
              List.length (List.filter (fun m -> m.bound_kind = Exact_opt) ms);
            f_violations =
              List.length (List.filter (fun m -> not m.within_bound) ms);
          })
        (distinct (fun m -> m.alg) fam))
    (distinct (fun m -> m.family) measurements)

let run ?max_nodes ?pool (t : Corpus.t) =
  Obs.Trace.with_span "lab.ratio.run"
    ~attrs:[ ("corpus", t.Corpus.dir) ]
  @@ fun () ->
  let measurements =
    List.concat_map
      (fun entry ->
        match Corpus.read t entry with
        | Error msg ->
            invalid_arg
              (Printf.sprintf "Lab.Ratio: corpus entry %s: %s"
                 entry.Corpus.file msg)
        | Ok (Corpus.Path_instance (path, tasks)) ->
            run_path_entry ?max_nodes ?pool t entry path tasks
        | Ok (Corpus.Ring_instance r) -> run_ring_entry ?max_nodes entry r
        (* ROUND-SAP entries are measured by Round_lab (rounds vs. a
           lower bound, not weight vs. OPT); in a mixed corpus they are
           simply not this pipeline's rows. *)
        | Ok (Corpus.Round_instance _) -> [])
      t.Corpus.entries
  in
  let violations =
    List.length (List.filter (fun m -> not m.within_bound) measurements)
  in
  let disagreements =
    List.length (List.filter (fun m -> m.brute_agrees = Some false) measurements)
  in
  for _ = 1 to violations do Obs.Metrics.incr c_violations done;
  for _ = 1 to disagreements do Obs.Metrics.incr c_disagreements done;
  {
    corpus_dir = t.Corpus.dir;
    corpus_seed = t.Corpus.seed;
    measurements;
    summaries = summarise measurements;
    families = family_rows measurements;
    violations;
    disagreements;
  }

(* ---------- JSON ---------- *)

let measurement_json m =
  Json.Obj
    [
      ("file", Json.String m.file);
      ("family", Json.String m.family);
      ("alg", Json.String m.alg);
      ("subset_size", Json.Int m.subset_size);
      ("alg_weight", Json.Float m.alg_weight);
      ("opt", Json.Float m.opt);
      ("bound_kind", Json.String (bound_kind_to_string m.bound_kind));
      ( "ratio",
        match m.ratio with Some r -> Json.Float r | None -> Json.Null );
      ("bound", Json.Float m.bound);
      ("within_bound", Json.Bool m.within_bound);
      ( "brute_agrees",
        match m.brute_agrees with Some b -> Json.Bool b | None -> Json.Null );
      ("bb_nodes", Json.Int m.bb_nodes);
    ]

let summary_json s =
  Json.Obj
    [
      ("alg", Json.String s.s_alg);
      ("count", Json.Int s.count);
      ( "max_ratio",
        match s.max_ratio with Some r -> Json.Float r | None -> Json.Null );
      ( "mean_ratio",
        match s.mean_ratio with Some r -> Json.Float r | None -> Json.Null );
      ("exact_opts", Json.Int s.exact_opts);
      ("lp_fallbacks", Json.Int s.lp_fallbacks);
      ("violations", Json.Int s.s_violations);
      ( "worst_file",
        match s.worst_file with Some f -> Json.String f | None -> Json.Null );
    ]

let family_json f =
  Json.Obj
    [
      ("family", Json.String f.f_family);
      ("alg", Json.String f.f_alg);
      ("count", Json.Int f.f_count);
      ( "max_ratio",
        match f.f_max_ratio with Some r -> Json.Float r | None -> Json.Null );
      ( "mean_ratio",
        match f.f_mean_ratio with Some r -> Json.Float r | None -> Json.Null );
      ("exact_opts", Json.Int f.f_exact_opts);
      ("violations", Json.Int f.f_violations);
    ]

let report_json r =
  Json.Obj
    [
      ("schema", Json.String schema);
      ( "corpus",
        Json.Obj
          [
            ("dir", Json.String r.corpus_dir);
            ("seed", Json.Int r.corpus_seed);
            ("entries", Json.Int (List.length r.measurements));
          ] );
      ( "config",
        Json.Obj
          [
            ("eps", Json.Float eps);
            ("delta", Json.Float cfg.Sap.Combine.delta);
            ("beta", Json.Float cfg.Sap.Combine.beta);
            ("bounds", Json.Obj (List.map (fun (a, b) -> (a, Json.Float b)) bounds));
          ] );
      ("measurements", Json.List (List.map measurement_json r.measurements));
      ("summary", Json.List (List.map summary_json r.summaries));
      ("families", Json.List (List.map family_json r.families));
      ("violations", Json.Int r.violations);
      ("disagreements", Json.Int r.disagreements);
    ]

let pp_summary ppf r =
  Format.fprintf ppf "corpus %s (seed %d): %d measurements@."
    r.corpus_dir r.corpus_seed
    (List.length r.measurements);
  Format.fprintf ppf "%-8s %5s %9s %9s %7s %5s %4s  %s@." "alg" "count"
    "max" "mean" "bound" "exact" "lp" "worst";
  List.iter
    (fun s ->
      let fo = function Some r -> Printf.sprintf "%.4f" r | None -> "-" in
      Format.fprintf ppf "%-8s %5d %9s %9s %7.2f %5d %4d  %s@." s.s_alg
        s.count (fo s.max_ratio) (fo s.mean_ratio)
        (List.assoc s.s_alg bounds)
        s.exact_opts s.lp_fallbacks
        (Option.value ~default:"-" s.worst_file))
    r.summaries;
  Format.fprintf ppf "@.%-16s %-8s %5s %9s %9s %5s %4s@." "family" "alg"
    "count" "max" "mean" "exact" "viol";
  List.iter
    (fun f ->
      let fo = function Some r -> Printf.sprintf "%.4f" r | None -> "-" in
      Format.fprintf ppf "%-16s %-8s %5d %9s %9s %5d %4d@." f.f_family
        f.f_alg f.f_count (fo f.f_max_ratio) (fo f.f_mean_ratio)
        f.f_exact_opts f.f_violations)
    r.families;
  if r.violations > 0 then
    Format.fprintf ppf "BOUND VIOLATIONS: %d@." r.violations;
  if r.disagreements > 0 then
    Format.fprintf ppf "BB/BRUTE DISAGREEMENTS: %d@." r.disagreements
