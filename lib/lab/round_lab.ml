module Json = Obs.Json

let schema = "round-report v1"

let c_violations = Obs.Metrics.counter "round.lab.violations"

let c_disagreements = Obs.Metrics.counter "round.lab.disagreements"

type measurement = {
  file : string;
  family : string;
  alg : string;
  tasks : int;
  rounds : int;
  lb : int;
  lb_kind : string;
  ratio : float option;
  feasible : bool;
  bb_agrees : bool option;
  bb_nodes : int;
}

type summary_row = {
  s_alg : string;
  count : int;
  max_ratio : float option;
  mean_ratio : float option;
  exact_lbs : int;
  s_violations : int;
  worst_file : string option;
}

type family_row = {
  f_family : string;
  f_alg : string;
  f_count : int;
  f_rounds : int;
  f_lb : int;
  f_max_ratio : float option;
}

type report = {
  corpus_dir : string;
  corpus_seed : int;
  measurements : measurement list;
  summaries : summary_row list;
  families : family_row list;
  violations : int;
  disagreements : int;
  bands_competitive : bool;
}

let violated m = (not m.feasible) || m.rounds < m.lb

(* ---------- one entry ---------- *)

let run_entry ?max_nodes (entry : Corpus.entry) (inst : Round.Instance.t) =
  let n = Round.Instance.task_count inst in
  let static_lb = Round.Lower_bound.certified inst in
  let out = Round.Exact.solve ?max_nodes inst in
  let lb, lb_kind =
    if out.Round.Exact.optimal then (out.Round.Exact.value, "exact")
    else (max static_lb out.Round.Exact.lower_bound, "certified")
  in
  let bb_agrees =
    if out.Round.Exact.optimal && n <= Round.Exact.task_cap then
      Some (Round.Exact.brute_rounds inst = out.Round.Exact.value)
    else None
  in
  List.map
    (fun (s : Round.Solvers.t) ->
      let rounds = s.Round.Solvers.solve inst in
      let feasible =
        match Round.Checker.check inst rounds with Ok () -> true | Error _ -> false
      in
      let k = List.length rounds in
      {
        file = entry.Corpus.file;
        family = entry.Corpus.family;
        alg = s.Round.Solvers.name;
        tasks = n;
        rounds = k;
        lb;
        lb_kind;
        ratio = (if lb > 0 then Some (float_of_int k /. float_of_int lb) else None);
        feasible;
        bb_agrees;
        bb_nodes = out.Round.Exact.nodes;
      })
    Round.Solvers.all

(* ---------- aggregation ---------- *)

let distinct key ms =
  List.fold_left
    (fun acc m -> if List.mem (key m) acc then acc else acc @ [ key m ])
    [] ms

let summarise measurements =
  List.map
    (fun alg ->
      let ms = List.filter (fun m -> m.alg = alg) measurements in
      let ratios = List.filter_map (fun m -> Option.map (fun r -> (m, r)) m.ratio) ms in
      let worst =
        List.fold_left
          (fun acc (m, r) ->
            match acc with
            | Some (_, r') when r' >= r -> acc
            | _ -> Some (m, r))
          None ratios
      in
      {
        s_alg = alg;
        count = List.length ms;
        max_ratio = Option.map snd worst;
        mean_ratio =
          (match ratios with
          | [] -> None
          | _ ->
              Some
                (List.fold_left (fun a (_, r) -> a +. r) 0.0 ratios
                /. float_of_int (List.length ratios)));
        exact_lbs = List.length (List.filter (fun m -> m.lb_kind = "exact") ms);
        s_violations = List.length (List.filter violated ms);
        worst_file = Option.map (fun (m, _) -> m.file) worst;
      })
    (distinct (fun m -> m.alg) measurements)

let family_rows measurements =
  List.concat_map
    (fun family ->
      let fam = List.filter (fun m -> m.family = family) measurements in
      List.map
        (fun alg ->
          let ms = List.filter (fun m -> m.alg = alg) fam in
          {
            f_family = family;
            f_alg = alg;
            f_count = List.length ms;
            f_rounds = List.fold_left (fun a m -> a + m.rounds) 0 ms;
            f_lb = List.fold_left (fun a m -> a + m.lb) 0 ms;
            f_max_ratio =
              List.fold_left
                (fun acc m ->
                  match (acc, m.ratio) with
                  | Some a, Some r -> Some (Float.max a r)
                  | None, r -> r
                  | a, None -> a)
                None ms;
          })
        (distinct (fun m -> m.alg) fam))
    (distinct (fun m -> m.family) measurements)

let bands_competitive families =
  let totals alg f =
    List.find_opt (fun r -> r.f_family = f && r.f_alg = alg) families
  in
  let fams = distinct (fun r -> r.f_family) families in
  let comparable =
    List.filter_map
      (fun f ->
        match (totals "bands" f, totals "first-fit" f) with
        | Some b, Some ff -> Some (b.f_rounds, ff.f_rounds)
        | _ -> None)
      fams
  in
  comparable = [] || List.exists (fun (b, ff) -> b <= ff) comparable

let run ?max_nodes (t : Corpus.t) =
  Obs.Trace.with_span "round.lab.run" ~attrs:[ ("corpus", t.Corpus.dir) ]
  @@ fun () ->
  let measurements =
    List.concat_map
      (fun entry ->
        match entry.Corpus.kind with
        | Corpus.Path_kind | Corpus.Ring_kind -> []
        | Corpus.Round_kind -> (
            match Corpus.read t entry with
            | Error msg ->
                invalid_arg
                  (Printf.sprintf "Lab.Round_lab: corpus entry %s: %s"
                     entry.Corpus.file msg)
            | Ok (Corpus.Round_instance inst) -> run_entry ?max_nodes entry inst
            | Ok _ ->
                invalid_arg
                  (Printf.sprintf
                     "Lab.Round_lab: entry %s declared round, parsed otherwise"
                     entry.Corpus.file)))
      t.Corpus.entries
  in
  let violations = List.length (List.filter violated measurements) in
  let disagreements =
    List.length (List.filter (fun m -> m.bb_agrees = Some false) measurements)
  in
  for _ = 1 to violations do Obs.Metrics.incr c_violations done;
  for _ = 1 to disagreements do Obs.Metrics.incr c_disagreements done;
  let families = family_rows measurements in
  {
    corpus_dir = t.Corpus.dir;
    corpus_seed = t.Corpus.seed;
    measurements;
    summaries = summarise measurements;
    families;
    violations;
    disagreements;
    bands_competitive = bands_competitive families;
  }

let gate_failures r =
  List.concat
    [
      (if r.violations > 0 then
         [ Printf.sprintf "%d lower-bound/checker violations" r.violations ]
       else []);
      (if r.disagreements > 0 then
         [ Printf.sprintf "%d bb/brute disagreements" r.disagreements ]
       else []);
      (if not r.bands_competitive then
         [ "bands beats first-fit on no family" ]
       else []);
    ]

(* ---------- JSON ---------- *)

let measurement_json m =
  Json.Obj
    [
      ("file", Json.String m.file);
      ("family", Json.String m.family);
      ("alg", Json.String m.alg);
      ("tasks", Json.Int m.tasks);
      ("rounds", Json.Int m.rounds);
      ("lb", Json.Int m.lb);
      ("lb_kind", Json.String m.lb_kind);
      ("ratio", match m.ratio with Some r -> Json.Float r | None -> Json.Null);
      ("feasible", Json.Bool m.feasible);
      ( "bb_agrees",
        match m.bb_agrees with Some b -> Json.Bool b | None -> Json.Null );
      ("bb_nodes", Json.Int m.bb_nodes);
    ]

let summary_json s =
  Json.Obj
    [
      ("alg", Json.String s.s_alg);
      ("count", Json.Int s.count);
      ( "max_ratio",
        match s.max_ratio with Some r -> Json.Float r | None -> Json.Null );
      ( "mean_ratio",
        match s.mean_ratio with Some r -> Json.Float r | None -> Json.Null );
      ("exact_lbs", Json.Int s.exact_lbs);
      ("violations", Json.Int s.s_violations);
      ( "worst_file",
        match s.worst_file with Some f -> Json.String f | None -> Json.Null );
    ]

let family_json f =
  Json.Obj
    [
      ("family", Json.String f.f_family);
      ("alg", Json.String f.f_alg);
      ("count", Json.Int f.f_count);
      ("rounds", Json.Int f.f_rounds);
      ("lb", Json.Int f.f_lb);
      ( "max_ratio",
        match f.f_max_ratio with Some r -> Json.Float r | None -> Json.Null );
    ]

let report_json r =
  Json.Obj
    [
      ("schema", Json.String schema);
      ( "corpus",
        Json.Obj
          [
            ("dir", Json.String r.corpus_dir);
            ("seed", Json.Int r.corpus_seed);
            ("entries", Json.Int (List.length r.measurements));
          ] );
      ("measurements", Json.List (List.map measurement_json r.measurements));
      ("summary", Json.List (List.map summary_json r.summaries));
      ("families", Json.List (List.map family_json r.families));
      ("violations", Json.Int r.violations);
      ("disagreements", Json.Int r.disagreements);
      ("bands_competitive", Json.Bool r.bands_competitive);
    ]

let pp_summary ppf r =
  Format.fprintf ppf "corpus %s (seed %d): %d round measurements@."
    r.corpus_dir r.corpus_seed
    (List.length r.measurements);
  Format.fprintf ppf "%-10s %5s %9s %9s %6s %5s  %s@." "alg" "count" "max"
    "mean" "exact" "viol" "worst";
  List.iter
    (fun s ->
      let fo = function Some r -> Printf.sprintf "%.4f" r | None -> "-" in
      Format.fprintf ppf "%-10s %5d %9s %9s %6d %5d  %s@." s.s_alg s.count
        (fo s.max_ratio) (fo s.mean_ratio) s.exact_lbs s.s_violations
        (Option.value ~default:"-" s.worst_file))
    r.summaries;
  Format.fprintf ppf "@.%-16s %-10s %5s %7s %5s %9s@." "family" "alg" "count"
    "rounds" "lb" "max";
  List.iter
    (fun f ->
      let fo = function Some r -> Printf.sprintf "%.4f" r | None -> "-" in
      Format.fprintf ppf "%-16s %-10s %5d %7d %5d %9s@." f.f_family f.f_alg
        f.f_count f.f_rounds f.f_lb (fo f.f_max_ratio))
    r.families;
  if r.violations > 0 then
    Format.fprintf ppf "LB/CHECKER VIOLATIONS: %d@." r.violations;
  if r.disagreements > 0 then
    Format.fprintf ppf "BB/BRUTE DISAGREEMENTS: %d@." r.disagreements;
  if not r.bands_competitive then
    Format.fprintf ppf "BANDS UNCOMPETITIVE: beats first-fit on no family@."
