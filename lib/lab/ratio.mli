(** The empirical approximation-ratio pipeline.

    For every corpus instance, runs each applicable algorithm — small
    (Strip-Pack), medium (AlmostUniform), large (rectangle MWIS) and the
    Theorem-4 combination on its classified task subset for path
    instances; the Theorem-5 algorithm on rings — and measures
    [OPT / ALG] against the {!Exact_bb} optimum.

    When the branch and bound exhausts its node budget the row degrades
    gracefully: [opt] becomes the certified upper bound (root LP for
    paths, total weight for rings), tagged [bound_kind = Lp_opt], and the
    row is excluded from the violation gate — a ratio against an
    over-estimate of OPT proves nothing.  Rows whose subset also fits the
    brute-force oracles carry an independent [brute_agrees] cross-check.

    Bounds are instantiated at {!Sap.Combine.default_config}
    ([eps = 0.5], [k = 2]): [4 + eps], [2 + eps], [3], their sum for the
    combination (Lemma 3), and [1 + alpha + eps'] on rings (Lemma 18). *)

type bound_kind = Exact_opt | Lp_opt

val bound_kind_to_string : bound_kind -> string
(** ["exact"] / ["lp"] — the report and audit vocabulary. *)

type measurement = {
  file : string;
  family : string;
  alg : string;  (** small | medium | large | combine | ring *)
  subset_size : int;  (** tasks handed to the algorithm *)
  alg_weight : float;
  opt : float;  (** exact optimum, or certified upper bound *)
  bound_kind : bound_kind;
  ratio : float option;  (** [opt / alg_weight]; [None] if nothing scheduled *)
  bound : float;  (** the proven ratio bound for [alg] *)
  within_bound : bool;  (** always true for [Lp_opt] rows (ungated) *)
  brute_agrees : bool option;  (** brute-oracle cross-check, when it fits *)
  bb_nodes : int;
}

type summary_row = {
  s_alg : string;
  count : int;
  max_ratio : float option;  (** over exact-oracle rows only *)
  mean_ratio : float option;  (** over exact-oracle rows only *)
  exact_opts : int;
  lp_fallbacks : int;
  s_violations : int;
  worst_file : string option;
      (** the per-class worst instance among [Exact_opt] rows; an
          LP-bounded row is never ranked worst (its ratio is measured
          against an over-estimate of OPT) *)
}

type family_row = {
  f_family : string;
  f_alg : string;
  f_count : int;
  f_max_ratio : float option;  (** over exact-oracle rows only *)
  f_mean_ratio : float option;  (** over exact-oracle rows only *)
  f_exact_opts : int;
  f_violations : int;
}
(** One (corpus family, algorithm) cell of the breakdown — the aggregate
    summary hides which generator family produced the worst ratios, so
    the report also carries the full cross-tabulation. *)

type report = {
  corpus_dir : string;
  corpus_seed : int;
  measurements : measurement list;
  summaries : summary_row list;
  families : family_row list;
      (** per-(family, alg) breakdown, in first-seen corpus order *)
  violations : int;  (** exact-OPT rows exceeding their proven bound *)
  disagreements : int;  (** brute cross-checks that failed *)
}

val bounds : (string * float) list
(** Algorithm name to instantiated proven bound. *)

type path_alg = {
  pa_name : string;  (** small | medium | large | combine *)
  pa_bound : float;  (** the instantiated proven bound *)
  pa_subset : Core.Path.t -> Core.Task.t list -> Core.Task.t list;
      (** the classified task subset the algorithm is responsible for
          (identity for [combine]) *)
  pa_run : Core.Path.t -> Core.Task.t list -> Core.Solution.sap;
      (** the algorithm itself, at the lab's pinned configuration *)
}

val path_algs : path_alg list
(** The four path algorithms exactly as the pipeline measures them —
    {!Lab.Hunt} scores its candidates through these same runners, so a
    hunted ratio is the ratio the corpus gate will reproduce. *)

val ring_solve : Core.Ring.t -> Core.Ring.solution
(** The Theorem 5 ring algorithm at the lab's pinned configuration. *)

val run : ?max_nodes:int -> ?pool:Sap_server.Pool.t -> Corpus.t -> report
(** Solve every entry.  [max_nodes] and [pool] are forwarded to
    {!Exact_bb.solve}.  Raises [Invalid_argument] on an unreadable corpus
    entry (a corrupt corpus is a configuration error, not a data point). *)

val report_json : report -> Obs.Json.t
(** The [sap-ratio v1] document (docs/LAB.md). *)

val pp_summary : Format.formatter -> report -> unit
(** The per-algorithm table: count, max/mean ratio, bound, oracle kinds,
    worst instance. *)
