(** Versioned on-disk instance corpora for the ratio lab.

    A corpus is a directory holding one instance file per entry (the
    [sap-instance v1] / [ring-instance v1] carriers of
    {!Sap_io.Instance_io}) plus a [manifest.txt]:

    {v
    sap-corpus v1
    seed 42
    entry uniform-mixed-0.inst path uniform-mixed
    entry ring-uniform-0.inst ring ring-uniform
    ...
    v}

    Families mix the {!Gen} generator profiles with adversarial shapes:
    capacity staircases, demands pinned to the [delta * b] and
    [(1 - 2 beta) * b] classification boundaries, rings cut at their
    minimum-capacity edge, and a 40-task [bb-stress] family sized past
    {!Exact.Sap_brute.task_cap} that only {!Exact_bb} can certify.
    Generation is deterministic in the seed, so a committed manifest plus
    seed reproduces the corpus bit-for-bit. *)

val version : string
(** ["sap-corpus v1"]. *)

val manifest_file : string
(** ["manifest.txt"]. *)

type kind = Path_kind | Ring_kind | Round_kind

type entry = { file : string; kind : kind; family : string }

type t = { dir : string; seed : int; entries : entry list }

type instance =
  | Path_instance of Core.Path.t * Core.Task.t list
  | Ring_instance of Core.Ring.t
  | Round_instance of Round.Instance.t

val families : (string * kind) list
(** Every family the generator knows, with its instance kind. *)

val path_families : string list
(** The path-kind families, in [families] order — the task-mix profiles
    the load generator can draw from. *)

val round_families : string list
(** The ROUND-SAP families ([round-instance v1] carriers, kind [round]):
    uniform demands, power-of-two classes, just-over-half-capacity
    demands, staircase bottlenecks, and a tiny family sized under
    [Round.Exact.task_cap] for brute-force cross-checks.  Generators only
    emit tasks that fit alone — mandatory tasks that fit nowhere would
    make the instance unreadable ([Round.Instance.create] rejects it). *)

val sample_path :
  family:string -> prng:Util.Prng.t -> Core.Path.t * Core.Task.t list
(** Draw one in-memory instance from a path family (no disk involved;
    advances [prng], so repeated calls yield distinct instances).
    @raise Invalid_argument on an unknown or ring family. *)

val generate : dir:string -> seed:int -> ?variants:int -> unit -> t
(** [generate ~dir ~seed ()] creates the directory (and parents) if
    needed, writes [variants] (default 3) instances per family plus the
    manifest, and returns the corpus.  Per-family prng seeds depend on
    the family's position in {!families}, so appending families never
    changes the instances existing corpora were generated from. *)

val generate_round : dir:string -> seed:int -> ?variants:int -> unit -> t
(** [generate] restricted to the round families — what [sap_cli round
    lab gen] writes and the committed round corpus is built from. *)

(** {1 Churn traces}

    A churn trace is the input of an online-SAP session replay: one base
    instance plus a deterministic add/remove/resize event list, carried
    in the [sap-churn v1] text format:

    {v
    sap-churn v1
    seed 42
    steps 64
    capacities 4 4 8 8 16 16 32 32 64 64 128 128
    task 0 2 3 5 17.25
    ...
    event add 24 6 7 3 41.5
    event remove 7
    event resize 3 9
    v}

    [task] and [event add] lines share the instance-carrier field order
    (id, first edge, last edge, demand, weight).  A [resize] is replayed
    against a session as remove-then-add under the same id.  Generation
    is deterministic in the seed; the base path stacks two adjacent
    edges per capacity level (4..128), so the instance spans six
    bottleneck bands and a single-task event dirties exactly one. *)

val churn_version : string
(** ["sap-churn v1"]. *)

type churn_event =
  | Churn_add of Core.Task.t
  | Churn_remove of int  (** by task id *)
  | Churn_resize of int * int  (** task id, new demand *)

type churn = {
  churn_seed : int;
  churn_path : Core.Path.t;
  churn_base : Core.Task.t list;
  churn_events : churn_event list;
}

val generate_churn : seed:int -> steps:int -> churn
(** Deterministic in [seed]: a 24-task base instance and [steps] events
    (about half adds, the rest removes and resizes of live tasks).
    Fresh tasks get monotonically increasing ids, so an id is never
    reused after a remove.
    @raise Invalid_argument on negative [steps]. *)

val churn_to_string : churn -> string

val churn_of_string : string -> (churn, string) result
(** Rejects a header mismatch, malformed lines, tasks leaving the path,
    and a [steps] count disagreeing with the event lines. *)

val load : dir:string -> (t, string) result
(** Parse [dir]'s manifest (instance files are read lazily by {!read}). *)

val read : t -> entry -> (instance, string) result

val manifest_to_string : t -> string

val manifest_of_string : dir:string -> string -> (t, string) result

val kind_to_string : kind -> string
