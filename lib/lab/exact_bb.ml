module Task = Core.Task
module Path = Core.Path

type outcome = {
  solution : Core.Solution.sap;
  value : float;
  upper_bound : float;
  optimal : bool;
  nodes : int;
}

let c_nodes = Obs.Metrics.counter "lab.bb.nodes"

let c_lp_cuts = Obs.Metrics.counter "lab.bb.lp_cuts"

let c_memo_cuts = Obs.Metrics.counter "lab.bb.memo_cuts"

let c_budget_exhausted = Obs.Metrics.counter "lab.bb.budget_exhausted"

let default_max_nodes = 20_000_000

(* Weight density: value per unit of consumed area (demand x span).
   Branching on dense tasks first makes the greedy dive a strong incumbent
   and the residual-weight suffix a tight optimistic bound.  Shape
   tie-breaks keep interchangeable tasks adjacent for the symmetry cut. *)
let density (j : Task.t) =
  j.Task.weight /. float_of_int (j.Task.demand * Task.span j)

let search_order (x : Task.t) (y : Task.t) =
  let c = Float.compare (density y) (density x) in
  if c <> 0 then c
  else
    let c = Int.compare x.Task.first_edge y.Task.first_edge in
    if c <> 0 then c
    else
      let c = Int.compare x.Task.last_edge y.Task.last_edge in
      if c <> 0 then c
      else
        let c = Int.compare x.Task.demand y.Task.demand in
        if c <> 0 then c
        else
          let c = Float.compare y.Task.weight x.Task.weight in
          if c <> 0 then c else Int.compare x.Task.id y.Task.id

let identical (x : Task.t) (y : Task.t) =
  x.Task.first_edge = y.Task.first_edge
  && x.Task.last_edge = y.Task.last_edge
  && x.Task.demand = y.Task.demand
  && Float.equal x.Task.weight y.Task.weight

let conflicts (j : Task.t) p ((i : Task.t), hi) =
  Task.overlaps j i && p < hi + i.Task.demand && hi < p + j.Task.demand

(* ---------- shared search state (one search, possibly many domains) ---- *)

(* The incumbent is shared through an Atomic holding an immutable pair;
   CAS-loop updates keep concurrent subtree workers lost-update-free.  The
   node counter doubles as the budget: it only ever grows, so once it
   crosses [max_nodes] every worker winds down deterministically. *)
type shared = {
  best : (float * Core.Solution.sap) Atomic.t;
  spent : int Atomic.t;
  max_nodes : int;
  exhausted : bool Atomic.t;
}

let update_best shared w sol =
  let rec go () =
    let ((bw, _) as cur) = Atomic.get shared.best in
    if w > bw && not (Atomic.compare_and_set shared.best cur (w, sol)) then go ()
  in
  go ()

exception Out_of_budget

let charge_node shared =
  Obs.Metrics.incr c_nodes;
  if Atomic.fetch_and_add shared.spent 1 >= shared.max_nodes then begin
    if not (Atomic.exchange shared.exhausted true) then
      Obs.Metrics.incr c_budget_exhausted;
    raise Out_of_budget
  end

(* ---------- the search proper ---------- *)

type ctx = {
  path : Path.t;
  a : Task.t array;  (* search order *)
  suffix : float array;
  candidates : int list;  (* gravity heights: bounded subset sums *)
  slack : int array;  (* slack.(i) = b(a_i) - d(a_i): max feasible height *)
  shared : shared;
  memo : (string, float) Hashtbl.t;
  memo_cap : int;
  lp_depth : int;  (* residual-LP bound computed at depths < lp_depth *)
  lp_min_remaining : int;
}

type prev_choice = Free | Skipped | Placed_at of int

(* Occupancy signature: task index plus, per edge, the sorted occupied
   vertical intervals.  Two states agreeing on both have identical
   feasible completions over the identical remaining-task suffix, so the
   lower-weight one is dominated — this also collapses permutations of
   interchangeable placements that the adjacency cut cannot see. *)
let signature ctx i placed =
  let m = Path.num_edges ctx.path in
  let per_edge = Array.make m [] in
  List.iter
    (fun ((j : Task.t), h) ->
      for e = j.Task.first_edge to j.Task.last_edge do
        per_edge.(e) <- (h, h + j.Task.demand) :: per_edge.(e)
      done)
    placed;
  let buf = Buffer.create 64 in
  Buffer.add_string buf (string_of_int i);
  Array.iteri
    (fun e ivs ->
      match List.sort compare ivs with
      | [] -> ()
      | ivs ->
          Buffer.add_char buf '|';
          Buffer.add_string buf (string_of_int e);
          List.iter
            (fun (lo, hi) ->
              Buffer.add_char buf ':';
              Buffer.add_string buf (string_of_int lo);
              Buffer.add_char buf '-';
              Buffer.add_string buf (string_of_int hi))
            ivs)
    per_edge;
  Buffer.contents buf

let residual_loads ctx placed =
  let m = Path.num_edges ctx.path in
  let res = Array.init m (fun e -> Path.capacity ctx.path e) in
  List.iter
    (fun ((j : Task.t), _) ->
      for e = j.Task.first_edge to j.Task.last_edge do
        res.(e) <- res.(e) - j.Task.demand
      done)
    placed;
  res

let remaining_tasks ctx i =
  let rec go k acc = if k < i then acc else go (k - 1) (ctx.a.(k) :: acc) in
  go (Array.length ctx.a - 1) []

(* Depth-first take/skip search from task [i].  [depth] counts branching
   decisions on the current path (the frontier hand-off resets it), and
   gates the residual-LP bound to the top of the tree where it pays. *)
let rec branch ctx i placed w depth prev =
  charge_node ctx.shared;
  update_best ctx.shared w placed;
  let n = Array.length ctx.a in
  if i < n then begin
    let bw, _ = Atomic.get ctx.shared.best in
    if w +. ctx.suffix.(i) > bw +. 1e-9 then begin
      let dominated =
        let key = signature ctx i placed in
        match Hashtbl.find_opt ctx.memo key with
        | Some w' when w' >= w -. 1e-12 ->
            Obs.Metrics.incr c_memo_cuts;
            true
        | _ ->
            if Hashtbl.length ctx.memo < ctx.memo_cap then
              Hashtbl.replace ctx.memo key w;
            false
      in
      if not dominated then begin
        let lp_cut =
          depth < ctx.lp_depth
          && n - i >= ctx.lp_min_remaining
          &&
          let res = residual_loads ctx placed in
          let ub =
            Lp.Ufpp_lp.upper_bound_residual ctx.path ~residual:res
              (remaining_tasks ctx i)
          in
          let bw, _ = Atomic.get ctx.shared.best in
          if w +. ub <= bw +. 1e-9 then begin
            Obs.Metrics.incr c_lp_cuts;
            true
          end
          else false
        in
        if not lp_cut then begin
          let j = ctx.a.(i) in
          let constr =
            if i > 0 && identical ctx.a.(i - 1) j then prev else Free
          in
          (match constr with
          | Skipped -> ()
          | Free | Placed_at _ ->
              let floor_h = match constr with Placed_at h -> h | _ -> 0 in
              List.iter
                (fun p ->
                  if
                    p >= floor_h && p <= ctx.slack.(i)
                    && not (List.exists (conflicts j p) placed)
                  then
                    branch ctx (i + 1) ((j, p) :: placed)
                      (w +. j.Task.weight)
                      (depth + 1) (Placed_at p))
                ctx.candidates);
          branch ctx (i + 1) placed w (depth + 1) Skipped
        end
      end
    end
  end

(* ---------- incumbent ---------- *)

(* Greedy gravity dive: walk the tasks in density order, dropping each to
   its lowest free position if any.  Cheap, feasible by construction, and
   usually within a few percent — a strong initial lower bound. *)
let gravity_incumbent path a =
  Array.fold_left
    (fun placed j ->
      match Core.Gravity.lowest_free_position path placed j with
      | Some h -> (j, h) :: placed
      | None -> placed)
    [] a

(* ---------- frontier fan-out ---------- *)

type node = { n_i : int; n_placed : Core.Solution.sap; n_w : float; n_prev : prev_choice }

(* Expand the shallowest open node breadth-first until there is enough
   independent work to feed the pool.  Children are emitted in the same
   order the sequential search would visit them, so with one worker the
   exploration order (and therefore the node count) matches sequential
   search modulo incumbent timing. *)
let expand_frontier ctx target =
  let n = Array.length ctx.a in
  let rec grow frontier =
    if List.length frontier >= target then frontier
    else
      match
        List.partition (fun nd -> nd.n_i < n) frontier |> function
        | [], _ -> None
        | open_ :: rest_open, closed -> Some (open_, rest_open @ closed)
      with
      | None -> frontier
      | Some (nd, rest) ->
          let j = ctx.a.(nd.n_i) in
          let constr =
            if nd.n_i > 0 && identical ctx.a.(nd.n_i - 1) j then nd.n_prev
            else Free
          in
          let children = ref [] in
          (match constr with
          | Skipped -> ()
          | Free | Placed_at _ ->
              let floor_h = match constr with Placed_at h -> h | _ -> 0 in
              List.iter
                (fun p ->
                  if
                    p >= floor_h && p <= ctx.slack.(nd.n_i)
                    && not (List.exists (conflicts j p) nd.n_placed)
                  then
                    children :=
                      {
                        n_i = nd.n_i + 1;
                        n_placed = (j, p) :: nd.n_placed;
                        n_w = nd.n_w +. j.Task.weight;
                        n_prev = Placed_at p;
                      }
                      :: !children)
                ctx.candidates);
          let skip =
            { n_i = nd.n_i + 1; n_placed = nd.n_placed; n_w = nd.n_w;
              n_prev = Skipped }
          in
          let children = List.rev (skip :: !children) in
          List.iter (fun c -> update_best ctx.shared c.n_w c.n_placed) children;
          grow (rest @ children)
  in
  grow [ { n_i = 0; n_placed = []; n_w = 0.0; n_prev = Free } ]

(* ---------- driver ---------- *)

let solve ?(max_nodes = default_max_nodes) ?(lp_depth = 10)
    ?(lp_min_remaining = 5) ?pool path ts =
  Obs.Trace.with_span "lab.bb.solve"
    ~attrs:[ ("tasks", string_of_int (List.length ts)) ]
  @@ fun () ->
  let ts =
    List.filter (fun (j : Task.t) -> j.Task.demand <= Path.bottleneck_of path j) ts
  in
  let a = Array.of_list ts in
  Array.sort search_order a;
  let n = Array.length a in
  let suffix = Array.make (n + 1) 0.0 in
  for i = n - 1 downto 0 do
    suffix.(i) <- suffix.(i + 1) +. a.(i).Task.weight
  done;
  let slack = Array.map (fun j -> Path.bottleneck_of path j - j.Task.demand) a in
  let max_slack = Array.fold_left max 0 (if n = 0 then [| 0 |] else slack) in
  let demands = List.map (fun (j : Task.t) -> j.Task.demand) ts in
  let candidates = Util.Subset_sum.distinct_sums ~bound:(max_slack + 1) demands in
  let incumbent = gravity_incumbent path a in
  let shared =
    {
      best = Atomic.make (Core.Solution.sap_weight incumbent, incumbent);
      spent = Atomic.make 0;
      max_nodes;
      exhausted = Atomic.make false;
    }
  in
  let root_lp = Lp.Ufpp_lp.upper_bound path ts in
  let mk_ctx () =
    {
      path;
      a;
      suffix;
      candidates;
      slack;
      shared;
      memo = Hashtbl.create 4096;
      memo_cap = 1_000_000;
      lp_depth;
      lp_min_remaining;
    }
  in
  let run_subtree nd =
    let ctx = mk_ctx () in
    match branch ctx nd.n_i nd.n_placed nd.n_w 0 nd.n_prev with
    | () -> ()
    | exception Out_of_budget -> ()
  in
  (match pool with
  | None -> run_subtree { n_i = 0; n_placed = []; n_w = 0.0; n_prev = Free }
  | Some pool ->
      let ctx = mk_ctx () in
      let frontier = expand_frontier ctx (4 * Sap_server.Pool.workers pool) in
      ignore (Sap_server.Pool.map pool run_subtree frontier));
  let value, solution = Atomic.get shared.best in
  let optimal = not (Atomic.get shared.exhausted) in
  let upper_bound = if optimal then value else Float.min root_lp suffix.(0) in
  Obs.Trace.add_attr "nodes" (string_of_int (Atomic.get shared.spent));
  Obs.Trace.add_attr "optimal" (string_of_bool optimal);
  {
    solution = Core.Solution.sort_by_id solution;
    value;
    upper_bound;
    optimal;
    nodes = Atomic.get shared.spent;
  }

let value path ts = (solve path ts).value

(* ---------- rings ---------- *)

module Ring = Core.Ring

type ring_outcome = {
  ring_solution : Ring.solution;
  ring_value : float;
  ring_optimal : bool;
  ring_nodes : int;
}

(* Branch and bound over (subset, routing, heights): Ring_brute's search
   strengthened with density ordering, a greedy incumbent, the dominated-
   state memo and a node budget.  No LP here — the ring has no capacity
   relaxation wired up — so the optimistic bound is the weight suffix. *)
let solve_ring ?(max_nodes = default_max_nodes) (r : Ring.t) =
  let m = Ring.num_edges r in
  let caps = r.Ring.capacities in
  let tasks = Array.copy r.Ring.tasks in
  let span_of (t : Ring.task) dir =
    List.length (Ring.edges_of_route ~m ~src:t.Ring.src ~dst:t.Ring.dst dir)
  in
  let rdensity (t : Ring.task) =
    let shortest = min (span_of t Ring.Cw) (span_of t Ring.Ccw) in
    t.Ring.weight /. float_of_int (t.Ring.demand * max 1 shortest)
  in
  Array.sort
    (fun (a : Ring.task) b ->
      let c = Float.compare (rdensity b) (rdensity a) in
      if c <> 0 then c
      else
        let c = Int.compare a.Ring.src b.Ring.src in
        if c <> 0 then c
        else
          let c = Int.compare a.Ring.dst b.Ring.dst in
          if c <> 0 then c
          else
            let c = Int.compare a.Ring.demand b.Ring.demand in
            if c <> 0 then c else Int.compare a.Ring.id b.Ring.id)
    tasks;
  let n = Array.length tasks in
  let suffix = Array.make (n + 1) 0.0 in
  for i = n - 1 downto 0 do
    suffix.(i) <- suffix.(i + 1) +. tasks.(i).Ring.weight
  done;
  let bound = Array.fold_left max 0 caps in
  let demands = Array.to_list tasks |> List.map (fun (t : Ring.task) -> t.Ring.demand) in
  let candidates = Util.Subset_sum.distinct_sums ~bound demands in
  let conflicts (edges : int list) p d (edges', p', d') =
    p < p' + d' && p' < p + d
    && List.exists (fun e -> List.mem e edges') edges
  in
  let placeable edges p d placed =
    List.for_all (fun e -> p + d <= caps.(e)) edges
    && not (List.exists (conflicts edges p d) placed)
  in
  let identical (a : Ring.task) (b : Ring.task) =
    a.Ring.src = b.Ring.src && a.Ring.dst = b.Ring.dst
    && a.Ring.demand = b.Ring.demand
    && Float.equal a.Ring.weight b.Ring.weight
  in
  let dir_rank = function Ring.Cw -> 0 | Ring.Ccw -> 1 in
  let memo : (string, float) Hashtbl.t = Hashtbl.create 4096 in
  let memo_cap = 1_000_000 in
  let signature i placed =
    let per_edge = Array.make m [] in
    List.iter
      (fun (edges, p, d) ->
        List.iter (fun e -> per_edge.(e) <- (p, p + d) :: per_edge.(e)) edges)
      placed;
    let buf = Buffer.create 64 in
    Buffer.add_string buf (string_of_int i);
    Array.iteri
      (fun e ivs ->
        match List.sort compare ivs with
        | [] -> ()
        | ivs ->
            Buffer.add_char buf '|';
            Buffer.add_string buf (string_of_int e);
            List.iter
              (fun (lo, hi) ->
                Buffer.add_char buf ':';
                Buffer.add_string buf (string_of_int lo);
                Buffer.add_char buf '-';
                Buffer.add_string buf (string_of_int hi))
              ivs)
      per_edge;
    Buffer.contents buf
  in
  let best = ref [] in
  let best_w = ref 0.0 in
  (* Greedy incumbent: tasks in density order, each dropped at the lowest
     candidate position over whichever route admits the lower one. *)
  let greedy_occ = ref [] in
  Array.iter
    (fun (tk : Ring.task) ->
      let try_dir dir =
        let edges = Ring.edges_of_route ~m ~src:tk.Ring.src ~dst:tk.Ring.dst dir in
        let rec first = function
          | [] -> None
          | p :: rest ->
              if placeable edges p tk.Ring.demand !greedy_occ then
                Some (p, dir, edges)
              else first rest
        in
        first candidates
      in
      let choice =
        match (try_dir Ring.Cw, try_dir Ring.Ccw) with
        | (Some _ as c), None | None, (Some _ as c) -> c
        | (Some (p1, _, _) as c1), (Some (p2, _, _) as c2) ->
            if p1 <= p2 then c1 else c2
        | None, None -> None
      in
      match choice with
      | Some (p, dir, edges) ->
          best := (tk, p, dir) :: !best;
          best_w := !best_w +. tk.Ring.weight;
          greedy_occ := (edges, p, tk.Ring.demand) :: !greedy_occ
      | None -> ())
    tasks;
  let nodes = ref 0 in
  let exhausted = ref false in
  let exception Budget in
  let rec branch i placed sol w prev =
    incr nodes;
    Obs.Metrics.incr c_nodes;
    if !nodes > max_nodes then begin
      if not !exhausted then begin
        exhausted := true;
        Obs.Metrics.incr c_budget_exhausted
      end;
      raise Budget
    end;
    if w > !best_w then begin
      best_w := w;
      best := sol
    end;
    if i < n && w +. suffix.(i) > !best_w +. 1e-9 then begin
      let key = signature i placed in
      let dominated =
        match Hashtbl.find_opt memo key with
        | Some w' when w' >= w -. 1e-12 ->
            Obs.Metrics.incr c_memo_cuts;
            true
        | _ ->
            if Hashtbl.length memo < memo_cap then Hashtbl.replace memo key w;
            false
      in
      if not dominated then begin
        let tk = tasks.(i) in
        let constr = if i > 0 && identical tasks.(i - 1) tk then prev else `Free in
        (match constr with
        | `Skipped -> ()
        | `Free | `Chose _ ->
            let admissible (dir, p) =
              match constr with
              | `Chose (d0, p0) ->
                  dir_rank d0 < dir_rank dir
                  || (dir_rank d0 = dir_rank dir && p0 <= p)
              | _ -> true
            in
            let try_route dir =
              let edges =
                Ring.edges_of_route ~m ~src:tk.Ring.src ~dst:tk.Ring.dst dir
              in
              List.iter
                (fun p ->
                  if admissible (dir, p) && placeable edges p tk.Ring.demand placed
                  then
                    branch (i + 1)
                      ((edges, p, tk.Ring.demand) :: placed)
                      ((tk, p, dir) :: sol)
                      (w +. tk.Ring.weight)
                      (`Chose (dir, p)))
                candidates
            in
            try_route Ring.Cw;
            try_route Ring.Ccw);
        branch (i + 1) placed sol w `Skipped
      end
    end
  in
  (match branch 0 [] [] 0.0 `Free with () -> () | exception Budget -> ());
  {
    ring_solution = !best;
    ring_value = Ring.solution_weight !best;
    ring_optimal = not !exhausted;
    ring_nodes = !nodes;
  }
