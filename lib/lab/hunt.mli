(** The adversarial instance hunt: evolutionary search for instances that
    maximize [OPT / ALG] per algorithm.

    The measured worst ratios of the corpus sit far below the proven
    constants (combine 2.8 vs 10, ring 1.4 vs 11.1).  The hunt closes
    that gap from below: a (mu + lambda)-style evolutionary loop over
    instances whose mutation operators ({!Gen.Perturb}) are aimed at the
    paper's structural seams — demands nudged across the [delta * b(j)]
    and [(1 - 2 beta) * b(j)] classification thresholds, bottleneck edges
    tightened, tasks duplicated (feeding the oracle's symmetry cut) or
    split, weights jittered, spans shifted.

    Candidates are scored through the exact same per-algorithm runners
    the ratio pipeline uses ({!Ratio.path_algs} / {!Ratio.ring_solve}),
    so a hunted ratio is precisely what `lab run` will reproduce once the
    instance is frozen into the corpus.  The oracle is {!Exact_bb} under
    a per-candidate node budget; when the budget exhausts, the score
    degrades to the certified lower bound [incumbent / ALG] (sound — the
    incumbent weight never exceeds OPT) and the candidate is barred from
    the hall of fame, which admits only exact-certified ratios.

    Determinism: one integer seed drives everything.  Mutation streams
    are {!Util.Prng.jump}/[split]-derived per (generation, slot) in the
    main thread; candidate evaluation is pure and fans out over an
    optional {!Sap_server.Pool} with order-preserving collection, so a
    pooled run returns bit-identical results to a sequential one. *)

type config = {
  alg : string;  (** small | medium | large | combine | ring *)
  seed : int;
  generations : int;
  population : int;  (** candidates evaluated per generation *)
  max_nodes : int;  (** {!Exact_bb} node budget per candidate evaluation *)
  hof_size : int;  (** hall-of-fame capacity *)
  max_tasks : int;  (** growth cap for duplicate/split mutations *)
}

val default_config : config
(** [alg = "combine"], seed 42, 8 generations of 16, 200k-node budget,
    hall of fame of 5, at most 12 tasks per candidate. *)

val algs : string list
(** The huntable algorithm names (the {!Ratio} vocabulary). *)

type scored = {
  instance : Corpus.instance;
  ratio : float;
      (** certified: [OPT / ALG] when [exact], else the sound lower bound
          [incumbent / ALG] *)
  exact : bool;  (** the branch and bound closed within budget *)
  opt : float;  (** exact optimum, or certified upper bound on it *)
  alg_weight : float;
  bb_nodes : int;
  born : int;  (** generation the candidate first appeared in *)
  op : string;  (** {!Gen.Perturb.op_name} that produced it; ["seed"] for
                    generation-0 candidates and fallback reseeds *)
}

type generation_log = {
  g_index : int;
  g_best : float;  (** best exact-certified ratio found so far (monotone) *)
  g_evaluated : int;
  g_hof_size : int;
}

type op_stat = { os_name : string; applied : int; improved : int }
(** Mutation-operator attribution: how often the operator was applied and
    how often its mutant strictly beat its parent's ratio. *)

type report = {
  r_config : config;
  r_bound : float;  (** the proven bound the hunted ratios chase *)
  hall_of_fame : scored list;  (** ratio-descending; exact-certified only *)
  log : generation_log list;  (** one entry per generation, index order *)
  op_stats : op_stat list;
  evaluated : int;
  exact_scores : int;
  lp_fallbacks : int;  (** evaluations that exhausted the node budget *)
}

val run : ?pool:Sap_server.Pool.t -> config -> report
(** Run the hunt.  Deterministic in [config] (with or without [pool]).
    Raises [Invalid_argument] on an unknown [config.alg] or non-positive
    sizes. *)

val report_json : report -> Obs.Json.t
(** The [sap-hunt v1] document (docs/FORMAT.md). *)

val write_hof : dir:string -> report -> string list
(** Write each hall-of-fame instance to [dir] (created if missing) as
    [hunt-hof-<alg>-<rank>.inst] in the {!Sap_io.Instance_io} carrier;
    returns the file names written, rank order. *)

val pp_summary : Format.formatter -> report -> unit
(** Per-generation progress, operator attribution and the hall of fame. *)
