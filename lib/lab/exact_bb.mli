(** LP-pruned branch-and-bound exact SAP solver.

    The lab's oracle for instances the exhaustive {!Exact.Sap_brute}
    cannot touch.  Same search skeleton — take/skip each task, heights
    drawn from the bounded subset sums of demands (complete by the gravity
    argument, Observation 11) — but with four accelerants:

    - {b density ordering}: tasks sorted by weight per unit of consumed
      area (demand x span), so a greedy dive yields a strong incumbent and
      the residual weight suffix stays tight;
    - {b residual LP pruning}: near the root the UFPP relaxation over the
      remaining tasks, with capacities reduced by the placed load
      ({!Lp.Ufpp_lp.upper_bound_residual}), bounds the attainable extra
      weight — valid because any SAP extension is UFPP-feasible under the
      residuals;
    - {b dominated-state memoization}: states agreeing on (next task
      index, per-edge occupied vertical intervals) have identical feasible
      completions, so only the heaviest is expanded;
    - {b symmetry cut}: interchangeable tasks (same interval, demand and
      weight) are canonicalised to non-decreasing heights with no
      placement after a skip, as in {!Exact.Sap_brute}.

    Optionally fans the search frontier over a {!Sap_server.Pool}; workers
    share the incumbent through an atomic, so pruning tightens globally.
    A node budget turns the solver into an anytime bound: when exhausted,
    [value] is the best incumbent and [upper_bound] a certified LP bound. *)

type outcome = {
  solution : Core.Solution.sap;  (** best solution found *)
  value : float;  (** its weight *)
  upper_bound : float;
      (** certified upper bound on OPT; equals [value] iff [optimal] *)
  optimal : bool;  (** the search ran to completion within budget *)
  nodes : int;  (** branch-and-bound nodes expanded *)
}

val default_max_nodes : int

val solve :
  ?max_nodes:int ->
  ?lp_depth:int ->
  ?lp_min_remaining:int ->
  ?pool:Sap_server.Pool.t ->
  Core.Path.t ->
  Core.Task.t list ->
  outcome
(** [solve p ts] computes a maximum-weight feasible SAP solution, or —
    past [max_nodes] expanded nodes (default {!default_max_nodes}) — the
    best incumbent with [optimal = false] and a root-LP upper bound.  The
    residual LP is priced only at branching depth [< lp_depth] (default
    10) with at least [lp_min_remaining] (default 5) tasks left, where it
    prunes whole subtrees; deeper nodes rely on the O(1) suffix bound.
    With [?pool] the top of the tree is expanded breadth-first and the
    subtrees solved on the pool's domains.  Tasks that fit nowhere
    ([d_j > b(j)]) are dropped up front. *)

val value : Core.Path.t -> Core.Task.t list -> float
(** [(solve p ts).value]. *)

type ring_outcome = {
  ring_solution : Core.Ring.solution;
  ring_value : float;
  ring_optimal : bool;
  ring_nodes : int;
}

val solve_ring : ?max_nodes:int -> Core.Ring.t -> ring_outcome
(** Ring analogue branching over (subset, routing, heights) as
    {!Exact.Ring_brute} does, with the density ordering, greedy incumbent,
    dominated-state memo and node budget (no LP — the bound past the
    incumbent is the weight suffix).  Sequential. *)
