module P = Sap_server.Protocol

type config = {
  rps : float;
  duration : float;
  connections : int;
  profile : string;
  distinct : int;
  algorithm : string;
  seed : int;
  timeout_ms : int option;
  cache : bool;
  scrape_stats : bool;
}

let default_config =
  {
    rps = 50.0;
    duration = 2.0;
    connections = 4;
    profile = "uniform-mixed";
    distinct = 32;
    algorithm = "combine";
    seed = 42;
    timeout_ms = None;
    cache = true;
    scrape_stats = true;
  }

type report = {
  r_config : config;
  offered_rps : float;
  achieved_rps : float;
  elapsed : float;
  sent : int;
  completed : int;
  solved : int;
  cached : int;
  timeouts : int;
  errors : int;
  lost : int;
  latency : Obs.Metrics.histogram_summary;
  send_lag : Obs.Metrics.histogram_summary;
  protocol_errors : string list;
  server_stats : Obs.Json.t option;
}

(* Per-request outcome codes; each cell is written by exactly one reader
   domain (ids are partitioned round-robin across connections) and read
   only after that domain is joined. *)
let st_pending = 0
let st_solved = 1
let st_cached = 2
let st_timeout = 3
let st_error = 4
let st_unsent = 5

let now () = Obs.Clock.monotonic_seconds ()

let build_mix cfg =
  let prng = Util.Prng.create cfg.seed in
  Array.init (max 1 cfg.distinct) (fun _ ->
      Corpus.sample_path ~family:cfg.profile ~prng)

let validate cfg =
  if not (List.mem cfg.profile Corpus.path_families) then
    Error
      (Printf.sprintf "unknown profile %S (have: %s)" cfg.profile
         (String.concat ", " Corpus.path_families))
  else if cfg.rps <= 0.0 then Error "rps must be positive"
  else if cfg.duration <= 0.0 then Error "duration must be positive"
  else if cfg.connections < 1 then Error "connections must be >= 1"
  else Ok ()

let n_requests cfg =
  let n = int_of_float (Float.round (cfg.rps *. cfg.duration)) in
  if n < 1 then 1 else n

let params_of cfg =
  {
    P.algorithm = cfg.algorithm;
    seed = cfg.seed;
    timeout_ms = cfg.timeout_ms;
    cache = cfg.cache;
  }

let summarize cfg ~t0 ~sched ~send_t ~done_t ~status ~protocol_errors
    ~server_stats =
  let n = Array.length status in
  let sent = ref 0
  and completed = ref 0
  and solved = ref 0
  and cached = ref 0
  and timeouts = ref 0
  and errors = ref 0 in
  let latencies = ref [] and lags = ref [] in
  let last_done = ref t0 in
  for k = 0 to n - 1 do
    if status.(k) <> st_unsent then begin
      incr sent;
      if not (Float.is_nan send_t.(k)) then
        lags := Float.max 0.0 (send_t.(k) -. sched.(k)) :: !lags;
      if status.(k) <> st_pending then begin
        incr completed;
        if done_t.(k) > !last_done then last_done := done_t.(k);
        latencies := Float.max 0.0 (done_t.(k) -. sched.(k)) :: !latencies;
        if status.(k) = st_solved then incr solved
        else if status.(k) = st_cached then incr cached
        else if status.(k) = st_timeout then incr timeouts
        else incr errors
      end
    end
  done;
  let elapsed = Float.max 1e-9 (!last_done -. t0) in
  {
    r_config = cfg;
    offered_rps = cfg.rps;
    achieved_rps = float_of_int !completed /. elapsed;
    elapsed;
    sent = !sent;
    completed = !completed;
    solved = !solved;
    cached = !cached;
    timeouts = !timeouts;
    errors = !errors;
    lost = !sent - !completed;
    latency = Obs.Metrics.summary_of_values (Array.of_list !latencies);
    send_lag = Obs.Metrics.summary_of_values (Array.of_list !lags);
    protocol_errors;
    server_stats;
  }

(* One extra connection mid-run: send a [stats] frame, keep the parsed
   snapshot.  Proves the live scrape works while solves are in flight. *)
let scrape connect errs errs_lock =
  match connect () with
  | Error m ->
      Mutex.lock errs_lock;
      errs := ("stats scrape: " ^ m) :: !errs;
      Mutex.unlock errs_lock;
      None
  | Ok fd ->
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let result =
        try
          output_string oc (P.request_to_string (P.Stats { id = 0 }));
          flush oc;
          (try Unix.shutdown fd Unix.SHUTDOWN_SEND
           with Unix.Unix_error _ -> ());
          let read_line () =
            try Some (input_line ic) with End_of_file -> None
          in
          match P.read_frame ~read_line with
          | None -> Error "stats scrape: connection closed before reply"
          | Some lines -> (
              match P.response_of_lines ~tasks_for:(fun _ -> None) lines with
              | Ok (P.Stats_reply { stats; _ }) -> Ok stats
              | Ok _ -> Error "stats scrape: unexpected response"
              | Error m -> Error ("stats scrape: " ^ m))
        with Sys_error m -> Error ("stats scrape: " ^ m)
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      (match result with
      | Ok stats -> Some stats
      | Error m ->
          Mutex.lock errs_lock;
          errs := m :: !errs;
          Mutex.unlock errs_lock;
          None)

let run ~connect cfg =
  match validate cfg with
  | Error _ as e -> e
  | Ok () -> (
      let mix = build_mix cfg in
      let distinct = Array.length mix in
      let n = n_requests cfg in
      let nconn = min cfg.connections n in
      let params = params_of cfg in
      let rec open_conns acc i =
        if i = nconn then Ok (Array.of_list (List.rev acc))
        else
          match connect () with
          | Ok fd -> open_conns (fd :: acc) (i + 1)
          | Error m ->
              List.iter
                (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
                acc;
              Error (Printf.sprintf "connection %d: %s" i m)
      in
      match open_conns [] 0 with
      | Error _ as e -> e
      | Ok fds ->
          let ics = Array.map Unix.in_channel_of_descr fds in
          let ocs = Array.map Unix.out_channel_of_descr fds in
          let sched = Array.make n Float.nan in
          let send_t = Array.make n Float.nan in
          let done_t = Array.make n Float.nan in
          let status = Array.make n st_pending in
          let errs = ref [] in
          let errs_lock = Mutex.create () in
          let record_err m =
            Mutex.lock errs_lock;
            errs := m :: !errs;
            Mutex.unlock errs_lock
          in
          let tasks_for id =
            if id >= 0 && id < n then Some (snd mix.(id mod distinct)) else None
          in
          (* Reader domains: one per connection, collecting responses until
             the server finishes the stream (it half-closes after answering
             everything we sent, because we half-close the send side). *)
          let readers =
            Array.map
              (fun ic ->
                Domain.spawn (fun () ->
                    let read_line () =
                      try Some (input_line ic) with End_of_file -> None
                    in
                    let rec loop () =
                      match P.read_frame ~read_line with
                      | None -> ()
                      | Some lines ->
                          (match P.response_of_lines ~tasks_for lines with
                          | Error m -> record_err ("bad response frame: " ^ m)
                          | Ok resp -> (
                              let id = P.response_id resp in
                              if id < 0 || id >= n then
                                record_err
                                  (Printf.sprintf "response for unknown id %d" id)
                              else begin
                                done_t.(id) <- now ();
                                status.(id) <-
                                  (match resp with
                                  | P.Solved { summary; _ } ->
                                      if summary.P.cached then st_cached
                                      else st_solved
                                  | P.Timed_out _ -> st_timeout
                                  | _ -> st_error)
                              end));
                          loop ()
                    in
                    loop ()))
              ics
          in
          (* Pacing domain: open-loop sender.  Arrival k is scheduled at
             t0 + k/rps regardless of how long earlier requests take —
             latency is measured from the schedule, so queueing delay
             (coordinated omission) is charged to the server, not hidden. *)
          let t0 = now () +. 0.02 in
          let pacer =
            Domain.spawn (fun () ->
                let dead = Array.make nconn false in
                for k = 0 to n - 1 do
                  let target = t0 +. (float_of_int k /. cfg.rps) in
                  let wait = target -. now () in
                  if wait > 0.0 then Unix.sleepf wait;
                  sched.(k) <- target;
                  let c = k mod nconn in
                  if dead.(c) then status.(k) <- st_unsent
                  else begin
                    let path, tasks = mix.(k mod distinct) in
                    match
                      output_string ocs.(c)
                        (P.request_to_string
                           (P.Solve { id = k; params; path; tasks }));
                      flush ocs.(c)
                    with
                    | () -> send_t.(k) <- now ()
                    | exception Sys_error m ->
                        dead.(c) <- true;
                        status.(k) <- st_unsent;
                        record_err
                          (Printf.sprintf "connection %d write failed: %s" c m)
                  end
                done;
                Array.iter
                  (fun fd ->
                    try Unix.shutdown fd Unix.SHUTDOWN_SEND
                    with Unix.Unix_error _ -> ())
                  fds)
          in
          let server_stats =
            if cfg.scrape_stats then begin
              let mid = t0 +. (cfg.duration /. 2.0) -. now () in
              if mid > 0.0 then Unix.sleepf mid;
              scrape connect errs errs_lock
            end
            else None
          in
          Domain.join pacer;
          Array.iter Domain.join readers;
          Array.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
            fds;
          Ok
            (summarize cfg ~t0 ~sched ~send_t ~done_t ~status
               ~protocol_errors:(List.rev !errs) ~server_stats))

let run_closed ~handle cfg =
  match validate cfg with
  | Error _ as e -> e
  | Ok () ->
      let mix = build_mix cfg in
      let distinct = Array.length mix in
      let n = n_requests cfg in
      let params = params_of cfg in
      let sched = Array.make n Float.nan in
      let send_t = Array.make n Float.nan in
      let done_t = Array.make n Float.nan in
      let status = Array.make n st_pending in
      let t0 = now () in
      for k = 0 to n - 1 do
        let path, tasks = mix.(k mod distinct) in
        let t_send = now () in
        sched.(k) <- t_send;
        send_t.(k) <- t_send;
        let resp = handle (P.Solve { id = k; params; path; tasks }) in
        done_t.(k) <- now ();
        status.(k) <-
          (match resp with
          | P.Solved { summary; _ } ->
              if summary.P.cached then st_cached else st_solved
          | P.Timed_out _ -> st_timeout
          | _ -> st_error)
      done;
      Ok
        (summarize cfg ~t0 ~sched ~send_t ~done_t ~status ~protocol_errors:[]
           ~server_stats:None)

let cache_hit_rate r =
  let served = r.solved + r.cached in
  if served = 0 then None else Some (float_of_int r.cached /. float_of_int served)

let config_json c =
  Obs.Json.Obj
    [
      ("rps", Obs.Json.Float c.rps);
      ("duration_seconds", Obs.Json.Float c.duration);
      ("connections", Obs.Json.Int c.connections);
      ("profile", Obs.Json.String c.profile);
      ("distinct", Obs.Json.Int c.distinct);
      ("algorithm", Obs.Json.String c.algorithm);
      ("seed", Obs.Json.Int c.seed);
      ( "timeout_ms",
        match c.timeout_ms with
        | Some ms -> Obs.Json.Int ms
        | None -> Obs.Json.Null );
      ("cache", Obs.Json.Bool c.cache);
    ]

let report_json r =
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "sap-loadgen v1");
      ("config", config_json r.r_config);
      ("offered_rps", Obs.Json.Float r.offered_rps);
      ("achieved_rps", Obs.Json.Float r.achieved_rps);
      ("elapsed_seconds", Obs.Json.Float r.elapsed);
      ( "requests",
        Obs.Json.Obj
          [
            ("sent", Obs.Json.Int r.sent);
            ("completed", Obs.Json.Int r.completed);
            ("solved", Obs.Json.Int r.solved);
            ("cached", Obs.Json.Int r.cached);
            ("timeouts", Obs.Json.Int r.timeouts);
            ("errors", Obs.Json.Int r.errors);
            ("lost", Obs.Json.Int r.lost);
          ] );
      ( "cache_hit_rate",
        match cache_hit_rate r with
        | Some rate -> Obs.Json.Float rate
        | None -> Obs.Json.Null );
      ("latency_seconds", Obs.Metrics.summary_json r.latency);
      ("send_lag_seconds", Obs.Metrics.summary_json r.send_lag);
      ( "protocol_errors",
        Obs.Json.List (List.map (fun m -> Obs.Json.String m) r.protocol_errors)
      );
      ( "server_stats",
        match r.server_stats with Some j -> j | None -> Obs.Json.Null );
    ]

(* ---------- saturation sweep ---------- *)

type sweep = {
  sw_config : config;  (** base config; [rps] is overridden per step *)
  sw_lo : float;
  sw_hi : float;
  sw_step : float;
  sw_threshold : float;
  sw_points : (float * report) list;  (** (offered rps, report), ascending *)
  sw_knee : float option;
}

let knee ~threshold points =
  List.fold_left
    (fun acc (offered, achieved) ->
      if achieved >= threshold *. offered then Some offered else acc)
    None points

let sweep ~connect ?(threshold = 0.9) ~lo ~hi ~step cfg =
  if lo <= 0.0 then Error "sweep: LO must be positive"
  else if step <= 0.0 then Error "sweep: STEP must be positive"
  else if hi < lo then Error "sweep: HI must be >= LO"
  else if not (threshold > 0.0 && threshold <= 1.0) then
    Error "sweep: threshold must be in (0, 1]"
  else begin
    (* Per-point scrapes would wait in FIFO order behind a saturated
       queue; the sweep keeps its points lightweight instead. *)
    let cfg = { cfg with scrape_stats = false } in
    let rec go acc rps =
      if rps > hi +. 1e-9 then Ok (List.rev acc)
      else
        match run ~connect { cfg with rps } with
        | Error _ as e -> e
        | Ok r ->
            let acc = (rps, r) :: acc in
            if r.achieved_rps < threshold *. rps then Ok (List.rev acc)
            else go acc (rps +. step)
    in
    match go [] lo with
    | Error _ as e -> e
    | Ok points ->
        let pairs = List.map (fun (o, r) -> (o, r.achieved_rps)) points in
        Ok
          {
            sw_config = { cfg with rps = lo };
            sw_lo = lo;
            sw_hi = hi;
            sw_step = step;
            sw_threshold = threshold;
            sw_points = points;
            sw_knee = knee ~threshold pairs;
          }
  end

let sweep_json sw =
  let point (offered, r) =
    Obs.Json.Obj
      [
        ("offered_rps", Obs.Json.Float offered);
        ("achieved_rps", Obs.Json.Float r.achieved_rps);
        ("elapsed_seconds", Obs.Json.Float r.elapsed);
        ("sent", Obs.Json.Int r.sent);
        ("completed", Obs.Json.Int r.completed);
        ("lost", Obs.Json.Int r.lost);
        ("errors", Obs.Json.Int r.errors);
        ("timeouts", Obs.Json.Int r.timeouts);
        ("latency_seconds", Obs.Metrics.summary_json r.latency);
      ]
  in
  Obs.Json.Obj
    [
      ("schema", Obs.Json.String "sap-loadgen-sweep v1");
      ("config", config_json sw.sw_config);
      ("lo_rps", Obs.Json.Float sw.sw_lo);
      ("hi_rps", Obs.Json.Float sw.sw_hi);
      ("step_rps", Obs.Json.Float sw.sw_step);
      ("threshold", Obs.Json.Float sw.sw_threshold);
      ("points", Obs.Json.List (List.map point sw.sw_points));
      ( "knee_rps",
        match sw.sw_knee with
        | Some k -> Obs.Json.Float k
        | None -> Obs.Json.Null );
    ]
