module Task = Core.Task
module Path = Core.Path
module Ring = Core.Ring
module Prng = Util.Prng

let version = "sap-corpus v1"

let manifest_file = "manifest.txt"

type kind = Path_kind | Ring_kind | Round_kind

type entry = { file : string; kind : kind; family : string }

type t = { dir : string; seed : int; entries : entry list }

type instance =
  | Path_instance of Path.t * Task.t list
  | Ring_instance of Ring.t
  | Round_instance of Round.Instance.t

let kind_to_string = function
  | Path_kind -> "path"
  | Ring_kind -> "ring"
  | Round_kind -> "round"

let kind_of_string = function
  | "path" -> Ok Path_kind
  | "ring" -> Ok Ring_kind
  | "round" -> Ok Round_kind
  | s -> Error (Printf.sprintf "unknown instance kind %S" s)

(* ---------- the families ---------- *)

(* Thresholds come from the algorithm defaults so the boundary families
   keep straddling the real classification lines if the defaults move. *)
let delta = Sap.Combine.default_config.Sap.Combine.delta

let beta = Sap.Combine.default_config.Sap.Combine.beta

let boundary_tasks prng ~edges ~low_demand ~n =
  List.init n (fun i ->
      let first_edge, last_edge = Gen.Workloads.random_span ~prng ~edges ~max_span:edges in
      (* Alternate demands just below and just above the threshold. *)
      let demand = if i mod 2 = 0 then low_demand else low_demand + 1 in
      let weight = 1.0 +. Prng.float prng 99.0 in
      Task.make ~id:i ~first_edge ~last_edge ~demand ~weight)

let min_capacity_edge caps =
  let best = ref 0 in
  Array.iteri (fun e c -> if c < caps.(!best) then best := e) caps;
  !best

let gen_path family prng =
  match family with
  | "uniform-mixed" ->
      let path =
        Gen.Profiles.uniform ~edges:(Prng.int_in prng 5 8)
          ~capacity:(Prng.int_in prng 8 14)
      in
      (path, Gen.Workloads.mixed_tasks ~prng ~path ~n:(Prng.int_in prng 7 9) ())
  | "staircase-mixed" ->
      let path = Gen.Profiles.staircase ~edges:8 ~steps:3 ~base:(Prng.int_in prng 3 5) in
      (path, Gen.Workloads.mixed_tasks ~prng ~path ~n:8 ())
  | "valley-small" ->
      let path =
        Gen.Profiles.valley ~edges:7 ~high:(Prng.int_in prng 14 20)
          ~low:(Prng.int_in prng 5 8)
      in
      (path, Gen.Workloads.small_tasks ~prng ~path ~n:9 ~delta ())
  | "uniform-medium" ->
      let path = Gen.Profiles.uniform ~edges:6 ~capacity:(Prng.int_in prng 10 16) in
      ( path,
        Gen.Workloads.ratio_tasks ~prng ~path ~n:8 ~lo:(delta +. 0.01)
          ~hi:(1.0 -. (2.0 *. beta)) () )
  | "walk-large" ->
      let path =
        Gen.Profiles.random_walk ~prng ~edges:7 ~start:(Prng.int_in prng 8 14)
          ~max_step:3 ~min_cap:4
      in
      ( path,
        Gen.Workloads.ratio_tasks ~prng ~path ~n:8
          ~lo:(1.0 -. (2.0 *. beta) +. 0.01)
          ~hi:1.0 () )
  | "delta-boundary" ->
      (* Uniform capacity 12: [delta * b = 3] exactly, so demands 3 and 4
         straddle the small/medium line. *)
      let path = Gen.Profiles.uniform ~edges:6 ~capacity:12 in
      let low = int_of_float (delta *. 12.0) in
      (path, boundary_tasks prng ~edges:6 ~low_demand:low ~n:8)
  | "halfcap-boundary" ->
      (* Demands 6 and 7 straddle the [(1 - 2 beta) * b = b/2] medium/large
         line on capacity 12. *)
      let path = Gen.Profiles.uniform ~edges:6 ~capacity:12 in
      let low = int_of_float ((1.0 -. (2.0 *. beta)) *. 12.0) in
      (path, boundary_tasks prng ~edges:6 ~low_demand:low ~n:8)
  | "ring-cut" ->
      (* A ring cut at its minimum-capacity edge: the wrap-around structure
         turns into long overlapping path intervals. *)
      let r =
        Gen.Ring_gen.random ~prng ~edges:7 ~n:8 ~cap_lo:4 ~cap_hi:14
          ~ratio_lo:0.0 ~ratio_hi:0.9
      in
      let path, tasks, _ = Ring.cut r ~cut_edge:(min_capacity_edge r.Ring.capacities) in
      (path, tasks)
  | "bb-stress" ->
      (* 40 tasks — far past Sap_brute's guard; low uniform capacity keeps
         the height palette small so Exact_bb still closes the search. *)
      let path = Gen.Profiles.uniform ~edges:8 ~capacity:6 in
      (path, Gen.Workloads.mixed_tasks ~prng ~path ~n:40 ())
  | f -> invalid_arg (Printf.sprintf "Lab.Corpus: unknown path family %S" f)

(* ---------- round families ----------

   ROUND-SAP instances: every task is mandatory, so generators must only
   emit tasks that fit alone (d <= b(j)) — Round.Instance.create rejects
   anything else at read time.  Families are chosen to exercise each
   solver's regime: uniform demands (interval coloring's optimum),
   power-of-two classes (the bands transform is lossless), just-over-half
   capacity demands (the pairwise bound certifies ratio 1), staircase
   bottlenecks (the "tight" subgroup), and a tiny family sized under
   Round.Exact.task_cap so the lab gate can cross-check the
   branch-and-bound against the partition brute force. *)

let round_task prng ~path ~id ~demand_of =
  let edges = Path.num_edges path in
  let first_edge, last_edge =
    Gen.Workloads.random_span ~prng ~edges ~max_span:edges
  in
  let b = Path.bottleneck path ~first:first_edge ~last:last_edge in
  let weight = 1.0 +. Prng.float prng 99.0 in
  Task.make ~id ~first_edge ~last_edge ~demand:(demand_of b) ~weight

let round_tasks prng ~path ~n ~demand_of =
  List.init n (fun id -> round_task prng ~path ~id ~demand_of)

let gen_round family prng =
  match family with
  | "round-uniform" ->
      let path = Gen.Profiles.uniform ~edges:6 ~capacity:12 in
      (path, round_tasks prng ~path ~n:10 ~demand_of:(fun _ -> 3))
  | "round-classes" ->
      let path = Gen.Profiles.uniform ~edges:7 ~capacity:16 in
      let classes = [| 1; 2; 4; 8 |] in
      ( path,
        round_tasks prng ~path ~n:12 ~demand_of:(fun _ ->
            classes.(Prng.int prng (Array.length classes))) )
  | "round-halfcap" ->
      let path = Gen.Profiles.uniform ~edges:6 ~capacity:11 in
      ( path,
        round_tasks prng ~path ~n:8 ~demand_of:(fun b ->
            (b / 2) + 1 + Prng.int prng (b - (b / 2))) )
  | "round-staircase" ->
      let path =
        Gen.Profiles.staircase ~edges:8 ~steps:3 ~base:(Prng.int_in prng 4 6)
      in
      ( path,
        round_tasks prng ~path ~n:10 ~demand_of:(fun b -> 1 + Prng.int prng b) )
  | "round-tiny" ->
      let path =
        Gen.Profiles.uniform ~edges:5 ~capacity:(Prng.int_in prng 6 10)
      in
      ( path,
        round_tasks prng ~path ~n:(Prng.int_in prng 3 6)
          ~demand_of:(fun b -> 1 + Prng.int prng b) )
  | f -> invalid_arg (Printf.sprintf "Lab.Corpus: unknown round family %S" f)

let gen_ring family prng =
  match family with
  | "ring-uniform" ->
      Gen.Ring_gen.random ~prng ~edges:(Prng.int_in prng 5 6)
        ~n:(Prng.int_in prng 5 6) ~cap_lo:4 ~cap_hi:12 ~ratio_lo:0.0
        ~ratio_hi:0.9
  | f -> invalid_arg (Printf.sprintf "Lab.Corpus: unknown ring family %S" f)

let sample_path ~family ~prng = gen_path family prng

let families =
  [
    ("uniform-mixed", Path_kind);
    ("staircase-mixed", Path_kind);
    ("valley-small", Path_kind);
    ("uniform-medium", Path_kind);
    ("walk-large", Path_kind);
    ("delta-boundary", Path_kind);
    ("halfcap-boundary", Path_kind);
    ("ring-cut", Path_kind);
    ("bb-stress", Path_kind);
    ("ring-uniform", Ring_kind);
    ("round-uniform", Round_kind);
    ("round-classes", Round_kind);
    ("round-halfcap", Round_kind);
    ("round-staircase", Round_kind);
    ("round-tiny", Round_kind);
  ]

let path_families =
  List.filter_map
    (fun (f, k) -> match k with Path_kind -> Some f | _ -> None)
    families

let round_families =
  List.filter_map
    (fun (f, k) -> match k with Round_kind -> Some f | _ -> None)
    families

(* ---------- manifest ---------- *)

let manifest_to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (version ^ "\n");
  Buffer.add_string buf (Printf.sprintf "seed %d\n" t.seed);
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "entry %s %s %s\n" e.file (kind_to_string e.kind) e.family))
    t.entries;
  Buffer.contents buf

let ( let* ) = Result.bind

let meaningful_lines s =
  String.split_on_char '\n' s
  |> List.map String.trim
  |> List.filter (fun l -> l <> "" && not (String.length l > 0 && l.[0] = '#'))

let manifest_of_string ~dir s =
  match meaningful_lines s with
  | [] -> Error "empty manifest"
  | header :: rest ->
      let* () =
        if String.trim header = version then Ok ()
        else Error (Printf.sprintf "bad manifest header %S" header)
      in
      let* seed, entry_lines =
        match rest with
        | seed_line :: entries -> (
            match String.split_on_char ' ' seed_line |> List.filter (( <> ) "") with
            | [ "seed"; s ] -> (
                match int_of_string_opt s with
                | Some seed -> Ok (seed, entries)
                | None -> Error (Printf.sprintf "bad seed %S" s))
            | _ -> Error (Printf.sprintf "expected seed line, got %S" seed_line))
        | [] -> Error "missing seed line"
      in
      let parse_entry line =
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "entry"; file; kind; family ] ->
            let* kind = kind_of_string kind in
            Ok { file; kind; family }
        | _ -> Error (Printf.sprintf "malformed entry line %S" line)
      in
      let rec map_result f = function
        | [] -> Ok []
        | x :: rest ->
            let* y = f x in
            let* ys = map_result f rest in
            Ok (y :: ys)
      in
      let* entries = map_result parse_entry entry_lines in
      Ok { dir; seed; entries }

(* ---------- generation ---------- *)

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* The per-family prng seed depends on the family's position in
   [families], so appending new families never reshuffles the instances
   existing corpora were generated from. *)
let generate_families ~dir ~seed ~variants selected =
  mkdir_p dir;
  let entries = ref [] in
  List.iteri
    (fun fi (family, kind) ->
      if List.mem_assoc family selected then
        for k = 0 to variants - 1 do
          let prng = Prng.create ((seed * 10007) + (fi * 101) + k) in
          let file = Printf.sprintf "%s-%d.inst" family k in
          let contents =
            match kind with
            | Path_kind ->
                let path, tasks = gen_path family prng in
                Sap_io.Instance_io.instance_to_string path tasks
            | Ring_kind ->
                Sap_io.Instance_io.ring_to_string (gen_ring family prng)
            | Round_kind ->
                let path, tasks = gen_round family prng in
                Sap_io.Instance_io.round_instance_to_string path tasks
          in
          Sap_io.Instance_io.write_file (Filename.concat dir file) contents;
          entries := { file; kind; family } :: !entries
        done)
    families;
  let t = { dir; seed; entries = List.rev !entries } in
  Sap_io.Instance_io.write_file
    (Filename.concat dir manifest_file)
    (manifest_to_string t);
  t

let generate ~dir ~seed ?(variants = 3) () =
  generate_families ~dir ~seed ~variants families

let generate_round ~dir ~seed ?(variants = 3) () =
  generate_families ~dir ~seed ~variants
    (List.filter (fun (_, k) -> k = Round_kind) families)

(* ---------- churn traces ---------- *)

let churn_version = "sap-churn v1"

type churn_event =
  | Churn_add of Task.t
  | Churn_remove of int
  | Churn_resize of int * int

type churn = {
  churn_seed : int;
  churn_path : Path.t;
  churn_base : Task.t list;
  churn_events : churn_event list;
}

(* Two adjacent edges per capacity level: tasks confined to one segment
   keep that level as their bottleneck, so the base instance populates
   six distinct strip-pack bands and a single-task delta dirties exactly
   one of them. *)
let churn_levels = [| 4; 8; 16; 32; 64; 128 |]

let churn_path () =
  Path.create
    (Array.concat (List.map (fun c -> [| c; c |]) (Array.to_list churn_levels)))

let churn_task prng ~id path =
  let level = Prng.int prng (Array.length churn_levels) in
  let first_edge = 2 * level in
  let last_edge = first_edge + Prng.int prng 2 in
  let b = Path.bottleneck path ~first:first_edge ~last:last_edge in
  let demand = 1 + Prng.int prng b in
  let weight = 1.0 +. Prng.float prng 99.0 in
  Task.make ~id ~first_edge ~last_edge ~demand ~weight

let generate_churn ~seed ~steps =
  if steps < 0 then invalid_arg "Lab.Corpus.generate_churn: negative steps";
  let prng = Prng.create ((seed * 48271) + 11) in
  let path = churn_path () in
  let n_base = 24 in
  let base = List.init n_base (fun i -> churn_task prng ~id:i path) in
  let live = Hashtbl.create 64 in
  List.iter (fun (j : Task.t) -> Hashtbl.replace live j.Task.id j) base;
  let next_id = ref n_base in
  let fresh_add () =
    let id = !next_id in
    incr next_id;
    let j = churn_task prng ~id path in
    Hashtbl.replace live id j;
    Churn_add j
  in
  (* Sorted fold keeps the pick independent of hash-table iteration
     order, so a trace is a pure function of the seed. *)
  let pick_live () =
    let ids = Hashtbl.fold (fun id _ acc -> id :: acc) live [] in
    let ids = Array.of_list (List.sort compare ids) in
    ids.(Prng.int prng (Array.length ids))
  in
  let events =
    List.init steps (fun _ ->
        let roll = Prng.int prng 10 in
        if roll < 5 || Hashtbl.length live = 0 then fresh_add ()
        else if roll < 8 then begin
          let id = pick_live () in
          Hashtbl.remove live id;
          Churn_remove id
        end
        else begin
          let id = pick_live () in
          let j = Hashtbl.find live id in
          let b =
            Path.bottleneck path ~first:j.Task.first_edge ~last:j.Task.last_edge
          in
          let demand = 1 + Prng.int prng b in
          Hashtbl.replace live id
            (Task.make ~id ~first_edge:j.Task.first_edge
               ~last_edge:j.Task.last_edge ~demand ~weight:j.Task.weight);
          Churn_resize (id, demand)
        end)
  in
  { churn_seed = seed; churn_path = path; churn_base = base; churn_events = events }

let task_fields (j : Task.t) =
  Printf.sprintf "%d %d %d %d %.17g" j.Task.id j.Task.first_edge j.Task.last_edge
    j.Task.demand j.Task.weight

let churn_to_string c =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (churn_version ^ "\n");
  Buffer.add_string buf (Printf.sprintf "seed %d\n" c.churn_seed);
  Buffer.add_string buf
    (Printf.sprintf "steps %d\n" (List.length c.churn_events));
  Buffer.add_string buf "capacities";
  Array.iter
    (fun cap -> Buffer.add_string buf (" " ^ string_of_int cap))
    (Path.capacities c.churn_path);
  Buffer.add_char buf '\n';
  List.iter
    (fun j -> Buffer.add_string buf (Printf.sprintf "task %s\n" (task_fields j)))
    c.churn_base;
  List.iter
    (fun ev ->
      Buffer.add_string buf
        (match ev with
        | Churn_add j -> Printf.sprintf "event add %s\n" (task_fields j)
        | Churn_remove id -> Printf.sprintf "event remove %d\n" id
        | Churn_resize (id, d) -> Printf.sprintf "event resize %d %d\n" id d))
    c.churn_events;
  Buffer.contents buf

let parse_int what s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "expected integer for %s, got %S" what s)

let parse_float what s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "expected number for %s, got %S" what s)

let parse_task_fields ~edges = function
  | [ id; first; last; demand; weight ] ->
      let* id = parse_int "id" id in
      let* first_edge = parse_int "first_edge" first in
      let* last_edge = parse_int "last_edge" last in
      let* demand = parse_int "demand" demand in
      let* weight = parse_float "weight" weight in
      let* j =
        try Ok (Task.make ~id ~first_edge ~last_edge ~demand ~weight)
        with Invalid_argument m -> Error m
      in
      if j.Task.last_edge < edges then Ok j else Error "task leaves the path"
  | _ -> Error "malformed task fields"

let churn_of_string s =
  let rec map_result f = function
    | [] -> Ok []
    | x :: rest ->
        let* y = f x in
        let* ys = map_result f rest in
        Ok (y :: ys)
  in
  match meaningful_lines s with
  | header :: seed_line :: steps_line :: caps_line :: rest
    when String.trim header = churn_version ->
      let* seed =
        match String.split_on_char ' ' seed_line |> List.filter (( <> ) "") with
        | [ "seed"; v ] -> parse_int "seed" v
        | _ -> Error (Printf.sprintf "expected seed line, got %S" seed_line)
      in
      let* steps =
        match String.split_on_char ' ' steps_line |> List.filter (( <> ) "") with
        | [ "steps"; v ] -> parse_int "steps" v
        | _ -> Error (Printf.sprintf "expected steps line, got %S" steps_line)
      in
      let* caps =
        match String.split_on_char ' ' caps_line |> List.filter (( <> ) "") with
        | "capacities" :: values when values <> [] ->
            map_result (parse_int "capacity") values
        | _ -> Error "malformed capacities line"
      in
      let* path =
        try Ok (Path.create (Array.of_list caps))
        with Invalid_argument m -> Error m
      in
      let edges = Path.num_edges path in
      let parse_line line =
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | "task" :: fields ->
            let* j = parse_task_fields ~edges fields in
            Ok (`Task j)
        | [ "event"; "remove"; id ] ->
            let* id = parse_int "id" id in
            Ok (`Event (Churn_remove id))
        | [ "event"; "resize"; id; demand ] ->
            let* id = parse_int "id" id in
            let* demand = parse_int "demand" demand in
            let* () = if demand > 0 then Ok () else Error "resize demand must be positive" in
            Ok (`Event (Churn_resize (id, demand)))
        | "event" :: "add" :: fields ->
            let* j = parse_task_fields ~edges fields in
            Ok (`Event (Churn_add j))
        | _ -> Error (Printf.sprintf "malformed churn line %S" line)
      in
      let* items = map_result parse_line rest in
      let base = List.filter_map (function `Task j -> Some j | _ -> None) items in
      let events =
        List.filter_map (function `Event e -> Some e | _ -> None) items
      in
      let* () =
        if List.length events = steps then Ok ()
        else
          Error
            (Printf.sprintf "steps %d does not match %d event lines" steps
               (List.length events))
      in
      Ok
        {
          churn_seed = seed;
          churn_path = path;
          churn_base = base;
          churn_events = events;
        }
  | header :: _ when String.trim header <> churn_version ->
      Error (Printf.sprintf "bad churn header %S" header)
  | _ -> Error "truncated churn trace"

let load ~dir =
  let path = Filename.concat dir manifest_file in
  let* contents =
    try Ok (Sap_io.Instance_io.read_file path)
    with Sys_error m -> Error m
  in
  manifest_of_string ~dir contents

let read t entry =
  let* contents =
    try Ok (Sap_io.Instance_io.read_file (Filename.concat t.dir entry.file))
    with Sys_error m -> Error m
  in
  match entry.kind with
  | Path_kind ->
      let* path, tasks = Sap_io.Instance_io.instance_of_string contents in
      Ok (Path_instance (path, tasks))
  | Ring_kind ->
      let* r = Sap_io.Instance_io.ring_of_string contents in
      Ok (Ring_instance r)
  | Round_kind ->
      let* path, tasks = Sap_io.Instance_io.round_instance_of_string contents in
      let* inst = Round.Instance.create path tasks in
      Ok (Round_instance inst)
