(** The ROUND-SAP analogue of {!Ratio}: run every registered solver over
    a corpus's round entries and measure rounds against the certified
    lower bound ({!Round.Lower_bound} raised by {!Round.Exact} where the
    search closes).

    The semantics differ from {!Ratio} in one load-bearing way: the
    denominator is a true {e lower} bound, so [rounds < lb] is never a
    lucky packing — it proves a checker or bound bug, and the gate treats
    it (plus any checker failure or branch-and-bound/brute-force
    disagreement) as fatal.  Ratios are honest but conservative: against
    a non-exact [lb] the real approximation factor can only be smaller.

    The report carries a per-family breakdown so the gate can ask
    structural questions — e.g. "does bands beat or match first-fit on at
    least one family", the acceptance criterion of the bands transform. *)

type measurement = {
  file : string;
  family : string;
  alg : string;
  tasks : int;
  rounds : int;
  lb : int;
  lb_kind : string;  (** ["exact"] when the B&B closed, else ["certified"] *)
  ratio : float option;  (** [rounds / lb]; [None] on the empty instance *)
  feasible : bool;  (** {!Round.Checker} accepted the solution *)
  bb_agrees : bool option;
      (** B&B vs {!Round.Exact.brute_rounds}, on instances under
          {!Round.Exact.task_cap} where the B&B closed *)
  bb_nodes : int;
}

type summary_row = {
  s_alg : string;
  count : int;
  max_ratio : float option;
  mean_ratio : float option;
  exact_lbs : int;
  s_violations : int;  (** infeasible or [rounds < lb] rows *)
  worst_file : string option;
}

type family_row = {
  f_family : string;
  f_alg : string;
  f_count : int;
  f_rounds : int;  (** total rounds over the family's entries *)
  f_lb : int;  (** total lower bound over the family's entries *)
  f_max_ratio : float option;
}

type report = {
  corpus_dir : string;
  corpus_seed : int;
  measurements : measurement list;
  summaries : summary_row list;
  families : family_row list;
  violations : int;
  disagreements : int;
  bands_competitive : bool;
      (** bands' total rounds <= first-fit's on at least one family *)
}

val run : ?max_nodes:int -> Corpus.t -> report
(** Measures every [Round_kind] entry (others are skipped, mirroring how
    {!Ratio} skips round entries).  @raise Invalid_argument on an
    unreadable entry. *)

val gate_failures : report -> string list
(** Empty iff the gate passes: no violations, no disagreements, and
    [bands_competitive] (vacuously true on a corpus without both
    algorithms). *)

val report_json : report -> Obs.Json.t
(** Schema [round-report v1]. *)

val pp_summary : Format.formatter -> report -> unit
