(* The original dense-tableau simplex, kept verbatim (minus metrics) as a
   test-only oracle for the bounded-variable sparse core in [Simplex].
   Every [x_j <= ub] box constraint is an explicit row plus a slack
   column, so a problem with n variables and r rows pivots over a dense
   (r+1) x (n+r+1) matrix — which is exactly why it was replaced.  Do not
   call it outside the test suite. *)

type problem = {
  objective : float array;
  rows : (float array * float) list;
}

type outcome =
  | Optimal of { value : float; solution : float array; iterations : int }
  | Unbounded

let box_row ~n j ub =
  let a = Array.make n 0.0 in
  a.(j) <- 1.0;
  (a, ub)

(* Tableau layout: r rows, columns 0..n-1 structural, n..n+r-1 slack,
   last column = rhs.  Row r is the objective row holding reduced costs
   (negated objective: we minimize -c.x). *)
let maximize ?(eps = 1e-9) ?max_iterations problem =
  let n = Array.length problem.objective in
  let rows = Array.of_list problem.rows in
  let r = Array.length rows in
  Array.iter
    (fun (a, b) ->
      if Array.length a <> n then invalid_arg "Simplex: ragged row";
      if b < 0.0 then invalid_arg "Simplex: negative rhs")
    rows;
  let width = n + r + 1 in
  let t = Array.make_matrix (r + 1) width 0.0 in
  Array.iteri
    (fun i (a, b) ->
      Array.blit a 0 t.(i) 0 n;
      t.(i).(n + i) <- 1.0;
      t.(i).(width - 1) <- b)
    rows;
  for j = 0 to n - 1 do
    t.(r).(j) <- -.problem.objective.(j)
  done;
  let basis = Array.init r (fun i -> n + i) in
  let max_iterations =
    match max_iterations with Some k -> k | None -> 50 * (n + r + 1)
  in
  (* Entering column: most negative reduced cost (Dantzig), or the first
     negative one (Bland) once [bland] is set. *)
  let entering bland =
    if bland then begin
      let rec first j =
        if j = n + r then None
        else if t.(r).(j) < -.eps then Some j
        else first (j + 1)
      in
      first 0
    end
    else begin
      let best = ref (-1) and best_val = ref (-.eps) in
      for j = 0 to n + r - 1 do
        if t.(r).(j) < !best_val then begin
          best := j;
          best_val := t.(r).(j)
        end
      done;
      if !best < 0 then None else Some !best
    end
  in
  let leaving col bland =
    (* Minimum ratio test; Bland tie-break on smallest basis index. *)
    let best = ref (-1) and best_ratio = ref infinity in
    for i = 0 to r - 1 do
      let a = t.(i).(col) in
      if a > eps then begin
        let ratio = t.(i).(width - 1) /. a in
        let strictly_better = !best < 0 || ratio < !best_ratio -. eps in
        let tie_break =
          bland && !best >= 0
          && Float.abs (ratio -. !best_ratio) <= eps
          && basis.(i) < basis.(!best)
        in
        if strictly_better || tie_break then begin
          best := i;
          best_ratio := ratio
        end
      end
    done;
    if !best < 0 then None else Some !best
  in
  let pivot row col =
    let p = t.(row).(col) in
    for j = 0 to width - 1 do
      t.(row).(j) <- t.(row).(j) /. p
    done;
    for i = 0 to r do
      if i <> row then begin
        let f = t.(i).(col) in
        if Float.abs f > 0.0 then
          for j = 0 to width - 1 do
            t.(i).(j) <- t.(i).(j) -. (f *. t.(row).(j))
          done
      end
    done;
    basis.(row) <- col
  in
  let degenerate_streak = ref 0 in
  let bland_active = ref false in
  let rec loop iter =
    if iter > max_iterations then failwith "Simplex: iteration limit";
    let bland = !degenerate_streak > 2 * (n + r) in
    if bland && not !bland_active then bland_active := true;
    (if not bland then bland_active := false);
    match entering bland with
    | None ->
        let solution = Array.make n 0.0 in
        Array.iteri
          (fun i b -> if b < n then solution.(b) <- t.(i).(width - 1))
          basis;
        Optimal { value = t.(r).(width - 1); solution; iterations = iter }
    | Some col -> (
        match leaving col bland with
        | None -> Unbounded
        | Some row ->
            let before = t.(row).(width - 1) in
            pivot row col;
            if before <= eps then incr degenerate_streak
            else degenerate_streak := 0;
            loop (iter + 1))
  in
  loop 0
