type t = {
  tasks : Core.Task.t array;
  value : float;
  solution : float array;
}

(* A warm handle keys the simplex basis by stable identifiers — task ids
   for columns, edge indices for rows — so it survives the column/row
   renumbering a delta causes. *)
type warm = {
  w_basis : Simplex.basis;
  w_ids : int array;  (* column c of the solved LP -> task id *)
  w_edges : int array;  (* row i of the solved LP -> edge index *)
}

let solve_scaled_warm path ~scale ?warm ts =
  let tasks = Array.of_list ts in
  let n_all = Array.length tasks in
  let cap e = scale *. float_of_int (Core.Path.capacity path e) in
  (* Columns: only tasks that fit alone under the scaled capacities. *)
  let fits (j : Core.Task.t) =
    float_of_int j.Core.Task.demand <= scale *. float_of_int (Core.Path.bottleneck_of path j)
  in
  let cols = Array.to_list tasks |> List.filter fits |> Array.of_list in
  let n = Array.length cols in
  if n = 0 then ({ tasks; value = 0.0; solution = Array.make n_all 0.0 }, None)
  else begin
    let objective = Array.map (fun (j : Core.Task.t) -> j.Core.Task.weight) cols in
    let m = Core.Path.num_edges path in
    (* Gather each edge's incident columns by walking every task's
       interval once — O(sum of spans), not O(m * n).  Iterating columns
       in decreasing order leaves each per-edge list increasing. *)
    let ecols = Array.make m [] in
    for c = n - 1 downto 0 do
      let j = cols.(c) in
      for e = j.Core.Task.first_edge to j.Core.Task.last_edge do
        ecols.(e) <- c :: ecols.(e)
      done
    done;
    let capacity_rows = ref [] in
    let row_edges = ref [] in
    for e = m - 1 downto 0 do
      match ecols.(e) with
      | [] -> ()
      | cs ->
          let row_cols = Array.of_list cs in
          let coefs =
            Array.map
              (fun c -> float_of_int cols.(c).Core.Task.demand)
              row_cols
          in
          capacity_rows := (row_cols, coefs, cap e) :: !capacity_rows;
          row_edges := e :: !row_edges
    done;
    let row_edges = Array.of_list !row_edges in
    let by_id = Hashtbl.create n in
    Array.iteri (fun c (j : Core.Task.t) -> Hashtbl.replace by_id j.Core.Task.id c) cols;
    let warm_basis =
      match warm with
      | None -> None
      | Some w ->
          let by_edge = Hashtbl.create (Array.length row_edges) in
          Array.iteri (fun i e -> Hashtbl.replace by_edge e i) row_edges;
          let lookup tbl k =
            match Hashtbl.find_opt tbl k with Some v -> v | None -> -1
          in
          Some
            {
              Simplex.w_basis = w.w_basis;
              w_cols = Array.map (lookup by_id) w.w_ids;
              w_rows = Array.map (lookup by_edge) w.w_edges;
            }
    in
    let upper = Array.make n 1.0 in
    match
      Simplex.maximize_bounded ?warm_basis ~objective ~upper
        ~rows:!capacity_rows ()
    with
    | Simplex.Unbounded -> assert false (* upper bounds every variable *)
    | Simplex.Optimal { value; solution = x; basis; _ } ->
        (* Scatter column values back to input-task order. *)
        let solution = Array.make n_all 0.0 in
        Array.iteri
          (fun i (j : Core.Task.t) ->
            match Hashtbl.find_opt by_id j.Core.Task.id with
            | Some c -> solution.(i) <- x.(c)
            | None -> ())
          tasks;
        let next =
          {
            w_basis = basis;
            w_ids = Array.map (fun (j : Core.Task.t) -> j.Core.Task.id) cols;
            w_edges = row_edges;
          }
        in
        ({ tasks; value; solution }, Some next)
  end

let solve_scaled path ~scale ts = fst (solve_scaled_warm path ~scale ts)

let solve path ts = solve_scaled path ~scale:1.0 ts

let upper_bound path ts = (solve path ts).value

let upper_bound_residual path ~residual ts =
  let m = Core.Path.num_edges path in
  if Array.length residual <> m then
    invalid_arg "Ufpp_lp: residual length does not match the path";
  Array.iteri
    (fun e r ->
      if r < 0 then
        invalid_arg
          (Printf.sprintf "Ufpp_lp: negative residual %d on edge %d" r e))
    residual;
  (* A task fits iff its demand clears the residual bottleneck — computed
     by walking the interval (residuals have no sparse-table index). *)
  let fits (j : Core.Task.t) =
    let rec go e mn =
      if e > j.Core.Task.last_edge then mn else go (e + 1) (min mn residual.(e))
    in
    j.Core.Task.demand <= go j.Core.Task.first_edge max_int
  in
  let cols = List.filter fits ts |> Array.of_list in
  let n = Array.length cols in
  if n = 0 then 0.0
  else begin
    let objective = Array.map (fun (j : Core.Task.t) -> j.Core.Task.weight) cols in
    let ecols = Array.make m [] in
    for c = n - 1 downto 0 do
      let j = cols.(c) in
      for e = j.Core.Task.first_edge to j.Core.Task.last_edge do
        ecols.(e) <- c :: ecols.(e)
      done
    done;
    let capacity_rows = ref [] in
    for e = m - 1 downto 0 do
      match ecols.(e) with
      | [] -> ()
      | cs ->
          let row_cols = Array.of_list cs in
          let coefs =
            Array.map (fun c -> float_of_int cols.(c).Core.Task.demand) row_cols
          in
          capacity_rows :=
            (row_cols, coefs, float_of_int residual.(e)) :: !capacity_rows
    done;
    let upper = Array.make n 1.0 in
    match Simplex.maximize_bounded ~objective ~upper ~rows:!capacity_rows () with
    | Simplex.Unbounded -> assert false (* upper bounds every variable *)
    | Simplex.Optimal { value; _ } -> value
  end
