type t = {
  tasks : Core.Task.t array;
  value : float;
  solution : float array;
}

let solve_scaled path ~scale ts =
  let tasks = Array.of_list ts in
  let n_all = Array.length tasks in
  let cap e = scale *. float_of_int (Core.Path.capacity path e) in
  (* Columns: only tasks that fit alone under the scaled capacities. *)
  let fits (j : Core.Task.t) =
    float_of_int j.Core.Task.demand <= scale *. float_of_int (Core.Path.bottleneck_of path j)
  in
  let cols = Array.to_list tasks |> List.filter fits |> Array.of_list in
  let n = Array.length cols in
  if n = 0 then { tasks; value = 0.0; solution = Array.make n_all 0.0 }
  else begin
    let objective = Array.map (fun (j : Core.Task.t) -> j.Core.Task.weight) cols in
    let m = Core.Path.num_edges path in
    (* Gather each edge's incident columns by walking every task's
       interval once — O(sum of spans), not O(m * n).  Iterating columns
       in decreasing order leaves each per-edge list increasing. *)
    let ecols = Array.make m [] in
    for c = n - 1 downto 0 do
      let j = cols.(c) in
      for e = j.Core.Task.first_edge to j.Core.Task.last_edge do
        ecols.(e) <- c :: ecols.(e)
      done
    done;
    let capacity_rows = ref [] in
    for e = m - 1 downto 0 do
      match ecols.(e) with
      | [] -> ()
      | cs ->
          let row_cols = Array.of_list cs in
          let coefs =
            Array.map
              (fun c -> float_of_int cols.(c).Core.Task.demand)
              row_cols
          in
          capacity_rows := (row_cols, coefs, cap e) :: !capacity_rows
    done;
    let upper = Array.make n 1.0 in
    match Simplex.maximize_bounded ~objective ~upper ~rows:!capacity_rows () with
    | Simplex.Unbounded -> assert false (* upper bounds every variable *)
    | Simplex.Optimal { value; solution = x; iterations = _ } ->
        (* Scatter column values back to input-task order. *)
        let solution = Array.make n_all 0.0 in
        let by_id = Hashtbl.create n in
        Array.iteri (fun c (j : Core.Task.t) -> Hashtbl.replace by_id j.Core.Task.id c) cols;
        Array.iteri
          (fun i (j : Core.Task.t) ->
            match Hashtbl.find_opt by_id j.Core.Task.id with
            | Some c -> solution.(i) <- x.(c)
            | None -> ())
          tasks;
        { tasks; value; solution }
  end

let solve path ts = solve_scaled path ~scale:1.0 ts

let upper_bound path ts = (solve path ts).value

let upper_bound_residual path ~residual ts =
  let m = Core.Path.num_edges path in
  if Array.length residual <> m then
    invalid_arg "Ufpp_lp: residual length does not match the path";
  Array.iteri
    (fun e r ->
      if r < 0 then
        invalid_arg
          (Printf.sprintf "Ufpp_lp: negative residual %d on edge %d" r e))
    residual;
  (* A task fits iff its demand clears the residual bottleneck — computed
     by walking the interval (residuals have no sparse-table index). *)
  let fits (j : Core.Task.t) =
    let rec go e mn =
      if e > j.Core.Task.last_edge then mn else go (e + 1) (min mn residual.(e))
    in
    j.Core.Task.demand <= go j.Core.Task.first_edge max_int
  in
  let cols = List.filter fits ts |> Array.of_list in
  let n = Array.length cols in
  if n = 0 then 0.0
  else begin
    let objective = Array.map (fun (j : Core.Task.t) -> j.Core.Task.weight) cols in
    let ecols = Array.make m [] in
    for c = n - 1 downto 0 do
      let j = cols.(c) in
      for e = j.Core.Task.first_edge to j.Core.Task.last_edge do
        ecols.(e) <- c :: ecols.(e)
      done
    done;
    let capacity_rows = ref [] in
    for e = m - 1 downto 0 do
      match ecols.(e) with
      | [] -> ()
      | cs ->
          let row_cols = Array.of_list cs in
          let coefs =
            Array.map (fun c -> float_of_int cols.(c).Core.Task.demand) row_cols
          in
          capacity_rows :=
            (row_cols, coefs, float_of_int residual.(e)) :: !capacity_rows
    done;
    let upper = Array.make n 1.0 in
    match Simplex.maximize_bounded ~objective ~upper ~rows:!capacity_rows () with
    | Simplex.Unbounded -> assert false (* upper bounds every variable *)
    | Simplex.Optimal { value; _ } -> value
  end
