type t = {
  tasks : Core.Task.t array;
  value : float;
  solution : float array;
}

let solve_scaled path ~scale ts =
  let tasks = Array.of_list ts in
  let n_all = Array.length tasks in
  let cap e = scale *. float_of_int (Core.Path.capacity path e) in
  (* Columns: only tasks that fit alone under the scaled capacities. *)
  let fits (j : Core.Task.t) =
    float_of_int j.Core.Task.demand <= scale *. float_of_int (Core.Path.bottleneck_of path j)
  in
  let cols = Array.to_list tasks |> List.filter fits |> Array.of_list in
  let n = Array.length cols in
  if n = 0 then { tasks; value = 0.0; solution = Array.make n_all 0.0 }
  else begin
    let objective = Array.map (fun (j : Core.Task.t) -> j.Core.Task.weight) cols in
    let m = Core.Path.num_edges path in
    let used = Array.make m false in
    Array.iter
      (fun (j : Core.Task.t) ->
        for e = j.Core.Task.first_edge to j.Core.Task.last_edge do
          used.(e) <- true
        done)
      cols;
    let capacity_rows = ref [] in
    for e = m - 1 downto 0 do
      if used.(e) then begin
        let a = Array.make n 0.0 in
        Array.iteri
          (fun c (j : Core.Task.t) ->
            if Core.Task.uses j e then a.(c) <- float_of_int j.Core.Task.demand)
          cols;
        capacity_rows := (a, cap e) :: !capacity_rows
      end
    done;
    let box_rows = List.init n (fun c -> Simplex.box_row ~n c 1.0) in
    let problem =
      { Simplex.objective; rows = !capacity_rows @ box_rows }
    in
    match Simplex.maximize problem with
    | Simplex.Unbounded -> assert false (* box rows bound every variable *)
    | Simplex.Optimal { value; solution = x; iterations = _ } ->
        (* Scatter column values back to input-task order. *)
        let solution = Array.make n_all 0.0 in
        let by_id = Hashtbl.create n in
        Array.iteri (fun c (j : Core.Task.t) -> Hashtbl.replace by_id j.Core.Task.id c) cols;
        Array.iteri
          (fun i (j : Core.Task.t) ->
            match Hashtbl.find_opt by_id j.Core.Task.id with
            | Some c -> solution.(i) <- x.(c)
            | None -> ())
          tasks;
        { tasks; value; solution }
  end

let solve path ts = solve_scaled path ~scale:1.0 ts

let upper_bound path ts = (solve path ts).value
