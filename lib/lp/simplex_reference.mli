(** Test-only oracle: the original dense-tableau primal simplex.

    Solves the same [maximize c.x  s.t.  A x <= b, x >= 0] problems as
    {!Simplex.maximize}, with every box constraint as an explicit dense
    row.  The test suite checks the sparse bounded-variable core against
    it on random LPs; production code must use {!Simplex}.  Emits no
    metrics (so test runs never perturb [simplex.*] counters). *)

type problem = {
  objective : float array;       (** [c], length n *)
  rows : (float array * float) list;  (** [(a_i, b_i)] with [b_i >= 0] *)
}

type outcome =
  | Optimal of { value : float; solution : float array; iterations : int }
  | Unbounded

val maximize : ?eps:float -> ?max_iterations:int -> problem -> outcome

val box_row : n:int -> int -> float -> float array * float
(** [box_row ~n j ub] is the row encoding [x_j <= ub]. *)
