(** A bounded-variable primal simplex over sparse rows, for packing LPs.

    Solves [maximize c.x  s.t.  A x <= b, 0 <= x <= u] with [b >= 0],
    which is exactly the shape of the UFPP relaxation (1) in the paper:
    capacity rows plus [x_j <= 1] box constraints.  Box constraints are
    handled implicitly by upper-bound substitution (a variable at its
    upper bound is stored flipped, [x := u - x]) — they cost a column
    negation instead of a row, a slack and a pivot each.  Rows are sparse:
    the tableau tracks each row's potentially-nonzero columns and pivots
    walk only those, which on UFPP capacity rows (only the tasks crossing
    one edge) is far below the full width.  With [b >= 0] the all-slack
    basis is feasible, so no phase-one is needed.  Dantzig pricing with a
    switch to Bland's rule after a degeneracy streak guards against
    cycling.

    Emits counters [simplex.solves], [simplex.iterations],
    [simplex.bland_activations] (at most once per solve),
    [simplex.bound_flips], [simplex.pivots_cells_touched] and the
    histogram [simplex.row_nnz]. *)

type problem = {
  objective : float array;       (** [c], length n *)
  rows : (float array * float) list;  (** [(a_i, b_i)] with [b_i >= 0] *)
}

type outcome =
  | Optimal of { value : float; solution : float array; iterations : int }
  | Unbounded

val maximize : ?eps:float -> ?max_iterations:int -> problem -> outcome
(** Dense-row adapter kept for compatibility: rows whose single nonzero
    coefficient is positive are folded into implicit upper bounds, the
    rest become sparse rows.  [eps] is the pivoting tolerance (default
    1e-9).  Raises [Invalid_argument] on negative right-hand sides or
    ragged rows, and [Failure] if [max_iterations] (default
    [50 * (n + #rows)]) is hit — which for these packing LPs indicates a
    bug, not hard input. *)

val maximize_bounded :
  ?eps:float ->
  ?max_iterations:int ->
  objective:float array ->
  upper:float array ->
  rows:(int array * float array * float) list ->
  unit ->
  outcome
(** The sparse core.  [upper.(j)] bounds variable [j] from above
    ([infinity] allowed; [0] fixes the variable).  Each row is
    [(cols, coefs, b)] listing only the nonzero columns; [b >= 0].
    Raises like {!maximize}, plus [Invalid_argument] on out-of-range
    columns or negative/NaN upper bounds. *)

val box_row : n:int -> int -> float -> float array * float
(** [box_row ~n j ub] is the row encoding [x_j <= ub]. *)
