(** A dense primal simplex solver for packing linear programs.

    Solves [maximize c.x  s.t.  A x <= b, x >= 0] with [b >= 0], which is
    exactly the shape of the UFPP relaxation (1) in the paper (capacity rows
    plus the [x_j <= 1] box rows).  With [b >= 0] the all-slack basis is
    feasible, so no phase-one is needed.  Dantzig pricing with a switch to
    Bland's rule after a degeneracy streak guards against cycling. *)

type problem = {
  objective : float array;       (** [c], length n *)
  rows : (float array * float) list;  (** [(a_i, b_i)] with [b_i >= 0] *)
}

type outcome =
  | Optimal of { value : float; solution : float array; iterations : int }
  | Unbounded

val maximize : ?eps:float -> ?max_iterations:int -> problem -> outcome
(** [eps] is the pivoting tolerance (default 1e-9).  Raises
    [Invalid_argument] on negative right-hand sides or ragged rows, and
    [Failure] if [max_iterations] (default [50 * (n + #rows)]) is hit —
    which for these packing LPs indicates a bug, not hard input. *)

val box_row : n:int -> int -> float -> float array * float
(** [box_row ~n j ub] is the row encoding [x_j <= ub]. *)
