(** A bounded-variable primal simplex over sparse rows, for packing LPs.

    Solves [maximize c.x  s.t.  A x <= b, 0 <= x <= u] with [b >= 0],
    which is exactly the shape of the UFPP relaxation (1) in the paper:
    capacity rows plus [x_j <= 1] box constraints.  Box constraints are
    handled implicitly by upper-bound substitution (a variable at its
    upper bound is stored flipped, [x := u - x]) — they cost a column
    negation instead of a row, a slack and a pivot each.  Rows are sparse:
    the tableau tracks each row's potentially-nonzero columns and pivots
    walk only those, which on UFPP capacity rows (only the tasks crossing
    one edge) is far below the full width.  With [b >= 0] the all-slack
    basis is feasible, so no phase-one is needed.  Dantzig pricing with a
    switch to Bland's rule after a degeneracy streak guards against
    cycling.

    Emits counters [simplex.solves], [simplex.iterations],
    [simplex.bland_activations] (at most once per solve),
    [simplex.bound_flips], [simplex.pivots_cells_touched],
    [simplex.warm_restarts], [simplex.warm_pivots_saved] and the
    histogram [simplex.row_nnz]. *)

type problem = {
  objective : float array;       (** [c], length n *)
  rows : (float array * float) list;  (** [(a_i, b_i)] with [b_i >= 0] *)
}

type basis
(** Opaque snapshot of an optimal basis: which variable is basic in each
    row and which structural variables sit flipped at their upper bound.
    Obtained from an {!Optimal} outcome; feed it back through {!warm} to
    restart a patched problem near the old optimum. *)

type warm = {
  w_basis : basis;  (** basis of a previous solve of a related problem *)
  w_cols : int array;
      (** old structural column -> new column index, [-1] if the column
          was dropped.  Length must equal the old problem's column count. *)
  w_rows : int array;
      (** old row -> new row index, [-1] if the row was dropped.  Length
          must equal the old problem's row count. *)
}

type outcome =
  | Optimal of {
      value : float;
      solution : float array;
      iterations : int;
      basis : basis;  (** warm-start seed for a patched re-solve *)
    }
  | Unbounded

val maximize : ?eps:float -> ?max_iterations:int -> problem -> outcome
(** Dense-row adapter kept for compatibility: rows whose single nonzero
    coefficient is positive are folded into implicit upper bounds, the
    rest become sparse rows.  [eps] is the pivoting tolerance (default
    1e-9).  Raises [Invalid_argument] on negative right-hand sides or
    ragged rows, and [Failure] if [max_iterations] (default
    [50 * (n + #rows)]) is hit — which for these packing LPs indicates a
    bug, not hard input. *)

val maximize_bounded :
  ?eps:float ->
  ?max_iterations:int ->
  ?warm_basis:warm ->
  objective:float array ->
  upper:float array ->
  rows:(int array * float array * float) list ->
  unit ->
  outcome
(** The sparse core.  [upper.(j)] bounds variable [j] from above
    ([infinity] allowed; [0] fixes the variable).  Each row is
    [(cols, coefs, b)] listing only the nonzero columns; [b >= 0].
    Raises like {!maximize}, plus [Invalid_argument] on out-of-range
    columns or negative/NaN upper bounds.

    [warm_basis] restarts from a prior basis after the problem was
    patched: surviving flipped columns are re-flipped and surviving
    basic structural variables are force-pivoted back into the basis
    without pricing or ratio tests, then ordinary iterations run to
    optimality from there.  If the basis no longer matches the problem
    (shape mismatch, out-of-range map, vanished pivot) or the inherited
    basic solution is primal-infeasible, the solver silently falls back
    to a cold start — a warm call never raises where a cold one would
    not.  [simplex.warm_restarts] counts solves where the basis was
    actually used; [simplex.warm_pivots_saved] counts the force-installed
    basis rows (pivots that skipped pricing and the ratio test). *)

val box_row : n:int -> int -> float -> float array * float
(** [box_row ~n j ub] is the row encoding [x_j <= ub]. *)
