(** The natural UFPP packing LP — relaxation of program (1) in the paper.

    [maximize  sum_j w_j x_j
     s.t.      sum_{j : e in I_j} d_j x_j <= c_e   for every edge e
               0 <= x_j <= 1]

    Used (a) inside the LP-rounding algorithm for small tasks (Sect. 4.1)
    and (b) as an upper bound on [OPT_SAP] for empirical ratio measurement,
    since every SAP solution induces a UFPP solution which is LP-feasible. *)

type t = {
  tasks : Core.Task.t array;     (** column [j] is [tasks.(j)] *)
  value : float;            (** optimal LP objective *)
  solution : float array;   (** optimal fractional [x] *)
}

val solve : Core.Path.t -> Core.Task.t list -> t
(** Builds and solves the relaxation.  Capacity rows are assembled
    sparsely by walking each task's edge interval once (O(total span))
    and the [x_j <= 1] boxes become implicit variable bounds, so the LP
    handed to {!Simplex.maximize_bounded} has one row per used edge and
    no box rows at all.  Edges used by no task contribute no row; tasks
    that do not fit alone ([d_j > b(j)]) have their variable fixed to 0
    (they can never appear in an integral solution, and leaving them
    fractional would inflate the bound). *)

val solve_scaled : Core.Path.t -> scale:float -> Core.Task.t list -> t
(** Like {!solve} but with every capacity multiplied by [scale] (used to
    express "load at most B/2" targets as an LP over the same tasks). *)

type warm
(** Warm-start handle from a previous solve: the simplex basis keyed by
    task id (columns) and edge index (rows), so it remains valid after
    tasks are added, removed, or resized between solves over the same
    path.  An unusable handle degrades to a cold solve — never an
    error. *)

val solve_scaled_warm :
  Core.Path.t -> scale:float -> ?warm:warm -> Core.Task.t list -> t * warm option
(** Like {!solve_scaled}, plus warm restarts: pass the [warm] handle of
    the previous solve to seed {!Simplex.maximize_bounded} with its
    basis, and keep the returned handle for the next delta.  [None] is
    returned only when the LP is empty (no task fits). *)

val upper_bound : Core.Path.t -> Core.Task.t list -> float
(** The LP optimum: an upper bound on both [OPT_UFPP] and [OPT_SAP]. *)

val upper_bound_residual :
  Core.Path.t -> residual:int array -> Core.Task.t list -> float
(** [upper_bound_residual p ~residual ts] is the LP optimum over [ts] with
    edge [e]'s capacity replaced by [residual.(e)] (which may be 0 — the
    variable of any task whose residual bottleneck is below its demand is
    fixed to 0).  Used by the lab's branch-and-bound: after placing a set
    [P], every SAP extension by remaining tasks is UFPP-feasible under the
    residuals [c_e - load_P(e)], so this bounds the attainable extra
    weight.  Raises [Invalid_argument] on a length mismatch or negative
    residual. *)
