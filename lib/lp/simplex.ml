type problem = {
  objective : float array;
  rows : (float array * float) list;
}

let m_solves = Obs.Metrics.counter "simplex.solves"

let m_iterations = Obs.Metrics.counter "simplex.iterations"

let m_bland_activations = Obs.Metrics.counter "simplex.bland_activations"

let m_bound_flips = Obs.Metrics.counter "simplex.bound_flips"

let m_cells = Obs.Metrics.counter "simplex.pivots_cells_touched"

let m_warm_restarts = Obs.Metrics.counter "simplex.warm_restarts"

let m_warm_saved = Obs.Metrics.counter "simplex.warm_pivots_saved"

let h_row_nnz = Obs.Metrics.histogram "simplex.row_nnz"

type basis = {
  b_n : int;
  b_r : int;
  b_basic : int array;  (** per-row basic variable ([< b_n] structural) *)
  b_flipped : bool array;  (** structural variables stored as [u - x] *)
}

type warm = {
  w_basis : basis;
  w_cols : int array;
  w_rows : int array;
}

type outcome =
  | Optimal of {
      value : float;
      solution : float array;
      iterations : int;
      basis : basis;
    }
  | Unbounded

let box_row ~n j ub =
  let a = Array.make n 0.0 in
  a.(j) <- 1.0;
  (a, ub)

(* Bounded-variable primal simplex over sparse rows.

   Variables 0..n-1 are structural with bounds [0, upper.(j)]; n..n+r-1
   are slacks with bounds [0, inf).  Box constraints never become rows:
   a nonbasic variable sits at either bound, and a variable at its upper
   bound is substituted [x := u - x] ("flipped"), so the invariant is
   always "every nonbasic variable is at 0" and the textbook tableau
   machinery applies unchanged.  The ratio test gains one candidate — the
   entering variable hitting its own upper bound — which costs a column
   negation instead of a pivot (counted in [simplex.bound_flips]).

   The tableau is one flat row-major float array of (r+1) rows (row r =
   reduced costs) and n+r+1 columns (last = rhs).  Capacity rows of the
   UFPP LP touch only the tasks crossing one edge, so each row also
   carries the list of columns that can be nonzero; pivots walk those
   lists instead of the full width (the union rule: after
   row_i -= f * row_p the nonzero set of row_i is contained in
   nnz_i U nnz_p).  Entries that cancel to zero stay tracked — the lists
   only ever overapproximate.  [simplex.pivots_cells_touched] counts the
   cells the pivots actually visit; with dense rows it would be
   iterations * (r+1) * width.

   A warm start replays a prior optimal basis onto the fresh tableau:
   surviving flipped columns are re-flipped, then each surviving basic
   structural variable is force-pivoted into the basis (no pricing, no
   ratio test — that is the work being saved).  The resulting basic
   solution is validated for primal feasibility; any failure falls back
   to the cold all-slack start by rebuilding from scratch. *)
let rec solve_core ?warm ~eps ~max_iterations ~objective ~upper ~rows () =
  let n = Array.length objective in
  let r = Array.length rows in
  let nvars = n + r in
  let width = nvars + 1 in
  let t = Array.make ((r + 1) * width) 0.0 in
  let metrics_on = Obs.Metrics.enabled () in
  (* Tracked potentially-nonzero columns, per row (rhs excluded). *)
  let nnz = Array.make (r + 1) [||] in
  let nnz_len = Array.make (r + 1) 0 in
  let push i c =
    let a = nnz.(i) in
    let len = nnz_len.(i) in
    let a =
      if len = Array.length a then begin
        let b = Array.make (max 8 (2 * len)) 0 in
        Array.blit a 0 b 0 len;
        nnz.(i) <- b;
        b
      end
      else a
    in
    a.(len) <- c;
    nnz_len.(i) <- len + 1
  in
  Array.iteri
    (fun i (cols, coefs, b) ->
      Array.iteri
        (fun k c ->
          t.((i * width) + c) <- coefs.(k);
          push i c)
        cols;
      t.((i * width) + n + i) <- 1.0;
      push i (n + i);
      t.((i * width) + nvars) <- b;
      if metrics_on then Obs.Metrics.observe h_row_nnz (float_of_int (Array.length cols)))
    rows;
  for j = 0 to n - 1 do
    if objective.(j) <> 0.0 then begin
      t.((r * width) + j) <- -.objective.(j);
      push r j
    end
  done;
  let basis = Array.init r (fun i -> n + i) in
  let flipped = Array.make n false in
  let bound v = if v < n then upper.(v) else infinity in
  (* Scratch membership marks for the nnz union during a pivot. *)
  let mark = Array.make nvars false in
  let cells = ref 0 in
  (* Entering column: most negative reduced cost (Dantzig), or the first
     negative one (Bland) once [bland] is set.  Variables fixed at 0
     (upper bound 0) can never move and are never entered. *)
  let entering bland =
    let obj = r * width in
    if bland then begin
      let rec first j =
        if j = nvars then None
        else if t.(obj + j) < -.eps && bound j > 0.0 then Some j
        else first (j + 1)
      in
      first 0
    end
    else begin
      let best = ref (-1) and best_val = ref (-.eps) in
      for j = 0 to nvars - 1 do
        if t.(obj + j) < !best_val && bound j > 0.0 then begin
          best := j;
          best_val := t.(obj + j)
        end
      done;
      if !best < 0 then None else Some !best
    end
  in
  (* Ratio test.  The entering variable grows from 0 by tau; each basic
     variable moves by -tau * a_i, limited below by 0 and above by its own
     bound; the entering variable itself is limited by [bound col].
     Returns the limiting event. *)
  let leaving col bland =
    let best = ref (-1)
    and best_ratio = ref infinity
    and best_upper = ref false in
    for i = 0 to r - 1 do
      let a = t.((i * width) + col) in
      let candidate ratio upper_leave =
        let strictly_better = !best < 0 || ratio < !best_ratio -. eps in
        let tie_break =
          bland && !best >= 0
          && Float.abs (ratio -. !best_ratio) <= eps
          && basis.(i) < basis.(!best)
        in
        if strictly_better || tie_break then begin
          best := i;
          best_ratio := ratio;
          best_upper := upper_leave
        end
      in
      if a > eps then candidate (t.((i * width) + nvars) /. a) false
      else if a < -.eps then begin
        let ub = bound basis.(i) in
        if ub < infinity then candidate ((ub -. t.((i * width) + nvars)) /. -.a) true
      end
    done;
    let own = bound col in
    if own <= !best_ratio then
      if own = infinity then `Unbounded else `Flip
    else if !best < 0 then `Unbounded
    else `Pivot (!best, !best_upper)
  in
  (* Re-flip column [c] (substitute x := u - x): negate the column and
     charge u * a_i to every rhs, objective row included. *)
  let flip_column c u =
    for i = 0 to r do
      let k = (i * width) + c in
      let a = t.(k) in
      if a <> 0.0 then begin
        t.((i * width) + nvars) <- t.((i * width) + nvars) -. (a *. u);
        t.(k) <- -.a
      end
    done
  in
  let pivot row col =
    let base_p = row * width in
    let p = t.(base_p + col) in
    let cols_p = nnz.(row) and len_p = nnz_len.(row) in
    for k = 0 to len_p - 1 do
      let c = cols_p.(k) in
      t.(base_p + c) <- t.(base_p + c) /. p
    done;
    t.(base_p + col) <- 1.0;
    t.(base_p + nvars) <- t.(base_p + nvars) /. p;
    cells := !cells + len_p;
    for i = 0 to r do
      if i <> row then begin
        let base_i = i * width in
        let f = t.(base_i + col) in
        if f <> 0.0 then begin
          let cols_i = nnz.(i) and len_i = nnz_len.(i) in
          for k = 0 to len_i - 1 do
            mark.(cols_i.(k)) <- true
          done;
          for k = 0 to len_p - 1 do
            let c = cols_p.(k) in
            t.(base_i + c) <- t.(base_i + c) -. (f *. t.(base_p + c));
            if not mark.(c) then begin
              mark.(c) <- true;
              push i c
            end
          done;
          t.(base_i + col) <- 0.0;
          t.(base_i + nvars) <- t.(base_i + nvars) -. (f *. t.(base_p + nvars));
          let cols_i = nnz.(i) and len_i = nnz_len.(i) in
          for k = 0 to len_i - 1 do
            mark.(cols_i.(k)) <- false
          done;
          cells := !cells + len_p
        end
      end
    done;
    basis.(row) <- col
  in
  (* Warm-basis install.  Returns [false] (caller rebuilds cold) when the
     basis does not match the patched problem or the inherited basic
     solution is primal-infeasible; partial installs are fine — a basic
     variable we cannot re-seat just stays nonbasic at 0 and normal
     pricing will reconsider it. *)
  let install { w_basis = wb; w_cols; w_rows } =
    let shape_ok =
      Array.length wb.b_basic = wb.b_r
      && Array.length wb.b_flipped = wb.b_n
      && Array.length w_cols = wb.b_n
      && Array.length w_rows = wb.b_r
      && Array.for_all (fun c -> c < n) w_cols
      && Array.for_all (fun i -> i < r) w_rows
    in
    if not shape_ok then false
    else begin
      for j0 = 0 to wb.b_n - 1 do
        if wb.b_flipped.(j0) then begin
          let j = w_cols.(j0) in
          if j >= 0 && upper.(j) > 0.0 && upper.(j) < infinity then begin
            flip_column j upper.(j);
            flipped.(j) <- true
          end
        end
      done;
      (* Which new slacks the old basis keeps basic, and which structural
         columns it wants basic (with their preferred row). *)
      let slack_wanted = Array.make r false in
      let want = ref [] in
      for i0 = wb.b_r - 1 downto 0 do
        let i = w_rows.(i0) in
        if i >= 0 then begin
          let v0 = wb.b_basic.(i0) in
          if v0 >= wb.b_n then begin
            let k = w_rows.(v0 - wb.b_n) in
            if k >= 0 then slack_wanted.(k) <- true
          end
          else begin
            let v = w_cols.(v0) in
            if v >= 0 && bound v > 0.0 then want := (v, i) :: !want
          end
        end
      done;
      let in_basis = Array.make nvars false in
      Array.iter (fun v -> in_basis.(v) <- true) basis;
      let tol = Float.max (100.0 *. eps) 1e-7 in
      let replaceable i col =
        basis.(i) >= n
        && (not slack_wanted.(basis.(i) - n))
        && Float.abs t.((i * width) + col) > tol
      in
      let installed = ref 0 in
      List.iter
        (fun (v, pref) ->
          if not in_basis.(v) then begin
            let row =
              if replaceable pref v then Some pref
              else begin
                let best = ref (-1) and best_a = ref tol in
                for i = 0 to r - 1 do
                  if basis.(i) >= n && not slack_wanted.(basis.(i) - n) then begin
                    let a = Float.abs t.((i * width) + v) in
                    if a > !best_a then begin
                      best := i;
                      best_a := a
                    end
                  end
                done;
                if !best >= 0 then Some !best else None
              end
            in
            match row with
            | Some i ->
                in_basis.(basis.(i)) <- false;
                pivot i v;
                in_basis.(v) <- true;
                incr installed
            | None -> ()
          end)
        !want;
      (* Primal feasibility of the inherited basic solution; tiny
         excursions (same magnitude as ordinary pivot rounding) are
         clamped back onto the bound. *)
      let feas_tol = Float.max (10.0 *. eps) 1e-8 in
      let feasible = ref true in
      for i = 0 to r - 1 do
        let k = (i * width) + nvars in
        let beta = t.(k) in
        let ub = bound basis.(i) in
        if beta < -.feas_tol || beta > ub +. feas_tol then feasible := false
        else if beta < 0.0 then t.(k) <- 0.0
        else if beta > ub then t.(k) <- ub
      done;
      if !feasible then begin
        Obs.Metrics.incr m_warm_restarts;
        Obs.Metrics.add m_warm_saved !installed
      end;
      !feasible
    end
  in
  let degenerate_streak = ref 0 in
  let bland_active = ref false in
  let bland_counted = ref false in
  let flips = ref 0 in
  let finish iter outcome =
    Obs.Metrics.incr m_solves;
    Obs.Metrics.add m_iterations iter;
    Obs.Metrics.add m_bound_flips !flips;
    Obs.Metrics.add m_cells !cells;
    outcome
  in
  let rec loop iter =
    if iter > max_iterations then failwith "Simplex: iteration limit";
    let bland = !degenerate_streak > 2 * nvars in
    if bland && not !bland_active then begin
      bland_active := true;
      (* Count activations once per solve: oscillating in and out of
         Bland's rule within one solve is a single event. *)
      if not !bland_counted then begin
        bland_counted := true;
        Obs.Metrics.incr m_bland_activations
      end
    end;
    (if not bland then bland_active := false);
    match entering bland with
    | None ->
        let solution = Array.make n 0.0 in
        Array.iteri
          (fun i b -> if b < n then solution.(b) <- t.((i * width) + nvars))
          basis;
        for j = 0 to n - 1 do
          if flipped.(j) then solution.(j) <- upper.(j) -. solution.(j)
        done;
        finish iter
          (Optimal
             {
               value = t.((r * width) + nvars);
               solution;
               iterations = iter;
               basis =
                 {
                   b_n = n;
                   b_r = r;
                   b_basic = Array.copy basis;
                   b_flipped = Array.copy flipped;
                 };
             })
    | Some col -> (
        match leaving col bland with
        | `Unbounded -> finish iter Unbounded
        | `Flip ->
            (* The entering variable reaches its own upper bound first:
               no basis change, strict objective improvement. *)
            flip_column col (bound col);
            flipped.(col) <- not flipped.(col);
            incr flips;
            degenerate_streak := 0;
            loop (iter + 1)
        | `Pivot (row, upper_leave) ->
            let before = t.((row * width) + nvars) in
            if upper_leave then begin
              (* The leaving variable exits at its upper bound: flip it
                 first (its column is the unit vector of [row], so only
                 that rhs moves), then pivot on the now-negative entry. *)
              let l = basis.(row) in
              flip_column l (bound l);
              flipped.(l) <- not flipped.(l)
            end;
            pivot row col;
            let step = Float.abs (t.((row * width) + nvars) -. before) in
            if (not upper_leave) && before <= eps then incr degenerate_streak
            else if upper_leave && step <= eps then incr degenerate_streak
            else degenerate_streak := 0;
            loop (iter + 1))
  in
  match warm with
  | Some w when not (install w) ->
      (* Unusable basis: rebuild the tableau from scratch and run cold. *)
      solve_core ~eps ~max_iterations ~objective ~upper ~rows ()
  | _ -> loop 0

let validate_sparse ~n (cols, coefs, b) =
  if Array.length cols <> Array.length coefs then invalid_arg "Simplex: ragged row";
  Array.iter (fun c -> if c < 0 || c >= n then invalid_arg "Simplex: column out of range") cols;
  if b < 0.0 then invalid_arg "Simplex: negative rhs"

let maximize_bounded ?(eps = 1e-9) ?max_iterations ?warm_basis ~objective ~upper
    ~rows () =
  let n = Array.length objective in
  if Array.length upper <> n then invalid_arg "Simplex: upper bound length";
  Array.iter
    (fun u -> if u < 0.0 || Float.is_nan u then invalid_arg "Simplex: negative upper bound")
    upper;
  let rows = Array.of_list rows in
  Array.iter (validate_sparse ~n) rows;
  let r = Array.length rows in
  let max_iterations =
    match max_iterations with Some k -> k | None -> 50 * (n + r + 1)
  in
  solve_core ?warm:warm_basis ~eps ~max_iterations ~objective ~upper ~rows ()

(* Dense adapter: same interface and [Optimal]/[Unbounded] semantics as the
   historical dense solver.  Rows with a single positive coefficient are
   box constraints in disguise — they become implicit upper bounds instead
   of rows; all-zero and single-negative-coefficient rows are redundant
   under [x >= 0, b >= 0] and are dropped. *)
let maximize ?(eps = 1e-9) ?max_iterations problem =
  let n = Array.length problem.objective in
  let upper = Array.make n infinity in
  let general = ref [] in
  let r_general = ref 0 in
  List.iter
    (fun (a, b) ->
      if Array.length a <> n then invalid_arg "Simplex: ragged row";
      if b < 0.0 then invalid_arg "Simplex: negative rhs";
      let nz = ref [] and count = ref 0 in
      for j = n - 1 downto 0 do
        if a.(j) <> 0.0 then begin
          nz := (j, a.(j)) :: !nz;
          incr count
        end
      done;
      match !nz with
      | [] -> ()
      | [ (j, aj) ] when aj > 0.0 -> upper.(j) <- Float.min upper.(j) (b /. aj)
      | [ (_, aj) ] when aj < 0.0 -> ()
      | nz ->
          let k = !count in
          let cols = Array.make k 0 and coefs = Array.make k 0.0 in
          List.iteri
            (fun i (j, aj) ->
              cols.(i) <- j;
              coefs.(i) <- aj)
            nz;
          incr r_general;
          general := (cols, coefs, b) :: !general)
    problem.rows;
  let rows = Array.of_list (List.rev !general) in
  let r = Array.length rows in
  let max_iterations =
    match max_iterations with
    | Some k -> k
    | None -> 50 * (n + r + List.length problem.rows + 1)
  in
  solve_core ~eps ~max_iterations ~objective:problem.objective ~upper ~rows ()
