type problem = {
  objective : float array;
  rows : (float array * float) list;
}

let m_solves = Obs.Metrics.counter "simplex.solves"

let m_iterations = Obs.Metrics.counter "simplex.iterations"

let m_bland_activations = Obs.Metrics.counter "simplex.bland_activations"

let m_bound_flips = Obs.Metrics.counter "simplex.bound_flips"

let m_cells = Obs.Metrics.counter "simplex.pivots_cells_touched"

let h_row_nnz = Obs.Metrics.histogram "simplex.row_nnz"

type outcome =
  | Optimal of { value : float; solution : float array; iterations : int }
  | Unbounded

let box_row ~n j ub =
  let a = Array.make n 0.0 in
  a.(j) <- 1.0;
  (a, ub)

(* Bounded-variable primal simplex over sparse rows.

   Variables 0..n-1 are structural with bounds [0, upper.(j)]; n..n+r-1
   are slacks with bounds [0, inf).  Box constraints never become rows:
   a nonbasic variable sits at either bound, and a variable at its upper
   bound is substituted [x := u - x] ("flipped"), so the invariant is
   always "every nonbasic variable is at 0" and the textbook tableau
   machinery applies unchanged.  The ratio test gains one candidate — the
   entering variable hitting its own upper bound — which costs a column
   negation instead of a pivot (counted in [simplex.bound_flips]).

   The tableau is one flat row-major float array of (r+1) rows (row r =
   reduced costs) and n+r+1 columns (last = rhs).  Capacity rows of the
   UFPP LP touch only the tasks crossing one edge, so each row also
   carries the list of columns that can be nonzero; pivots walk those
   lists instead of the full width (the union rule: after
   row_i -= f * row_p the nonzero set of row_i is contained in
   nnz_i U nnz_p).  Entries that cancel to zero stay tracked — the lists
   only ever overapproximate.  [simplex.pivots_cells_touched] counts the
   cells the pivots actually visit; with dense rows it would be
   iterations * (r+1) * width. *)
let solve_core ~eps ~max_iterations ~objective ~upper ~rows =
  let n = Array.length objective in
  let r = Array.length rows in
  let nvars = n + r in
  let width = nvars + 1 in
  let t = Array.make ((r + 1) * width) 0.0 in
  let metrics_on = Obs.Metrics.enabled () in
  (* Tracked potentially-nonzero columns, per row (rhs excluded). *)
  let nnz = Array.make (r + 1) [||] in
  let nnz_len = Array.make (r + 1) 0 in
  let push i c =
    let a = nnz.(i) in
    let len = nnz_len.(i) in
    let a =
      if len = Array.length a then begin
        let b = Array.make (max 8 (2 * len)) 0 in
        Array.blit a 0 b 0 len;
        nnz.(i) <- b;
        b
      end
      else a
    in
    a.(len) <- c;
    nnz_len.(i) <- len + 1
  in
  Array.iteri
    (fun i (cols, coefs, b) ->
      Array.iteri
        (fun k c ->
          t.((i * width) + c) <- coefs.(k);
          push i c)
        cols;
      t.((i * width) + n + i) <- 1.0;
      push i (n + i);
      t.((i * width) + nvars) <- b;
      if metrics_on then Obs.Metrics.observe h_row_nnz (float_of_int (Array.length cols)))
    rows;
  for j = 0 to n - 1 do
    if objective.(j) <> 0.0 then begin
      t.((r * width) + j) <- -.objective.(j);
      push r j
    end
  done;
  let basis = Array.init r (fun i -> n + i) in
  let flipped = Array.make n false in
  let bound v = if v < n then upper.(v) else infinity in
  (* Scratch membership marks for the nnz union during a pivot. *)
  let mark = Array.make nvars false in
  let cells = ref 0 in
  (* Entering column: most negative reduced cost (Dantzig), or the first
     negative one (Bland) once [bland] is set.  Variables fixed at 0
     (upper bound 0) can never move and are never entered. *)
  let entering bland =
    let obj = r * width in
    if bland then begin
      let rec first j =
        if j = nvars then None
        else if t.(obj + j) < -.eps && bound j > 0.0 then Some j
        else first (j + 1)
      in
      first 0
    end
    else begin
      let best = ref (-1) and best_val = ref (-.eps) in
      for j = 0 to nvars - 1 do
        if t.(obj + j) < !best_val && bound j > 0.0 then begin
          best := j;
          best_val := t.(obj + j)
        end
      done;
      if !best < 0 then None else Some !best
    end
  in
  (* Ratio test.  The entering variable grows from 0 by tau; each basic
     variable moves by -tau * a_i, limited below by 0 and above by its own
     bound; the entering variable itself is limited by [bound col].
     Returns the limiting event. *)
  let leaving col bland =
    let best = ref (-1)
    and best_ratio = ref infinity
    and best_upper = ref false in
    for i = 0 to r - 1 do
      let a = t.((i * width) + col) in
      let candidate ratio upper_leave =
        let strictly_better = !best < 0 || ratio < !best_ratio -. eps in
        let tie_break =
          bland && !best >= 0
          && Float.abs (ratio -. !best_ratio) <= eps
          && basis.(i) < basis.(!best)
        in
        if strictly_better || tie_break then begin
          best := i;
          best_ratio := ratio;
          best_upper := upper_leave
        end
      in
      if a > eps then candidate (t.((i * width) + nvars) /. a) false
      else if a < -.eps then begin
        let ub = bound basis.(i) in
        if ub < infinity then candidate ((ub -. t.((i * width) + nvars)) /. -.a) true
      end
    done;
    let own = bound col in
    if own <= !best_ratio then
      if own = infinity then `Unbounded else `Flip
    else if !best < 0 then `Unbounded
    else `Pivot (!best, !best_upper)
  in
  (* Re-flip column [c] (substitute x := u - x): negate the column and
     charge u * a_i to every rhs, objective row included. *)
  let flip_column c u =
    for i = 0 to r do
      let k = (i * width) + c in
      let a = t.(k) in
      if a <> 0.0 then begin
        t.((i * width) + nvars) <- t.((i * width) + nvars) -. (a *. u);
        t.(k) <- -.a
      end
    done
  in
  let pivot row col =
    let base_p = row * width in
    let p = t.(base_p + col) in
    let cols_p = nnz.(row) and len_p = nnz_len.(row) in
    for k = 0 to len_p - 1 do
      let c = cols_p.(k) in
      t.(base_p + c) <- t.(base_p + c) /. p
    done;
    t.(base_p + col) <- 1.0;
    t.(base_p + nvars) <- t.(base_p + nvars) /. p;
    cells := !cells + len_p;
    for i = 0 to r do
      if i <> row then begin
        let base_i = i * width in
        let f = t.(base_i + col) in
        if f <> 0.0 then begin
          let cols_i = nnz.(i) and len_i = nnz_len.(i) in
          for k = 0 to len_i - 1 do
            mark.(cols_i.(k)) <- true
          done;
          for k = 0 to len_p - 1 do
            let c = cols_p.(k) in
            t.(base_i + c) <- t.(base_i + c) -. (f *. t.(base_p + c));
            if not mark.(c) then begin
              mark.(c) <- true;
              push i c
            end
          done;
          t.(base_i + col) <- 0.0;
          t.(base_i + nvars) <- t.(base_i + nvars) -. (f *. t.(base_p + nvars));
          let cols_i = nnz.(i) and len_i = nnz_len.(i) in
          for k = 0 to len_i - 1 do
            mark.(cols_i.(k)) <- false
          done;
          cells := !cells + len_p
        end
      end
    done;
    basis.(row) <- col
  in
  let degenerate_streak = ref 0 in
  let bland_active = ref false in
  let bland_counted = ref false in
  let flips = ref 0 in
  let finish iter outcome =
    Obs.Metrics.incr m_solves;
    Obs.Metrics.add m_iterations iter;
    Obs.Metrics.add m_bound_flips !flips;
    Obs.Metrics.add m_cells !cells;
    outcome
  in
  let rec loop iter =
    if iter > max_iterations then failwith "Simplex: iteration limit";
    let bland = !degenerate_streak > 2 * nvars in
    if bland && not !bland_active then begin
      bland_active := true;
      (* Count activations once per solve: oscillating in and out of
         Bland's rule within one solve is a single event. *)
      if not !bland_counted then begin
        bland_counted := true;
        Obs.Metrics.incr m_bland_activations
      end
    end;
    (if not bland then bland_active := false);
    match entering bland with
    | None ->
        let solution = Array.make n 0.0 in
        Array.iteri
          (fun i b -> if b < n then solution.(b) <- t.((i * width) + nvars))
          basis;
        for j = 0 to n - 1 do
          if flipped.(j) then solution.(j) <- upper.(j) -. solution.(j)
        done;
        finish iter
          (Optimal { value = t.((r * width) + nvars); solution; iterations = iter })
    | Some col -> (
        match leaving col bland with
        | `Unbounded -> finish iter Unbounded
        | `Flip ->
            (* The entering variable reaches its own upper bound first:
               no basis change, strict objective improvement. *)
            flip_column col (bound col);
            flipped.(col) <- not flipped.(col);
            incr flips;
            degenerate_streak := 0;
            loop (iter + 1)
        | `Pivot (row, upper_leave) ->
            let before = t.((row * width) + nvars) in
            if upper_leave then begin
              (* The leaving variable exits at its upper bound: flip it
                 first (its column is the unit vector of [row], so only
                 that rhs moves), then pivot on the now-negative entry. *)
              let l = basis.(row) in
              flip_column l (bound l);
              flipped.(l) <- not flipped.(l)
            end;
            pivot row col;
            let step = Float.abs (t.((row * width) + nvars) -. before) in
            if (not upper_leave) && before <= eps then incr degenerate_streak
            else if upper_leave && step <= eps then incr degenerate_streak
            else degenerate_streak := 0;
            loop (iter + 1))
  in
  loop 0

let validate_sparse ~n (cols, coefs, b) =
  if Array.length cols <> Array.length coefs then invalid_arg "Simplex: ragged row";
  Array.iter (fun c -> if c < 0 || c >= n then invalid_arg "Simplex: column out of range") cols;
  if b < 0.0 then invalid_arg "Simplex: negative rhs"

let maximize_bounded ?(eps = 1e-9) ?max_iterations ~objective ~upper ~rows () =
  let n = Array.length objective in
  if Array.length upper <> n then invalid_arg "Simplex: upper bound length";
  Array.iter
    (fun u -> if u < 0.0 || Float.is_nan u then invalid_arg "Simplex: negative upper bound")
    upper;
  let rows = Array.of_list rows in
  Array.iter (validate_sparse ~n) rows;
  let r = Array.length rows in
  let max_iterations =
    match max_iterations with Some k -> k | None -> 50 * (n + r + 1)
  in
  solve_core ~eps ~max_iterations ~objective ~upper ~rows

(* Dense adapter: same interface and [Optimal]/[Unbounded] semantics as the
   historical dense solver.  Rows with a single positive coefficient are
   box constraints in disguise — they become implicit upper bounds instead
   of rows; all-zero and single-negative-coefficient rows are redundant
   under [x >= 0, b >= 0] and are dropped. *)
let maximize ?(eps = 1e-9) ?max_iterations problem =
  let n = Array.length problem.objective in
  let upper = Array.make n infinity in
  let general = ref [] in
  let r_general = ref 0 in
  List.iter
    (fun (a, b) ->
      if Array.length a <> n then invalid_arg "Simplex: ragged row";
      if b < 0.0 then invalid_arg "Simplex: negative rhs";
      let nz = ref [] and count = ref 0 in
      for j = n - 1 downto 0 do
        if a.(j) <> 0.0 then begin
          nz := (j, a.(j)) :: !nz;
          incr count
        end
      done;
      match !nz with
      | [] -> ()
      | [ (j, aj) ] when aj > 0.0 -> upper.(j) <- Float.min upper.(j) (b /. aj)
      | [ (_, aj) ] when aj < 0.0 -> ()
      | nz ->
          let k = !count in
          let cols = Array.make k 0 and coefs = Array.make k 0.0 in
          List.iteri
            (fun i (j, aj) ->
              cols.(i) <- j;
              coefs.(i) <- aj)
            nz;
          incr r_general;
          general := (cols, coefs, b) :: !general)
    problem.rows;
  let rows = Array.of_list (List.rev !general) in
  let r = Array.length rows in
  let max_iterations =
    match max_iterations with
    | Some k -> k
    | None -> 50 * (n + r + List.length problem.rows + 1)
  in
  solve_core ~eps ~max_iterations ~objective:problem.objective ~upper ~rows
