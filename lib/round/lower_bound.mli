(** Certified lower bounds on the optimal number of rounds.

    Both bounds are per-edge counting arguments, so they hold for every
    feasible solution unconditionally — the lab gate leans on that: an
    algorithm reporting fewer rounds than [certified] is a checker bug by
    definition, never a lucky packing.

    - {b congestion}: edge [e] carries total demand [load(e)] but only
      [c_e] per round, so at least [ceil(load(e) / c_e)] rounds are
      needed (the ROUND-UFP/ROUND-SAP papers' baseline bound).
    - {b pairwise}: two tasks through [e] with [2 d_j > c_e] can never
      share a round — stacked they exceed [c_e] — so the count of such
      tasks at any edge is a clique lower bound the congestion bound can
      miss by a factor of ~2 (many demands just over half capacity). *)

val congestion : Instance.t -> int
(** [max_e ceil(load(e) / c_e)]; 0 for the empty instance. *)

val pairwise : Instance.t -> int
(** [max_e |{j : e in I_j, 2 d_j > c_e}|]; 0 for the empty instance. *)

val certified : Instance.t -> int
(** [max congestion pairwise] — the strongest bound this oracle certifies
    without search.  {!Exact.solve} can raise it further on small
    instances. *)
