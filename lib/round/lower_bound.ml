module Task = Core.Task
module Path = Core.Path

let congestion (inst : Instance.t) =
  let path = inst.Instance.path in
  let load = Core.Instance.load_profile path inst.Instance.tasks in
  let best = ref 0 in
  Array.iteri
    (fun e l ->
      let c = Path.capacity path e in
      (* ceil division; capacities are positive by Path.create *)
      best := max !best ((l + c - 1) / c))
    load;
  !best

let pairwise (inst : Instance.t) =
  let path = inst.Instance.path in
  let m = Path.num_edges path in
  let big = Array.make m 0 in
  List.iter
    (fun (j : Task.t) ->
      for e = j.Task.first_edge to j.Task.last_edge do
        if 2 * j.Task.demand > Path.capacity path e then big.(e) <- big.(e) + 1
      done)
    inst.Instance.tasks;
  Array.fold_left max 0 big

let certified inst = max (congestion inst) (pairwise inst)
