(** Exact minimum-round search, mirroring {!Lab.Exact_bb}'s shape: an
    anytime branch-and-bound with a node budget plus an independent
    brute-force oracle the tests and the lab gate cross-check it against.

    {b Realizability.}  Both searches reduce to "can this task set share
    one round?", decided exactly by a height DFS whose candidate heights
    are the bounded subset sums of the round's demands — complete by the
    gravity argument (any feasible packing normalises so every task rests
    on the floor or on another task, making each height a sum of the
    demands below it).  Verdicts are memoised by task-id set, so the
    partition searches replay them for free.

    {b Branch-and-bound.}  Tasks in decreasing-demand order are assigned
    to rounds; opening round [r] is only allowed when rounds [0..r-1] are
    occupied (the standard partition symmetry cut).  The round count [r]
    is tried in ascending order from {!Lower_bound.certified}, so the
    first feasible [r] is optimal; each fully-refuted [r] raises the
    certified lower bound even when the budget later runs out, making the
    search an anytime bound exactly as in {!Lab.Exact_bb}. *)

type outcome = {
  rounds : Core.Solution.sap list;
      (** the best (fewest-rounds) checker-feasible solution found —
          optimal when [optimal], else the greedy incumbent *)
  value : int;  (** [List.length rounds] *)
  lower_bound : int;
      (** certified: every partition into fewer rounds was refuted (or is
          impossible by {!Lower_bound.certified}) *)
  optimal : bool;  (** [value = lower_bound] proved within budget *)
  nodes : int;  (** assignment nodes expanded *)
}

val default_max_nodes : int

val solve : ?max_nodes:int -> Instance.t -> outcome

val task_cap : int
(** Largest instance {!brute_rounds} will touch (partition enumeration is
    a Bell number). *)

val brute_rounds : Instance.t -> int
(** Exact optimum by enumerating every set partition (restricted-growth
    strings) and keeping the fewest-blocks partition whose blocks are all
    realizable.  @raise Invalid_argument above {!task_cap}. *)

val realizable : Core.Path.t -> Core.Task.t list -> Core.Solution.sap option
(** One-round feasibility oracle (exposed for tests): a feasible SAP
    placement of {e all} the given tasks, or [None] when none exists. *)
