(** The uniform algorithm registry for ROUND-SAP — name-keyed dispatch so
    the server, the CLI, the lab and the bench enumerate the same list
    instead of hand-writing match arms (the Solver-module-type pattern the
    ROADMAP wants for the SAP side too). *)

type t = {
  name : string;
  solve : Instance.t -> Core.Solution.sap list;
  description : string;
}

val all : t list
(** ["first-fit"], ["next-fit"], ["bands"], ["exact"] (the anytime
    {!Exact.solve} under its default budget — optimal on small instances,
    a checked incumbent past the budget). *)

val find : string -> t option

val names : string list
