(** A ROUND-SAP instance: the same capacitated path and task set as SAP,
    but every task is mandatory and the objective flips — pack {e all}
    tasks into the minimum number of rounds, where each round is a fresh
    copy of the capacity profile and must hold a feasible SAP packing of
    the tasks assigned to it (arXiv:2202.03492).

    Weights ride along in the carrier (the text format is deliberately
    isomorphic to [sap-instance v1]) but no ROUND-SAP algorithm reads
    them. *)

type t = private { path : Core.Path.t; tasks : Core.Task.t list }

val create : Core.Path.t -> Core.Task.t list -> (t, string) result
(** Validates that task ids are unique, every task lies on the path, and
    every task fits alone ([d_j <= b(j)]) — a task that cannot be packed
    in any round by itself makes the instance infeasible, which ROUND-SAP
    has no way to express. *)

val create_exn : Core.Path.t -> Core.Task.t list -> t
(** [create] or [Invalid_argument]. *)

val task_count : t -> int

val find_task : t -> int -> Core.Task.t option
(** Lookup by id (ids are unique by construction). *)
