(** First-fit and next-fit round packing — the bin-packing baselines
    lifted to capacity profiles via {!Dsa.First_fit.insert}.

    Both process tasks in decreasing-demand order (the FFD flavour; ties
    by left endpoint then id, so runs are deterministic).  First-fit
    probes every open round in order and opens a new one only when no
    round admits the task as-is; next-fit probes only the newest round,
    trading quality for an O(n) scan — it exists as the weak baseline
    the lab ratios are read against. *)

val first_fit : Instance.t -> Core.Solution.sap list

val next_fit : Instance.t -> Core.Solution.sap list
