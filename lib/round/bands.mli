(** Paper-style bands-plus-coloring round packing (after the ROUND-SAP
    constant-factor scheme of arXiv:2202.03492, honestly simplified).

    Tasks are classified by demand into geometric bands: class [k] holds
    demands in [(2^(k-1), 2^k]].  Each class is strip-transformed — the
    mandatory-task analogue of {!Dsa.Strip_transform}: every demand
    rounds up to the class ceiling [u = 2^k] (at most doubling load), so
    the class becomes a uniform-demand instance and
    {!Dsa.Interval_coloring} colors it {e optimally} (colors = max
    class-load / u).  Colors then map to rounds:

    - tasks whose bottleneck admits [L = min_class floor(b(j)/u)] full
      strips stack [L] colors per round at heights [0, u, ..., (L-1) u];
    - "tight" tasks ([d <= b(j) < u]) get one color per round at height
      0 — provably no two overlapping tight tasks of a class can share a
      round at any heights, so this is optimal within the subgroup.

    A final compaction pass tries to dissolve each round (smallest
    remaining area first) into the others via {!Dsa.First_fit.insert},
    which is what lets bands beat plain first-fit on mixed-demand
    families without ever risking feasibility — every placement is
    re-probed against the true capacity profile. *)

val solve : Instance.t -> Core.Solution.sap list
