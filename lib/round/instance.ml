module Task = Core.Task
module Path = Core.Path

type t = { path : Path.t; tasks : Task.t list }

let create path tasks =
  let seen = Hashtbl.create 32 in
  let rec validate = function
    | [] -> Ok ()
    | (j : Task.t) :: rest ->
        if Hashtbl.mem seen j.Task.id then
          Error (Printf.sprintf "duplicate task id %d" j.Task.id)
        else if j.Task.last_edge >= Path.num_edges path then
          Error
            (Printf.sprintf "task %d leaves the path (last_edge %d, %d edges)"
               j.Task.id j.Task.last_edge (Path.num_edges path))
        else if j.Task.demand > Path.bottleneck_of path j then
          Error
            (Printf.sprintf
               "task %d cannot fit in any round alone (demand %d > bottleneck %d)"
               j.Task.id j.Task.demand
               (Path.bottleneck_of path j))
        else begin
          Hashtbl.add seen j.Task.id ();
          validate rest
        end
  in
  match validate tasks with
  | Ok () -> Ok { path; tasks }
  | Error _ as e -> e

let create_exn path tasks =
  match create path tasks with
  | Ok t -> t
  | Error m -> invalid_arg ("Round.Instance.create: " ^ m)

let task_count t = List.length t.tasks

let find_task t id =
  List.find_opt (fun (j : Task.t) -> j.Task.id = id) t.tasks
