module Task = Core.Task
module Path = Core.Path

let c_classes = Obs.Metrics.counter "round.bands.classes"

let c_dissolved = Obs.Metrics.counter "round.bands.dissolved"

let ceil_pow2 d =
  let rec go u = if u >= d then u else go (2 * u) in
  go 1

(* Surrogate with the class-ceiling demand; id is preserved so colored
   surrogates map back to the originals. *)
let surrogate ~u (j : Task.t) =
  Task.make ~id:j.Task.id ~first_edge:j.Task.first_edge
    ~last_edge:j.Task.last_edge ~demand:u ~weight:j.Task.weight

let area (j : Task.t) = j.Task.demand * Task.span j

let round_area sol =
  List.fold_left (fun acc (j, _) -> acc + area j) 0 sol

(* Pack one demand class (all demands in (u/2, u]) into class-private
   rounds; see the .mli for why each piece is feasible. *)
let pack_class path ~u cls =
  let by_id = Hashtbl.create 16 in
  List.iter (fun (j : Task.t) -> Hashtbl.replace by_id j.Task.id j) cls;
  let original (s : Task.t) = Hashtbl.find by_id s.Task.id in
  let full, tight =
    List.partition (fun j -> Path.bottleneck_of path j >= u) cls
  in
  let full_rounds =
    match full with
    | [] -> []
    | _ ->
        let levels =
          List.fold_left
            (fun acc j -> min acc (Path.bottleneck_of path j / u))
            max_int full
        in
        let colored =
          Dsa.Interval_coloring.color (List.map (surrogate ~u) full)
        in
        let chi = Dsa.Interval_coloring.colors_used colored in
        let buckets = Array.make ((chi + levels - 1) / levels) [] in
        List.iter
          (fun (s, c) ->
            let r = c / levels and level = c mod levels in
            buckets.(r) <- (original s, level * u) :: buckets.(r))
          colored;
        Array.to_list buckets
  in
  let tight_rounds =
    match tight with
    | [] -> []
    | _ ->
        let colored =
          Dsa.Interval_coloring.color (List.map (surrogate ~u) tight)
        in
        let chi = Dsa.Interval_coloring.colors_used colored in
        let buckets = Array.make chi [] in
        List.iter
          (fun (s, c) -> buckets.(c) <- (original s, 0) :: buckets.(c))
          colored;
        Array.to_list buckets
  in
  full_rounds @ tight_rounds

(* Try to relocate every task of [sol] into the kept rounds; [None] when
   any task fits nowhere (the round survives unchanged). *)
let dissolve path kept sol =
  let rec place kept = function
    | [] -> Some kept
    | ((j : Task.t), _) :: rest ->
        let rec try_rounds acc = function
          | [] -> None
          | r :: more -> (
              match Dsa.First_fit.insert path r j with
              | Some h -> Some (List.rev_append acc (((j, h) :: r) :: more))
              | None -> try_rounds (r :: acc) more)
        in
        Option.bind (try_rounds [] kept) (fun kept -> place kept rest)
  in
  let by_demand =
    List.sort
      (fun ((a : Task.t), _) ((b : Task.t), _) ->
        match Int.compare b.Task.demand a.Task.demand with
        | 0 -> Int.compare a.Task.id b.Task.id
        | c -> c)
      sol
  in
  place kept by_demand

let solve (inst : Instance.t) =
  let path = inst.Instance.path in
  let classes = Hashtbl.create 8 in
  List.iter
    (fun (j : Task.t) ->
      let u = ceil_pow2 j.Task.demand in
      Hashtbl.replace classes u
        (j :: Option.value ~default:[] (Hashtbl.find_opt classes u)))
    inst.Instance.tasks;
  let keys = List.sort (fun a b -> Int.compare b a) (Hashtbl.fold (fun k _ acc -> k :: acc) classes []) in
  Obs.Metrics.add c_classes (List.length keys);
  let rounds =
    List.concat_map
      (fun u -> pack_class path ~u (Hashtbl.find classes u))
      keys
  in
  (* Compaction: biggest rounds anchor; each smaller round dissolves into
     the survivors when every one of its tasks relocates. *)
  let by_area =
    List.sort (fun a b -> Int.compare (round_area b) (round_area a)) rounds
  in
  List.fold_left
    (fun kept sol ->
      match kept with
      | [] -> [ sol ]
      | _ -> (
          match dissolve path kept sol with
          | Some kept ->
              Obs.Metrics.incr c_dissolved;
              kept
          | None -> kept @ [ sol ]))
    [] by_area
