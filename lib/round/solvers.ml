type t = {
  name : string;
  solve : Instance.t -> Core.Solution.sap list;
  description : string;
}

let all =
  [
    {
      name = "first-fit";
      solve = Greedy.first_fit;
      description = "FFD over rounds via Dsa.First_fit.insert";
    };
    {
      name = "next-fit";
      solve = Greedy.next_fit;
      description = "FFD probing only the newest round";
    };
    {
      name = "bands";
      solve = Bands.solve;
      description = "demand classes + interval coloring + compaction";
    };
    {
      name = "exact";
      solve = (fun inst -> (Exact.solve inst).Exact.rounds);
      description = "anytime branch-and-bound (greedy incumbent past budget)";
    };
  ]

let find name = List.find_opt (fun s -> s.name = name) all

let names = List.map (fun s -> s.name) all
