module Task = Core.Task

let c_rounds_opened = Obs.Metrics.counter "round.greedy.rounds_opened"

let ffd_order ts =
  List.sort
    (fun (a : Task.t) (b : Task.t) ->
      match Int.compare b.Task.demand a.Task.demand with
      | 0 -> (
          match Int.compare a.Task.first_edge b.Task.first_edge with
          | 0 -> Int.compare a.Task.id b.Task.id
          | c -> c)
      | c -> c)
    ts

(* Rounds are kept newest-first so next-fit is "try the head"; reversed
   on exit so round 0 is the first opened. *)
let pack ~probe_all (inst : Instance.t) =
  let path = inst.Instance.path in
  let place rounds j =
    let rec try_rounds acc = function
      | [] -> None
      | sol :: rest -> (
          match Dsa.First_fit.insert path sol j with
          | Some h -> Some (List.rev_append acc (((j, h) :: sol) :: rest))
          | None -> if probe_all then try_rounds (sol :: acc) rest else None)
    in
    match try_rounds [] rounds with
    | Some rounds -> rounds
    | None ->
        Obs.Metrics.incr c_rounds_opened;
        (* Instance.create guarantees the task fits alone, so height 0
           always works in a fresh round. *)
        [ (j, 0) ] :: rounds
  in
  List.rev (List.fold_left place [] (ffd_order inst.Instance.tasks))

let first_fit inst = pack ~probe_all:true inst

let next_fit inst = pack ~probe_all:false inst
