(** Machine checking of ROUND-SAP solutions, in the house style of
    {!Core.Checker}: no feasibility claim is taken on faith.

    A solution is a list of rounds, each a SAP placement on the shared
    capacity profile.  [check] verifies (a) every instance task appears
    in exactly one round and is field-identical to the instance's copy,
    (b) no round is empty (an empty round inflates the objective and
    always indicates a bug), and (c) every round is SAP-feasible on the
    profile per {!Core.Checker.sap_feasible}. *)

val check :
  Instance.t -> Core.Solution.sap list -> (unit, string) result

val expect_ok : (unit, string) result -> unit
(** Raises [Failure] with the carried reason; assertion helper. *)
