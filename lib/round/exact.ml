module Task = Core.Task
module Path = Core.Path

(* ---------- one-round realizability ---------- *)

let conflicts (j : Task.t) h ((i : Task.t), hi) =
  Task.overlaps j i && h < hi + i.Task.demand && hi < h + j.Task.demand

(* Candidate heights: subset sums of the round's demands, bounded by the
   largest bottleneck.  Complete by the gravity/normal-form argument
   (see .mli). *)
let subset_sums ~cap demands =
  let module S = Set.Make (Int) in
  let sums =
    List.fold_left
      (fun acc d ->
        S.fold
          (fun s acc -> if s + d <= cap then S.add (s + d) acc else acc)
          acc acc)
      (S.singleton 0) demands
  in
  S.elements sums

let realizable path ts =
  match ts with
  | [] -> Some []
  | _ ->
      let by_demand =
        List.sort
          (fun (a : Task.t) (b : Task.t) ->
            match Int.compare b.Task.demand a.Task.demand with
            | 0 -> Int.compare a.Task.id b.Task.id
            | c -> c)
          ts
      in
      let cap =
        List.fold_left
          (fun acc j -> max acc (Path.bottleneck_of path j))
          0 by_demand
      in
      let sums = subset_sums ~cap (List.map (fun (j : Task.t) -> j.Task.demand) by_demand) in
      let rec go placed = function
        | [] -> Some (List.rev placed)
        | (j : Task.t) :: rest ->
            let ceiling = Path.bottleneck_of path j - j.Task.demand in
            let rec try_heights = function
              | [] -> None
              | h :: more ->
                  if h > ceiling then None (* sums ascend: nothing above fits *)
                  else if List.exists (conflicts j h) placed then
                    try_heights more
                  else begin
                    match go ((j, h) :: placed) rest with
                    | Some _ as ok -> ok
                    | None -> try_heights more
                  end
            in
            try_heights sums
      in
      go [] by_demand

(* Verdicts keyed by the round's sorted id set; placements are cheap to
   recompute for the few winning rounds, so only the boolean is kept. *)
let realizable_memo memo path ts =
  let key = List.sort Int.compare (List.map (fun (j : Task.t) -> j.Task.id) ts) in
  match Hashtbl.find_opt memo key with
  | Some v -> v
  | None ->
      let v = realizable path ts <> None in
      Hashtbl.add memo key v;
      v

(* ---------- branch and bound ---------- *)

type outcome = {
  rounds : Core.Solution.sap list;
  value : int;
  lower_bound : int;
  optimal : bool;
  nodes : int;
}

let default_max_nodes = 200_000

let by_demand_desc ts =
  List.sort
    (fun (a : Task.t) (b : Task.t) ->
      match Int.compare b.Task.demand a.Task.demand with
      | 0 -> Int.compare a.Task.id b.Task.id
      | c -> c)
    ts

let greedy_incumbent inst =
  let a = Greedy.first_fit inst in
  let b = Bands.solve inst in
  if List.length b <= List.length a then b else a

let solve ?(max_nodes = default_max_nodes) (inst : Instance.t) =
  let path = inst.Instance.path in
  let tasks = Array.of_list (by_demand_desc inst.Instance.tasks) in
  let n = Array.length tasks in
  if n = 0 then
    { rounds = []; value = 0; lower_bound = 0; optimal = true; nodes = 0 }
  else begin
    let inc = greedy_incumbent inst in
    let ub = List.length inc in
    let memo = Hashtbl.create 256 in
    let nodes = ref 0 in
    let budget_hit = ref false in
    (* Feasibility of packing all tasks into exactly <= r rounds; groups
       are built RGS-style (open round k only when 0..k-1 occupied). *)
    let try_r r =
      let groups = Array.make r [] in
      let rec go i used =
        if i = n then true
        else
          let limit = min (used + 1) r in
          let rec try_round k =
            if k >= limit || !budget_hit then false
            else begin
              incr nodes;
              if !nodes > max_nodes then begin
                budget_hit := true;
                false
              end
              else begin
                groups.(k) <- tasks.(i) :: groups.(k);
                let ok =
                  realizable_memo memo path groups.(k)
                  && go (i + 1) (max used (k + 1))
                in
                if ok then true
                else begin
                  groups.(k) <- List.tl groups.(k);
                  try_round (k + 1)
                end
              end
            end
          in
          try_round 0
      in
      if go 0 0 then
        Some
          (Array.to_list groups
          |> List.filter (fun ts -> ts <> [])
          |> List.map (fun ts ->
                 match realizable path ts with
                 | Some sol -> sol
                 | None -> assert false (* memo said yes *)))
      else None
    in
    let rec loop r =
      if r >= ub then
        { rounds = inc; value = ub; lower_bound = ub; optimal = true; nodes = !nodes }
      else
        match try_r r with
        | Some sols ->
            { rounds = sols; value = r; lower_bound = r; optimal = true; nodes = !nodes }
        | None when !budget_hit ->
            { rounds = inc; value = ub; lower_bound = r; optimal = false; nodes = !nodes }
        | None -> loop (r + 1)
    in
    loop (max 1 (Lower_bound.certified inst))
  end

(* ---------- brute force ---------- *)

let task_cap = 8

let brute_rounds (inst : Instance.t) =
  let n = Instance.task_count inst in
  if n > task_cap then
    invalid_arg
      (Printf.sprintf "Round.Exact.brute_rounds: %d tasks exceeds cap %d" n
         task_cap);
  if n = 0 then 0
  else begin
    let path = inst.Instance.path in
    let tasks = Array.of_list inst.Instance.tasks in
    let memo = Hashtbl.create 256 in
    let best = ref n in
    (* Restricted-growth strings: every set partition exactly once, in
       input id order — deliberately a different search shape than
       [solve]'s demand-ordered deepening, so agreement means something. *)
    let assign = Array.make n 0 in
    let rec enum i blocks =
      if blocks >= !best then () (* can only get worse *)
      else if i = n then best := min !best blocks
      else
        for k = 0 to min blocks (n - 1) do
          assign.(i) <- k;
          let block =
            List.filteri (fun idx _ -> idx <= i && assign.(idx) = k)
              (Array.to_list tasks)
          in
          (* only the block that changed needs re-checking *)
          if realizable_memo memo path block then
            enum (i + 1) (max blocks (k + 1))
        done
    in
    enum 0 0;
    !best
  end
