module Task = Core.Task

let ( let* ) = Result.bind

let check (inst : Instance.t) rounds =
  let by_id = Hashtbl.create 32 in
  List.iter (fun (j : Task.t) -> Hashtbl.replace by_id j.Task.id j) inst.Instance.tasks;
  let placed = Hashtbl.create 32 in
  let* () =
    let rec per_round r = function
      | [] -> Ok ()
      | sol :: rest ->
          let* () =
            if sol = [] then Error (Printf.sprintf "round %d is empty" r)
            else Ok ()
          in
          let* () =
            let rec per_task = function
              | [] -> Ok ()
              | ((j : Task.t), _) :: tl -> (
                  match Hashtbl.find_opt by_id j.Task.id with
                  | None ->
                      Error
                        (Printf.sprintf "round %d places unknown task id %d" r
                           j.Task.id)
                  | Some orig when orig <> j ->
                      Error
                        (Printf.sprintf "round %d mutated task %d" r j.Task.id)
                  | Some _ ->
                      if Hashtbl.mem placed j.Task.id then
                        Error
                          (Printf.sprintf
                             "task %d placed more than once (again in round %d)"
                             j.Task.id r)
                      else begin
                        Hashtbl.add placed j.Task.id r;
                        per_task tl
                      end)
            in
            per_task sol
          in
          let* () =
            Result.map_error
              (fun m -> Printf.sprintf "round %d infeasible: %s" r m)
              (Core.Checker.sap_feasible inst.Instance.path sol)
          in
          per_round (r + 1) rest
    in
    per_round 0 rounds
  in
  let missing =
    List.filter
      (fun (j : Task.t) -> not (Hashtbl.mem placed j.Task.id))
      inst.Instance.tasks
  in
  match missing with
  | [] -> Ok ()
  | j :: _ ->
      Error
        (Printf.sprintf "%d task(s) unplaced (first: id %d)" (List.length missing)
           j.Task.id)

let expect_ok = function Ok () -> () | Error m -> failwith m
