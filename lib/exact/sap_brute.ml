module Task = Core.Task
module Path = Core.Path

(* The search is exponential in the task count with no LP pruning: past
   this many tasks it is effectively non-terminating, and callers should
   use [Lab.Exact_bb] instead.  A hard guard beats a silent hang. *)
let task_cap = 16

let guard what n =
  if n > task_cap then
    invalid_arg
      (Printf.sprintf
         "Exact.Sap_brute.%s: %d tasks exceed the exhaustive-search cap of \
          %d (use Lab.Exact_bb for larger instances)"
         what n task_cap)

let height_candidates path ts =
  let bound = Path.max_capacity path in
  let demands = List.map (fun (j : Task.t) -> j.Task.demand) ts in
  Util.Subset_sum.distinct_sums ~bound demands

let conflicts (j : Task.t) p ((i : Task.t), hi) =
  Task.overlaps j i && p < hi + i.Task.demand && hi < p + j.Task.demand

let placeable path placed j p =
  p + (j : Task.t).Task.demand <= Path.bottleneck_of path j
  && not (List.exists (conflicts j p) placed)

(* Interchangeable tasks (same interval, demand and weight) generate
   search-tree permutations that all encode the same family of solutions.
   Canonical form: within a run of identical tasks, heights are
   non-decreasing and no placed task follows a skipped one. *)
let identical (x : Task.t) (y : Task.t) =
  x.Task.first_edge = y.Task.first_edge
  && x.Task.last_edge = y.Task.last_edge
  && x.Task.demand = y.Task.demand
  && Float.equal x.Task.weight y.Task.weight

(* Sort for the weight-suffix bound (heaviest first) with a shape
   tie-break so identical tasks end up adjacent for the symmetry cut. *)
let search_order (x : Task.t) (y : Task.t) =
  let c = Float.compare y.Task.weight x.Task.weight in
  if c <> 0 then c
  else
    let c = Int.compare x.Task.first_edge y.Task.first_edge in
    if c <> 0 then c
    else
      let c = Int.compare x.Task.last_edge y.Task.last_edge in
      if c <> 0 then c
      else
        let c = Int.compare x.Task.demand y.Task.demand in
        if c <> 0 then c else Int.compare x.Task.id y.Task.id

type prev_choice = Free | Skipped | Placed_at of int

let solve path ts =
  guard "solve" (List.length ts);
  let a = Array.of_list ts in
  Array.sort search_order a;
  let n = Array.length a in
  let suffix = Array.make (n + 1) 0.0 in
  for i = n - 1 downto 0 do
    suffix.(i) <- suffix.(i + 1) +. a.(i).Task.weight
  done;
  let candidates = height_candidates path ts in
  let best = ref [] in
  let best_w = ref 0.0 in
  let rec branch i placed w prev =
    if w > !best_w then begin
      best_w := w;
      best := placed
    end;
    if i < n && w +. suffix.(i) > !best_w +. 1e-12 then begin
      let j = a.(i) in
      let constr =
        if i > 0 && identical a.(i - 1) j then prev else Free
      in
      (match constr with
      | Skipped -> () (* placing after an identical skip is a permutation *)
      | Free | Placed_at _ ->
          let floor_h = match constr with Placed_at h -> h | _ -> 0 in
          List.iter
            (fun p ->
              if p >= floor_h && placeable path placed j p then
                branch (i + 1) ((j, p) :: placed) (w +. j.Task.weight)
                  (Placed_at p))
            candidates);
      branch (i + 1) placed w Skipped
    end
  in
  branch 0 [] 0.0 Free;
  !best

let value path ts = Core.Solution.sap_weight (solve path ts)

exception Found of Core.Solution.sap

let realizable path ts =
  guard "realizable" (List.length ts);
  (* Place every task or fail; first full placement wins.  Tasks in
     decreasing demand order — big rectangles constrain most — with a
     shape tie-break so identical tasks sit adjacent and are forced into
     non-decreasing heights. *)
  let a = Array.of_list ts in
  Array.sort
    (fun (x : Task.t) y ->
      let c = Int.compare y.Task.demand x.Task.demand in
      if c <> 0 then c else search_order x y)
    a;
  let n = Array.length a in
  let candidates = height_candidates path ts in
  let rec branch i placed prev =
    if i = n then raise (Found placed)
    else
      let j = a.(i) in
      let floor_h =
        if i > 0 && identical a.(i - 1) j then
          match prev with Placed_at h -> h | _ -> 0
        else 0
      in
      List.iter
        (fun p ->
          if p >= floor_h && placeable path placed j p then
            branch (i + 1) ((j, p) :: placed) (Placed_at p))
        candidates
  in
  try
    branch 0 [] Free;
    None
  with Found sol -> Some sol
