module Task = Core.Task
module Path = Core.Path

let height_candidates path ts =
  let bound = Path.max_capacity path in
  let demands = List.map (fun (j : Task.t) -> j.Task.demand) ts in
  Util.Subset_sum.distinct_sums ~bound demands

let conflicts (j : Task.t) p ((i : Task.t), hi) =
  Task.overlaps j i && p < hi + i.Task.demand && hi < p + j.Task.demand

let placeable path placed j p =
  p + (j : Task.t).Task.demand <= Path.bottleneck_of path j
  && not (List.exists (conflicts j p) placed)

let solve path ts =
  let a = Array.of_list ts in
  Array.sort (fun (x : Task.t) y -> Float.compare y.Task.weight x.Task.weight) a;
  let n = Array.length a in
  let suffix = Array.make (n + 1) 0.0 in
  for i = n - 1 downto 0 do
    suffix.(i) <- suffix.(i + 1) +. a.(i).Task.weight
  done;
  let candidates = height_candidates path ts in
  let best = ref [] in
  let best_w = ref 0.0 in
  let rec branch i placed w =
    if w > !best_w then begin
      best_w := w;
      best := placed
    end;
    if i < n && w +. suffix.(i) > !best_w +. 1e-12 then begin
      let j = a.(i) in
      List.iter
        (fun p ->
          if placeable path placed j p then
            branch (i + 1) ((j, p) :: placed) (w +. j.Task.weight))
        candidates;
      branch (i + 1) placed w
    end
  in
  branch 0 [] 0.0;
  !best

let value path ts = Core.Solution.sap_weight (solve path ts)

exception Found of Core.Solution.sap

let realizable path ts =
  (* Place every task or fail; first full placement wins.  Tasks in
     decreasing demand order — big rectangles constrain most. *)
  let a = Array.of_list ts in
  Array.sort (fun (x : Task.t) y -> Int.compare y.Task.demand x.Task.demand) a;
  let n = Array.length a in
  let candidates = height_candidates path ts in
  let rec branch i placed =
    if i = n then raise (Found placed)
    else
      let j = a.(i) in
      List.iter
        (fun p -> if placeable path placed j p then branch (i + 1) ((j, p) :: placed))
        candidates
  in
  try
    branch 0 [];
    None
  with Found sol -> Some sol
