(** Exact SAP by exhaustive search — the test oracle.

    Justified by the gravity argument (Observation 11): some optimal
    solution has every height equal to a sum of task demands, so searching
    heights over the distinct bounded subset sums of all demands is
    complete.  The search branches per task on "skip" or "place at h" for
    each non-conflicting candidate height, with residual-weight pruning.
    Exponential: intended for instances of at most a dozen-odd tasks. *)

val solve : Core.Path.t -> Core.Task.t list -> Core.Solution.sap
(** A maximum-weight feasible SAP solution. *)

val value : Core.Path.t -> Core.Task.t list -> float

val realizable : Core.Path.t -> Core.Task.t list -> Core.Solution.sap option
(** [realizable p ts] — a height assignment scheduling *all* of [ts], if
    one exists.  Drives the Fig. 1 experiment (UFPP-feasible task sets with
    no SAP realisation). *)
