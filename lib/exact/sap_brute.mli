(** Exact SAP by exhaustive search — the test oracle.

    Justified by the gravity argument (Observation 11): some optimal
    solution has every height equal to a sum of task demands, so searching
    heights over the distinct bounded subset sums of all demands is
    complete.  The search branches per task on "skip" or "place at h" for
    each non-conflicting candidate height, with residual-weight pruning
    and a symmetry cut: runs of interchangeable tasks (same interval,
    demand, weight) are forced into canonical order — non-decreasing
    heights, never a placement after a skip — so permutations of equal
    stacks are explored once.

    Exponential, and guarded: calls with more than {!task_cap} tasks raise
    [Invalid_argument] instead of silently running forever.  For larger
    instances use the lab's LP-pruned branch and bound ([Lab.Exact_bb]),
    which this module is the correctness oracle for. *)

val task_cap : int
(** The hard task-count guard (16). *)

val solve : Core.Path.t -> Core.Task.t list -> Core.Solution.sap
(** A maximum-weight feasible SAP solution.
    @raise Invalid_argument beyond {!task_cap} tasks. *)

val value : Core.Path.t -> Core.Task.t list -> float

val realizable : Core.Path.t -> Core.Task.t list -> Core.Solution.sap option
(** [realizable p ts] — a height assignment scheduling *all* of [ts], if
    one exists.  Drives the Fig. 1 experiment (UFPP-feasible task sets with
    no SAP realisation).
    @raise Invalid_argument beyond {!task_cap} tasks. *)
