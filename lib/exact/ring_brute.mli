(** Exact SAP on rings by exhaustive search over (subset, routing, heights).

    Each task branches three ways — skipped, routed clockwise or
    counter-clockwise — with heights drawn from the bounded subset sums of
    all demands, exactly as in {!Sap_brute}, plus the same symmetry cut:
    runs of interchangeable tasks (same terminals, demand, weight) are
    forced into non-decreasing (direction, height) order and never place
    after a skip.

    Exponential with base 3, and guarded: calls with more than {!task_cap}
    tasks raise [Invalid_argument] instead of silently running forever.
    Oracle for the Theorem 5 experiments and for [Lab.Exact_bb.solve_ring]. *)

val task_cap : int
(** The hard task-count guard (12). *)

val solve : Core.Ring.t -> Core.Ring.solution
(** A maximum-weight feasible ring solution.
    @raise Invalid_argument beyond {!task_cap} tasks. *)

val value : Core.Ring.t -> float
