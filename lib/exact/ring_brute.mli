(** Exact SAP on rings by exhaustive search over (subset, routing, heights).

    Each task branches three ways — skipped, routed clockwise or
    counter-clockwise — with heights drawn from the bounded subset sums of
    all demands, exactly as in {!Sap_brute}.  Exponential with base 3;
    oracle for the Theorem 5 experiments on rings of up to ~8 tasks. *)

val solve : Core.Ring.t -> Core.Ring.solution
(** A maximum-weight feasible ring solution. *)

val value : Core.Ring.t -> float
