module Ring = Core.Ring

(* Route choice doubles the branching factor of the path search, so the
   hard guard sits lower than [Sap_brute.task_cap]. *)
let task_cap = 12

let guard n =
  if n > task_cap then
    invalid_arg
      (Printf.sprintf
         "Exact.Ring_brute.solve: %d tasks exceed the exhaustive-search cap \
          of %d (use Lab.Exact_bb.solve_ring for larger instances)"
         n task_cap)

(* Interchangeable ring tasks: same terminals, demand and weight.  Their
   (direction, height) choices are forced into non-decreasing
   lexicographic order (Cw < Ccw), and a skip forbids later placements in
   the run — permutations of equal stacks are explored once. *)
let identical (a : Ring.task) (b : Ring.task) =
  a.Ring.src = b.Ring.src && a.Ring.dst = b.Ring.dst
  && a.Ring.demand = b.Ring.demand
  && Float.equal a.Ring.weight b.Ring.weight

let dir_rank = function Ring.Cw -> 0 | Ring.Ccw -> 1

let choice_leq (d1, p1) (d2, p2) =
  dir_rank d1 < dir_rank d2 || (dir_rank d1 = dir_rank d2 && p1 <= p2)

type prev_choice = Free | Skipped | Chose of Ring.direction * int

let solve (r : Ring.t) =
  guard (Array.length r.Ring.tasks);
  let m = Ring.num_edges r in
  let caps = r.Ring.capacities in
  let tasks = Array.copy r.Ring.tasks in
  Array.sort
    (fun (a : Ring.task) b ->
      let c = Float.compare b.Ring.weight a.Ring.weight in
      if c <> 0 then c
      else
        let c = Int.compare a.Ring.src b.Ring.src in
        if c <> 0 then c
        else
          let c = Int.compare a.Ring.dst b.Ring.dst in
          if c <> 0 then c
          else
            let c = Int.compare a.Ring.demand b.Ring.demand in
            if c <> 0 then c else Int.compare a.Ring.id b.Ring.id)
    tasks;
  let n = Array.length tasks in
  let suffix = Array.make (n + 1) 0.0 in
  for i = n - 1 downto 0 do
    suffix.(i) <- suffix.(i + 1) +. tasks.(i).Ring.weight
  done;
  let bound = Array.fold_left max 0 caps in
  let demands = Array.to_list tasks |> List.map (fun (t : Ring.task) -> t.Ring.demand) in
  let candidates = Util.Subset_sum.distinct_sums ~bound demands in
  (* Placed tasks carry their edge list; conflict = shared edge with
     overlapping vertical extent. *)
  let conflicts (edges : int list) p d (edges', p', d') =
    p < p' + d' && p' < p + d
    && List.exists (fun e -> List.mem e edges') edges
  in
  let placeable edges p d placed =
    List.for_all (fun e -> p + d <= caps.(e)) edges
    && not (List.exists (conflicts edges p d) placed)
  in
  let best = ref [] in
  let best_w = ref 0.0 in
  let rec branch i placed sol w prev =
    if w > !best_w then begin
      best_w := w;
      best := sol
    end;
    if i < n && w +. suffix.(i) > !best_w +. 1e-12 then begin
      let tk = tasks.(i) in
      let constr =
        if i > 0 && identical tasks.(i - 1) tk then prev else Free
      in
      (match constr with
      | Skipped -> ()
      | Free | Chose _ ->
          let admissible choice =
            match constr with
            | Chose (d, p) -> choice_leq (d, p) choice
            | _ -> true
          in
          let try_route dir =
            let edges =
              Ring.edges_of_route ~m ~src:tk.Ring.src ~dst:tk.Ring.dst dir
            in
            List.iter
              (fun p ->
                if admissible (dir, p) && placeable edges p tk.Ring.demand placed
                then
                  branch (i + 1)
                    ((edges, p, tk.Ring.demand) :: placed)
                    ((tk, p, dir) :: sol)
                    (w +. tk.Ring.weight)
                    (Chose (dir, p)))
              candidates
          in
          try_route Ring.Cw;
          try_route Ring.Ccw);
      branch (i + 1) placed sol w Skipped
    end
  in
  branch 0 [] [] 0.0 Free;
  !best

let value r = Ring.solution_weight (solve r)
