module Ring = Core.Ring

let solve (r : Ring.t) =
  let m = Ring.num_edges r in
  let caps = r.Ring.capacities in
  let tasks = Array.copy r.Ring.tasks in
  Array.sort
    (fun (a : Ring.task) b -> Float.compare b.Ring.weight a.Ring.weight)
    tasks;
  let n = Array.length tasks in
  let suffix = Array.make (n + 1) 0.0 in
  for i = n - 1 downto 0 do
    suffix.(i) <- suffix.(i + 1) +. tasks.(i).Ring.weight
  done;
  let bound = Array.fold_left max 0 caps in
  let demands = Array.to_list tasks |> List.map (fun (t : Ring.task) -> t.Ring.demand) in
  let candidates = Util.Subset_sum.distinct_sums ~bound demands in
  (* Placed tasks carry their edge list; conflict = shared edge with
     overlapping vertical extent. *)
  let conflicts (edges : int list) p d (edges', p', d') =
    p < p' + d' && p' < p + d
    && List.exists (fun e -> List.mem e edges') edges
  in
  let placeable edges p d placed =
    List.for_all (fun e -> p + d <= caps.(e)) edges
    && not (List.exists (conflicts edges p d) placed)
  in
  let best = ref [] in
  let best_w = ref 0.0 in
  let rec branch i placed sol w =
    if w > !best_w then begin
      best_w := w;
      best := sol
    end;
    if i < n && w +. suffix.(i) > !best_w +. 1e-12 then begin
      let tk = tasks.(i) in
      let try_route dir =
        let edges = Ring.edges_of_route ~m ~src:tk.Ring.src ~dst:tk.Ring.dst dir in
        List.iter
          (fun p ->
            if placeable edges p tk.Ring.demand placed then
              branch (i + 1)
                ((edges, p, tk.Ring.demand) :: placed)
                ((tk, p, dir) :: sol)
                (w +. tk.Ring.weight))
          candidates
      in
      try_route Ring.Cw;
      try_route Ring.Ccw;
      branch (i + 1) placed sol w
    end
  in
  branch 0 [] [] 0.0;
  !best

let value r = Ring.solution_weight (solve r)
