module Task = Core.Task
module Path = Core.Path

type result = {
  packed : Core.Solution.sap;
  dropped : Core.Task.t list;
  retained_weight : float;
  input_weight : float;
}

let by_weight_desc ts =
  List.sort (fun (a : Task.t) b -> Float.compare b.Task.weight a.Task.weight) ts

let transform ?(engine = `First_fit) ~height ~edges ts =
  let input_weight = Task.weight_of ts in
  let strip = Path.uniform ~edges ~capacity:height in
  (* Pass 1: pack in left-endpoint order with the selected engine. *)
  let placed, overflow =
    match engine with
    | `First_fit -> First_fit.pack strip ts
    | `Buddy -> Buddy.pack strip ts
  in
  (* Pass 2: settle (gravity compacts fragmentation), then retry the
     overflow heaviest-first into the compacted arrangement. *)
  let placed = Core.Gravity.settle strip placed in
  let rec retry placed still_out = function
    | [] -> (placed, List.rev still_out)
    | j :: rest -> (
        match Core.Gravity.lowest_free_position strip placed j with
        | Some p -> retry ((j, p) :: placed) still_out rest
        | None -> retry placed (j :: still_out) rest)
  in
  let placed, overflow = retry placed [] (by_weight_desc overflow) in
  (* Pass 3: one more settle + retry round; after it, give up on the rest. *)
  let placed = Core.Gravity.settle strip placed in
  let placed, dropped = retry placed [] overflow in
  {
    packed = placed;
    dropped;
    retained_weight = Core.Solution.sap_weight placed;
    input_weight;
  }

let loss_fraction r =
  if r.input_weight <= 0.0 then 0.0
  else 1.0 -. (r.retained_weight /. r.input_weight)
