module Task = Core.Task
module Path = Core.Path

type result = {
  rho : float;
  lower_bound : float;
  solution : Core.Solution.sap;
}

type engine = First_fit | Buddy

let load_lower_bound path ts =
  let load = Core.Instance.load_profile path ts in
  let best = ref 0.0 in
  Array.iteri
    (fun e l ->
      let r = float_of_int l /. float_of_int (Path.capacity path e) in
      if r > !best then best := r)
    load;
  !best

let scaled_path path rho =
  let caps =
    Array.map
      (fun c -> max 1 (int_of_float (Float.floor (rho *. float_of_int c))))
      (Path.capacities path)
  in
  Path.create caps

let try_pack ~engine path rho ts =
  let p = scaled_path path rho in
  let placed, dropped =
    match engine with
    | First_fit -> First_fit.pack p ts
    | Buddy -> Buddy.pack p ts
  in
  if dropped = [] then Some (p, placed) else None

let solve ?(engine = First_fit) ?(iterations = 20) path ts =
  match ts with
  | [] -> { rho = 0.0; lower_bound = 0.0; solution = [] }
  | _ ->
      let lower_bound = load_lower_bound path ts in
      (* Bracket: double from the lower bound until the packer succeeds. *)
      let rec bracket rho tries =
        if tries > 40 then invalid_arg "Rho_packing.solve: cannot bracket";
        match try_pack ~engine path rho ts with
        | Some packed -> (rho, packed)
        | None -> bracket (2.0 *. rho) (tries + 1)
      in
      let hi0, packed0 = bracket (Float.max lower_bound 1e-9) 0 in
      let rec bisect lo hi best steps =
        if steps = 0 then (hi, best)
        else
          let mid = 0.5 *. (lo +. hi) in
          match try_pack ~engine path mid ts with
          | Some packed -> bisect lo mid packed (steps - 1)
          | None -> bisect mid hi best (steps - 1)
      in
      let lo0 = if hi0 > lower_bound then Float.max lower_bound (hi0 /. 2.0) else hi0 in
      let rho, (p, solution) = bisect lo0 hi0 packed0 iterations in
      (match Core.Checker.sap_feasible p solution with
      | Ok () -> ()
      | Error m -> failwith ("Rho_packing: packer produced infeasible result: " ^ m));
      { rho; lower_bound; solution }
