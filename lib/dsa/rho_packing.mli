(** The extended DSA problem posed in the paper's conclusion (Sect. 8):
    given a path with a non-uniform capacity vector [c] and a set of
    (small) tasks, find the minimum coefficient [rho] such that *all*
    tasks pack within the capacity vector [rho * c].

    The paper leaves the problem open; we ship the practical solver a
    downstream user would want: binary search on [rho] over a first-fit /
    buddy packing oracle, bracketed below by the load lower bound
    [rho >= max_e load(e) / c_e] (no algorithm can beat it) and above by a
    doubling search.  The result is a certificate pair (the achieved [rho]
    and a checker-verified packing); the gap to the lower bound is what the
    ablation bench measures. *)

type result = {
  rho : float;            (** achieved coefficient (capacities scaled by it) *)
  lower_bound : float;    (** load bound: max_e load(e) / c_e *)
  solution : Core.Solution.sap;  (** packs every task under [rho * c] *)
}

type engine = First_fit | Buddy

val load_lower_bound : Core.Path.t -> Core.Task.t list -> float

val solve :
  ?engine:engine ->
  ?iterations:int ->
  Core.Path.t ->
  Core.Task.t list ->
  result
(** [iterations] bisection steps (default 20, giving ~1e-6 relative
    precision).  The returned solution is feasible for the path whose
    capacities are [floor(rho * c_e)] — verified before returning
    (assertion failure would indicate a packer bug). *)
