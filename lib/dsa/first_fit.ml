module Task = Core.Task
module Path = Core.Path

let check_height_limit height_limit =
  if height_limit < 0 then
    invalid_arg
      (Printf.sprintf "First_fit: negative height_limit %d" height_limit)

(* Task.make already rejects non-positive demands, but first-fit's
   correctness (candidate positions = tops of placed tasks) silently
   assumes it: a zero-demand task would "conflict" with nothing and
   stack infinitely.  Guard here so a future non-private constructor
   cannot re-open the hole. *)
let check_task (j : Task.t) =
  if j.Task.demand <= 0 then
    invalid_arg
      (Printf.sprintf "First_fit: task %d has non-positive demand %d" j.Task.id
         j.Task.demand)

let conflicts (j : Task.t) p ((i : Task.t), hi) =
  Task.overlaps j i && p < hi + i.Task.demand && hi < p + j.Task.demand

let lowest_position path ~height_limit placed (j : Task.t) =
  check_task j;
  let ceiling = min (Path.bottleneck_of path j) height_limit in
  let overlapping = List.filter (fun (i, _) -> Task.overlaps j i) placed in
  let candidates =
    0 :: List.map (fun ((i : Task.t), hi) -> hi + i.Task.demand) overlapping
  in
  let candidates = List.sort_uniq Int.compare candidates in
  List.find_opt
    (fun p -> p + j.Task.demand <= ceiling && not (List.exists (conflicts j p) overlapping))
    candidates

let insert path ?(height_limit = max_int) placed j =
  check_height_limit height_limit;
  lowest_position path ~height_limit placed j

let pack_in_order path ?(height_limit = max_int) ts =
  check_height_limit height_limit;
  let rec go placed dropped = function
    | [] -> (List.rev placed, List.rev dropped)
    | j :: rest -> (
        match lowest_position path ~height_limit placed j with
        | Some p -> go ((j, p) :: placed) dropped rest
        | None -> go placed (j :: dropped) rest)
  in
  go [] [] ts

let left_endpoint_order ts =
  List.sort
    (fun (a : Task.t) (b : Task.t) ->
      match Int.compare a.Task.first_edge b.Task.first_edge with
      | 0 -> (
          match Int.compare b.Task.last_edge a.Task.last_edge with
          | 0 -> Int.compare a.Task.id b.Task.id
          | c -> c)
      | c -> c)
    ts

let pack path ?height_limit ts =
  pack_in_order path ?height_limit (left_endpoint_order ts)
