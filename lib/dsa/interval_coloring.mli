(** Optimal DSA for uniform demands = interval graph coloring.

    When all demands are equal, SAP height assignment degenerates to
    coloring the interval graph of the tasks' paths; the greedy
    left-endpoint sweep with color recycling is optimal (uses exactly
    clique-number = max-load/d colors).  This is both a DSA baseline and the
    special case the paper's related work (Sect. 1.1) starts from. *)

val color : Core.Task.t list -> (Core.Task.t * int) list
(** Requires all demands equal and positive (raises [Invalid_argument]
    otherwise — a zero demand would make every height collide at color
    boundaries in {!to_sap}).  Returns each task with its color in
    [0 .. chi-1].  Single-point spans ([first_edge = last_edge]) are
    ordinary intervals: expiry is strict ([last < first]), so two tasks
    meeting at one edge still conflict, matching {!Core.Task.overlaps}. *)

val to_sap : Core.Task.t list -> Core.Solution.sap
(** Heights [color * d]; makespan equals the max load, i.e. optimal. *)

val colors_used : (Core.Task.t * int) list -> int
