(** First-fit contiguous allocation (the classical DSA heuristic).

    Tasks are processed in order of left endpoint (ties: longer first, then
    id) and placed at the lowest height that conflicts with no already
    placed task and respects every capacity on the task's path, optionally
    clipped by a uniform [height_limit].  Tasks with no feasible position
    are returned unplaced. *)

val pack :
  Core.Path.t ->
  ?height_limit:int ->
  Core.Task.t list ->
  Core.Solution.sap * Core.Task.t list
(** [(placed, dropped)].  [placed] is always feasible (and within
    [height_limit] if given); the checker-verified invariant of the tests. *)

val pack_in_order :
  Core.Path.t ->
  ?height_limit:int ->
  Core.Task.t list ->
  Core.Solution.sap * Core.Task.t list
(** Same, but respects the given list order (used by the retry passes of
    {!Strip_transform}, which order by weight). *)
