(** First-fit contiguous allocation (the classical DSA heuristic).

    Tasks are processed in order of left endpoint (ties: longer first, then
    id) and placed at the lowest height that conflicts with no already
    placed task and respects every capacity on the task's path, optionally
    clipped by a uniform [height_limit].  Tasks with no feasible position
    are returned unplaced.

    Edge cases are explicit: a negative [height_limit] raises
    [Invalid_argument] (it is a caller bug, not an empty packing), as does
    a non-positive demand (unconstructible via {!Core.Task.make}, but the
    candidate-position sweep silently depends on it).  [height_limit = 0],
    tasks with [demand = capacity] (placed only at height 0), and
    single-point spans ([first_edge = last_edge]) are all well-defined. *)

val pack :
  Core.Path.t ->
  ?height_limit:int ->
  Core.Task.t list ->
  Core.Solution.sap * Core.Task.t list
(** [(placed, dropped)].  [placed] is always feasible (and within
    [height_limit] if given); the checker-verified invariant of the tests. *)

val pack_in_order :
  Core.Path.t ->
  ?height_limit:int ->
  Core.Task.t list ->
  Core.Solution.sap * Core.Task.t list
(** Same, but respects the given list order (used by the retry passes of
    {!Strip_transform}, which order by weight). *)

val insert :
  Core.Path.t ->
  ?height_limit:int ->
  Core.Solution.sap ->
  Core.Task.t ->
  int option
(** Lowest feasible height for one task against an already placed set,
    moving nothing: the incremental step [pack_in_order] iterates, exposed
    so round packers (ROUND-SAP first-fit over rounds) can probe "does this
    task fit in this round as-is".  [None] when no height works. *)
