(** Buddy (power-of-two) contiguous allocation.

    Demands are rounded up to powers of two and placed only at heights that
    are multiples of their rounded size, which eliminates fragmentation
    *within* a size class at the cost of a factor-2 demand inflation.  This
    is the classical memory-allocator discipline and serves as the second
    DSA baseline (the ablation bench compares it with plain first fit as the
    engine of the strip transform). *)

val round_up_pow2 : int -> int
(** Smallest power of two [>= n], for [n >= 1]. *)

val pack :
  Core.Path.t ->
  ?height_limit:int ->
  Core.Task.t list ->
  Core.Solution.sap * Core.Task.t list
(** [(placed, dropped)].  Each placed task reserves the vertical range
    [h, h + pow2(d)) but the returned solution records the true demand, so
    feasibility is implied by reservation-disjointness.  Processing order:
    decreasing rounded size, then left endpoint (large blocks first keeps
    alignment tight). *)
