module Task = Core.Task

let color ts =
  (match ts with
  | [] -> ()
  | j :: rest ->
      let d = j.Task.demand in
      if d <= 0 then
        invalid_arg
          (Printf.sprintf
             "Interval_coloring.color: non-positive demand %d (task %d)" d
             j.Task.id);
      if List.exists (fun (i : Task.t) -> i.Task.demand <> d) rest then
        invalid_arg "Interval_coloring.color: demands not uniform");
  let by_start =
    List.sort
      (fun (a : Task.t) b ->
        match Int.compare a.Task.first_edge b.Task.first_edge with
        | 0 -> Int.compare a.Task.id b.Task.id
        | c -> c)
      ts
  in
  (* active: tasks not yet expired, keyed by last_edge; free: recycled
     colors. *)
  let active = Util.Heap.create ~cmp:(fun (e1, _) (e2, _) -> Int.compare e1 e2) in
  let free = Util.Heap.create ~cmp:Int.compare in
  let next_fresh = ref 0 in
  let expire edge =
    let rec go () =
      match Util.Heap.peek active with
      | Some (last, c) when last < edge ->
          ignore (Util.Heap.pop active);
          Util.Heap.push free c;
          go ()
      | _ -> ()
    in
    go ()
  in
  List.map
    (fun (j : Task.t) ->
      expire j.Task.first_edge;
      let c =
        match Util.Heap.pop free with
        | Some c -> c
        | None ->
            let c = !next_fresh in
            incr next_fresh;
            c
      in
      Util.Heap.push active (j.Task.last_edge, c);
      (j, c))
    by_start

let to_sap ts =
  List.map (fun ((j : Task.t), c) -> (j, c * j.Task.demand)) (color ts)

let colors_used colored =
  List.fold_left (fun acc (_, c) -> max acc (c + 1)) 0 colored
