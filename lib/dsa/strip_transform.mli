(** UFPP-solution-in-a-strip → SAP-solution-in-the-same-strip (role of
    Lemma 4 / Buchsbaum et al. [12]).

    Input: a task list whose per-edge load is at most [height] (a
    [B]-packable UFPP solution of small tasks) over a path whose capacities
    are ignored — only the strip ceiling matters.  Output: a height
    assignment inside [0, height) for a high-weight subset, plus the dropped
    tasks.  The paper's Lemma 4 guarantees a loss of at most a [4*delta]
    weight fraction for [delta]-small inputs; our packer is a documented
    substitution (DESIGN.md §3.2): three passes of first fit (left-endpoint
    order, then dropped tasks by weight, then once more after a gravity
    settle), machine-checked for feasibility, with the realized loss
    reported by the bench harness. *)

type result = {
  packed : Core.Solution.sap;       (** heights in [0, height) *)
  dropped : Core.Task.t list;
  retained_weight : float;
  input_weight : float;
}

val transform :
  ?engine:[ `First_fit | `Buddy ] ->
  height:int ->
  edges:int ->
  Core.Task.t list ->
  result
(** [transform ~height ~edges ts].  [edges] is the path length (tasks must
    fit on it).  The strip is uniform: every edge has ceiling [height].
    [engine] selects the first-pass packer (default [`First_fit]; [`Buddy]
    trades fragmentation for power-of-two internal waste — the ABL bench
    measures the retention difference); the retry passes always use
    gravity + first fit. *)

val loss_fraction : result -> float
(** [1 - retained/input]; 0 on empty input. *)
