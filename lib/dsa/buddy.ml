module Task = Core.Task
module Path = Core.Path

let round_up_pow2 n =
  if n < 1 then invalid_arg "Buddy.round_up_pow2";
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

(* Reservations: (task, height, rounded) — conflict test uses the rounded
   vertical extent. *)
let reservation_conflicts (j : Task.t) dj p (i, hi, di) =
  Task.overlaps j i && p < hi + di && hi < p + dj

let lowest_aligned_position path ~height_limit reserved (j : Task.t) dj =
  let ceiling = min (Path.bottleneck_of path j) height_limit in
  let overlapping =
    List.filter (fun (i, _, _) -> Task.overlaps j i) reserved
  in
  let rec try_at p =
    if p + dj > ceiling then None
    else if List.exists (reservation_conflicts j dj p) overlapping then
      try_at (p + dj)
    else Some p
  in
  try_at 0

let pack path ?(height_limit = max_int) ts =
  let order =
    List.sort
      (fun (a : Task.t) (b : Task.t) ->
        match Int.compare (round_up_pow2 b.Task.demand) (round_up_pow2 a.Task.demand) with
        | 0 -> (
            match Int.compare a.Task.first_edge b.Task.first_edge with
            | 0 -> Int.compare a.Task.id b.Task.id
            | c -> c)
        | c -> c)
      ts
  in
  let rec go reserved placed dropped = function
    | [] -> (List.rev placed, List.rev dropped)
    | j :: rest -> (
        let dj = round_up_pow2 j.Task.demand in
        match lowest_aligned_position path ~height_limit reserved j dj with
        | Some p -> go ((j, p, dj) :: reserved) ((j, p) :: placed) dropped rest
        | None -> go reserved placed (j :: dropped) rest)
  in
  go [] [] [] order
