module Task = Core.Task
module Path = Core.Path

let label id = Char.chr (Char.code 'A' + (id mod 26))

let grid ?max_height path sol =
  let m = Path.num_edges path in
  let top =
    match max_height with
    | Some h -> h
    | None -> Path.max_capacity path
  in
  if top > 200 then
    invalid_arg "Ascii.render: profile too tall; pass ~max_height";
  let cells = Array.make_matrix top m ' ' in
  for e = 0 to m - 1 do
    for h = 0 to min top (Path.capacity path e) - 1 do
      cells.(h).(e) <- '.'
    done
  done;
  List.iter
    (fun ((j : Task.t), h) ->
      for e = j.Task.first_edge to j.Task.last_edge do
        for y = h to min top (h + j.Task.demand) - 1 do
          cells.(y).(e) <- label j.Task.id
        done
      done)
    sol;
  cells

let render cells =
  let top = Array.length cells in
  let buf = Buffer.create 1024 in
  for y = top - 1 downto 0 do
    Buffer.add_string buf (Printf.sprintf "%3d |" y);
    Array.iter (fun c -> Buffer.add_char buf c) cells.(y);
    Buffer.add_char buf '\n'
  done;
  let m = if top > 0 then Array.length cells.(0) else 0 in
  Buffer.add_string buf ("    +" ^ String.make m '-' ^ "\n");
  Buffer.contents buf

let render_solution ?max_height path sol = render (grid ?max_height path sol)

let render_profile ?max_height path = render (grid ?max_height path [])

let render_loads path ts =
  let load = Core.Instance.load_profile path ts in
  let buf = Buffer.create 256 in
  Array.iteri
    (fun e l ->
      let c = Path.capacity path e in
      Buffer.add_string buf
        (Printf.sprintf "edge %2d  cap %4d  load %4d  |%s%s|\n" e c l
           (String.make (min 60 l) '#')
           (String.make (max 0 (min 60 c - min 60 l)) '.')))
    load;
  Buffer.contents buf
