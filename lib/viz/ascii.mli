(** ASCII rendering of instances and solutions.

    Draws the capacity profile as a skyline and each placed task as a block
    of letters (task id mod 26), one text column per edge.  Used by the
    examples and the [show] CLI subcommand; rendering a paper figure next
    to its checker verdict makes the experiments legible. *)

val render_solution : ?max_height:int -> Core.Path.t -> Core.Solution.sap -> string
(** One character cell per (edge, height unit); rows printed top (high
    capacity) to bottom (height 0).  Cells: task letter, [.] free below
    capacity, [ ] above capacity.  [max_height] clips tall profiles
    (default: the maximum capacity, refused above 200 rows). *)

val render_profile : ?max_height:int -> Core.Path.t -> string
(** Just the skyline. *)

val render_loads : Core.Path.t -> Core.Task.t list -> string
(** One line per edge: capacity, load and a bar — the UFPP view. *)

val label : int -> char
(** Task id to display letter. *)
