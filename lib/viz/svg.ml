module Task = Core.Task
module Path = Core.Path

let color id =
  (* Golden-angle hue walk: adjacent ids get well-separated hues. *)
  let hue = id * 137 mod 360 in
  Printf.sprintf "hsl(%d, 65%%, 60%%)" hue

let header ~width ~height ~title =
  Printf.sprintf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
     viewBox=\"0 0 %d %d\">\n<title>%s</title>\n\
     <rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n"
    width height width height title width height

let render ?(cell = 12) ?(title = "SAP solution") path sol =
  let m = Path.num_edges path in
  let top = Path.max_capacity path in
  (* Keep the canvas manageable for tall profiles. *)
  let cell = if top * cell > 1200 then max 1 (1200 / top) else cell in
  let margin = 24 in
  let width = (m * cell) + (2 * margin) in
  let height = (top * cell) + (2 * margin) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (header ~width ~height ~title);
  let x e = margin + (e * cell) in
  let y h = margin + ((top - h) * cell) in
  (* Capacity skyline: one grey column per edge up to its capacity. *)
  for e = 0 to m - 1 do
    let c = Path.capacity path e in
    Buffer.add_string buf
      (Printf.sprintf
         "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"#eee\" \
          stroke=\"#bbb\" stroke-width=\"0.5\"/>\n"
         (x e) (y c) cell (c * cell))
  done;
  (* Tasks. *)
  List.iter
    (fun ((j : Task.t), h) ->
      let w = Task.span j * cell in
      let ht = j.Task.demand * cell in
      Buffer.add_string buf
        (Printf.sprintf
           "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\" \
            stroke=\"#333\" stroke-width=\"1\" fill-opacity=\"0.85\"/>\n"
           (x j.Task.first_edge)
           (y (h + j.Task.demand))
           w ht (color j.Task.id));
      if ht >= 10 && w >= 14 then
        Buffer.add_string buf
          (Printf.sprintf
             "<text x=\"%d\" y=\"%d\" font-size=\"%d\" font-family=\"sans-serif\" \
              fill=\"#000\">%d</text>\n"
             (x j.Task.first_edge + 3)
             (y (h + j.Task.demand) + min ht 12)
             (min 11 ht) j.Task.id))
    sol;
  (* Axis line at height 0. *)
  Buffer.add_string buf
    (Printf.sprintf
       "<line x1=\"%d\" y1=\"%d\" x2=\"%d\" y2=\"%d\" stroke=\"#000\"/>\n" margin
       (y 0) (margin + (m * cell)) (y 0));
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let solution_svg ?cell ?title path sol = render ?cell ?title path sol

let profile_svg ?cell ?(title = "capacity profile") path =
  render ?cell ~title path []
