(** SVG rendering of instances and solutions.

    Produces standalone SVG documents: the capacity profile as a grey
    skyline, each placed task as a coloured rectangle with its id.  The
    examples write these next to their stdout reports; they are the
    publication-quality counterpart of {!Ascii}. *)

val solution_svg :
  ?cell:int ->
  ?title:string ->
  Core.Path.t ->
  Core.Solution.sap ->
  string
(** [solution_svg p sol] — [cell] is the pixel size of one (edge, height)
    unit (default 12, shrunk automatically for tall profiles). *)

val profile_svg : ?cell:int -> ?title:string -> Core.Path.t -> string

val color : int -> string
(** Deterministic fill colour for a task id (HSL wheel). *)
