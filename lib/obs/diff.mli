(** Metric-by-metric comparison of two stats reports — the engine behind
    [sap_cli bench-diff OLD.json NEW.json], which gates CI on the
    committed [bench/baseline.json].

    Both reports are flattened to dotted leaf paths
    ([metrics.counters.simplex.iterations], [result.weight], ...), and
    each path is classified by what kind of drift is tolerable:

    - {b counter} — [metrics.counters.*] and histogram [*.count] leaves.
      Event counts (DP states, simplex iterations, rounding trials) are
      deterministic for a fixed seed, so they are compared exactly by
      default ([counter_tol]).
    - {b timing} — any path mentioning
      [seconds]/[time]/[duration]/[start]/[clock]/[latency], plus
      histogram quantile leaves ending in [.p50]/[.p90]/[.p95]/[.p99].
      Wall-clock readings are machine- and load-dependent: they are
      skipped unless [time_factor > 0], and a faster run is an
      improvement, never a failure.
    - {b float} — remaining numeric leaves (gauges, ratio histogram
      sums/means), compared within relative [float_tol]; the default
      absorbs float summation-order noise from parallel runs.
    - {b equality} — strings, booleans, nulls must match exactly.

    The [spans] subtree is never compared, and neither is any histogram
    [.buckets.] subtree (which bucket a duration lands in varies with
    machine speed, so bucket keys would flap between Missing and Added);
    [ignore_prefixes] excludes more (CI ignores [metrics.gauges]:
    last-write-wins gauges are schedule-dependent under parallel
    experiment fan-out). *)

type thresholds = {
  counter_tol : float;  (** relative drift allowed on counters (default 0) *)
  float_tol : float;  (** relative drift allowed on floats (default 1e-6) *)
  time_factor : float;
      (** allowed slowdown factor for timing metrics; [<= 0] skips them
          (the default: wall time is not comparable across machines) *)
  ignore_prefixes : string list;
      (** dotted-path prefixes to exclude, on top of [spans] *)
}

val default_thresholds : thresholds

type status =
  | Match  (** identical *)
  | Within  (** drifted, inside the threshold *)
  | Improved  (** timing metric got faster *)
  | Regressed  (** drifted beyond the threshold — a failure *)
  | Missing  (** present in OLD, absent in NEW — a failure *)
  | Added  (** only in NEW; informational *)
  | Skipped  (** ignored (spans, ignore-prefixes, ungated timing) *)

type finding = {
  path : string;
  status : status;
  old_value : string;
  new_value : string;
  detail : string;  (** relative drift, or why it failed *)
}

val is_failure : status -> bool
(** [Regressed] and [Missing] fail the gate; everything else passes. *)

val status_label : status -> string

val compare_reports :
  ?thresholds:thresholds -> old_report:Json.t -> new_report:Json.t -> unit ->
  finding list
(** One finding per leaf of OLD (in report order), then one [Added]
    finding per NEW-only leaf. *)

val render_table : ?show_all:bool -> finding list -> string
(** Aligned table of the notable findings (everything except [Match] and
    [Skipped]; [show_all] includes those too).  Empty string when there is
    nothing to show. *)

val count : status -> finding list -> int

val summary : finding list -> string
(** One-line tally, e.g.
    ["412 compared: 398 ok, .. / 1 regressed, 0 missing"]. *)
