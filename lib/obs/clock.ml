external monotonic_seconds : unit -> float = "sap_obs_monotonic_seconds"

let wall_seconds = Unix.gettimeofday

type anchor = { wall_epoch_seconds : float; monotonic_seconds : float }

let anchor () =
  let m = monotonic_seconds () in
  let w = Unix.gettimeofday () in
  { wall_epoch_seconds = w; monotonic_seconds = m }

let anchor_json a =
  Json.Obj
    [
      ("wall_epoch_seconds", Json.Float a.wall_epoch_seconds);
      ("monotonic_seconds", Json.Float a.monotonic_seconds);
    ]
