let schema_version = "sap-stats v3"

let enable_all () =
  Metrics.enable ();
  Trace.enable ()

let disable_all () =
  Metrics.disable ();
  Trace.disable ()

let reset_all () =
  Metrics.reset ();
  Trace.reset ()

let build ?(extra = []) ?(include_spans = true) () =
  Json.Obj
    (("schema", Json.String schema_version)
     :: ("clock", Clock.anchor_json (Clock.anchor ()))
     :: extra
    @ ("metrics", Metrics.snapshot_json ())
      :: (if include_spans then [ ("spans", Trace.json ()) ] else []))

(* Write to a temp file in the destination directory, then rename: a
   crashed or killed run can never leave a truncated report behind to
   poison a later [bench-diff]. *)
let write_file path report =
  let dir = Filename.dirname path in
  let tmp, oc = Filename.open_temp_file ~temp_dir:dir ".sap-report-" ".tmp" in
  match
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (Json.to_string_pretty report);
        output_char oc '\n')
  with
  | () -> Sys.rename tmp path
  | exception e ->
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e
