let schema_version = "sap-stats v1"

let enable_all () =
  Metrics.enable ();
  Trace.enable ()

let disable_all () =
  Metrics.disable ();
  Trace.disable ()

let reset_all () =
  Metrics.reset ();
  Trace.reset ()

let build ?(extra = []) () =
  Json.Obj
    ((("schema", Json.String schema_version) :: extra)
    @ [ ("metrics", Metrics.snapshot_json ()); ("spans", Trace.json ()) ])

let write_file path report =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string_pretty report);
      output_char oc '\n')
