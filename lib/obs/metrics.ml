let on = Atomic.make false

let enable () = Atomic.set on true

let disable () = Atomic.set on false

let enabled () = Atomic.get on

(* CAS loop: Atomic holds an immutable float; contention is rare (updates
   are cheap and domains touch different subsystems most of the time). *)
let rec fetch_and_apply cell f =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (f old)) then fetch_and_apply cell f

type counter = int Atomic.t

type gauge = float Atomic.t

type histogram = {
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
  h_min : float Atomic.t;
  h_max : float Atomic.t;
}

type cell =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

(* Registration is rare (module init); a single lock keeps it simple and
   domain-safe.  Updates never touch the registry. *)
let registry : (string, cell) Hashtbl.t = Hashtbl.create 64

let registry_lock = Mutex.create ()

let register name make describe =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      match Hashtbl.find_opt registry name with
      | Some cell -> describe cell
      | None ->
          let fresh = make () in
          Hashtbl.replace registry name fresh;
          describe fresh)

let counter name =
  register name
    (fun () -> Counter (Atomic.make 0))
    (function
      | Counter c -> c
      | _ -> invalid_arg ("Metrics: " ^ name ^ " is not a counter"))

let gauge name =
  register name
    (fun () -> Gauge (Atomic.make 0.0))
    (function
      | Gauge g -> g
      | _ -> invalid_arg ("Metrics: " ^ name ^ " is not a gauge"))

let histogram name =
  register name
    (fun () ->
      Histogram
        {
          h_count = Atomic.make 0;
          h_sum = Atomic.make 0.0;
          h_min = Atomic.make infinity;
          h_max = Atomic.make neg_infinity;
        })
    (function
      | Histogram h -> h
      | _ -> invalid_arg ("Metrics: " ^ name ^ " is not a histogram"))

let incr c = if Atomic.get on then ignore (Atomic.fetch_and_add c 1)

let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c n)

let counter_value c = Atomic.get c

let set g v = if Atomic.get on then Atomic.set g v

let gauge_value g = Atomic.get g

let observe h v =
  if Atomic.get on then begin
    ignore (Atomic.fetch_and_add h.h_count 1);
    fetch_and_apply h.h_sum (fun s -> s +. v);
    fetch_and_apply h.h_min (fun m -> Float.min m v);
    fetch_and_apply h.h_max (fun m -> Float.max m v)
  end

let time h f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> observe h (Unix.gettimeofday () -. t0)) f
  end

let reset () =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      Hashtbl.iter
        (fun _ cell ->
          match cell with
          | Counter c -> Atomic.set c 0
          | Gauge g -> Atomic.set g 0.0
          | Histogram h ->
              Atomic.set h.h_count 0;
              Atomic.set h.h_sum 0.0;
              Atomic.set h.h_min infinity;
              Atomic.set h.h_max neg_infinity)
        registry)

type histogram_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_summary) list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      let counters = ref [] and gauges = ref [] and histograms = ref [] in
      Hashtbl.iter
        (fun name cell ->
          match cell with
          | Counter c -> counters := (name, Atomic.get c) :: !counters
          | Gauge g -> gauges := (name, Atomic.get g) :: !gauges
          | Histogram h ->
              let count = Atomic.get h.h_count in
              let summary =
                {
                  count;
                  sum = Atomic.get h.h_sum;
                  min = (if count = 0 then Float.nan else Atomic.get h.h_min);
                  max = (if count = 0 then Float.nan else Atomic.get h.h_max);
                }
              in
              histograms := (name, summary) :: !histograms)
        registry;
      {
        counters = List.sort by_name !counters;
        gauges = List.sort by_name !gauges;
        histograms = List.sort by_name !histograms;
      })

let snapshot_json () =
  let s = snapshot () in
  let histogram_json (h : histogram_summary) =
    Json.Obj
      [
        ("count", Json.Int h.count);
        ("sum", Json.Float h.sum);
        ( "mean",
          if h.count = 0 then Json.Null
          else Json.Float (h.sum /. float_of_int h.count) );
        ("min", if h.count = 0 then Json.Null else Json.Float h.min);
        ("max", if h.count = 0 then Json.Null else Json.Float h.max);
      ]
  in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.counters));
      ("gauges", Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) s.gauges));
      ( "histograms",
        Json.Obj (List.map (fun (n, h) -> (n, histogram_json h)) s.histograms) );
    ]
