let on = Atomic.make false

let enable () = Atomic.set on true

let disable () = Atomic.set on false

let enabled () = Atomic.get on

(* CAS loop: Atomic holds an immutable float; contention is rare (updates
   are cheap and domains touch different subsystems most of the time). *)
let rec fetch_and_apply cell f =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (f old)) then fetch_and_apply cell f

type counter = int Atomic.t

type gauge = float Atomic.t

(* Histograms carry exact count/sum/min/max plus fixed exponential
   ("log-bucketed") buckets for quantile estimation.  The bucket grid is
   global and static so summaries from different histograms (or different
   processes) merge by element-wise addition:

     bucket 0                    : v <= lo          (underflow)
     bucket k, 1 <= k <= regular : lo*g^(k-1) < v <= lo*g^k, g = 2^(1/4)
     bucket regular+1            : v > lo*g^regular (overflow)

   With lo = 1e-9 s and 177 regular buckets the grid spans one nanosecond
   to ~6.4 hours at <= 9.1% relative width per bucket — every latency this
   codebase measures lands in a regular bucket. *)
let bucket_lo = 1e-9

let buckets_per_octave = 4

let regular_buckets = 177

let bucket_count = regular_buckets + 2

let bucket_upper k =
  if k <= 0 then bucket_lo
  else if k > regular_buckets then infinity
  else bucket_lo *. Float.pow 2.0 (float_of_int k /. float_of_int buckets_per_octave)

let bucket_index v =
  if not (v > bucket_lo) (* catches <= lo and nan *) then 0
  else
    (* Clamp before the int conversion: [int_of_float infinity] is
       unspecified, and [v = infinity] must land in the overflow bucket. *)
    let k =
      Float.ceil (float_of_int buckets_per_octave *. Float.log2 (v /. bucket_lo))
    in
    if k < 1.0 then 1
    else if k > float_of_int regular_buckets then regular_buckets + 1
    else int_of_float k

(* Geometric midpoint of bucket [k]; callers clamp to the exact [min,max]. *)
let bucket_mid k =
  if k <= 0 then bucket_lo
  else if k > regular_buckets then infinity
  else
    bucket_lo
    *. Float.pow 2.0
         ((float_of_int k -. 0.5) /. float_of_int buckets_per_octave)

type histogram = {
  h_count : int Atomic.t;
  h_sum : float Atomic.t;
  h_min : float Atomic.t;
  h_max : float Atomic.t;
  h_buckets : int Atomic.t array;
}

type cell =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

(* Registration is rare (module init); a single lock keeps it simple and
   domain-safe.  Updates never touch the registry. *)
let registry : (string, cell) Hashtbl.t = Hashtbl.create 64

let registry_lock = Mutex.create ()

let register name make describe =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      match Hashtbl.find_opt registry name with
      | Some cell -> describe cell
      | None ->
          let fresh = make () in
          Hashtbl.replace registry name fresh;
          describe fresh)

let counter name =
  register name
    (fun () -> Counter (Atomic.make 0))
    (function
      | Counter c -> c
      | _ -> invalid_arg ("Metrics: " ^ name ^ " is not a counter"))

let gauge name =
  register name
    (fun () -> Gauge (Atomic.make 0.0))
    (function
      | Gauge g -> g
      | _ -> invalid_arg ("Metrics: " ^ name ^ " is not a gauge"))

let histogram name =
  register name
    (fun () ->
      Histogram
        {
          h_count = Atomic.make 0;
          h_sum = Atomic.make 0.0;
          h_min = Atomic.make infinity;
          h_max = Atomic.make neg_infinity;
          h_buckets = Array.init bucket_count (fun _ -> Atomic.make 0);
        })
    (function
      | Histogram h -> h
      | _ -> invalid_arg ("Metrics: " ^ name ^ " is not a histogram"))

let incr c = if Atomic.get on then ignore (Atomic.fetch_and_add c 1)

let add c n = if Atomic.get on then ignore (Atomic.fetch_and_add c n)

let counter_value c = Atomic.get c

let set g v = if Atomic.get on then Atomic.set g v

let gauge_value g = Atomic.get g

let observe h v =
  if Atomic.get on then begin
    ignore (Atomic.fetch_and_add h.h_count 1);
    fetch_and_apply h.h_sum (fun s -> s +. v);
    fetch_and_apply h.h_min (fun m -> Float.min m v);
    fetch_and_apply h.h_max (fun m -> Float.max m v);
    ignore (Atomic.fetch_and_add h.h_buckets.(bucket_index v) 1)
  end

let time h f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect ~finally:(fun () -> observe h (Unix.gettimeofday () -. t0)) f
  end

let reset () =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      Hashtbl.iter
        (fun _ cell ->
          match cell with
          | Counter c -> Atomic.set c 0
          | Gauge g -> Atomic.set g 0.0
          | Histogram h ->
              Atomic.set h.h_count 0;
              Atomic.set h.h_sum 0.0;
              Atomic.set h.h_min infinity;
              Atomic.set h.h_max neg_infinity;
              Array.iter (fun b -> Atomic.set b 0) h.h_buckets)
        registry)

type histogram_summary = {
  count : int;
  sum : float;
  min : float;
  max : float;
  buckets : int array;
}

let empty_summary =
  {
    count = 0;
    sum = 0.0;
    min = Float.nan;
    max = Float.nan;
    buckets = Array.make bucket_count 0;
  }

let summary_observe s v =
  {
    count = s.count + 1;
    sum = s.sum +. v;
    min = (if s.count = 0 then v else Float.min s.min v);
    max = (if s.count = 0 then v else Float.max s.max v);
    buckets =
      (let b = Array.copy s.buckets in
       let i = bucket_index v in
       b.(i) <- b.(i) + 1;
       b);
  }

let summary_of_values vs =
  if Array.length vs = 0 then empty_summary
  else begin
    let buckets = Array.make bucket_count 0 in
    let sum = ref 0.0 and mn = ref vs.(0) and mx = ref vs.(0) in
    Array.iter
      (fun v ->
        sum := !sum +. v;
        if Float.min !mn v = v then mn := v;
        if Float.max !mx v = v then mx := v;
        let i = bucket_index v in
        buckets.(i) <- buckets.(i) + 1)
      vs;
    { count = Array.length vs; sum = !sum; min = !mn; max = !mx; buckets }
  end

let merge a b =
  if a.count = 0 then b
  else if b.count = 0 then a
  else
    {
      count = a.count + b.count;
      sum = a.sum +. b.sum;
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
      buckets = Array.init bucket_count (fun i -> a.buckets.(i) + b.buckets.(i));
    }

let quantile s q =
  if s.count = 0 then Float.nan
  else begin
    let q = if q < 0.0 then 0.0 else if q > 1.0 then 1.0 else q in
    (* rank-based: the smallest value with at least ceil(q*count) values
       at or below it; rank 1 = min, rank count = max. *)
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int s.count)) in
      if r < 1 then 1 else if r > s.count then s.count else r
    in
    let idx = ref 0 and seen = ref 0 in
    (try
       for i = 0 to bucket_count - 1 do
         seen := !seen + s.buckets.(i);
         if !seen >= rank then begin
           idx := i;
           raise Exit
         end
       done;
       idx := bucket_count - 1
     with Exit -> ());
    (* The open-ended end buckets have no meaningful midpoint; report the
       exact extreme instead. *)
    let rep =
      if !idx = 0 then s.min
      else if !idx > regular_buckets then s.max
      else bucket_mid !idx
    in
    Float.max s.min (Float.min s.max rep)
  end

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_summary) list;
}

let by_name (a, _) (b, _) = String.compare a b

let snapshot () =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      let counters = ref [] and gauges = ref [] and histograms = ref [] in
      Hashtbl.iter
        (fun name cell ->
          match cell with
          | Counter c -> counters := (name, Atomic.get c) :: !counters
          | Gauge g -> gauges := (name, Atomic.get g) :: !gauges
          | Histogram h ->
              let count = Atomic.get h.h_count in
              let summary =
                {
                  count;
                  sum = Atomic.get h.h_sum;
                  min = (if count = 0 then Float.nan else Atomic.get h.h_min);
                  max = (if count = 0 then Float.nan else Atomic.get h.h_max);
                  buckets = Array.map Atomic.get h.h_buckets;
                }
              in
              histograms := (name, summary) :: !histograms)
        registry;
      {
        counters = List.sort by_name !counters;
        gauges = List.sort by_name !gauges;
        histograms = List.sort by_name !histograms;
      })

let summary_json (h : histogram_summary) =
  let opt v = if h.count = 0 then Json.Null else Json.Float v in
  let q p = if h.count = 0 then Json.Null else Json.Float (quantile h p) in
  let sparse =
    let acc = ref [] in
    for i = bucket_count - 1 downto 0 do
      if h.buckets.(i) > 0 then
        acc := (string_of_int i, Json.Int h.buckets.(i)) :: !acc
    done;
    Json.Obj !acc
  in
  Json.Obj
    [
      ("count", Json.Int h.count);
      ("sum", Json.Float h.sum);
      ( "mean",
        if h.count = 0 then Json.Null
        else Json.Float (h.sum /. float_of_int h.count) );
      ("min", opt h.min);
      ("max", opt h.max);
      ("p50", q 0.50);
      ("p90", q 0.90);
      ("p95", q 0.95);
      ("p99", q 0.99);
      ("buckets", sparse);
    ]

let summary_of_json j =
  let field name = match j with
    | Json.Obj kvs -> List.assoc_opt name kvs
    | _ -> None
  in
  let int_field name = match field name with
    | Some (Json.Int n) -> Some n
    | _ -> None
  in
  let float_field name = match field name with
    | Some (Json.Float f) -> Some f
    | Some (Json.Int n) -> Some (float_of_int n)
    | _ -> None
  in
  match int_field "count" with
  | None -> None
  | Some count ->
      let buckets = Array.make bucket_count 0 in
      (match field "buckets" with
      | Some (Json.Obj kvs) ->
          List.iter
            (fun (k, v) ->
              match (int_of_string_opt k, v) with
              | Some i, Json.Int n when i >= 0 && i < bucket_count ->
                  buckets.(i) <- n
              | _ -> ())
            kvs
      | _ -> ());
      Some
        {
          count;
          sum = Option.value ~default:0.0 (float_field "sum");
          min = Option.value ~default:Float.nan (float_field "min");
          max = Option.value ~default:Float.nan (float_field "max");
          buckets;
        }

let snapshot_json () =
  let s = snapshot () in
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) s.counters));
      ("gauges", Json.Obj (List.map (fun (n, v) -> (n, Json.Float v)) s.gauges));
      ( "histograms",
        Json.Obj (List.map (fun (n, h) -> (n, summary_json h)) s.histograms) );
    ]
