(** The two clocks the observability layer runs on.

    Durations and span timestamps come from the {e monotonic} clock
    ([CLOCK_MONOTONIC]): it never jumps when NTP steps the system time, so
    a span can never have a negative or wildly inflated duration.  Its
    epoch is arbitrary (typically machine boot), so monotonic readings
    only order events {e within} one process run.

    To anchor a run's monotonic readings to calendar time, {!anchor}
    samples both clocks back-to-back; {!Report.build} embeds one anchor
    per report so consumers can reconstruct wall-clock times as
    [wall = anchor.wall_epoch_seconds +. (m -. anchor.monotonic_seconds)]. *)

val monotonic_seconds : unit -> float
(** Seconds on the monotonic clock (arbitrary epoch, nanosecond-ish
    resolution).  Use differences, never absolute values. *)

val wall_seconds : unit -> float
(** Seconds since the Unix epoch ([Unix.gettimeofday]). *)

type anchor = {
  wall_epoch_seconds : float;  (** wall clock at the sample point *)
  monotonic_seconds : float;  (** monotonic clock at the same point *)
}

val anchor : unit -> anchor
(** Sample both clocks as close together as possible. *)

val anchor_json : anchor -> Json.t
(** [{"wall_epoch_seconds": .., "monotonic_seconds": ..}] — the [clock]
    header of the stats report. *)
