(** Nested wall-clock spans, collected into trees.

    [with_span "combine.part.small" f] times [f ()] and records the span
    under whatever span is currently open {e in the same domain}.  Each
    domain keeps its own stack (domain-local storage), so tracing is safe
    under [Util.Parallel.map]; spans opened inside a worker domain become
    additional root spans rather than children of the spawning domain's
    span (domains share no stack).

    Like {!Metrics}, tracing is off by default and every entry point
    checks one atomic flag first, so instrumented code paths cost nothing
    when disabled. *)

type span = {
  name : string;
  start : float;  (** seconds since the epoch *)
  duration : float;  (** seconds *)
  attrs : (string * string) list;  (** in the order they were added *)
  children : span list;  (** in completion order *)
}

val enable : unit -> unit

val disable : unit -> unit

val enabled : unit -> bool

val reset : unit -> unit
(** Drop all completed root spans (open spans are unaffected). *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a fresh span.  The span is recorded even when the
    thunk raises.  When tracing is disabled this is exactly [f ()]. *)

val add_attr : string -> string -> unit
(** Attach a key/value to the innermost open span of the calling domain
    (for values only known mid-span: LP objectives, loss fractions, chosen
    branches).  No-op when tracing is disabled or no span is open. *)

val roots : unit -> span list
(** Completed top-level spans, oldest first. *)

val json : unit -> Json.t
(** The [spans] section of the stats report: a list of span trees, each
    [{name, start, duration_seconds, attrs, children}]. *)
