(** Nested spans, collected into trees.

    [with_span "combine.part.small" f] times [f ()] and records the span
    under whatever span is currently open {e in the same domain}.  Each
    domain keeps its own stack (domain-local storage), so tracing is safe
    under [Util.Parallel.map]; spans opened inside a worker domain become
    additional root spans rather than children of the spawning domain's
    span (domains share no stack).  Every span records the id of the
    domain that ran it, which is how {!Chrome_trace} assigns spans to
    per-domain tracks.

    Timestamps and durations come from {!Clock.monotonic_seconds}, so
    spans are immune to NTP skew and manual clock changes; [start] values
    only order events within one process run.  {!Report.build} embeds one
    {!Clock.anchor} per report so consumers can map them back to wall
    time.

    Each span also carries the GC activity observed between its entry and
    exit ([Gc.quick_stat] deltas, inclusive of children): allocation hot
    spots show up directly on the span tree.  Note that [Gc.quick_stat]'s
    minor counters are exact only for the calling domain, which is the
    domain the span ran on — exactly what per-span attribution wants.

    Like {!Metrics}, tracing is off by default and every entry point
    checks one atomic flag first, so instrumented code paths cost nothing
    when disabled. *)

type gc_delta = {
  minor_words : float;  (** words allocated in the minor heap *)
  promoted_words : float;  (** words promoted minor → major *)
  major_words : float;  (** words allocated in (or promoted to) the major heap *)
  minor_collections : int;  (** minor GC cycles during the span *)
  major_collections : int;  (** major GC cycles completed during the span *)
}
(** GC counter deltas over a span's lifetime, children included. *)

type span = {
  name : string;
  start : float;  (** {!Clock.monotonic_seconds} at entry *)
  duration : float;  (** seconds (monotonic) *)
  domain : int;  (** [Domain.self] of the domain that ran the span *)
  gc : gc_delta;
  attrs : (string * string) list;  (** in the order they were added *)
  children : span list;  (** in completion order *)
}

val enable : unit -> unit

val disable : unit -> unit

val enabled : unit -> bool

val reset : unit -> unit
(** Drop all completed root spans (open spans are unaffected). *)

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a fresh span.  The span is recorded even when the
    thunk raises.  When tracing is disabled this is exactly [f ()]. *)

val add_attr : string -> string -> unit
(** Attach a key/value to the innermost open span of the calling domain
    (for values only known mid-span: LP objectives, loss fractions, chosen
    branches).  No-op when tracing is disabled or no span is open. *)

val roots : unit -> span list
(** Completed top-level spans, oldest first. *)

val gc_json : gc_delta -> Json.t
(** [{"minor_words", "promoted_words", "major_words",
    "minor_collections", "major_collections"}]. *)

val span_json : span -> Json.t
(** One span tree as report JSON (see {!json}). *)

val json : unit -> Json.t
(** The [spans] section of the stats report: a list of span trees, each
    [{name, start, duration_seconds, domain, gc, attrs, children}]. *)
