type gc_delta = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

type span = {
  name : string;
  start : float;
  duration : float;
  domain : int;
  gc : gc_delta;
  attrs : (string * string) list;
  children : span list;
}

let on = Atomic.make false

let enable () = Atomic.set on true

let disable () = Atomic.set on false

let enabled () = Atomic.get on

(* An open span accumulates attrs and finished children in reverse. *)
type frame = {
  f_name : string;
  f_start : float;
  f_gc0 : Gc.stat;
  (* [Gc.quick_stat].minor_words only advances at collection boundaries
     on OCaml 5; [Gc.minor_words ()] reads the domain's allocation
     pointer directly, so small spans still see their allocations. *)
  f_minor0 : float;
  mutable f_attrs : (string * string) list;
  mutable f_children : span list;
}

(* Per-domain stack of open frames (innermost first). *)
let stack_key : frame list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

(* Completed root spans, newest first; shared across domains. *)
let finished : span list ref = ref []

let finished_lock = Mutex.create ()

let reset () =
  Mutex.lock finished_lock;
  finished := [];
  Mutex.unlock finished_lock

let now = Clock.monotonic_seconds

let gc_delta ~minor0 (g0 : Gc.stat) (g1 : Gc.stat) =
  {
    minor_words = Gc.minor_words () -. minor0;
    promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
    major_words = g1.Gc.major_words -. g0.Gc.major_words;
    minor_collections = g1.Gc.minor_collections - g0.Gc.minor_collections;
    major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
  }

let close_frame frame =
  {
    name = frame.f_name;
    start = frame.f_start;
    duration = now () -. frame.f_start;
    domain = (Domain.self () :> int);
    gc = gc_delta ~minor0:frame.f_minor0 frame.f_gc0 (Gc.quick_stat ());
    attrs = List.rev frame.f_attrs;
    children = List.rev frame.f_children;
  }

let with_span ?(attrs = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    let stack = Domain.DLS.get stack_key in
    let frame =
      {
        f_name = name;
        f_start = now ();
        f_gc0 = Gc.quick_stat ();
        f_minor0 = Gc.minor_words ();
        f_attrs = List.rev attrs;
        f_children = [];
      }
    in
    stack := frame :: !stack;
    let finish () =
      (match !stack with
      | top :: rest when top == frame ->
          stack := rest;
          let sp = close_frame frame in
          (match rest with
          | parent :: _ -> parent.f_children <- sp :: parent.f_children
          | [] ->
              Mutex.lock finished_lock;
              finished := sp :: !finished;
              Mutex.unlock finished_lock)
      | _ ->
          (* Unbalanced stack: tracing was toggled mid-span.  Drop it. *)
          ())
    in
    Fun.protect ~finally:finish f
  end

let add_attr key value =
  if Atomic.get on then
    match !(Domain.DLS.get stack_key) with
    | [] -> ()
    | frame :: _ -> frame.f_attrs <- (key, value) :: frame.f_attrs

let roots () =
  Mutex.lock finished_lock;
  let spans = !finished in
  Mutex.unlock finished_lock;
  List.rev spans

let gc_json g =
  Json.Obj
    [
      ("minor_words", Json.Float g.minor_words);
      ("promoted_words", Json.Float g.promoted_words);
      ("major_words", Json.Float g.major_words);
      ("minor_collections", Json.Int g.minor_collections);
      ("major_collections", Json.Int g.major_collections);
    ]

let rec span_json sp =
  Json.Obj
    [
      ("name", Json.String sp.name);
      ("start", Json.Float sp.start);
      ("duration_seconds", Json.Float sp.duration);
      ("domain", Json.Int sp.domain);
      ("gc", gc_json sp.gc);
      ("attrs", Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) sp.attrs));
      ("children", Json.List (List.map span_json sp.children));
    ]

let json () = Json.List (List.map span_json (roots ()))
