(** Export completed span trees as Chrome Trace Event JSON, loadable in
    [chrome://tracing] and {{:https://ui.perfetto.dev}Perfetto}.

    Every span becomes one complete event ([ph = "X"]) with
    - [ts]/[dur] in microseconds, [ts] relative to the earliest span in
      the export (viewers only use differences);
    - [tid] set to the span's {!Trace.span.domain}, so spans recorded by
      [Util.Parallel.map] worker domains render as separate lanes
      (a [thread_name] metadata event labels each lane "domain N");
    - [args] carrying the span's string attrs plus a [gc] object with the
      span's {!Trace.gc_delta}.

    [sap_cli solve --trace-chrome FILE] writes this next to the stats
    report; see docs/FORMAT.md. *)

val convert : ?clock:Clock.anchor -> Trace.span list -> Json.t
(** [{"traceEvents": [..], "displayTimeUnit": "ms", "otherData": {..}}].
    Metadata events come first; complete events are sorted by [ts].
    When [clock] is given, [otherData] records the wall/monotonic anchor
    and the monotonic time of the export's [ts = 0] origin. *)

val of_current : unit -> Json.t
(** [convert ~clock:(Clock.anchor ()) (Trace.roots ())]. *)
