(* Metric-by-metric comparison of two stats reports (sap-stats v3), the
   engine behind [sap_cli bench-diff].

   Reports are flattened to dotted leaf paths ("metrics.counters.
   simplex.iterations", "result.weight", ...).  Each path is classified:

   - counter  — "metrics.counters.*" and histogram "*.count" leaves:
                event counts, deterministic for a fixed seed, compared
                exactly (or within [counter_tol]);
   - timing   — any path mentioning seconds/time/duration/start/clock/
                latency, plus histogram quantile leaves ending in .p50/
                .p90/.p95/.p99: wall-clock measurements, inherently noisy.
                Skipped
                unless [time_factor > 0]; a faster run is an improvement,
                never a failure;
   - float    — remaining numeric leaves (gauges, ratio histograms),
                compared within relative [float_tol];
   - equality — strings, bools, nulls.

   The "spans" subtree is never compared (its timings differ run to run),
   and neither is any histogram ".buckets." subtree — which bucket a
   duration lands in varies with machine speed, so bucket keys would flap
   between Missing/Added run to run; the deterministic count leaf and the
   time-factor-gated quantiles carry the signal instead.  Callers can
   exclude more with [ignore_prefixes]. *)

type thresholds = {
  counter_tol : float;
  float_tol : float;
  time_factor : float;
  ignore_prefixes : string list;
}

let default_thresholds =
  { counter_tol = 0.0; float_tol = 1e-6; time_factor = 0.0; ignore_prefixes = [] }

type status = Match | Within | Improved | Regressed | Missing | Added | Skipped

type finding = {
  path : string;
  status : status;
  old_value : string;
  new_value : string;
  detail : string;
}

let is_failure = function
  | Regressed | Missing -> true
  | Match | Within | Improved | Added | Skipped -> false

let status_label = function
  | Match -> "ok"
  | Within -> "within"
  | Improved -> "improved"
  | Regressed -> "REGRESSED"
  | Missing -> "MISSING"
  | Added -> "added"
  | Skipped -> "skipped"

(* ---------- flattening ---------- *)

let join prefix k = if prefix = "" then k else prefix ^ "." ^ k

let rec flatten prefix v acc =
  match v with
  | Json.Obj fields ->
      List.fold_left (fun acc (k, v) -> flatten (join prefix k) v acc) acc fields
  | Json.List items ->
      snd
        (List.fold_left
           (fun (i, acc) v -> (i + 1, flatten (join prefix (string_of_int i)) v acc))
           (0, acc) items)
  | leaf -> (prefix, leaf) :: acc

let leaves v = List.rev (flatten "" v [])

(* ---------- classification ---------- *)

type cls = Counter | Timing | Float_like | Equality

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix
  && (String.length s = String.length prefix || s.[String.length prefix] = '.')

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let last_segment path =
  match String.rindex_opt path '.' with
  | None -> path
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)

let timing_keywords = [ "seconds"; "time"; "duration"; "start"; "clock"; "latency" ]

let quantile_leaves = [ "p50"; "p90"; "p95"; "p99" ]

let classify path value =
  match value with
  | Json.String _ | Json.Bool _ | Json.Null -> Equality
  | Json.Int _ | Json.Float _ ->
      if has_prefix ~prefix:"metrics.counters" path || last_segment path = "count" then
        Counter
      else if
        List.exists (contains_sub path) timing_keywords
        || List.mem (last_segment path) quantile_leaves
      then Timing
      else Float_like
  | Json.Obj _ | Json.List _ -> Equality (* unreachable: leaves only *)

let number = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

let show = function
  | Json.Null -> "null"
  | Json.Bool b -> string_of_bool b
  | Json.Int i -> string_of_int i
  | Json.Float f -> Printf.sprintf "%.6g" f
  | v -> Json.to_string v

(* ---------- comparison ---------- *)

let rel_drift old_n new_n =
  let denom = if Float.abs old_n > 0.0 then Float.abs old_n else 1.0 in
  (new_n -. old_n) /. denom

let pct rel = Printf.sprintf "%+.2f%%" (100.0 *. rel)

let compare_leaf t path old_v new_v =
  let finding status detail =
    { path; status; old_value = show old_v; new_value = show new_v; detail }
  in
  match classify path old_v with
  | Equality ->
      if old_v = new_v then finding Match ""
      else finding Regressed "value changed"
  | cls -> (
      match (number old_v, number new_v) with
      | Some old_n, Some new_n -> (
          let rel = rel_drift old_n new_n in
          match cls with
          | Counter | Float_like ->
              let tol =
                match cls with Counter -> t.counter_tol | _ -> t.float_tol
              in
              if old_n = new_n then finding Match ""
              else if Float.abs rel <= tol then finding Within (pct rel)
              else finding Regressed (pct rel)
          | Timing ->
              if t.time_factor <= 0.0 then finding Skipped "timing (not gated)"
              else if new_n <= old_n then
                if new_n < old_n then finding Improved (pct rel) else finding Match ""
              else if new_n <= old_n *. t.time_factor then finding Within (pct rel)
              else
                finding Regressed
                  (Printf.sprintf "%s > allowed x%.2f" (pct rel) t.time_factor)
          | Equality -> assert false)
      | _ -> finding Regressed "type changed")

let compare_reports ?(thresholds = default_thresholds) ~old_report ~new_report () =
  let t = thresholds in
  let ignored path =
    has_prefix ~prefix:"spans" path
    || contains_sub path ".buckets."
    || List.exists (fun p -> has_prefix ~prefix:p path) t.ignore_prefixes
  in
  let old_leaves = leaves old_report in
  let new_leaves = leaves new_report in
  let new_tbl = Hashtbl.create (List.length new_leaves) in
  List.iter (fun (p, v) -> Hashtbl.replace new_tbl p v) new_leaves;
  let old_tbl = Hashtbl.create (List.length old_leaves) in
  List.iter (fun (p, v) -> Hashtbl.replace old_tbl p v) old_leaves;
  let from_old =
    List.map
      (fun (path, old_v) ->
        if ignored path then
          { path; status = Skipped; old_value = show old_v; new_value = "";
            detail = "ignored" }
        else
          match Hashtbl.find_opt new_tbl path with
          | Some new_v -> compare_leaf t path old_v new_v
          | None ->
              { path; status = Missing; old_value = show old_v; new_value = "-";
                detail = "metric disappeared" })
      old_leaves
  in
  let added =
    List.filter_map
      (fun (path, new_v) ->
        if ignored path || Hashtbl.mem old_tbl path then None
        else
          Some
            { path; status = Added; old_value = "-"; new_value = show new_v;
              detail = "new metric" })
      new_leaves
  in
  from_old @ added

(* ---------- rendering ---------- *)

let render_table ?(show_all = false) findings =
  let rows =
    List.filter
      (fun f ->
        show_all || (match f.status with Match | Skipped -> false | _ -> true))
      findings
  in
  if rows = [] then ""
  else begin
    let width init f =
      List.fold_left (fun w r -> max w (String.length (f r))) init rows
    in
    let w_status = width 9 (fun r -> status_label r.status) in
    let w_path = width 6 (fun r -> r.path) in
    let w_old = width 3 (fun r -> r.old_value) in
    let w_new = width 3 (fun r -> r.new_value) in
    let buf = Buffer.create 256 in
    let line status path old_v new_v detail =
      Buffer.add_string buf
        (Printf.sprintf "%-*s  %-*s  %*s  %*s  %s\n" w_status status w_path path
           w_old old_v w_new new_v detail)
    in
    line "status" "metric" "old" "new" "note";
    line (String.make w_status '-') (String.make w_path '-') (String.make w_old '-')
      (String.make w_new '-') "----";
    List.iter
      (fun r ->
        line (status_label r.status) r.path r.old_value r.new_value r.detail)
      rows;
    Buffer.contents buf
  end

let count status findings =
  List.length (List.filter (fun f -> f.status = status) findings)

let summary findings =
  Printf.sprintf
    "%d compared: %d ok, %d within tolerance, %d improved, %d skipped, %d added / %d regressed, %d missing"
    (List.length findings) (count Match findings) (count Within findings)
    (count Improved findings) (count Skipped findings) (count Added findings)
    (count Regressed findings) (count Missing findings)
