/* Monotonic clock for Obs.Clock.
 *
 * CLOCK_MONOTONIC is immune to NTP steps and manual clock changes, which
 * is what span durations need; the epoch is arbitrary (usually boot), so
 * Obs.Report records one wall/monotonic anchor pair per report to let
 * consumers reconstruct wall-clock times. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

CAMLprim value sap_obs_monotonic_seconds(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
}
