(** A process-wide registry of named counters, gauges and histograms.

    Designed for the solving stack's hot paths:
    - every update first reads one [Atomic] enabled flag and returns
      immediately when collection is off (the default), so instrumented
      code costs nothing measurable in benchmarks;
    - all cells are {!Atomic} values updated with CAS loops (bucket
      increments are single [fetch_and_add]s), so updates from the domains
      spawned by [Util.Parallel.map] are lost-update-free;
    - handles are meant to be created once at module initialisation
      ([let c = Metrics.counter "simplex.iterations"]) — creation takes a
      registry lock, updates never do.

    Names are dotted lowercase paths ([subsystem.quantity]); registering
    the same name twice returns the same cell. *)

type counter
type gauge
type histogram

val enable : unit -> unit
(** Turn collection on (process-wide, all domains). *)

val disable : unit -> unit

val enabled : unit -> bool
(** True when collection is on.  Instrumentation wrapping non-trivial
    computation (e.g. counting DP states) should guard on this instead of
    paying for the computation unconditionally. *)

val reset : unit -> unit
(** Zero every registered cell; registrations are kept. *)

val counter : string -> counter
(** Register (or look up) a monotonically increasing integer. *)

val incr : counter -> unit

val add : counter -> int -> unit

val counter_value : counter -> int

val gauge : string -> gauge
(** Register (or look up) a last-write-wins float. *)

val set : gauge -> float -> unit

val gauge_value : gauge -> float

val histogram : string -> histogram
(** Register (or look up) a quantile histogram: exact count / sum / min /
    max plus fixed exponential ("log-bucketed") buckets for percentile
    estimation.  Used for durations (seconds) and per-event ratios. *)

val observe : histogram -> float -> unit

val time : histogram -> (unit -> 'a) -> 'a
(** [time h f] observes the wall-clock duration of [f ()] in seconds when
    collection is on; it is exactly [f ()] otherwise. *)

(** {1 Bucket grid}

    The grid is global and static so any two summaries merge by element-wise
    bucket addition: bucket [0] is underflow ([v <= 1e-9]), buckets
    [1..177] grow by a factor [2^(1/4)] (≤ 9.1% relative width) covering
    1 ns to ~6.4 h, and the last bucket is overflow. *)

val bucket_count : int
(** Total number of buckets, including underflow and overflow. *)

val bucket_index : float -> int
(** The bucket a value lands in; total over [0 .. bucket_count - 1]. *)

val bucket_upper : int -> float
(** Inclusive upper bound of a bucket ([infinity] for the overflow
    bucket, the underflow threshold for bucket [0]). *)

type histogram_summary = {
  count : int;
  sum : float;
  min : float;  (** [nan] when empty *)
  max : float;  (** [nan] when empty *)
  buckets : int array;  (** length [bucket_count]; sums to [count] *)
}

val empty_summary : histogram_summary

val summary_observe : histogram_summary -> float -> histogram_summary
(** Pure single-value update (copies the bucket array — meant for
    accumulation off the hot path). *)

val summary_of_values : float array -> histogram_summary
(** Pure construction from raw samples; never touches the registry or the
    enabled flag.  [summary_of_values [||] = empty_summary]. *)

val merge : histogram_summary -> histogram_summary -> histogram_summary
(** Element-wise merge (counts and buckets add, min/max combine).
    Associative and commutative, with [empty_summary] as identity — safe
    to combine per-domain summaries in any order. *)

val quantile : histogram_summary -> float -> float
(** [quantile s q] estimates the [q]-quantile ([0..1], clamped) from the
    buckets: the geometric midpoint of the bucket holding the rank-
    [ceil q*count] sample, clamped to the exact [min, max] (the open-ended
    underflow/overflow buckets report the exact extreme).  The estimate
    is within one bucket's relative width ([2^(1/4)]) of the exact
    empirical quantile for positive samples above the underflow threshold.
    [nan] when empty. *)

val summary_json : histogram_summary -> Json.t
(** [{count, sum, mean, min, max, p50, p90, p95, p99, buckets}] where
    [buckets] is a sparse object mapping bucket index (as a string) to its
    non-zero count, and every statistic is [null] when empty. *)

val summary_of_json : Json.t -> histogram_summary option
(** Parse a {!summary_json}-shaped object back into a summary ([None] if
    there is no integer [count] field).  Quantile fields are recomputed
    from the buckets, not read back. *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_summary) list;
}
(** All lists sorted by name. *)

val snapshot : unit -> snapshot

val snapshot_json : unit -> Json.t
(** [{"counters": {..}, "gauges": {..}, "histograms": {name:
    summary_json, ..}}] — the [metrics] section of the stats report. *)
