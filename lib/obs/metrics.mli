(** A process-wide registry of named counters, gauges and histograms.

    Designed for the solving stack's hot paths:
    - every update first reads one [Atomic] enabled flag and returns
      immediately when collection is off (the default), so instrumented
      code costs nothing measurable in benchmarks;
    - all cells are {!Atomic} values updated with CAS loops, so updates
      from the domains spawned by [Util.Parallel.map] are lost-update-free;
    - handles are meant to be created once at module initialisation
      ([let c = Metrics.counter "simplex.iterations"]) — creation takes a
      registry lock, updates never do.

    Names are dotted lowercase paths ([subsystem.quantity]); registering
    the same name twice returns the same cell. *)

type counter
type gauge
type histogram

val enable : unit -> unit
(** Turn collection on (process-wide, all domains). *)

val disable : unit -> unit

val enabled : unit -> bool
(** True when collection is on.  Instrumentation wrapping non-trivial
    computation (e.g. counting DP states) should guard on this instead of
    paying for the computation unconditionally. *)

val reset : unit -> unit
(** Zero every registered cell; registrations are kept. *)

val counter : string -> counter
(** Register (or look up) a monotonically increasing integer. *)

val incr : counter -> unit

val add : counter -> int -> unit

val counter_value : counter -> int

val gauge : string -> gauge
(** Register (or look up) a last-write-wins float. *)

val set : gauge -> float -> unit

val gauge_value : gauge -> float

val histogram : string -> histogram
(** Register (or look up) a summary histogram (count / sum / min / max).
    Used for durations (seconds) and per-event ratios. *)

val observe : histogram -> float -> unit

val time : histogram -> (unit -> 'a) -> 'a
(** [time h f] observes the wall-clock duration of [f ()] in seconds when
    collection is on; it is exactly [f ()] otherwise. *)

type histogram_summary = {
  count : int;
  sum : float;
  min : float;  (** [nan] when empty *)
  max : float;  (** [nan] when empty *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_summary) list;
}
(** All lists sorted by name. *)

val snapshot : unit -> snapshot

val snapshot_json : unit -> Json.t
(** [{"counters": {..}, "gauges": {..}, "histograms": {name: {count, sum,
    mean, min, max}, ..}}] — the [metrics] section of the stats report. *)
