(* Span trees → Chrome Trace Event JSON (the "JSON Array Format" wrapped
   in an object), loadable by chrome://tracing and https://ui.perfetto.dev.

   Each span becomes one complete ("ph":"X") event; the domain that ran
   the span becomes the event's tid, so Util.Parallel worker domains
   render as separate lanes.  Timestamps are microseconds relative to the
   earliest span in the export (Chrome only cares about differences). *)

let ( => ) k v = (k, v)

let attr_args sp =
  List.map (fun (k, v) -> (k, Json.String v)) sp.Trace.attrs
  @ [ "gc" => Trace.gc_json sp.Trace.gc ]

let rec collect_events ~t0 sp acc =
  let ev =
    Json.Obj
      [
        "name" => Json.String sp.Trace.name;
        "cat" => Json.String "sap";
        "ph" => Json.String "X";
        "ts" => Json.Float ((sp.Trace.start -. t0) *. 1e6);
        "dur" => Json.Float (sp.Trace.duration *. 1e6);
        "pid" => Json.Int 0;
        "tid" => Json.Int sp.Trace.domain;
        "args" => Json.Obj (attr_args sp);
      ]
  in
  List.fold_left (fun acc c -> collect_events ~t0 c acc) (ev :: acc) sp.Trace.children

let event_ts = function
  | Json.Obj fields -> (
      match List.assoc_opt "ts" fields with Some (Json.Float t) -> t | _ -> 0.0)
  | _ -> 0.0

let rec span_tids sp acc =
  List.fold_left
    (fun acc c -> span_tids c acc)
    (if List.mem sp.Trace.domain acc then acc else sp.Trace.domain :: acc)
    sp.Trace.children

let metadata_events tids =
  Json.Obj
    [
      "name" => Json.String "process_name";
      "ph" => Json.String "M";
      "pid" => Json.Int 0;
      "args" => Json.Obj [ "name" => Json.String "sap solver" ];
    ]
  :: List.map
       (fun tid ->
         Json.Obj
           [
             "name" => Json.String "thread_name";
             "ph" => Json.String "M";
             "pid" => Json.Int 0;
             "tid" => Json.Int tid;
             "args" => Json.Obj [ "name" => Json.String (Printf.sprintf "domain %d" tid) ];
           ])
       tids

let convert ?clock spans =
  let t0 =
    List.fold_left (fun t sp -> Float.min t sp.Trace.start) infinity spans
  in
  let t0 = if Float.is_finite t0 then t0 else 0.0 in
  let events =
    List.fold_left (fun acc sp -> collect_events ~t0 sp acc) [] spans
    |> List.stable_sort (fun a b -> Float.compare (event_ts a) (event_ts b))
  in
  let tids = List.sort compare (List.fold_left (fun acc sp -> span_tids sp acc) [] spans) in
  let other =
    ("schema", Json.String "sap-chrome-trace v1")
    ::
    (match clock with
    | None -> []
    | Some a -> [ ("clock", Clock.anchor_json a); ("trace_t0_monotonic_seconds", Json.Float t0) ])
  in
  Json.Obj
    [
      "traceEvents" => Json.List (metadata_events tids @ events);
      "displayTimeUnit" => Json.String "ms";
      "otherData" => Json.Obj other;
    ]

let of_current () = convert ~clock:(Clock.anchor ()) (Trace.roots ())
