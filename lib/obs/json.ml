type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec emit ~indent ~level buf v =
  let pad n =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * n) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if not (Float.is_finite f) then Buffer.add_string buf "null"
      else Buffer.add_string buf (float_to_string f)
  | String s -> escape_to buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          pad (level + 1);
          emit ~indent ~level:(level + 1) buf item)
        items;
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          pad (level + 1);
          escape_to buf k;
          Buffer.add_char buf ':';
          if indent then Buffer.add_char buf ' ';
          emit ~indent ~level:(level + 1) buf item)
        fields;
      pad level;
      Buffer.add_char buf '}'

let render ~indent v =
  let buf = Buffer.create 256 in
  emit ~indent ~level:0 buf v;
  Buffer.contents buf

let to_string v = render ~indent:false v

let to_string_pretty v = render ~indent:true v
