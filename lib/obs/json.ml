type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec emit ~indent ~level buf v =
  let pad n =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * n) ' ')
    end
  in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if not (Float.is_finite f) then Buffer.add_string buf "null"
      else Buffer.add_string buf (float_to_string f)
  | String s -> escape_to buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          pad (level + 1);
          emit ~indent ~level:(level + 1) buf item)
        items;
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          pad (level + 1);
          escape_to buf k;
          Buffer.add_char buf ':';
          if indent then Buffer.add_char buf ' ';
          emit ~indent ~level:(level + 1) buf item)
        fields;
      pad level;
      Buffer.add_char buf '}'

let render ~indent v =
  let buf = Buffer.create 256 in
  emit ~indent ~level:0 buf v;
  Buffer.contents buf

let to_string v = render ~indent:false v

let to_string_pretty v = render ~indent:true v

(* ---------- parsing ---------- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    let m = String.length lit in
    if !pos + m <= n && String.sub s !pos m = lit then begin
      pos := !pos + m;
      v
    end
    else fail ("expected " ^ lit)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = int_of_string ("0x" ^ String.sub s !pos 4) in
    pos := !pos + 4;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            if !pos >= n then fail "truncated escape";
            (match s.[!pos] with
            | '"' -> incr pos; Buffer.add_char buf '"'
            | '\\' -> incr pos; Buffer.add_char buf '\\'
            | '/' -> incr pos; Buffer.add_char buf '/'
            | 'b' -> incr pos; Buffer.add_char buf '\b'
            | 'f' -> incr pos; Buffer.add_char buf '\012'
            | 'n' -> incr pos; Buffer.add_char buf '\n'
            | 'r' -> incr pos; Buffer.add_char buf '\r'
            | 't' -> incr pos; Buffer.add_char buf '\t'
            | 'u' ->
                incr pos;
                let cp = hex4 () in
                let cp =
                  if cp >= 0xD800 && cp <= 0xDBFF
                     && !pos + 2 <= n
                     && s.[!pos] = '\\'
                     && s.[!pos + 1] = 'u'
                  then begin
                    (* Surrogate pair. *)
                    pos := !pos + 2;
                    let lo = hex4 () in
                    if lo >= 0xDC00 && lo <= 0xDFFF then
                      0x10000 + (((cp - 0xD800) lsl 10) lor (lo - 0xDC00))
                    else 0xFFFD
                  end
                  else if cp >= 0xD800 && cp <= 0xDFFF then 0xFFFD
                  else cp
                in
                Buffer.add_utf_8_uchar buf (Uchar.of_int cp)
            | c -> fail (Printf.sprintf "bad escape \\%c" c));
            go ()
        | c ->
            incr pos;
            Buffer.add_char buf c;
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let number_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && number_char s.[!pos] do
      incr pos
    done;
    if !pos = start then fail "expected a value";
    let tok = String.sub s start (!pos - start) in
    let is_float = String.exists (function '.' | 'e' | 'E' -> true | _ -> false) tok in
    if is_float then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail ("bad number " ^ tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          (* Integer syntax too large for [int]: keep the magnitude. *)
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                fields ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                List.rev ((k, v) :: acc)
            | _ -> fail "expected , or } in object"
          in
          Obj (fields [])
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                items (v :: acc)
            | Some ']' ->
                incr pos;
                List.rev (v :: acc)
            | _ -> fail "expected , or ] in array"
          in
          List (items [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing characters after value";
    v
  with
  | v -> Ok v
  | exception Parse_error (p, msg) ->
      Error (Printf.sprintf "JSON parse error at offset %d: %s" p msg)
