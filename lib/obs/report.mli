(** The machine-readable stats report ([sap-stats v3]) shared by
    [sap_cli solve --stats-json] and the bench harness, so benchmark
    trajectories can track internal counters with the same schema the CLI
    emits — and so [sap_cli bench-diff] can compare any two of them.

    Schema (documented in docs/FORMAT.md):
    {v
    { "schema":  "sap-stats v3",
      "clock":   { "wall_epoch_seconds": .., "monotonic_seconds": .. },
      ...caller-supplied extra fields...,
      "metrics": { "counters": {..}, "gauges": {..}, "histograms": {..} },
      "spans":   [ {name, start, duration_seconds, domain, gc, attrs,
                    children}, .. ] }
    v}

    Span [start] values are monotonic-clock seconds; the [clock] anchor
    (one {!Clock.anchor} pair sampled at build time) maps them back to
    wall time. *)

val schema_version : string
(** ["sap-stats v3"]. *)

val enable_all : unit -> unit
(** Turn on both {!Metrics} and {!Trace}. *)

val disable_all : unit -> unit

val reset_all : unit -> unit
(** Zero metrics and drop completed spans — call between measured phases
    when one process emits several reports. *)

val build : ?extra:(string * Json.t) list -> ?include_spans:bool -> unit -> Json.t
(** Snapshot metrics and spans into a report object.  [extra] fields are
    placed after [schema] and [clock], before [metrics] (e.g. instance
    stats, result weights).  [include_spans:false] omits the [spans] key
    entirely — the compact form committed as the bench baseline (raw span
    trees dwarf the metric summaries; {!Diff} ignores the [spans] prefix
    on both sides, so compact and full reports diff cleanly). *)

val write_file : string -> Json.t -> unit
(** Pretty-printed, trailing newline.  Atomic: the report is written to a
    temp file in the destination directory and renamed into place, so a
    crash mid-write cannot leave a truncated JSON behind.  Also used for
    the Chrome-trace sidecar. *)
