(** The machine-readable stats report ([sap-stats v1]) shared by
    [sap_cli solve --stats-json] and the bench harness, so benchmark
    trajectories can track internal counters with the same schema the CLI
    emits.

    Schema (documented in docs/FORMAT.md):
    {v
    { "schema":  "sap-stats v1",
      "metrics": { "counters": {..}, "gauges": {..}, "histograms": {..} },
      "spans":   [ {name, start, duration_seconds, attrs, children}, .. ],
      ...caller-supplied extra fields... }
    v} *)

val enable_all : unit -> unit
(** Turn on both {!Metrics} and {!Trace}. *)

val disable_all : unit -> unit

val reset_all : unit -> unit
(** Zero metrics and drop completed spans — call between measured phases
    when one process emits several reports. *)

val build : ?extra:(string * Json.t) list -> unit -> Json.t
(** Snapshot metrics and spans into a report object.  [extra] fields are
    placed after [schema] and before [metrics] (e.g. instance stats,
    result weights). *)

val write_file : string -> Json.t -> unit
(** Pretty-printed, trailing newline. *)
