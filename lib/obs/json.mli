(** Minimal JSON emission — just enough to serialise metric snapshots,
    span trees and CLI reports without an external dependency.  Emission
    only; the test suite and downstream tooling parse with whatever they
    have at hand. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering.  Strings are escaped per RFC 8259;
    non-finite floats render as [null] (JSON has no representation for
    them). *)

val to_string_pretty : t -> string
(** Two-space indented rendering, for files meant to be read by humans. *)
