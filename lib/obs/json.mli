(** Minimal JSON emission and parsing — just enough to serialise metric
    snapshots, span trees and CLI reports, and to read them back
    ([sap_cli bench-diff] compares two stats reports), without an external
    dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact single-line rendering.  Strings are escaped per RFC 8259;
    non-finite floats render as [null] (JSON has no representation for
    them). *)

val to_string_pretty : t -> string
(** Two-space indented rendering, for files meant to be read by humans. *)

val of_string : string -> (t, string) result
(** Parse one RFC 8259 JSON value (surrounding whitespace allowed).
    Numbers without [. e E] become [Int] (falling back to [Float] when
    they exceed the native range); everything else becomes [Float], so
    [to_string] output round-trips structurally.  [\uXXXX] escapes are
    decoded to UTF-8 (lone surrogates become U+FFFD).  Errors carry the
    byte offset of the failure. *)
