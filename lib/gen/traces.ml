module Task = Core.Task
module Path = Core.Path

let memory_trace ~prng ~time_slots ~memory ~n ~max_lifetime ~max_object =
  if max_object > memory then invalid_arg "Traces.memory_trace: object > memory";
  let path = Path.uniform ~edges:time_slots ~capacity:memory in
  let task id =
    let arrival = Util.Prng.int prng time_slots in
    let lifetime = Util.Prng.int_in prng 1 max_lifetime in
    let last = min (time_slots - 1) (arrival + lifetime - 1) in
    let size = Util.Prng.int_in prng 1 max_object in
    let weight = float_of_int (size * (last - arrival + 1)) in
    Task.make ~id ~first_edge:arrival ~last_edge:last ~demand:size ~weight
  in
  (path, List.init n task)

let spectrum_trace ~prng ~links ~n =
  let path = Profiles.valley ~edges:links ~high:64 ~low:16 in
  let task id =
    let rec attempt tries =
      if tries > 1000 then invalid_arg "Traces.spectrum_trace: cannot fit";
      let first = Util.Prng.int prng links in
      let last = Util.Prng.int_in prng first (links - 1) in
      let b = Path.bottleneck path ~first ~last in
      (* Channel demands cluster at small values with an occasional big
         flow: 1 + geometric-ish tail. *)
      let d = 1 + (Util.Prng.int prng 4 * Util.Prng.int_in prng 1 4) in
      if d > b then attempt (tries + 1)
      else
        let revenue = float_of_int d *. (5.0 +. Util.Prng.float prng 15.0) in
        Task.make ~id ~first_edge:first ~last_edge:last ~demand:d ~weight:revenue
    in
    attempt 0
  in
  (path, List.init n task)
