(** Random task-set generators, parameterised by the demand regime.

    Every generator is driven by an explicit {!Util.Prng.t}; identical
    seeds reproduce identical workloads.  Tasks that could never be
    scheduled ([d > b(j)]) are regenerated, so the output is always
    individually feasible. *)

type weight_model =
  | Uniform_weight of float * float  (** iid uniform in a range *)
  | Area_weight of float  (** [w = factor * d * span * (1 + noise)] — heavy
                              tasks are worth more, making the packing
                              trade-offs non-trivial *)

val random_span :
  prng:Util.Prng.t -> edges:int -> max_span:int -> int * int
(** Uniform random [(first_edge, last_edge)] with span in
    [\[1, max_span\]]. *)

val small_tasks :
  prng:Util.Prng.t ->
  path:Core.Path.t ->
  n:int ->
  delta:float ->
  ?max_span:int ->
  ?weights:weight_model ->
  unit ->
  Core.Task.t list
(** Demands uniform in [\[1, delta * b(j)\]] (at least 1; spans resampled
    until [delta * b >= 1]). *)

val ratio_tasks :
  prng:Util.Prng.t ->
  path:Core.Path.t ->
  n:int ->
  lo:float ->
  hi:float ->
  ?max_span:int ->
  ?weights:weight_model ->
  unit ->
  Core.Task.t list
(** Demand-to-bottleneck ratio uniform in [\[lo, hi\]] — [lo, hi] = (1/2, 1]
    gives 1/2-large instances, (0.25, 0.5] gives Theorem 4's medium band,
    etc. *)

val mixed_tasks :
  prng:Util.Prng.t ->
  path:Core.Path.t ->
  n:int ->
  ?max_span:int ->
  ?weights:weight_model ->
  unit ->
  Core.Task.t list
(** Demand ratio uniform over (0, 1]: the general-SAP workload of
    experiment T4. *)
