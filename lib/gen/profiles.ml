module Path = Core.Path

let uniform ~edges ~capacity = Path.uniform ~edges ~capacity

let valley ~edges ~high ~low =
  if low > high then invalid_arg "Profiles.valley: low > high";
  let mid = (edges - 1) / 2 in
  let cap e =
    let dist = abs (e - mid) in
    let span = max mid (edges - 1 - mid) in
    if span = 0 then low else low + ((high - low) * dist / span)
  in
  Path.create (Array.init edges cap)

let mountain ~edges ~low ~high =
  if low > high then invalid_arg "Profiles.mountain: low > high";
  let mid = (edges - 1) / 2 in
  let cap e =
    let dist = abs (e - mid) in
    let span = max mid (edges - 1 - mid) in
    if span = 0 then high else high - ((high - low) * dist / span)
  in
  Path.create (Array.init edges cap)

let staircase ~edges ~steps ~base =
  if steps < 1 then invalid_arg "Profiles.staircase: steps >= 1";
  let per = max 1 (edges / steps) in
  let cap e =
    let s = min (steps - 1) (e / per) in
    base * (1 lsl s)
  in
  Path.create (Array.init edges cap)

let random_walk ~prng ~edges ~start ~max_step ~min_cap =
  let current = ref start in
  let cap _ =
    let step = Util.Prng.int_in prng (-max_step) max_step in
    current := max min_cap (!current + step);
    !current
  in
  Path.create (Array.init edges cap)
