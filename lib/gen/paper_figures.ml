module Task = Core.Task
module Path = Core.Path

let fig1a =
  let path = Path.create [| 1; 2; 1 |] in
  let tasks =
    [
      Task.make ~id:0 ~first_edge:0 ~last_edge:1 ~demand:1 ~weight:1.0;
      Task.make ~id:1 ~first_edge:1 ~last_edge:2 ~demand:1 ~weight:1.0;
    ]
  in
  (path, tasks)

(* Greedily sample a UFPP-feasible task set (loads kept within capacity by
   construction), then ask the exact oracle whether any height assignment
   schedules all of it. *)
let random_ufpp_feasible_set prng path ~n ~demands =
  let m = Path.num_edges path in
  let load = Array.make m 0 in
  let tasks = ref [] in
  let id = ref 0 in
  for _ = 1 to n do
    let span = Util.Prng.int_in prng 1 m in
    let first = Util.Prng.int prng (m - span + 1) in
    let last = first + span - 1 in
    let d = Util.Prng.choose prng demands in
    let rec fits e = e > last || (load.(e) + d <= Path.capacity path e && fits (e + 1)) in
    if fits first then begin
      for e = first to last do
        load.(e) <- load.(e) + d
      done;
      tasks :=
        Task.make ~id:!id ~first_edge:first ~last_edge:last ~demand:d ~weight:1.0
        :: !tasks;
      incr id
    end
  done;
  List.rev !tasks

let fig1b ~seed =
  let prng = Util.Prng.create seed in
  let rec search attempt =
    if attempt > 2_000_000 then
      failwith "Paper_figures.fig1b: no gap instance found (raise the budget)";
    let edges = Util.Prng.int_in prng 4 9 in
    let path = Path.uniform ~edges ~capacity:4 in
    let tasks = random_ufpp_feasible_set prng path ~n:24 ~demands:[| 1; 2; 3 |] in
    if List.length tasks >= 4 && List.length tasks <= 12 then
      match Exact.Sap_brute.realizable path tasks with
      | None -> (path, tasks)
      | Some _ -> search (attempt + 1)
    else search (attempt + 1)
  in
  search 0

let fig2_uniform =
  let path = Path.uniform ~edges:6 ~capacity:16 in
  let mk id first last d =
    Task.make ~id ~first_edge:first ~last_edge:last ~demand:d ~weight:1.0
  in
  (path, [ mk 0 0 2 2; mk 1 1 4 1; mk 2 2 5 2; mk 3 0 5 1; mk 4 3 4 2 ])

let fig2_valley =
  let path = Path.create [| 16; 12; 8; 8; 12; 16 |] in
  let mk id first last d =
    Task.make ~id ~first_edge:first ~last_edge:last ~demand:d ~weight:1.0
  in
  (* Bottlenecks differ per span: the same demand can be delta-small for a
     short outer task and not for a valley-crossing one. *)
  (path, [ mk 0 0 1 1; mk 1 1 4 1; mk 2 2 3 1; mk 3 0 5 1; mk 4 4 5 2 ])

(* Fig. 8: five 1/2-large tasks admitting a full SAP schedule whose
   rectangle graph is a chordless 5-cycle.  Found by deterministic search
   (seed below) and validated structurally here and in the tests. *)

let is_c5 rects =
  let a = Array.of_list rects in
  let n = Array.length a in
  n = 5
  &&
  let adj i j = Rects.Rect.intersects a.(i) a.(j) in
  let degree v =
    let d = ref 0 in
    for u = 0 to n - 1 do
      if u <> v && adj v u then incr d
    done;
    !d
  in
  let rec all_deg2 v = v = n || (degree v = 2 && all_deg2 (v + 1)) in
  all_deg2 0
  &&
  (* A connected 2-regular graph on 5 vertices is C5. *)
  let visited = Array.make n false in
  let rec dfs v =
    visited.(v) <- true;
    for u = 0 to n - 1 do
      if u <> v && adj v u && not visited.(u) then dfs u
    done
  in
  dfs 0;
  Array.for_all Fun.id visited

(* Explicit construction.  Bottlenecks: b_A = 15 (edges 0-1), b_B = 29
   (edges 2-3), b_C = 57 (edges 4-6), b_D = 29 (edge 7), b_E = 8 (edge 8).
   Rectangles: A (7,15], B (14,29], C (28,57], D (7,29], E (3,8] — pairwise
   intersections are exactly the cycle A-B-C-D-E-A (the chords A-C, A-D,
   B-D die on disjoint x-spans; B-E, C-E on disjoint y-spans).  The height
   assignment E@0, A@5, B@13, D@5, C@28 schedules all five. *)
let fig8_instance =
  let path = Path.create [| 15; 15; 29; 29; 57; 57; 57; 29; 8 |] in
  let mk id first last d =
    Task.make ~id ~first_edge:first ~last_edge:last ~demand:d ~weight:1.0
  in
  let a = mk 0 0 2 8 in
  let b = mk 1 2 4 15 in
  let c = mk 2 4 6 29 in
  let d = mk 3 5 7 22 in
  let e = mk 4 0 8 5 in
  (path, [ (a, 5); (b, 13); (c, 28); (d, 5); (e, 0) ])

let fig8 = lazy fig8_instance
