module Task = Core.Task
module Path = Core.Path

type weight_model =
  | Uniform_weight of float * float
  | Area_weight of float

let default_weights = Uniform_weight (1.0, 100.0)

let draw_weight prng model (d : int) (span : int) =
  match model with
  | Uniform_weight (lo, hi) -> lo +. Util.Prng.float prng (hi -. lo)
  | Area_weight factor ->
      let noise = 0.5 +. Util.Prng.float prng 1.0 in
      factor *. float_of_int (d * span) *. noise

let random_span ~prng ~edges ~max_span =
  let span = Util.Prng.int_in prng 1 (min max_span edges) in
  let first = Util.Prng.int prng (edges - span + 1) in
  (first, first + span - 1)

(* A task with demand-to-bottleneck ratio strictly above [lo] and at most
   [hi]: d is uniform over the integers in (lo*b, hi*b], resampling the
   span when that range is empty.  Integer bounds keep the classification
   exact: [d <= hi*b] and [d > lo*b] hold verbatim. *)
let task_in_ratio_band ~prng ~path ~max_span ~weights ~id ~lo ~hi =
  let edges = Path.num_edges path in
  let rec attempt tries =
    if tries > 1000 then
      invalid_arg "Workloads: cannot fit a task (capacities too small?)";
    let first, last = random_span ~prng ~edges ~max_span in
    let b = float_of_int (Path.bottleneck path ~first ~last) in
    let d_min = max 1 (1 + int_of_float (Float.floor (lo *. b))) in
    let d_max = int_of_float (Float.floor (hi *. b)) in
    if d_max < d_min then attempt (tries + 1)
    else
      let d = Util.Prng.int_in prng d_min d_max in
      let span = last - first + 1 in
      Task.make ~id ~first_edge:first ~last_edge:last ~demand:d
        ~weight:(draw_weight prng weights d span)
  in
  attempt 0

let generate ~prng ~path ~n ~max_span ~weights ~lo ~hi =
  List.init n (fun id ->
      task_in_ratio_band ~prng ~path ~max_span ~weights ~id ~lo ~hi)

let small_tasks ~prng ~path ~n ~delta ?max_span ?(weights = default_weights) () =
  let max_span = match max_span with Some s -> s | None -> Path.num_edges path in
  generate ~prng ~path ~n ~max_span ~weights ~lo:0.0 ~hi:delta

let ratio_tasks ~prng ~path ~n ~lo ~hi ?max_span ?(weights = default_weights) () =
  if not (0.0 <= lo && lo <= hi && hi <= 1.0) then
    invalid_arg "Workloads.ratio_tasks: need 0 <= lo <= hi <= 1";
  let max_span = match max_span with Some s -> s | None -> Path.num_edges path in
  generate ~prng ~path ~n ~max_span ~weights ~lo ~hi

let mixed_tasks ~prng ~path ~n ?max_span ?weights () =
  ratio_tasks ~prng ~path ~n ~lo:0.0 ~hi:1.0 ?max_span ?weights ()
