(** Capacity profile generators.

    The paper's algorithms are sensitive to the *shape* of the capacity
    vector (bottleneck bands, almost-uniform windows), so the experiments
    sweep several canonical shapes. *)

val uniform : edges:int -> capacity:int -> Core.Path.t

val valley : edges:int -> high:int -> low:int -> Core.Path.t
(** High at both ends, single minimum in the middle, linear slopes —
    the shape of Fig. 2(b). *)

val mountain : edges:int -> low:int -> high:int -> Core.Path.t
(** Inverse of {!valley}. *)

val staircase : edges:int -> steps:int -> base:int -> Core.Path.t
(** [steps] plateaus, capacity doubling per plateau ([base * 2^s]): puts
    every plateau in its own bottleneck band, exercising Strip-Pack and
    AlmostUniform band logic. *)

val random_walk :
  prng:Util.Prng.t -> edges:int -> start:int -> max_step:int -> min_cap:int -> Core.Path.t
(** Bounded random walk, clamped below at [min_cap]. *)
