module Ring = Core.Ring

let route_bottleneck caps edges =
  List.fold_left (fun acc e -> min acc caps.(e)) max_int edges

let random ~prng ~edges ~n ~cap_lo ~cap_hi ~ratio_lo ~ratio_hi =
  if edges < 3 then invalid_arg "Ring_gen.random: edges >= 3";
  let caps = Array.init edges (fun _ -> Util.Prng.int_in prng cap_lo cap_hi) in
  let rec task id tries =
    if tries > 1000 then invalid_arg "Ring_gen.random: cannot fit a task";
    let src = Util.Prng.int prng edges in
    let dst = Util.Prng.int prng edges in
    if src = dst then task id (tries + 1)
    else begin
      let cw = Ring.edges_of_route ~m:edges ~src ~dst Ring.Cw in
      let ccw = Ring.edges_of_route ~m:edges ~src ~dst Ring.Ccw in
      let b = max (route_bottleneck caps cw) (route_bottleneck caps ccw) in
      let bf = float_of_int b in
      let d_min = max 1 (1 + int_of_float (Float.floor (ratio_lo *. bf))) in
      let d_max = int_of_float (Float.floor (ratio_hi *. bf)) in
      if d_max < d_min then task id (tries + 1)
      else
        let d = Util.Prng.int_in prng d_min d_max in
        Ring.make_task ~id ~src ~dst ~demand:d
          ~weight:(1.0 +. Util.Prng.float prng 99.0)
          ~t_edges:edges
    end
  in
  let tasks = List.init n (fun id -> task id 0) in
  Ring.create caps tasks
