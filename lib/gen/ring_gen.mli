(** Random ring instances for the Theorem 5 experiments. *)

val random :
  prng:Util.Prng.t ->
  edges:int ->
  n:int ->
  cap_lo:int ->
  cap_hi:int ->
  ratio_lo:float ->
  ratio_hi:float ->
  Core.Ring.t
(** [n] tasks with uniformly random distinct terminal pairs; each task's
    demand is drawn so that its ratio to the *smaller* of its two route
    bottlenecks lies in [(ratio_lo, ratio_hi]] — every task is routable at
    least one way.  Weights uniform in [\[1, 100\]]. *)
