module Task = Core.Task
module Path = Core.Path
module Ring = Core.Ring
module Prng = Util.Prng

type op =
  | Nudge_demand
  | Tighten_bottleneck
  | Duplicate_task
  | Split_task
  | Jitter_weight
  | Shift_span
  | Drop_task

let all_ops =
  [
    Nudge_demand;
    Tighten_bottleneck;
    Duplicate_task;
    Split_task;
    Jitter_weight;
    Shift_span;
    Drop_task;
  ]

let op_name = function
  | Nudge_demand -> "nudge-demand"
  | Tighten_bottleneck -> "tighten-bottleneck"
  | Duplicate_task -> "duplicate-task"
  | Split_task -> "split-task"
  | Jitter_weight -> "jitter-weight"
  | Shift_span -> "shift-span"
  | Drop_task -> "drop-task"

let clamp lo hi v = max lo (min hi v)

let renumber tasks = List.mapi (fun i t -> Task.with_id t i) tasks

let pick prng tasks = List.nth tasks (Prng.int prng (List.length tasks))

(* Replace the task with [target]'s id by [f target]; [f] may return a
   list (split) or [] (drop). *)
let replace tasks (target : Task.t) f =
  renumber
    (List.concat_map
       (fun (t : Task.t) -> if t.Task.id = target.Task.id then f t else [ t ])
       tasks)

let jitter_factor prng = 0.5 +. Prng.float prng 1.5

let positive_weight w = Float.max 1e-6 w

(* ---------- path instances ---------- *)

let default_thresholds = [ 0.25; 0.5 ]

let mutate_path ~prng ?(max_tasks = 16) ?(thresholds = default_thresholds) op
    path tasks =
  if tasks = [] then None
  else
    let n = List.length tasks in
    match op with
    | Nudge_demand ->
        let j = pick prng tasks in
        let b = Path.bottleneck_of path j in
        let t = List.nth thresholds (Prng.int prng (List.length thresholds)) in
        let pivot = int_of_float (Float.floor (t *. float_of_int b)) in
        let cand =
          match Prng.int prng 3 with
          | 0 -> pivot (* just at (or below) the threshold *)
          | 1 -> pivot + 1 (* just across it *)
          | _ -> j.Task.demand + (if Prng.bool prng then 1 else -1)
        in
        let d = clamp 1 b cand in
        if d = j.Task.demand then None
        else
          Some
            ( path,
              replace tasks j (fun t ->
                  [
                    Task.make ~id:t.Task.id ~first_edge:t.Task.first_edge
                      ~last_edge:t.Task.last_edge ~demand:d ~weight:t.Task.weight;
                  ]) )
    | Tighten_bottleneck ->
        (* Lower one capacity on some task's interval, but never below the
           largest demand crossing that edge: every task stays
           individually schedulable. *)
        let j = pick prng tasks in
        let e = Prng.int_in prng j.Task.first_edge j.Task.last_edge in
        let floor_e =
          List.fold_left
            (fun acc (t : Task.t) ->
              if Task.uses t e then max acc t.Task.demand else acc)
            1 tasks
        in
        let cap = Path.capacity path e in
        if cap - 1 < floor_e then None
        else
          let caps = Path.capacities path in
          caps.(e) <- cap - 1;
          Some (Path.create caps, tasks)
    | Duplicate_task ->
        if n >= max_tasks then None
        else
          let j = pick prng tasks in
          let w = positive_weight (j.Task.weight *. jitter_factor prng) in
          let clone =
            Task.make ~id:n ~first_edge:j.Task.first_edge
              ~last_edge:j.Task.last_edge ~demand:j.Task.demand ~weight:w
          in
          Some (path, renumber (tasks @ [ clone ]))
    | Split_task ->
        if n >= max_tasks then None
        else begin
          match List.filter (fun (t : Task.t) -> t.Task.demand >= 2) tasks with
          | [] -> None
          | splittable ->
              let j = pick prng splittable in
              let d1 = j.Task.demand / 2 in
              let d2 = j.Task.demand - d1 in
              let w1 =
                j.Task.weight *. float_of_int d1 /. float_of_int j.Task.demand
              in
              let mk d w =
                Task.make ~id:0 ~first_edge:j.Task.first_edge
                  ~last_edge:j.Task.last_edge ~demand:d
                  ~weight:(positive_weight w)
              in
              Some
                ( path,
                  replace tasks j (fun t ->
                      [ mk d1 w1; mk d2 (t.Task.weight -. w1) ]) )
        end
    | Jitter_weight ->
        let j = pick prng tasks in
        let w = positive_weight (j.Task.weight *. jitter_factor prng) in
        Some
          ( path,
            replace tasks j (fun t ->
                [
                  Task.make ~id:t.Task.id ~first_edge:t.Task.first_edge
                    ~last_edge:t.Task.last_edge ~demand:t.Task.demand ~weight:w;
                ]) )
    | Shift_span ->
        let j = pick prng tasks in
        let m = Path.num_edges path in
        let first, last = (j.Task.first_edge, j.Task.last_edge) in
        let moves =
          List.filter
            (fun (f, l) -> 0 <= f && f <= l && l < m)
            [
              (first - 1, last - 1); (* translate left *)
              (first + 1, last + 1); (* translate right *)
              (first - 1, last); (* grow left *)
              (first, last + 1); (* grow right *)
              (first + 1, last); (* shrink left *)
              (first, last - 1); (* shrink right *)
            ]
        in
        if moves = [] then None
        else
          let f, l = List.nth moves (Prng.int prng (List.length moves)) in
          let b = Path.bottleneck path ~first:f ~last:l in
          let d = clamp 1 b j.Task.demand in
          Some
            ( path,
              replace tasks j (fun t ->
                  [
                    Task.make ~id:t.Task.id ~first_edge:f ~last_edge:l ~demand:d
                      ~weight:t.Task.weight;
                  ]) )
    | Drop_task ->
        if n < 2 then None
        else
          let j = pick prng tasks in
          Some (path, replace tasks j (fun _ -> []))

(* ---------- ring instances ---------- *)

let route_min caps edges =
  List.fold_left (fun acc e -> min acc caps.(e)) max_int edges

(* The best bottleneck over the task's two routes: the task is
   schedulable iff [d <= best]. *)
let best_bottleneck caps (t : Ring.task) =
  let m = Array.length caps in
  let cw = route_min caps (Ring.edges_of_route ~m ~src:t.Ring.src ~dst:t.Ring.dst Ring.Cw) in
  let ccw = route_min caps (Ring.edges_of_route ~m ~src:t.Ring.src ~dst:t.Ring.dst Ring.Ccw) in
  max cw ccw

let ring_task ~m ~id (t : Ring.task) ?(src = -1) ?(dst = -1) ?(demand = -1)
    ?(weight = -1.0) () =
  Ring.make_task ~id
    ~src:(if src >= 0 then src else t.Ring.src)
    ~dst:(if dst >= 0 then dst else t.Ring.dst)
    ~demand:(if demand >= 0 then demand else t.Ring.demand)
    ~weight:(if weight >= 0.0 then weight else t.Ring.weight)
    ~t_edges:m

let mutate_ring ~prng ?(max_tasks = 16) op (r : Ring.t) =
  let m = Ring.num_edges r in
  let caps = Array.copy r.Ring.capacities in
  let tasks = Array.to_list r.Ring.tasks in
  let n = List.length tasks in
  if n = 0 then None
  else
    let pick_ring () = List.nth tasks (Prng.int prng n) in
    let rebuild ?(caps = caps) tasks = Some (Ring.create caps tasks) in
    let replace_ring (target : Ring.task) f =
      List.concat_map
        (fun (t : Ring.task) -> if t.Ring.id = target.Ring.id then f t else [ t ])
        tasks
    in
    match op with
    | Nudge_demand ->
        let j = pick_ring () in
        let best = best_bottleneck caps j in
        let cand =
          match Prng.int prng 3 with
          | 0 -> best (* tight against the better route *)
          | 1 -> max 1 (best / 2) (* the through-knapsack half regime *)
          | _ -> j.Ring.demand + (if Prng.bool prng then 1 else -1)
        in
        let d = clamp 1 best cand in
        if d = j.Ring.demand then None
        else
          rebuild (replace_ring j (fun t -> [ ring_task ~m ~id:0 t ~demand:d () ]))
    | Tighten_bottleneck ->
        let e = Prng.int prng m in
        if caps.(e) <= 1 then None
        else begin
          caps.(e) <- caps.(e) - 1;
          (* Every task must stay routable at least one way. *)
          if List.for_all (fun t -> t.Ring.demand <= best_bottleneck caps t) tasks
          then rebuild ~caps tasks
          else None
        end
    | Duplicate_task ->
        if n >= max_tasks then None
        else
          let j = pick_ring () in
          let w = positive_weight (j.Ring.weight *. jitter_factor prng) in
          rebuild (tasks @ [ ring_task ~m ~id:n j ~weight:w () ])
    | Split_task ->
        if n >= max_tasks then None
        else begin
          match List.filter (fun t -> t.Ring.demand >= 2) tasks with
          | [] -> None
          | splittable ->
              let j = List.nth splittable (Prng.int prng (List.length splittable)) in
              let d1 = j.Ring.demand / 2 in
              let w1 =
                j.Ring.weight *. float_of_int d1 /. float_of_int j.Ring.demand
              in
              rebuild
                (replace_ring j (fun t ->
                     [
                       ring_task ~m ~id:0 t ~demand:d1
                         ~weight:(positive_weight w1) ();
                       ring_task ~m ~id:0 t
                         ~demand:(t.Ring.demand - d1)
                         ~weight:(positive_weight (t.Ring.weight -. w1))
                         ();
                     ]))
        end
    | Jitter_weight ->
        let j = pick_ring () in
        let w = positive_weight (j.Ring.weight *. jitter_factor prng) in
        rebuild (replace_ring j (fun t -> [ ring_task ~m ~id:0 t ~weight:w () ]))
    | Shift_span ->
        let j = pick_ring () in
        let move_src = Prng.bool prng in
        let step = if Prng.bool prng then 1 else m - 1 in
        let src = if move_src then (j.Ring.src + step) mod m else j.Ring.src in
        let dst = if move_src then j.Ring.dst else (j.Ring.dst + step) mod m in
        if src = dst then None
        else
          let moved = ring_task ~m ~id:0 j ~src ~dst () in
          let best = best_bottleneck caps moved in
          let d = clamp 1 best j.Ring.demand in
          rebuild (replace_ring j (fun _ -> [ ring_task ~m ~id:0 moved ~demand:d () ]))
    | Drop_task ->
        if n < 2 then None
        else
          let j = pick_ring () in
          rebuild (replace_ring j (fun _ -> []))
