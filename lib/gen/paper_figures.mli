(** The paper's hand-built example instances (all integer-scaled).

    Fig. 1 shows task sets that are UFPP-feasible but admit no SAP height
    assignment; Fig. 8 shows a 1/2-large SAP solution whose rectangle graph
    is a 5-cycle (witnessing tightness of Lemma 17 for k = 2).  Every
    construction here is verified by the exact oracle in the tests: the
    claims are machine-checked, not transcribed. *)

val fig1a : Core.Path.t * Core.Task.t list
(** Capacities (1, 2, 1) — the paper's (0.5, 1, 0.5) scaled by 2 — and two
    unit-demand tasks [\[0,1\]] and [\[1,2\]].  Loads fit everywhere, but at
    the shared edge both tasks are pinned to height 0 by their outer
    bottlenecks: UFPP-feasible, SAP-infeasible. *)

val fig1b : seed:int -> Core.Path.t * Core.Task.t list
(** The uniform-capacity gap phenomenon of Fig. 1(b) (due to Chen et al.
    [18]).  The paper does not give machine-readable coordinates for the
    figure, so we *search*: deterministic sampling (from [seed]) of
    UFPP-feasible task sets with uniform capacity 4 and demands in
    [{1, 2, 3}] until the exact oracle certifies SAP-infeasibility.
    Returns the first witness (same phenomenon, searched geometry). *)

val fig2_uniform : Core.Path.t * Core.Task.t list
(** Fig. 2(a): delta-small tasks under uniform capacities. *)

val fig2_valley : Core.Path.t * Core.Task.t list
(** Fig. 2(b): delta-small tasks under a valley profile. *)

val is_c5 : Rects.Rect.t list -> bool
(** Is the intersection graph of exactly five rectangles a chordless
    5-cycle? *)

val fig8 : (Core.Path.t * Core.Solution.sap) lazy_t
(** Five 1/2-large tasks with a feasible height assignment whose rectangles
    [R(j)] form a chordless 5-cycle — the Lemma 17 tightness witness for
    [k = 2].  Explicit construction (the paper's figure coordinates are not
    machine-readable; this instance realises the same structure); the tests
    assert feasibility, the cycle structure, and that the greedy coloring
    needs 3 = 2k-1 colors. *)
