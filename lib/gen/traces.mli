(** Scenario workloads for the examples: SAP instances derived from
    simulated application traces rather than abstract ratio bands.

    The paper motivates SAP with (i) memory allocation — objects needing a
    contiguous address range for a time interval — and (ii) contiguous
    bandwidth/frequency allocation.  These generators produce exactly those
    shapes. *)

val memory_trace :
  prng:Util.Prng.t ->
  time_slots:int ->
  memory:int ->
  n:int ->
  max_lifetime:int ->
  max_object:int ->
  Core.Path.t * Core.Task.t list
(** Objects arrive at a uniform time slot, live for a uniform lifetime
    (clamped to the horizon), and request a uniform size in
    [\[1, max_object\]]; the path is the time axis with uniform capacity
    [memory]; weight = size * lifetime (bytes-seconds saved by admitting
    the object). *)

val spectrum_trace :
  prng:Util.Prng.t ->
  links:int ->
  n:int ->
  Core.Path.t * Core.Task.t list
(** A backhaul path whose per-link spectrum shrinks toward the middle
    (valley profile, 64 down to 16 channels); [n] connection requests with
    geometric-ish channel demands and revenue-per-channel weights. *)
