(** Mutation-ready instance perturbations for the adversarial hunt.

    Each operator makes one small, structurally targeted change to an
    instance and returns [None] when it does not apply (no task to split,
    capacity already tight, task cap reached).  All operators preserve the
    invariants the rest of the toolchain assumes:

    - every task keeps [1 <= d_j <= b(j)] (individually schedulable),
      in-range edges and a strictly positive weight;
    - capacities stay positive; lowering an edge never strands a task
      whose interval crosses it;
    - task ids are renumbered [0 .. n-1] after structural changes, so
      {!Core.Checker} duplicate-id checks always pass;
    - ring tasks keep distinct terminals (the wrap rules of
      {!Core.Ring.make_task}).

    The demand nudges are aimed at the paper's classification seams: a
    nudged task lands just below / exactly at / just above a threshold
    fraction of its bottleneck ([delta * b(j)] or [(1 - 2 beta) * b(j)]
    in the Theorem 4 configuration), the boundaries where the analysis
    switches algorithms.  Determinism: all randomness flows through the
    caller's {!Util.Prng.t}. *)

type op =
  | Nudge_demand  (** re-pin a demand around a threshold fraction of [b(j)] *)
  | Tighten_bottleneck  (** lower one capacity on some task's interval *)
  | Duplicate_task  (** clone a task (weight jittered) — feeds the symmetry cut *)
  | Split_task  (** replace a task by two halves of its demand and weight *)
  | Jitter_weight  (** scale one weight by a factor in [0.5, 2) *)
  | Shift_span  (** translate or resize a task's interval by one edge *)
  | Drop_task  (** remove one task (never the last) *)

val all_ops : op list
(** Every operator, in declaration order. *)

val op_name : op -> string
(** Kebab-case name, e.g. ["nudge-demand"] — the report vocabulary. *)

val mutate_path :
  prng:Util.Prng.t ->
  ?max_tasks:int ->
  ?thresholds:float list ->
  op ->
  Core.Path.t ->
  Core.Task.t list ->
  (Core.Path.t * Core.Task.t list) option
(** Apply [op] once to a path instance.  [max_tasks] (default 16) caps
    growth from duplicate/split; [thresholds] (default
    [[delta; 1 - 2 beta]] from {!Sap.Combine.default_config}… supplied by
    the caller, default [[0.25; 0.5]]) are the boundary fractions
    [Nudge_demand] targets.  [None] when the operator cannot apply. *)

val mutate_ring :
  prng:Util.Prng.t ->
  ?max_tasks:int ->
  op ->
  Core.Ring.t ->
  Core.Ring.t option
(** Ring analogue.  [Nudge_demand] moves a demand toward the smaller of
    the task's two route bottlenecks, [Shift_span] moves one terminal
    around the cycle (keeping [src <> dst]), [Tighten_bottleneck] keeps
    every task routable at least one way. *)
