(** The task → rectangle reduction of Section 6.

    A task [j] with bottleneck [b(j)] and residual [l(j) = b(j) - d_j] is
    associated with the rectangle [R(j) = I_j x [l(j), b(j))]: the position
    [j] occupies when drawn at its highest feasible height.  Horizontal
    extent is the inclusive edge range; vertical extent is half-open, so two
    rectangles intersect iff their edge ranges share an edge and their
    vertical ranges overlap. *)

type t = private {
  task : Core.Task.t;
  y_low : int;   (** the residual capacity [l(j)] *)
  y_high : int;  (** the bottleneck [b(j)] *)
}

val of_task : Core.Path.t -> Core.Task.t -> t

val of_tasks : Core.Path.t -> Core.Task.t list -> t list

val intersects : t -> t -> bool

val to_sap_placement : t -> Core.Task.t * int
(** The SAP placement a chosen rectangle induces: height [l(j)].  A
    pairwise non-intersecting rectangle family yields a feasible SAP
    solution this way (tops are below every capacity by definition of
    [b(j)]; vertical disjointness on shared edges is rectangle
    disjointness). *)

val pp : Format.formatter -> t -> unit
