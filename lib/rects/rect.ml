module Task = Core.Task
module Path = Core.Path

type t = {
  task : Task.t;
  y_low : int;
  y_high : int;
}

let of_task path (j : Task.t) =
  let b = Path.bottleneck_of path j in
  if j.Task.demand > b then
    invalid_arg "Rect.of_task: task does not fit its bottleneck";
  { task = j; y_low = b - j.Task.demand; y_high = b }

let of_tasks path ts = List.map (of_task path) ts

let intersects a b =
  Task.overlaps a.task b.task && a.y_low < b.y_high && b.y_low < a.y_high

let to_sap_placement r = (r.task, r.y_low)

let pp ppf r =
  Format.fprintf ppf "R(%a) y=[%d,%d)" Task.pp r.task r.y_low r.y_high
