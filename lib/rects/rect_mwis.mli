(** Exact maximum-weight independent set of rectangles.

    Stands in for the O(n^4) dynamic program of Bonsma et al. (Theorem 7 of
    the paper); see DESIGN.md §3.3 for the substitution rationale.  The
    solver is a branch-and-bound over the intersection graph:

    - incumbent initialised with the x-disjoint interval-DP solution and a
      greedy weight-descending independent set;
    - branching on the heaviest remaining candidate, include-first;
    - upper bound from a greedy clique cover (rectangles pairwise
      intersecting can contribute at most their maximum weight each), which
      is tight on the dense graphs [1/k]-large families produce.

    Exactness is validated against {!brute_force} in the property tests. *)

val solve : Rect.t list -> Rect.t list
(** An exact maximum-weight pairwise non-intersecting subfamily. *)

val brute_force : Rect.t list -> Rect.t list
(** 2^n reference implementation (n <= 20 guarded by [Invalid_argument]). *)

val weight : Rect.t list -> float
