let m_solves = Obs.Metrics.counter "rect_mwis.solves"

let m_branch_nodes = Obs.Metrics.counter "rect_mwis.branch_nodes"

let weight rs =
  List.fold_left (fun acc (r : Rect.t) -> acc +. r.Rect.task.Core.Task.weight) 0.0 rs

let rect_weight (r : Rect.t) = r.Rect.task.Core.Task.weight

let brute_force rs =
  let a = Array.of_list rs in
  let n = Array.length a in
  if n > 20 then invalid_arg "Rect_mwis.brute_force: too many rectangles";
  (* DFS over an adjacency bitmask: candidates still allowed are a bit set. *)
  let adj = Array.make n 0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && Rect.intersects a.(i) a.(j) then adj.(i) <- adj.(i) lor (1 lsl j)
    done
  done;
  let best_w = ref 0.0 in
  let best = ref 0 in
  let rec go i chosen w cands =
    if i = n then begin
      if w > !best_w then begin
        best_w := w;
        best := chosen
      end
    end
    else begin
      if cands land (1 lsl i) <> 0 then
        go (i + 1) (chosen lor (1 lsl i)) (w +. rect_weight a.(i)) (cands land lnot adj.(i));
      go (i + 1) chosen w cands
    end
  in
  go 0 0 0.0 ((1 lsl n) - 1);
  List.filteri (fun i _ -> !best land (1 lsl i) <> 0) (Array.to_list a |> List.mapi (fun i r -> (i, r)))
  |> List.map snd

let solve rs =
  let a = Array.of_list rs in
  let n = Array.length a in
  if n = 0 then []
  else begin
    (* Sort heaviest-first: branching explores strong incumbents early and
       the clique cover groups heavy mutually-conflicting rectangles. *)
    Array.sort (fun r1 r2 -> Float.compare (rect_weight r2) (rect_weight r1)) a;
    let adj = Array.make_matrix n n false in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if Rect.intersects a.(i) a.(j) then begin
          adj.(i).(j) <- true;
          adj.(j).(i) <- true
        end
      done
    done;
    (* Greedy clique cover: clique_of.(v) is v's clique id. *)
    let clique_of = Array.make n (-1) in
    let cliques = ref [] in
    let n_cliques = ref 0 in
    for v = 0 to n - 1 do
      let rec try_cliques = function
        | [] ->
            clique_of.(v) <- !n_cliques;
            cliques := (!n_cliques, ref [ v ]) :: !cliques;
            incr n_cliques
        | (id, members) :: rest ->
            if List.for_all (fun u -> adj.(v).(u)) !members then begin
              clique_of.(v) <- id;
              members := v :: !members
            end
            else try_cliques rest
      in
      try_cliques !cliques
    done;
    (* Upper bound: each clique contributes at most the heaviest candidate
       it still contains.  Stamped scratch avoids reallocation. *)
    let clique_max = Array.make !n_cliques 0.0 in
    let clique_stamp = Array.make !n_cliques (-1) in
    let stamp = ref 0 in
    let bound cands =
      incr stamp;
      let s = !stamp in
      let total = ref 0.0 in
      List.iter
        (fun v ->
          let q = clique_of.(v) in
          let w = rect_weight a.(v) in
          if clique_stamp.(q) <> s then begin
            clique_stamp.(q) <- s;
            clique_max.(q) <- w;
            total := !total +. w
          end
          else if w > clique_max.(q) then begin
            total := !total +. w -. clique_max.(q);
            clique_max.(q) <- w
          end)
        cands;
      !total
    in
    (* Incumbent: greedy independent set, heaviest-first. *)
    let best = ref [] in
    let best_w = ref 0.0 in
    let greedy =
      let chosen = ref [] in
      for v = 0 to n - 1 do
        if List.for_all (fun u -> not adj.(v).(u)) !chosen then chosen := v :: !chosen
      done;
      !chosen
    in
    best := greedy;
    best_w := List.fold_left (fun acc v -> acc +. rect_weight a.(v)) 0.0 greedy;
    Obs.Metrics.incr m_solves;
    let rec branch cands chosen w =
      Obs.Metrics.incr m_branch_nodes;
      if w > !best_w then begin
        best_w := w;
        best := chosen
      end;
      match cands with
      | [] -> ()
      | v :: rest ->
          if w +. bound cands > !best_w +. 1e-12 then begin
            (* include v *)
            let rest_compatible = List.filter (fun u -> not adj.(v).(u)) rest in
            branch rest_compatible (v :: chosen) (w +. rect_weight a.(v));
            (* exclude v *)
            branch rest chosen w
          end
    in
    branch (List.init n Fun.id) [] 0.0;
    List.map (fun v -> a.(v)) !best
  end
