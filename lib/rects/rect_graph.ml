type t = {
  rects : Rect.t array;
  adj : int list array;
  adj_set : (int * int, unit) Hashtbl.t;
}

let build rs =
  let rects = Array.of_list rs in
  let n = Array.length rects in
  let adj = Array.make n [] in
  let adj_set = Hashtbl.create (4 * n) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rect.intersects rects.(i) rects.(j) then begin
        adj.(i) <- j :: adj.(i);
        adj.(j) <- i :: adj.(j);
        Hashtbl.replace adj_set (i, j) ();
        Hashtbl.replace adj_set (j, i) ()
      end
    done
  done;
  { rects; adj; adj_set }

let size g = Array.length g.rects

let rect g i = g.rects.(i)

let degree g i = List.length g.adj.(i)

let adjacent g i j = Hashtbl.mem g.adj_set (i, j)

let neighbors g i = g.adj.(i)

let degeneracy_order g =
  let n = size g in
  let deg = Array.init n (degree g) in
  let removed = Array.make n false in
  let order = ref [] in
  let degeneracy = ref 0 in
  (* O(n^2) smallest-last peeling; ample for the sizes the large-task
     pipeline sees (cliques bound independent sets, so inputs stay small). *)
  for _ = 1 to n do
    let best = ref (-1) in
    for v = 0 to n - 1 do
      if (not removed.(v)) && (!best < 0 || deg.(v) < deg.(!best)) then best := v
    done;
    let v = !best in
    degeneracy := max !degeneracy deg.(v);
    removed.(v) <- true;
    order := v :: !order;
    List.iter (fun u -> if not removed.(u) then deg.(u) <- deg.(u) - 1) g.adj.(v)
  done;
  (List.rev !order, !degeneracy)

let h_colors = Obs.Metrics.histogram "rect_graph.colors"

let greedy_color g =
  let n = size g in
  let order, degeneracy = degeneracy_order g in
  let colors = Array.make n (-1) in
  let used = ref 0 in
  (* Reverse elimination order: each vertex sees at most [degeneracy]
     already-colored neighbors. *)
  List.iter
    (fun v ->
      let taken = Array.make (degeneracy + 2) false in
      List.iter
        (fun u -> if colors.(u) >= 0 && colors.(u) <= degeneracy + 1 then taken.(colors.(u)) <- true)
        g.adj.(v);
      let rec first c = if taken.(c) then first (c + 1) else c in
      let c = first 0 in
      colors.(v) <- c;
      used := max !used (c + 1))
    (List.rev order);
  Obs.Metrics.observe h_colors (float_of_int !used);
  (colors, !used)

let color_classes g =
  let colors, used = greedy_color g in
  let classes = Array.make used [] in
  Array.iteri (fun v c -> classes.(c) <- g.rects.(v) :: classes.(c)) colors;
  let weight rs =
    List.fold_left (fun acc (r : Rect.t) -> acc +. r.Rect.task.Core.Task.weight) 0.0 rs
  in
  Array.to_list classes
  |> List.sort (fun a b -> Float.compare (weight b) (weight a))
