(** Intersection graph of a rectangle family, degeneracy machinery and the
    smallest-last greedy coloring of Matula–Beck [27].

    Lemma 17 of the paper: for a [1/k]-large SAP solution the graph is
    [(2k-2)]-degenerate, so the smallest-last order colors it with at most
    [2k-1] colors; one color class carries a [1/(2k-1)] weight fraction. *)

type t

val build : Rect.t list -> t

val size : t -> int

val rect : t -> int -> Rect.t

val degree : t -> int -> int

val adjacent : t -> int -> int -> bool

val neighbors : t -> int -> int list

val degeneracy_order : t -> int list * int
(** [(order, degeneracy)]: the smallest-last elimination order (first
    element eliminated first) and the graph degeneracy = max degree at
    elimination time. *)

val greedy_color : t -> int array * int
(** Colors vertices in *reverse* degeneracy order with the smallest free
    color; returns [(colors, colors_used)].  Uses at most
    [degeneracy + 1] colors. *)

val color_classes : t -> Rect.t list list
(** The color classes of {!greedy_color}, each a pairwise non-intersecting
    rectangle family, heaviest class first. *)
