(* Offline memory allocation — the paper's first motivating scenario.

   Objects request a contiguous address range for a time interval; the
   machine has a fixed memory size.  The path is the time axis (one edge
   per slot), demand = object size, weight = bytes-seconds of value.  We
   admit a maximum-value subset with the Theorem 4 algorithm and compare
   against first fit (admit greedily, classic allocator behaviour), the
   SAP-U baseline of Bar-Noy et al., and the LP upper bound.

   Run with:  dune exec examples/memory_allocation.exe *)

module Task = Core.Task

let () =
  let prng = Util.Prng.create 2024 in
  let path, objects =
    Gen.Traces.memory_trace ~prng ~time_slots:48 ~memory:96 ~n:120 ~max_lifetime:10
      ~max_object:24
  in
  Printf.printf "memory: 96 units, horizon: 48 slots, %d allocation requests\n"
    (List.length objects);
  Printf.printf "total requested value: %.0f bytes-seconds\n\n"
    (Task.weight_of objects);

  let lp = Lp.Ufpp_lp.upper_bound path objects in

  let evaluate name solution =
    (match Core.Checker.sap_feasible path solution with
    | Ok () -> ()
    | Error m -> failwith (name ^ ": " ^ m));
    let w = Core.Solution.sap_weight solution in
    Printf.printf "%-22s admitted %3d   value %8.0f   (>= %.0f%% of LP bound)\n" name
      (List.length solution) w
      (100.0 *. w /. lp)
  in

  let report = Sap.Combine.solve_report path objects in
  evaluate "combine (Thm 4)" report.Sap.Combine.solution;
  Printf.printf "  parts: small %.0f / medium %.0f / large %.0f, winner: %s\n"
    (Core.Solution.sap_weight report.Sap.Combine.small_solution)
    (Core.Solution.sap_weight report.Sap.Combine.medium_solution)
    (Core.Solution.sap_weight report.Sap.Combine.large_solution)
    (Format.asprintf "%a" Sap.Combine.pp_part report.Sap.Combine.chosen);

  evaluate "sap-u baseline [5]" (Sap.Sap_u.solve path objects);
  evaluate "first fit" (fst (Dsa.First_fit.pack path objects));
  Printf.printf "%-22s %36.0f\n" "LP upper bound" lp;

  (* The conclusion's extension: how much bigger would the memory need to
     be to admit *every* request contiguously? *)
  let r = Dsa.Rho_packing.solve path objects in
  Printf.printf
    "\nto admit ALL requests: memory x %.2f suffices (load lower bound x %.2f)\n"
    r.Dsa.Rho_packing.rho r.Dsa.Rho_packing.lower_bound
