(* Banner advertising — the paper's third motivating scenario: a banner of
   fixed pixel height; each advertisement wants a contiguous horizontal
   stripe of the banner for a contiguous range of time slots, and pays for
   the area it occupies.  The placement may not move vertically mid-flight
   (that is exactly the SAP constraint).

   Run with:  dune exec examples/banner_ads.exe *)

module Task = Core.Task
module Path = Core.Path

let () =
  let banner_height = 90 (* a "90-pixel" leaderboard, scaled *) in
  let day_slots = 24 in
  let prng = Util.Prng.create 777 in
  let path = Path.uniform ~edges:day_slots ~capacity:banner_height in
  let ad id =
    let start = Util.Prng.int prng day_slots in
    let len = Util.Prng.int_in prng 2 8 in
    let last = min (day_slots - 1) (start + len - 1) in
    let height = Util.Prng.choose prng [| 10; 15; 30; 45; 60 |] in
    (* Price: cost-per-slot proportional to area, premium for tall ads. *)
    let rate = 1.0 +. (float_of_int height /. 30.0) in
    let weight = rate *. float_of_int (height * (last - start + 1)) in
    Task.make ~id ~first_edge:start ~last_edge:last ~demand:height ~weight
  in
  let ads = List.init 70 ad in
  Printf.printf "banner height %d, %d slots, %d ad requests, revenue on offer %.0f\n\n"
    banner_height day_slots (List.length ads) (Task.weight_of ads);

  let placement = Sap.Combine.solve path ads in
  (match Core.Checker.sap_feasible path placement with
  | Ok () -> ()
  | Error m -> failwith m);
  let sap_u = Sap.Sap_u.solve path ads in
  let ff = fst (Dsa.First_fit.pack path ads) in
  let lp = Lp.Ufpp_lp.upper_bound path ads in
  Util.Table.print
    ~header:[ "scheduler"; "ads shown"; "revenue"; "% of LP bound" ]
    (List.map
       (fun (name, sol) ->
         [
           name;
           string_of_int (List.length sol);
           Util.Table.float_cell ~digits:0 (Core.Solution.sap_weight sol);
           Util.Table.float_cell ~digits:1
             (100.0 *. Core.Solution.sap_weight sol /. lp);
         ])
       [ ("combine (Thm 4)", placement); ("sap-u scheme [5]", sap_u); ("first fit", ff) ]);
  Printf.printf "\nLP revenue bound: %.0f\n\n" lp;

  (* The banner across the day, one letter per ad. *)
  print_string (Viz.Ascii.render_solution ~max_height:banner_height path placement)
