(* Quickstart: build an instance, run the (9+eps)-approximation, inspect
   the result.  Run with:  dune exec examples/quickstart.exe *)

module Task = Core.Task
module Path = Core.Path

let () =
  (* A path with five edges; capacities dip in the middle. *)
  let path = Path.create [| 10; 8; 4; 8; 10 |] in

  (* Five tasks: (first_edge, last_edge, demand, weight). *)
  let task id (first_edge, last_edge, demand, weight) =
    Task.make ~id ~first_edge ~last_edge ~demand ~weight
  in
  let tasks =
    List.mapi task
      [
        (0, 4, 2, 5.0);   (* long thin task crossing the bottleneck *)
        (0, 1, 6, 7.0);   (* fat task left of the dip *)
        (3, 4, 6, 7.0);   (* fat task right of the dip *)
        (1, 3, 2, 4.0);   (* crosses the dip *)
        (2, 2, 3, 3.0);   (* sits exactly on the bottleneck edge *)
      ]
  in

  (* Solve with the paper's combined algorithm (Theorem 4). *)
  let solution = Sap.Combine.solve path tasks in

  (* Every output is machine-checkable. *)
  (match Core.Checker.sap_feasible path solution with
  | Ok () -> print_endline "solution verified feasible"
  | Error msg -> failwith msg);

  Printf.printf "scheduled %d of %d tasks, weight %.1f of %.1f\n"
    (List.length solution) (List.length tasks)
    (Core.Solution.sap_weight solution)
    (Task.weight_of tasks);

  (* An upper bound on any solution's weight, via the UFPP LP. *)
  Printf.printf "LP upper bound: %.1f\n" (Lp.Ufpp_lp.upper_bound path tasks);

  (* Heights are explicit: print and draw the storage layout. *)
  List.iter
    (fun ((j : Task.t), h) ->
      Printf.printf "  task %d at heights [%d, %d)\n" j.Task.id h (h + j.Task.demand))
    (Core.Solution.sort_by_id solution);
  print_newline ();
  print_string (Viz.Ascii.render_solution path solution)
