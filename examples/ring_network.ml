(* SAP on a ring network (Sect. 7 / Theorem 5): a SONET-like ring where
   each circuit may be routed clockwise or counter-clockwise and must hold
   the same contiguous slice of capacity on every link of its route.

   Run with:  dune exec examples/ring_network.exe *)

module Ring = Core.Ring

let () =
  let prng = Util.Prng.create 99 in
  let ring =
    Gen.Ring_gen.random ~prng ~edges:12 ~n:40 ~cap_lo:24 ~cap_hi:48 ~ratio_lo:0.0
      ~ratio_hi:0.7
  in
  Printf.printf "ring: 12 links, capacities 24..48, %d circuit requests\n\n"
    (Array.length ring.Ring.tasks);

  let report = Sap.Ring_algo.solve_report ring in
  let sol = report.Sap.Ring_algo.solution in
  (match Ring.feasible ring sol with
  | Ok () -> print_endline "solution verified feasible on the ring"
  | Error m -> failwith m);

  Printf.printf "cut edge: %d (capacity %d, the ring minimum)\n"
    report.Sap.Ring_algo.cut_edge
    ring.Ring.capacities.(report.Sap.Ring_algo.cut_edge);
  Printf.printf "candidate A (cut ring, Thm 4 on the path): weight %.1f\n"
    report.Sap.Ring_algo.path_weight;
  Printf.printf "candidate B (knapsack through the cut):    weight %.1f\n"
    report.Sap.Ring_algo.through_weight;
  Printf.printf "returned: %.1f (of %.1f requested)\n\n"
    (Ring.solution_weight sol)
    (Array.fold_left (fun acc (t : Ring.task) -> acc +. t.Ring.weight) 0.0
       ring.Ring.tasks);

  let cw, ccw =
    List.partition (fun (_, _, dir) -> dir = Ring.Cw) sol
  in
  Printf.printf "routing: %d clockwise, %d counter-clockwise\n" (List.length cw)
    (List.length ccw);
  List.iter
    (fun ((tk : Ring.task), h, dir) ->
      Printf.printf "  circuit %2d  %2d->%2d  %s  slice [%d,%d)\n" tk.Ring.id
        tk.Ring.src tk.Ring.dst
        (match dir with Ring.Cw -> " cw" | Ring.Ccw -> "ccw")
        h (h + tk.Ring.demand))
    (List.sort (fun ((a : Ring.task), _, _) (b, _, _) -> compare a.Ring.id b.Ring.id) sol)
