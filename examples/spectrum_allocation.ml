(* Contiguous spectrum allocation on a backhaul path — the paper's second
   motivating scenario: a connection must receive the *same contiguous*
   set of frequency channels on every link it crosses.

   The per-link channel count shrinks toward the middle of the path
   (valley profile), so bottlenecks differ per connection — exactly the
   regime where the bottleneck-band machinery (Strip-Pack, AlmostUniform)
   earns its keep over naive heuristics.

   Run with:  dune exec examples/spectrum_allocation.exe *)

module Task = Core.Task
module Path = Core.Path

let () =
  let prng = Util.Prng.create 7 in
  let path, requests = Gen.Traces.spectrum_trace ~prng ~links:16 ~n:90 in
  Printf.printf "backhaul: 16 links, 64..16 channels, %d connection requests\n\n"
    (List.length requests);

  (* Where do the requests fall in the paper's classification? *)
  Format.printf "%a@\n@\n" Core.Instance_stats.pp
    (Core.Instance_stats.compute path requests);
  let split = Core.Classify.split3 path ~delta:0.25 ~large_frac:0.5 requests in

  let lp = Lp.Ufpp_lp.upper_bound path requests in
  let row name sol =
    (match Core.Checker.sap_feasible path sol with
    | Ok () -> ()
    | Error m -> failwith (name ^ ": " ^ m));
    [
      name;
      string_of_int (List.length sol);
      Util.Table.float_cell ~digits:0 (Core.Solution.sap_weight sol);
      Util.Table.float_cell (lp /. Float.max 1e-9 (Core.Solution.sap_weight sol));
    ]
  in
  let combine = Sap.Combine.solve path requests in
  let strip_only =
    Sap.Small.strip_pack ~rounding:(`Lp 16) ~prng:(Util.Prng.create 1) path
      split.Core.Classify.small
  in
  let large_only = Sap.Large.solve path split.Core.Classify.large in
  let first_fit = fst (Dsa.First_fit.pack path requests) in
  Util.Table.print
    ~header:[ "algorithm"; "admitted"; "revenue"; "LP-bound ratio" ]
    [
      row "combine (Thm 4)" combine;
      row "strip-pack on small" strip_only;
      row "rect MWIS on large" large_only;
      row "first fit (baseline)" first_fit;
    ];
  Printf.printf "\nLP upper bound on any allocation: %.0f\n\n" lp;

  (* Show the channel assignment around the narrowest links, and write the
     publication-quality rendering next to it. *)
  print_string (Viz.Ascii.render_solution ~max_height:64 path combine);
  let svg_file = Filename.temp_file "spectrum_allocation" ".svg" in
  Sap_io.Instance_io.write_file svg_file
    (Viz.Svg.solution_svg ~title:"spectrum allocation" path combine);
  Printf.printf "\nSVG rendering written to %s\n" svg_file
