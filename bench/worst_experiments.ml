(* WORST — adversarial probe: how bad does the combined algorithm actually
   get?  Theorem 4 guarantees ~9-10x; random search over many tiny
   instances reports the worst observed ratio and prints the witness.  A
   large gap between the worst observation and the bound is the expected
   signature of a loose worst-case constant. *)

module Task = Core.Task
module Path = Core.Path

let run () =
  Bench_util.section
    "WORST  adversarial probe: worst observed Combine ratio vs exact OPT";
  let measure seed =
    let path, tasks =
      let g = Util.Prng.create seed in
      let path = Helpers_path.medium_path g in
      (path, Gen.Workloads.mixed_tasks ~prng:g ~path ~n:8 ())
    in
    let opt = Exact.Sap_brute.value path tasks in
    if opt <= 1e-9 then None
    else begin
      let w = Core.Solution.sap_weight (Sap.Combine.solve path tasks) in
      if w <= 1e-9 then None else Some (opt /. w, seed, path, tasks)
    end
  in
  let results =
    Util.Parallel.map measure (Bench_util.seeds ~base:5000 ~count:400)
    |> List.filter_map Fun.id
    |> List.sort (fun (a, _, _, _) (b, _, _, _) -> Float.compare b a)
  in
  let top = List.filteri (fun i _ -> i < 5) results in
  Util.Table.print
    ~header:[ "rank"; "seed"; "ratio"; "edges"; "tasks" ]
    (List.mapi
       (fun i (ratio, seed, path, tasks) ->
         [
           string_of_int (i + 1);
           string_of_int seed;
           Util.Table.float_cell ratio;
           string_of_int (Path.num_edges path);
           string_of_int (List.length tasks);
         ])
       top);
  (match top with
  | (ratio, _, path, tasks) :: _ ->
      Printf.printf
        "\n  worst witness (ratio %.3f, bound ~10 at default parameters):\n"
        ratio;
      Printf.printf "  capacities: %s\n"
        (String.concat " "
           (Array.to_list (Path.capacities path) |> List.map string_of_int));
      List.iter (fun t -> Format.printf "    %a@." Task.pp t) tasks
  | [] -> ());
  Printf.printf
    "  (%d instances probed; every observation is far inside the proven bound)\n"
    (List.length results)
