(* Shared plumbing for the experiment harness: ratio measurement loops,
   reference bounds, table shorthands. *)

module Task = Core.Task
module Path = Core.Path

let section title =
  Printf.printf "\n==============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "==============================================================\n%!"

let subsection title = Printf.printf "\n--- %s ---\n%!" title

(* The reference value an algorithm is compared against.  [Exact] is the
   brute-force SAP optimum (tiny instances only); [Lp] is the UFPP LP
   optimum, a true upper bound on OPT_SAP at any size (so LP ratios
   overstate the real approximation ratio — stated in every table). *)
type reference = Exact_opt | Lp_bound | Dp_opt | Ufpp_exact

let reference_value ref_kind path tasks =
  match ref_kind with
  | Exact_opt -> Exact.Sap_brute.value path tasks
  | Lp_bound -> Lp.Ufpp_lp.upper_bound path tasks
  | Dp_opt ->
      (* Exact SAP via the Elevator DP (uncapped band): valid whenever the
         DP reports exactness, else fall back to the LP upper bound. *)
      let r = Sap.Elevator.optimal_band ~cap:(Core.Path.max_capacity path) path tasks in
      if r.Sap.Elevator.exact then Core.Solution.sap_weight r.Sap.Elevator.solution
      else Lp.Ufpp_lp.upper_bound path tasks
  | Ufpp_exact ->
      (* Exact UFPP optimum: a bound on OPT_SAP tighter than the LP. *)
      let r = Ufpp.Band_dp.solve path tasks in
      if r.Ufpp.Band_dp.exact then Core.Task.weight_of r.Ufpp.Band_dp.solution
      else Lp.Ufpp_lp.upper_bound path tasks

let ref_name = function
  | Exact_opt -> "exact OPT"
  | Lp_bound -> "LP bound"
  | Dp_opt -> "DP-exact OPT"
  | Ufpp_exact -> "exact UFPP"

(* Measure [algo] on [instances]; returns the list of (ratio, weight,
   reference) per instance, skipping trivial (zero-reference) draws.
   Instances are independent, so they fan out across domains. *)
let measure ?jobs ~ref_kind ~algo instances =
  Util.Parallel.map ?jobs
    (fun (path, tasks) ->
      let reference = reference_value ref_kind path tasks in
      if reference <= 1e-9 then None
      else begin
        let sol = algo path tasks in
        (match Core.Checker.sap_feasible path sol with
        | Ok () -> ()
        | Error m -> failwith ("bench: infeasible solution: " ^ m));
        let w = Core.Solution.sap_weight sol in
        let ratio = if w <= 1e-9 then Float.infinity else reference /. w in
        Some (ratio, w, reference)
      end)
    instances
  |> List.filter_map Fun.id

let ratio_row ~name ~bound measurements =
  let ratios = List.map (fun (r, _, _) -> r) measurements in
  match ratios with
  | [] -> [ name; "-"; "-"; "-"; "-"; bound ]
  | _ ->
      let s = Util.Stats.summarize ratios in
      [
        name;
        string_of_int s.Util.Stats.count;
        Util.Table.float_cell (Util.Stats.geometric_mean ratios);
        Util.Table.float_cell s.Util.Stats.median;
        Util.Table.float_cell s.Util.Stats.max;
        bound;
      ]

let ratio_header = [ "algorithm"; "n"; "geo-mean"; "median"; "worst"; "paper bound" ]

let timed f =
  let t0 = Unix.gettimeofday () in
  let y = f () in
  (y, Unix.gettimeofday () -. t0)

(* Deterministic instance batches. *)

let seeds ~base ~count = List.init count (fun i -> base + (7919 * i))

let batch ~count ~base make = List.map make (seeds ~base ~count)
