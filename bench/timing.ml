(* S1 — wall-clock micro-benchmarks (bechamel): one Test.make per
   algorithm, run over pre-generated instances of two sizes.  Estimates are
   OLS nanoseconds per run against the monotonic clock. *)

open Bechamel
open Bechamel.Toolkit

module Path = Core.Path

let instance_of ~n ~edges seed =
  let g = Util.Prng.create seed in
  let path = Gen.Profiles.valley ~edges ~high:64 ~low:16 in
  let tasks = Gen.Workloads.mixed_tasks ~prng:g ~path ~n () in
  (path, tasks)

let medium_instance_of ~n ~edges seed =
  let g = Util.Prng.create seed in
  let path = Gen.Profiles.valley ~edges ~high:64 ~low:16 in
  let tasks = Gen.Workloads.ratio_tasks ~prng:g ~path ~n ~lo:0.25 ~hi:0.5 () in
  (path, tasks)

let tests () =
  let small = instance_of ~n:30 ~edges:10 1 in
  let large = instance_of ~n:80 ~edges:20 2 in
  let medium_small = medium_instance_of ~n:30 ~edges:10 1 in
  let medium_large = medium_instance_of ~n:80 ~edges:20 2 in
  let mk ?(inputs = (small, large)) name f =
    let lo, hi = inputs in
    [
      Test.make ~name:(name ^ " (n=30,m=10)") (Staged.stage (fun () -> f lo));
      Test.make ~name:(name ^ " (n=80,m=20)") (Staged.stage (fun () -> f hi));
    ]
  in
  let mk_medium = mk ~inputs:(medium_small, medium_large) in
  let combine (path, ts) = ignore (Sap.Combine.solve path ts) in
  let strip (path, ts) =
    ignore
      (Sap.Small.strip_pack ~rounding:`Local_ratio ~prng:(Util.Prng.create 7) path ts)
  in
  let medium (path, ts) = ignore (Sap.Almost_uniform.run ~ell:2 ~q:2 path ts) in
  let large_solve (path, ts) = ignore (Sap.Large.solve path ts) in
  let lp (path, ts) = ignore (Lp.Ufpp_lp.solve path ts) in
  let first_fit (path, ts) = ignore (Dsa.First_fit.pack path ts) in
  Test.make_grouped ~name:"sap" ~fmt:"%s %s"
    (List.concat
       [
         mk "combine" combine;
         mk "strip-pack" strip;
         mk_medium "almost-uniform" medium;
         mk "rect-mwis" large_solve;
         mk "ufpp-lp" lp;
         mk "first-fit" first_fit;
       ])

let run () =
  Bench_util.section "S1  Runtime (bechamel, ns per run, OLS estimate)";
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] (tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name v ->
      let ns =
        match Analyze.OLS.estimates v with Some (x :: _) -> x | _ -> Float.nan
      in
      rows := (name, ns) :: !rows)
    results;
  let rows =
    List.sort (fun (a, _) (b, _) -> compare a b) !rows
    |> List.map (fun (name, ns) ->
           [
             name;
             (if Float.is_nan ns then "-" else Util.Table.float_cell ~digits:0 ns);
             (if Float.is_nan ns then "-"
              else Util.Table.float_cell ~digits:3 (ns /. 1e6));
           ])
  in
  Util.Table.print ~header:[ "benchmark"; "ns/run"; "ms/run" ] rows
