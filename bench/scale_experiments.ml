(* SCALE — wall-clock growth on larger instances (single-shot timing; the
   statistically careful micro-benchmarks are in Timing/S1).  Demonstrates
   that the polynomial pieces behave polynomially and records where the
   exact-DP pieces stop being practical. *)

module Path = Core.Path

let instance ~n ~edges seed =
  let g = Util.Prng.create seed in
  let path = Gen.Profiles.staircase ~edges ~steps:4 ~base:16 in
  (path, Gen.Workloads.mixed_tasks ~prng:g ~path ~n ())

let run () =
  Bench_util.section "SCALE  wall-clock growth (one run per cell, seconds)";
  let sizes = [ (50, 16); (100, 24); (200, 32); (400, 48) ] in
  let algos =
    [
      ("first fit", fun path ts -> ignore (Dsa.First_fit.pack path ts));
      ( "strip-pack (LR)",
        fun path ts ->
          ignore
            (Sap.Small.strip_pack ~rounding:`Local_ratio
               ~prng:(Util.Prng.create 3) path
               (List.filter (Core.Classify.is_small path ~delta:0.25) ts)) );
      ("rect MWIS (large)", fun path ts ->
          ignore (Sap.Large.solve path (List.filter (Core.Classify.is_large path ~frac:0.5) ts)));
      ("UFPP LP", fun path ts -> ignore (Lp.Ufpp_lp.solve path ts));
      ("combine (Thm 4)", fun path ts -> ignore (Sap.Combine.solve path ts));
    ]
  in
  let rows =
    List.map
      (fun (name, f) ->
        name
        :: List.map
             (fun (n, edges) ->
               let path, tasks = instance ~n ~edges (1000 + n) in
               let (), dt = Bench_util.timed (fun () -> f path tasks) in
               Util.Table.float_cell dt)
             sizes)
      algos
  in
  Util.Table.print
    ~header:
      ("algorithm"
      :: List.map (fun (n, m) -> Printf.sprintf "n=%d,m=%d" n m) sizes)
    rows
