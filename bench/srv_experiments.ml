(* SRV — in-process solve-service throughput: one batch driven cold
   (every request reaches a solver) and the identical batch warm (every
   request must be served from the LRU cache).  Wall time lands in the
   *seconds*-named histograms, which the bench-diff gate treats as timing
   (compared only under --time-factor); the deterministic shape of the
   run — requests solved, warm-pass hits — lands in counters so a cache
   or pool regression that changes behaviour (not just speed) trips the
   gate exactly.  The server's own [server.*] metrics ride along in the
   same stats report; [server.queue_depth] is schedule-dependent and is
   --ignore'd by the CI gate. *)

module P = Sap_server.Protocol
module Server = Sap_server.Server

let h_cold = Obs.Metrics.histogram "bench.server.cold_seconds"

let h_warm = Obs.Metrics.histogram "bench.server.warm_seconds"

let g_cold_rps = Obs.Metrics.gauge "bench.server.cold_rps"

let g_warm_rps = Obs.Metrics.gauge "bench.server.warm_rps"

let c_solved = Obs.Metrics.counter "bench.server.solved"

let c_warm_hits = Obs.Metrics.counter "bench.server.warm_hits"

let instances ~count seed =
  List.init count (fun i ->
      let g = Util.Prng.create (seed + (31 * i)) in
      let path =
        Gen.Profiles.random_walk ~prng:g ~edges:24 ~start:48 ~max_step:12
          ~min_cap:6
      in
      let tasks = Gen.Workloads.mixed_tasks ~prng:g ~path ~n:24 () in
      (path, tasks))

(* Submit the whole batch before forcing anything — the pool solves
   across requests, which is the throughput being measured — and count
   the responses that came from the cache.  Every response is
   checker-validated: a fast server returning garbage is not a result. *)
let run_pass srv insts =
  let pendings =
    List.mapi
      (fun i (path, tasks) ->
        Server.submit srv
          (P.Solve { id = i; params = P.default_solve_params; path; tasks }))
      insts
  in
  let hits = ref 0 in
  List.iteri
    (fun i p ->
      match p.Server.force () with
      | P.Solved { summary; solution; _ } ->
          let path, _ = List.nth insts i in
          (match Core.Checker.sap_feasible path solution with
          | Ok () -> ()
          | Error m -> failwith ("srv: infeasible response: " ^ m));
          if summary.P.cached then incr hits
      | _ -> failwith "srv: request did not solve")
    pendings;
  !hits

let run () =
  Bench_util.section "SRV  solve-service throughput (cold vs warm cache)";
  let insts = instances ~count:48 7 in
  let n = List.length insts in
  let srv =
    Server.create
      ~config:{ Server.default_config with Server.workers = Some 4 }
      ()
  in
  Fun.protect ~finally:(fun () -> Server.drain srv) @@ fun () ->
  let cold_hits, cold_dt =
    Bench_util.timed (fun () -> Obs.Metrics.time h_cold (fun () -> run_pass srv insts))
  in
  if cold_hits <> 0 then failwith "srv: cold pass unexpectedly hit the cache";
  let warm_hits, warm_dt =
    Bench_util.timed (fun () -> Obs.Metrics.time h_warm (fun () -> run_pass srv insts))
  in
  if warm_hits <> n then
    failwith
      (Printf.sprintf "srv: warm pass hit the cache %d/%d times" warm_hits n);
  Obs.Metrics.add c_solved (2 * n);
  Obs.Metrics.add c_warm_hits warm_hits;
  Obs.Metrics.set g_cold_rps (float_of_int n /. cold_dt);
  Obs.Metrics.set g_warm_rps (float_of_int n /. warm_dt);
  Util.Table.print
    ~header:[ "pass"; "requests"; "seconds"; "req/s"; "cache hits" ]
    [
      [
        "cold";
        string_of_int n;
        Util.Table.float_cell cold_dt;
        Util.Table.float_cell (float_of_int n /. cold_dt);
        "0";
      ];
      [
        "warm";
        string_of_int n;
        Util.Table.float_cell warm_dt;
        Util.Table.float_cell (float_of_int n /. warm_dt);
        string_of_int warm_hits;
      ];
    ]
