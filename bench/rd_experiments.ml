(* RD — ROUND-SAP packing: every solver from [Round.Solvers] plus the
   exact branch-and-bound over a deterministic nine-instance sweep (three
   seeds of three generator families mirroring the lab corpus: power-of-
   two demand classes, just-over-half-capacity cliques, and a staircase
   profile).  Wall time lands in *seconds* histograms (timing-only under
   bench-diff); the shape of the run — instances, tasks, rounds per
   algorithm, certified lower-bound mass, B&B nodes — lands in exact
   counters, so a packing regression that costs rounds trips the gate
   even on a faster machine.  In-scenario assertions pin the invariants
   the lab gate checks: every packing checker-feasible, no algorithm
   below the certified bound, bands no worse than first-fit on this
   sweep, and the exact search optimal on every instance. *)

module Task = Core.Task
module Path = Core.Path

let h_heuristic = Obs.Metrics.histogram "bench.rd.heuristic_seconds"

let h_exact = Obs.Metrics.histogram "bench.rd.exact_seconds"

let c_instances = Obs.Metrics.counter "bench.rd.instances"

let c_tasks = Obs.Metrics.counter "bench.rd.tasks"

let c_lb = Obs.Metrics.counter "bench.rd.lb_total"

let c_bb_nodes = Obs.Metrics.counter "bench.rd.bb_nodes"

let c_exact_optimal = Obs.Metrics.counter "bench.rd.exact_optimal"

let round_counter alg = Obs.Metrics.counter ("bench.rd.rounds." ^ alg)

let g_bands_over_lb = Obs.Metrics.gauge "bench.rd.bands_over_lb"

(* ---------- the instance families ---------- *)

let span prng ~edges =
  let a = Util.Prng.int prng edges in
  let b = Util.Prng.int prng edges in
  (min a b, max a b)

(* Power-of-two demand classes on a flat profile: the bands solver's home
   turf (each class packs [floor(b / 2^k)] surrogate levels per round). *)
let classes_instance seed =
  let prng = Util.Prng.create seed in
  let edges = 8 in
  let path = Path.create (Array.make edges 32) in
  let tasks =
    List.init 12 (fun id ->
        let first_edge, last_edge = span prng ~edges in
        let demand = 1 lsl Util.Prng.int prng 5 in
        Task.make ~id ~first_edge ~last_edge ~demand ~weight:1.0)
  in
  Round.Instance.create_exn path tasks

(* Demands just over half capacity: any two overlapping tasks conflict,
   so the pairwise clique bound is the binding one. *)
let halfcap_instance seed =
  let prng = Util.Prng.create (seed + 100) in
  let edges = 6 in
  let path = Path.create (Array.make edges 50) in
  let tasks =
    List.init 9 (fun id ->
        let first_edge, last_edge = span prng ~edges in
        let demand = 26 + Util.Prng.int prng 9 in
        Task.make ~id ~first_edge ~last_edge ~demand ~weight:1.0)
  in
  Round.Instance.create_exn path tasks

(* A staircase profile with tasks pinned near their bottleneck edge. *)
let staircase_instance seed =
  let prng = Util.Prng.create (seed + 200) in
  let caps = [| 8; 16; 32; 64 |] in
  let path = Path.create caps in
  let tasks =
    List.init 10 (fun id ->
        let first_edge = Util.Prng.int prng (Array.length caps) in
        let last_edge =
          min (Array.length caps - 1) (first_edge + Util.Prng.int prng 2)
        in
        let demand = 1 + Util.Prng.int prng caps.(first_edge) in
        Task.make ~id ~first_edge ~last_edge ~demand ~weight:1.0)
  in
  Round.Instance.create_exn path tasks

let instances =
  List.concat_map
    (fun seed ->
      [
        ("classes", classes_instance seed);
        ("halfcap", halfcap_instance seed);
        ("staircase", staircase_instance seed);
      ])
    [ 1; 2; 3 ]

(* ---------- the sweep ---------- *)

let heuristics = [ "first-fit"; "next-fit"; "bands" ]

let solver name =
  match Round.Solvers.find name with
  | Some s -> s.Round.Solvers.solve
  | None -> failwith ("rd: unknown round solver " ^ name)

let run () =
  Bench_util.section "RD  ROUND-SAP packing (heuristics vs exact, vs certified LB)";
  let totals = Hashtbl.create 8 in
  let add alg k =
    Hashtbl.replace totals alg (k + Option.value ~default:0 (Hashtbl.find_opt totals alg))
  in
  let n_tasks = ref 0 and lb_total = ref 0 in
  let bb_nodes = ref 0 and exact_optimal = ref 0 in
  let heuristic_dt = ref 0.0 and exact_dt = ref 0.0 in
  List.iter
    (fun (family, inst) ->
      n_tasks := !n_tasks + Round.Instance.task_count inst;
      let lb = Round.Lower_bound.certified inst in
      lb_total := !lb_total + lb;
      List.iter
        (fun alg ->
          let rounds, dt = Bench_util.timed (fun () -> solver alg inst) in
          heuristic_dt := !heuristic_dt +. dt;
          (match Round.Checker.check inst rounds with
          | Ok () -> ()
          | Error m ->
              failwith (Printf.sprintf "rd: %s infeasible on %s: %s" alg family m));
          let k = List.length rounds in
          if k < lb then
            failwith
              (Printf.sprintf "rd: %s packed %s below the certified bound (%d < %d)"
                 alg family k lb);
          add alg k)
        heuristics;
      let out, dt = Bench_util.timed (fun () -> Round.Exact.solve inst) in
      exact_dt := !exact_dt +. dt;
      Round.Checker.expect_ok (Round.Checker.check inst out.Round.Exact.rounds);
      if not out.Round.Exact.optimal then
        failwith (Printf.sprintf "rd: exact search ran out of budget on %s" family);
      incr exact_optimal;
      bb_nodes := !bb_nodes + out.Round.Exact.nodes;
      add "exact" out.Round.Exact.value)
    instances;
  let total alg = Option.value ~default:0 (Hashtbl.find_opt totals alg) in
  (* The invariants the lab gate enforces, asserted in-scenario so the
     bench fails loudly rather than committing a regressed baseline. *)
  if total "bands" > total "first-fit" then
    failwith
      (Printf.sprintf "rd: bands used %d rounds vs first-fit's %d on the sweep"
         (total "bands") (total "first-fit"));
  List.iter
    (fun alg ->
      if total "exact" > total alg then
        failwith
          (Printf.sprintf "rd: exact (%d rounds) beaten by %s (%d)"
             (total "exact") alg (total alg)))
    heuristics;
  Obs.Metrics.add c_instances (List.length instances);
  Obs.Metrics.add c_tasks !n_tasks;
  Obs.Metrics.add c_lb !lb_total;
  Obs.Metrics.add c_bb_nodes !bb_nodes;
  Obs.Metrics.add c_exact_optimal !exact_optimal;
  List.iter
    (fun alg -> Obs.Metrics.add (round_counter alg) (total alg))
    ("exact" :: heuristics);
  Obs.Metrics.observe h_heuristic !heuristic_dt;
  Obs.Metrics.observe h_exact !exact_dt;
  Obs.Metrics.set g_bands_over_lb
    (float_of_int (total "bands") /. float_of_int !lb_total);
  Util.Table.print
    ~header:[ "alg"; "instances"; "rounds"; "lb"; "rounds/lb"; "seconds" ]
    (List.map
       (fun alg ->
         [
           alg;
           string_of_int (List.length instances);
           string_of_int (total alg);
           string_of_int !lb_total;
           Util.Table.float_cell
             (float_of_int (total alg) /. float_of_int !lb_total);
           Util.Table.float_cell
             (if alg = "exact" then !exact_dt else !heuristic_dt);
         ])
       ("exact" :: heuristics));
  Printf.printf
    "\n%d instances, %d tasks: exact optimal on all (%d B&B nodes)\n%!"
    (List.length instances) !n_tasks !bb_nodes
