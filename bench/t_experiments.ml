(* Experiments T1..T5 (one per approximation theorem), A1 (the appendix's
   local-ratio alternative), L3 (the combination lemma), S2 (LP quality)
   and RHO (the conclusion's extended-DSA problem).  Each prints a table of
   measured approximation ratios next to the paper's proven bound. *)

module Task = Core.Task
module Path = Core.Path

(* ---------- T1: small tasks, Theorem 1 (4 + eps) ---------- *)

let small_tiny seed =
  let g = Util.Prng.create seed in
  let path = Path.uniform ~edges:(3 + Util.Prng.int g 3) ~capacity:16 in
  (path, Gen.Workloads.small_tasks ~prng:g ~path ~n:7 ~delta:0.25 ())

let small_big seed =
  let g = Util.Prng.create seed in
  let path = Gen.Profiles.staircase ~edges:16 ~steps:3 ~base:32 in
  (path, Gen.Workloads.small_tasks ~prng:g ~path ~n:60 ~delta:0.25 ())

let t1 () =
  Bench_util.section "T1  Theorem 1: (4+eps)-approximation for delta-small SAP";
  let algo_lp path ts =
    Sap.Small.strip_pack ~rounding:(`Lp 16) ~prng:(Util.Prng.create 9) path ts
  in
  let algo_lr path ts =
    Sap.Small.strip_pack ~rounding:`Local_ratio ~prng:(Util.Prng.create 9) path ts
  in
  let algo_ff path ts = fst (Dsa.First_fit.pack path ts) in
  Bench_util.subsection "tiny instances vs exact OPT (n = 7, delta = 1/4)";
  let tiny = Bench_util.batch ~count:30 ~base:100 small_tiny in
  Util.Table.print ~header:Bench_util.ratio_header
    [
      Bench_util.ratio_row ~name:"Strip-Pack (LP rounding)" ~bound:"4+eps"
        (Bench_util.measure ~ref_kind:Bench_util.Exact_opt ~algo:algo_lp tiny);
      Bench_util.ratio_row ~name:"Strip-Pack (local ratio)" ~bound:"5+eps"
        (Bench_util.measure ~ref_kind:Bench_util.Exact_opt ~algo:algo_lr tiny);
      Bench_util.ratio_row ~name:"first fit (baseline)" ~bound:"none"
        (Bench_util.measure ~ref_kind:Bench_util.Exact_opt ~algo:algo_ff tiny);
    ];
  Bench_util.subsection "larger instances vs LP bound (n = 60, staircase profile)";
  let big = Bench_util.batch ~count:10 ~base:200 small_big in
  Util.Table.print ~header:Bench_util.ratio_header
    [
      Bench_util.ratio_row ~name:"Strip-Pack (LP rounding)" ~bound:"4+eps (vs OPT)"
        (Bench_util.measure ~ref_kind:Bench_util.Lp_bound ~algo:algo_lp big);
      Bench_util.ratio_row ~name:"Strip-Pack (local ratio)" ~bound:"5+eps (vs OPT)"
        (Bench_util.measure ~ref_kind:Bench_util.Lp_bound ~algo:algo_lr big);
      Bench_util.ratio_row ~name:"first fit (baseline)" ~bound:"none"
        (Bench_util.measure ~ref_kind:Bench_util.Lp_bound ~algo:algo_ff big);
    ]

(* ---------- T2: medium tasks, Theorem 2 (2 + eps) ---------- *)

let medium_tiny seed =
  let g = Util.Prng.create seed in
  let path = Helpers_path.medium_path g in
  (path, Gen.Workloads.ratio_tasks ~prng:g ~path ~n:7 ~lo:0.25 ~hi:0.5 ())

let t2 () =
  Bench_util.section "T2  Theorem 2: (2+eps)-approximation for medium SAP";
  let algo path ts =
    (Sap.Almost_uniform.run ~ell:2 ~q:2 path ts).Sap.Almost_uniform.solution
  in
  let algo_ff path ts = fst (Dsa.First_fit.pack path ts) in
  Bench_util.subsection
    "tiny instances vs exact OPT (ratios in (1/4,1/2]; at ell=2,q=2 the \
     instantiated bound is 2(ell+q)/ell = 4, tending to 2+eps as ell grows)";
  let tiny = Bench_util.batch ~count:30 ~base:300 medium_tiny in
  Util.Table.print ~header:Bench_util.ratio_header
    [
      Bench_util.ratio_row ~name:"AlmostUniform + Elevator" ~bound:"4 (→2+eps)"
        (Bench_util.measure ~ref_kind:Bench_util.Exact_opt ~algo tiny);
      Bench_util.ratio_row ~name:"first fit (baseline)" ~bound:"none"
        (Bench_util.measure ~ref_kind:Bench_util.Exact_opt ~algo:algo_ff tiny);
    ]

(* ---------- T3: large tasks, Theorem 3 (2k - 1) ---------- *)

let large_tiny ~k seed =
  let g = Util.Prng.create seed in
  let path = Helpers_path.medium_path g in
  (path, Gen.Workloads.ratio_tasks ~prng:g ~path ~n:8 ~lo:(1.0 /. float_of_int k) ~hi:1.0 ())

let t3 () =
  Bench_util.section "T3  Theorem 3: (2k-1)-approximation for 1/k-large SAP";
  let algo path ts = Sap.Large.solve path ts in
  List.iter
    (fun k ->
      Bench_util.subsection
        (Printf.sprintf "k = %d: 1/%d-large instances vs exact OPT (bound %d)" k k
           ((2 * k) - 1));
      let tiny = Bench_util.batch ~count:30 ~base:(400 + k) (large_tiny ~k) in
      Util.Table.print ~header:Bench_util.ratio_header
        [
          Bench_util.ratio_row ~name:"rectangle MWIS"
            ~bound:(string_of_int ((2 * k) - 1))
            (Bench_util.measure ~ref_kind:Bench_util.Exact_opt ~algo tiny);
        ];
      (* Lemma 17: degeneracy of the rectangle graph of optimal solutions. *)
      let degs =
        List.map
          (fun (path, ts) ->
            let opt = Exact.Sap_brute.solve path ts in
            float_of_int (Sap.Large.solution_degeneracy path opt))
          tiny
      in
      let s = Util.Stats.summarize degs in
      Printf.printf
        "  Lemma 17 check: rectangle-graph degeneracy of exact optima: max %.0f (bound %d)\n"
        s.Util.Stats.max ((2 * k) - 2))
    [ 2; 3 ]

(* ---------- T4: the combined algorithm, Theorem 4 (9 + eps) ---------- *)

let mixed_tiny seed =
  let g = Util.Prng.create seed in
  let path = Helpers_path.medium_path g in
  (path, Gen.Workloads.mixed_tasks ~prng:g ~path ~n:8 ())

let mixed_big seed =
  let g = Util.Prng.create seed in
  let path = Helpers_path.big_path g in
  (path, Gen.Workloads.mixed_tasks ~prng:g ~path ~n:60 ())

let t4 () =
  Bench_util.section "T4  Theorem 4: (9+eps)-approximation for general SAP";
  let algo path ts = Sap.Combine.solve path ts in
  let algo_ff path ts = fst (Dsa.First_fit.pack path ts) in
  Bench_util.subsection "tiny mixed instances vs exact OPT";
  let tiny = Bench_util.batch ~count:30 ~base:500 mixed_tiny in
  Util.Table.print ~header:Bench_util.ratio_header
    [
      Bench_util.ratio_row ~name:"combine (Thm 4)" ~bound:"9+eps"
        (Bench_util.measure ~ref_kind:Bench_util.Exact_opt ~algo tiny);
      Bench_util.ratio_row ~name:"first fit (baseline)" ~bound:"none"
        (Bench_util.measure ~ref_kind:Bench_util.Exact_opt ~algo:algo_ff tiny);
    ];
  Bench_util.subsection "larger mixed instances vs LP bound (n = 60)";
  let big = Bench_util.batch ~count:10 ~base:600 mixed_big in
  Util.Table.print ~header:Bench_util.ratio_header
    [
      Bench_util.ratio_row ~name:"combine (Thm 4)" ~bound:"9+eps (vs OPT)"
        (Bench_util.measure ~ref_kind:Bench_util.Lp_bound ~algo big);
      Bench_util.ratio_row ~name:"first fit (baseline)" ~bound:"none"
        (Bench_util.measure ~ref_kind:Bench_util.Lp_bound ~algo:algo_ff big);
    ];
  Bench_util.subsection
    "mid-size mixed instances (n = 18) vs exact UFPP (tighter than the LP)";
  let mid seed =
    let g = Util.Prng.create seed in
    let path = Helpers_path.medium_path g in
    (path, Gen.Workloads.mixed_tasks ~prng:g ~path ~n:18 ())
  in
  let mids = Bench_util.batch ~count:15 ~base:650 mid in
  Util.Table.print ~header:Bench_util.ratio_header
    [
      Bench_util.ratio_row ~name:"combine (Thm 4)" ~bound:"9+eps (vs OPT)"
        (Bench_util.measure ~ref_kind:Bench_util.Ufpp_exact ~algo mids);
      Bench_util.ratio_row ~name:"first fit (baseline)" ~bound:"none"
        (Bench_util.measure ~ref_kind:Bench_util.Ufpp_exact ~algo:algo_ff mids);
    ];
  Bench_util.subsection
    "per-profile breakdown (n = 45 vs LP bound): structure is where the paper's \
     machinery pays";
  let profile_instances profile seed =
    let g = Util.Prng.create seed in
    let path =
      match profile with
      | `Uniform -> Gen.Profiles.uniform ~edges:16 ~capacity:48
      | `Valley -> Gen.Profiles.valley ~edges:16 ~high:64 ~low:16
      | `Staircase -> Gen.Profiles.staircase ~edges:16 ~steps:4 ~base:8
    in
    (path, Gen.Workloads.mixed_tasks ~prng:g ~path ~n:45 ())
  in
  let profile_row name profile =
    let batch = Bench_util.batch ~count:8 ~base:660 (profile_instances profile) in
    let row algo_name algo =
      Bench_util.ratio_row ~name:(name ^ ": " ^ algo_name) ~bound:"-"
        (Bench_util.measure ~ref_kind:Bench_util.Lp_bound ~algo batch)
    in
    [ row "combine" algo; row "first fit" algo_ff ]
  in
  Util.Table.print ~header:Bench_util.ratio_header
    (List.concat
       [
         profile_row "uniform" `Uniform;
         profile_row "valley" `Valley;
         profile_row "staircase" `Staircase;
       ]);
  Bench_util.subsection "uniform instances: combine vs the SAP-U baseline of [5]";
  let uniform seed =
    let g = Util.Prng.create seed in
    let path = Path.uniform ~edges:(4 + Util.Prng.int g 3) ~capacity:18 in
    (path, Gen.Workloads.mixed_tasks ~prng:g ~path ~n:8 ())
  in
  let unif = Bench_util.batch ~count:30 ~base:700 uniform in
  Util.Table.print ~header:Bench_util.ratio_header
    [
      Bench_util.ratio_row ~name:"combine (Thm 4)" ~bound:"9+eps"
        (Bench_util.measure ~ref_kind:Bench_util.Exact_opt ~algo unif);
      Bench_util.ratio_row ~name:"SAP-U scheme of [5]" ~bound:"7"
        (Bench_util.measure ~ref_kind:Bench_util.Exact_opt
           ~algo:(fun p ts -> Sap.Sap_u.solve p ts)
           unif);
    ]

(* ---------- T5: rings, Theorem 5 (10 + eps) ---------- *)

let t5 () =
  Bench_util.section "T5  Theorem 5: (10+eps)-approximation on rings";
  let ring_tiny seed =
    let prng = Util.Prng.create seed in
    Gen.Ring_gen.random ~prng ~edges:(4 + (seed mod 3)) ~n:5 ~cap_lo:6 ~cap_hi:14
      ~ratio_lo:0.0 ~ratio_hi:0.9
  in
  let measurements =
    Bench_util.seeds ~base:800 ~count:25
    |> List.filter_map (fun seed ->
           let ring = ring_tiny seed in
           let opt = Exact.Ring_brute.value ring in
           if opt <= 1e-9 then None
           else begin
             let sol = Sap.Ring_algo.solve ring in
             (match Core.Ring.feasible ring sol with
             | Ok () -> ()
             | Error m -> failwith ("T5: " ^ m));
             let w = Core.Ring.solution_weight sol in
             Some ((if w <= 1e-9 then Float.infinity else opt /. w), w, opt)
           end)
  in
  Bench_util.subsection "tiny rings vs exact ring OPT";
  Util.Table.print ~header:Bench_util.ratio_header
    [ Bench_util.ratio_row ~name:"cut + knapsack (Thm 5)" ~bound:"10+eps" measurements ];
  (* How often does each candidate win? *)
  let path_wins, through_wins =
    Bench_util.seeds ~base:900 ~count:25
    |> List.fold_left
         (fun (p, t) seed ->
           let r = Sap.Ring_algo.solve_report (ring_tiny seed) in
           if r.Sap.Ring_algo.path_weight >= r.Sap.Ring_algo.through_weight then
             (p + 1, t)
           else (p, t + 1))
         (0, 0)
  in
  Printf.printf "  candidate wins: cut-path %d, through-knapsack %d\n" path_wins
    through_wins

(* ---------- A1: LP rounding vs local ratio inside a strip ---------- *)

let a1 () =
  Bench_util.section "A1  Appendix: LP rounding vs local ratio for strips";
  let band seed =
    let g = Util.Prng.create seed in
    let b = 32 in
    let edges = 6 + Util.Prng.int g 6 in
    let caps = Array.init edges (fun _ -> b + Util.Prng.int g b) in
    let path = Path.create caps in
    (b, path, Gen.Workloads.small_tasks ~prng:g ~path ~n:40 ~delta:0.2 ())
  in
  let rows =
    Bench_util.seeds ~base:1000 ~count:8
    |> List.map (fun seed ->
           let b, path, tasks = band seed in
           let lp_strip =
             Sap.Small.solve_band ~b ~rounding:(`Lp 16) ~prng:(Util.Prng.create 3)
               path tasks
           in
           let lr_strip =
             Sap.Small.solve_band ~b ~rounding:`Local_ratio
               ~prng:(Util.Prng.create 3) path tasks
           in
           let lp_bound = Lp.Ufpp_lp.upper_bound (Path.clip path (2 * b)) tasks in
           [
             string_of_int seed;
             string_of_int (List.length tasks);
             Util.Table.float_cell ~digits:1 (Core.Solution.sap_weight lp_strip);
             Util.Table.float_cell ~digits:1 (Core.Solution.sap_weight lr_strip);
             Util.Table.float_cell ~digits:1 lp_bound;
             Util.Table.float_cell
               (lp_bound /. Float.max 1e-9 (Core.Solution.sap_weight lp_strip));
             Util.Table.float_cell
               (lp_bound /. Float.max 1e-9 (Core.Solution.sap_weight lr_strip));
           ])
  in
  Util.Table.print
    ~header:
      [ "seed"; "tasks"; "LP-round w"; "local-ratio w"; "LP bound"; "LP ratio"; "LR ratio" ]
    rows;
  print_endline "  (paper bounds: 4+eps for LP rounding, 5+eps for local ratio)"

(* ---------- L3: the combination lemma in action ---------- *)

let l3 () =
  Bench_util.section "L3  Lemma 3: best-of-parts combination";
  let rows =
    Bench_util.seeds ~base:1100 ~count:8
    |> List.map (fun seed ->
           let path, tasks = mixed_big seed in
           let r = Sap.Combine.solve_report path tasks in
           let w = Core.Solution.sap_weight in
           [
             string_of_int seed;
             Util.Table.float_cell ~digits:1 (w r.Sap.Combine.small_solution);
             Util.Table.float_cell ~digits:1 (w r.Sap.Combine.medium_solution);
             Util.Table.float_cell ~digits:1 (w r.Sap.Combine.large_solution);
             Format.asprintf "%a" Sap.Combine.pp_part r.Sap.Combine.chosen;
             Util.Table.float_cell ~digits:1 (w r.Sap.Combine.solution);
           ])
  in
  Util.Table.print
    ~header:[ "seed"; "small w"; "medium w"; "large w"; "winner"; "returned w" ]
    rows

(* ---------- S2: LP quality ---------- *)

let s2 () =
  Bench_util.section "S2  LP relaxation quality (integrality gap on small instances)";
  let gaps =
    Bench_util.seeds ~base:1200 ~count:25
    |> List.filter_map (fun seed ->
           let g = Util.Prng.create seed in
           let path = Helpers_path.medium_path g in
           let tasks = Gen.Workloads.mixed_tasks ~prng:g ~path ~n:10 () in
           let lp = Lp.Ufpp_lp.upper_bound path tasks in
           let ufpp = Ufpp.Exact_bb.value path tasks in
           let sap = Exact.Sap_brute.value path tasks in
           if sap <= 1e-9 then None else Some (lp /. ufpp, ufpp /. sap))
  in
  let lp_over_ufpp = List.map fst gaps and ufpp_over_sap = List.map snd gaps in
  let s1 = Util.Stats.summarize lp_over_ufpp in
  let s2_ = Util.Stats.summarize ufpp_over_sap in
  Util.Table.print
    ~header:[ "gap"; "geo-mean"; "median"; "worst" ]
    [
      [
        "LP / exact UFPP";
        Util.Table.float_cell (Util.Stats.geometric_mean lp_over_ufpp);
        Util.Table.float_cell s1.Util.Stats.median;
        Util.Table.float_cell s1.Util.Stats.max;
      ];
      [
        "exact UFPP / exact SAP";
        Util.Table.float_cell (Util.Stats.geometric_mean ufpp_over_sap);
        Util.Table.float_cell s2_.Util.Stats.median;
        Util.Table.float_cell s2_.Util.Stats.max;
      ];
    ]

(* ---------- RHO: the conclusion's extended DSA ---------- *)

let rho () =
  Bench_util.section
    "RHO  Conclusion: min coefficient rho packing all tasks in rho*c (extension)";
  let rows =
    Bench_util.seeds ~base:1300 ~count:8
    |> List.map (fun seed ->
           let g = Util.Prng.create seed in
           let path = Gen.Profiles.valley ~edges:10 ~high:64 ~low:24 in
           let tasks = Gen.Workloads.small_tasks ~prng:g ~path ~n:40 ~delta:0.2 () in
           let ff = Dsa.Rho_packing.solve ~engine:Dsa.Rho_packing.First_fit path tasks in
           let bd = Dsa.Rho_packing.solve ~engine:Dsa.Rho_packing.Buddy path tasks in
           [
             string_of_int seed;
             Util.Table.float_cell ff.Dsa.Rho_packing.lower_bound;
             Util.Table.float_cell ff.Dsa.Rho_packing.rho;
             Util.Table.float_cell bd.Dsa.Rho_packing.rho;
             Util.Table.float_cell
               (ff.Dsa.Rho_packing.rho /. Float.max 1e-9 ff.Dsa.Rho_packing.lower_bound);
           ])
  in
  Util.Table.print
    ~header:[ "seed"; "load bound"; "rho (first fit)"; "rho (buddy)"; "ff gap" ]
    rows

let run_all () =
  t1 ();
  t2 ();
  t3 ();
  t4 ();
  t5 ();
  a1 ();
  l3 ();
  s2 ();
  rho ()
