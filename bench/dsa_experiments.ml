(* DSA — the substrate behind Lemma 4: how close do our packers come to
   the LOAD lower bound on classic dynamic-storage-allocation workloads?
   (Gergov guarantees makespan <= 3*LOAD; Buchsbaum et al. (1+o(1))*LOAD
   for small demands.  Our substituted packers are heuristics; this
   experiment measures where they actually land.) *)

module Task = Core.Task
module Path = Core.Path

let makespan_over_load ~pack path tasks =
  (* Pack everything with no ceiling and compare makespan to LOAD. *)
  let placed, dropped = pack path tasks in
  assert (dropped = []);
  let load = Core.Instance.max_load path tasks in
  float_of_int (Core.Solution.max_makespan path placed) /. float_of_int load

let run () =
  Bench_util.section
    "DSA  makespan / LOAD of the packers (Lemma 4's substrate; lower is better)";
  let workload name gen =
    let ratios engine =
      Bench_util.seeds ~base:3000 ~count:12
      |> List.map (fun seed ->
             let path, tasks = gen seed in
             (* Unbounded strip: capacities far above any packing. *)
             let tall =
               Path.uniform ~edges:(Path.num_edges path)
                 ~capacity:(max 1 (Core.Instance.max_load path tasks) * 10)
             in
             makespan_over_load ~pack:engine tall tasks)
    in
    let ff = ratios (fun p ts -> Dsa.First_fit.pack p ts) in
    let bd = ratios (fun p ts -> Dsa.Buddy.pack p ts) in
    let cell l =
      let s = Util.Stats.summarize l in
      Printf.sprintf "%s (max %s)"
        (Util.Table.float_cell (Util.Stats.geometric_mean l))
        (Util.Table.float_cell s.Util.Stats.max)
    in
    [ name; cell ff; cell bd ]
  in
  let small_tasks seed =
    let g = Util.Prng.create seed in
    let path = Path.uniform ~edges:12 ~capacity:64 in
    (path, Gen.Workloads.small_tasks ~prng:g ~path ~n:50 ~delta:0.15 ())
  in
  let mixed_tasks seed =
    let g = Util.Prng.create seed in
    let path = Path.uniform ~edges:12 ~capacity:64 in
    (path, Gen.Workloads.mixed_tasks ~prng:g ~path ~n:30 ())
  in
  let memory_tasks seed =
    let g = Util.Prng.create seed in
    Gen.Traces.memory_trace ~prng:g ~time_slots:24 ~memory:64 ~n:60 ~max_lifetime:8
      ~max_object:16
  in
  Util.Table.print
    ~header:[ "workload"; "first fit: geo-mean"; "buddy: geo-mean" ]
    [
      workload "delta-small (0.15)" small_tasks;
      workload "mixed ratios" mixed_tasks;
      workload "memory trace" memory_tasks;
    ];
  print_endline
    "  (Gergov's bound is 3x; first fit stays well under it on these workloads,\n\
    \   which is the slack the Lemma 4 substitution exploits)"
