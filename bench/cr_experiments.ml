(* CR — online-session churn replay: a deterministic single-task
   arrival/departure trace resolved warm (band-local repair + simplex
   warm starts) against the identical trace resolved cold (every band
   repacked from scratch).  The instance stacks eight bottleneck bands
   of 30 tasks each, so a cold resolve pays eight band LPs where a warm
   resolve pays one warm-seeded LP — the speedup the session subsystem
   exists to buy.  Wall time lands in *seconds* histograms (timing-only
   under bench-diff); the shape of the run — events, resolves, bands
   repacked, warm-seeded LPs — lands in exact counters, so a repair or
   warm-start regression that changes behaviour trips the gate even on a
   faster machine.  The speedup itself is a gauge plus an in-scenario
   floor assertion. *)

module Session = Sap_server.Session
module Task = Core.Task

let h_cold = Obs.Metrics.histogram "bench.cr.cold_seconds"

let h_warm = Obs.Metrics.histogram "bench.cr.warm_seconds"

let g_speedup = Obs.Metrics.gauge "bench.cr.speedup"

let c_events = Obs.Metrics.counter "bench.cr.events"

let c_resolves = Obs.Metrics.counter "bench.cr.resolves"

let c_warm_seeded = Obs.Metrics.counter "bench.cr.warm_seeded"

let c_repacked_warm = Obs.Metrics.counter "bench.cr.repacked_warm"

let c_repacked_cold = Obs.Metrics.counter "bench.cr.repacked_cold"

let c_scheduled = Obs.Metrics.counter "bench.cr.scheduled_final"

(* Two adjacent edges per capacity level: a task confined to one segment
   has that level as its bottleneck, so each level is its own
   strip-pack band and a single-task delta dirties exactly one band. *)
let levels = [| 4; 8; 16; 32; 64; 128; 256; 512 |]

let make_path () =
  Core.Path.create
    (Array.concat (List.map (fun c -> [| c; c |]) (Array.to_list levels)))

let make_task prng ~id ~level =
  let first_edge = 2 * level in
  let last_edge = first_edge + Util.Prng.int prng 2 in
  let demand = 1 + Util.Prng.int prng levels.(level) in
  let weight = 1.0 +. Util.Prng.float prng 99.0 in
  Task.make ~id ~first_edge ~last_edge ~demand ~weight

let base_tasks prng ~per_band =
  List.concat
    (List.init (Array.length levels) (fun level ->
         List.init per_band (fun k ->
             make_task prng ~id:((level * per_band) + k) ~level)))

(* The trace alternates arrival and departure of the same task, walking
   the bands round-robin: every event is a single-task delta against one
   band, and the instance returns to the base after each pair. *)
type event = Arrive of Task.t | Depart of int

let make_trace prng ~first_id ~pairs =
  List.concat
    (List.init pairs (fun i ->
         let id = first_id + i in
         let j = make_task prng ~id ~level:(i mod Array.length levels) in
         [ Arrive j; Depart id ]))

let apply sess = function
  | Arrive j -> Session.add_task sess j
  | Depart id -> Session.remove_task sess id

(* Replay the trace, timing only the per-delta resolves (the initial
   full solve is common to both passes).  Every resolve is
   checker-verified inside [Session.resolve]; an [Error] here is a bug,
   not a measurement. *)
let run_pass ~cold ~seed path base trace =
  let sess =
    match Session.create ~seed path base with
    | Ok s -> s
    | Error m -> failwith ("cr: session create failed: " ^ m)
  in
  (match Session.resolve ~cold:true sess with
  | Ok _ -> ()
  | Error m -> failwith ("cr: initial resolve failed: " ^ m));
  let total = ref 0.0 in
  let warm_seeded = ref 0 and repacked = ref 0 and scheduled = ref 0 in
  List.iter
    (fun ev ->
      (match apply sess ev with
      | Ok () -> ()
      | Error m -> failwith ("cr: delta failed: " ^ m));
      let (_, s), dt =
        Bench_util.timed (fun () ->
            match Session.resolve ~cold sess with
            | Ok r -> r
            | Error m -> failwith ("cr: resolve failed: " ^ m))
      in
      total := !total +. dt;
      warm_seeded := !warm_seeded + s.Session.warm_seeded;
      repacked := !repacked + s.Session.repacked;
      scheduled := s.Session.scheduled)
    trace;
  Session.close sess;
  (!total, !warm_seeded, !repacked, !scheduled)

let run () =
  Bench_util.section "CR  online-session churn (warm repair vs cold re-solve)";
  let prng = Util.Prng.create 11 in
  let path = make_path () in
  let per_band = 30 in
  let base = base_tasks prng ~per_band in
  let trace =
    make_trace prng ~first_id:(Array.length levels * per_band) ~pairs:8
  in
  let n = List.length trace in
  let cold_dt, cold_warm, cold_repacked, cold_sched =
    Obs.Metrics.time h_cold (fun () ->
        run_pass ~cold:true ~seed:11 path base trace)
  in
  let warm_dt, warm_warm, warm_repacked, warm_sched =
    Obs.Metrics.time h_warm (fun () ->
        run_pass ~cold:false ~seed:11 path base trace)
  in
  if cold_warm <> 0 then failwith "cr: cold pass warm-seeded an LP";
  if warm_warm <> n then
    failwith
      (Printf.sprintf "cr: warm pass seeded %d/%d resolves" warm_warm n);
  if warm_repacked <> n then
    failwith
      (Printf.sprintf "cr: warm pass repacked %d bands over %d single-band deltas"
         warm_repacked n);
  (* The final trace state equals the base instance, but warm and cold
     LPs may stop at different optimal vertices, so rounded placements
     (and thus scheduled counts) are not required to coincide — only
     checker validity and objective equality are, and those are asserted
     inside [Session.resolve] / the qcheck property.  Both counts are
     still deterministic, so both are gate-able. *)
  ignore cold_sched;
  let speedup = cold_dt /. warm_dt in
  if speedup < 5.0 then
    failwith
      (Printf.sprintf "cr: warm resolve only %.2fx faster than cold (floor 5x)"
         speedup);
  Obs.Metrics.add c_events n;
  Obs.Metrics.add c_resolves (2 * n);
  Obs.Metrics.add c_warm_seeded warm_warm;
  Obs.Metrics.add c_repacked_warm warm_repacked;
  Obs.Metrics.add c_repacked_cold cold_repacked;
  Obs.Metrics.add c_scheduled warm_sched;
  Obs.Metrics.set g_speedup speedup;
  Util.Table.print
    ~header:[ "pass"; "resolves"; "bands repacked"; "warm LPs"; "seconds"; "ms/resolve" ]
    [
      [
        "cold";
        string_of_int n;
        string_of_int cold_repacked;
        "0";
        Util.Table.float_cell cold_dt;
        Util.Table.float_cell (1000.0 *. cold_dt /. float_of_int n);
      ];
      [
        "warm";
        string_of_int n;
        string_of_int warm_repacked;
        string_of_int warm_warm;
        Util.Table.float_cell warm_dt;
        Util.Table.float_cell (1000.0 *. warm_dt /. float_of_int n);
      ];
    ];
  Printf.printf "\nwarm-vs-cold speedup on single-task deltas: %.2fx\n%!" speedup
