(* RT — sharded routing over an in-process fleet: N shards served on
   Unix sockets by their own domains, fronted by the consistent-hash
   router, driven through the real wire protocol with Client.run_batch.

   Two passes.  The deterministic pass replays 16 distinct instances 4x
   (64 requests): the first visit to each instance misses its owner's
   cache, every replay hits — because the ring pins each fingerprint to
   one shard.  Counts (sent/solved/cache_hits/failures) gate behaviour
   in bench-diff, and the pass cross-checks affinity against
   [Router.owner_for].  The throughput pass compares the same batch
   through the router against a single direct shard, reporting router
   rps, single-shard rps and the speedup as gauges (wall-clock only, not
   gated). *)

module Proto = Sap_server.Protocol
module Server = Sap_server.Server
module Transport = Sap_server.Transport
module Client = Sap_server.Client
module Router = Sap_server.Router
module Fingerprint = Sap_server.Fingerprint

let c_sent = Obs.Metrics.counter "bench.rt.sent"

let c_solved = Obs.Metrics.counter "bench.rt.solved"

let c_cache_hits = Obs.Metrics.counter "bench.rt.cache_hits"

let c_failures = Obs.Metrics.counter "bench.rt.failures"

let g_router_rps = Obs.Metrics.gauge "bench.rt.router_rps"

let g_single_rps = Obs.Metrics.gauge "bench.rt.single_rps"

let g_speedup = Obs.Metrics.gauge "bench.rt.speedup"

let params = Proto.default_solve_params

let instances ~count seed =
  List.init count (fun i ->
      let g = Util.Prng.create (seed + (31 * i)) in
      let path =
        Gen.Profiles.random_walk ~prng:g ~edges:24 ~start:48 ~max_step:12
          ~min_cap:6
      in
      let tasks = Gen.Workloads.mixed_tasks ~prng:g ~path ~n:24 () in
      (path, tasks))

(* ---------- in-process fleet ---------- *)

type shard_proc = {
  sp_socket : string;
  sp_server : Server.t;
  sp_stop : Transport.stopper;
  sp_dom : unit Domain.t;
}

let start_shard ~dir ~name ~workers =
  let socket_path = Filename.concat dir (name ^ ".sock") in
  let srv =
    Server.create ~config:{ Server.default_config with Server.workers = Some workers } ()
  in
  let stop = Transport.stopper () in
  let bound = Atomic.make false in
  let dom =
    Domain.spawn (fun () ->
        Transport.serve_unix
          ~on_bound:(fun _ -> Atomic.set bound true)
          ~stop srv ~socket_path)
  in
  while not (Atomic.get bound) do
    Unix.sleepf 0.002
  done;
  { sp_socket = socket_path; sp_server = srv; sp_stop = stop; sp_dom = dom }

let stop_shard sp =
  Transport.request_stop sp.sp_stop;
  Domain.join sp.sp_dom;
  Transport.close_stopper sp.sp_stop;
  Server.drain sp.sp_server

let with_fleet ~shards ~workers f =
  let dir = Filename.temp_file "sap_rt_bench" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let procs =
    List.init shards (fun i ->
        start_shard ~dir ~name:(Printf.sprintf "shard-%d" i) ~workers)
  in
  let endpoints =
    List.mapi
      (fun i sp ->
        {
          Router.ep_name = Printf.sprintf "shard-%d" i;
          ep_socket = sp.sp_socket;
          ep_spawn = None;
        })
      procs
  in
  let router =
    match Router.create endpoints with
    | Ok r -> r
    | Error m -> failwith ("rt: router create: " ^ m)
  in
  let front = Filename.concat dir "front.sock" in
  let front_stop = Transport.stopper () in
  let bound = Atomic.make false in
  let front_dom =
    Domain.spawn (fun () ->
        Router.serve
          ~on_bound:(fun _ -> Atomic.set bound true)
          ~stop:front_stop router ~socket_path:front)
  in
  while not (Atomic.get bound) do
    Unix.sleepf 0.002
  done;
  Fun.protect
    ~finally:(fun () ->
      Router.shutdown router;
      Transport.request_stop front_stop;
      Domain.join front_dom;
      Transport.close_stopper front_stop;
      List.iter stop_shard procs;
      (try
         Sys.readdir dir
         |> Array.iter (fun f -> Sys.remove (Filename.concat dir f))
       with Sys_error _ -> ());
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f ~router ~front ~procs)

let batch_over socket insts =
  match Client.connect_unix socket with
  | Error m -> failwith ("rt: connect: " ^ m)
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let ic = Unix.in_channel_of_descr fd in
          let oc = Unix.out_channel_of_descr fd in
          Client.run_batch ~ic ~oc ~params insts)

let count_outcomes (result : Client.batch_result) =
  Array.fold_left
    (fun (solved, cached, failed) resp ->
      match resp with
      | Some (Proto.Solved { summary; _ }) ->
          if summary.Proto.cached then (solved, cached + 1, failed)
          else (solved + 1, cached, failed)
      | _ -> (solved, cached, failed + 1))
    (0, 0, 0) result.Client.responses

let run () =
  Bench_util.section "RT   consistent-hash router over a 4-shard fleet";
  let distinct = 16 and replays = 4 and shards = 4 in
  let insts = instances ~count:distinct 7 in
  with_fleet ~shards ~workers:2 @@ fun ~router ~front ~procs ->
  (* Affinity ground truth: where the ring says each instance lives. *)
  let owners =
    List.map
      (fun (path, tasks) ->
        let key =
          Fingerprint.solve_key ~problem:"sap"
            ~algorithm:params.Proto.algorithm ~seed:params.Proto.seed path tasks
        in
        match Router.owner_for router ~key with
        | Some o -> o
        | None -> failwith "rt: ring owns nothing")
      insts
  in
  let spread = List.length (List.sort_uniq String.compare owners) in
  if spread < 2 then failwith "rt: all keys hashed to one shard";
  (* Deterministic pass: each replay of the batch repeats the same 16
     fingerprints, so every request after the first visit is a cache hit
     on its owning shard. *)
  let sent = ref 0 and solved = ref 0 and cached = ref 0 and failed = ref 0 in
  let _, dt_router =
    Bench_util.timed (fun () ->
        for _ = 1 to replays do
          let result = batch_over front insts in
          let s, c, f = count_outcomes result in
          sent := !sent + List.length insts;
          solved := !solved + s;
          cached := !cached + c;
          failed := !failed + f
        done)
  in
  if !sent <> distinct * replays then
    failwith (Printf.sprintf "rt: sent %d, wanted %d" !sent (distinct * replays));
  if !solved <> distinct then
    failwith
      (Printf.sprintf "rt: %d fresh solves, wanted %d (one per instance)"
         !solved distinct);
  if !cached <> !sent - distinct then
    failwith (Printf.sprintf "rt: %d cache hits, wanted %d" !cached (!sent - distinct));
  if !failed <> 0 then failwith (Printf.sprintf "rt: %d failures" !failed);
  (* Affinity evidence: every cache hit landed on the ring owner, so the
     per-shard hit totals must sum to replays-1 visits per instance. *)
  Obs.Metrics.add c_sent !sent;
  Obs.Metrics.add c_solved !solved;
  Obs.Metrics.add c_cache_hits !cached;
  Obs.Metrics.add c_failures !failed;
  (* Throughput pass: the identical cold-start workload against one
     fresh standalone shard (same per-shard config), so the gauges
     compare fleet fan-out to the single-process deployment it replaces.
     Wall-clock only — recorded as gauges, not gated. *)
  ignore procs;
  let dir = Filename.dirname front in
  let lone = start_shard ~dir ~name:"lone" ~workers:2 in
  let _, dt_single =
    Bench_util.timed (fun () ->
        for _ = 1 to replays do
          ignore (batch_over lone.sp_socket insts)
        done)
  in
  stop_shard lone;
  let router_rps = float_of_int !sent /. Float.max 1e-9 dt_router in
  let single_rps = float_of_int !sent /. Float.max 1e-9 dt_single in
  Obs.Metrics.set g_router_rps router_rps;
  Obs.Metrics.set g_single_rps single_rps;
  Obs.Metrics.set g_speedup (router_rps /. Float.max 1e-9 single_rps);
  Util.Table.print
    ~header:
      [ "shards"; "sent"; "solved"; "cached"; "spread"; "router req/s"; "single req/s"; "cold s" ]
    [
      [
        string_of_int shards;
        string_of_int !sent;
        string_of_int !solved;
        string_of_int !cached;
        string_of_int spread;
        Util.Table.float_cell router_rps;
        Util.Table.float_cell single_rps;
        Util.Table.float_cell dt_router;
      ];
    ]
