(* LG — closed-loop load-generator scenario over the in-process server:
   the Lab.Loadgen instance mix (16 distinct uniform-mixed instances,
   seed 7, cycled over 64 requests) driven one request at a time through
   Server.handle.  The closed loop makes the shape fully deterministic —
   the first pass over each distinct instance misses the cache, every
   revisit hits — so solved/cached/failure counts gate behaviour in
   bench-diff, while the wall-clock side (achieved rps, latency
   percentiles) lands in gauges and *latency*/*seconds* leaves the gate
   only compares under --time-factor. *)

module Server = Sap_server.Server
module Loadgen = Lab.Loadgen

let c_sent = Obs.Metrics.counter "bench.lg.sent"

let c_solved = Obs.Metrics.counter "bench.lg.solved"

let c_cache_hits = Obs.Metrics.counter "bench.lg.cache_hits"

let c_failures = Obs.Metrics.counter "bench.lg.failures"

let g_rps = Obs.Metrics.gauge "bench.lg.achieved_rps"

let h_run = Obs.Metrics.histogram "bench.lg.run_seconds"

let config =
  {
    Loadgen.default_config with
    Loadgen.rps = 64.0;
    duration = 1.0;
    distinct = 16;
    seed = 7;
    scrape_stats = false;
  }

let run () =
  Bench_util.section "LG   closed-loop load generator (deterministic mix)";
  let srv =
    Server.create
      ~config:{ Server.default_config with Server.workers = Some 4 }
      ()
  in
  Fun.protect ~finally:(fun () -> Server.drain srv) @@ fun () ->
  let result, dt =
    Bench_util.timed (fun () ->
        Obs.Metrics.time h_run (fun () ->
            Loadgen.run_closed ~handle:(Server.handle srv) config))
  in
  match result with
  | Error m -> failwith ("lg: " ^ m)
  | Ok r ->
      let distinct = config.Loadgen.distinct in
      let n = r.Loadgen.sent in
      if n <> 64 then failwith (Printf.sprintf "lg: sent %d requests, wanted 64" n);
      if r.Loadgen.solved <> distinct then
        failwith
          (Printf.sprintf "lg: %d fresh solves, wanted %d (one per distinct instance)"
             r.Loadgen.solved distinct);
      if r.Loadgen.cached <> n - distinct then
        failwith
          (Printf.sprintf "lg: %d cache hits, wanted %d" r.Loadgen.cached
             (n - distinct));
      let failures = r.Loadgen.timeouts + r.Loadgen.errors + r.Loadgen.lost in
      if failures <> 0 then
        failwith (Printf.sprintf "lg: %d requests failed" failures);
      Obs.Metrics.add c_sent n;
      Obs.Metrics.add c_solved r.Loadgen.solved;
      Obs.Metrics.add c_cache_hits r.Loadgen.cached;
      Obs.Metrics.add c_failures failures;
      Obs.Metrics.set g_rps r.Loadgen.achieved_rps;
      let ms q = 1000.0 *. Obs.Metrics.quantile r.Loadgen.latency q in
      Util.Table.print
        ~header:
          [ "requests"; "solved"; "cached"; "p50 ms"; "p99 ms"; "req/s"; "seconds" ]
        [
          [
            string_of_int n;
            string_of_int r.Loadgen.solved;
            string_of_int r.Loadgen.cached;
            Util.Table.float_cell (ms 0.5);
            Util.Table.float_cell (ms 0.99);
            Util.Table.float_cell r.Loadgen.achieved_rps;
            Util.Table.float_cell dt;
          ];
        ]
