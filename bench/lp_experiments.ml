(* LPH — LP-heavy stress scenario: many small tasks spread over many
   Strip-Pack bands, so the wall time is dominated by per-band UFPP LP
   solves (plus one full-instance LP per size).  This is the workload the
   simplex core is gated on: `bench.lp_heavy.seconds` lands in the stats
   report, `sap_cli bench-diff --time-factor` compares it against
   bench/baseline.json, and the weight/value gauges pin the solutions
   themselves — a faster solver must place exactly the same weight. *)

module Path = Core.Path

let h_seconds = Obs.Metrics.histogram "bench.lp_heavy.seconds"

let g_strip_weight = Obs.Metrics.gauge "bench.lp_heavy.strip_weight"

let g_lp_value = Obs.Metrics.gauge "bench.lp_heavy.lp_value"

let instance ~n ~edges seed =
  (* A wide capacity spread puts bottlenecks across many powers of two,
     i.e. many Strip-Pack bands, each with its own LP. *)
  let g = Util.Prng.create seed in
  let path =
    Gen.Profiles.random_walk ~prng:g ~edges ~start:256 ~max_step:96 ~min_cap:8
  in
  let tasks = Gen.Workloads.small_tasks ~prng:g ~path ~n ~delta:0.25 () in
  (path, tasks)

let run () =
  Bench_util.section
    "LPH  LP-heavy strip-pack (many small tasks, many bands; seconds)";
  let sizes = [ (800, 64, 12); (1600, 96, 13); (3200, 128, 14) ] in
  let total_weight = ref 0.0 in
  let total_lp = ref 0.0 in
  let rows =
    List.map
      (fun (n, edges, seed) ->
        let path, tasks = instance ~n ~edges seed in
        let (w, lp_v), dt =
          Bench_util.timed (fun () ->
              Obs.Metrics.time h_seconds (fun () ->
                  let sol =
                    Sap.Small.strip_pack ~rounding:(`Lp 16)
                      ~prng:(Util.Prng.create 97) path tasks
                  in
                  (match Core.Checker.sap_feasible path sol with
                  | Ok () -> ()
                  | Error m -> failwith ("lp_heavy: infeasible solution: " ^ m));
                  let lp = Lp.Ufpp_lp.solve path tasks in
                  (Core.Solution.sap_weight sol, lp.Lp.Ufpp_lp.value)))
        in
        total_weight := !total_weight +. w;
        total_lp := !total_lp +. lp_v;
        [
          Printf.sprintf "n=%d,m=%d" n edges;
          Util.Table.float_cell dt;
          Util.Table.float_cell w;
          Util.Table.float_cell lp_v;
        ])
      sizes
  in
  Obs.Metrics.set g_strip_weight !total_weight;
  Obs.Metrics.set g_lp_value !total_lp;
  Util.Table.print
    ~header:[ "instance"; "seconds"; "strip weight"; "LP value" ]
    rows
