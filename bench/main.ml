(* The experiment harness: regenerates every figure (F1-F8) and every
   theorem's empirical ratio table (T1-T5, A1, L3, S2, RHO), then the
   bechamel runtime suite (S1).  EXPERIMENTS.md records the output of a
   reference run next to the paper's claims.

   Run with:  dune exec bench/main.exe
   Pass "quick" to skip the bechamel timing section. *)

let () =
  let quick = Array.exists (( = ) "quick") Sys.argv in
  let t0 = Unix.gettimeofday () in
  print_endline "SAP reproduction — experiment harness";
  print_endline "paper: Bar-Yehuda, Beder, Rawitz — A Constant Factor Approximation";
  print_endline "       Algorithm for the Storage Allocation Problem (SPAA'13 / Algorithmica'16)";
  F_experiments.run_all ();
  T_experiments.run_all ();
  Abl_experiments.run_all ();
  Dsa_experiments.run ();
  Ufpp_experiments.run ();
  Worst_experiments.run ();
  Scale_experiments.run ();
  if not quick then Timing.run ();
  Printf.printf "\nall experiments completed in %.1fs\n" (Unix.gettimeofday () -. t0)
