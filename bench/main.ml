(* The experiment harness: regenerates every figure (F1-F8) and every
   theorem's empirical ratio table (T1-T5, A1, L3, S2, RHO), then the
   bechamel runtime suite (S1).  EXPERIMENTS.md records the output of a
   reference run next to the paper's claims.

   Run with:  dune exec bench/main.exe
   Pass "quick" to skip the bechamel timing section.
   Pass "--stats-json FILE" to collect the solver-internal counters
   (sap-stats v1, the same schema sap_cli emits) across the whole run, so
   BENCH_*.json trajectories can track DP state counts, simplex iterations
   and rounding losses, not just wall time.  Collection stays off without
   the flag, keeping the timed sections (S1) unperturbed.
   Pass "--compact" to drop the span trees from that report (metric
   summaries only — the form committed as bench/baseline.json; bench-diff
   ignores spans either way). *)

let stats_json_target () =
  let n = Array.length Sys.argv in
  let rec scan i =
    if i >= n then None
    else if Sys.argv.(i) = "--stats-json" then
      if i + 1 < n then Some Sys.argv.(i + 1)
      else begin
        (* A trailing flag silently dropping the report is worse than
           refusing to run. *)
        prerr_endline "error: --stats-json requires a file argument";
        prerr_endline "usage: bench/main.exe [quick] [--stats-json FILE]";
        exit 2
      end
    else scan (i + 1)
  in
  scan 1

let () =
  let quick = Array.exists (( = ) "quick") Sys.argv in
  let compact = Array.exists (( = ) "--compact") Sys.argv in
  let stats_json = stats_json_target () in
  if stats_json <> None then
    if compact then Obs.Metrics.enable () else Obs.Report.enable_all ();
  let t0 = Obs.Clock.monotonic_seconds () in
  print_endline "SAP reproduction — experiment harness";
  print_endline "paper: Bar-Yehuda, Beder, Rawitz — A Constant Factor Approximation";
  print_endline "       Algorithm for the Storage Allocation Problem (SPAA'13 / Algorithmica'16)";
  F_experiments.run_all ();
  T_experiments.run_all ();
  Abl_experiments.run_all ();
  Dsa_experiments.run ();
  Ufpp_experiments.run ();
  Worst_experiments.run ();
  Scale_experiments.run ();
  Lp_experiments.run ();
  Srv_experiments.run ();
  Lg_experiments.run ();
  Rt_experiments.run ();
  Cr_experiments.run ();
  Rd_experiments.run ();
  if not quick then Timing.run ();
  let elapsed = Obs.Clock.monotonic_seconds () -. t0 in
  Printf.printf "\nall experiments completed in %.1fs\n" elapsed;
  match stats_json with
  | None -> ()
  | Some file ->
      let report =
        Obs.Report.build
          ~extra:
            [
              ("command", Obs.Json.String "bench");
              ("quick", Obs.Json.Bool quick);
              ("time_seconds", Obs.Json.Float elapsed);
            ]
          ~include_spans:(not compact) ()
      in
      Obs.Report.write_file file report;
      Printf.printf "wrote solver metrics to %s\n" file
