(* Capacity profiles shared by the T experiments. *)

let medium_path g =
  match Util.Prng.int g 3 with
  | 0 ->
      Gen.Profiles.uniform
        ~edges:(3 + Util.Prng.int g 4)
        ~capacity:(12 + Util.Prng.int g 12)
  | 1 ->
      Gen.Profiles.valley
        ~edges:(4 + Util.Prng.int g 4)
        ~high:24
        ~low:(8 + Util.Prng.int g 8)
  | _ ->
      Gen.Profiles.random_walk ~prng:g
        ~edges:(4 + Util.Prng.int g 4)
        ~start:(16 + Util.Prng.int g 8)
        ~max_step:4 ~min_cap:8

let big_path g =
  match Util.Prng.int g 3 with
  | 0 -> Gen.Profiles.staircase ~edges:18 ~steps:3 ~base:16
  | 1 -> Gen.Profiles.valley ~edges:18 ~high:64 ~low:16
  | _ -> Gen.Profiles.random_walk ~prng:g ~edges:18 ~start:48 ~max_step:6 ~min_cap:16
