(* ABL — ablations over the design choices DESIGN.md calls out:
   ABL1  Elevator: Lemma 15 partition vs the direct elevated DP
   ABL2  strip transform engine: first fit vs buddy (retention loss)
   ABL3  Elevator DP state cap: solution quality vs cap
   ABL4  LP-rounding trials: weight vs randomized-trial budget
   ABL5  AlmostUniform ell: the Lemma 9/10 ell/(ell+q) trade-off, measured
   ABL6  Combine delta threshold: where to cut small vs medium
   ABL7  ring knapsack eps: FPTAS precision vs candidate weight *)

module Task = Core.Task
module Path = Core.Path

let band_instance seed =
  let g = Util.Prng.create seed in
  let k = 4 and ell = 1 in
  let cap = 1 lsl (k + ell) in
  let caps = Array.init 6 (fun _ -> (1 lsl k) + Util.Prng.int g (cap - (1 lsl k))) in
  let path = Path.create caps in
  (path, Gen.Workloads.ratio_tasks ~prng:g ~path ~n:8 ~lo:0.25 ~hi:0.5 ())

let abl1 () =
  Bench_util.section "ABL1  Elevator: partition (Lemma 15) vs direct elevated DP";
  let rows =
    Bench_util.seeds ~base:2000 ~count:10
    |> List.map (fun seed ->
           let path, tasks = band_instance seed in
           let part, t_part =
             Bench_util.timed (fun () ->
                 Sap.Elevator.solve ~k:4 ~ell:1 ~q:2 ~strategy:`Partition path tasks)
           in
           let direct, t_direct =
             Bench_util.timed (fun () ->
                 Sap.Elevator.solve ~k:4 ~ell:1 ~q:2 ~strategy:`Direct path tasks)
           in
           let wp = Core.Solution.sap_weight part.Sap.Elevator.solution in
           let wd = Core.Solution.sap_weight direct.Sap.Elevator.solution in
           [
             string_of_int seed;
             Util.Table.float_cell ~digits:1 wp;
             Util.Table.float_cell ~digits:1 wd;
             Util.Table.float_cell (wd /. Float.max 1e-9 wp);
             Util.Table.float_cell ~digits:1 (t_part *. 1e3);
             Util.Table.float_cell ~digits:1 (t_direct *. 1e3);
           ])
  in
  Util.Table.print
    ~header:[ "seed"; "partition w"; "direct w"; "direct/part"; "part ms"; "direct ms" ]
    rows;
  print_endline
    "  (the direct DP is never lighter — it optimises over all elevated solutions)"

let abl2 () =
  Bench_util.section "ABL2  Strip transform engine: first fit vs buddy (weight loss)";
  let rows =
    Bench_util.seeds ~base:2100 ~count:8
    |> List.map (fun seed ->
           let g = Util.Prng.create seed in
           let height = 64 in
           let edges = 8 in
           let path = Path.uniform ~edges ~capacity:(height / 2) in
           let tasks =
             Gen.Workloads.small_tasks ~prng:g ~path ~n:40 ~delta:0.2 ()
             |> Ufpp.Greedy.solve path
           in
           let ff = Dsa.Strip_transform.transform ~engine:`First_fit ~height ~edges tasks in
           let bd = Dsa.Strip_transform.transform ~engine:`Buddy ~height ~edges tasks in
           [
             string_of_int seed;
             string_of_int (List.length tasks);
             Util.Table.float_cell (Dsa.Strip_transform.loss_fraction ff);
             Util.Table.float_cell (Dsa.Strip_transform.loss_fraction bd);
           ])
  in
  Util.Table.print
    ~header:[ "seed"; "input tasks"; "loss (first fit)"; "loss (buddy)" ]
    rows;
  print_endline "  (Lemma 4's bound would be 4*delta = 0.8 here; both engines stay far below)"

let abl3 () =
  Bench_util.section "ABL3  Elevator DP state cap: quality vs cap";
  let path, tasks = band_instance 2217 in
  let full = Sap.Elevator.optimal_band ~cap:32 path tasks in
  let w_full = Core.Solution.sap_weight full.Sap.Elevator.solution in
  let rows =
    List.map
      (fun cap ->
        let r = Sap.Elevator.optimal_band ~cap:32 ~max_states:cap path tasks in
        let w = Core.Solution.sap_weight r.Sap.Elevator.solution in
        [
          string_of_int cap;
          Util.Table.float_cell ~digits:1 w;
          Util.Table.float_cell (w /. Float.max 1e-9 w_full);
          (if r.Sap.Elevator.exact then "yes" else "no");
        ])
      [ 1; 4; 16; 64; 256; 20000 ]
  in
  Util.Table.print ~header:[ "state cap"; "weight"; "vs uncapped"; "exact?" ] rows

let abl4 () =
  Bench_util.section "ABL4  LP rounding: weight vs randomized-trial budget";
  let seeds = Bench_util.seeds ~base:2300 ~count:6 in
  let rows =
    List.map
      (fun trials ->
        let weights =
          List.map
            (fun seed ->
              let g = Util.Prng.create seed in
              let b = 32 in
              let path = Path.create (Array.init 8 (fun _ -> b + Util.Prng.int g b)) in
              let tasks = Gen.Workloads.small_tasks ~prng:g ~path ~n:40 ~delta:0.2 () in
              let sol =
                Sap.Small.solve_band ~b ~rounding:(`Lp trials)
                  ~prng:(Util.Prng.create (seed + 1)) path tasks
              in
              Core.Solution.sap_weight sol)
            seeds
        in
        [
          string_of_int trials;
          Util.Table.float_cell ~digits:1 (Util.Stats.mean weights);
        ])
      [ 0; 1; 4; 16; 64 ]
  in
  Util.Table.print ~header:[ "trials"; "mean strip weight" ] rows;
  print_endline "  (trials = 0 is the deterministic greedy-density rounding alone)"

let abl5 () =
  Bench_util.section "ABL5  AlmostUniform ell: the ell/(ell+q) trade-off (Lemmas 9/10)";
  let instances =
    Bench_util.batch ~count:8 ~base:2400 (fun seed ->
        let g = Util.Prng.create seed in
        let path = Gen.Profiles.staircase ~edges:10 ~steps:3 ~base:16 in
        (path, Gen.Workloads.ratio_tasks ~prng:g ~path ~n:14 ~lo:0.25 ~hi:0.5 ()))
  in
  let rows =
    List.map
      (fun ell ->
        let weights, times =
          List.split
            (List.map
               (fun (path, tasks) ->
                 let r, dt =
                   Bench_util.timed (fun () ->
                       Sap.Almost_uniform.run ~ell ~q:2 path tasks)
                 in
                 (Core.Solution.sap_weight r.Sap.Almost_uniform.solution, dt))
               instances)
        in
        [
          string_of_int ell;
          Util.Table.float_cell ~digits:2
            (float_of_int ell /. float_of_int (ell + 2));
          Util.Table.float_cell ~digits:1 (Util.Stats.mean weights);
          Util.Table.float_cell ~digits:1 (1e3 *. Util.Stats.mean times);
        ])
      [ 1; 2; 4 ]
  in
  Util.Table.print
    ~header:[ "ell"; "theory factor ell/(ell+q)"; "mean weight"; "mean ms" ]
    rows

let abl6 () =
  Bench_util.section "ABL6  Combine: the small/medium delta threshold";
  let instances =
    Bench_util.batch ~count:8 ~base:2500 (fun seed ->
        let g = Util.Prng.create seed in
        let path = Helpers_path.big_path g in
        (path, Gen.Workloads.mixed_tasks ~prng:g ~path ~n:40 ()))
  in
  let rows =
    List.map
      (fun delta ->
        let weights =
          List.map
            (fun (path, tasks) ->
              let config = { Sap.Combine.default_config with Sap.Combine.delta } in
              Core.Solution.sap_weight (Sap.Combine.solve ~config path tasks))
            instances
        in
        [ Util.Table.float_cell delta; Util.Table.float_cell ~digits:1 (Util.Stats.mean weights) ])
      [ 0.1; 0.25; 0.4; 0.5 ]
  in
  Util.Table.print ~header:[ "delta"; "mean combine weight" ] rows;
  print_endline "  (theory wants a microscopic delta; in practice the split barely matters)"

let abl7 () =
  Bench_util.section "ABL7  Ring knapsack FPTAS eps: precision vs candidate weight";
  let rings =
    List.map
      (fun seed ->
        let prng = Util.Prng.create seed in
        Gen.Ring_gen.random ~prng ~edges:8 ~n:12 ~cap_lo:12 ~cap_hi:24 ~ratio_lo:0.0
          ~ratio_hi:0.8)
      (Bench_util.seeds ~base:2600 ~count:6)
  in
  let rows =
    List.map
      (fun eps ->
        let weights =
          List.map
            (fun ring ->
              let r = Sap.Ring_algo.solve_report ~knapsack_eps:eps ring in
              r.Sap.Ring_algo.through_weight)
            rings
        in
        [ Util.Table.float_cell eps; Util.Table.float_cell ~digits:1 (Util.Stats.mean weights) ])
      [ 0.5; 0.2; 0.1; 0.02 ]
  in
  Util.Table.print ~header:[ "eps"; "mean through-candidate weight" ] rows

let run_all () =
  abl1 ();
  abl2 ();
  abl3 ();
  abl4 ();
  abl5 ();
  abl6 ();
  abl7 ()
