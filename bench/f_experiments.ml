(* Experiments F1..F8: one per figure of the paper.  Each reconstructs the
   figure's object programmatically and machine-checks the claim the figure
   illustrates.  See EXPERIMENTS.md for the index. *)

module Task = Core.Task
module Path = Core.Path

let verdict name ok =
  Printf.printf "  [%s] %s\n" (if ok then "PASS" else "FAIL") name

(* F1 — Fig. 1(a),(b): UFPP-feasible task sets with no SAP realisation. *)
let f1 () =
  Bench_util.section "F1  Fig.1: UFPP feasibility does not imply SAP feasibility";
  let run label (path, tasks) =
    Bench_util.subsection label;
    Printf.printf "capacities: %s\n"
      (String.concat " " (Array.to_list (Path.capacities path) |> List.map string_of_int));
    List.iter (fun t -> Format.printf "  %a@." Task.pp t) tasks;
    let ufpp_ok = Result.is_ok (Core.Checker.ufpp_feasible path tasks) in
    let sap_none = Exact.Sap_brute.realizable path tasks = None in
    verdict "all tasks UFPP-feasible (loads fit)" ufpp_ok;
    verdict "no height assignment exists (exact search)" sap_none;
    let sap_opt = Exact.Sap_brute.value path tasks in
    let ufpp_opt = Ufpp.Exact_bb.value path tasks in
    Printf.printf "  weight gap: UFPP OPT = %.1f vs SAP OPT = %.1f\n" ufpp_opt sap_opt
  in
  run "Fig.1(a): capacities (1,2,1), two unit tasks" Gen.Paper_figures.fig1a;
  run "Fig.1(b): uniform capacity 4 (searched witness, cf. [18])"
    (Gen.Paper_figures.fig1b ~seed:3)

(* F2 — Fig. 2: delta-smallness depends on the bottleneck, not the edge. *)
let f2 () =
  Bench_util.section "F2  Fig.2: delta-small classification under two profiles";
  let table label (path, tasks) delta =
    Bench_util.subsection label;
    let rows =
      List.map
        (fun (j : Task.t) ->
          let b = Path.bottleneck_of path j in
          [
            string_of_int j.Task.id;
            Printf.sprintf "[%d,%d]" j.Task.first_edge j.Task.last_edge;
            string_of_int j.Task.demand;
            string_of_int b;
            Util.Table.float_cell (float_of_int j.Task.demand /. float_of_int b);
            (if Core.Classify.is_small path ~delta j then "small" else "large");
          ])
        tasks
    in
    Util.Table.print
      ~header:[ "task"; "span"; "d"; "b(j)"; "d/b"; Printf.sprintf "delta=%.3f" delta ]
      rows
  in
  table "Fig.2(a): uniform capacities" Gen.Paper_figures.fig2_uniform 0.125;
  table "Fig.2(b): valley capacities" Gen.Paper_figures.fig2_valley 0.125

(* F3 — Fig. 3 / Observations 2 & 7: clipping capacities above the band
   ceiling changes nothing. *)
let f3 () =
  Bench_util.section "F3  Fig.3: capacity clipping above a band is free (Obs. 2/7)";
  let prng = Util.Prng.create 31 in
  let path = Gen.Profiles.valley ~edges:6 ~high:60 ~low:16 in
  let tasks = Gen.Workloads.small_tasks ~prng ~path ~n:7 ~delta:0.3 () in
  (* Every bottleneck here lies in [16, 32): clip at 32. *)
  let clipped = Path.clip path 32 in
  let opt_full = Exact.Sap_brute.value path tasks in
  let opt_clip = Exact.Sap_brute.value clipped tasks in
  Printf.printf "  capacities:        %s\n"
    (String.concat " " (Array.to_list (Path.capacities path) |> List.map string_of_int));
  Printf.printf "  clipped:           %s\n"
    (String.concat " " (Array.to_list (Path.capacities clipped) |> List.map string_of_int));
  Printf.printf "  exact OPT full:    %.1f\n" opt_full;
  Printf.printf "  exact OPT clipped: %.1f\n" opt_clip;
  verdict "identical optima" (Float.abs (opt_full -. opt_clip) < 1e-9)

(* F4 — Fig. 4 / Algorithm Strip-Pack: bands packed in strips, stacked. *)
let f4 () =
  Bench_util.section "F4  Fig.4: Strip-Pack computes per-band strips and stacks them";
  let prng = Util.Prng.create 41 in
  let path = Gen.Profiles.staircase ~edges:12 ~steps:3 ~base:16 in
  let tasks = Gen.Workloads.small_tasks ~prng ~path ~n:30 ~delta:0.25 () in
  let sol = Sap.Small.strip_pack ~rounding:(`Lp 16) ~prng path tasks in
  verdict "stacked solution feasible" (Result.is_ok (Core.Checker.sap_feasible path sol));
  let bands = Core.Classify.strip_bands path tasks in
  let rows =
    List.map
      (fun (t, band_tasks) ->
        let in_sol =
          List.filter
            (fun ((j : Task.t), _) ->
              Core.Classify.floor_log2 (Path.bottleneck_of path j) = t)
            sol
        in
        [
          string_of_int t;
          Printf.sprintf "[%d,%d)" (1 lsl t) (1 lsl (t + 1));
          string_of_int (List.length band_tasks);
          string_of_int (List.length in_sol);
          Printf.sprintf "[%d,%d)" (1 lsl (t - 1)) (1 lsl t);
          Util.Table.float_cell ~digits:1 (Core.Solution.sap_weight in_sol);
        ])
      bands
  in
  Util.Table.print
    ~header:[ "band t"; "bottlenecks"; "tasks"; "scheduled"; "strip"; "weight" ]
    rows;
  verdict "every task inside its band's strip"
    (List.for_all
       (fun ((j : Task.t), h) ->
         let t = Core.Classify.floor_log2 (Path.bottleneck_of path j) in
         (1 lsl (t - 1)) <= h && h + j.Task.demand <= 1 lsl t)
       sol)

(* F5 — Fig. 5 / Observation 11: gravity. *)
let f5 () =
  Bench_util.section "F5  Fig.5: applying gravity to a lifted solution (Obs. 11)";
  let prng = Util.Prng.create 51 in
  let path = Path.uniform ~edges:6 ~capacity:24 in
  let tasks = Gen.Workloads.mixed_tasks ~prng ~path ~n:7 () in
  let sol = Exact.Sap_brute.solve path tasks in
  (* Lift everything that has room, then settle. *)
  let lifted =
    List.map
      (fun ((j : Task.t), h) ->
        let slack = Path.bottleneck_of path j - (h + j.Task.demand) in
        (j, h + max 0 (slack / 2)))
      sol
  in
  let lifted =
    if Result.is_ok (Core.Checker.sap_feasible path lifted) then lifted else sol
  in
  let settled = Core.Gravity.settle path lifted in
  let total s = List.fold_left (fun acc (_, h) -> acc + h) 0 s in
  Printf.printf "  sum of heights lifted:  %d\n" (total lifted);
  Printf.printf "  sum of heights settled: %d\n" (total settled);
  verdict "settled solution feasible"
    (Result.is_ok (Core.Checker.sap_feasible path settled));
  verdict "every task rests on ground or on another task"
    (Core.Gravity.is_settled path settled);
  verdict "gravity never lifts"
    (List.for_all (fun (j, h) -> h <= Core.Solution.sap_height lifted j) settled)

(* F6 — Fig. 6 / Lemma 14: partition into two beta-elevated solutions. *)
let f6 () =
  Bench_util.section "F6  Fig.6: partitioning an optimal band solution (Lemma 14)";
  let prng = Util.Prng.create 61 in
  let k = 4 and ell = 1 and q = 2 in
  let cap = 1 lsl (k + ell) in
  let caps = Array.init 6 (fun _ -> (1 lsl k) + Util.Prng.int prng (cap - (1 lsl k))) in
  let path = Path.create caps in
  let tasks = Gen.Workloads.ratio_tasks ~prng ~path ~n:8 ~lo:0.25 ~hi:0.5 () in
  let r = Sap.Elevator.optimal_band ~cap path tasks in
  let sol = r.Sap.Elevator.solution in
  let elevation = 1 lsl (k - q) in
  let s1, s2 = Sap.Elevator.partition_elevated ~elevation path ~cap sol in
  Printf.printf "  band k=%d, elevation threshold beta*2^k = %d\n" k elevation;
  Printf.printf "  optimal band weight: %.1f\n" (Core.Solution.sap_weight sol);
  Printf.printf "  S1 (lifted low tasks): %d tasks, weight %.1f\n" (List.length s1)
    (Core.Solution.sap_weight s1);
  Printf.printf "  S2 (already elevated): %d tasks, weight %.1f\n" (List.length s2)
    (Core.Solution.sap_weight s2);
  verdict "S1 feasible after lifting" (Result.is_ok (Core.Checker.sap_feasible path s1));
  verdict "both halves elevated"
    (List.for_all (fun (_, h) -> h >= elevation) (s1 @ s2));
  verdict "best half is a 2-approximation of the band optimum"
    (Float.max (Core.Solution.sap_weight s1) (Core.Solution.sap_weight s2)
     >= (Core.Solution.sap_weight sol /. 2.0) -. 1e-9)

(* F7 — Fig. 7: the task -> rectangle reduction. *)
let f7 () =
  Bench_util.section "F7  Fig.7: the rectangle reduction R(j) (Sect. 6)";
  let path = Path.create [| 8; 5; 9; 6 |] in
  let mk id first last d = Task.make ~id ~first_edge:first ~last_edge:last ~demand:d ~weight:1.0 in
  let tasks = [ mk 0 0 1 3; mk 1 1 2 4; mk 2 2 3 5; mk 3 0 3 2 ] in
  let rows =
    List.map
      (fun (j : Task.t) ->
        let b = Path.bottleneck_of path j in
        [
          string_of_int j.Task.id;
          Printf.sprintf "[%d,%d]" j.Task.first_edge j.Task.last_edge;
          string_of_int j.Task.demand;
          string_of_int b;
          string_of_int (b - j.Task.demand);
          Printf.sprintf "[%d,%d) x [%d,%d)" j.Task.first_edge (j.Task.last_edge + 1)
            (b - j.Task.demand) b;
        ])
      tasks
  in
  Util.Table.print ~header:[ "task"; "I_j"; "d_j"; "b(j)"; "l(j)"; "R(j)" ] rows;
  let rects = Rects.Rect.of_tasks path tasks in
  let g = Rects.Rect_graph.build rects in
  Printf.printf "  intersection graph edges: %d\n"
    (List.init (Rects.Rect_graph.size g) (fun i -> Rects.Rect_graph.degree g i)
    |> List.fold_left ( + ) 0 |> fun d -> d / 2)

(* F8 — Fig. 8: the C5 witness (tightness of Lemma 17 for k = 2). *)
let f8 () =
  Bench_util.section "F8  Fig.8: a 1/2-large solution whose rectangles form C5";
  let path, sol = Lazy.force Gen.Paper_figures.fig8 in
  Printf.printf "capacities: %s\n"
    (String.concat " " (Array.to_list (Path.capacities path) |> List.map string_of_int));
  List.iter
    (fun ((j : Task.t), h) ->
      Printf.printf "  task %d  I=[%d,%d] d=%d  placed at [%d,%d)   R(j) = y[%d,%d)\n"
        j.Task.id j.Task.first_edge j.Task.last_edge j.Task.demand h
        (h + j.Task.demand)
        (Path.bottleneck_of path j - j.Task.demand)
        (Path.bottleneck_of path j))
    (Core.Solution.sort_by_id sol);
  verdict "placement feasible" (Result.is_ok (Core.Checker.sap_feasible path sol));
  let tasks = Core.Solution.sap_tasks sol in
  verdict "all tasks 1/2-large"
    (List.for_all
       (fun (j : Task.t) -> 2 * j.Task.demand > Path.bottleneck_of path j)
       tasks);
  let rects = Rects.Rect.of_tasks path tasks in
  verdict "rectangle graph is a chordless 5-cycle" (Gen.Paper_figures.is_c5 rects);
  let g = Rects.Rect_graph.build rects in
  let _, colors = Rects.Rect_graph.greedy_color g in
  Printf.printf "  greedy smallest-last coloring uses %d colors (2k-1 = 3)\n" colors;
  verdict "needs 3 colors (C5 is not 2-colorable)" (colors = 3);
  let mwis = Rects.Rect_mwis.solve rects in
  Printf.printf "  exact MWIS weight on C5: %.0f (of 5 unit-weight tasks)\n"
    (Rects.Rect_mwis.weight mwis)

let run_all () =
  f1 ();
  f2 ();
  f3 ();
  f4 ();
  f5 ();
  f6 ();
  f7 ();
  f8 ()
