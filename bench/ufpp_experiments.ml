(* UFPP — the substrate problem.  The paper's foundation (Bonsma et al.)
   is a UFPP algorithm; this section measures our UFPP toolbox (composite,
   local ratio, greedy) against exact optima and the LP, and times the
   parallel combine option. *)

module Task = Core.Task
module Path = Core.Path

let tiny seed =
  let g = Util.Prng.create seed in
  let path = Helpers_path.medium_path g in
  (path, Gen.Workloads.mixed_tasks ~prng:g ~path ~n:9 ())

let bigger seed =
  let g = Util.Prng.create seed in
  let path = Helpers_path.big_path g in
  (path, Gen.Workloads.mixed_tasks ~prng:g ~path ~n:50 ())

let measure_ufpp ~reference ~algo instances =
  instances
  |> List.filter_map (fun (path, tasks) ->
         let r = reference path tasks in
         if r <= 1e-9 then None
         else begin
           let sol = algo path tasks in
           (match Core.Checker.ufpp_feasible path sol with
           | Ok () -> ()
           | Error m -> failwith ("UFPP bench: " ^ m));
           let w = Task.weight_of sol in
           Some ((if w <= 1e-9 then Float.infinity else r /. w), w, r)
         end)

let run () =
  Bench_util.section "UFPP  the substrate problem: composite vs baselines";
  Bench_util.subsection "tiny instances vs exact UFPP optimum";
  let tiny_batch = Bench_util.batch ~count:30 ~base:4000 tiny in
  let exact path ts = Ufpp.Exact_bb.value path ts in
  Util.Table.print ~header:Bench_util.ratio_header
    [
      Bench_util.ratio_row ~name:"composite (Bonsma-style)" ~bound:"measured"
        (measure_ufpp ~reference:exact ~algo:(fun p ts -> Ufpp.Composite.solve p ts) tiny_batch);
      Bench_util.ratio_row ~name:"greedy density" ~bound:"none"
        (measure_ufpp ~reference:exact ~algo:(fun p ts -> Ufpp.Greedy.solve p ts) tiny_batch);
    ];
  Bench_util.subsection "larger instances vs LP bound (n = 50)";
  let big_batch = Bench_util.batch ~count:10 ~base:4100 bigger in
  let lp path ts = Lp.Ufpp_lp.upper_bound path ts in
  Util.Table.print ~header:Bench_util.ratio_header
    [
      Bench_util.ratio_row ~name:"composite (Bonsma-style)" ~bound:"measured"
        (measure_ufpp ~reference:lp ~algo:(fun p ts -> Ufpp.Composite.solve p ts) big_batch);
      Bench_util.ratio_row ~name:"greedy density" ~bound:"none"
        (measure_ufpp ~reference:lp ~algo:(fun p ts -> Ufpp.Greedy.solve p ts) big_batch);
    ];
  Bench_util.subsection "uniform capacities: the 3-approximation of [5]";
  let unif seed =
    let g = Util.Prng.create seed in
    let path = Path.uniform ~edges:(4 + Util.Prng.int g 3) ~capacity:16 in
    (path, Gen.Workloads.mixed_tasks ~prng:g ~path ~n:9 ())
  in
  let unif_batch = Bench_util.batch ~count:30 ~base:4200 unif in
  Util.Table.print ~header:Bench_util.ratio_header
    [
      Bench_util.ratio_row ~name:"local ratio + interval MWIS [5]" ~bound:"3"
        (measure_ufpp ~reference:exact
           ~algo:(fun p ts -> Ufpp.Local_ratio_u.solve p ts)
           unif_batch);
    ];
  (* Parallel combine: same answer, wall-clock comparison. *)
  Bench_util.subsection "parallel Combine (3 domains) vs sequential, n = 150";
  let g = Util.Prng.create 4321 in
  let path = Gen.Profiles.staircase ~edges:24 ~steps:4 ~base:16 in
  let tasks = Gen.Workloads.mixed_tasks ~prng:g ~path ~n:150 () in
  let seq_sol, seq_t = Bench_util.timed (fun () -> Sap.Combine.solve path tasks) in
  let par_cfg = { Sap.Combine.default_config with Sap.Combine.parallel = true } in
  let par_sol, par_t =
    Bench_util.timed (fun () -> Sap.Combine.solve ~config:par_cfg path tasks)
  in
  Printf.printf "  sequential: %.2fs   parallel: %.2fs   speedup: %.2fx   same answer: %b\n"
    seq_t par_t (seq_t /. par_t)
    (Core.Solution.sort_by_id seq_sol = Core.Solution.sort_by_id par_sol);
  print_endline
    "  (the medium-band exact DP dominates the critical path, so 3-way part\n\
    \   parallelism buys little here; the harness instead parallelises across\n\
    \   instances — see Bench_util.measure)"
