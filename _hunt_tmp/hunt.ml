module Task = Core.Task
module Path = Core.Path

(* Hunt for Exact_bb vs Sap_brute mismatches on instances with a tiny
   palette of footprints and weights, so identical and near-identical
   tasks abound (activating the symmetry cut + memo interaction). *)
let () =
  let mismatches = ref 0 in
  for seed = 0 to 20000 do
    let prng = Util.Prng.create seed in
    let edges = 2 + Util.Prng.int prng 2 in
    let cap = 3 + Util.Prng.int prng 3 in
    let path = Path.uniform ~edges ~capacity:cap in
    let n = 4 + Util.Prng.int prng 5 in
    let tasks =
      List.init n (fun id ->
          let first_edge = Util.Prng.int prng edges in
          let last_edge = first_edge + Util.Prng.int prng (edges - first_edge) in
          let demand = 1 + Util.Prng.int prng 2 in
          (* weights from a palette of 3 values -> many exact duplicates *)
          let weight = [| 2.0; 3.0; 5.0 |].(Util.Prng.int prng 3) in
          Task.make ~id ~first_edge ~last_edge ~demand ~weight)
    in
    let bb = Lab.Exact_bb.solve path tasks in
    let brute = Exact.Sap_brute.value path tasks in
    if bb.Lab.Exact_bb.optimal && Float.abs (bb.Lab.Exact_bb.value -. brute) > 1e-6
    then begin
      incr mismatches;
      Printf.printf "MISMATCH seed=%d bb=%.3f brute=%.3f (edges=%d cap=%d n=%d)\n"
        seed bb.Lab.Exact_bb.value brute edges cap n;
      if !mismatches = 1 then begin
        List.iter
          (fun (j : Task.t) ->
            Printf.printf "  task id=%d [%d,%d] d=%d w=%.1f\n" j.Task.id
              j.Task.first_edge j.Task.last_edge j.Task.demand j.Task.weight)
          tasks
      end
    end
  done;
  Printf.printf "done: %d mismatches\n" !mismatches
