(* sap-cli: generate, solve, check and display SAP instances.

   The subcommands compose through the text format of [Sap_io.Instance_io]:

     sap_cli gen --profile staircase --edges 12 --tasks 30 -o inst.sap
     sap_cli solve -i inst.sap --algorithm combine -o sol.sap
     sap_cli check -i inst.sap -s sol.sap
     sap_cli show -i inst.sap -s sol.sap

   Observability sidecars and the bench regression gate:

     sap_cli solve -i inst.sap --stats-json stats.json --audit \
                   --trace-chrome trace.json
     sap_cli bench-diff bench/baseline.json fresh.json *)

module Task = Core.Task
module Path = Core.Path

(* Every file read funnels through here so all subcommands fail the same
   way: `error: <file>: <msg>`, exit 2, never a raw backtrace.  The
   Sys_error message from open/read usually leads with the path already;
   strip it rather than printing the file twice. *)
let read_text_file file =
  try Sap_io.Instance_io.read_file file
  with Sys_error m ->
    let prefix = file ^ ": " in
    let m =
      if String.starts_with ~prefix m then
        String.sub m (String.length prefix) (String.length m - String.length prefix)
      else m
    in
    Printf.eprintf "error: %s: %s\n" file m;
    exit 2

let read_instance file =
  match Sap_io.Instance_io.instance_of_string (read_text_file file) with
  | Ok v -> v
  | Error m ->
      Printf.eprintf "error: %s: %s\n" file m;
      exit 2

let read_solution ~tasks file =
  match Sap_io.Instance_io.solution_of_string ~tasks (read_text_file file) with
  | Ok v -> v
  | Error m ->
      Printf.eprintf "error: %s: %s\n" file m;
      exit 2

let output_string_to dest s =
  match dest with
  | None -> print_string s
  | Some file -> Sap_io.Instance_io.write_file file s

(* ---------- gen ---------- *)

let make_path ~profile ~edges ~capacity ~prng =
  match profile with
  | "uniform" -> Gen.Profiles.uniform ~edges ~capacity
  | "valley" -> Gen.Profiles.valley ~edges ~high:capacity ~low:(max 1 (capacity / 4))
  | "mountain" -> Gen.Profiles.mountain ~edges ~low:(max 1 (capacity / 4)) ~high:capacity
  | "staircase" -> Gen.Profiles.staircase ~edges ~steps:3 ~base:(max 1 (capacity / 4))
  | "walk" ->
      Gen.Profiles.random_walk ~prng ~edges ~start:capacity
        ~max_step:(max 1 (capacity / 8))
        ~min_cap:(max 1 (capacity / 4))
  | other ->
      Printf.eprintf "error: unknown profile %S\n" other;
      exit 2

let make_tasks ~kind ~prng ~path ~n =
  match kind with
  | "mixed" -> Gen.Workloads.mixed_tasks ~prng ~path ~n ()
  | "small" -> Gen.Workloads.small_tasks ~prng ~path ~n ~delta:0.25 ()
  | "medium" -> Gen.Workloads.ratio_tasks ~prng ~path ~n ~lo:0.25 ~hi:0.5 ()
  | "large" -> Gen.Workloads.ratio_tasks ~prng ~path ~n ~lo:0.5 ~hi:1.0 ()
  | "memory" ->
      let _, ts =
        Gen.Traces.memory_trace ~prng ~time_slots:(Path.num_edges path)
          ~memory:(Path.min_capacity path) ~n ~max_lifetime:6
          ~max_object:(max 1 (Path.min_capacity path / 4))
      in
      ts
  | other ->
      Printf.eprintf "error: unknown workload kind %S\n" other;
      exit 2

let gen_cmd profile edges capacity kind n seed output =
  let prng = Util.Prng.create seed in
  let path = make_path ~profile ~edges ~capacity ~prng in
  let tasks = make_tasks ~kind ~prng ~path ~n in
  output_string_to output (Sap_io.Instance_io.instance_to_string path tasks);
  0

(* ---------- solve ---------- *)

(* Every algorithm derives its parameters from [Combine.default_config] so
   standalone part runs ([--algorithm small|medium]) agree with what the
   combination would feed them; [--seed] reaches every randomized engine.
   [combine_report] captures the part-level report for the audit record. *)
let algorithms ~seed ~parallel ~combine_report =
  let dc = Sap.Combine.default_config in
  let q = Sap.Combine.q_of_beta dc.Sap.Combine.beta in
  let ell = Sap.Almost_uniform.ell_for_eps ~eps:dc.Sap.Combine.eps ~q in
  [
    ("combine", fun path ts ->
        let r =
          Sap.Combine.solve_report
            ~config:{ dc with Sap.Combine.seed; parallel } path ts
        in
        combine_report := Some r;
        r.Sap.Combine.solution);
    ("small", fun path ts ->
        Sap.Small.strip_pack ~parallel ~rounding:dc.Sap.Combine.rounding
          ~prng:(Util.Prng.create seed) path ts);
    ("medium", fun path ts ->
        (Sap.Almost_uniform.run ~ell ~q ?max_states:dc.Sap.Combine.max_states
           path ts).Sap.Almost_uniform.solution);
    ("large", fun path ts -> Sap.Large.solve path ts);
    ("sapu", fun path ts -> Sap.Sap_u.solve path ts);
    ("firstfit", fun path ts -> fst (Dsa.First_fit.pack path ts));
    ("exact", fun path ts -> Exact.Sap_brute.solve path ts);
  ]

let instance_stats_json path tasks =
  let s = Core.Instance_stats.compute path tasks in
  Obs.Json.Obj
    [
      ("num_edges", Obs.Json.Int s.Core.Instance_stats.num_edges);
      ("num_tasks", Obs.Json.Int s.Core.Instance_stats.num_tasks);
      ("min_capacity", Obs.Json.Int s.Core.Instance_stats.min_capacity);
      ("max_capacity", Obs.Json.Int s.Core.Instance_stats.max_capacity);
      ("total_weight", Obs.Json.Float s.Core.Instance_stats.total_weight);
      ("total_demand", Obs.Json.Int s.Core.Instance_stats.total_demand);
      ("max_load", Obs.Json.Int s.Core.Instance_stats.max_load);
      ("small_fraction", Obs.Json.Float s.Core.Instance_stats.small_fraction);
      ("medium_fraction", Obs.Json.Float s.Core.Instance_stats.medium_fraction);
      ("large_fraction", Obs.Json.Float s.Core.Instance_stats.large_fraction);
      ("unfit_tasks", Obs.Json.Int s.Core.Instance_stats.unfit_tasks);
      ( "bottleneck_bands",
        Obs.Json.Obj
          (List.map
             (fun (t, c) -> (string_of_int t, Obs.Json.Int c))
             s.Core.Instance_stats.bottleneck_bands) );
    ]

let solve_cmd input algorithm output quiet seed parallel stats_json audit
    trace_chrome =
  let path, tasks = read_instance input in
  let combine_report = ref None in
  let solve =
    match List.assoc_opt algorithm (algorithms ~seed ~parallel ~combine_report)
    with
    | Some f -> f
    | None ->
        Printf.eprintf "error: unknown algorithm %S (have: %s)\n" algorithm
          (String.concat ", "
             (List.map fst (algorithms ~seed ~parallel ~combine_report)));
        exit 2
  in
  let collect = stats_json <> None || trace_chrome <> None in
  if collect then Obs.Report.enable_all ();
  let t0 = Obs.Clock.monotonic_seconds () in
  let sol = solve path tasks in
  let dt = Obs.Clock.monotonic_seconds () -. t0 in
  (* Snapshot before the LP bound below runs more simplex iterations, and
     before the audit's checker/ratio metrics land. *)
  let solve_metrics =
    match stats_json with
    | None -> Obs.Json.Null
    | Some _ -> Obs.Metrics.snapshot_json ()
  in
  let solve_spans =
    match stats_json with None -> Obs.Json.Null | Some _ -> Obs.Trace.json ()
  in
  let chrome_trace =
    match trace_chrome with None -> None | Some _ -> Some (Obs.Chrome_trace.of_current ())
  in
  (match Core.Checker.sap_feasible path sol with
  | Ok () -> ()
  | Error m ->
      Printf.eprintf "internal error: infeasible solution: %s\n" m;
      exit 3);
  let lp_ub = Lp.Ufpp_lp.upper_bound path tasks in
  let weight = Core.Solution.sap_weight sol in
  let audit_json =
    match !combine_report with
    | Some r ->
        Sap.Combine.audit_json (Sap.Combine.audit ~lp_upper_bound:lp_ub path tasks r)
    | None ->
        (* Non-combine algorithms get the generic certificate: no
           per-part contributions to report. *)
        Obs.Json.Obj
          [
            ("upper_bound", Obs.Json.Float lp_ub);
            ("bound_kind", Obs.Json.String "lp");
            ("achieved_weight", Obs.Json.Float weight);
            ("total_weight", Obs.Json.Float (Task.weight_of tasks));
            ( "empirical_ratio",
              if weight > 0.0 then Obs.Json.Float (lp_ub /. weight)
              else Obs.Json.Null );
            ( "checker",
              Obs.Json.Obj
                [ ("ok", Obs.Json.Bool true); ("error", Obs.Json.Null) ] );
            ("scheduled", Obs.Json.Int (List.length sol));
            ("tasks", Obs.Json.Int (List.length tasks));
          ]
  in
  if not quiet then begin
    Printf.printf "tasks            %d\n" (List.length tasks);
    Printf.printf "scheduled        %d\n" (List.length sol);
    Printf.printf "weight           %.3f\n" weight;
    Printf.printf "total weight     %.3f\n" (Task.weight_of tasks);
    Printf.printf "lp upper bound   %.3f\n" lp_ub;
    Printf.printf "time             %.3fs\n" dt
  end;
  if audit then begin
    print_endline "--- audit ---";
    match !combine_report with
    | Some r ->
        Format.printf "%a@." Sap.Combine.pp_audit
          (Sap.Combine.audit ~lp_upper_bound:lp_ub path tasks r)
    | None ->
        Printf.printf "lp upper bound    %.3f\n" lp_ub;
        Printf.printf "achieved weight   %.3f  (of %.3f total)\n" weight
          (Task.weight_of tasks);
        if weight > 0.0 then
          Printf.printf "empirical ratio   %.3f\n" (lp_ub /. weight)
        else print_endline "empirical ratio   n/a (zero weight scheduled)";
        print_endline "checker           feasible"
  end;
  (match stats_json with
  | None -> ()
  | Some file ->
      let report =
        Obs.Json.Obj
          [
            ("schema", Obs.Json.String Obs.Report.schema_version);
            ("clock", Obs.Clock.anchor_json (Obs.Clock.anchor ()));
            ("command", Obs.Json.String "solve");
            ("algorithm", Obs.Json.String algorithm);
            ("seed", Obs.Json.Int seed);
            ("instance", instance_stats_json path tasks);
            ( "result",
              Obs.Json.Obj
                [
                  ("scheduled", Obs.Json.Int (List.length sol));
                  ("weight", Obs.Json.Float weight);
                  ("total_weight", Obs.Json.Float (Task.weight_of tasks));
                  ("lp_upper_bound", Obs.Json.Float lp_ub);
                  ("time_seconds", Obs.Json.Float dt);
                ] );
            ("audit", audit_json);
            ("metrics", solve_metrics);
            ("spans", solve_spans);
          ]
      in
      (try Obs.Report.write_file file report
       with Sys_error m ->
         Printf.eprintf "error: cannot write stats report: %s\n" m;
         exit 2));
  (match (trace_chrome, chrome_trace) with
  | Some file, Some doc -> (
      try Obs.Report.write_file file doc
      with Sys_error m ->
        Printf.eprintf "error: cannot write chrome trace: %s\n" m;
        exit 2)
  | _ -> ());
  (match output with
  | None -> ()
  | Some file -> Sap_io.Instance_io.write_file file (Sap_io.Instance_io.solution_to_string sol));
  0

(* ---------- bench-diff ---------- *)

let bench_diff_cmd old_file new_file counter_tol float_tol time_factor ignores
    show_all =
  let read_report file =
    match Obs.Json.of_string (Sap_io.Instance_io.read_file file) with
    | Ok v -> Ok v
    | Error m -> Error (file ^ ": " ^ m)
    | exception Sys_error m -> Error m
  in
  match (read_report old_file, read_report new_file) with
  | Error m, _ | _, Error m ->
      Printf.eprintf "error: %s\n" m;
      2
  | Ok old_report, Ok new_report ->
      let thresholds =
        { Obs.Diff.counter_tol; float_tol; time_factor; ignore_prefixes = ignores }
      in
      let findings = Obs.Diff.compare_reports ~thresholds ~old_report ~new_report () in
      let table = Obs.Diff.render_table ~show_all findings in
      if table <> "" then print_string table;
      print_endline (Obs.Diff.summary findings);
      let failures =
        List.filter (fun f -> Obs.Diff.is_failure f.Obs.Diff.status) findings
      in
      if failures = [] then begin
        Printf.printf "bench-diff: OK (%s vs %s)\n" old_file new_file;
        0
      end
      else begin
        Printf.printf "bench-diff: %d regression(s)\n" (List.length failures);
        1
      end

(* ---------- check ---------- *)

let check_cmd input solution_file =
  let path, tasks = read_instance input in
  let sol = read_solution ~tasks solution_file in
  match Core.Checker.sap_feasible path sol with
  | Ok () ->
      Printf.printf "feasible: %d tasks, weight %.3f\n" (List.length sol)
        (Core.Solution.sap_weight sol);
      0
  | Error m ->
      Printf.printf "INFEASIBLE: %s\n" m;
      1

(* ---------- show ---------- *)

let show_cmd input solution_file max_height svg =
  let path, tasks = read_instance input in
  let sol =
    match solution_file with
    | None -> None
    | Some file -> Some (read_solution ~tasks file)
  in
  (match svg with
  | Some file ->
      let doc =
        match sol with
        | Some s -> Viz.Svg.solution_svg path s
        | None -> Viz.Svg.profile_svg path
      in
      Sap_io.Instance_io.write_file file doc;
      Printf.printf "wrote %s\n" file
  | None -> (
      match sol with
      | None ->
          print_string (Viz.Ascii.render_loads path tasks);
          print_string (Viz.Ascii.render_profile ?max_height path)
      | Some s -> print_string (Viz.Ascii.render_solution ?max_height path s)));
  0

(* ---------- stats ---------- *)

let stats_cmd input =
  let path, tasks = read_instance input in
  let s = Core.Instance_stats.compute path tasks in
  Format.printf "%a@." Core.Instance_stats.pp s;
  0

(* ---------- serve ---------- *)

module Server = Sap_server.Server
module Transport = Sap_server.Transport
module Client = Sap_server.Client
module Proto = Sap_server.Protocol
module Router = Sap_server.Router

(* Log lines are emitted from many domains; one mutex serializes whole
   lines into the sink. *)
let log_sink_of log =
  match log with
  | None -> None
  | Some target ->
      let oc = if target = "-" then stderr else open_out target in
      let lock = Mutex.create () in
      Some
        (fun line ->
          Mutex.lock lock;
          Fun.protect
            ~finally:(fun () -> Mutex.unlock lock)
            (fun () ->
              output_string oc line;
              output_char oc '\n';
              flush oc))

let serve_cmd socket stdio workers queue cache_capacity default_timeout_ms log
    quiet =
  (match (socket, stdio) with
  | None, false ->
      Printf.eprintf "error: serve needs --socket PATH or --stdio\n";
      exit 2
  | Some _, true ->
      Printf.eprintf "error: --socket and --stdio are mutually exclusive\n";
      exit 2
  | _ -> ());
  (* Counters feed the in-band `stats` response, so collection is on for
     the server's whole lifetime (spans stay off: a long-running service
     must not accumulate an unbounded span tree). *)
  Obs.Metrics.enable ();
  let log_sink = log_sink_of log in
  let config =
    { Server.workers; queue_capacity = queue; cache_capacity; default_timeout_ms;
      log = log_sink }
  in
  let server = Server.create ~config () in
  (match socket with
  | Some path ->
      (* SIGINT/SIGTERM request a stop; the self-pipe wakes the accept
         loop immediately, it stops taking connections, every accepted
         request still gets its response, and the pool drains below — no
         abrupt kill mid-write. *)
      let stop = Transport.stopper () in
      (match Sys.os_type with
      | "Unix" ->
          let on_signal =
            Sys.Signal_handle (fun _ -> Transport.request_stop stop)
          in
          Sys.set_signal Sys.sigint on_signal;
          Sys.set_signal Sys.sigterm on_signal
      | _ -> ());
      Transport.serve_unix ~stop
        ~on_bound:(fun p ->
          if not quiet then Printf.eprintf "sap_cli serve: listening on %s\n%!" p)
        server ~socket_path:path
  | None ->
      if not quiet then Printf.eprintf "sap_cli serve: framed requests on stdin\n%!";
      Transport.serve_channels server stdin stdout);
  Server.drain server;
  if not quiet then Printf.eprintf "sap_cli serve: drained, exiting\n%!";
  0

(* ---------- batch ---------- *)

let batch_cmd socket files algorithm seed timeout_ms no_cache output_dir
    want_stats shutdown quiet =
  if files = [] then begin
    Printf.eprintf "error: batch needs at least one instance file\n";
    exit 2
  end;
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  let instances = List.map (fun f -> (f, read_instance f)) files in
  match Client.connect_unix socket with
  | Error m ->
      Printf.eprintf "error: cannot connect: %s\n" m;
      2
  | Ok fd ->
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let params =
        { Proto.algorithm; seed; timeout_ms; cache = not no_cache }
      in
      let t0 = Obs.Clock.monotonic_seconds () in
      let result =
        Client.run_batch ~ic ~oc ~params ~request_stats:want_stats
          ~request_shutdown:shutdown (List.map snd instances)
      in
      let dt = Obs.Clock.monotonic_seconds () -. t0 in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      let ok = ref 0 and cached = ref 0 and failed = ref 0 in
      List.iteri
        (fun i (file, (_, tasks)) ->
          match result.Client.responses.(i) with
          | Some (Proto.Solved { summary; solution; _ }) ->
              incr ok;
              if summary.Proto.cached then incr cached;
              if not quiet then
                Printf.printf "ok       %s  scheduled=%d/%d weight=%.3f%s\n" file
                  summary.Proto.scheduled (List.length tasks)
                  summary.Proto.weight
                  (if summary.Proto.cached then " (cached)" else "");
              (match output_dir with
              | None -> ()
              | Some dir ->
                  let out =
                    Filename.concat dir (Filename.basename file ^ ".sol")
                  in
                  Sap_io.Instance_io.write_file out
                    (Sap_io.Instance_io.solution_to_string solution))
          | Some (Proto.Timed_out _) ->
              incr failed;
              Printf.printf "timeout  %s\n" file
          | Some (Proto.Failed { code; message; _ }) ->
              incr failed;
              Printf.printf "error    %s  [%s] %s\n" file
                (Proto.error_code_to_string code)
                message
          | Some _ ->
              incr failed;
              Printf.printf "error    %s  unexpected response kind\n" file
          | None ->
              incr failed;
              Printf.printf "lost     %s  connection closed before response\n" file)
        instances;
      List.iter
        (fun m -> Printf.eprintf "warning: %s\n" m)
        result.Client.transport_errors;
      if not quiet then
        Printf.printf "batch: %d ok (%d cached), %d failed in %.3fs\n" !ok !cached
          !failed dt;
      (match result.Client.stats with
      | Some stats -> print_endline (Obs.Json.to_string_pretty stats)
      | None ->
          if want_stats then
            Printf.eprintf "warning: no stats response received\n");
      if shutdown && not result.Client.shutdown_acked then
        Printf.eprintf "warning: shutdown not acknowledged\n";
      if !failed = 0 && result.Client.transport_errors = [] then 0 else 1

(* ---------- session ---------- *)

(* Drive one online session over a socket: open, replay a churn trace as
   add/remove deltas (a resize is remove + add under the same id),
   resolve every N events, close.  Every returned solution is re-checked
   client-side — the server already checker-verifies, so a failure here
   means wire corruption, not a solver bug. *)
let session_cmd socket input churn_file resolve_every cold seed output quiet =
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  if resolve_every < 1 then begin
    Printf.eprintf "error: --resolve-every must be >= 1\n";
    exit 2
  end;
  let path, base, events =
    match (input, churn_file) with
    | Some _, Some _ ->
        Printf.eprintf "error: -i and --churn are mutually exclusive\n";
        exit 2
    | None, None ->
        Printf.eprintf "error: session needs -i INSTANCE or --churn TRACE\n";
        exit 2
    | Some file, None ->
        let path, tasks = read_instance file in
        (path, tasks, [])
    | None, Some file -> (
        match Lab.Corpus.churn_of_string (read_text_file file) with
        | Ok c ->
            (c.Lab.Corpus.churn_path, c.Lab.Corpus.churn_base, c.Lab.Corpus.churn_events)
        | Error m ->
            Printf.eprintf "error: %s: %s\n" file m;
            exit 2)
  in
  match Client.connect_unix socket with
  | Error m ->
      Printf.eprintf "error: cannot connect: %s\n" m;
      2
  | Ok fd ->
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let live = Hashtbl.create 64 in
      List.iter (fun (j : Task.t) -> Hashtbl.replace live j.Task.id j) base;
      (* Solution bodies are parsed against the client's view of the
         session task set as of the request — snapshotted per id. *)
      let snapshots = Hashtbl.create 8 in
      let tasks_for id = Hashtbl.find_opt snapshots id in
      let next_id = ref 0 in
      let fresh () =
        let id = !next_id in
        incr next_id;
        id
      in
      let failures = ref 0 in
      let fail fmt =
        Printf.ksprintf
          (fun m ->
            incr failures;
            Printf.eprintf "error: %s\n" m)
          fmt
      in
      let deltas = ref 0 and resolves = ref 0 in
      let solve_ms = ref 0.0 in
      let warm = ref 0 and repacked = ref 0 and reused = ref 0 in
      let last = ref None in
      let request req =
        let id = Proto.request_id req in
        Hashtbl.replace snapshots id
          (Hashtbl.fold (fun _ j acc -> j :: acc) live []);
        let r = Client.request ~ic ~oc ~tasks_for req in
        Hashtbl.remove snapshots id;
        r
      in
      let record what (s : Proto.session_summary) solution =
        (match Core.Checker.sap_feasible path solution with
        | Ok () -> ()
        | Error m -> fail "%s returned a checker-rejected solution: %s" what m);
        incr resolves;
        solve_ms := !solve_ms +. s.Proto.s_time_ms;
        warm := !warm + s.Proto.s_warm;
        repacked := !repacked + s.Proto.s_repacked;
        reused := !reused + s.Proto.s_reused;
        last := Some s;
        if not quiet then
          Printf.printf
            "%-8s scheduled=%d/%d weight=%.3f bands=%d repacked=%d reused=%d \
             warm=%d time=%.3fms\n"
            what s.Proto.s_scheduled s.Proto.s_tasks s.Proto.s_weight
            s.Proto.s_bands s.Proto.s_repacked s.Proto.s_reused s.Proto.s_warm
            s.Proto.s_time_ms
      in
      let sid =
        match
          request (Proto.Session_open { id = fresh (); seed; path; tasks = base })
        with
        | Ok
            (Proto.Session_reply
              { session; event = Proto.Sess_opened; summary = Some s; solution; _ })
          ->
            record "open" s solution;
            Some session
        | Ok (Proto.Failed { code; message; _ }) ->
            fail "open failed: [%s] %s" (Proto.error_code_to_string code) message;
            None
        | Ok _ ->
            fail "open: unexpected response";
            None
        | Error m ->
            fail "open: %s" m;
            None
      in
      (match sid with
      | None -> ()
      | Some sid ->
          let expect_ack what = function
            | Ok (Proto.Session_reply { event = Proto.Sess_ack; _ }) -> ()
            | Ok (Proto.Failed { code; message; _ }) ->
                fail "%s failed: [%s] %s" what
                  (Proto.error_code_to_string code)
                  message
            | Ok _ -> fail "%s: unexpected response" what
            | Error m -> fail "%s: %s" what m
          in
          let add_task (j : Task.t) =
            incr deltas;
            Hashtbl.replace live j.Task.id j;
            expect_ack "add-task"
              (request (Proto.Session_add { id = fresh (); session = sid; task = j }))
          in
          let remove_task tid =
            incr deltas;
            Hashtbl.remove live tid;
            expect_ack "remove-task"
              (request
                 (Proto.Session_remove { id = fresh (); session = sid; task_id = tid }))
          in
          let resolve () =
            match
              request (Proto.Session_resolve { id = fresh (); session = sid; cold })
            with
            | Ok
                (Proto.Session_reply
                  { event = Proto.Sess_resolved; summary = Some s; solution; _ }) ->
                record "resolve" s solution
            | Ok (Proto.Failed { code; message; _ }) ->
                fail "resolve failed: [%s] %s"
                  (Proto.error_code_to_string code)
                  message
            | Ok _ -> fail "resolve: unexpected response"
            | Error m -> fail "resolve: %s" m
          in
          let pending = ref 0 in
          List.iter
            (fun ev ->
              (match ev with
              | Lab.Corpus.Churn_add j -> add_task j
              | Lab.Corpus.Churn_remove tid -> remove_task tid
              | Lab.Corpus.Churn_resize (tid, demand) -> (
                  match Hashtbl.find_opt live tid with
                  | None -> fail "resize of unknown task %d" tid
                  | Some j ->
                      remove_task tid;
                      add_task
                        (Task.make ~id:tid ~first_edge:j.Task.first_edge
                           ~last_edge:j.Task.last_edge ~demand
                           ~weight:j.Task.weight)));
              incr pending;
              if !pending >= resolve_every then begin
                pending := 0;
                resolve ()
              end)
            events;
          if !pending > 0 || events = [] then resolve ();
          (match
             request (Proto.Session_close { id = fresh (); session = sid })
           with
          | Ok (Proto.Session_reply { event = Proto.Sess_closed; _ }) -> ()
          | Ok (Proto.Failed { code; message; _ }) ->
              fail "close failed: [%s] %s"
                (Proto.error_code_to_string code)
                message
          | Ok _ -> fail "close: unexpected response"
          | Error m -> fail "close: %s" m));
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if not quiet then
        Printf.printf
          "session: %d events, %d deltas, %d resolves (%s), %.3fms total solve, \
           %d warm-seeded, %d repacked, %d reused, %d failures\n"
          (List.length events) !deltas !resolves
          (if cold then "cold" else "warm")
          !solve_ms !warm !repacked !reused !failures;
      (match output with
      | None -> ()
      | Some file ->
          let scheduled, weight =
            match !last with
            | Some s -> (s.Proto.s_scheduled, s.Proto.s_weight)
            | None -> (0, 0.0)
          in
          let json =
            Obs.Json.Obj
              [
                ("schema", Obs.Json.String "sap-session-report v1");
                ("cold", Obs.Json.Bool cold);
                ("events", Obs.Json.Int (List.length events));
                ("deltas", Obs.Json.Int !deltas);
                ("resolves", Obs.Json.Int !resolves);
                ("solve_ms", Obs.Json.Float !solve_ms);
                ("warm_seeded", Obs.Json.Int !warm);
                ("bands_repacked", Obs.Json.Int !repacked);
                ("bands_reused", Obs.Json.Int !reused);
                ("final_scheduled", Obs.Json.Int scheduled);
                ("final_weight", Obs.Json.Float weight);
                ("failures", Obs.Json.Int !failures);
              ]
          in
          Sap_io.Instance_io.write_file file
            (Obs.Json.to_string_pretty json ^ "\n"));
      if !failures = 0 then 0 else 1

(* ---------- route ---------- *)

let route_cmd socket shards shard_sockets shard_dir vnodes shard_workers
    shard_queue shard_cache shard_timeout_ms log quiet =
  Obs.Metrics.enable ();
  (match (shards, shard_sockets) with
  | None, [] ->
      Printf.eprintf "error: route needs --shards N or --shard PATH\n";
      exit 2
  | Some _, _ :: _ ->
      Printf.eprintf "error: --shards and --shard are mutually exclusive\n";
      exit 2
  | Some n, [] when n < 1 ->
      Printf.eprintf "error: --shards must be >= 1\n";
      exit 2
  | _ -> ());
  let endpoints =
    match shard_sockets with
    | _ :: _ ->
        List.mapi
          (fun i path ->
            {
              Router.ep_name = Printf.sprintf "shard-%d" i;
              ep_socket = path;
              ep_spawn = None;
            })
          shard_sockets
    | [] ->
        let n = Option.get shards in
        let dir =
          match shard_dir with
          | Some d ->
              (try Unix.mkdir d 0o755
               with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
              d
          | None ->
              let d = Filename.temp_file "sap-shards" "" in
              Sys.remove d;
              Unix.mkdir d 0o700;
              d
        in
        (* Children are respawned with the same argv, so build it once
           per endpoint and keep it pure. *)
        let exe = Sys.executable_name in
        List.init n (fun i ->
            let name = Printf.sprintf "shard-%d" i in
            let spawn sock =
              let args =
                [ exe; "serve"; "--socket"; sock; "-q" ]
                @ (match shard_workers with
                  | Some w -> [ "--workers"; string_of_int w ]
                  | None -> [])
                @ (match shard_queue with
                  | Some q -> [ "--queue"; string_of_int q ]
                  | None -> [])
                @ [ "--cache-capacity"; string_of_int shard_cache ]
                @
                match shard_timeout_ms with
                | Some ms -> [ "--default-timeout-ms"; string_of_int ms ]
                | None -> []
              in
              Unix.create_process exe (Array.of_list args) Unix.stdin
                Unix.stdout Unix.stderr
            in
            {
              Router.ep_name = name;
              ep_socket = Filename.concat dir (name ^ ".sock");
              ep_spawn = Some spawn;
            })
  in
  let config =
    { Router.default_config with Router.vnodes; log = log_sink_of log }
  in
  match Router.create ~config endpoints with
  | Error m ->
      Printf.eprintf "error: %s\n" m;
      2
  | Ok router ->
      let stop = Transport.stopper () in
      (match Sys.os_type with
      | "Unix" ->
          let on_signal =
            Sys.Signal_handle (fun _ -> Transport.request_stop stop)
          in
          Sys.set_signal Sys.sigint on_signal;
          Sys.set_signal Sys.sigterm on_signal
      | _ -> ());
      Router.serve ~stop router
        ~on_bound:(fun p ->
          if not quiet then
            Printf.eprintf "sap_cli route: %d shard(s), listening on %s\n%!"
              (List.length endpoints) p)
        ~socket_path:socket;
      Router.shutdown router;
      if not quiet then Printf.eprintf "sap_cli route: drained, exiting\n%!";
      0

(* ---------- loadgen ---------- *)

let parse_sweep_spec s =
  match String.split_on_char ':' s with
  | [ lo; hi; step ] -> (
      match
        (float_of_string_opt lo, float_of_string_opt hi, float_of_string_opt step)
      with
      | Some lo, Some hi, Some step -> Ok (lo, hi, step)
      | _ -> Error "sweep spec must be LO:HI:STEP (numbers)")
  | _ -> Error "sweep spec must be LO:HI:STEP"

let loadgen_sweep_cmd socket cfg spec threshold output quiet =
  match parse_sweep_spec spec with
  | Error m ->
      Printf.eprintf "error: %s\n" m;
      2
  | Ok (lo, hi, step) -> (
      match
        Lab.Loadgen.sweep
          ~connect:(fun () -> Client.connect_unix socket)
          ~threshold ~lo ~hi ~step cfg
      with
      | Error m ->
          Printf.eprintf "error: %s\n" m;
          2
      | Ok sw ->
          let open Lab.Loadgen in
          let json = sweep_json sw in
          (match output with
          | Some f -> Obs.Report.write_file f json
          | None -> print_endline (Obs.Json.to_string_pretty json));
          if not quiet then begin
            List.iter
              (fun (offered, r) ->
                Printf.eprintf
                  "sweep: offered %.1f rps -> achieved %.1f rps (p99 %.3fms, %d lost)%s\n"
                  offered r.achieved_rps
                  (1000.0 *. Obs.Metrics.quantile r.latency 0.99)
                  r.lost
                  (if r.achieved_rps < threshold *. offered then "  [saturated]"
                   else ""))
              sw.sw_points;
            match sw.sw_knee with
            | Some k -> Printf.eprintf "sweep: saturation knee at %.1f rps\n" k
            | None ->
                Printf.eprintf
                  "sweep: no knee found (already saturated at %.1f rps)\n" lo
          end;
          let bad (_, r) = r.lost > 0 || r.protocol_errors <> [] in
          List.iter
            (fun (_, r) ->
              List.iter
                (fun m -> Printf.eprintf "warning: %s\n" m)
                r.protocol_errors)
            sw.sw_points;
          if List.exists bad sw.sw_points then 1 else 0)

let loadgen_cmd socket rps duration connections profile distinct algorithm seed
    timeout_ms no_cache no_scrape sweep sweep_threshold output quiet =
  (match Sys.os_type with
  | "Unix" -> Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  | _ -> ());
  let cfg =
    {
      Lab.Loadgen.rps;
      duration;
      connections;
      profile;
      distinct;
      algorithm;
      seed;
      timeout_ms;
      cache = not no_cache;
      scrape_stats = not no_scrape;
    }
  in
  match sweep with
  | Some spec -> loadgen_sweep_cmd socket cfg spec sweep_threshold output quiet
  | None -> (
  match Lab.Loadgen.run ~connect:(fun () -> Client.connect_unix socket) cfg with
  | Error m ->
      Printf.eprintf "error: %s\n" m;
      2
  | Ok r ->
      let open Lab.Loadgen in
      let json = report_json r in
      (match output with
      | Some f -> Obs.Report.write_file f json
      | None -> print_endline (Obs.Json.to_string_pretty json));
      if not quiet then begin
        let ms p = 1000.0 *. Obs.Metrics.quantile r.latency p in
        Printf.eprintf
          "loadgen: offered %.1f rps, achieved %.1f rps over %.2fs\n" r.offered_rps
          r.achieved_rps r.elapsed;
        Printf.eprintf
          "  requests: %d sent, %d completed (%d solved, %d cached, %d timeouts, %d errors, %d lost)\n"
          r.sent r.completed r.solved r.cached r.timeouts r.errors r.lost;
        if r.completed > 0 then
          Printf.eprintf "  latency: p50 %.3fms  p95 %.3fms  p99 %.3fms  max %.3fms\n"
            (ms 0.5) (ms 0.95) (ms 0.99)
            (1000.0 *. r.latency.Obs.Metrics.max);
        (match cache_hit_rate r with
        | Some h -> Printf.eprintf "  cache hit rate: %.1f%%\n" (100.0 *. h)
        | None -> ());
        if r.server_stats <> None then
          Printf.eprintf "  stats scrape: ok (mid-run snapshot in report)\n"
      end;
      List.iter (fun m -> Printf.eprintf "warning: %s\n" m) r.protocol_errors;
      if r.protocol_errors = [] && r.lost = 0 then 0 else 1)

(* ---------- lab ---------- *)

let lab_gen_cmd dir seed variants churn =
  let t = Lab.Corpus.generate ~dir ~seed ~variants () in
  Printf.printf "wrote %d instances (%d families, seed %d) + %s to %s\n"
    (List.length t.Lab.Corpus.entries)
    (List.length Lab.Corpus.families)
    seed Lab.Corpus.manifest_file dir;
  (match churn with
  | None -> ()
  | Some steps ->
      if steps < 0 then begin
        Printf.eprintf "error: --churn must be >= 0\n";
        exit 2
      end;
      let c = Lab.Corpus.generate_churn ~seed ~steps in
      let file = Filename.concat dir "churn.trace" in
      Sap_io.Instance_io.write_file file (Lab.Corpus.churn_to_string c);
      Printf.printf "wrote churn trace (%d base tasks, %d events, seed %d) to %s\n"
        (List.length c.Lab.Corpus.churn_base)
        (List.length c.Lab.Corpus.churn_events)
        seed file);
  0

let lab_run_cmd dir output max_nodes jobs gate quiet =
  match Lab.Corpus.load ~dir with
  | Error m ->
      Printf.eprintf "error: %s: %s\n" dir m;
      2
  | Ok corpus ->
      Obs.Metrics.enable ();
      let pool =
        match jobs with
        | Some j when j > 1 -> Some (Sap_server.Pool.create ~workers:j ())
        | _ -> None
      in
      Fun.protect
        ~finally:(fun () -> Option.iter Sap_server.Pool.shutdown pool)
        (fun () ->
          let report = Lab.Ratio.run ?max_nodes ?pool corpus in
          if not quiet then Format.printf "%a" Lab.Ratio.pp_summary report;
          (match output with
          | None -> ()
          | Some file -> (
              try
                Sap_io.Instance_io.write_file file
                  (Obs.Json.to_string_pretty (Lab.Ratio.report_json report) ^ "\n")
              with Sys_error m ->
                Printf.eprintf "error: cannot write ratio report: %s\n" m;
                exit 2));
          if gate && (report.Lab.Ratio.violations > 0 || report.Lab.Ratio.disagreements > 0)
          then begin
            Printf.printf
              "lab run: GATE FAILED (%d bound violations, %d oracle disagreements)\n"
              report.Lab.Ratio.violations report.Lab.Ratio.disagreements;
            1
          end
          else 0)

let lab_hunt_cmd alg seed generations population budget hof_size jobs output
    hof_dir quiet =
  Obs.Metrics.enable ();
  let config =
    {
      Lab.Hunt.default_config with
      Lab.Hunt.alg;
      seed;
      generations;
      population;
      max_nodes = budget;
      hof_size;
    }
  in
  let pool =
    match jobs with
    | Some j when j > 1 -> Some (Sap_server.Pool.create ~workers:j ())
    | _ -> None
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Sap_server.Pool.shutdown pool)
    (fun () ->
      let report = Lab.Hunt.run ?pool config in
      if not quiet then Format.printf "%a" Lab.Hunt.pp_summary report;
      (match output with
      | None -> ()
      | Some file -> (
          try
            Sap_io.Instance_io.write_file file
              (Obs.Json.to_string_pretty (Lab.Hunt.report_json report) ^ "\n")
          with Sys_error m ->
            Printf.eprintf "error: cannot write hunt report: %s\n" m;
            exit 2));
      (match hof_dir with
      | None -> ()
      | Some dir ->
          let files = Lab.Hunt.write_hof ~dir report in
          if not quiet then
            List.iter (fun f -> Printf.printf "wrote %s/%s\n" dir f) files);
      0)

let lab_worst_cmd report_file top =
  match Obs.Json.of_string (read_text_file report_file) with
  | Error m ->
      Printf.eprintf "error: %s: %s\n" report_file m;
      2
  | Ok json -> (
      let field name = function
        | Obs.Json.Obj fields -> List.assoc_opt name fields
        | _ -> None
      in
      match (field "schema" json, field "measurements" json) with
      | Some (Obs.Json.String schema), Some (Obs.Json.List ms)
        when schema = "sap-ratio v1" ->
          let str name m =
            match field name m with Some (Obs.Json.String s) -> s | _ -> "?"
          in
          let num name m =
            match field name m with
            | Some (Obs.Json.Float f) -> Some f
            | Some (Obs.Json.Int i) -> Some (float_of_int i)
            | _ -> None
          in
          let rows =
            List.filter_map
              (fun m ->
                Option.map
                  (fun r ->
                    ( r,
                      str "file" m,
                      str "family" m,
                      str "alg" m,
                      Option.value ~default:Float.nan (num "bound" m),
                      str "bound_kind" m ))
                  (num "ratio" m))
              ms
            |> List.sort (fun (a, _, _, _, _, _) (b, _, _, _, _, _) ->
                   Float.compare b a)
          in
          let shown = List.filteri (fun i _ -> i < top) rows in
          Printf.printf "%-8s %9s %7s %-6s %-18s %s\n" "alg" "ratio" "bound"
            "opt" "family" "file";
          List.iter
            (fun (r, file, family, alg, bound, kind) ->
              Printf.printf "%-8s %9.4f %7.2f %-6s %-18s %s\n" alg r bound kind
                family file)
            shown;
          0
      | _ ->
          Printf.eprintf "error: %s: not a sap-ratio v1 report\n" report_file;
          2)

(* ---------- round ---------- *)

let read_round_instance file =
  match Sap_io.Instance_io.round_instance_of_string (read_text_file file) with
  | Error m ->
      Printf.eprintf "error: %s: %s\n" file m;
      exit 2
  | Ok (path, tasks) -> (
      match Round.Instance.create path tasks with
      | Ok inst -> inst
      | Error m ->
          Printf.eprintf "error: %s: %s\n" file m;
          exit 2)

let round_gen_cmd dir seed variants =
  let t = Lab.Corpus.generate_round ~dir ~seed ~variants () in
  Printf.printf "wrote %d round instances (%d families, seed %d) + %s to %s\n"
    (List.length t.Lab.Corpus.entries)
    (List.length Lab.Corpus.round_families)
    seed Lab.Corpus.manifest_file dir;
  0

let round_solve_cmd input algorithm output quiet =
  let inst = read_round_instance input in
  match Round.Solvers.find algorithm with
  | None ->
      Printf.eprintf "error: unknown round algorithm %S (have: %s)\n" algorithm
        (String.concat ", " Round.Solvers.names);
      2
  | Some s ->
      let t0 = Obs.Clock.monotonic_seconds () in
      let rounds = s.Round.Solvers.solve inst in
      let dt = (Obs.Clock.monotonic_seconds () -. t0) *. 1000.0 in
      (match Round.Checker.check inst rounds with
      | Error m ->
          Printf.eprintf "error: %s produced an infeasible packing: %s\n"
            algorithm m;
          1
      | Ok () ->
          if not quiet then
            Printf.printf
              "%s: %d tasks into %d rounds (certified LB %d) in %.1f ms\n"
              algorithm
              (Round.Instance.task_count inst)
              (List.length rounds)
              (Round.Lower_bound.certified inst)
              dt;
          output_string_to output
            (Sap_io.Instance_io.round_solution_to_string rounds);
          0)

let round_check_cmd input solution_file =
  let inst = read_round_instance input in
  match
    Sap_io.Instance_io.round_solution_of_string
      ~tasks:inst.Round.Instance.tasks
      (read_text_file solution_file)
  with
  | Error m ->
      Printf.eprintf "error: %s: %s\n" solution_file m;
      exit 2
  | Ok rounds -> (
      match Round.Checker.check inst rounds with
      | Ok () ->
          Printf.printf "OK: %d tasks packed into %d rounds\n"
            (Round.Instance.task_count inst)
            (List.length rounds);
          0
      | Error m ->
          Printf.printf "INFEASIBLE: %s\n" m;
          1)

let round_lab_cmd dir output max_nodes gate quiet =
  match Lab.Corpus.load ~dir with
  | Error m ->
      Printf.eprintf "error: %s: %s\n" dir m;
      2
  | Ok corpus ->
      Obs.Metrics.enable ();
      let report = Lab.Round_lab.run ?max_nodes corpus in
      if not quiet then Format.printf "%a" Lab.Round_lab.pp_summary report;
      (match output with
      | None -> ()
      | Some file -> (
          try
            Sap_io.Instance_io.write_file file
              (Obs.Json.to_string_pretty (Lab.Round_lab.report_json report)
              ^ "\n")
          with Sys_error m ->
            Printf.eprintf "error: cannot write round report: %s\n" m;
            exit 2));
      if gate then
        match Lab.Round_lab.gate_failures report with
        | [] -> 0
        | fails ->
            Printf.printf "round lab: GATE FAILED (%s)\n"
              (String.concat "; " fails);
            1
      else 0

(* ---------- cmdliner plumbing ---------- *)

open Cmdliner

let input_arg =
  Arg.(required & opt (some string) None & info [ "i"; "input" ] ~doc:"Instance file.")

let gen_term =
  let profile =
    Arg.(value & opt string "uniform"
         & info [ "profile" ] ~doc:"uniform | valley | mountain | staircase | walk")
  in
  let edges = Arg.(value & opt int 12 & info [ "edges" ] ~doc:"Number of edges.") in
  let capacity =
    Arg.(value & opt int 32 & info [ "capacity" ] ~doc:"Capacity scale of the profile.")
  in
  let kind =
    Arg.(value & opt string "mixed"
         & info [ "kind" ] ~doc:"mixed | small | medium | large | memory")
  in
  let n = Arg.(value & opt int 30 & info [ "tasks" ] ~doc:"Number of tasks.") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Output file.")
  in
  Term.(const gen_cmd $ profile $ edges $ capacity $ kind $ n $ seed $ output)

let solve_term =
  let algorithm =
    Arg.(value & opt string "combine"
         & info [ "algorithm"; "a" ]
             ~doc:"combine | small | medium | large | sapu | firstfit | exact")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc:"Solution file.")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No stats on stdout.") in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~doc:"PRNG seed for randomized engines (LP rounding).")
  in
  let parallel =
    Arg.(value & flag
         & info [ "parallel" ]
             ~doc:"Run the combine algorithm's three specialists in parallel \
                   domains (same placements, same counters — only the schedule \
                   changes).  Ignored by other algorithms.")
  in
  let stats_json =
    Arg.(value & opt (some string) None
         & info [ "stats-json" ]
             ~doc:"Write a machine-readable sap-stats v3 report (instance stats, \
                   per-part metrics, span tree with GC attribution, audit record) \
                   to this file.")
  in
  let audit =
    Arg.(value & flag
         & info [ "audit" ]
             ~doc:"Print the per-solve audit record: LP upper bound, achieved \
                   weight, empirical approximation ratio, checker verdict and \
                   (for combine) the per-part contributions.")
  in
  let trace_chrome =
    Arg.(value & opt (some string) None
         & info [ "trace-chrome" ]
             ~doc:"Write the span tree as Chrome Trace Event JSON to this file; \
                   load it in chrome://tracing or ui.perfetto.dev.  Worker \
                   domains appear as separate tracks.")
  in
  Term.(const solve_cmd $ input_arg $ algorithm $ output $ quiet $ seed $ parallel
        $ stats_json $ audit $ trace_chrome)

let bench_diff_term =
  let old_file =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"OLD" ~doc:"Baseline stats report (JSON).")
  in
  let new_file =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"NEW" ~doc:"Fresh stats report to compare against OLD.")
  in
  let counter_tol =
    Arg.(value & opt float Obs.Diff.default_thresholds.Obs.Diff.counter_tol
         & info [ "counter-tol" ]
             ~doc:"Relative drift allowed on counters (0 = exact; counters are \
                   deterministic for a fixed seed).")
  in
  let float_tol =
    Arg.(value & opt float Obs.Diff.default_thresholds.Obs.Diff.float_tol
         & info [ "rel-tol" ]
             ~doc:"Relative drift allowed on float metrics (gauges, histogram \
                   sums/means).")
  in
  let time_factor =
    Arg.(value & opt float Obs.Diff.default_thresholds.Obs.Diff.time_factor
         & info [ "time-factor" ]
             ~doc:"Allowed slowdown factor for timing metrics (e.g. 1.5 fails \
                   when NEW is >50% slower).  0 (the default) skips timing \
                   metrics: wall time is not comparable across machines.")
  in
  let ignores =
    Arg.(value & opt_all string []
         & info [ "ignore" ]
             ~doc:"Dotted-path prefix to exclude (repeatable), e.g. \
                   metrics.gauges.")
  in
  let show_all =
    Arg.(value & flag
         & info [ "all" ] ~doc:"List every compared metric, not just drifts.")
  in
  Term.(const bench_diff_cmd $ old_file $ new_file $ counter_tol $ float_tol
        $ time_factor $ ignores $ show_all)

let check_term =
  let sol = Arg.(required & opt (some string) None & info [ "s"; "solution" ] ~doc:"Solution file.") in
  Term.(const check_cmd $ input_arg $ sol)

let show_term =
  let sol = Arg.(value & opt (some string) None & info [ "s"; "solution" ] ~doc:"Solution file.") in
  let max_height =
    Arg.(value & opt (some int) None & info [ "max-height" ] ~doc:"Clip rendering height.")
  in
  let svg =
    Arg.(value & opt (some string) None & info [ "svg" ] ~doc:"Write an SVG to this file instead of ASCII.")
  in
  Term.(const show_cmd $ input_arg $ sol $ max_height $ svg)

let stats_term = Term.(const stats_cmd $ input_arg)

let socket_arg =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~doc:"Unix-domain socket path.")

let serve_term =
  let stdio =
    Arg.(value & flag
         & info [ "stdio" ]
             ~doc:"Serve framed requests on stdin/stdout instead of a socket \
                   (one session, exits at end of input).")
  in
  let workers =
    Arg.(value & opt (some int) None
         & info [ "workers" ]
             ~doc:"Worker domains in the solve pool (default: the \
                   recommended domain count).")
  in
  let queue =
    Arg.(value & opt (some int) None
         & info [ "queue" ]
             ~doc:"Job-queue high-water mark; past it, request admission \
                   blocks (backpressure).  Default: 4x workers.")
  in
  let cache_capacity =
    Arg.(value & opt int 1024
         & info [ "cache-capacity" ]
             ~doc:"LRU solution-cache entries; 0 disables caching.")
  in
  let default_timeout_ms =
    Arg.(value & opt (some int) None
         & info [ "default-timeout-ms" ]
             ~doc:"Deadline applied to solve requests that carry none.")
  in
  let log =
    Arg.(value & opt (some string) None
         & info [ "log" ]
             ~doc:"Structured request log: one key=value line per response, \
                   appended to FILE ('-' = stderr).")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No banner on stderr.") in
  Term.(const serve_cmd $ socket_arg $ stdio $ workers $ queue $ cache_capacity
        $ default_timeout_ms $ log $ quiet)

let batch_term =
  let socket =
    Arg.(required & opt (some string) None
         & info [ "socket" ] ~doc:"Socket of a running `sap_cli serve`.")
  in
  let files =
    Arg.(value & pos_all file []
         & info [] ~docv:"INSTANCE" ~doc:"Instance files to solve.")
  in
  let algorithm =
    Arg.(value & opt string "combine"
         & info [ "algorithm"; "a" ]
             ~doc:"combine | small | medium | large | sapu | firstfit | exact")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let timeout_ms =
    Arg.(value & opt (some int) None
         & info [ "timeout-ms" ] ~doc:"Per-request deadline.")
  in
  let no_cache =
    Arg.(value & flag
         & info [ "no-cache" ] ~doc:"Bypass the server's solution cache.")
  in
  let output_dir =
    Arg.(value & opt (some dir) None
         & info [ "o"; "output-dir" ]
             ~doc:"Write each solution to DIR/<instance>.sol.")
  in
  let want_stats =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Request the server's stats after the batch and print the \
                   JSON (request/cache/pool totals, server.* metrics).")
  in
  let shutdown =
    Arg.(value & flag
         & info [ "shutdown" ]
             ~doc:"Send a shutdown frame after the batch: the server drains \
                   in-flight work, acknowledges, and exits.")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only errors and stats output.")
  in
  Term.(const batch_cmd $ socket $ files $ algorithm $ seed $ timeout_ms
        $ no_cache $ output_dir $ want_stats $ shutdown $ quiet)

let session_term =
  let socket =
    Arg.(required & opt (some string) None
         & info [ "socket" ]
             ~doc:"Socket of a running `sap_cli serve` or `sap_cli route`.")
  in
  let input =
    Arg.(value & opt (some string) None
         & info [ "i"; "input" ]
             ~doc:"Base instance file: open a session on it, resolve once, \
                   close (a smoke run with no deltas).")
  in
  let churn =
    Arg.(value & opt (some string) None
         & info [ "churn" ]
             ~doc:"A sap-churn v1 trace (from `lab gen --churn`): open a \
                   session on its base instance and replay its events as \
                   deltas.  Mutually exclusive with -i.")
  in
  let resolve_every =
    Arg.(value & opt int 1
         & info [ "resolve-every" ] ~docv:"N"
             ~doc:"Resolve after every N churn events (default 1).")
  in
  let cold =
    Arg.(value & flag
         & info [ "cold" ]
             ~doc:"Ask for cold resolves (every band repacked from scratch) — \
                   the baseline warm replays are compared against.")
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~doc:"Per-band rounding seed for the session.")
  in
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ]
             ~doc:"Write a sap-session-report v1 JSON (event/resolve totals, \
                   solve ms, warm/repack counts) to this file.")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"Only errors on stderr.")
  in
  Term.(const session_cmd $ socket $ input $ churn $ resolve_every $ cold $ seed
        $ output $ quiet)

let route_term =
  let socket =
    Arg.(required & opt (some string) None
         & info [ "socket" ] ~doc:"Front Unix-domain socket to listen on.")
  in
  let shards =
    Arg.(value & opt (some int) None
         & info [ "shards" ]
             ~doc:"Spawn N `sap_cli serve` shard children (respawned on \
                   exit, shut down gracefully at the end).")
  in
  let shard_sockets =
    Arg.(value & opt_all string []
         & info [ "shard" ] ~docv:"PATH"
             ~doc:"Route to a pre-started shard on this socket (repeatable; \
                   external shards are reconnected to but never spawned or \
                   terminated).")
  in
  let shard_dir =
    Arg.(value & opt (some string) None
         & info [ "shard-dir" ]
             ~doc:"Directory for spawned shards' sockets (default: a fresh \
                   temp directory).")
  in
  let vnodes =
    Arg.(value & opt int Sap_server.Router.default_config.Sap_server.Router.vnodes
         & info [ "vnodes" ]
             ~doc:"Virtual nodes per shard on the consistent-hash ring.")
  in
  let shard_workers =
    Arg.(value & opt (some int) None
         & info [ "shard-workers" ] ~doc:"`--workers` for spawned shards.")
  in
  let shard_queue =
    Arg.(value & opt (some int) None
         & info [ "shard-queue" ] ~doc:"`--queue` for spawned shards.")
  in
  let shard_cache =
    Arg.(value & opt int 1024
         & info [ "shard-cache-capacity" ]
             ~doc:"`--cache-capacity` for spawned shards.")
  in
  let shard_timeout_ms =
    Arg.(value & opt (some int) None
         & info [ "shard-default-timeout-ms" ]
             ~doc:"`--default-timeout-ms` for spawned shards.")
  in
  let log =
    Arg.(value & opt (some string) None
         & info [ "log" ]
             ~doc:"Structured lifecycle log: one key=value line per shard \
                   event, appended to FILE ('-' = stderr).")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No banner on stderr.") in
  Term.(const route_cmd $ socket $ shards $ shard_sockets $ shard_dir $ vnodes
        $ shard_workers $ shard_queue $ shard_cache $ shard_timeout_ms $ log
        $ quiet)

let loadgen_term =
  let socket =
    Arg.(required & opt (some string) None
         & info [ "socket" ] ~doc:"Socket of a running `sap_cli serve`.")
  in
  let rps =
    Arg.(value & opt float Lab.Loadgen.default_config.Lab.Loadgen.rps
         & info [ "rps" ] ~doc:"Target offered rate, requests/second.")
  in
  let duration =
    Arg.(value & opt float Lab.Loadgen.default_config.Lab.Loadgen.duration
         & info [ "duration" ]
             ~doc:"Run length in seconds (rps x duration requests total).")
  in
  let connections =
    Arg.(value & opt int Lab.Loadgen.default_config.Lab.Loadgen.connections
         & info [ "connections" ] ~doc:"Persistent pipelined connections.")
  in
  let profile =
    Arg.(value & opt string Lab.Loadgen.default_config.Lab.Loadgen.profile
         & info [ "profile" ]
             ~doc:"Task-mix profile: any path family of the ratio-lab corpus \
                   generator.")
  in
  let distinct =
    Arg.(value & opt int Lab.Loadgen.default_config.Lab.Loadgen.distinct
         & info [ "distinct" ] ~doc:"Distinct instances cycled through the run.")
  in
  let algorithm =
    Arg.(value & opt string "combine"
         & info [ "algorithm"; "a" ]
             ~doc:"combine | small | medium | large | sapu | firstfit | exact")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Instance-mix PRNG seed.")
  in
  let timeout_ms =
    Arg.(value & opt (some int) None
         & info [ "timeout-ms" ] ~doc:"Per-request deadline sent on the wire.")
  in
  let no_cache =
    Arg.(value & flag
         & info [ "no-cache" ] ~doc:"Bypass the server's solution cache.")
  in
  let no_scrape =
    Arg.(value & flag
         & info [ "no-scrape" ] ~doc:"Skip the mid-run live stats scrape.")
  in
  let sweep =
    Arg.(value & opt (some string) None
         & info [ "sweep" ] ~docv:"LO:HI:STEP"
             ~doc:"Saturation sweep: step the offered rate from LO to HI by \
                   STEP rps, stopping once achieved throughput falls behind \
                   offered; reports the knee as sap-loadgen-sweep v1 JSON \
                   (--rps is ignored).")
  in
  let sweep_threshold =
    Arg.(value & opt float 0.9
         & info [ "sweep-threshold" ]
             ~doc:"A sweep point saturates when achieved < threshold x \
                   offered.")
  in
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ]
             ~doc:"Write the report JSON (sap-loadgen v1, or \
                   sap-loadgen-sweep v1 with --sweep) here instead of stdout.")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No summary on stderr.")
  in
  Term.(const loadgen_cmd $ socket $ rps $ duration $ connections $ profile
        $ distinct $ algorithm $ seed $ timeout_ms $ no_cache $ no_scrape
        $ sweep $ sweep_threshold $ output $ quiet)

let lab_gen_term =
  let dir =
    Arg.(required & opt (some string) None
         & info [ "dir" ] ~doc:"Corpus directory (created if missing).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Corpus PRNG seed.") in
  let variants =
    Arg.(value & opt int 3 & info [ "variants" ] ~doc:"Instances per family.")
  in
  let churn =
    Arg.(value & opt (some int) None
         & info [ "churn" ] ~docv:"STEPS"
             ~doc:"Additionally write a deterministic sap-churn v1 trace with \
                   STEPS add/remove/resize events to DIR/churn.trace (replay \
                   it with `sap_cli session --churn`).")
  in
  Term.(const lab_gen_cmd $ dir $ seed $ variants $ churn)

let lab_run_term =
  let corpus =
    Arg.(required & opt (some string) None
         & info [ "corpus" ] ~doc:"Corpus directory holding a manifest.txt.")
  in
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~doc:"Write the sap-ratio v1 report JSON here.")
  in
  let max_nodes =
    Arg.(value & opt (some int) None
         & info [ "max-nodes" ]
             ~doc:"Branch-and-bound node budget per oracle solve; past it the \
                   row degrades to an LP upper bound (bound_kind = lp).")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "jobs" ]
             ~doc:"Worker domains for the branch-and-bound subtree fan-out \
                   (default: sequential).")
  in
  let gate =
    Arg.(value & flag
         & info [ "gate" ]
             ~doc:"Exit 1 when any exact-oracle ratio exceeds its proven bound \
                   or the branch and bound disagrees with the brute oracle.")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No summary table.") in
  Term.(const lab_run_cmd $ corpus $ output $ max_nodes $ jobs $ gate $ quiet)

let lab_hunt_term =
  let alg =
    Arg.(value & opt string Lab.Hunt.default_config.Lab.Hunt.alg
         & info [ "alg" ]
             ~doc:"Algorithm to hunt: small | medium | large | combine | ring.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Hunt PRNG seed.") in
  let generations =
    Arg.(value & opt int Lab.Hunt.default_config.Lab.Hunt.generations
         & info [ "generations" ] ~doc:"Evolutionary generations.")
  in
  let population =
    Arg.(value & opt int Lab.Hunt.default_config.Lab.Hunt.population
         & info [ "population" ] ~doc:"Candidates evaluated per generation.")
  in
  let budget =
    Arg.(value & opt int Lab.Hunt.default_config.Lab.Hunt.max_nodes
         & info [ "budget" ]
             ~doc:"Branch-and-bound node budget per candidate evaluation; \
                   past it the score degrades to a certified lower bound and \
                   the candidate cannot enter the hall of fame.")
  in
  let hof_size =
    Arg.(value & opt int Lab.Hunt.default_config.Lab.Hunt.hof_size
         & info [ "hof-size" ] ~doc:"Hall-of-fame capacity.")
  in
  let jobs =
    Arg.(value & opt (some int) None
         & info [ "jobs" ]
             ~doc:"Worker domains for candidate evaluation (default: \
                   sequential; results are identical either way).")
  in
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~doc:"Write the sap-hunt v1 report JSON here.")
  in
  let hof_dir =
    Arg.(value & opt (some string) None
         & info [ "hof" ]
             ~doc:"Write hall-of-fame instance files into this directory \
                   (created if missing).")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No summary.") in
  Term.(const lab_hunt_cmd $ alg $ seed $ generations $ population $ budget
        $ hof_size $ jobs $ output $ hof_dir $ quiet)

let lab_worst_term =
  let report =
    Arg.(required & opt (some string) None
         & info [ "report" ] ~doc:"A sap-ratio v1 report (from lab run -o).")
  in
  let top =
    Arg.(value & opt int 10 & info [ "top" ] ~doc:"How many rows to show.")
  in
  Term.(const lab_worst_cmd $ report $ top)

let lab_cmd =
  Cmd.group
    (Cmd.info "lab"
       ~doc:"Empirical approximation-ratio lab: corpus generation, \
             exact-oracle ratio measurement, worst-instance mining")
    [
      Cmd.v
        (Cmd.info "gen" ~doc:"Generate a versioned instance corpus")
        lab_gen_term;
      Cmd.v
        (Cmd.info "run"
           ~doc:"Measure every algorithm's ratio against the exact oracle over \
                 a corpus")
        lab_run_term;
      Cmd.v
        (Cmd.info "hunt"
           ~doc:"Evolve adversarial instances that maximize OPT/ALG for one \
                 algorithm; freeze the hall of fame for the corpus")
        lab_hunt_term;
      Cmd.v
        (Cmd.info "worst" ~doc:"Show the worst-ratio instances of a report")
        lab_worst_term;
    ]

let round_gen_term =
  let dir =
    Arg.(required & opt (some string) None
         & info [ "dir" ] ~doc:"Corpus directory (created if missing).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Corpus PRNG seed.") in
  let variants =
    Arg.(value & opt int 3 & info [ "variants" ] ~doc:"Instances per family.")
  in
  Term.(const round_gen_cmd $ dir $ seed $ variants)

let round_solve_term =
  let algorithm =
    Arg.(value & opt string "bands"
         & info [ "a"; "algorithm" ]
             ~doc:"first-fit | next-fit | bands | exact")
  in
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ]
             ~doc:"Write the round-solution v1 here (default: stdout).")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No summary line.") in
  Term.(const round_solve_cmd $ input_arg $ algorithm $ output $ quiet)

let round_check_term =
  let sol =
    Arg.(required & opt (some string) None
         & info [ "s"; "solution" ] ~doc:"A round-solution v1 file.")
  in
  Term.(const round_check_cmd $ input_arg $ sol)

let round_lab_term =
  let corpus =
    Arg.(required & opt (some string) None
         & info [ "corpus" ] ~doc:"Corpus directory holding a manifest.txt.")
  in
  let output =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ]
             ~doc:"Write the round-report v1 JSON here.")
  in
  let max_nodes =
    Arg.(value & opt (some int) None
         & info [ "max-nodes" ]
             ~doc:"Branch-and-bound node budget per oracle solve; past it the \
                   row's bound degrades from exact to certified.")
  in
  let gate =
    Arg.(value & flag
         & info [ "gate" ]
             ~doc:"Exit 1 when any solver goes below the certified lower \
                   bound (or packs infeasibly), the branch and bound \
                   disagrees with the brute oracle, or bands beats first-fit \
                   on no family.")
  in
  let quiet = Arg.(value & flag & info [ "q"; "quiet" ] ~doc:"No summary table.") in
  Term.(const round_lab_cmd $ corpus $ output $ max_nodes $ gate $ quiet)

let round_cmd =
  Cmd.group
    (Cmd.info "round"
       ~doc:"ROUND-SAP: pack every task into the minimum number of capacity \
             rounds (the second problem on the shared substrate)")
    [
      Cmd.v
        (Cmd.info "gen" ~doc:"Generate the deterministic round corpus")
        round_gen_term;
      Cmd.v
        (Cmd.info "solve"
           ~doc:"Solve one round-instance v1 file; print or write the packing")
        round_solve_term;
      Cmd.v
        (Cmd.info "check" ~doc:"Verify a round-solution against its instance")
        round_check_term;
      Cmd.v
        (Cmd.info "lab"
           ~doc:"Measure every round solver against the certified lower bound \
                 over a corpus")
        round_lab_term;
    ]

let cmds =
  [
    Cmd.v (Cmd.info "gen" ~doc:"Generate a random instance") gen_term;
    Cmd.v (Cmd.info "solve" ~doc:"Solve an instance") solve_term;
    Cmd.v (Cmd.info "check" ~doc:"Verify a solution") check_term;
    Cmd.v (Cmd.info "show" ~doc:"Render an instance or solution") show_term;
    Cmd.v (Cmd.info "stats" ~doc:"Describe an instance") stats_term;
    Cmd.v
      (Cmd.info "serve"
         ~doc:"Run the persistent solve service (worker pool + solution cache)")
      serve_term;
    Cmd.v
      (Cmd.info "batch"
         ~doc:"Submit instance files to a running serve; collect solutions and stats")
      batch_term;
    Cmd.v
      (Cmd.info "session"
         ~doc:"Open an online session against a running serve or route and \
               replay a churn trace (incremental re-solves, client-side \
               verification)")
      session_term;
    Cmd.v
      (Cmd.info "route"
         ~doc:"Consistent-hash front router over N solve-shard processes \
               (spawn + lifecycle, cache-affine fan-out, respawn on exit)")
      route_term;
    Cmd.v
      (Cmd.info "loadgen"
         ~doc:"Open-loop fixed-RPS load generator against a running serve; \
               reports offered vs achieved RPS and latency percentiles")
      loadgen_term;
    Cmd.v
      (Cmd.info "bench-diff"
         ~doc:"Compare two stats reports metric-by-metric; exit 1 on regression")
      bench_diff_term;
    lab_cmd;
    round_cmd;
  ]

let () =
  let info =
    Cmd.info "sap_cli" ~version:"1.0"
      ~doc:"Storage allocation problem toolkit (Bar-Yehuda-Beder-Rawitz reproduction)"
  in
  match Cmd.eval' (Cmd.group info cmds) with
  | code -> exit code
  | exception Invalid_argument m ->
      Printf.eprintf "error: %s\n" m;
      exit 2
  | exception Failure m ->
      Printf.eprintf "error: %s\n" m;
      exit 2
  | exception Sys_error m ->
      Printf.eprintf "error: %s\n" m;
      exit 2
