module Task = Core.Task
module Path = Core.Path

let case = Helpers.case

let mk ?(w = 1.0) id first last d =
  Task.make ~id ~first_edge:first ~last_edge:last ~demand:d ~weight:w

(* ---------- Sap_brute ---------- *)

let brute_known_knapsack () =
  (* All tasks share one edge: SAP = knapsack by demand. *)
  let p = Path.create [| 10 |] in
  let ts = [ mk ~w:10.0 0 0 0 5; mk ~w:9.0 1 0 0 5; mk ~w:15.0 2 0 0 9 ] in
  Alcotest.(check bool) "opt 19" true
    (Helpers.close_enough (Exact.Sap_brute.value p ts) 19.0)

let brute_fig1a_drops_one () =
  let path, tasks = Gen.Paper_figures.fig1a in
  Alcotest.(check (option unit)) "not realizable" None
    (Option.map ignore (Exact.Sap_brute.realizable path tasks));
  (* But UFPP accepts both tasks, and SAP keeps exactly one. *)
  Helpers.assert_feasible_ufpp path tasks;
  Alcotest.(check bool) "sap keeps one" true
    (Helpers.close_enough (Exact.Sap_brute.value path tasks) 1.0)

let brute_realizable_stack () =
  let p = Path.create [| 9; 9 |] in
  let ts = [ mk 0 0 1 3; mk 1 0 1 3; mk 2 0 1 3 ] in
  match Exact.Sap_brute.realizable p ts with
  | None -> Alcotest.fail "stackable set reported unrealizable"
  | Some sol -> Helpers.assert_feasible_sap p sol

let brute_beats_heuristics =
  Helpers.seed_property ~count:40 "exact >= first fit and large solver"
    (fun seed ->
      let path, tasks = Helpers.tiny_instance seed in
      let opt = Exact.Sap_brute.value path tasks in
      let ff, _ = Dsa.First_fit.pack path tasks in
      let large = Sap.Large.solve path tasks in
      opt >= Core.Solution.sap_weight ff -. 1e-9
      && opt >= Core.Solution.sap_weight large -. 1e-9)

let brute_solution_feasible =
  Helpers.seed_property ~count:40 "exact solution is feasible and a subset"
    (fun seed ->
      let path, tasks = Helpers.tiny_instance seed in
      let sol = Exact.Sap_brute.solve path tasks in
      Result.is_ok (Core.Checker.sap_feasible path sol)
      && Core.Checker.subset_of (Core.Solution.sap_tasks sol) tasks)

let brute_at_most_ufpp =
  Helpers.seed_property ~count:40 "SAP opt <= UFPP opt" (fun seed ->
      let path, tasks = Helpers.tiny_instance seed in
      Exact.Sap_brute.value path tasks <= Ufpp.Exact_bb.value path tasks +. 1e-9)

(* ---------- Ring_brute ---------- *)

let ring_brute_known () =
  (* Triangle ring, capacity 2 everywhere, three unit tasks — all fit. *)
  let tk id src dst =
    Core.Ring.make_task ~id ~src ~dst ~demand:1 ~weight:1.0 ~t_edges:3
  in
  let r = Core.Ring.create [| 2; 2; 2 |] [ tk 0 0 1; tk 1 1 2; tk 2 2 0 ] in
  Alcotest.(check bool) "all three" true
    (Helpers.close_enough (Exact.Ring_brute.value r) 3.0)

let ring_brute_chooses_route () =
  (* One edge is blocked (capacity 1 vs demand 2): the task must route the
     other way. *)
  let tk = Core.Ring.make_task ~id:0 ~src:0 ~dst:1 ~demand:2 ~weight:5.0 ~t_edges:3 in
  let r = Core.Ring.create [| 1; 4; 4 |] [ tk ] in
  let sol = Exact.Ring_brute.solve r in
  Alcotest.(check int) "task taken" 1 (List.length sol);
  (match sol with
  | [ (_, _, dir) ] ->
      Alcotest.(check bool) "routed ccw (avoiding edge 0)" true (dir = Core.Ring.Ccw)
  | _ -> Alcotest.fail "unexpected shape");
  Helpers.check_ok "feasible" (Core.Ring.feasible r sol)

let ring_brute_feasible =
  Helpers.seed_property ~count:25 "ring brute output feasible" (fun seed ->
      let prng = Util.Prng.create seed in
      let ring =
        Gen.Ring_gen.random ~prng ~edges:(4 + (seed mod 3)) ~n:5 ~cap_lo:4
          ~cap_hi:10 ~ratio_lo:0.2 ~ratio_hi:0.9
      in
      Result.is_ok (Core.Ring.feasible ring (Exact.Ring_brute.solve ring)))

let () =
  Alcotest.run "exact"
    [
      ( "sap_brute",
        [
          case "knapsack edge" brute_known_knapsack;
          case "fig1a" brute_fig1a_drops_one;
          case "realizable stack" brute_realizable_stack;
          brute_beats_heuristics;
          brute_solution_feasible;
          brute_at_most_ufpp;
        ] );
      ( "ring_brute",
        [
          case "triangle" ring_brute_known;
          case "route choice" ring_brute_chooses_route;
          ring_brute_feasible;
        ] );
    ]
