module Task = Core.Task
module Path = Core.Path
module Rect = Rects.Rect

let case = Helpers.case

let mk ?(w = 1.0) id first last d =
  Task.make ~id ~first_edge:first ~last_edge:last ~demand:d ~weight:w

(* ---------- Rect ---------- *)

let rect_of_task () =
  let p = Path.create [| 8; 5; 9 |] in
  let r = Rect.of_task p (mk 0 0 2 3) in
  Alcotest.(check int) "y_high = bottleneck" 5 r.Rect.y_high;
  Alcotest.(check int) "y_low = residual" 2 r.Rect.y_low

let rect_of_unfit_task () =
  let p = Path.create [| 2 |] in
  Alcotest.check_raises "too big"
    (Invalid_argument "Rect.of_task: task does not fit its bottleneck") (fun () ->
      ignore (Rect.of_task p (mk 0 0 0 3)))

let rect_intersections () =
  let p = Path.create [| 10; 10; 10 |] in
  let r1 = Rect.of_task p (mk 0 0 1 4) (* y [6,10) *)
  and r2 = Rect.of_task p (mk 1 1 2 5) (* y [5,10) *)
  and r3 = Rect.of_task p (mk 2 2 2 2) (* y [8,10) *) in
  Alcotest.(check bool) "r1-r2 intersect" true (Rect.intersects r1 r2);
  Alcotest.(check bool) "r1-r3 x-disjoint" false (Rect.intersects r1 r3);
  Alcotest.(check bool) "r2-r3 intersect" true (Rect.intersects r2 r3)

let rect_y_disjoint () =
  let p = Path.create [| 10; 4; 10 |] in
  (* Task over the dip tops at 4; a short task at edge 0 with small demand
     sits high above it. *)
  let low = Rect.of_task p (mk 0 0 2 3) (* y [1,4) *)
  and high = Rect.of_task p (mk 1 0 0 4) (* y [6,10) *) in
  Alcotest.(check bool) "vertically disjoint" false (Rect.intersects low high)

let independent_family_is_sap =
  Helpers.seed_property ~count:60 "independent rectangles -> feasible SAP"
    (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:10 seed in
      let tasks =
        List.filter (fun j -> (j : Task.t).Task.demand <= Path.bottleneck_of path j) tasks
      in
      let rects = Rect.of_tasks path tasks in
      let chosen = Rects.Rect_mwis.solve rects in
      let sol = List.map Rect.to_sap_placement chosen in
      Result.is_ok (Core.Checker.sap_feasible path sol))

(* ---------- Rect_graph ---------- *)

let graph_coloring_proper =
  Helpers.seed_property ~count:60 "greedy coloring is proper" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:12 seed in
      let tasks =
        List.filter (fun j -> (j : Task.t).Task.demand <= Path.bottleneck_of path j) tasks
      in
      let g = Rects.Rect_graph.build (Rect.of_tasks path tasks) in
      let colors, used = Rects.Rect_graph.greedy_color g in
      let n = Rects.Rect_graph.size g in
      let _, degeneracy = Rects.Rect_graph.degeneracy_order g in
      let proper = ref true in
      for i = 0 to n - 1 do
        List.iter
          (fun jn -> if colors.(i) = colors.(jn) then proper := false)
          (Rects.Rect_graph.neighbors g i)
      done;
      !proper && used <= degeneracy + 1)

let graph_color_classes_independent =
  Helpers.seed_property ~count:40 "color classes are independent families"
    (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:12 seed in
      let tasks =
        List.filter (fun j -> (j : Task.t).Task.demand <= Path.bottleneck_of path j) tasks
      in
      let g = Rects.Rect_graph.build (Rect.of_tasks path tasks) in
      let classes = Rects.Rect_graph.color_classes g in
      List.for_all
        (fun cls ->
          let rec pairwise = function
            | [] -> true
            | r :: rest ->
                List.for_all (fun r' -> not (Rect.intersects r r')) rest
                && pairwise rest
          in
          pairwise cls)
        classes)

let degeneracy_of_triangle () =
  let p = Path.create [| 12 |] in
  (* Three tasks on one edge with pairwise overlapping top ranges. *)
  let rects = Rect.of_tasks p [ mk 0 0 0 10; mk 1 0 0 11; mk 2 0 0 12 ] in
  let g = Rects.Rect_graph.build rects in
  let _, d = Rects.Rect_graph.degeneracy_order g in
  Alcotest.(check int) "triangle degeneracy 2" 2 d;
  let _, used = Rects.Rect_graph.greedy_color g in
  Alcotest.(check int) "3 colors" 3 used

(* ---------- Rect_mwis ---------- *)

let mwis_matches_brute =
  Helpers.seed_property ~count:60 "B&B = brute force" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:12 seed in
      let tasks =
        List.filter (fun j -> (j : Task.t).Task.demand <= Path.bottleneck_of path j) tasks
      in
      let rects = Rect.of_tasks path tasks in
      let bb = Rects.Rect_mwis.solve rects in
      let brute = Rects.Rect_mwis.brute_force rects in
      Helpers.close_enough (Rects.Rect_mwis.weight bb) (Rects.Rect_mwis.weight brute))

let mwis_large_tasks =
  Helpers.seed_property ~count:30 "B&B exact on 1/2-large families" (fun seed ->
      let path, tasks = Helpers.tiny_ratio_instance ~max_tasks:12 ~lo:0.5 ~hi:1.0 seed in
      let rects = Rect.of_tasks path tasks in
      let bb = Rects.Rect_mwis.solve rects in
      let brute = Rects.Rect_mwis.brute_force rects in
      Helpers.close_enough (Rects.Rect_mwis.weight bb) (Rects.Rect_mwis.weight brute))

let mwis_empty () =
  Alcotest.(check int) "empty" 0 (List.length (Rects.Rect_mwis.solve []))

let mwis_stress_16 =
  (* Larger families right at the brute-force limit. *)
  Helpers.seed_property ~count:10 "B&B = brute force at n = 16" (fun seed ->
      let g = Util.Prng.create seed in
      let path = Helpers.random_path g in
      let tasks = Gen.Workloads.ratio_tasks ~prng:g ~path ~n:16 ~lo:0.3 ~hi:1.0 () in
      let rects = Rects.Rect.of_tasks path tasks in
      Helpers.close_enough
        (Rects.Rect_mwis.weight (Rects.Rect_mwis.solve rects))
        (Rects.Rect_mwis.weight (Rects.Rect_mwis.brute_force rects)))

(* ---------- Fig. 8 ---------- *)

let fig8_structure () =
  let path, sol = Lazy.force Gen.Paper_figures.fig8 in
  Helpers.assert_feasible_sap path sol;
  let tasks = Core.Solution.sap_tasks sol in
  List.iter
    (fun (j : Task.t) ->
      Alcotest.(check bool) "1/2-large" true
        (2 * j.Task.demand > Path.bottleneck_of path j))
    tasks;
  let rects = Rect.of_tasks path tasks in
  Alcotest.(check bool) "C5" true (Gen.Paper_figures.is_c5 rects);
  let g = Rects.Rect_graph.build rects in
  let _, used = Rects.Rect_graph.greedy_color g in
  Alcotest.(check int) "needs 3 = 2k-1 colors" 3 used;
  let _, degeneracy = Rects.Rect_graph.degeneracy_order g in
  Alcotest.(check int) "degeneracy 2 = 2k-2" 2 degeneracy

let () =
  Alcotest.run "rects"
    [
      ( "rect",
        [
          case "of_task" rect_of_task;
          case "unfit rejected" rect_of_unfit_task;
          case "intersections" rect_intersections;
          case "y disjoint" rect_y_disjoint;
          independent_family_is_sap;
        ] );
      ( "graph",
        [
          graph_coloring_proper;
          graph_color_classes_independent;
          case "triangle" degeneracy_of_triangle;
        ] );
      ("mwis",
        [ mwis_matches_brute; mwis_large_tasks; case "empty" mwis_empty; mwis_stress_16 ]);
      ("fig8", [ case "structure" fig8_structure ]);
    ]
