(* Edge cases that the main suites' generators rarely reach: boundary
   capacities, wrap-around ring routes, degenerate LPs, exact ties. *)

module Task = Core.Task
module Path = Core.Path
module Ring = Core.Ring

let case = Helpers.case

let mk ?(w = 1.0) id first last d =
  Task.make ~id ~first_edge:first ~last_edge:last ~demand:d ~weight:w

(* ---------- exact-fit boundaries ---------- *)

let exact_full_column () =
  (* Three tasks exactly filling one edge: feasible, and removing capacity
     by one breaks it. *)
  let ts = [ mk 0 0 0 3; mk 1 0 0 3; mk 2 0 0 3 ] in
  (match Exact.Sap_brute.realizable (Path.create [| 9 |]) ts with
  | Some sol -> Helpers.assert_feasible_sap (Path.create [| 9 |]) sol
  | None -> Alcotest.fail "exact fill should be realizable");
  Alcotest.(check bool) "capacity 8 insufficient" true
    (Exact.Sap_brute.realizable (Path.create [| 8 |]) ts = None)

let task_filling_whole_capacity () =
  let p = Path.create [| 5; 5 |] in
  let t = mk 0 0 1 5 in
  let sol = Sap.Combine.solve p [ t ] in
  Alcotest.(check int) "taken at ground" 0 (Core.Solution.sap_height sol t)

let single_edge_path () =
  (* m = 1: SAP degenerates to knapsack (OPT = 11 via the two d=5 tasks).
     The approximation may return the single d=9 task (weight 10) instead —
     a ratio of 1.1, well within Theorem 4 — but never less. *)
  let p = Path.create [| 10 |] in
  let ts = [ mk ~w:6.0 0 0 0 5; mk ~w:5.0 1 0 0 5; mk ~w:10.0 2 0 0 9 ] in
  let sol = Sap.Combine.solve p ts in
  Helpers.assert_feasible_sap p sol;
  Alcotest.(check bool) "at least the heaviest single task" true
    (Core.Solution.sap_weight sol >= 10.0 -. 1e-9);
  Alcotest.(check bool) "exact oracle finds 11" true
    (Helpers.close_enough (Exact.Sap_brute.value p ts) 11.0)

let zero_weight_tasks () =
  let p = Path.create [| 4; 4 |] in
  let ts = [ Task.make ~id:0 ~first_edge:0 ~last_edge:1 ~demand:2 ~weight:0.0 ] in
  let sol = Sap.Combine.solve p ts in
  Helpers.assert_feasible_sap p sol

(* ---------- ring wrap-around ---------- *)

let ring_wrap_route () =
  (* src > dst: the clockwise route wraps past edge m-1. *)
  let cw = Ring.edges_of_route ~m:5 ~src:3 ~dst:1 Ring.Cw in
  Alcotest.(check (list int)) "wraps through 4 and 0" [ 3; 4; 0 ] cw;
  let ccw = Ring.edges_of_route ~m:5 ~src:3 ~dst:1 Ring.Ccw in
  Alcotest.(check (list int)) "complement" [ 1; 2 ] ccw

let ring_cut_at_last_edge () =
  let caps = [| 4; 4; 4; 2 |] in
  let tk = Ring.make_task ~id:0 ~src:0 ~dst:2 ~demand:2 ~weight:3.0 ~t_edges:4 in
  let r = Ring.create caps [ tk ] in
  let rep = Sap.Ring_algo.solve_report r in
  Alcotest.(check int) "cuts edge 3" 3 rep.Sap.Ring_algo.cut_edge;
  Helpers.check_ok "feasible" (Ring.feasible r rep.Sap.Ring_algo.solution);
  Alcotest.(check bool) "takes the task" true
    (Helpers.close_enough (Ring.solution_weight rep.Sap.Ring_algo.solution) 3.0)

let ring_task_spanning_nearly_all () =
  (* A task whose short route is a single edge and long route is m-1
     edges. *)
  let caps = [| 10; 2; 2; 2 |] in
  let tk = Ring.make_task ~id:0 ~src:0 ~dst:1 ~demand:8 ~weight:5.0 ~t_edges:4 in
  let r = Ring.create caps [ tk ] in
  let sol = Exact.Ring_brute.solve r in
  (* Only the clockwise single-edge route over capacity 10 fits d = 8. *)
  (match sol with
  | [ (_, h, dir) ] ->
      Alcotest.(check bool) "cw" true (dir = Ring.Cw);
      Alcotest.(check bool) "h <= 2" true (h <= 2)
  | _ -> Alcotest.fail "expected exactly one placement");
  Helpers.check_ok "feasible" (Ring.feasible r sol)

(* ---------- LP / simplex degeneracies ---------- *)

let simplex_zero_objective () =
  let p = { Lp.Simplex.objective = [| 0.0; 0.0 |]; rows = [ ([| 1.0; 1.0 |], 3.0) ] } in
  match Lp.Simplex.maximize p with
  | Lp.Simplex.Optimal { value; _ } ->
      Alcotest.(check bool) "value 0" true (Helpers.close_enough value 0.0)
  | Lp.Simplex.Unbounded -> Alcotest.fail "bounded"

let simplex_no_rows_bounded_by_boxes () =
  let n = 2 in
  let p =
    {
      Lp.Simplex.objective = [| 1.0; 2.0 |];
      rows = [ Lp.Simplex.box_row ~n 0 1.0; Lp.Simplex.box_row ~n 1 1.0 ];
    }
  in
  match Lp.Simplex.maximize p with
  | Lp.Simplex.Optimal { value; _ } ->
      Alcotest.(check bool) "value 3" true (Helpers.close_enough value 3.0)
  | Lp.Simplex.Unbounded -> Alcotest.fail "bounded"

let lp_empty_tasks () =
  let p = Path.create [| 3 |] in
  Alcotest.(check bool) "zero bound" true
    (Helpers.close_enough (Lp.Ufpp_lp.upper_bound p []) 0.0)

(* ---------- knapsack ties and trivia ---------- *)

let knapsack_ties () =
  (* Two optimal solutions with equal profit: any of them is fine, but the
     DP must return one of exactly that profit. *)
  let items =
    [
      Knapsack.make_item ~index:0 ~size:5 ~profit:10.0;
      Knapsack.make_item ~index:1 ~size:5 ~profit:10.0;
      Knapsack.make_item ~index:2 ~size:10 ~profit:10.0;
    ]
  in
  let sol = Knapsack.solve_exact_by_size ~capacity:10 items in
  Alcotest.(check bool) "profit 20" true
    (Helpers.close_enough (Knapsack.total_profit sol) 20.0)

let knapsack_zero_capacity () =
  let items = [ Knapsack.make_item ~index:0 ~size:1 ~profit:5.0 ] in
  Alcotest.(check int) "nothing" 0
    (List.length (Knapsack.solve_exact_by_size ~capacity:0 items))

(* ---------- strip pack at band boundaries ---------- *)

let strip_pack_exact_power_bottleneck () =
  (* Bottleneck exactly 2^t: the band index must be t, the strip [2^(t-1), 2^t). *)
  let p = Path.uniform ~edges:3 ~capacity:16 in
  let t = mk 0 0 2 2 in
  let sol =
    Sap.Small.strip_pack ~rounding:`Local_ratio ~prng:(Util.Prng.create 1) p [ t ]
  in
  match sol with
  | [ (_, h) ] ->
      Alcotest.(check bool) "in [8,16)" true (8 <= h && h + 2 <= 16)
  | _ -> Alcotest.fail "task should be scheduled"

let elevator_band_with_single_task () =
  let p = Path.uniform ~edges:2 ~capacity:16 in
  let t = mk ~w:5.0 0 0 1 6 in
  let r = Sap.Elevator.solve ~k:4 ~ell:1 ~q:2 p [ t ] in
  Alcotest.(check bool) "takes it" true
    (Helpers.close_enough (Core.Solution.sap_weight r.Sap.Elevator.solution) 5.0);
  Alcotest.(check bool) "elevated" true
    (List.for_all (fun (_, h) -> h >= 4) r.Sap.Elevator.solution)

(* ---------- io: weight precision ---------- *)

let io_weight_precision () =
  let p = Path.create [| 4 |] in
  let t = Task.make ~id:0 ~first_edge:0 ~last_edge:0 ~demand:1 ~weight:(1.0 /. 3.0) in
  let s = Sap_io.Instance_io.instance_to_string p [ t ] in
  match Sap_io.Instance_io.instance_of_string s with
  | Ok (_, [ t' ]) ->
      Alcotest.(check bool) "exact float round-trip" true
        (t'.Task.weight = 1.0 /. 3.0)
  | _ -> Alcotest.fail "round trip failed"

(* ---------- gravity chain ---------- *)

let gravity_chain_collapses () =
  (* A tower with gaps: gravity must close every gap bottom-up. *)
  let p = Path.uniform ~edges:1 ~capacity:100 in
  let t1 = mk 0 0 0 5 and t2 = mk 1 0 0 5 and t3 = mk 2 0 0 5 in
  let settled = Core.Gravity.settle p [ (t1, 10); (t2, 30); (t3, 60) ] in
  let heights = List.sort compare (List.map snd settled) in
  Alcotest.(check (list int)) "compacted" [ 0; 5; 10 ] heights

let () =
  Alcotest.run "edge_cases"
    [
      ( "boundaries",
        [
          case "exact full column" exact_full_column;
          case "full-capacity task" task_filling_whole_capacity;
          case "single edge path" single_edge_path;
          case "zero weight" zero_weight_tasks;
        ] );
      ( "ring_wrap",
        [
          case "wrap route" ring_wrap_route;
          case "cut at last edge" ring_cut_at_last_edge;
          case "asymmetric routes" ring_task_spanning_nearly_all;
        ] );
      ( "lp",
        [
          case "zero objective" simplex_zero_objective;
          case "box-only rows" simplex_no_rows_bounded_by_boxes;
          case "empty tasks" lp_empty_tasks;
        ] );
      ( "knapsack",
        [ case "ties" knapsack_ties; case "zero capacity" knapsack_zero_capacity ] );
      ( "bands",
        [
          case "power-of-two bottleneck" strip_pack_exact_power_bottleneck;
          case "single-task elevator" elevator_band_with_single_task;
        ] );
      ("io", [ case "weight precision" io_weight_precision ]);
      ("gravity", [ case "chain collapses" gravity_chain_collapses ]);
    ]
