(* Failure injection: corrupt known-good artifacts and assert the checking
   machinery rejects them.  A checker that cannot reject is worthless as a
   verification layer, so each corruption class gets its own property. *)

module Task = Core.Task
module Path = Core.Path


(* A solved instance dense enough that corruptions actually collide. *)
let solved_instance seed =
  let g = Util.Prng.create seed in
  let path = Path.uniform ~edges:(3 + Util.Prng.int g 4) ~capacity:(6 + Util.Prng.int g 8) in
  let tasks = Gen.Workloads.mixed_tasks ~prng:g ~path ~n:(4 + Util.Prng.int g 5) () in
  let sol = Exact.Sap_brute.solve path tasks in
  (path, tasks, sol)

(* ---------- SAP checker vs corrupted solutions ---------- *)

let inject_below_ground =
  Helpers.seed_property ~count:40 "negative height rejected" (fun seed ->
      let path, _, sol = solved_instance seed in
      match sol with
      | [] -> true
      | (j, _) :: rest ->
          Result.is_error (Core.Checker.sap_feasible path ((j, -1) :: rest)))

let inject_above_capacity =
  Helpers.seed_property ~count:40 "height above capacity rejected" (fun seed ->
      let path, _, sol = solved_instance seed in
      match sol with
      | [] -> true
      | ((j : Task.t), _) :: rest ->
          let too_high = Path.bottleneck_of path j - j.Task.demand + 1 in
          Result.is_error (Core.Checker.sap_feasible path ((j, too_high) :: rest)))

let inject_duplicate_task =
  Helpers.seed_property ~count:40 "duplicated placement rejected" (fun seed ->
      let path, _, sol = solved_instance seed in
      match sol with
      | [] -> true
      | (j, h) :: _ -> Result.is_error (Core.Checker.sap_feasible path ((j, h) :: sol)))

let inject_vertical_collision =
  Helpers.seed_property ~count:40 "forced collision rejected" (fun seed ->
      let path, _, sol = solved_instance seed in
      match sol with
      | (j1, _) :: (j2, h2) :: rest when Task.overlaps j1 j2 ->
          (* Drop j1 exactly onto j2. *)
          Result.is_error (Core.Checker.sap_feasible path ((j1, h2) :: (j2, h2) :: rest))
      | _ -> true)

let inject_foreign_task =
  Helpers.seed_property ~count:40 "foreign task caught by subset_of" (fun seed ->
      let _, tasks, sol = solved_instance seed in
      let foreign = Task.make ~id:9999 ~first_edge:0 ~last_edge:0 ~demand:1 ~weight:1.0 in
      not (Core.Checker.subset_of (foreign :: Core.Solution.sap_tasks sol) tasks))

let inject_mutated_weight =
  Helpers.seed_property ~count:40 "weight-tampered task caught by subset_of"
    (fun seed ->
      let _, tasks, _ = solved_instance seed in
      match tasks with
      | [] -> true
      | j :: _ ->
          not (Core.Checker.subset_of [ Task.with_weight j (j.Task.weight +. 1.0) ] tasks))

(* ---------- UFPP checker ---------- *)

let inject_overload =
  Helpers.seed_property ~count:40 "edge overload rejected" (fun seed ->
      let path, tasks, _ = solved_instance seed in
      (* Replicate the full task list until some edge must overflow. *)
      let doubled =
        tasks @ List.map (fun (j : Task.t) -> Task.with_id j (1000 + j.Task.id)) tasks
      in
      let tripled =
        doubled @ List.map (fun (j : Task.t) -> Task.with_id j (2000 + j.Task.id)) tasks
      in
      let overloaded =
        List.exists
          (fun l -> l > Path.min_capacity path)
          (Array.to_list (Core.Instance.load_profile path tripled))
      in
      (not overloaded) || Result.is_error (Core.Checker.ufpp_feasible path tripled))

(* ---------- Ring checker ---------- *)

let ring_inject_collision =
  Helpers.seed_property ~count:30 "ring collision rejected" (fun seed ->
      let prng = Util.Prng.create seed in
      let ring =
        Gen.Ring_gen.random ~prng ~edges:5 ~n:4 ~cap_lo:6 ~cap_hi:10 ~ratio_lo:0.3
          ~ratio_hi:0.9
      in
      let sol = Exact.Ring_brute.solve ring in
      match sol with
      | (t1, _, d1) :: (t2, h2, d2) :: rest ->
          let shares_edge =
            let m = Core.Ring.num_edges ring in
            let e1 = Core.Ring.edges_of_route ~m ~src:t1.Core.Ring.src ~dst:t1.Core.Ring.dst d1 in
            let e2 = Core.Ring.edges_of_route ~m ~src:t2.Core.Ring.src ~dst:t2.Core.Ring.dst d2 in
            List.exists (fun e -> List.mem e e2) e1
          in
          (not shares_edge)
          || Result.is_error
               (Core.Ring.feasible ring ((t1, h2, d1) :: (t2, h2, d2) :: rest))
      | _ -> true)

(* ---------- Serialisation fuzz ---------- *)

let io_truncation_never_panics =
  Helpers.seed_property ~count:60 "truncated files never raise" (fun seed ->
      let path, tasks = Helpers.tiny_instance seed in
      let s = Sap_io.Instance_io.instance_to_string path tasks in
      let g = Util.Prng.create seed in
      let cut = Util.Prng.int g (String.length s) in
      let truncated = String.sub s 0 cut in
      match Sap_io.Instance_io.instance_of_string truncated with
      | Ok _ | Error _ -> true)

let io_byte_flip_never_panics =
  Helpers.seed_property ~count:60 "byte-flipped files never raise" (fun seed ->
      let path, tasks = Helpers.tiny_instance seed in
      let s = Bytes.of_string (Sap_io.Instance_io.instance_to_string path tasks) in
      let g = Util.Prng.create seed in
      let pos = Util.Prng.int g (Bytes.length s) in
      Bytes.set s pos (Char.chr (Util.Prng.int g 256));
      match Sap_io.Instance_io.instance_of_string (Bytes.to_string s) with
      | Ok _ | Error _ -> true)

(* ---------- Cross-algorithm invariants ---------- *)

let all_algorithms_below_exact =
  Helpers.seed_property ~count:25 "no algorithm beats the exact oracle"
    (fun seed ->
      let path, tasks, _ = solved_instance seed in
      let opt = Exact.Sap_brute.value path tasks in
      let le sol = Core.Solution.sap_weight sol <= opt +. 1e-9 in
      le (Sap.Combine.solve path tasks)
      && le (Sap.Large.solve path tasks)
      && le (fst (Dsa.First_fit.pack path tasks))
      && le (fst (Dsa.Buddy.pack path tasks))
      && le (Sap.Small.strip_pack ~rounding:`Local_ratio ~prng:(Util.Prng.create 1)
               path
               (List.filter (Core.Classify.is_small path ~delta:0.25) tasks)))

let elevator_direct_at_least_partition =
  Helpers.seed_property ~count:25 "direct elevated DP >= partition half"
    (fun seed ->
      let g = Util.Prng.create seed in
      let k = 3 and ell = 1 and q = 2 in
      let cap = 1 lsl (k + ell) in
      let caps = Array.init 5 (fun _ -> (1 lsl k) + Util.Prng.int g (cap - (1 lsl k))) in
      let path = Path.create caps in
      let tasks = Gen.Workloads.ratio_tasks ~prng:g ~path ~n:6 ~lo:0.25 ~hi:0.5 () in
      let part = Sap.Elevator.solve ~k ~ell ~q ~strategy:`Partition path tasks in
      let direct = Sap.Elevator.solve ~k ~ell ~q ~strategy:`Direct path tasks in
      Result.is_ok (Core.Checker.sap_feasible path direct.Sap.Elevator.solution)
      && List.for_all (fun (_, h) -> h >= 1 lsl (k - q)) direct.Sap.Elevator.solution
      && Core.Solution.sap_weight direct.Sap.Elevator.solution
         >= Core.Solution.sap_weight part.Sap.Elevator.solution -. 1e-9)

let () =
  Alcotest.run "failure_injection"
    [
      ( "sap_checker",
        [
          inject_below_ground;
          inject_above_capacity;
          inject_duplicate_task;
          inject_vertical_collision;
          inject_foreign_task;
          inject_mutated_weight;
        ] );
      ("ufpp_checker", [ inject_overload ]);
      ("ring_checker", [ ring_inject_collision ]);
      ("io_fuzz", [ io_truncation_never_panics; io_byte_flip_never_panics ]);
      ( "cross_invariants",
        [ all_algorithms_below_exact; elevator_direct_at_least_partition ] );
    ]
