(* Integration tests of the sap_cli executable: the gen | stats | solve |
   check | show pipelines over temp files.  The dune rule declares the
   binary as a dependency, so it is available at ../bin/sap_cli.exe
   relative to the test's working directory. *)

(* dune runtest runs with cwd = _build/default/test; dune exec from the
   workspace root.  Probe both locations. *)
let cli =
  let candidates =
    [
      Filename.concat (Filename.concat ".." "bin") "sap_cli.exe";
      Filename.concat (Filename.concat "_build/default" "bin") "sap_cli.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let case = Helpers.case

let run args =
  let cmd = Filename.quote_command cli args in
  Sys.command (cmd ^ " > /dev/null 2>&1")

let with_tmp f =
  let dir = Filename.temp_file "sap_cli_test" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let gen_solve_check_roundtrip () =
  if not (Sys.file_exists cli) then Alcotest.skip ()
  else
    with_tmp (fun dir ->
        let inst = Filename.concat dir "inst.sap" in
        let sol = Filename.concat dir "sol.sap" in
        Alcotest.(check int) "gen" 0
          (run [ "gen"; "--profile"; "staircase"; "--edges"; "10"; "--tasks"; "20"; "-o"; inst ]);
        Alcotest.(check int) "stats" 0 (run [ "stats"; "-i"; inst ]);
        Alcotest.(check int) "solve" 0
          (run [ "solve"; "-i"; inst; "-a"; "combine"; "-q"; "-o"; sol ]);
        Alcotest.(check int) "check accepts" 0 (run [ "check"; "-i"; inst; "-s"; sol ]);
        Alcotest.(check int) "show" 0 (run [ "show"; "-i"; inst; "-s"; sol ]);
        let svg = Filename.concat dir "sol.svg" in
        Alcotest.(check int) "svg" 0
          (run [ "show"; "-i"; inst; "-s"; sol; "--svg"; svg ]);
        Alcotest.(check bool) "svg written" true (Sys.file_exists svg))

let check_rejects_corrupted () =
  if not (Sys.file_exists cli) then Alcotest.skip ()
  else
    with_tmp (fun dir ->
        let inst = Filename.concat dir "inst.sap" in
        let sol = Filename.concat dir "sol.sap" in
        Alcotest.(check int) "gen" 0
          (run [ "gen"; "--edges"; "6"; "--tasks"; "10"; "--kind"; "large"; "-o"; inst ]);
        Alcotest.(check int) "solve" 0
          (run [ "solve"; "-i"; inst; "-a"; "exact"; "-q"; "-o"; sol ]);
        (* Corrupt: push every placed task far above the capacities. *)
        let contents = Sap_io.Instance_io.read_file sol in
        let corrupted =
          String.split_on_char '\n' contents
          |> List.map (fun line ->
                 match String.split_on_char ' ' line with
                 | [ "place"; id; _h ] -> Printf.sprintf "place %s 100000" id
                 | _ -> line)
          |> String.concat "\n"
        in
        Sap_io.Instance_io.write_file sol corrupted;
        let has_places =
          String.split_on_char '\n' corrupted
          |> List.exists (fun l -> String.length l > 5 && String.sub l 0 5 = "place")
        in
        if has_places then
          Alcotest.(check int) "check rejects" 1 (run [ "check"; "-i"; inst; "-s"; sol ]))

let solve_all_algorithms () =
  if not (Sys.file_exists cli) then Alcotest.skip ()
  else
    with_tmp (fun dir ->
        let inst = Filename.concat dir "inst.sap" in
        Alcotest.(check int) "gen" 0
          (run [ "gen"; "--edges"; "8"; "--tasks"; "12"; "-o"; inst ]);
        List.iter
          (fun a ->
            Alcotest.(check int) ("solve " ^ a) 0
              (run [ "solve"; "-i"; inst; "-a"; a; "-q" ]))
          [ "combine"; "small"; "medium"; "large"; "firstfit"; "exact" ])

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let solve_emits_stats_json () =
  if not (Sys.file_exists cli) then Alcotest.skip ()
  else
    with_tmp (fun dir ->
        let inst = Filename.concat dir "inst.sap" in
        let stats = Filename.concat dir "stats.json" in
        Alcotest.(check int) "gen" 0
          (run [ "gen"; "--profile"; "staircase"; "--edges"; "10"; "--tasks"; "24"; "-o"; inst ]);
        Alcotest.(check int) "solve" 0
          (run
             [ "solve"; "-i"; inst; "-a"; "combine"; "-q"; "--seed"; "7";
               "--stats-json"; stats ]);
        Alcotest.(check bool) "stats file written" true (Sys.file_exists stats);
        let s = Sap_io.Instance_io.read_file stats in
        let trimmed = String.trim s in
        Alcotest.(check bool) "object-shaped" true
          (String.length trimmed > 2
          && trimmed.[0] = '{'
          && trimmed.[String.length trimmed - 1] = '}');
        (* The report must expose the per-part weights and timings, the
           chosen part, the per-band Strip-Pack counters and the simplex
           iteration counts the issue asks for. *)
        List.iter
          (fun sub ->
            Alcotest.(check bool) (sub ^ " present") true (contains_sub s sub))
          [
            "sap-stats v1";
            "\"algorithm\"";
            "\"seed\": 7";
            "\"instance\"";
            "\"result\"";
            "combine.weight.small";
            "combine.weight.medium";
            "combine.weight.large";
            "combine.part_seconds.small";
            "combine.chosen.";
            "small.bands";
            "simplex.iterations";
            "simplex.solves";
            "elevator.dp_states";
            "\"spans\"";
            "combine.solve";
            "small.strip_pack";
          ])

let unknown_algorithm_fails () =
  if not (Sys.file_exists cli) then Alcotest.skip ()
  else
    with_tmp (fun dir ->
        let inst = Filename.concat dir "inst.sap" in
        Alcotest.(check int) "gen" 0 (run [ "gen"; "-o"; inst ]);
        Alcotest.(check int) "bad algo" 2 (run [ "solve"; "-i"; inst; "-a"; "nonsense" ]))

let () =
  Alcotest.run "cli"
    [
      ( "pipelines",
        [
          case "gen/solve/check/show" gen_solve_check_roundtrip;
          case "check rejects corrupted" check_rejects_corrupted;
          case "all algorithms" solve_all_algorithms;
          case "stats json" solve_emits_stats_json;
          case "unknown algorithm" unknown_algorithm_fails;
        ] );
    ]
