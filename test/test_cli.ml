(* Integration tests of the sap_cli executable: the gen | stats | solve |
   check | show pipelines over temp files.  The dune rule declares the
   binary as a dependency, so it is available at ../bin/sap_cli.exe
   relative to the test's working directory. *)

(* dune runtest runs with cwd = _build/default/test; dune exec from the
   workspace root.  Probe both locations. *)
let cli =
  let candidates =
    [
      Filename.concat (Filename.concat ".." "bin") "sap_cli.exe";
      Filename.concat (Filename.concat "_build/default" "bin") "sap_cli.exe";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let case = Helpers.case

let run args =
  let cmd = Filename.quote_command cli args in
  Sys.command (cmd ^ " > /dev/null 2>&1")

(* Run and capture stdout (for --audit and bench-diff output checks). *)
let run_out ~out args =
  let cmd = Filename.quote_command cli args in
  Sys.command (Printf.sprintf "%s > %s 2>&1" cmd (Filename.quote out))

let with_tmp f =
  let dir = Filename.temp_file "sap_cli_test" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () -> f dir)

let gen_solve_check_roundtrip () =
  if not (Sys.file_exists cli) then Alcotest.skip ()
  else
    with_tmp (fun dir ->
        let inst = Filename.concat dir "inst.sap" in
        let sol = Filename.concat dir "sol.sap" in
        Alcotest.(check int) "gen" 0
          (run [ "gen"; "--profile"; "staircase"; "--edges"; "10"; "--tasks"; "20"; "-o"; inst ]);
        Alcotest.(check int) "stats" 0 (run [ "stats"; "-i"; inst ]);
        Alcotest.(check int) "solve" 0
          (run [ "solve"; "-i"; inst; "-a"; "combine"; "-q"; "-o"; sol ]);
        Alcotest.(check int) "check accepts" 0 (run [ "check"; "-i"; inst; "-s"; sol ]);
        Alcotest.(check int) "show" 0 (run [ "show"; "-i"; inst; "-s"; sol ]);
        let svg = Filename.concat dir "sol.svg" in
        Alcotest.(check int) "svg" 0
          (run [ "show"; "-i"; inst; "-s"; sol; "--svg"; svg ]);
        Alcotest.(check bool) "svg written" true (Sys.file_exists svg))

let check_rejects_corrupted () =
  if not (Sys.file_exists cli) then Alcotest.skip ()
  else
    with_tmp (fun dir ->
        let inst = Filename.concat dir "inst.sap" in
        let sol = Filename.concat dir "sol.sap" in
        Alcotest.(check int) "gen" 0
          (run [ "gen"; "--edges"; "6"; "--tasks"; "10"; "--kind"; "large"; "-o"; inst ]);
        Alcotest.(check int) "solve" 0
          (run [ "solve"; "-i"; inst; "-a"; "exact"; "-q"; "-o"; sol ]);
        (* Corrupt: push every placed task far above the capacities. *)
        let contents = Sap_io.Instance_io.read_file sol in
        let corrupted =
          String.split_on_char '\n' contents
          |> List.map (fun line ->
                 match String.split_on_char ' ' line with
                 | [ "place"; id; _h ] -> Printf.sprintf "place %s 100000" id
                 | _ -> line)
          |> String.concat "\n"
        in
        Sap_io.Instance_io.write_file sol corrupted;
        let has_places =
          String.split_on_char '\n' corrupted
          |> List.exists (fun l -> String.length l > 5 && String.sub l 0 5 = "place")
        in
        if has_places then
          Alcotest.(check int) "check rejects" 1 (run [ "check"; "-i"; inst; "-s"; sol ]))

let solve_all_algorithms () =
  if not (Sys.file_exists cli) then Alcotest.skip ()
  else
    with_tmp (fun dir ->
        let inst = Filename.concat dir "inst.sap" in
        Alcotest.(check int) "gen" 0
          (run [ "gen"; "--edges"; "8"; "--tasks"; "12"; "-o"; inst ]);
        List.iter
          (fun a ->
            Alcotest.(check int) ("solve " ^ a) 0
              (run [ "solve"; "-i"; inst; "-a"; a; "-q" ]))
          [ "combine"; "small"; "medium"; "large"; "firstfit"; "exact" ])

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let solve_emits_stats_json () =
  if not (Sys.file_exists cli) then Alcotest.skip ()
  else
    with_tmp (fun dir ->
        let inst = Filename.concat dir "inst.sap" in
        let stats = Filename.concat dir "stats.json" in
        Alcotest.(check int) "gen" 0
          (run [ "gen"; "--profile"; "staircase"; "--edges"; "10"; "--tasks"; "24"; "-o"; inst ]);
        Alcotest.(check int) "solve" 0
          (run
             [ "solve"; "-i"; inst; "-a"; "combine"; "-q"; "--seed"; "7";
               "--stats-json"; stats ]);
        Alcotest.(check bool) "stats file written" true (Sys.file_exists stats);
        let s = Sap_io.Instance_io.read_file stats in
        let trimmed = String.trim s in
        Alcotest.(check bool) "object-shaped" true
          (String.length trimmed > 2
          && trimmed.[0] = '{'
          && trimmed.[String.length trimmed - 1] = '}');
        (* The report must expose the per-part weights and timings, the
           chosen part, the per-band Strip-Pack counters and the simplex
           iteration counts the issue asks for. *)
        List.iter
          (fun sub ->
            Alcotest.(check bool) (sub ^ " present") true (contains_sub s sub))
          [
            "sap-stats v3";
            "\"clock\"";
            "\"algorithm\"";
            "\"seed\": 7";
            "\"instance\"";
            "\"result\"";
            "\"audit\"";
            "\"lp_upper_bound\"";
            "\"empirical_ratio\"";
            "\"checker\"";
            "\"parts\"";
            "combine.weight.small";
            "combine.weight.medium";
            "combine.weight.large";
            "combine.part_seconds.small";
            "combine.chosen.";
            "small.bands";
            "simplex.iterations";
            "simplex.solves";
            "elevator.dp_states";
            "\"spans\"";
            "combine.solve";
            "small.strip_pack";
            "\"gc\"";
            "\"minor_words\"";
            "\"domain\"";
          ])

let solve_audit_output () =
  if not (Sys.file_exists cli) then Alcotest.skip ()
  else
    with_tmp (fun dir ->
        let inst = Filename.concat dir "inst.sap" in
        let out = Filename.concat dir "audit.txt" in
        Alcotest.(check int) "gen" 0
          (run [ "gen"; "--profile"; "staircase"; "--edges"; "10"; "--tasks"; "24"; "-o"; inst ]);
        Alcotest.(check int) "solve --audit" 0
          (run_out ~out [ "solve"; "-i"; inst; "-a"; "combine"; "-q"; "--audit" ]);
        let s = Sap_io.Instance_io.read_file out in
        List.iter
          (fun sub ->
            Alcotest.(check bool) (sub ^ " present") true (contains_sub s sub))
          [ "lp upper bound"; "empirical ratio"; "checker"; "feasible"; "parts" ];
        (* Non-combine algorithms get the generic certificate. *)
        Alcotest.(check int) "solve --audit firstfit" 0
          (run_out ~out [ "solve"; "-i"; inst; "-a"; "firstfit"; "-q"; "--audit" ]);
        let s = Sap_io.Instance_io.read_file out in
        Alcotest.(check bool) "generic ratio line" true
          (contains_sub s "empirical ratio"))

let solve_trace_chrome () =
  if not (Sys.file_exists cli) then Alcotest.skip ()
  else
    with_tmp (fun dir ->
        let inst = Filename.concat dir "inst.sap" in
        let trace = Filename.concat dir "trace.json" in
        Alcotest.(check int) "gen" 0
          (run [ "gen"; "--profile"; "staircase"; "--edges"; "10"; "--tasks"; "24"; "-o"; inst ]);
        Alcotest.(check int) "solve" 0
          (run
             [ "solve"; "-i"; inst; "-a"; "combine"; "-q"; "--parallel";
               "--trace-chrome"; trace ]);
        let s = Sap_io.Instance_io.read_file trace in
        (* Must be loadable JSON with the Trace Event envelope, and with
           --parallel the worker domains must land on distinct tracks. *)
        (match Obs.Json.of_string s with
        | Ok (Obs.Json.Obj fields) ->
            let events =
              match List.assoc_opt "traceEvents" fields with
              | Some (Obs.Json.List evs) -> evs
              | _ -> Alcotest.fail "traceEvents missing or not a list"
            in
            Alcotest.(check bool) "has events" true (events <> []);
            let tids =
              List.filter_map
                (fun ev ->
                  match ev with
                  | Obs.Json.Obj f -> (
                      match (List.assoc_opt "ph" f, List.assoc_opt "tid" f) with
                      | Some (Obs.Json.String "X"), Some (Obs.Json.Int t) -> Some t
                      | _ -> None)
                  | _ -> None)
                events
              |> List.sort_uniq compare
            in
            Alcotest.(check bool) "distinct worker tracks" true
              (List.length tids > 1)
        | Ok _ -> Alcotest.fail "chrome trace is not an object"
        | Error m -> Alcotest.failf "chrome trace does not parse: %s" m);
        List.iter
          (fun sub ->
            Alcotest.(check bool) (sub ^ " present") true (contains_sub s sub))
          [ "\"ph\""; "\"ts\""; "\"dur\""; "\"tid\""; "thread_name"; "combine.solve"; "\"gc\"" ])

(* ---------- bench-diff ---------- *)

let write_json file counters extra =
  let fields =
    [
      ("schema", Obs.Json.String "sap-stats v3");
      ( "metrics",
        Obs.Json.Obj
          [
            ( "counters",
              Obs.Json.Obj (List.map (fun (k, v) -> (k, Obs.Json.Int v)) counters) );
            ("gauges", Obs.Json.Obj []);
            ("histograms", Obs.Json.Obj []);
          ] );
    ]
    @ extra
  in
  Sap_io.Instance_io.write_file file (Obs.Json.to_string_pretty (Obs.Json.Obj fields))

let bench_diff_exit_codes () =
  if not (Sys.file_exists cli) then Alcotest.skip ()
  else
    with_tmp (fun dir ->
        let old_f = Filename.concat dir "old.json" in
        let new_f = Filename.concat dir "new.json" in
        let out = Filename.concat dir "out.txt" in
        (* Identical reports: exit 0. *)
        write_json old_f [ ("dp.states", 100); ("simplex.iterations", 5) ] [];
        write_json new_f [ ("dp.states", 100); ("simplex.iterations", 5) ] [];
        Alcotest.(check int) "identical" 0 (run_out ~out [ "bench-diff"; old_f; new_f ]);
        (* Injected counter regression: exit 1, named in the table. *)
        write_json new_f [ ("dp.states", 150); ("simplex.iterations", 5) ] [];
        Alcotest.(check int) "regression" 1 (run_out ~out [ "bench-diff"; old_f; new_f ]);
        let s = Sap_io.Instance_io.read_file out in
        Alcotest.(check bool) "regression named" true
          (contains_sub s "metrics.counters.dp.states");
        (* ...unless the tolerance allows it. *)
        Alcotest.(check int) "within --counter-tol" 0
          (run_out ~out [ "bench-diff"; old_f; new_f; "--counter-tol"; "0.6" ]);
        (* Missing metric: exit 1. *)
        write_json new_f [ ("dp.states", 100) ] [];
        Alcotest.(check int) "missing metric" 1 (run_out ~out [ "bench-diff"; old_f; new_f ]);
        (* Timing: ignored by default, gated by --time-factor, faster is fine. *)
        let timed file t =
          write_json file
            [ ("dp.states", 100); ("simplex.iterations", 5) ]
            [ ("result", Obs.Json.Obj [ ("time_seconds", Obs.Json.Float t) ]) ]
        in
        timed old_f 1.0;
        timed new_f 10.0;
        Alcotest.(check int) "timing ungated" 0 (run_out ~out [ "bench-diff"; old_f; new_f ]);
        Alcotest.(check int) "timing regression" 1
          (run_out ~out [ "bench-diff"; old_f; new_f; "--time-factor"; "1.5" ]);
        timed new_f 0.5;
        Alcotest.(check int) "timing improvement" 0
          (run_out ~out [ "bench-diff"; old_f; new_f; "--time-factor"; "1.5" ]);
        (* Malformed input: exit 2. *)
        Sap_io.Instance_io.write_file new_f "{ not json";
        Alcotest.(check int) "malformed" 2 (run_out ~out [ "bench-diff"; old_f; new_f ]);
        Alcotest.(check int) "unreadable" 2
          (run_out ~out [ "bench-diff"; old_f; Filename.concat dir "nope.json" ]))

let bench_diff_baseline_self () =
  (* The committed CI baseline must always diff cleanly against itself —
     this also keeps the file parseable by our own parser. *)
  let baseline =
    List.find_opt Sys.file_exists
      [ "../bench/baseline.json"; "bench/baseline.json" ]
  in
  match baseline with
  | None -> Alcotest.skip ()
  | Some b ->
      if not (Sys.file_exists cli) then Alcotest.skip ()
      else Alcotest.(check int) "self-diff" 0 (run [ "bench-diff"; b; b ])

let unreadable_file_is_clean_error () =
  if not (Sys.file_exists cli) then Alcotest.skip ()
  else
    with_tmp (fun dir ->
        let out = Filename.concat dir "err.txt" in
        let missing = Filename.concat dir "nope.sap" in
        let expect_clean what args =
          Alcotest.(check int) what 2 (run_out ~out args);
          let s = Sap_io.Instance_io.read_file out in
          Alcotest.(check bool) (what ^ ": error prefix") true
            (contains_sub s "error: ");
          Alcotest.(check bool) (what ^ ": no backtrace") false
            (contains_sub s "Raised at")
        in
        expect_clean "solve missing" [ "solve"; "-i"; missing ];
        expect_clean "check missing" [ "check"; "-i"; missing; "-s"; missing ];
        expect_clean "show missing" [ "show"; "-i"; missing ];
        (* A directory fails the same way, not with a raw Sys_error. *)
        expect_clean "solve directory" [ "solve"; "-i"; dir ])

(* ---------- serve / batch over a Unix-domain socket ---------- *)

let serve_batch_socket_smoke () =
  if not (Sys.file_exists cli) then Alcotest.skip ()
  else
    with_tmp (fun dir ->
        let insts =
          List.init 3 (fun i ->
              let f = Filename.concat dir (Printf.sprintf "inst%d.sap" i) in
              Alcotest.(check int) "gen" 0
                (run
                   [ "gen"; "--edges"; "6"; "--tasks"; "8"; "--seed";
                     string_of_int (100 + i); "-o"; f ]);
              f)
        in
        let sock = Filename.concat dir "srv.sock" in
        let null = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
        let pid =
          Unix.create_process cli [| cli; "serve"; "--socket"; sock; "-q" |]
            null null null
        in
        Unix.close null;
        let reaped = ref None in
        let reap_nohang () =
          match !reaped with
          | Some _ as s -> s
          | None -> (
              match Unix.waitpid [ Unix.WNOHANG ] pid with
              | 0, _ -> None
              | _, status ->
                  reaped := Some status;
                  !reaped)
        in
        Fun.protect
          ~finally:(fun () ->
            if reap_nohang () = None then begin
              Unix.kill pid Sys.sigkill;
              ignore (Unix.waitpid [] pid)
            end)
          (fun () ->
            let rec wait_for cond n what =
              if cond () then ()
              else if n = 0 then Alcotest.failf "timed out waiting for %s" what
              else begin
                Unix.sleepf 0.05;
                wait_for cond (n - 1) what
              end
            in
            wait_for (fun () -> Sys.file_exists sock) 200 "server socket";
            let out = Filename.concat dir "batch.txt" in
            Alcotest.(check int) "batch" 0
              (run_out ~out
                 ([ "batch"; "--socket"; sock; "-o"; dir; "--stats"; "--shutdown" ]
                 @ insts));
            let s = Sap_io.Instance_io.read_file out in
            Alcotest.(check bool) "stats json printed" true
              (contains_sub s "sap-server-stats v2");
            List.iter
              (fun f ->
                let sol = f ^ ".sol" in
                Alcotest.(check bool) (Filename.basename sol ^ " written") true
                  (Sys.file_exists sol);
                Alcotest.(check int) (Filename.basename f ^ " checks") 0
                  (run [ "check"; "-i"; f; "-s"; sol ]))
              insts;
            (* --shutdown was acked, so the server must exit cleanly. *)
            wait_for (fun () -> reap_nohang () <> None) 200 "server exit";
            Alcotest.(check bool) "server exited 0" true
              (!reaped = Some (Unix.WEXITED 0))))

let unknown_algorithm_fails () =
  if not (Sys.file_exists cli) then Alcotest.skip ()
  else
    with_tmp (fun dir ->
        let inst = Filename.concat dir "inst.sap" in
        Alcotest.(check int) "gen" 0 (run [ "gen"; "-o"; inst ]);
        Alcotest.(check int) "bad algo" 2 (run [ "solve"; "-i"; inst; "-a"; "nonsense" ]))

let () =
  Alcotest.run "cli"
    [
      ( "pipelines",
        [
          case "gen/solve/check/show" gen_solve_check_roundtrip;
          case "check rejects corrupted" check_rejects_corrupted;
          case "all algorithms" solve_all_algorithms;
          case "stats json" solve_emits_stats_json;
          case "unknown algorithm" unknown_algorithm_fails;
          case "solve --audit" solve_audit_output;
          case "solve --trace-chrome" solve_trace_chrome;
          case "unreadable file" unreadable_file_is_clean_error;
        ] );
      ("server", [ case "serve/batch socket smoke" serve_batch_socket_smoke ]);
      ( "bench-diff",
        [
          case "exit codes" bench_diff_exit_codes;
          case "baseline self-diff" bench_diff_baseline_self;
        ] );
    ]
