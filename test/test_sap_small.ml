module Task = Core.Task
module Path = Core.Path

let case = Helpers.case

let band_instance ?(b = 16) seed =
  let g = Util.Prng.create seed in
  let edges = 3 + Util.Prng.int g 6 in
  let caps = Array.init edges (fun _ -> b + Util.Prng.int g b) in
  let path = Path.create caps in
  let n = 3 + Util.Prng.int g 10 in
  let tasks = Gen.Workloads.small_tasks ~prng:g ~path ~n ~delta:0.25 () in
  (path, tasks)

(* ---------- solve_band ---------- *)

let band_packable_lp =
  Helpers.seed_property ~count:40 "LP band solution is B/2-packable" (fun seed ->
      let path, tasks = band_instance seed in
      let prng = Util.Prng.create (seed + 1) in
      let sol = Sap.Small.solve_band ~b:16 ~rounding:(`Lp 8) ~prng path tasks in
      Result.is_ok (Core.Checker.sap_feasible_within path ~bound:8 sol)
      && Core.Checker.subset_of (Core.Solution.sap_tasks sol) tasks)

let band_packable_local_ratio =
  Helpers.seed_property ~count:40 "local-ratio band solution is B/2-packable"
    (fun seed ->
      let path, tasks = band_instance seed in
      let prng = Util.Prng.create (seed + 1) in
      let sol = Sap.Small.solve_band ~b:16 ~rounding:`Local_ratio ~prng path tasks in
      Result.is_ok (Core.Checker.sap_feasible_within path ~bound:8 sol))

let band_rejects_out_of_band () =
  let path = Path.create [| 64; 64 |] in
  let t = Task.make ~id:0 ~first_edge:0 ~last_edge:1 ~demand:2 ~weight:1.0 in
  Alcotest.check_raises "bottleneck 64 not in [16,32)"
    (Invalid_argument "Small.solve_band: bottleneck outside [B, 2B)") (fun () ->
      ignore
        (Sap.Small.solve_band ~b:16 ~rounding:`Local_ratio
           ~prng:(Util.Prng.create 0) path [ t ]))

let band_nonempty_on_easy_input () =
  (* Plenty of slack: the band algorithm must capture real weight. *)
  let path = Path.uniform ~edges:4 ~capacity:20 in
  let mk id d = Task.make ~id ~first_edge:0 ~last_edge:3 ~demand:d ~weight:1.0 in
  let tasks = [ mk 0 1; mk 1 1; mk 2 1 ] in
  let sol =
    Sap.Small.solve_band ~b:16 ~rounding:(`Lp 8) ~prng:(Util.Prng.create 1) path tasks
  in
  Alcotest.(check bool) "keeps at least 2 of 3" true (List.length sol >= 2)

(* ---------- strip_pack ---------- *)

let strip_pack_instance seed =
  let g = Util.Prng.create seed in
  let path = Gen.Profiles.staircase ~edges:(6 + Util.Prng.int g 6) ~steps:3 ~base:16 in
  let n = 6 + Util.Prng.int g 14 in
  let tasks = Gen.Workloads.small_tasks ~prng:g ~path ~n ~delta:0.25 () in
  (path, tasks)

let strip_pack_feasible =
  Helpers.seed_property ~count:40 "Strip-Pack output feasible" (fun seed ->
      let path, tasks = strip_pack_instance seed in
      let prng = Util.Prng.create (seed * 3) in
      let sol = Sap.Small.strip_pack ~rounding:(`Lp 8) ~prng path tasks in
      Result.is_ok (Core.Checker.sap_feasible path sol))

let strip_pack_band_disjoint =
  (* Each task of band t must live in the vertical slice [2^(t-1), 2^t). *)
  Helpers.seed_property ~count:40 "bands occupy disjoint slices" (fun seed ->
      let path, tasks = strip_pack_instance seed in
      let prng = Util.Prng.create (seed * 3) in
      let sol = Sap.Small.strip_pack ~rounding:`Local_ratio ~prng path tasks in
      List.for_all
        (fun ((j : Task.t), h) ->
          let t = Core.Classify.floor_log2 (Path.bottleneck_of path j) in
          let lo = 1 lsl (t - 1) and hi = 1 lsl t in
          lo <= h && h + j.Task.demand <= hi)
        sol)

let strip_pack_ratio_vs_exact =
  (* 4+eps holds for the paper's exact rounding engine; ours is the
     documented substitution, so assert with a little slack. *)
  Helpers.seed_property ~count:20 "ratio <= ~4+eps vs exact on tiny instances"
    (fun seed ->
      let g = Util.Prng.create seed in
      let path = Path.uniform ~edges:(3 + Util.Prng.int g 3) ~capacity:16 in
      let tasks = Gen.Workloads.small_tasks ~prng:g ~path ~n:7 ~delta:0.25 () in
      let prng = Util.Prng.create (seed + 11) in
      let sol = Sap.Small.strip_pack ~rounding:(`Lp 8) ~prng path tasks in
      let opt = Exact.Sap_brute.value path tasks in
      opt <= 1e-9 || Core.Solution.sap_weight sol >= (opt /. 5.0) -. 1e-9)

let strip_pack_parallel_deterministic =
  (* The band fan-out must be invisible: same placements (task ids AND
     heights) and the same master-generator position whether bands run on
     one domain or many. *)
  Helpers.seed_property ~count:25 "--parallel band fan-out = sequential"
    (fun seed ->
      let path, tasks = strip_pack_instance seed in
      let prng_seq = Util.Prng.create (seed * 7) in
      let seq = Sap.Small.strip_pack ~rounding:(`Lp 8) ~prng:prng_seq path tasks in
      let prng_par = Util.Prng.create (seed * 7) in
      let par =
        Sap.Small.strip_pack ~parallel:true ~rounding:(`Lp 8) ~prng:prng_par path
          tasks
      in
      seq = par && Util.Prng.int64 prng_seq = Util.Prng.int64 prng_par)

let strip_pack_empty () =
  let path = Path.uniform ~edges:3 ~capacity:8 in
  let sol = Sap.Small.strip_pack ~rounding:`Local_ratio ~prng:(Util.Prng.create 0) path [] in
  Alcotest.(check int) "empty" 0 (List.length sol)

let strip_pack_weight_sane =
  (* Both rounding engines should land in the same ballpark; neither may
     return a trivial solution when the LP sees real weight. *)
  Helpers.seed_property ~count:20 "captures positive weight when LP does"
    (fun seed ->
      let path, tasks = strip_pack_instance seed in
      let lp = Lp.Ufpp_lp.upper_bound path tasks in
      let prng = Util.Prng.create (seed + 5) in
      let sol = Sap.Small.strip_pack ~rounding:(`Lp 8) ~prng path tasks in
      lp <= 1e-9 || Core.Solution.sap_weight sol > 0.0)

let () =
  Alcotest.run "sap_small"
    [
      ( "solve_band",
        [
          band_packable_lp;
          band_packable_local_ratio;
          case "out of band rejected" band_rejects_out_of_band;
          case "easy input" band_nonempty_on_easy_input;
        ] );
      ( "strip_pack",
        [
          strip_pack_feasible;
          strip_pack_band_disjoint;
          strip_pack_ratio_vs_exact;
          strip_pack_parallel_deterministic;
          case "empty" strip_pack_empty;
          strip_pack_weight_sane;
        ] );
    ]
