(* The ROUND-SAP subsystem: carrier validation, the round checker's
   rejections, serialization round-trips, and the qcheck invariants the
   lab gate relies on — every solver's output is checker-feasible and
   never beats the certified lower bound, and the branch-and-bound
   agrees with the partition brute force wherever both are exact. *)

module Task = Core.Task
module Path = Core.Path

let mk ?(id = 0) ?(w = 1.0) first last demand =
  Task.make ~id ~first_edge:first ~last_edge:last ~demand ~weight:w

let inst path tasks = Round.Instance.create_exn path tasks

(* Seed-derived round instances: the shared tiny generator, with tasks
   that cannot fit alone dropped (mandatory tasks must fit). *)
let round_instance ?max_tasks seed =
  let path, tasks = Helpers.tiny_instance ?max_tasks seed in
  let tasks =
    List.filter
      (fun (j : Task.t) -> j.Task.demand <= Path.bottleneck_of path j)
      tasks
  in
  inst path tasks

(* ---------- carrier ---------- *)

let instance_rejects_misfit () =
  let path = Path.create [| 4; 2; 4 |] in
  match Round.Instance.create path [ mk 0 2 3 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "task with demand > bottleneck accepted"

let instance_rejects_duplicate_id () =
  let path = Path.create [| 4 |] in
  match Round.Instance.create path [ mk ~id:7 0 0 1; mk ~id:7 0 0 2 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate id accepted"

let instance_rejects_off_path () =
  let path = Path.create [| 4; 4 |] in
  match Round.Instance.create path [ mk 1 5 1 ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "task off the path accepted"

(* ---------- checker rejections ---------- *)

let checker_rejects_unplaced () =
  let i = inst (Path.create [| 4 |]) [ mk ~id:0 0 0 2; mk ~id:1 0 0 2 ] in
  match Round.Checker.check i [ [ (mk ~id:0 0 0 2, 0) ] ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "missing task accepted"

let checker_rejects_double_place () =
  let j = mk ~id:0 0 0 2 in
  let i = inst (Path.create [| 4 |]) [ j ] in
  match Round.Checker.check i [ [ (j, 0) ]; [ (j, 0) ] ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "twice-placed task accepted"

let checker_rejects_empty_round () =
  let j = mk ~id:0 0 0 2 in
  let i = inst (Path.create [| 4 |]) [ j ] in
  match Round.Checker.check i [ [ (j, 0) ]; [] ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "empty round accepted"

let checker_rejects_overflow () =
  let a = mk ~id:0 0 0 3 and b = mk ~id:1 0 0 3 in
  let i = inst (Path.create [| 4 |]) [ a; b ] in
  match Round.Checker.check i [ [ (a, 0); (b, 1) ] ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "capacity overflow accepted"

let checker_rejects_mutation () =
  let j = mk ~id:0 0 0 2 in
  let i = inst (Path.create [| 4 |]) [ j ] in
  match Round.Checker.check i [ [ (mk ~id:0 0 0 1, 0) ] ] with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "mutated task accepted"

let checker_accepts_valid () =
  let a = mk ~id:0 0 1 2 and b = mk ~id:1 1 2 3 in
  let i = inst (Path.create [| 4; 4; 4 |]) [ a; b ] in
  Round.Checker.expect_ok (Round.Checker.check i [ [ (a, 0) ]; [ (b, 0) ] ])

(* ---------- lower bounds ---------- *)

let congestion_bound () =
  let path = Path.create [| 4; 4 |] in
  let i = inst path [ mk ~id:0 0 1 3; mk ~id:1 0 1 3; mk ~id:2 0 0 3 ] in
  Alcotest.(check int) "congestion" 3 (Round.Lower_bound.congestion i)

let pairwise_beats_congestion () =
  (* three tasks of demand 3 on capacity 5: load 9/5 -> congestion 2,
     but no two can stack, so pairwise certifies 3. *)
  let path = Path.create [| 5 |] in
  let i = inst path [ mk ~id:0 0 0 3; mk ~id:1 0 0 3; mk ~id:2 0 0 3 ] in
  Alcotest.(check int) "congestion" 2 (Round.Lower_bound.congestion i);
  Alcotest.(check int) "pairwise" 3 (Round.Lower_bound.pairwise i);
  Alcotest.(check int) "certified" 3 (Round.Lower_bound.certified i)

(* ---------- solvers ---------- *)

let solvers_solve_disjoint_in_one_round () =
  let path = Path.create [| 4; 4; 4 |] in
  let i = inst path [ mk ~id:0 0 0 4; mk ~id:1 1 1 4; mk ~id:2 2 2 4 ] in
  List.iter
    (fun (s : Round.Solvers.t) ->
      let rounds = s.Round.Solvers.solve i in
      Round.Checker.expect_ok (Round.Checker.check i rounds);
      Alcotest.(check int) (s.Round.Solvers.name ^ " rounds") 1
        (List.length rounds))
    Round.Solvers.all

let solvers_hit_forced_round_count () =
  let path = Path.create [| 6; 6 |] in
  let tasks = List.init 4 (fun k -> mk ~id:k 0 1 6) in
  let i = inst path tasks in
  List.iter
    (fun (s : Round.Solvers.t) ->
      let rounds = s.Round.Solvers.solve i in
      Round.Checker.expect_ok (Round.Checker.check i rounds);
      Alcotest.(check int) (s.Round.Solvers.name ^ " rounds") 4
        (List.length rounds))
    Round.Solvers.all

let empty_instance_zero_rounds () =
  let i = inst (Path.create [| 4 |]) [] in
  List.iter
    (fun (s : Round.Solvers.t) ->
      Alcotest.(check int) (s.Round.Solvers.name ^ " rounds") 0
        (List.length (s.Round.Solvers.solve i)))
    Round.Solvers.all;
  Alcotest.(check int) "lb" 0 (Round.Lower_bound.certified i)

(* Every solver, every seed: feasible and never below the certified LB
   (a violation here is by definition a checker or LB bug). *)
let prop_feasible_and_above_lb seed =
  let i = round_instance seed in
  let lb = Round.Lower_bound.certified i in
  List.for_all
    (fun (s : Round.Solvers.t) ->
      let rounds = s.Round.Solvers.solve i in
      (match Round.Checker.check i rounds with
      | Ok () -> true
      | Error m -> QCheck.Test.fail_reportf "%s: %s" s.Round.Solvers.name m)
      && List.length rounds >= lb)
    Round.Solvers.all

(* B&B == brute force wherever the brute force is allowed to run. *)
let prop_bb_agrees_with_brute seed =
  let i = round_instance ~max_tasks:6 seed in
  if Round.Instance.task_count i > Round.Exact.task_cap then true
  else begin
    let out = Round.Exact.solve i in
    let brute = Round.Exact.brute_rounds i in
    if not out.Round.Exact.optimal then
      QCheck.Test.fail_reportf "budget exhausted on a tiny instance";
    if out.Round.Exact.value <> brute then
      QCheck.Test.fail_reportf "bb %d <> brute %d" out.Round.Exact.value brute;
    Round.Checker.expect_ok (Round.Checker.check i out.Round.Exact.rounds);
    true
  end

(* The exact oracle's certified LB is sandwiched correctly even when the
   node budget truncates the search. *)
let prop_exact_bounds_sandwich seed =
  let i = round_instance seed in
  let out = Round.Exact.solve ~max_nodes:50 i in
  out.Round.Exact.lower_bound >= Round.Lower_bound.certified i
  && out.Round.Exact.value >= out.Round.Exact.lower_bound
  && (not out.Round.Exact.optimal)
     || out.Round.Exact.value = out.Round.Exact.lower_bound

(* ---------- serialization ---------- *)

let prop_instance_roundtrip seed =
  let i = round_instance seed in
  let s =
    Sap_io.Instance_io.round_instance_to_string i.Round.Instance.path
      i.Round.Instance.tasks
  in
  match Sap_io.Instance_io.round_instance_of_string s with
  | Error m -> QCheck.Test.fail_reportf "parse: %s" m
  | Ok (path, tasks) ->
      Path.capacities path = Path.capacities i.Round.Instance.path
      && tasks = i.Round.Instance.tasks

let prop_solution_roundtrip seed =
  let i = round_instance seed in
  let rounds = Round.Greedy.first_fit i in
  let s = Sap_io.Instance_io.round_solution_to_string rounds in
  match
    Sap_io.Instance_io.round_solution_of_string ~tasks:i.Round.Instance.tasks s
  with
  | Error m -> QCheck.Test.fail_reportf "parse: %s" m
  | Ok rounds' ->
      List.map Core.Solution.sort_by_id rounds
      = List.map Core.Solution.sort_by_id rounds'

let solution_rejects_bad_round_index () =
  let j = mk ~id:0 0 0 2 in
  let s = "round-solution v1\nrounds 1\nplace 0 3 0\n" in
  match Sap_io.Instance_io.round_solution_of_string ~tasks:[ j ] s with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "out-of-range round index accepted"

let instance_rejects_sap_header () =
  match
    Sap_io.Instance_io.round_instance_of_string "sap-instance v1\ncapacities 4\n"
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "sap-instance header accepted as round-instance"

let () =
  Alcotest.run "round"
    [
      ( "instance",
        [
          Helpers.case "rejects misfit" instance_rejects_misfit;
          Helpers.case "rejects duplicate id" instance_rejects_duplicate_id;
          Helpers.case "rejects off-path" instance_rejects_off_path;
        ] );
      ( "checker",
        [
          Helpers.case "rejects unplaced" checker_rejects_unplaced;
          Helpers.case "rejects double placement" checker_rejects_double_place;
          Helpers.case "rejects empty round" checker_rejects_empty_round;
          Helpers.case "rejects overflow" checker_rejects_overflow;
          Helpers.case "rejects mutation" checker_rejects_mutation;
          Helpers.case "accepts valid" checker_accepts_valid;
        ] );
      ( "lower-bound",
        [
          Helpers.case "congestion" congestion_bound;
          Helpers.case "pairwise beats congestion" pairwise_beats_congestion;
        ] );
      ( "solvers",
        [
          Helpers.case "disjoint tasks, one round" solvers_solve_disjoint_in_one_round;
          Helpers.case "forced round count" solvers_hit_forced_round_count;
          Helpers.case "empty instance" empty_instance_zero_rounds;
          Helpers.seed_property "feasible and >= certified LB"
            prop_feasible_and_above_lb;
          Helpers.seed_property ~count:40 "bb == brute on tiny instances"
            prop_bb_agrees_with_brute;
          Helpers.seed_property ~count:40 "exact bounds sandwich"
            prop_exact_bounds_sandwich;
        ] );
      ( "io",
        [
          Helpers.seed_property ~count:40 "instance round-trip"
            prop_instance_roundtrip;
          Helpers.seed_property ~count:40 "solution round-trip"
            prop_solution_roundtrip;
          Helpers.case "rejects bad round index" solution_rejects_bad_round_index;
          Helpers.case "rejects sap header" instance_rejects_sap_header;
        ] );
    ]
