let case = Helpers.case

let items l = List.mapi (fun i (s, p) -> Knapsack.make_item ~index:i ~size:s ~profit:p) l

let exact_known () =
  let sol = Knapsack.solve_exact_by_size ~capacity:10 (items [ (5, 10.0); (4, 40.0); (6, 30.0); (3, 50.0) ]) in
  Alcotest.(check bool) "profit 90" true
    (Helpers.close_enough (Knapsack.total_profit sol) 90.0);
  Alcotest.(check bool) "fits" true (Knapsack.total_size sol <= 10)

let exact_empty () =
  Alcotest.(check int) "empty" 0 (List.length (Knapsack.solve_exact_by_size ~capacity:5 []))

let exact_all_too_big () =
  let sol = Knapsack.solve_exact_by_size ~capacity:2 (items [ (3, 10.0); (5, 20.0) ]) in
  Alcotest.(check int) "nothing fits" 0 (List.length sol)

let brute_force ~capacity its =
  let a = Array.of_list its in
  let n = Array.length a in
  let best = ref 0.0 in
  for mask = 0 to (1 lsl n) - 1 do
    let size = ref 0 and profit = ref 0.0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        size := !size + a.(i).Knapsack.size;
        profit := !profit +. a.(i).Knapsack.profit
      end
    done;
    if !size <= capacity && !profit > !best then best := !profit
  done;
  !best

let random_items seed =
  let g = Util.Prng.create seed in
  let n = 1 + Util.Prng.int g 10 in
  let its =
    List.init n (fun i ->
        Knapsack.make_item ~index:i
          ~size:(1 + Util.Prng.int g 12)
          ~profit:(Util.Prng.float g 50.0))
  in
  let capacity = 1 + Util.Prng.int g 30 in
  (its, capacity)

let exact_matches_brute =
  Helpers.seed_property ~count:80 "size DP = brute force" (fun seed ->
      let its, capacity = random_items seed in
      let sol = Knapsack.solve_exact_by_size ~capacity its in
      Knapsack.total_size sol <= capacity
      && Helpers.close_enough (Knapsack.total_profit sol) (brute_force ~capacity its))

let fptas_bound =
  Helpers.seed_property ~count:80 "FPTAS >= (1-eps) OPT and fits" (fun seed ->
      let its, capacity = random_items seed in
      let eps = 0.1 +. (float_of_int (seed mod 5) /. 10.0) in
      let sol = Knapsack.solve_fptas ~eps ~capacity its in
      let opt = brute_force ~capacity its in
      Knapsack.total_size sol <= capacity
      && Knapsack.total_profit sol >= ((1.0 -. eps) *. opt) -. 1e-9)

let fptas_rejects_bad_eps () =
  Alcotest.check_raises "eps 0" (Invalid_argument "Knapsack.solve_fptas: eps must be positive")
    (fun () -> ignore (Knapsack.solve_fptas ~eps:0.0 ~capacity:5 []))

let profit_dp_consistent () =
  let its = items [ (2, 3.0); (3, 4.0); (4, 5.0) ] in
  let scaled = [| 3; 4; 5 |] in
  let sol = Knapsack.solve_exact_by_profit ~capacity:5 ~scaled_profits:scaled its in
  Alcotest.(check bool) "profit 7" true
    (Helpers.close_enough (Knapsack.total_profit sol) 7.0);
  Alcotest.(check bool) "size <= 5" true (Knapsack.total_size sol <= 5)

let item_validation () =
  Alcotest.check_raises "size 0" (Invalid_argument "Knapsack.make_item: size must be positive")
    (fun () -> ignore (Knapsack.make_item ~index:0 ~size:0 ~profit:1.0))

let () =
  Alcotest.run "knapsack"
    [
      ( "exact",
        [
          case "known" exact_known;
          case "empty" exact_empty;
          case "all too big" exact_all_too_big;
          exact_matches_brute;
          case "profit DP" profit_dp_consistent;
        ] );
      ( "fptas",
        [ fptas_bound; case "bad eps" fptas_rejects_bad_eps; case "item validation" item_validation ] );
    ]
