module Task = Core.Task
module Path = Core.Path

let case = Helpers.case

let combine_feasible =
  Helpers.seed_property ~count:40 "combined solution feasible + subset"
    (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:14 seed in
      let sol = Sap.Combine.solve path tasks in
      Result.is_ok (Core.Checker.sap_feasible path sol)
      && Core.Checker.subset_of (Core.Solution.sap_tasks sol) tasks)

let combine_ratio_vs_exact =
  (* Theorem 4's asymptotic bound is 9+eps; at the default finite
     parameters (eps = 0.5 -> ell = 4) the instantiated constant is
     (4+eps) + 3 + 3 ~ 10.  Measured headroom is large; assert the
     instantiated bound. *)
  Helpers.seed_property ~count:25 "ratio <= instantiated Thm 4 bound vs exact" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:9 seed in
      let sol = Sap.Combine.solve path tasks in
      let opt = Exact.Sap_brute.value path tasks in
      opt <= 1e-9 || Core.Solution.sap_weight sol >= (opt /. 10.5) -. 1e-9)

let combine_ratio_vs_lp =
  Helpers.seed_property ~count:15 "ratio <= 9+eps vs LP bound on larger instances"
    (fun seed ->
      let g = Util.Prng.create seed in
      let path = Helpers.random_path g in
      let tasks = Gen.Workloads.mixed_tasks ~prng:g ~path ~n:25 () in
      let sol = Sap.Combine.solve path tasks in
      let lp = Lp.Ufpp_lp.upper_bound path tasks in
      lp <= 1e-9 || Core.Solution.sap_weight sol >= (lp /. 10.5) -. 1e-9)

let combine_report_consistent =
  Helpers.seed_property ~count:25 "report: chosen part is the heaviest" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:12 seed in
      let r = Sap.Combine.solve_report path tasks in
      let w s = Core.Solution.sap_weight s in
      let best =
        Float.max
          (w r.Sap.Combine.small_solution)
          (Float.max (w r.Sap.Combine.medium_solution) (w r.Sap.Combine.large_solution))
      in
      Helpers.close_enough (w r.Sap.Combine.solution) best)

let combine_parts_feasible =
  Helpers.seed_property ~count:25 "all three part solutions feasible" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:12 seed in
      let r = Sap.Combine.solve_report path tasks in
      Result.is_ok (Core.Checker.sap_feasible path r.Sap.Combine.small_solution)
      && Result.is_ok (Core.Checker.sap_feasible path r.Sap.Combine.medium_solution)
      && Result.is_ok (Core.Checker.sap_feasible path r.Sap.Combine.large_solution))

let combine_pure_large () =
  (* A pure 1/2-large instance: small and medium parts are empty, large
     carries everything. *)
  let path, tasks = Helpers.tiny_ratio_instance ~lo:0.6 ~hi:1.0 3 in
  let r = Sap.Combine.solve_report path tasks in
  Alcotest.(check int) "small empty" 0 (List.length r.Sap.Combine.small_solution);
  Alcotest.(check int) "medium empty" 0 (List.length r.Sap.Combine.medium_solution);
  Alcotest.(check bool) "large chosen" true (r.Sap.Combine.chosen = Sap.Combine.Large_part)

let combine_empty () =
  let path = Path.uniform ~edges:3 ~capacity:8 in
  Alcotest.(check int) "empty" 0 (List.length (Sap.Combine.solve path []))

let combine_single_task () =
  let path = Path.uniform ~edges:3 ~capacity:8 in
  let t = Task.make ~id:0 ~first_edge:0 ~last_edge:2 ~demand:5 ~weight:7.0 in
  let sol = Sap.Combine.solve path [ t ] in
  Alcotest.(check bool) "takes the only task" true
    (Helpers.close_enough (Core.Solution.sap_weight sol) 7.0)

let combine_drops_unfit () =
  let path = Path.uniform ~edges:2 ~capacity:4 in
  let huge = Task.make ~id:0 ~first_edge:0 ~last_edge:1 ~demand:9 ~weight:100.0 in
  let ok = Task.make ~id:1 ~first_edge:0 ~last_edge:0 ~demand:2 ~weight:1.0 in
  let sol = Sap.Combine.solve path [ huge; ok ] in
  Alcotest.(check bool) "unfit dropped, fit kept" true
    (Helpers.close_enough (Core.Solution.sap_weight sol) 1.0)

let combine_deterministic () =
  let path, tasks = Helpers.tiny_instance ~max_tasks:12 77 in
  let a = Sap.Combine.solve path tasks in
  let b = Sap.Combine.solve path tasks in
  Alcotest.(check bool) "same result" true
    (Core.Solution.sort_by_id a = Core.Solution.sort_by_id b)

let combine_parallel_equals_sequential =
  Helpers.seed_property ~count:15 "parallel = sequential" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:12 seed in
      let seq = Sap.Combine.solve path tasks in
      let par =
        Sap.Combine.solve
          ~config:{ Sap.Combine.default_config with Sap.Combine.parallel = true }
          path tasks
      in
      Core.Solution.sort_by_id seq = Core.Solution.sort_by_id par)

let combine_beats_every_part_alone =
  (* Lemma 3 machinery: the combined answer is at least each specialist's
     answer on its own sub-instance. *)
  Helpers.seed_property ~count:20 "combined >= each specialist" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:12 seed in
      let r = Sap.Combine.solve_report path tasks in
      let w = Core.Solution.sap_weight in
      w r.Sap.Combine.solution >= w r.Sap.Combine.small_solution -. 1e-9
      && w r.Sap.Combine.solution >= w r.Sap.Combine.medium_solution -. 1e-9
      && w r.Sap.Combine.solution >= w r.Sap.Combine.large_solution -. 1e-9)

let () =
  Alcotest.run "combine"
    [
      ( "feasibility",
        [ combine_feasible; combine_parts_feasible; case "empty" combine_empty ] );
      ( "ratio",
        [ combine_ratio_vs_exact; combine_ratio_vs_lp; combine_beats_every_part_alone ] );
      ( "behaviour",
        [
          combine_report_consistent;
          case "pure large" combine_pure_large;
          case "single task" combine_single_task;
          case "drops unfit" combine_drops_unfit;
          case "deterministic" combine_deterministic;
          combine_parallel_equals_sequential;
        ] );
    ]
