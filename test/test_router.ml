(* Consistent-hash router: ring properties, end-to-end fan-out over
   in-process shards, drain under load, and the completion-flush
   regression (a quiet connection must still receive its tail). *)

module Proto = Sap_server.Protocol
module Server = Sap_server.Server
module Transport = Sap_server.Transport
module Client = Sap_server.Client
module Router = Sap_server.Router
module Fingerprint = Sap_server.Fingerprint

let case name f = Alcotest.test_case name `Quick f
let default_params = Proto.default_solve_params

let solve_key path tasks =
  Fingerprint.solve_key ~problem:"sap"
    ~algorithm:default_params.Proto.algorithm ~seed:default_params.Proto.seed
    path tasks

let keys n = List.init n (fun i -> Printf.sprintf "key-%d" (i * 7919))

(* ---------- ring ---------- *)

let ring_stable_ownership () =
  let members = [ "a"; "b"; "c"; "d" ] in
  let r1 = Router.Ring.create members and r2 = Router.Ring.create members in
  Alcotest.(check (list string)) "members sorted" members (Router.Ring.members r1);
  List.iter
    (fun k ->
      Alcotest.(check (option string))
        ("owner stable for " ^ k)
        (Router.Ring.owner r1 k) (Router.Ring.owner r2 k))
    (keys 200);
  Alcotest.(check (option string))
    "empty ring owns nothing" None
    (Router.Ring.owner (Router.Ring.create []) "x")

let ring_add_steals_only_for_new () =
  let base = Router.Ring.create [ "a"; "b"; "c" ] in
  let grown = Router.Ring.add base "d" in
  let moved =
    List.filter
      (fun k -> Router.Ring.owner base k <> Router.Ring.owner grown k)
      (keys 400)
  in
  List.iter
    (fun k ->
      Alcotest.(check (option string))
        "moved key goes to the new member" (Some "d")
        (Router.Ring.owner grown k))
    moved;
  (* Expectation is 1/4 of the keyspace; allow generous slack. *)
  Alcotest.(check bool)
    "re-homed fraction bounded" true
    (List.length moved < 400 / 2)

let ring_remove_moves_only_from_removed () =
  let base = Router.Ring.create [ "a"; "b"; "c"; "d" ] in
  let shrunk = Router.Ring.remove base "b" in
  List.iter
    (fun k ->
      let before = Router.Ring.owner base k in
      let after = Router.Ring.owner shrunk k in
      if before <> Some "b" then
        Alcotest.(check (option string)) ("unmoved: " ^ k) before after
      else
        Alcotest.(check bool)
          ("re-homed off b: " ^ k)
          true
          (after <> Some "b" && after <> None))
    (keys 400)

let ring_rehoming_fraction_qcheck =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"ring add re-homes ~1/n of keys" ~count:30
       QCheck.(pair (int_range 2 8) (int_range 0 1000))
       (fun (n, salt) ->
         let members = List.init n (Printf.sprintf "m%d") in
         let base = Router.Ring.create members in
         let grown = Router.Ring.add base "extra" in
         let ks =
           List.init 300 (fun i -> Printf.sprintf "s%d-%d" salt (i * 31))
         in
         let moved =
           List.filter
             (fun k -> Router.Ring.owner base k <> Router.Ring.owner grown k)
             ks
         in
         (* All moved keys belong to the new member, and the moved share
            stays within 3x the ideal 1/(n+1). *)
         List.for_all
           (fun k -> Router.Ring.owner grown k = Some "extra")
           moved
         && List.length moved * (n + 1) <= 3 * 300))

(* ---------- in-process fleet ---------- *)

type fleet = {
  fl_dir : string;
  fl_router : Router.t;
  fl_front : string;
  fl_stops : Transport.stopper list;
  fl_doms : unit Domain.t list;
  fl_servers : Server.t list;
}

let start_shard ~dir ~name =
  let socket_path = Filename.concat dir (name ^ ".sock") in
  let srv =
    Server.create
      ~config:{ Server.default_config with Server.workers = Some 2 } ()
  in
  let stop = Transport.stopper () in
  let bound = Atomic.make false in
  let dom =
    Domain.spawn (fun () ->
        Transport.serve_unix
          ~on_bound:(fun _ -> Atomic.set bound true)
          ~stop srv ~socket_path)
  in
  let rec wait n =
    if not (Atomic.get bound) then
      if n = 0 then Alcotest.fail (name ^ " never bound")
      else (Unix.sleepf 0.01; wait (n - 1))
  in
  wait 500;
  (socket_path, srv, stop, dom)

let start_fleet ?(shards = 3) () =
  let dir = Filename.temp_file "sap_router" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let started =
    List.init shards (fun i ->
        let name = Printf.sprintf "shard-%d" i in
        (name, start_shard ~dir ~name))
  in
  let endpoints =
    List.map
      (fun (name, (sock, _, _, _)) ->
        { Router.ep_name = name; ep_socket = sock; ep_spawn = None })
      started
  in
  let router =
    match Router.create endpoints with
    | Ok r -> r
    | Error m -> Alcotest.failf "router create: %s" m
  in
  let front = Filename.concat dir "front.sock" in
  let front_stop = Transport.stopper () in
  let front_bound = Atomic.make false in
  let front_dom =
    Domain.spawn (fun () ->
        Router.serve
          ~on_bound:(fun _ -> Atomic.set front_bound true)
          ~stop:front_stop router ~socket_path:front)
  in
  let rec wait n =
    if not (Atomic.get front_bound) then
      if n = 0 then Alcotest.fail "front never bound"
      else (Unix.sleepf 0.01; wait (n - 1))
  in
  wait 500;
  {
    fl_dir = dir;
    fl_router = router;
    fl_front = front;
    fl_stops = front_stop :: List.map (fun (_, (_, _, s, _)) -> s) started;
    fl_doms = front_dom :: List.map (fun (_, (_, _, _, d)) -> d) started;
    fl_servers = List.map (fun (_, (_, srv, _, _)) -> srv) started;
  }

let stop_fleet fl =
  Router.shutdown fl.fl_router;
  List.iter Transport.request_stop fl.fl_stops;
  List.iter Domain.join fl.fl_doms;
  List.iter Transport.close_stopper fl.fl_stops;
  List.iter Server.drain fl.fl_servers;
  (try
     Sys.readdir fl.fl_dir
     |> Array.iter (fun f -> Sys.remove (Filename.concat fl.fl_dir f))
   with Sys_error _ -> ());
  try Sys.rmdir fl.fl_dir with Sys_error _ -> ()

let with_fleet ?shards f =
  let fl = start_fleet ?shards () in
  Fun.protect ~finally:(fun () -> stop_fleet fl) @@ fun () -> f fl

let batch_through_front fl instances =
  match Client.connect_unix fl.fl_front with
  | Error m -> Alcotest.failf "connect front: %s" m
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let ic = Unix.in_channel_of_descr fd in
          let oc = Unix.out_channel_of_descr fd in
          Client.run_batch ~ic ~oc ~params:default_params instances)

let assert_all_solved instances (result : Client.batch_result) =
  Alcotest.(check (list string)) "no transport errors" []
    result.Client.transport_errors;
  Array.iteri
    (fun i resp ->
      let path, _ = List.nth instances i in
      match resp with
      | Some (Proto.Solved { solution; _ }) ->
          Helpers.assert_feasible_sap path solution
      | _ -> Alcotest.failf "instance %d: no solved response" i)
    result.Client.responses

let router_end_to_end () =
  with_fleet @@ fun fl ->
  let instances = List.init 12 (fun i -> Helpers.tiny_instance (500 + (13 * i))) in
  (* Every instance solved and feasible through the front socket. *)
  assert_all_solved instances (batch_through_front fl instances);
  (* Keys spread across members, and owner_for is ring-consistent. *)
  let owners =
    List.map
      (fun (path, tasks) ->
        match Router.owner_for fl.fl_router ~key:(solve_key path tasks) with
        | Some o -> o
        | None -> Alcotest.fail "no owner")
      instances
  in
  Alcotest.(check bool)
    "at least two shards own keys" true
    (List.length (List.sort_uniq String.compare owners) >= 2);
  (* Affinity: a repeat of the same batch hits each owner's LRU cache.
     The hit counter is process-global, which is exactly the sum over
     the in-process shards. *)
  Obs.Metrics.enable ();
  let hits () = Obs.Metrics.counter_value (Obs.Metrics.counter "server.cache.hits") in
  let before = hits () in
  assert_all_solved instances (batch_through_front fl instances);
  let after = hits () in
  Alcotest.(check bool)
    (Printf.sprintf "repeat batch is cached (%d -> %d)" before after)
    true
    (after - before >= List.length instances)

(* The pump regression: a client that pipelines one request and then
   goes quiet (no half-close, no further frames) must still receive the
   response as soon as it completes.  Before the per-connection pump,
   the reply sat in the session's FIFO until new inbound traffic. *)
let router_flushes_without_inbound () =
  with_fleet ~shards:2 @@ fun fl ->
  match Client.connect_unix fl.fl_front with
  | Error m -> Alcotest.failf "connect front: %s" m
  | Ok fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let oc = Unix.out_channel_of_descr fd in
          let path, tasks = Helpers.tiny_instance 4242 in
          output_string oc
            (Proto.request_to_string
               (Proto.Solve { id = 7; params = default_params; path; tasks }));
          flush oc;
          (* No half-close: wait on the bare socket for the reply. *)
          (match Unix.select [ fd ] [] [] 10.0 with
          | [], _, _ -> Alcotest.fail "no response within 10s (stranded tail)"
          | _ -> ());
          let ic = Unix.in_channel_of_descr fd in
          let read_line () =
            try Some (input_line ic) with End_of_file -> None
          in
          match Proto.read_frame ~read_line with
          | None -> Alcotest.fail "eof instead of response"
          | Some lines -> (
              let tasks_for id = if id = 7 then Some tasks else None in
              match Proto.response_of_lines ~tasks_for lines with
              | Ok (Proto.Solved { id; solution; _ }) ->
                  Alcotest.(check int) "id echoed" 7 id;
                  Helpers.assert_feasible_sap path solution
              | Ok _ -> Alcotest.fail "expected solved"
              | Error m -> Alcotest.failf "bad response: %s" m))

let drain_under_load_loses_nothing () =
  with_fleet @@ fun fl ->
  let instances = List.init 16 (fun i -> Helpers.tiny_instance (900 + (7 * i))) in
  (* Concurrent batches while a shard drains: every request answered. *)
  let worker =
    Domain.spawn (fun () ->
        List.init 3 (fun _ -> batch_through_front fl instances))
  in
  Unix.sleepf 0.02;
  (match Router.drain_shard fl.fl_router "shard-1" with
  | Ok () -> ()
  | Error m -> Alcotest.failf "drain: %s" m);
  let results = Domain.join worker in
  List.iter (assert_all_solved instances) results;
  (* The drained shard is out of the ring: no key re-homes onto it. *)
  List.iter
    (fun k ->
      match Router.owner_for fl.fl_router ~key:k with
      | Some "shard-1" -> Alcotest.fail "drained shard still owns keys"
      | _ -> ())
    (keys 100);
  (* And a fresh batch still fully succeeds on the survivors. *)
  assert_all_solved instances (batch_through_front fl instances)

(* ---------- loadgen sweep knee ---------- *)

let knee_detection () =
  let knee pts = Lab.Loadgen.knee ~threshold:0.9 pts in
  Alcotest.(check (option (float 1e-9)))
    "knee at last keeping-up point" (Some 20.)
    (knee [ (10., 10.); (20., 19.5); (30., 21.) ]);
  Alcotest.(check (option (float 1e-9)))
    "all keep up: knee at the top" (Some 30.)
    (knee [ (10., 10.); (20., 20.); (30., 29.) ]);
  Alcotest.(check (option (float 1e-9)))
    "never keeps up: no knee" None
    (knee [ (10., 5.); (20., 4.) ])

let () =
  Alcotest.run "router"
    [
      ( "ring",
        [
          case "stable ownership" ring_stable_ownership;
          case "add steals only for the new member" ring_add_steals_only_for_new;
          case "remove moves only the removed member's keys"
            ring_remove_moves_only_from_removed;
          ring_rehoming_fraction_qcheck;
        ] );
      ( "routing",
        [
          case "end-to-end fan-out + cache affinity" router_end_to_end;
          case "response flushes without inbound traffic"
            router_flushes_without_inbound;
          case "drain under load loses nothing" drain_under_load_loses_nothing;
        ] );
      ("sweep", [ case "knee detection" knee_detection ]);
    ]
