module Task = Core.Task
module Path = Core.Path

let case = Helpers.case

(* ---------- Sap_u (Bar-Noy et al. baseline) ---------- *)

let uniform_instance seed =
  let g = Util.Prng.create seed in
  let path =
    Gen.Profiles.uniform ~edges:(3 + Util.Prng.int g 5)
      ~capacity:(9 + Util.Prng.int g 15)
  in
  let tasks = Gen.Workloads.mixed_tasks ~prng:g ~path ~n:(3 + Util.Prng.int g 7) () in
  (path, tasks)

let sap_u_feasible =
  Helpers.seed_property ~count:40 "SAP-U baseline feasible + subset" (fun seed ->
      let path, tasks = uniform_instance seed in
      let sol = Sap.Sap_u.solve path tasks in
      Result.is_ok (Core.Checker.sap_feasible path sol)
      && Core.Checker.subset_of (Core.Solution.sap_tasks sol) tasks)

let sap_u_ratio =
  (* The scheme's bound is 7; assert it with a little slack for our
     substituted DSA engine. *)
  Helpers.seed_property ~count:25 "SAP-U ratio <= ~7 vs exact" (fun seed ->
      let path, tasks = uniform_instance seed in
      let sol = Sap.Sap_u.solve path tasks in
      let opt = Exact.Sap_brute.value path tasks in
      opt <= 1e-9 || Core.Solution.sap_weight sol >= (opt /. 7.5) -. 1e-9)

let sap_u_rejects_non_uniform () =
  let path = Path.create [| 4; 5 |] in
  Alcotest.check_raises "non uniform"
    (Invalid_argument "Sap_u.solve: capacities not uniform") (fun () ->
      ignore (Sap.Sap_u.solve path []))

let sap_u_wide_only () =
  (* Capacity 3: every demand-2 task is wide; the rectangle path must
     handle them. *)
  let path = Path.uniform ~edges:3 ~capacity:3 in
  let mk id first last = Task.make ~id ~first_edge:first ~last_edge:last ~demand:2 ~weight:1.0 in
  let sol = Sap.Sap_u.solve path [ mk 0 0 1; mk 1 2 2 ] in
  Alcotest.(check int) "both disjoint tasks kept" 2 (List.length sol)

(* ---------- Rho_packing (the conclusion's open problem) ---------- *)

let rho_instance seed =
  let g = Util.Prng.create seed in
  let path = Helpers.random_path g in
  let tasks = Gen.Workloads.small_tasks ~prng:g ~path ~n:12 ~delta:0.4 () in
  (path, tasks)

let rho_packs_everything =
  Helpers.seed_property ~count:30 "rho packing schedules every task" (fun seed ->
      let path, tasks = rho_instance seed in
      let r = Dsa.Rho_packing.solve path tasks in
      List.length r.Dsa.Rho_packing.solution = List.length tasks)

let rho_at_least_lower_bound =
  Helpers.seed_property ~count:30 "rho >= load lower bound" (fun seed ->
      let path, tasks = rho_instance seed in
      let r = Dsa.Rho_packing.solve path tasks in
      r.Dsa.Rho_packing.rho >= r.Dsa.Rho_packing.lower_bound -. 1e-6)

let rho_reasonable_gap =
  (* First fit should stay within a small constant of the load bound on
     delta-small workloads. *)
  Helpers.seed_property ~count:20 "rho within 4x of the load bound" (fun seed ->
      let path, tasks = rho_instance seed in
      let r = Dsa.Rho_packing.solve path tasks in
      r.Dsa.Rho_packing.lower_bound <= 0.0
      || r.Dsa.Rho_packing.rho <= (4.0 *. r.Dsa.Rho_packing.lower_bound) +. 1e-6)

let rho_empty () =
  let path = Path.uniform ~edges:3 ~capacity:4 in
  let r = Dsa.Rho_packing.solve path [] in
  Alcotest.(check bool) "rho 0" true (Helpers.close_enough r.Dsa.Rho_packing.rho 0.0)

let rho_single_full_task () =
  (* One task exactly filling its bottleneck: rho must land at ~1. *)
  let path = Path.create [| 8; 4; 8 |] in
  let t = Task.make ~id:0 ~first_edge:0 ~last_edge:2 ~demand:4 ~weight:1.0 in
  let r = Dsa.Rho_packing.solve path [ t ] in
  Alcotest.(check bool) "lower bound 1" true
    (Helpers.close_enough r.Dsa.Rho_packing.lower_bound 1.0);
  Alcotest.(check bool) "rho close to 1" true (r.Dsa.Rho_packing.rho < 1.01)

let rho_buddy_engine =
  Helpers.seed_property ~count:20 "buddy engine also packs everything"
    (fun seed ->
      let path, tasks = rho_instance seed in
      let r = Dsa.Rho_packing.solve ~engine:Dsa.Rho_packing.Buddy path tasks in
      List.length r.Dsa.Rho_packing.solution = List.length tasks
      && r.Dsa.Rho_packing.rho >= r.Dsa.Rho_packing.lower_bound -. 1e-6)

let () =
  Alcotest.run "extensions"
    [
      ( "sap_u",
        [
          sap_u_feasible;
          sap_u_ratio;
          case "non uniform rejected" sap_u_rejects_non_uniform;
          case "wide only" sap_u_wide_only;
        ] );
      ( "rho_packing",
        [
          rho_packs_everything;
          rho_at_least_lower_bound;
          rho_reasonable_gap;
          case "empty" rho_empty;
          case "single full task" rho_single_full_task;
          rho_buddy_engine;
        ] );
    ]
