module Task = Core.Task
module Path = Core.Path

let case = Helpers.case

let roundtrip_instance =
  Helpers.seed_property ~count:50 "instance round-trips" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:12 seed in
      let s = Sap_io.Instance_io.instance_to_string path tasks in
      match Sap_io.Instance_io.instance_of_string s with
      | Error _ -> false
      | Ok (path', tasks') ->
          Path.capacities path = Path.capacities path' && tasks = tasks')

let roundtrip_solution =
  Helpers.seed_property ~count:50 "solution round-trips" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:10 seed in
      let sol = Exact.Sap_brute.solve path tasks in
      let s = Sap_io.Instance_io.solution_to_string sol in
      match Sap_io.Instance_io.solution_of_string ~tasks s with
      | Error _ -> false
      | Ok sol' -> Core.Solution.sort_by_id sol = Core.Solution.sort_by_id sol')

let parse_with_comments () =
  let s = "# a comment\nsap-instance v1\n\ncapacities 4 5\n# another\ntask 0 0 1 2 3.5\n" in
  match Sap_io.Instance_io.instance_of_string s with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok (path, tasks) ->
      Alcotest.(check int) "edges" 2 (Path.num_edges path);
      Alcotest.(check int) "tasks" 1 (List.length tasks);
      Alcotest.(check bool) "weight" true
        (Helpers.close_enough (List.hd tasks).Task.weight 3.5)

let rejects_bad_header () =
  Alcotest.(check bool) "bad header" true
    (Result.is_error (Sap_io.Instance_io.instance_of_string "nonsense v9\ncapacities 3\n"))

let rejects_bad_task_line () =
  let s = "sap-instance v1\ncapacities 4\ntask 0 zero 0 1 1.0\n" in
  Alcotest.(check bool) "bad int" true
    (Result.is_error (Sap_io.Instance_io.instance_of_string s))

let rejects_task_off_path () =
  let s = "sap-instance v1\ncapacities 4\ntask 0 0 3 1 1.0\n" in
  Alcotest.(check bool) "off path" true
    (Result.is_error (Sap_io.Instance_io.instance_of_string s))

let rejects_invalid_task () =
  let s = "sap-instance v1\ncapacities 4\ntask 0 0 0 0 1.0\n" in
  Alcotest.(check bool) "zero demand" true
    (Result.is_error (Sap_io.Instance_io.instance_of_string s))

let rejects_unknown_place_id () =
  let t = Task.make ~id:0 ~first_edge:0 ~last_edge:0 ~demand:1 ~weight:1.0 in
  Alcotest.(check bool) "unknown id" true
    (Result.is_error
       (Sap_io.Instance_io.solution_of_string ~tasks:[ t ] "sap-solution v1\nplace 7 0\n"))

let rejects_empty () =
  Alcotest.(check bool) "empty" true
    (Result.is_error (Sap_io.Instance_io.instance_of_string "  \n \n"))

let file_roundtrip () =
  let path, tasks = Helpers.tiny_instance 5 in
  let s = Sap_io.Instance_io.instance_to_string path tasks in
  let file = Filename.temp_file "sap_io_test" ".sap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Sap_io.Instance_io.write_file file s;
      Alcotest.(check string) "file contents" s (Sap_io.Instance_io.read_file file))

let () =
  Alcotest.run "io"
    [
      ( "roundtrip",
        [ roundtrip_instance; roundtrip_solution; case "file" file_roundtrip ] );
      ( "parser",
        [
          case "comments" parse_with_comments;
          case "bad header" rejects_bad_header;
          case "bad task line" rejects_bad_task_line;
          case "task off path" rejects_task_off_path;
          case "invalid task" rejects_invalid_task;
          case "unknown place id" rejects_unknown_place_id;
          case "empty" rejects_empty;
        ] );
    ]
