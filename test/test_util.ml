let case = Helpers.case

(* ---------- Prng ---------- *)

let prng_deterministic () =
  let a = Util.Prng.create 99 and b = Util.Prng.create 99 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Util.Prng.int64 a) (Util.Prng.int64 b)
  done

let prng_different_seeds () =
  let a = Util.Prng.create 1 and b = Util.Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Util.Prng.int64 a = Util.Prng.int64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let prng_int_bounds =
  Helpers.seed_property "int in [0,bound)" (fun seed ->
      let g = Util.Prng.create seed in
      let bound = 1 + (seed mod 97) in
      let x = Util.Prng.int g bound in
      0 <= x && x < bound)

let prng_int_in_bounds =
  Helpers.seed_property "int_in inclusive" (fun seed ->
      let g = Util.Prng.create seed in
      let lo = seed mod 50 in
      let hi = lo + (seed mod 13) in
      let x = Util.Prng.int_in g lo hi in
      lo <= x && x <= hi)

let prng_float_bounds =
  Helpers.seed_property "float in [0,b)" (fun seed ->
      let g = Util.Prng.create seed in
      let x = Util.Prng.float g 3.5 in
      0.0 <= x && x < 3.5)

let prng_copy_independent () =
  let a = Util.Prng.create 7 in
  let b = Util.Prng.copy a in
  let xa = Util.Prng.int64 a in
  let xb = Util.Prng.int64 b in
  Alcotest.(check int64) "copy continues identically" xa xb;
  ignore (Util.Prng.int64 a);
  let xa2 = Util.Prng.int64 a and xb2 = Util.Prng.int64 b in
  Alcotest.(check bool) "desynchronised after extra draw" true (xa2 <> xb2 || xa2 = xb2)

let prng_split_independent () =
  let a = Util.Prng.create 7 in
  let child = Util.Prng.split a in
  let xs = List.init 16 (fun _ -> Util.Prng.int64 a) in
  let ys = List.init 16 (fun _ -> Util.Prng.int64 child) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let prng_shuffle_permutes =
  Helpers.seed_property "shuffle is a permutation" (fun seed ->
      let g = Util.Prng.create seed in
      let a = Array.init 30 Fun.id in
      Util.Prng.shuffle g a;
      let sorted = Array.copy a in
      Array.sort compare sorted;
      sorted = Array.init 30 Fun.id)

let prng_bernoulli_extremes () =
  let g = Util.Prng.create 3 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=1 always true" true (Util.Prng.bernoulli g 1.0);
    Alcotest.(check bool) "p=0 always false" false (Util.Prng.bernoulli g 0.0)
  done

let prng_sample_weighted () =
  let g = Util.Prng.create 11 in
  let w = [| 0.0; 5.0; 0.0 |] in
  for _ = 1 to 50 do
    Alcotest.(check int) "only positive index" 1 (Util.Prng.sample_weighted g w)
  done

let prng_int_huge_bound () =
  (* Bounds close to [max_int] exercise the rejection loop; every draw
     must still land in range. *)
  let g = Util.Prng.create 5 in
  List.iter
    (fun bound ->
      for _ = 1 to 200 do
        let x = Util.Prng.int g bound in
        Alcotest.(check bool) "in range" true (0 <= x && x < bound)
      done)
    [ max_int; (max_int / 2) + 1; (1 lsl 61) + 1 ]

let prng_int_unbiased_mean () =
  (* bound = 3 * 2^60 does not divide 2^62, so plain [r mod bound] would
     double-count [0, 2^60) and pull the sample mean down to ~0.416*bound.
     Rejection sampling keeps it at ~0.5*bound; with 2000 draws the
     standard error is ~0.006*bound, so [0.45, 0.55] separates the two
     cleanly and deterministically for a fixed seed. *)
  let bound = 3 * (1 lsl 60) in
  let g = Util.Prng.create 2024 in
  let n = 2000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. float_of_int (Util.Prng.int g bound)
  done;
  let mean = !sum /. float_of_int n /. float_of_int bound in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f within [0.45, 0.55]" mean)
    true
    (0.45 < mean && mean < 0.55)

(* ---------- Heap ---------- *)

let heap_sorted =
  Helpers.seed_property "heap drains sorted" (fun seed ->
      let g = Util.Prng.create seed in
      let xs = List.init 50 (fun _ -> Util.Prng.int g 1000) in
      let h = Util.Heap.of_list ~cmp:Int.compare xs in
      let drained = Util.Heap.to_sorted_list h in
      drained = List.sort Int.compare xs)

let heap_pop_order () =
  let h = Util.Heap.create ~cmp:Int.compare in
  List.iter (Util.Heap.push h) [ 5; 1; 4; 1; 3 ];
  Alcotest.(check (option int)) "peek min" (Some 1) (Util.Heap.peek h);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Util.Heap.pop h);
  Alcotest.(check (option int)) "pop 1 again" (Some 1) (Util.Heap.pop h);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Util.Heap.pop h);
  Alcotest.(check int) "length" 2 (Util.Heap.length h)

let heap_empty () =
  let h = Util.Heap.create ~cmp:Int.compare in
  Alcotest.(check bool) "is_empty" true (Util.Heap.is_empty h);
  Alcotest.(check (option int)) "pop none" None (Util.Heap.pop h);
  Alcotest.check_raises "pop_exn raises" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Util.Heap.pop_exn h))

(* ---------- Range_min ---------- *)

let range_min_matches_naive =
  Helpers.seed_property "sparse table = naive min" (fun seed ->
      let g = Util.Prng.create seed in
      let n = 1 + Util.Prng.int g 60 in
      let a = Array.init n (fun _ -> Util.Prng.int g 100) in
      let t = Util.Range_min.build a in
      let ok = ref true in
      for lo = 0 to n - 1 do
        for hi = lo to n - 1 do
          let naive = ref max_int in
          for i = lo to hi do
            naive := min !naive a.(i)
          done;
          if Util.Range_min.query t lo hi <> !naive then ok := false;
          let arg = Util.Range_min.query_arg t lo hi in
          if not (lo <= arg && arg <= hi && a.(arg) = !naive) then ok := false
        done
      done;
      !ok)

let range_min_rejects_bad_query () =
  let t = Util.Range_min.build [| 1; 2; 3 |] in
  Alcotest.check_raises "reversed range" (Invalid_argument "Range_min.query")
    (fun () -> ignore (Util.Range_min.query t 2 1))

(* ---------- Stats ---------- *)

let stats_known () =
  let s = Util.Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "count" 4 s.Util.Stats.count;
  Alcotest.(check bool) "mean" true (Helpers.close_enough s.Util.Stats.mean 2.5);
  Alcotest.(check bool) "min" true (Helpers.close_enough s.Util.Stats.min 1.0);
  Alcotest.(check bool) "max" true (Helpers.close_enough s.Util.Stats.max 4.0)

let stats_geometric () =
  Alcotest.(check bool) "geo mean of (2,8) is 4" true
    (Helpers.close_enough (Util.Stats.geometric_mean [ 2.0; 8.0 ]) 4.0)

let stats_empty_raises () =
  Alcotest.check_raises "empty summarize" (Invalid_argument "Stats.summarize: empty")
    (fun () -> ignore (Util.Stats.summarize []))

(* ---------- Subset_sum ---------- *)

let brute_subset_sums ~max_terms ~bound ds =
  let ds = Array.of_list ds in
  let n = Array.length ds in
  let acc = Hashtbl.create 64 in
  for mask = 0 to (1 lsl n) - 1 do
    let sum = ref 0 and terms = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then begin
        sum := !sum + ds.(i);
        incr terms
      end
    done;
    if !sum < bound && !terms <= max_terms then Hashtbl.replace acc !sum ()
  done;
  Hashtbl.fold (fun k () l -> k :: l) acc [] |> List.sort Int.compare

let subset_sums_match_brute =
  Helpers.seed_property ~count:80 "distinct_sums = brute force" (fun seed ->
      let g = Util.Prng.create seed in
      let n = 1 + Util.Prng.int g 8 in
      let ds = List.init n (fun _ -> 1 + Util.Prng.int g 9) in
      let bound = 1 + Util.Prng.int g 40 in
      let max_terms = 1 + Util.Prng.int g n in
      Util.Subset_sum.distinct_sums ~max_terms ~bound ds
      = brute_subset_sums ~max_terms ~bound ds)

let subset_sums_capped_superset () =
  let exact = Util.Subset_sum.distinct_sums ~bound:30 [ 3; 5 ] in
  let capped = Util.Subset_sum.distinct_sums_capped ~cap:1000 ~bound:30 [ 3; 5 ] in
  List.iter
    (fun v ->
      Alcotest.(check bool) (Printf.sprintf "%d covered" v) true (List.mem v capped))
    exact

let subset_sums_capped_sorted () =
  let l = Util.Subset_sum.distinct_sums_capped ~cap:10 ~bound:100 [ 2; 7 ] in
  Alcotest.(check int) "cap respected" 10 (List.length l);
  Alcotest.(check bool) "sorted" true (List.sort Int.compare l = l)

(* ---------- Parallel ---------- *)

let parallel_matches_sequential =
  Helpers.seed_property ~count:20 "parallel map = sequential map" (fun seed ->
      let g = Util.Prng.create seed in
      let xs = List.init (1 + Util.Prng.int g 50) (fun i -> i * 3) in
      let f x = (x * x) - 1 in
      Util.Parallel.map ~jobs:4 f xs = List.map f xs)

let parallel_empty () =
  Alcotest.(check (list int)) "empty" [] (Util.Parallel.map ~jobs:4 (fun x -> x) [])

let parallel_single_job () =
  Alcotest.(check (list int)) "jobs=1" [ 2; 4 ]
    (Util.Parallel.map ~jobs:1 (fun x -> 2 * x) [ 1; 2 ])

let parallel_propagates_exception () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Util.Parallel.map ~jobs:3 (fun x -> if x = 5 then failwith "boom" else x)
                 [ 1; 2; 3; 4; 5; 6 ]);
       false
     with Failure m -> m = "boom")

let parallel_more_jobs_than_items () =
  Alcotest.(check (list int)) "jobs > length" [ 10; 20; 30 ]
    (Util.Parallel.map ~jobs:16 (fun x -> 10 * x) [ 1; 2; 3 ])

let parallel_preserves_order () =
  (* Strided workers finish in arbitrary order; the result must follow the
     input order, not completion order. *)
  let xs = List.init 101 Fun.id in
  Alcotest.(check (list int)) "ordered" (List.map succ xs)
    (Util.Parallel.map ~jobs:5 succ xs)

let parallel_error_joins_all () =
  (* A raising worker must not abandon its siblings: every index outside
     the failing worker's strided slice is processed before the exception
     is re-raised (i.e. all domains were joined, none leaked). *)
  let n = 20 and jobs = 4 in
  let bad = 6 in
  let processed = Array.make n false in
  let raised =
    try
      ignore
        (Util.Parallel.map ~jobs
           (fun i ->
             if i = bad then failwith "boom"
             else begin
               processed.(i) <- true;
               i
             end)
           (List.init n Fun.id));
      false
    with Failure m -> m = "boom"
  in
  Alcotest.(check bool) "exception re-raised" true raised;
  for i = 0 to n - 1 do
    if i mod jobs <> bad mod jobs then
      Alcotest.(check bool) (Printf.sprintf "index %d processed" i) true processed.(i)
  done

(* ---------- Table ---------- *)

let table_renders () =
  let s = Util.Table.render ~header:[ "a"; "bb" ] [ [ "x"; "1" ]; [ "yy"; "22" ] ] in
  Alcotest.(check bool) "contains rule" true (String.length s > 0 && String.contains s '|');
  Alcotest.(check int) "three+ lines" 4 (List.length (String.split_on_char '\n' s))

let table_rejects_ragged () =
  Alcotest.check_raises "ragged row" (Invalid_argument "Table.render: row arity")
    (fun () -> ignore (Util.Table.render ~header:[ "a"; "b" ] [ [ "x" ] ]))

let () =
  Alcotest.run "util"
    [
      ( "prng",
        [
          case "deterministic" prng_deterministic;
          case "different seeds" prng_different_seeds;
          prng_int_bounds;
          prng_int_in_bounds;
          prng_float_bounds;
          case "copy" prng_copy_independent;
          case "split" prng_split_independent;
          prng_shuffle_permutes;
          case "bernoulli extremes" prng_bernoulli_extremes;
          case "sample_weighted" prng_sample_weighted;
          case "huge bound" prng_int_huge_bound;
          case "unbiased mean" prng_int_unbiased_mean;
        ] );
      ( "heap",
        [ heap_sorted; case "pop order" heap_pop_order; case "empty" heap_empty ] );
      ( "range_min",
        [ range_min_matches_naive; case "bad query" range_min_rejects_bad_query ] );
      ( "stats",
        [
          case "known summary" stats_known;
          case "geometric mean" stats_geometric;
          case "empty raises" stats_empty_raises;
        ] );
      ( "subset_sum",
        [
          subset_sums_match_brute;
          case "capped superset" subset_sums_capped_superset;
          case "capped sorted" subset_sums_capped_sorted;
        ] );
      ( "parallel",
        [
          parallel_matches_sequential;
          case "empty" parallel_empty;
          case "single job" parallel_single_job;
          case "exception" parallel_propagates_exception;
          case "jobs > items" parallel_more_jobs_than_items;
          case "order preserved" parallel_preserves_order;
          case "error joins all" parallel_error_joins_all;
        ] );
      ( "table",
        [ case "renders" table_renders; case "ragged rejected" table_rejects_ragged ] );
    ]
