module Task = Core.Task
module Path = Core.Path

let case = Helpers.case

(* ---------- Profiles ---------- *)

let profile_uniform () =
  let p = Gen.Profiles.uniform ~edges:5 ~capacity:7 in
  Alcotest.(check int) "edges" 5 (Path.num_edges p);
  Alcotest.(check int) "cap" 7 (Path.min_capacity p);
  Alcotest.(check int) "cap max" 7 (Path.max_capacity p)

let profile_valley_shape () =
  let p = Gen.Profiles.valley ~edges:7 ~high:20 ~low:4 in
  Alcotest.(check int) "min at middle" 4 (Path.capacity p 3);
  Alcotest.(check int) "high at left" 20 (Path.capacity p 0);
  Alcotest.(check int) "high at right" 20 (Path.capacity p 6);
  Alcotest.(check int) "global min" 4 (Path.min_capacity p)

let profile_mountain_shape () =
  let p = Gen.Profiles.mountain ~edges:7 ~low:4 ~high:20 in
  Alcotest.(check int) "max at middle" 20 (Path.capacity p 3);
  Alcotest.(check int) "low at ends" 4 (Path.capacity p 0)

let profile_staircase () =
  let p = Gen.Profiles.staircase ~edges:8 ~steps:4 ~base:3 in
  Alcotest.(check int) "first step" 3 (Path.capacity p 0);
  Alcotest.(check int) "last step" 24 (Path.capacity p 7);
  (* Monotone non-decreasing. *)
  for e = 1 to 7 do
    Alcotest.(check bool) "monotone" true (Path.capacity p e >= Path.capacity p (e - 1))
  done

let profile_random_walk_bounds =
  Helpers.seed_property "random walk respects min_cap" (fun seed ->
      let prng = Util.Prng.create seed in
      let p = Gen.Profiles.random_walk ~prng ~edges:20 ~start:10 ~max_step:4 ~min_cap:3 in
      Path.min_capacity p >= 3)

(* ---------- Workloads ---------- *)

let small_tasks_are_small =
  Helpers.seed_property "small_tasks are delta-small" (fun seed ->
      let prng = Util.Prng.create seed in
      (* Capacities >= 16 so that delta-small tasks exist at delta = 0.2. *)
      let path =
        Gen.Profiles.uniform
          ~edges:(4 + (seed mod 5))
          ~capacity:(16 + (seed mod 20))
      in
      let delta = 0.2 +. (float_of_int (seed mod 3) /. 10.0) in
      let ts = Gen.Workloads.small_tasks ~prng ~path ~n:15 ~delta () in
      List.for_all (Core.Classify.is_small path ~delta) ts)

let ratio_tasks_in_band =
  Helpers.seed_property "ratio_tasks land strictly in their band" (fun seed ->
      let prng = Util.Prng.create seed in
      let path = Helpers.random_path prng in
      let ts = Gen.Workloads.ratio_tasks ~prng ~path ~n:15 ~lo:0.5 ~hi:1.0 () in
      List.for_all
        (fun (j : Task.t) ->
          let b = Path.bottleneck_of path j in
          2 * j.Task.demand > b && j.Task.demand <= b)
        ts)

let workloads_deterministic () =
  let mk seed =
    let prng = Util.Prng.create seed in
    let path = Gen.Profiles.uniform ~edges:6 ~capacity:12 in
    Gen.Workloads.mixed_tasks ~prng ~path ~n:10 ()
  in
  Alcotest.(check bool) "same seed same tasks" true (mk 5 = mk 5);
  Alcotest.(check bool) "diff seed diff tasks" true (mk 5 <> mk 6)

let workloads_individually_feasible =
  Helpers.seed_property "every generated task fits alone" (fun seed ->
      let prng = Util.Prng.create seed in
      let path = Helpers.random_path prng in
      let ts = Gen.Workloads.mixed_tasks ~prng ~path ~n:15 () in
      List.for_all
        (fun (j : Task.t) -> j.Task.demand <= Path.bottleneck_of path j)
        ts)

(* ---------- Paper figures ---------- *)

let fig1a_gap () =
  let path, tasks = Gen.Paper_figures.fig1a in
  Helpers.assert_feasible_ufpp path tasks;
  Alcotest.(check bool) "no SAP realisation" true
    (Exact.Sap_brute.realizable path tasks = None)

let fig1b_deterministic () =
  let p1, t1 = Gen.Paper_figures.fig1b ~seed:3 in
  let p2, t2 = Gen.Paper_figures.fig1b ~seed:3 in
  Alcotest.(check bool) "same witness" true
    (Path.capacities p1 = Path.capacities p2 && t1 = t2)

let fig1b_gap () =
  let path, tasks = Gen.Paper_figures.fig1b ~seed:3 in
  Helpers.assert_feasible_ufpp path tasks;
  Alcotest.(check int) "uniform capacity 4" 4 (Path.max_capacity path);
  Alcotest.(check int) "uniform capacity 4 (min)" 4 (Path.min_capacity path);
  Alcotest.(check bool) "no SAP realisation" true
    (Exact.Sap_brute.realizable path tasks = None)

let fig2_classification () =
  let path, tasks = Gen.Paper_figures.fig2_uniform in
  (* Every demand is at most 1/8 of its bottleneck: delta-small for
     delta = 1/8. *)
  List.iter
    (fun j ->
      Alcotest.(check bool) "delta-small" true
        (Core.Classify.is_small path ~delta:0.125 j))
    tasks;
  let pathv, tasksv = Gen.Paper_figures.fig2_valley in
  Helpers.assert_feasible_ufpp pathv tasksv

let fig8_feasible () =
  let path, sol = Lazy.force Gen.Paper_figures.fig8 in
  Helpers.assert_feasible_sap path sol;
  Alcotest.(check int) "five tasks" 5 (List.length sol)

(* ---------- Ring generator ---------- *)

let ring_gen_valid =
  Helpers.seed_property ~count:30 "ring tasks routable at least one way"
    (fun seed ->
      let prng = Util.Prng.create seed in
      let r = Gen.Ring_gen.random ~prng ~edges:6 ~n:8 ~cap_lo:4 ~cap_hi:12 ~ratio_lo:0.0 ~ratio_hi:0.8 in
      Array.for_all
        (fun (tk : Core.Ring.task) ->
          let fits dir =
            let edges = Core.Ring.edges_of_route ~m:6 ~src:tk.Core.Ring.src ~dst:tk.Core.Ring.dst dir in
            List.for_all (fun e -> tk.Core.Ring.demand <= r.Core.Ring.capacities.(e)) edges
          in
          fits Core.Ring.Cw || fits Core.Ring.Ccw)
        r.Core.Ring.tasks)

(* ---------- Traces ---------- *)

let memory_trace_valid =
  Helpers.seed_property ~count:30 "memory trace tasks on the time axis"
    (fun seed ->
      let prng = Util.Prng.create seed in
      let path, tasks =
        Gen.Traces.memory_trace ~prng ~time_slots:20 ~memory:64 ~n:30
          ~max_lifetime:6 ~max_object:16
      in
      Path.num_edges path = 20
      && List.for_all
           (fun (j : Task.t) ->
             j.Task.demand <= 16 && j.Task.last_edge < 20
             && Helpers.close_enough j.Task.weight
                  (float_of_int (j.Task.demand * Task.span j)))
           tasks)

let spectrum_trace_valid =
  Helpers.seed_property ~count:30 "spectrum trace tasks fit alone" (fun seed ->
      let prng = Util.Prng.create seed in
      let path, tasks = Gen.Traces.spectrum_trace ~prng ~links:12 ~n:25 in
      List.for_all
        (fun (j : Task.t) -> j.Task.demand <= Path.bottleneck_of path j)
        tasks)

let () =
  Alcotest.run "gen"
    [
      ( "profiles",
        [
          case "uniform" profile_uniform;
          case "valley" profile_valley_shape;
          case "mountain" profile_mountain_shape;
          case "staircase" profile_staircase;
          profile_random_walk_bounds;
        ] );
      ( "workloads",
        [
          small_tasks_are_small;
          ratio_tasks_in_band;
          case "deterministic" workloads_deterministic;
          workloads_individually_feasible;
        ] );
      ( "paper_figures",
        [
          case "fig1a gap" fig1a_gap;
          case "fig1b gap" fig1b_gap;
          case "fig1b deterministic" fig1b_deterministic;
          case "fig2" fig2_classification;
          case "fig8 feasible" fig8_feasible;
        ] );
      ("ring_gen", [ ring_gen_valid ]);
      ("traces", [ memory_trace_valid; spectrum_trace_valid ]);
    ]
