module Task = Core.Task
module Path = Core.Path

let case = Helpers.case

let mk ?(w = 1.0) id first last d =
  Task.make ~id ~first_edge:first ~last_edge:last ~demand:d ~weight:w

(* ---------- First_fit ---------- *)

let first_fit_feasible =
  Helpers.seed_property "first fit output feasible" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:15 seed in
      let placed, dropped = Dsa.First_fit.pack path tasks in
      Result.is_ok (Core.Checker.sap_feasible path placed)
      && List.length placed + List.length dropped = List.length tasks)

let first_fit_respects_limit =
  Helpers.seed_property "height limit respected" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:15 seed in
      let limit = 1 + (seed mod 8) in
      let placed, _ = Dsa.First_fit.pack path ~height_limit:limit tasks in
      Core.Solution.max_makespan path placed <= limit)

let first_fit_stacks () =
  let p = Path.uniform ~edges:3 ~capacity:10 in
  let placed, dropped = Dsa.First_fit.pack p [ mk 0 0 2 3; mk 1 0 2 3; mk 2 0 2 3 ] in
  Alcotest.(check int) "all placed" 3 (List.length placed);
  Alcotest.(check int) "none dropped" 0 (List.length dropped);
  let heights = List.sort compare (List.map snd placed) in
  Alcotest.(check (list int)) "stacked" [ 0; 3; 6 ] heights

let first_fit_drops_overflow () =
  let p = Path.uniform ~edges:1 ~capacity:4 in
  let placed, dropped = Dsa.First_fit.pack p [ mk 0 0 0 3; mk 1 0 0 3 ] in
  Alcotest.(check int) "one placed" 1 (List.length placed);
  Alcotest.(check int) "one dropped" 1 (List.length dropped)

let first_fit_fills_gap () =
  (* After a tall task and a floater, a short task should slot into the gap. *)
  let p = Path.uniform ~edges:2 ~capacity:10 in
  let order = [ mk 0 0 1 4; mk 1 0 1 4; mk 2 0 1 2 ] in
  let placed, _ = Dsa.First_fit.pack_in_order p order in
  Alcotest.(check int) "third at 8" 8 (Core.Solution.sap_height placed (mk 2 0 1 2))

(* ---------- First_fit hardening: insert + edge-case guards ---------- *)

let first_fit_insert_feasible =
  Helpers.seed_property "insert keeps the packing feasible" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:12 seed in
      match tasks with
      | [] -> true
      | j :: rest ->
          let placed, _ = Dsa.First_fit.pack path rest in
          (match Dsa.First_fit.insert path placed j with
          | Some h ->
              Result.is_ok (Core.Checker.sap_feasible path ((j, h) :: placed))
          | None ->
              (* insert only refuses when even the candidate heights fail;
                 at the very least height 0 must then be in conflict or
                 over the bottleneck. *)
              Core.Task.demand_of [ j ] > Core.Path.bottleneck_of path j
              || List.exists
                   (fun ((i : Core.Task.t), hi) ->
                     Core.Task.overlaps j i && hi < j.Core.Task.demand
                     && 0 < hi + i.Core.Task.demand)
                   placed))

let first_fit_insert_respects_limit =
  Helpers.seed_property "insert respects the height limit" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:12 seed in
      let limit = 1 + (seed mod 8) in
      match tasks with
      | [] -> true
      | j :: rest ->
          let placed, _ = Dsa.First_fit.pack path ~height_limit:limit rest in
          (match Dsa.First_fit.insert path ~height_limit:limit placed j with
          | Some h -> h + j.Core.Task.demand <= limit
          | None -> true))

let first_fit_demand_equals_capacity () =
  (* demand == capacity is the boundary the ceiling comparison must get
     right: the task fits exactly once, at height 0, and nothing stacks. *)
  let p = Path.uniform ~edges:2 ~capacity:5 in
  let placed, dropped = Dsa.First_fit.pack p [ mk 0 0 1 5; mk 1 0 1 5 ] in
  Alcotest.(check int) "one placed" 1 (List.length placed);
  Alcotest.(check int) "at height 0" 0 (List.assoc (mk 0 0 1 5) placed);
  Alcotest.(check int) "one dropped" 1 (List.length dropped);
  (* A single-point span behaves like any interval. *)
  Alcotest.(check (option int)) "single-point span inserts"
    (Some 0)
    (Dsa.First_fit.insert p [] (mk 2 1 1 5))

let first_fit_guards () =
  (* Task.make already rejects non-positive demands (Task.t is private),
     so the zero-demand guards inside First_fit/Interval_coloring are
     unreachable from here — what is reachable is the height-limit
     validation and the degenerate-limit behaviour. *)
  let p = Path.uniform ~edges:2 ~capacity:4 in
  Alcotest.check_raises "zero demand rejected at construction"
    (Invalid_argument "Task.make: demand must be positive") (fun () ->
      ignore (mk 0 0 1 0));
  Alcotest.check_raises "negative height limit (pack)"
    (Invalid_argument "First_fit: negative height_limit -1") (fun () ->
      ignore (Dsa.First_fit.pack p ~height_limit:(-1) [ mk 0 0 1 1 ]));
  Alcotest.check_raises "negative height limit (insert)"
    (Invalid_argument "First_fit: negative height_limit -3") (fun () ->
      ignore (Dsa.First_fit.insert p ~height_limit:(-3) [] (mk 0 0 1 1)));
  (* height_limit 0 is a degenerate but legal request: nothing fits. *)
  let placed, dropped = Dsa.First_fit.pack p ~height_limit:0 [ mk 0 0 1 1 ] in
  Alcotest.(check int) "limit 0 places nothing" 0 (List.length placed);
  Alcotest.(check int) "limit 0 drops all" 1 (List.length dropped)

(* ---------- Interval_coloring ---------- *)

let coloring_optimal_on_unit =
  Helpers.seed_property "colors = max load (unit demands)" (fun seed ->
      let g = Util.Prng.create seed in
      let edges = 3 + Util.Prng.int g 10 in
      let n = 1 + Util.Prng.int g 25 in
      let tasks =
        List.init n (fun id ->
            let first = Util.Prng.int g edges in
            let last = first + Util.Prng.int g (edges - first) in
            mk id first last 1)
      in
      let path = Path.uniform ~edges ~capacity:(n + 1) in
      let colored = Dsa.Interval_coloring.color tasks in
      let sol = Dsa.Interval_coloring.to_sap tasks in
      Result.is_ok (Core.Checker.sap_feasible path sol)
      && Dsa.Interval_coloring.colors_used colored = Core.Instance.max_load path tasks)

let coloring_rejects_mixed () =
  Alcotest.check_raises "mixed demands"
    (Invalid_argument "Interval_coloring.color: demands not uniform") (fun () ->
      ignore (Dsa.Interval_coloring.color [ mk 0 0 0 1; mk 1 0 0 2 ]))

let coloring_single_point_spans =
  Helpers.seed_property "single-point spans color optimally" (fun seed ->
      (* All intervals are one edge long; max load is just the deepest
         stack on any single edge and the sweep must hit it exactly
         (expiry is strict: last < first, so two tasks on the same edge
         never share a color). *)
      let g = Util.Prng.create seed in
      let edges = 2 + Util.Prng.int g 6 in
      let n = 1 + Util.Prng.int g 20 in
      let tasks =
        List.init n (fun id ->
            let e = Util.Prng.int g edges in
            mk id e e 1)
      in
      let path = Path.uniform ~edges ~capacity:(n + 1) in
      let colored = Dsa.Interval_coloring.color tasks in
      Result.is_ok
        (Core.Checker.sap_feasible path (Dsa.Interval_coloring.to_sap tasks))
      && Dsa.Interval_coloring.colors_used colored
         = Core.Instance.max_load path tasks)

let coloring_uniform_demand_d () =
  (* All three tasks share edge 2, so the load there is 9 and the optimal
     coloring must reach makespan 9 exactly. *)
  let tasks = [ mk 0 0 2 3; mk 1 1 3 3; mk 2 2 4 3 ] in
  let path = Path.uniform ~edges:5 ~capacity:9 in
  let sol = Dsa.Interval_coloring.to_sap tasks in
  Helpers.assert_feasible_sap path sol;
  Alcotest.(check int) "makespan = load = 9" 9 (Core.Solution.max_makespan path sol)

(* ---------- Buddy ---------- *)

let buddy_pow2 () =
  Alcotest.(check int) "1" 1 (Dsa.Buddy.round_up_pow2 1);
  Alcotest.(check int) "3 -> 4" 4 (Dsa.Buddy.round_up_pow2 3);
  Alcotest.(check int) "8 -> 8" 8 (Dsa.Buddy.round_up_pow2 8);
  Alcotest.(check int) "9 -> 16" 16 (Dsa.Buddy.round_up_pow2 9)

let buddy_feasible =
  Helpers.seed_property "buddy output feasible + aligned" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:15 seed in
      let placed, _ = Dsa.Buddy.pack path tasks in
      Result.is_ok (Core.Checker.sap_feasible path placed)
      && List.for_all
           (fun ((j : Task.t), h) -> h mod Dsa.Buddy.round_up_pow2 j.Task.demand = 0)
           placed)

(* ---------- Strip_transform ---------- *)

let strip_transform_feasible =
  Helpers.seed_property ~count:40 "strip transform within height" (fun seed ->
      let g = Util.Prng.create seed in
      let edges = 4 + Util.Prng.int g 8 in
      let height = 8 + Util.Prng.int g 16 in
      let path = Path.uniform ~edges ~capacity:height in
      (* Build an input with load <= height (a height-packable UFPP sol). *)
      let tasks =
        Gen.Workloads.small_tasks ~prng:g ~path ~n:20 ~delta:0.3 ()
        |> Ufpp.Greedy.solve path
      in
      let r = Dsa.Strip_transform.transform ~height ~edges tasks in
      Result.is_ok
        (Core.Checker.sap_feasible_within (Path.uniform ~edges ~capacity:height)
           ~bound:height r.Dsa.Strip_transform.packed)
      && List.length (Core.Solution.sap_tasks r.Dsa.Strip_transform.packed)
         + List.length r.Dsa.Strip_transform.dropped
         = List.length tasks)

let strip_transform_low_loss =
  (* The Lemma 4 regime: delta-small tasks whose load is only height/2.
     The paper's bound is a 4*delta weight loss; our packer should lose
     nothing or nearly nothing here. *)
  Helpers.seed_property ~count:30 "loss small in the half-load regime" (fun seed ->
      let g = Util.Prng.create seed in
      let edges = 6 in
      let height = 64 in
      let path = Path.uniform ~edges ~capacity:(height / 2) in
      let tasks =
        Gen.Workloads.small_tasks ~prng:g ~path ~n:30 ~delta:0.2 ()
        |> Ufpp.Greedy.solve path
      in
      let r = Dsa.Strip_transform.transform ~height ~edges tasks in
      Dsa.Strip_transform.loss_fraction r <= 0.25)

let strip_transform_empty () =
  let r = Dsa.Strip_transform.transform ~height:10 ~edges:3 [] in
  Alcotest.(check bool) "no loss" true
    (Helpers.close_enough (Dsa.Strip_transform.loss_fraction r) 0.0);
  Alcotest.(check int) "empty" 0 (List.length r.Dsa.Strip_transform.packed)

let () =
  Alcotest.run "dsa"
    [
      ( "first_fit",
        [
          first_fit_feasible;
          first_fit_respects_limit;
          case "stacks" first_fit_stacks;
          case "drops overflow" first_fit_drops_overflow;
          case "fills gap" first_fit_fills_gap;
          first_fit_insert_feasible;
          first_fit_insert_respects_limit;
          case "demand == capacity boundary" first_fit_demand_equals_capacity;
          case "edge-case guards" first_fit_guards;
        ] );
      ( "interval_coloring",
        [
          coloring_optimal_on_unit;
          case "rejects mixed" coloring_rejects_mixed;
          coloring_single_point_spans;
          case "uniform demand d" coloring_uniform_demand_d;
        ] );
      ("buddy", [ case "pow2" buddy_pow2; buddy_feasible ]);
      ( "strip_transform",
        [
          strip_transform_feasible;
          strip_transform_low_loss;
          case "empty" strip_transform_empty;
        ] );
    ]
