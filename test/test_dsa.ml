module Task = Core.Task
module Path = Core.Path

let case = Helpers.case

let mk ?(w = 1.0) id first last d =
  Task.make ~id ~first_edge:first ~last_edge:last ~demand:d ~weight:w

(* ---------- First_fit ---------- *)

let first_fit_feasible =
  Helpers.seed_property "first fit output feasible" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:15 seed in
      let placed, dropped = Dsa.First_fit.pack path tasks in
      Result.is_ok (Core.Checker.sap_feasible path placed)
      && List.length placed + List.length dropped = List.length tasks)

let first_fit_respects_limit =
  Helpers.seed_property "height limit respected" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:15 seed in
      let limit = 1 + (seed mod 8) in
      let placed, _ = Dsa.First_fit.pack path ~height_limit:limit tasks in
      Core.Solution.max_makespan path placed <= limit)

let first_fit_stacks () =
  let p = Path.uniform ~edges:3 ~capacity:10 in
  let placed, dropped = Dsa.First_fit.pack p [ mk 0 0 2 3; mk 1 0 2 3; mk 2 0 2 3 ] in
  Alcotest.(check int) "all placed" 3 (List.length placed);
  Alcotest.(check int) "none dropped" 0 (List.length dropped);
  let heights = List.sort compare (List.map snd placed) in
  Alcotest.(check (list int)) "stacked" [ 0; 3; 6 ] heights

let first_fit_drops_overflow () =
  let p = Path.uniform ~edges:1 ~capacity:4 in
  let placed, dropped = Dsa.First_fit.pack p [ mk 0 0 0 3; mk 1 0 0 3 ] in
  Alcotest.(check int) "one placed" 1 (List.length placed);
  Alcotest.(check int) "one dropped" 1 (List.length dropped)

let first_fit_fills_gap () =
  (* After a tall task and a floater, a short task should slot into the gap. *)
  let p = Path.uniform ~edges:2 ~capacity:10 in
  let order = [ mk 0 0 1 4; mk 1 0 1 4; mk 2 0 1 2 ] in
  let placed, _ = Dsa.First_fit.pack_in_order p order in
  Alcotest.(check int) "third at 8" 8 (Core.Solution.sap_height placed (mk 2 0 1 2))

(* ---------- Interval_coloring ---------- *)

let coloring_optimal_on_unit =
  Helpers.seed_property "colors = max load (unit demands)" (fun seed ->
      let g = Util.Prng.create seed in
      let edges = 3 + Util.Prng.int g 10 in
      let n = 1 + Util.Prng.int g 25 in
      let tasks =
        List.init n (fun id ->
            let first = Util.Prng.int g edges in
            let last = first + Util.Prng.int g (edges - first) in
            mk id first last 1)
      in
      let path = Path.uniform ~edges ~capacity:(n + 1) in
      let colored = Dsa.Interval_coloring.color tasks in
      let sol = Dsa.Interval_coloring.to_sap tasks in
      Result.is_ok (Core.Checker.sap_feasible path sol)
      && Dsa.Interval_coloring.colors_used colored = Core.Instance.max_load path tasks)

let coloring_rejects_mixed () =
  Alcotest.check_raises "mixed demands"
    (Invalid_argument "Interval_coloring.color: demands not uniform") (fun () ->
      ignore (Dsa.Interval_coloring.color [ mk 0 0 0 1; mk 1 0 0 2 ]))

let coloring_uniform_demand_d () =
  (* All three tasks share edge 2, so the load there is 9 and the optimal
     coloring must reach makespan 9 exactly. *)
  let tasks = [ mk 0 0 2 3; mk 1 1 3 3; mk 2 2 4 3 ] in
  let path = Path.uniform ~edges:5 ~capacity:9 in
  let sol = Dsa.Interval_coloring.to_sap tasks in
  Helpers.assert_feasible_sap path sol;
  Alcotest.(check int) "makespan = load = 9" 9 (Core.Solution.max_makespan path sol)

(* ---------- Buddy ---------- *)

let buddy_pow2 () =
  Alcotest.(check int) "1" 1 (Dsa.Buddy.round_up_pow2 1);
  Alcotest.(check int) "3 -> 4" 4 (Dsa.Buddy.round_up_pow2 3);
  Alcotest.(check int) "8 -> 8" 8 (Dsa.Buddy.round_up_pow2 8);
  Alcotest.(check int) "9 -> 16" 16 (Dsa.Buddy.round_up_pow2 9)

let buddy_feasible =
  Helpers.seed_property "buddy output feasible + aligned" (fun seed ->
      let path, tasks = Helpers.tiny_instance ~max_tasks:15 seed in
      let placed, _ = Dsa.Buddy.pack path tasks in
      Result.is_ok (Core.Checker.sap_feasible path placed)
      && List.for_all
           (fun ((j : Task.t), h) -> h mod Dsa.Buddy.round_up_pow2 j.Task.demand = 0)
           placed)

(* ---------- Strip_transform ---------- *)

let strip_transform_feasible =
  Helpers.seed_property ~count:40 "strip transform within height" (fun seed ->
      let g = Util.Prng.create seed in
      let edges = 4 + Util.Prng.int g 8 in
      let height = 8 + Util.Prng.int g 16 in
      let path = Path.uniform ~edges ~capacity:height in
      (* Build an input with load <= height (a height-packable UFPP sol). *)
      let tasks =
        Gen.Workloads.small_tasks ~prng:g ~path ~n:20 ~delta:0.3 ()
        |> Ufpp.Greedy.solve path
      in
      let r = Dsa.Strip_transform.transform ~height ~edges tasks in
      Result.is_ok
        (Core.Checker.sap_feasible_within (Path.uniform ~edges ~capacity:height)
           ~bound:height r.Dsa.Strip_transform.packed)
      && List.length (Core.Solution.sap_tasks r.Dsa.Strip_transform.packed)
         + List.length r.Dsa.Strip_transform.dropped
         = List.length tasks)

let strip_transform_low_loss =
  (* The Lemma 4 regime: delta-small tasks whose load is only height/2.
     The paper's bound is a 4*delta weight loss; our packer should lose
     nothing or nearly nothing here. *)
  Helpers.seed_property ~count:30 "loss small in the half-load regime" (fun seed ->
      let g = Util.Prng.create seed in
      let edges = 6 in
      let height = 64 in
      let path = Path.uniform ~edges ~capacity:(height / 2) in
      let tasks =
        Gen.Workloads.small_tasks ~prng:g ~path ~n:30 ~delta:0.2 ()
        |> Ufpp.Greedy.solve path
      in
      let r = Dsa.Strip_transform.transform ~height ~edges tasks in
      Dsa.Strip_transform.loss_fraction r <= 0.25)

let strip_transform_empty () =
  let r = Dsa.Strip_transform.transform ~height:10 ~edges:3 [] in
  Alcotest.(check bool) "no loss" true
    (Helpers.close_enough (Dsa.Strip_transform.loss_fraction r) 0.0);
  Alcotest.(check int) "empty" 0 (List.length r.Dsa.Strip_transform.packed)

let () =
  Alcotest.run "dsa"
    [
      ( "first_fit",
        [
          first_fit_feasible;
          first_fit_respects_limit;
          case "stacks" first_fit_stacks;
          case "drops overflow" first_fit_drops_overflow;
          case "fills gap" first_fit_fills_gap;
        ] );
      ( "interval_coloring",
        [
          coloring_optimal_on_unit;
          case "rejects mixed" coloring_rejects_mixed;
          case "uniform demand d" coloring_uniform_demand_d;
        ] );
      ("buddy", [ case "pow2" buddy_pow2; buddy_feasible ]);
      ( "strip_transform",
        [
          strip_transform_feasible;
          strip_transform_low_loss;
          case "empty" strip_transform_empty;
        ] );
    ]
